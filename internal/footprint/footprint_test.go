package footprint

import (
	"math"
	"strings"
	"testing"

	"ioguard/internal/rtos"
)

func TestFig6RowsShape(t *testing.T) {
	rows, err := Fig6Rows()
	if err != nil {
		t.Fatal(err)
	}
	// 4 systems × (hypervisor + kernel + 6 drivers) = 32 bars.
	if len(rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	perArch := map[rtos.Arch]int{}
	for _, r := range rows {
		perArch[r.Arch]++
		if r.Seg.Text < 0 || r.Seg.Data < 0 || r.Seg.BSS < 0 {
			t.Errorf("%v/%s: negative segment", r.Arch, r.Component)
		}
	}
	for a, n := range perArch {
		if n != 8 {
			t.Errorf("%v has %d rows, want 8", a, n)
		}
	}
}

func TestOverheadVsLegacyMatchesPaper(t *testing.T) {
	kb, pct := OverheadVsLegacy(rtos.RTXen)
	if math.Abs(kb-61) > 1 {
		t.Errorf("RT-Xen overhead = %.1f KB, want ≈61", kb)
	}
	if math.Abs(pct-129.8) > 5 {
		t.Errorf("RT-Xen overhead = %.1f%%, want ≈129.8%%", pct)
	}
	if kb, _ := OverheadVsLegacy(rtos.Legacy); kb != 0 {
		t.Error("legacy overhead vs itself should be 0")
	}
	// Obs. 1 ordering: RT-Xen > BV > Legacy ≥ I/O-GUARD on
	// hypervisor+kernel.
	if !(CoreTotal(rtos.RTXen) > CoreTotal(rtos.BlueVisor) &&
		CoreTotal(rtos.BlueVisor) > CoreTotal(rtos.Legacy) &&
		CoreTotal(rtos.Legacy) > CoreTotal(rtos.IOGuard)) {
		t.Errorf("core footprint ordering wrong: xen=%.1f bv=%.1f leg=%.1f iog=%.1f",
			CoreTotal(rtos.RTXen), CoreTotal(rtos.BlueVisor),
			CoreTotal(rtos.Legacy), CoreTotal(rtos.IOGuard))
	}
}

func TestStackTotal(t *testing.T) {
	devs := []string{"ethernet", "flexray"}
	for _, a := range rtos.Arches() {
		total, err := StackTotal(a, devs)
		if err != nil {
			t.Fatal(err)
		}
		if total <= CoreTotal(a) {
			t.Errorf("%v: stack total %.1f should exceed core %.1f", a, total, CoreTotal(a))
		}
	}
	if _, err := StackTotal(rtos.Legacy, []string{"tape"}); err == nil {
		t.Error("unknown device accepted")
	}
	// The full I/O-GUARD stack undercuts every other architecture.
	iog, _ := StackTotal(rtos.IOGuard, devs)
	for _, a := range []rtos.Arch{rtos.Legacy, rtos.RTXen, rtos.BlueVisor} {
		other, _ := StackTotal(a, devs)
		if iog >= other {
			t.Errorf("I/O-GUARD stack %.1f should undercut %v's %.1f", iog, a, other)
		}
	}
}

func TestRender(t *testing.T) {
	out, err := Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"I/O-GUARD", "BS|RT-XEN", "kernel", "driver:ethernet", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 33 { // header + 32 rows
		t.Errorf("render lines = %d, want 33", lines)
	}
}
