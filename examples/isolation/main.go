// Isolation: demonstrate the hardware inter-VM isolation of the
// R-channel's server-based scheduling (footnote 1 of Sec. III-A:
// "partitioning of I/O pools ensures inter-VM isolation at hardware
// I/O level").
//
// VM0 misbehaves and floods its I/O pool; VM1 runs a well-behaved
// periodic safety task. Under ServerEDF the victim's budget guarantee
// holds and it misses nothing; under DirectEDF (no per-VM bandwidth
// reservation) the flood's deadlines compete directly with the
// victim's and can starve it.
//
//	go run ./examples/isolation
package main

import (
	"fmt"
	"log"

	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

const horizon = 4096

func main() {
	fmt.Println("flooding VM0 vs. a periodic safety task on VM1")
	fmt.Printf("%-12s %18s %18s\n", "G-Sched", "victim misses", "victim completions")
	for _, mode := range []hypervisor.Mode{hypervisor.ServerEDF, hypervisor.DirectEDF} {
		misses, done := run(mode)
		fmt.Printf("%-12s %18d %18d\n", mode, misses, done)
	}
	fmt.Println("\nServerEDF caps the flood at its budget Θ per period Π;")
	fmt.Println("DirectEDF lets the flood's tight deadlines crowd the victim out.")
}

func run(mode hypervisor.Mode) (misses, completions int) {
	cfg := hypervisor.Config{
		VMs:  2,
		Mode: mode,
	}
	if mode == hypervisor.ServerEDF {
		cfg.Servers = []task.Server{
			{VM: 0, Period: 8, Budget: 4},
			{VM: 1, Period: 8, Budget: 4},
		}
	}
	m, err := hypervisor.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	victim := &task.Sporadic{ID: 1, Name: "victim", VM: 1, Period: 64, WCET: 16, Deadline: 64}
	m.OnComplete = func(j *task.Job, at slot.Time) {
		if j.Task != victim {
			return
		}
		completions++
		if at > j.Deadline {
			misses++
		}
	}
	// The flood: VM0 submits an endless stream of tight-deadline ops.
	flood := &task.Sporadic{ID: 0, Name: "flood", VM: 0, Period: 4, WCET: 4, Deadline: 4}
	seqF, seqV := 0, 0
	for now := slot.Time(0); now < horizon; now++ {
		if now%4 == 0 {
			m.Submit(now, task.NewJob(flood, seqF, now))
			seqF++
		}
		if now%64 == 0 {
			m.Submit(now, task.NewJob(victim, seqV, now))
			seqV++
		}
		m.Step(now)
	}
	// Unfinished victim jobs past their deadline also count.
	m.PendingJobs(func(j *task.Job) {
		if j.Task == victim && j.Deadline < horizon {
			misses++
		}
	})
	return misses, completions
}
