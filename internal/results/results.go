// Package results owns the machine-readable benchmark record:
// BENCH_sim.json's report and trajectory schemas, their validation,
// and the fleet-scale analysis the ioguard-report command renders.
//
// Schema history:
//
//   - ioguard/bench_sim/v1 — one benchmark run: results, derived
//     speedup pairs, slot-table footprints.
//   - ioguard/bench_sim/v2 — v1 plus sweep_sketches: serialized
//     merged KLL recorders of the nightly sweeps' response/tardiness
//     distributions, so the trajectory accumulates true cross-trial
//     latency distributions over time instead of only wall-clock
//     numbers. v1 payloads (reports and trajectories, and the mixed
//     trajectories a v1→v2 transition produces) still decode — the
//     new fields are additive.
//
// Decoding never trusts wire state: schemas must be known, embedded
// sketches revalidate their own invariants (metrics.Streaming /
// metrics.KLL UnmarshalJSON), and per-run sanity checks (names
// non-empty, counts non-negative) run before any analysis.
package results

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ioguard/internal/footprint"
	"ioguard/internal/metrics"
)

// Schema identifiers. Encoding always writes the current (v2) forms;
// decoding accepts both versions.
const (
	ReportSchemaV1     = "ioguard/bench_sim/v1"
	ReportSchema       = "ioguard/bench_sim/v2"
	TrajectorySchemaV1 = "ioguard/bench_sim_trajectory/v1"
	TrajectorySchema   = "ioguard/bench_sim_trajectory/v2"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SlotsPerOp is how many simulated slots one iteration advances
	// (0 when not meaningful, e.g. queue micro-benchmarks).
	SlotsPerOp  int64   `json:"slots_per_op,omitempty"`
	SlotsPerSec float64 `json:"slots_per_sec,omitempty"`
}

// Speedup compares the dense variant of one benchmark pair against
// its optimized sibling — the fast-forward protocol for engine-level
// pairs, or the run-length interval table for the Slot* pairs.
type Speedup struct {
	Name          string  `json:"name"`
	DenseNsPerOp  float64 `json:"dense_ns_per_op"`
	FFNsPerOp     float64 `json:"fastforward_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	DenseSlotsSec float64 `json:"dense_slots_per_sec,omitempty"`
	FFSlotsSec    float64 `json:"fastforward_slots_per_sec,omitempty"`
}

// SweepSketch is one nightly sweep's merged cross-trial distribution
// for one system: the per-trial KLL recorders of every (utilization,
// trial) cell folded in canonical order. The (Suite, Sweep, System)
// triple is the grouping key ioguard-report tracks across runs.
type SweepSketch struct {
	Suite  string `json:"suite"`  // e.g. "nightly"
	Sweep  string `json:"sweep"`  // e.g. "CaseStudy1000/4vm/stream"
	System string `json:"system"` // e.g. "I/O-GUARD-70"
	Trials int    `json:"trials"` // trials folded into the sketches
	// SuccessRatio and ThroughputMean carry the sweep's headline
	// scalars so report tables need no re-simulation.
	SuccessRatio   float64 `json:"success_ratio"`
	ThroughputMean float64 `json:"throughput_mean_mbps"`
	// Response and Tardiness are the merged recorders (slots). Either
	// may be nil when a sweep recorded no completions.
	Response  *metrics.Streaming `json:"response,omitempty"`
	Tardiness *metrics.Streaming `json:"tardiness,omitempty"`
}

// RobustnessRow is one (scenario, system) cell of the fault-injection
// robustness sweep: the fault-conditioned miss/drop classification and
// the ROTA-I/O-style timing-accuracy scalars for one system under one
// named fault scenario. Rows are additive to the v2 schema — older
// payloads simply lack them.
type RobustnessRow struct {
	Scenario     string  `json:"scenario"` // fault menu entry, e.g. "storm"
	System       string  `json:"system"`   // e.g. "BS|PART"
	Trials       int     `json:"trials"`
	SuccessRatio float64 `json:"success_ratio"`
	// Per-trial means of the fault-conditioned counters.
	MissesPerTrial        float64 `json:"misses_per_trial"`
	FaultedMissesPerTrial float64 `json:"faulted_misses_per_trial"`
	DropsPerTrial         float64 `json:"drops_per_trial"`
	DupsPerTrial          float64 `json:"dups_per_trial"`
	// Release-to-actuation error distribution, in slots.
	AccuracyMeanSlots float64 `json:"accuracy_mean_slots"`
	AccuracyP99Slots  float64 `json:"accuracy_p99_slots"`
}

// Report is one benchmark run — the ioguard/bench_sim/v2 schema, and
// one element of a trajectory's runs array.
type Report struct {
	Schema    string    `json:"schema"`
	Timestamp string    `json:"timestamp,omitempty"`
	Suite     string    `json:"suite,omitempty"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	BenchTime string    `json:"benchtime"`
	Results   []Result  `json:"results"`
	Speedups  []Speedup `json:"speedups,omitempty"`
	// SlotTables pairs the σ* encodings' memory footprints at the
	// avionics stress cell (H = 4M slots), complementing the Slot*
	// latency pairs in Speedups.
	SlotTables []footprint.SlotTableRow `json:"slot_tables,omitempty"`
	// SweepSketches are the nightly sweeps' merged latency
	// distributions (v2; absent from v1 runs).
	SweepSketches []SweepSketch `json:"sweep_sketches,omitempty"`
	// Robustness holds the fault-injection sweep's per-(scenario,
	// system) rows (additive; absent from pre-fault runs).
	Robustness []RobustnessRow `json:"robustness,omitempty"`
}

// Trajectory accumulates one Report per invocation: the
// perf-over-PRs record the nightly CI job maintains.
type Trajectory struct {
	Schema string   `json:"schema"`
	Runs   []Report `json:"runs"`
}

// Validate sanity-checks one run beyond what decoding enforced.
func (r *Report) Validate() error {
	switch r.Schema {
	case ReportSchema, ReportSchemaV1:
	default:
		return fmt.Errorf("results: run has unknown schema %q", r.Schema)
	}
	for i, res := range r.Results {
		if res.Name == "" {
			return fmt.Errorf("results: result %d has empty name", i)
		}
		if res.Iterations < 0 || res.NsPerOp < 0 || res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
			return fmt.Errorf("results: result %q has negative measurement", res.Name)
		}
	}
	for i, s := range r.Speedups {
		if s.Name == "" {
			return fmt.Errorf("results: speedup %d has empty name", i)
		}
		if s.Speedup < 0 || s.DenseNsPerOp < 0 || s.FFNsPerOp < 0 {
			return fmt.Errorf("results: speedup %q has negative measurement", s.Name)
		}
	}
	for i, sk := range r.SweepSketches {
		if sk.Sweep == "" || sk.System == "" {
			return fmt.Errorf("results: sweep sketch %d missing sweep/system key", i)
		}
		if sk.Trials < 0 {
			return fmt.Errorf("results: sweep sketch %q/%q has negative trials", sk.Sweep, sk.System)
		}
		if sk.SuccessRatio < 0 || sk.SuccessRatio > 1 {
			return fmt.Errorf("results: sweep sketch %q/%q success ratio %g outside [0,1]",
				sk.Sweep, sk.System, sk.SuccessRatio)
		}
		// Sketch invariants were revalidated by Streaming.UnmarshalJSON
		// during decode; here only cross-field consistency remains.
		if sk.Response != nil && sk.Trials == 0 && sk.Response.N() > 0 {
			return fmt.Errorf("results: sweep sketch %q/%q has observations but zero trials",
				sk.Sweep, sk.System)
		}
	}
	for i, rr := range r.Robustness {
		if rr.Scenario == "" || rr.System == "" {
			return fmt.Errorf("results: robustness row %d missing scenario/system key", i)
		}
		if rr.Trials < 0 {
			return fmt.Errorf("results: robustness row %s/%s has negative trials", rr.Scenario, rr.System)
		}
		if rr.SuccessRatio < 0 || rr.SuccessRatio > 1 {
			return fmt.Errorf("results: robustness row %s/%s success ratio %g outside [0,1]",
				rr.Scenario, rr.System, rr.SuccessRatio)
		}
		if rr.MissesPerTrial < 0 || rr.FaultedMissesPerTrial < 0 || rr.DropsPerTrial < 0 ||
			rr.DupsPerTrial < 0 || rr.AccuracyMeanSlots < 0 || rr.AccuracyP99Slots < 0 {
			return fmt.Errorf("results: robustness row %s/%s has negative measurement", rr.Scenario, rr.System)
		}
	}
	return nil
}

// Key returns the sketch's grouping key.
func (s *SweepSketch) Key() string {
	suite := s.Suite
	if suite == "" {
		suite = "default"
	}
	return suite + "/" + s.Sweep + "/" + s.System
}

// DecodeTrajectory parses data as either a trajectory (v1 or v2) or a
// bare single report (v1 or v2), normalizing the latter into a
// one-run trajectory. Every run is validated.
func DecodeTrajectory(data []byte) (*Trajectory, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("results: unreadable payload: %w", err)
	}
	traj := &Trajectory{Schema: TrajectorySchema}
	switch probe.Schema {
	case TrajectorySchema, TrajectorySchemaV1:
		if err := json.Unmarshal(data, traj); err != nil {
			return nil, fmt.Errorf("results: bad trajectory: %w", err)
		}
	case ReportSchema, ReportSchemaV1:
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("results: bad report: %w", err)
		}
		traj.Runs = append(traj.Runs, rep)
	default:
		return nil, fmt.Errorf("results: unknown schema %q", probe.Schema)
	}
	for i := range traj.Runs {
		if err := traj.Runs[i].Validate(); err != nil {
			return nil, fmt.Errorf("results: run %d: %w", i, err)
		}
	}
	return traj, nil
}

// LoadTrajectory reads and decodes path.
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeTrajectory(data)
}

// AppendRun folds rep into the trajectory at path and returns the
// encoded bytes: an existing trajectory file (either version) gains
// one run, an existing single-report file is wrapped as the first
// run, and a missing file starts a fresh trajectory. The written
// schema is always the current version; earlier runs ride along
// unmodified.
func AppendRun(path string, rep Report) ([]byte, error) {
	traj := &Trajectory{Schema: TrajectorySchema}
	if data, err := os.ReadFile(path); err == nil {
		traj, err = DecodeTrajectory(data)
		if err != nil {
			return nil, fmt.Errorf("results: existing %s: %w", path, err)
		}
		traj.Schema = TrajectorySchema
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	traj.Runs = append(traj.Runs, rep)
	return json.MarshalIndent(traj, "", "  ")
}

// Speedups pairs every <base>/dense and <base>/globalmin result with
// its <base>/fastforward sibling — or, for the slot-table pairs that
// have no engine variant, the <base>/interval sibling — and every
// <base>/parshard result with the same sibling as its baseline. The
// Dense* fields hold the baseline variant's numbers; for "/globalmin"
// entries that baseline is the single-clock fast-forward rather than
// dense stepping, so the ratio isolates what the per-device clock
// decoupling buys on its own; for "/parshard" entries it is the
// single-thread sharded fast-forward, so the ratio is the
// epoch-barrier executor's pure wall-clock win (≈1 on single-core
// hosts).
func Speedups(results []Result) []Speedup {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	var out []Speedup
	for _, r := range results {
		for _, suffix := range []string{"/dense", "/globalmin"} {
			base, ok := strings.CutSuffix(r.Name, suffix)
			if !ok {
				continue
			}
			ff, ok := byName[base+"/fastforward"]
			if !ok {
				ff, ok = byName[base+"/interval"]
			}
			if !ok || ff.NsPerOp == 0 {
				continue
			}
			name := base
			if suffix == "/globalmin" {
				name = base + "/globalmin"
			}
			out = append(out, Speedup{
				Name:          name,
				DenseNsPerOp:  r.NsPerOp,
				FFNsPerOp:     ff.NsPerOp,
				Speedup:       r.NsPerOp / ff.NsPerOp,
				DenseSlotsSec: r.SlotsPerSec,
				FFSlotsSec:    ff.SlotsPerSec,
			})
		}
		if base, ok := strings.CutSuffix(r.Name, "/parshard"); ok {
			seq, ok := byName[base+"/fastforward"]
			if ok && r.NsPerOp > 0 {
				out = append(out, Speedup{
					Name:          base + "/parshard",
					DenseNsPerOp:  seq.NsPerOp,
					FFNsPerOp:     r.NsPerOp,
					Speedup:       seq.NsPerOp / r.NsPerOp,
					DenseSlotsSec: seq.SlotsPerSec,
					FFSlotsSec:    r.SlotsPerSec,
				})
			}
		}
	}
	return out
}
