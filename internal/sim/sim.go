// Package sim provides the deterministic slot-stepped simulation
// engine that stands in for the VC709 FPGA platform of the paper's
// evaluation. All system elements synchronize to a single global
// timer (assumption (iii) of Sec. II); the engine models that timer
// and advances every registered component one time slot at a time.
//
// Determinism matters: the paper re-runs each configuration 1000
// times with identical inputs across systems; the engine therefore
// derives all randomness from one seeded source so that "the data
// input to the examined systems was identical in each execution".
package sim

import (
	"container/heap"
	"math/rand"

	"ioguard/internal/slot"
)

// Stepper is a hardware component clocked by the global timer: Step
// is called exactly once per slot, in registration order.
type Stepper interface {
	Step(now slot.Time)
}

// StepFunc adapts a function to the Stepper interface.
type StepFunc func(now slot.Time)

// Step calls f(now).
func (f StepFunc) Step(now slot.Time) { f(now) }

// event is a one-shot callback scheduled for an absolute slot.
type event struct {
	at  slot.Time
	seq int64
	fn  func(now slot.Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)       { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (v any)     { old := *h; n := len(old); v = old[n-1]; *h = old[:n-1]; return }
func (h eventHeap) Peek() *event      { return h[0] }
func (h eventHeap) Empty() bool       { return len(h) == 0 }
func (h eventHeap) NextAt() slot.Time { return h[0].at }

// Engine is the global timer plus the set of clocked components. The
// zero value is not usable; call New.
type Engine struct {
	now      slot.Time
	rng      *rand.Rand
	steppers []Stepper
	events   eventHeap
	nextSeq  int64
}

// New returns an engine at slot 0 with a deterministic random source.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current slot.
func (e *Engine) Now() slot.Time { return e.now }

// RNG returns the engine's deterministic random source. All stochastic
// workload decisions must draw from it to keep runs reproducible.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Register adds a clocked component. Components are stepped in
// registration order within each slot, which fixes the intra-slot
// pipeline order (e.g. schedulers before executors).
func (e *Engine) Register(s Stepper) { e.steppers = append(e.steppers, s) }

// At schedules fn to run at the start of slot at. Events scheduled for
// the past run at the start of the next Step. Events at the same slot
// run in scheduling order, before any Stepper.
func (e *Engine) At(at slot.Time, fn func(now slot.Time)) {
	heap.Push(&e.events, &event{at: at, seq: e.nextSeq, fn: fn})
	e.nextSeq++
}

// After schedules fn delay slots from now.
func (e *Engine) After(delay slot.Time, fn func(now slot.Time)) {
	e.At(e.now+delay, fn)
}

// Step advances the simulation by one slot: due events fire first,
// then every registered component steps, then time advances.
func (e *Engine) Step() {
	for !e.events.Empty() && e.events.NextAt() <= e.now {
		ev := heap.Pop(&e.events).(*event)
		ev.fn(e.now)
	}
	for _, s := range e.steppers {
		s.Step(e.now)
	}
	e.now++
}

// Run steps the simulation until Now() == until (exclusive of slot
// until itself). It is a no-op when until ≤ Now().
func (e *Engine) Run(until slot.Time) {
	for e.now < until {
		e.Step()
	}
}
