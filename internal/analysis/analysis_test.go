package analysis

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// randomTable builds a table of length h with busy slots chosen by rng.
func randomTable(rng *rand.Rand, h int, busyFrac float64) *slot.Table {
	tab := slot.NewTable(h)
	for i := 0; i < h; i++ {
		if rng.Float64() < busyFrac {
			tab.Assign(slot.Time(i), slot.TaskID(1))
		}
	}
	return tab
}

// bruteSBF computes sbf(σ,t) directly from the definition: the
// minimum number of free slots over every window of length t.
func bruteSBF(tab *slot.Table, t slot.Time) slot.Time {
	if t <= 0 || tab.Len() == 0 {
		return 0
	}
	min := slot.Never
	for s := slot.Time(0); s < slot.Time(tab.Len()); s++ {
		if v := tab.FreeIn(s, t); v < min {
			min = v
		}
	}
	return min
}

func TestSupplyBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := 4 + rng.Intn(20)
		tab := randomTable(rng, h, rng.Float64())
		sb := NewSupplyBound(tab)
		for tt := slot.Time(0); tt <= slot.Time(3*h); tt++ {
			if got, want := sb.At(tt), bruteSBF(tab, tt); got != want {
				t.Fatalf("trial %d: sbf(%d) = %d, want %d (table %s)", trial, tt, got, want, tab)
			}
		}
	}
}

func TestSupplyBoundEmptyTable(t *testing.T) {
	sb := NewSupplyBound(slot.NewTable(0))
	if sb.At(5) != 0 || sb.H() != 0 || sb.F() != 0 {
		t.Error("empty table should supply nothing")
	}
}

func TestSupplyBoundAllFree(t *testing.T) {
	sb := NewSupplyBound(slot.NewTable(10))
	for tt := slot.Time(0); tt < 30; tt++ {
		if sb.At(tt) != tt {
			t.Fatalf("all-free table: sbf(%d) = %d, want %d", tt, sb.At(tt), tt)
		}
	}
}

func TestSupplyBoundPeriodicIdentity(t *testing.T) {
	// Eq. 2: sbf(t+H) = sbf(t) + F.
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng, 16, 0.4)
	sb := NewSupplyBound(tab)
	h, f := sb.H(), sb.F()
	for tt := slot.Time(0); tt < 2*h; tt++ {
		if sb.At(tt+h) != sb.At(tt)+f {
			t.Fatalf("sbf(%d+H)=%d ≠ sbf(%d)+F=%d", tt, sb.At(tt+h), tt, sb.At(tt)+f)
		}
	}
}

func TestSupplyBoundMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 4+rng.Intn(16), rng.Float64())
		sb := NewSupplyBound(tab)
		prev := slot.Time(0)
		for tt := slot.Time(0); tt < slot.Time(3*tab.Len()); tt++ {
			v := sb.At(tt)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSupplyBoundNegative(t *testing.T) {
	sb := NewSupplyBound(slot.NewTable(4))
	if sb.At(-3) != 0 {
		t.Error("negative window should supply 0")
	}
}

func TestServerDBF(t *testing.T) {
	g := task.Server{Period: 10, Budget: 3}
	cases := []struct{ t, want slot.Time }{
		{0, 0}, {9, 0}, {10, 3}, {19, 3}, {20, 6}, {100, 30}, {-5, 0},
	}
	for _, c := range cases {
		if got := ServerDBF(g, c.t); got != c.want {
			t.Errorf("ServerDBF(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if ServerDBF(task.Server{}, 10) != 0 {
		t.Error("zero server should demand 0")
	}
}

func TestServerSBF(t *testing.T) {
	g := task.Server{Period: 10, Budget: 3}
	// Π-Θ = 7; supply is 0 until t = 2(Π-Θ) = 14, then ramps.
	cases := []struct{ t, want slot.Time }{
		{0, 0}, {7, 0}, {14, 0}, {15, 1}, {16, 2}, {17, 3},
		{18, 3}, {24, 3}, {25, 4}, {27, 6},
	}
	for _, c := range cases {
		if got := ServerSBF(g, c.t); got != c.want {
			t.Errorf("ServerSBF(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestServerSBFPeriodicIdentity(t *testing.T) {
	// sbf(Γ,t+Π) = sbf(Γ,t)+Θ holds once t is past the initial
	// blackout clamp, i.e. for t ≥ Π−Θ (Eq. 8's t' ≥ 0 branch).
	f := func(p8, b8 uint8, t16 uint16) bool {
		p := slot.Time(p8%30) + 2
		b := slot.Time(b8)%p + 1
		g := task.Server{Period: p, Budget: b}
		tt := slot.Time(t16%1000) + (p - b)
		return ServerSBF(g, tt+p) == ServerSBF(g, tt)+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerSBFBounds(t *testing.T) {
	// 0 ≤ sbf(Γ,t) ≤ t and sbf never exceeds the bandwidth share Θ/Π·t + Θ.
	f := func(p8, b8 uint8, t16 uint16) bool {
		p := slot.Time(p8%30) + 2
		b := slot.Time(b8)%p + 1
		g := task.Server{Period: p, Budget: b}
		tt := slot.Time(t16 % 2000)
		v := ServerSBF(g, tt)
		if v < 0 || v > tt {
			return false
		}
		return float64(v) <= g.Utilization()*float64(tt)+float64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaskDBF(t *testing.T) {
	tk := task.Sporadic{Period: 10, WCET: 2, Deadline: 6}
	cases := []struct{ t, want slot.Time }{
		{0, 0}, {5, 0}, {6, 2}, {15, 2}, {16, 4}, {26, 6}, {-1, 0},
	}
	for _, c := range cases {
		if got := TaskDBF(tk, c.t); got != c.want {
			t.Errorf("TaskDBF(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSetDBFSums(t *testing.T) {
	ts := task.Set{
		{ID: 0, Period: 10, WCET: 2, Deadline: 6},
		{ID: 1, Period: 5, WCET: 1, Deadline: 5},
	}
	if got := SetDBF(ts, 10); got != TaskDBF(ts[0], 10)+TaskDBF(ts[1], 10) {
		t.Errorf("SetDBF = %d", got)
	}
}

func TestGSchedSimple(t *testing.T) {
	// Table: 4 slots, 1 busy → F=3, H=4, bandwidth 0.75.
	tab := slot.NewTable(4)
	tab.Assign(0, 1)
	sb := NewSupplyBound(tab)
	servers := []task.Server{
		{VM: 0, Period: 8, Budget: 2}, // U=0.25
		{VM: 1, Period: 8, Budget: 2}, // U=0.25
	}
	res, err := TestGSched(sb, servers)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Errorf("expected schedulable; fails at %d", res.FailsAt)
	}
	if res.Slack <= 0 || res.Horizon <= 0 || res.Checked == 0 {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestGSchedOverUtilized(t *testing.T) {
	tab := slot.NewTable(4)
	tab.Assign(0, 1)
	tab.Assign(1, 1) // F/H = 0.5
	sb := NewSupplyBound(tab)
	servers := []task.Server{{VM: 0, Period: 4, Budget: 3}} // U=0.75
	_, err := TestGSched(sb, servers)
	if !errors.Is(err, ErrOverUtilized) {
		t.Errorf("err = %v, want ErrOverUtilized", err)
	}
}

func TestGSchedUnschedulableByBurst(t *testing.T) {
	// Free slots all clustered at the end: a tight server can miss
	// even though total bandwidth suffices.
	tab := slot.NewTable(10)
	for i := 0; i < 6; i++ {
		tab.Assign(slot.Time(i), 1) // busy 0-5, free 6-9 → F=4
	}
	sb := NewSupplyBound(tab)
	// Server wants 2 slots every 5: bandwidth 0.4 = F/H... leave margin:
	servers := []task.Server{{VM: 0, Period: 5, Budget: 2}}
	_, err := TestGSched(sb, servers)
	// bandwidth 0.4 vs supply 0.4 → zero slack → ErrOverUtilized
	if !errors.Is(err, ErrOverUtilized) {
		t.Fatalf("zero-slack should report over-utilized, got %v", err)
	}
	servers = []task.Server{{VM: 0, Period: 5, Budget: 1}}
	res, err := TestGSched(sb, servers)
	if err != nil {
		t.Fatal(err)
	}
	// In window [0,5) there are 0 free slots but demand at t=5 is 1.
	if res.Schedulable {
		t.Error("bursty table should fail the tight server")
	}
}

func TestGSchedInvalidServer(t *testing.T) {
	sb := NewSupplyBound(slot.NewTable(4))
	if _, err := TestGSched(sb, []task.Server{{VM: 0, Period: 0, Budget: 1}}); err == nil {
		t.Error("invalid server accepted")
	}
}

func TestGSchedEmpty(t *testing.T) {
	sb := NewSupplyBound(slot.NewTable(0))
	res, err := TestGSched(sb, nil)
	if err != nil || !res.Schedulable {
		t.Errorf("empty system should be schedulable: %+v %v", res, err)
	}
	if _, err := TestGSched(sb, []task.Server{{VM: 0, Period: 4, Budget: 1}}); err == nil {
		t.Error("servers on empty table should error")
	}
}

func TestGSchedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agree := 0
	for trial := 0; trial < 60; trial++ {
		h := []int{4, 6, 8, 12}[rng.Intn(4)]
		tab := randomTable(rng, h, 0.3*rng.Float64())
		sb := NewSupplyBound(tab)
		n := 1 + rng.Intn(3)
		var servers []task.Server
		for i := 0; i < n; i++ {
			p := slot.Time([]int{4, 6, 8, 12}[rng.Intn(4)])
			b := slot.Time(1 + rng.Intn(2))
			if b > p {
				b = p
			}
			servers = append(servers, task.Server{VM: i, Period: p, Budget: b})
		}
		fast, errF := TestGSched(sb, servers)
		exact, errE := TestGSchedExact(sb, servers)
		if errF != nil {
			// Over-utilized (or zero slack): exact may disagree only in
			// the ε-slack corner Theorem 2 excludes; skip.
			continue
		}
		if errE != nil {
			t.Fatalf("trial %d: exact errored where fast did not: %v", trial, errE)
		}
		if fast.Schedulable != exact.Schedulable {
			t.Fatalf("trial %d: fast=%v exact=%v (table %s servers %v)",
				trial, fast.Schedulable, exact.Schedulable, tab, servers)
		}
		agree++
	}
	if agree == 0 {
		t.Error("no comparable trials generated")
	}
}

func TestLSchedSimple(t *testing.T) {
	g := task.Server{VM: 0, Period: 4, Budget: 2}                     // U=0.5
	ts := task.Set{{ID: 0, VM: 0, Period: 20, WCET: 2, Deadline: 20}} // U=0.1
	res, err := TestLSched(g, ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Errorf("expected schedulable; fails at %d", res.FailsAt)
	}
}

func TestLSchedTightDeadlineFails(t *testing.T) {
	// Server supplies nothing before 2(Π-Θ)=12; a task with D=4 and
	// low utilization still misses.
	g := task.Server{VM: 0, Period: 8, Budget: 2}
	ts := task.Set{{ID: 0, VM: 0, Period: 100, WCET: 1, Deadline: 4}}
	res, err := TestLSched(g, ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Error("deadline inside the server's blackout must fail")
	}
	if res.FailsAt != 4 {
		t.Errorf("FailsAt = %d, want 4", res.FailsAt)
	}
}

func TestLSchedOverUtilized(t *testing.T) {
	g := task.Server{VM: 0, Period: 10, Budget: 2}
	ts := task.Set{{ID: 0, VM: 0, Period: 10, WCET: 5, Deadline: 10}}
	if _, err := TestLSched(g, ts, 0); !errors.Is(err, ErrOverUtilized) {
		t.Errorf("err = %v, want ErrOverUtilized", err)
	}
}

func TestLSchedEmptySet(t *testing.T) {
	g := task.Server{VM: 0, Period: 10, Budget: 2}
	res, err := TestLSched(g, nil, 0)
	if err != nil || !res.Schedulable {
		t.Errorf("empty set should be schedulable: %v", err)
	}
}

func TestLSchedInvalidInputs(t *testing.T) {
	if _, err := TestLSched(task.Server{}, nil, 0); err == nil {
		t.Error("invalid server accepted")
	}
	g := task.Server{VM: 0, Period: 10, Budget: 5}
	bad := task.Set{{ID: 0, Period: 5, WCET: 9, Deadline: 5}}
	if _, err := TestLSched(g, bad, 0); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestLSchedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	agree := 0
	for trial := 0; trial < 80; trial++ {
		p := slot.Time([]int{4, 6, 8}[rng.Intn(3)])
		b := slot.Time(1 + rng.Intn(int(p))) // 1..p
		g := task.Server{VM: 0, Period: p, Budget: b}
		n := 1 + rng.Intn(3)
		var ts task.Set
		for i := 0; i < n; i++ {
			T := slot.Time([]int{8, 12, 16, 24}[rng.Intn(4)])
			C := slot.Time(1 + rng.Intn(2))
			D := C + slot.Time(rng.Intn(int(T-C)+1))
			ts = append(ts, task.Sporadic{ID: i, VM: 0, Period: T, WCET: C, Deadline: D})
		}
		fast, errF := TestLSched(g, ts, 0)
		exact, errE := TestLSchedExact(g, ts, 0)
		if errF != nil {
			continue
		}
		if errE != nil {
			t.Fatalf("trial %d: exact errored: %v", trial, errE)
		}
		if fast.Schedulable != exact.Schedulable {
			t.Fatalf("trial %d: fast=%v exact=%v (server %v tasks %v)",
				trial, fast.Schedulable, exact.Schedulable, g, ts)
		}
		agree++
	}
	if agree == 0 {
		t.Error("no comparable trials generated")
	}
}

func TestSystemTwoLayer(t *testing.T) {
	tab := slot.NewTable(8)
	tab.Assign(0, 1)
	tab.Assign(1, 1) // F=6, bandwidth 0.75
	servers := []task.Server{
		{VM: 0, Period: 8, Budget: 2},
		{VM: 1, Period: 8, Budget: 2},
	}
	ts := task.Set{
		{ID: 0, VM: 0, Period: 40, WCET: 2, Deadline: 40},
		{ID: 1, VM: 1, Period: 64, WCET: 4, Deadline: 64},
	}
	res, err := TestSystem(tab, servers, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Errorf("system should be schedulable: %+v", res)
	}
	if len(res.PerVM) != 2 {
		t.Errorf("PerVM = %v", res.PerVM)
	}
}

func TestSystemMissingServer(t *testing.T) {
	tab := slot.NewTable(8)
	ts := task.Set{{ID: 0, VM: 3, Period: 10, WCET: 1, Deadline: 10}}
	if _, err := TestSystem(tab, nil, ts); err == nil {
		t.Error("tasks without server accepted")
	}
}

func TestSystemDuplicateServer(t *testing.T) {
	tab := slot.NewTable(8)
	servers := []task.Server{
		{VM: 0, Period: 8, Budget: 1},
		{VM: 0, Period: 4, Budget: 1},
	}
	if _, err := TestSystem(tab, servers, nil); err == nil {
		t.Error("duplicate servers accepted")
	}
}

func TestSynthesizeServerMinimal(t *testing.T) {
	ts := task.Set{{ID: 0, VM: 0, Period: 40, WCET: 4, Deadline: 40}}
	g, err := SynthesizeServer(0, 8, ts)
	if err != nil {
		t.Fatal(err)
	}
	// The result must pass...
	if r, _ := TestLSched(g, ts, 0); !r.Schedulable {
		t.Fatalf("synthesized server %v does not schedule the set", g)
	}
	// ...and be minimal.
	if g.Budget > 1 {
		smaller := task.Server{VM: 0, Period: 8, Budget: g.Budget - 1}
		if r, err := TestLSched(smaller, ts, 0); err == nil && r.Schedulable {
			t.Errorf("budget %d not minimal: %d also works", g.Budget, g.Budget-1)
		}
	}
}

func TestSynthesizeServerEmptySet(t *testing.T) {
	g, err := SynthesizeServer(2, 10, nil)
	if err != nil || g.Budget != 1 || g.VM != 2 {
		t.Errorf("empty set synthesis = %v, %v", g, err)
	}
}

func TestSynthesizeServerImpossible(t *testing.T) {
	// D < 2(Π-Θ) is impossible even at Θ=Π... use Θ=Π → blackout 0;
	// impossible instead via utilization: C=9,T=10 with Π=8 cannot fit
	// inside any Θ ≤ 8?? U=0.9 ≤ 1 works with Θ=8. Force failure with
	// a deadline shorter than the WCET-spread: D=2 but C=2 needs
	// contiguous supply; with Π=8,Θ=8 supply is the full line → works.
	// So use two tasks overloading the VM.
	ts := task.Set{
		{ID: 0, VM: 0, Period: 4, WCET: 3, Deadline: 4},
		{ID: 1, VM: 0, Period: 4, WCET: 3, Deadline: 4},
	}
	if _, err := SynthesizeServer(0, 8, ts); err == nil {
		t.Error("overloaded VM synthesis should fail")
	}
	if _, err := SynthesizeServer(0, 0, nil); err == nil {
		t.Error("non-positive period accepted")
	}
}

func TestSynthesizeServersSystem(t *testing.T) {
	tab := slot.NewTable(16) // all free
	ts := task.Set{
		{ID: 0, VM: 0, Period: 64, WCET: 4, Deadline: 64},
		{ID: 1, VM: 1, Period: 80, WCET: 4, Deadline: 80},
	}
	servers, res, err := SynthesizeServers(tab, ts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 || !res.Schedulable {
		t.Errorf("servers = %v, res = %+v", servers, res)
	}
	if servers[0].VM != 0 || servers[1].VM != 1 {
		t.Error("servers should be sorted by VM")
	}
}

// TestTheorem2Soundness verifies the pseudo-polynomial horizon is
// sound: whenever the fast test accepts, no violation exists anywhere
// up to the exact horizon.
func TestTheorem2Soundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		tab := randomTable(rng, 6+rng.Intn(6), 0.25*rng.Float64())
		sb := NewSupplyBound(tab)
		servers := []task.Server{{VM: 0, Period: slot.Time(3 + rng.Intn(6)), Budget: 1}}
		fast, err := TestGSched(sb, servers)
		if err != nil || !fast.Schedulable {
			continue
		}
		exact, err := TestGSchedExact(sb, servers)
		if err != nil {
			continue
		}
		if !exact.Schedulable {
			t.Fatalf("trial %d: Theorem 2 accepted an infeasible system (fails at %d)", trial, exact.FailsAt)
		}
	}
}

func BenchmarkSupplyBoundConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, 1000, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSupplyBound(tab)
	}
}

func BenchmarkGSchedTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, 200, 0.3)
	sb := NewSupplyBound(tab)
	var servers []task.Server
	for i := 0; i < 8; i++ {
		servers = append(servers, task.Server{VM: i, Period: 64, Budget: 4})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TestGSched(sb, servers); err != nil {
			b.Fatal(err)
		}
	}
}
