// Sweep-sketch capture: testing.B benchmark bodies cannot return
// data, so the nightly case-study benchmarks deposit their merged
// cross-trial recorders in this package-level registry and
// cmd/ioguard-bench drains it after the suite runs, persisting the
// sketches into BENCH_sim.json's trajectory (results.SweepSketch).
package benchsuite

import (
	"sync"

	"ioguard/internal/experiments"
	"ioguard/internal/metrics"
	"ioguard/internal/results"
)

var (
	sketchMu    sync.Mutex
	sketchByKey map[string]results.SweepSketch
	sketchOrder []string
)

// recordSweepSketches folds one completed case-study sweep into the
// registry: per system, the response/tardiness DistFolds of every
// utilization point merge into one sweep-wide recorder pair. Repeat
// runs of the same sweep (b.N > 1) replace their previous entry, so
// the registry holds exactly one sketch per (sweep, system).
func recordSweepSketches(sweep string, points []experiments.CaseStudyPoint) {
	type acc struct {
		resp, tard   metrics.DistFold
		trials, succ int
		tputWeighted float64
		mergeFailed  bool
	}
	byName := map[string]*acc{}
	var order []string
	for i := range points {
		p := &points[i]
		a, ok := byName[p.System]
		if !ok {
			a = &acc{}
			byName[p.System] = a
			order = append(order, p.System)
		}
		if err := a.resp.Merge(&p.Agg.Response); err != nil {
			a.mergeFailed = true
		}
		if err := a.tard.Merge(&p.Agg.Tardiness); err != nil {
			a.mergeFailed = true
		}
		a.trials += p.Agg.Trials
		a.succ += p.Agg.Successes
		a.tputWeighted += p.Agg.Throughput.Mean() * float64(p.Agg.Trials)
	}
	sketchMu.Lock()
	defer sketchMu.Unlock()
	if sketchByKey == nil {
		sketchByKey = map[string]results.SweepSketch{}
	}
	for _, name := range order {
		a := byName[name]
		if a.mergeFailed || !a.resp.Resolved() || a.resp.Sketch() == nil {
			// Exact sweeps resolve but hold only the in-memory buffer
			// (never persisted); GK sweeps cannot merge at all. Only
			// the KLL fold ships.
			continue
		}
		sk := results.SweepSketch{
			Sweep:     sweep,
			System:    name,
			Trials:    a.trials,
			Response:  a.resp.Sketch(),
			Tardiness: a.tard.Sketch(),
		}
		if a.trials > 0 {
			sk.SuccessRatio = float64(a.succ) / float64(a.trials)
			sk.ThroughputMean = a.tputWeighted / float64(a.trials)
		}
		key := sweep + "/" + name
		if _, seen := sketchByKey[key]; !seen {
			sketchOrder = append(sketchOrder, key)
		}
		sketchByKey[key] = sk
	}
}

// TakeSweepSketches drains the registry in first-recorded order.
func TakeSweepSketches() []results.SweepSketch {
	sketchMu.Lock()
	defer sketchMu.Unlock()
	out := make([]results.SweepSketch, 0, len(sketchOrder))
	for _, key := range sketchOrder {
		out = append(out, sketchByKey[key])
	}
	sketchByKey = nil
	sketchOrder = nil
	return out
}
