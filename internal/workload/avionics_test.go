package workload

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// TestAvionicsHyperperiod pins the defining property of the family:
// the full set's hyper-period is exactly 4,000,000 slots — in the
// million-slot regime the interval table targets, yet still under
// slot.Build's sweep cap so the table remains constructible.
func TestAvionicsHyperperiod(t *testing.T) {
	ts, err := GenerateAvionics(AvionicsConfig{VMs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h := ts.Hyperperiod(); h != AvionicsHyperperiod {
		t.Fatalf("hyper-period = %d, want %d", h, AvionicsHyperperiod)
	}
	if AvionicsHyperperiod < 1_000_000 {
		t.Fatalf("stress cell below the 10^6-slot floor: %d", AvionicsHyperperiod)
	}
	for _, e := range append(AvionicsEntries(), AvionicsAlarmEntries()...) {
		if AvionicsHyperperiod%e.Period != 0 {
			t.Errorf("%s: period %d does not divide H=%d", e.Name, e.Period, AvionicsHyperperiod)
		}
		if e.WCET > MaxOpSlots {
			t.Errorf("%s: WCET %d exceeds MaxOpSlots %d", e.Name, e.WCET, MaxOpSlots)
		}
	}
}

// TestAvionicsShape checks the structural properties the simulator
// relies on: sparse per-device utilization, zero-jitter partitions
// leading the ID order (preload-eligible), jittered alarms trailing.
func TestAvionicsShape(t *testing.T) {
	ts, err := GenerateAvionics(AvionicsConfig{VMs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(AvionicsEntries()) + len(AvionicsAlarmEntries()); len(ts) != want {
		t.Fatalf("got %d tasks, want %d", len(ts), want)
	}
	for dev, u := range DeviceUtilization(ts) {
		if u <= 0.005 || u >= 0.10 {
			t.Errorf("device %s utilization %.4f outside the sparse regime (0.005, 0.10)", dev, u)
		}
	}
	nPart := len(AvionicsEntries())
	for i, tk := range ts {
		if i < nPart && tk.Jitter != 0 {
			t.Errorf("partition %s has jitter %d; must be preload-eligible", tk.Name, tk.Jitter)
		}
		if i >= nPart && tk.Jitter <= 0 {
			t.Errorf("alarm %s has no jitter; would leak into the P-channel", tk.Name)
		}
	}
}

// TestAvionicsReplicasAndJitter covers the config knobs.
func TestAvionicsReplicasAndJitter(t *testing.T) {
	ts, err := GenerateAvionics(AvionicsConfig{VMs: 2, Partitions: 2, Jitter: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*len(AvionicsEntries()) + len(AvionicsAlarmEntries()); len(ts) != want {
		t.Fatalf("got %d tasks, want %d", len(ts), want)
	}
	for _, tk := range ts[2*len(AvionicsEntries()):] {
		if tk.Jitter != 5 {
			t.Errorf("alarm %s jitter = %d, want 5", tk.Name, tk.Jitter)
		}
	}
	// Negative jitter disables alarm jitter entirely.
	ts, err = GenerateAvionics(AvionicsConfig{VMs: 2, Jitter: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range ts {
		if tk.Jitter != 0 {
			t.Errorf("%s: jitter %d with Jitter=-1", tk.Name, tk.Jitter)
		}
	}
	if _, err := GenerateAvionics(AvionicsConfig{}); err == nil {
		t.Fatal("zero VMs accepted")
	}
}

// TestAvionicsDeterminism: the set is a pure function of the config.
func TestAvionicsDeterminism(t *testing.T) {
	a, err := GenerateAvionics(AvionicsConfig{VMs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAvionics(AvionicsConfig{VMs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	_ = task.Set(a)
	var _ slot.Time = AvionicsHyperperiod
}
