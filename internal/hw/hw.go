// Package hw models the FPGA implementation costs of the evaluation
// (Sec. V-B and V-D): LUTs, registers, DSP blocks, block RAM and
// power for the I/O-GUARD hypervisor and the reference designs of
// Table I, plus the area/power/fmax scaling of Fig. 8.
//
// The model is component-additive: the hypervisor's consumption is
// the sum of its micro-architectural pieces (per-VM I/O pools, the
// comparator trees of the two schedulers, the P-channel memory
// controller and executor, and the virtualization driver), with
// coefficients calibrated so that the paper's reference configuration
// (16 VMs, 2 I/Os) lands on Table I's "Proposed" row. Synthesis
// outputs scale near-linearly in instantiated logic, which is why a
// calibrated additive model reproduces Fig. 8's trends.
package hw

import (
	"fmt"
	"math"
)

// Resources is one design's FPGA consumption.
type Resources struct {
	LUTs      int
	Registers int
	DSPs      int
	RAMKB     int
	PowerMW   float64
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		LUTs:      r.LUTs + o.LUTs,
		Registers: r.Registers + o.Registers,
		DSPs:      r.DSPs + o.DSPs,
		RAMKB:     r.RAMKB + o.RAMKB,
		PowerMW:   r.PowerMW + o.PowerMW,
	}
}

// Scale returns the resources multiplied by n (instantiating n copies).
func (r Resources) Scale(n int) Resources {
	return Resources{
		LUTs:      r.LUTs * n,
		Registers: r.Registers * n,
		DSPs:      r.DSPs * n,
		RAMKB:     r.RAMKB * n,
		PowerMW:   r.PowerMW * float64(n),
	}
}

// String renders the resources as a Table-I-style row.
func (r Resources) String() string {
	return fmt.Sprintf("LUTs=%d Regs=%d DSP=%d RAM=%dKB Power=%.0fmW",
		r.LUTs, r.Registers, r.DSPs, r.RAMKB, r.PowerMW)
}

// Reference designs of Table I (measured on the VC709 prototype).
var (
	// MicroBlaze is the full-featured soft processor (pipeline,
	// data cache enabled).
	MicroBlaze = Resources{LUTs: 4908, Registers: 4385, DSPs: 6, RAMKB: 256, PowerMW: 359}
	// RISCV is the open-source out-of-order RISC-V soft processor
	// of Mashimo et al. (ICFPT'19).
	RISCV = Resources{LUTs: 7432, Registers: 16321, DSPs: 21, RAMKB: 512, PowerMW: 583}
	// SPIController is the standard Xilinx SPI IP.
	SPIController = Resources{LUTs: 632, Registers: 427, DSPs: 0, RAMKB: 0, PowerMW: 4}
	// EthernetController is the standard Xilinx Ethernet IP.
	EthernetController = Resources{LUTs: 1321, Registers: 793, DSPs: 0, RAMKB: 0, PowerMW: 7}
	// BlueIO is the BlueVisor hardware hypervisor (BS|BV).
	BlueIO = Resources{LUTs: 3236, Registers: 3346, DSPs: 0, RAMKB: 256, PowerMW: 297}
)

// Hypervisor component coefficients, calibrated against the
// "Proposed" row of Table I (16 VMs, 2 I/Os → 2777 LUTs, 2974
// registers, 0 DSPs, 256 KB RAM, 279 mW).
const (
	// Per virtualization manager (executor + memory controller +
	// global-timer sync + response channel).
	managerBaseLUTs = 120
	managerBaseRegs = 61
	// Per I/O pool (priority queue entries with parameter slots,
	// control logic, shadow register, L-Sched comparator).
	poolLUTs = 58
	poolRegs = 77
	// Per VM input of the G-Sched comparator tree.
	gschedLUTs = 14
	gschedRegs = 9
	// Per virtualization driver (two translators + standardized I/O
	// controller glue).
	driverLUTs = 116
	driverRegs = 50
	// Memory banks per device (P-channel task/timing banks plus the
	// driver bank).
	bankRAMKB = 128
	// Power model: static floor plus area-proportional dynamic power
	// at the unified 100 MHz clock and simulated toggle rate
	// (Sec. V-D: "the design area dominated the overall power").
	staticPowerMW = 40.0
	dynamicPerLUT = 0.086
)

// Hypervisor returns the resource consumption of an I/O-GUARD
// hypervisor configured for vms VMs and ios connected I/O devices.
func Hypervisor(vms, ios int) (Resources, error) {
	if vms <= 0 || ios <= 0 {
		return Resources{}, fmt.Errorf("hw: need positive VMs (%d) and I/Os (%d)", vms, ios)
	}
	luts := ios * (managerBaseLUTs + driverLUTs + vms*(poolLUTs+gschedLUTs))
	regs := ios * (managerBaseRegs + driverRegs + vms*(poolRegs+gschedRegs))
	r := Resources{
		LUTs:      luts,
		Registers: regs,
		DSPs:      0,
		RAMKB:     ios * bankRAMKB,
	}
	r.PowerMW = staticPowerMW + dynamicPerLUT*float64(r.LUTs)
	return r, nil
}

// Row is one labelled line of Table I.
type Row struct {
	Name string
	Res  Resources
}

// Table1 returns the hardware-overhead comparison of Table I: the
// reference designs plus the proposed hypervisor at the paper's
// 16-VM, 2-I/O configuration.
func Table1() ([]Row, error) {
	prop, err := Hypervisor(16, 2)
	if err != nil {
		return nil, err
	}
	return []Row{
		{"MicroBlaze", MicroBlaze},
		{"RISC-V", RISCV},
		{"SPI", SPIController},
		{"Ethernet", EthernetController},
		{"BlueIO", BlueIO},
		{"Proposed", prop},
	}, nil
}

// Breakdown lists the hypervisor's per-block resource consumption: the
// micro-architectural pieces of Sec. III and what each costs. The rows
// sum to Hypervisor(vms, ios) exactly (verified in tests), which is
// what makes the Table I calibration auditable.
func Breakdown(vms, ios int) ([]Row, error) {
	if vms <= 0 || ios <= 0 {
		return nil, fmt.Errorf("hw: need positive VMs (%d) and I/Os (%d)", vms, ios)
	}
	rows := []Row{
		{
			Name: fmt.Sprintf("manager base ×%d", ios),
			Res:  Resources{LUTs: managerBaseLUTs, Registers: managerBaseRegs}.Scale(ios),
		},
		{
			Name: fmt.Sprintf("I/O pools ×%d", vms*ios),
			Res:  Resources{LUTs: poolLUTs, Registers: poolRegs}.Scale(vms * ios),
		},
		{
			Name: fmt.Sprintf("G-Sched comparators ×%d", vms*ios),
			Res:  Resources{LUTs: gschedLUTs, Registers: gschedRegs}.Scale(vms * ios),
		},
		{
			Name: fmt.Sprintf("virtualization drivers ×%d", ios),
			Res:  Resources{LUTs: driverLUTs, Registers: driverRegs}.Scale(ios),
		},
		{
			Name: fmt.Sprintf("memory banks ×%d", ios),
			Res:  Resources{RAMKB: bankRAMKB}.Scale(ios),
		},
	}
	// Attribute power to the total (static + dynamic) on a synthetic
	// "power" row so the sum matches Hypervisor().
	var luts int
	for _, r := range rows {
		luts += r.Res.LUTs
	}
	rows = append(rows, Row{
		Name: "power (static + dynamic)",
		Res:  Resources{PowerMW: staticPowerMW + dynamicPerLUT*float64(luts)},
	})
	return rows, nil
}

// router is one mesh router of the platform NoC.
var router = Resources{LUTs: 410, Registers: 380, DSPs: 0, RAMKB: 0, PowerMW: 18}

// vc709LUTs is the logic capacity of the evaluation board's
// XC7VX690T, used to normalize area (Fig. 8a).
const vc709LUTs = 433200

// SystemResources returns the platform consumption at scaling factor
// η (2^η VMs): one basic MicroBlaze per VM (Sec. V-D scales the
// processor count with η for both systems), the mesh routers
// connecting them, the I/O controllers, and — for I/O-GUARD — the
// hypervisor sized for the VM count.
func SystemResources(ioguard bool, eta int) (Resources, error) {
	if eta < 0 {
		return Resources{}, fmt.Errorf("hw: negative scaling factor %d", eta)
	}
	vms := 1 << eta
	cores := vms
	total := MicroBlaze.Scale(cores)
	total = total.Add(router.Scale(cores + 2))
	total = total.Add(EthernetController).Add(SPIController)
	if ioguard {
		hv, err := Hypervisor(vms, 2)
		if err != nil {
			return Resources{}, err
		}
		total = total.Add(hv)
	}
	return total, nil
}

// NormalizedArea returns the design's LUT share of the platform
// fabric (Fig. 8a's y-axis).
func NormalizedArea(ioguard bool, eta int) (float64, error) {
	r, err := SystemResources(ioguard, eta)
	if err != nil {
		return 0, err
	}
	return float64(r.LUTs) / vc709LUTs, nil
}

// SystemPowerMW returns the platform power at scaling factor η
// (Fig. 8b): with unified voltage, clock and toggle rate, power
// tracks design area.
func SystemPowerMW(ioguard bool, eta int) (float64, error) {
	r, err := SystemResources(ioguard, eta)
	if err != nil {
		return 0, err
	}
	return r.PowerMW, nil
}

// MaxFrequencyMHz returns the post-route maximum clock of the
// component that bounds system timing (Fig. 8c): the I/O-GUARD
// hypervisor or the legacy system's router/arbiter fabric. The
// critical path grows with the comparator-tree depth (log₂ of the VM
// count), so fmax degrades slowly with η; the hypervisor's dedicated
// point-to-point wiring keeps it above the router fabric at every
// scale (Obs. 6).
func MaxFrequencyMHz(ioguard bool, eta int) (float64, error) {
	if eta < 0 {
		return 0, fmt.Errorf("hw: negative scaling factor %d", eta)
	}
	vms := 1 << eta
	depth := math.Log2(float64(vms)) + 1
	if ioguard {
		return 192.0 / (1 + 0.028*depth), nil
	}
	return 156.0 / (1 + 0.034*depth), nil
}
