package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ioguard/internal/slot"
)

func TestPQPushMin(t *testing.T) {
	q := NewPQ[string](0)
	if _, _, _, ok := q.Min(); ok {
		t.Fatal("Min on empty queue should report !ok")
	}
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	_, key, v, ok := q.Min()
	if !ok || key != 10 || v != "a" {
		t.Errorf("Min = %d/%q, want 10/a", key, v)
	}
}

func TestPQPopOrder(t *testing.T) {
	q := NewPQ[int](0)
	keys := []slot.Time{5, 3, 9, 1, 7, 3, 2}
	for i, k := range keys {
		q.Push(k, i)
	}
	var got []slot.Time
	for {
		k, _, ok := q.PopMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	want := append([]slot.Time(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestPQFIFOTieBreak(t *testing.T) {
	q := NewPQ[string](0)
	q.Push(5, "first")
	q.Push(5, "second")
	q.Push(5, "third")
	_, v, _ := q.PopMin()
	if v != "first" {
		t.Errorf("tie broken to %q, want insertion order", v)
	}
	_, v, _ = q.PopMin()
	if v != "second" {
		t.Errorf("second pop = %q", v)
	}
}

func TestPQCapacity(t *testing.T) {
	q := NewPQ[int](2)
	if q.Cap() != 2 {
		t.Errorf("Cap = %d", q.Cap())
	}
	if _, err := q.Push(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Push(2, 2); err != nil {
		t.Fatal(err)
	}
	if !q.Full() {
		t.Error("queue with cap 2 holding 2 should be full")
	}
	if _, err := q.Push(3, 3); err == nil {
		t.Error("push beyond capacity should fail")
	}
	q.PopMin()
	if q.Full() {
		t.Error("queue should have room after pop")
	}
}

func TestPQRandomAccess(t *testing.T) {
	q := NewPQ[string](0)
	h1, _ := q.Push(10, "a")
	h2, _ := q.Push(20, "b")
	if v, ok := q.Get(h2); !ok || v != "b" {
		t.Errorf("Get(h2) = %q/%v", v, ok)
	}
	if k, ok := q.Key(h1); !ok || k != 10 {
		t.Errorf("Key(h1) = %d/%v", k, ok)
	}
	if !q.Update(h2, "B") {
		t.Error("Update failed")
	}
	if v, _ := q.Get(h2); v != "B" {
		t.Errorf("after Update Get = %q", v)
	}
	if v, ok := q.Remove(h1); !ok || v != "a" {
		t.Errorf("Remove(h1) = %q/%v", v, ok)
	}
	if _, ok := q.Get(h1); ok {
		t.Error("removed handle still resolvable")
	}
	if _, _, _, ok := q.Min(); !ok {
		t.Error("queue should still hold h2")
	}
	if !q.Reprioritize(h2, 1) {
		t.Error("Reprioritize failed")
	}
	if k, _ := q.Key(h2); k != 1 {
		t.Errorf("key after Reprioritize = %d", k)
	}
	if q.Update(12345, "x") || q.Reprioritize(12345, 1) {
		t.Error("operations on unknown handle should report false")
	}
	if _, ok := q.Remove(12345); ok {
		t.Error("Remove unknown handle should report false")
	}
	if _, ok := q.Key(12345); ok {
		t.Error("Key unknown handle should report false")
	}
}

func TestPQEach(t *testing.T) {
	q := NewPQ[int](0)
	q.Push(3, 30)
	q.Push(1, 10)
	sum := 0
	q.Each(func(h Handle, k slot.Time, v int) { sum += v })
	if sum != 40 {
		t.Errorf("Each visited sum %d, want 40", sum)
	}
}

func TestPQPopEmpty(t *testing.T) {
	q := NewPQ[int](0)
	if _, _, ok := q.PopMin(); ok {
		t.Error("PopMin on empty should report !ok")
	}
}

func TestPQHeapInvariantUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewPQ[int](0)
		var handles []Handle
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				h, _ := q.Push(slot.Time(rng.Intn(100)), op)
				handles = append(handles, h)
			case 2:
				if len(handles) > 0 {
					h := handles[rng.Intn(len(handles))]
					q.Reprioritize(h, slot.Time(rng.Intn(100)))
				}
			case 3:
				if len(handles) > 0 {
					i := rng.Intn(len(handles))
					q.Remove(handles[i])
					handles = append(handles[:i], handles[i+1:]...)
				}
			}
			if err := q.checkHeap(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPQMinAlwaysSmallest(t *testing.T) {
	f := func(keys []uint8) bool {
		q := NewPQ[int](0)
		min := slot.Never
		for i, k := range keys {
			q.Push(slot.Time(k), i)
			if slot.Time(k) < min {
				min = slot.Time(k)
			}
		}
		if len(keys) == 0 {
			_, _, _, ok := q.Min()
			return !ok
		}
		_, key, _, ok := q.Min()
		return ok && key == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO[int](0)
	if _, ok := f.Peek(); ok {
		t.Error("Peek on empty FIFO should report !ok")
	}
	if _, ok := f.Pop(); ok {
		t.Error("Pop on empty FIFO should report !ok")
	}
	for i := 0; i < 5; i++ {
		if !f.Push(i) {
			t.Fatal("push on unbounded FIFO failed")
		}
	}
	if f.Len() != 5 {
		t.Fatalf("Len = %d", f.Len())
	}
	if v, _ := f.Peek(); v != 0 {
		t.Errorf("Peek = %d, want 0", v)
	}
	for i := 0; i < 5; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d/%v", i, v, ok)
		}
	}
}

func TestFIFOBounded(t *testing.T) {
	f := NewFIFO[int](2)
	f.Push(1)
	f.Push(2)
	if !f.Full() {
		t.Error("FIFO should be full")
	}
	if f.Push(3) {
		t.Error("push on full FIFO should fail")
	}
	f.Pop()
	if !f.Push(3) {
		t.Error("push after pop should succeed")
	}
}

func TestFIFOEach(t *testing.T) {
	f := NewFIFO[int](0)
	f.Push(1)
	f.Push(2)
	var got []int
	f.Each(func(v int) { got = append(got, v) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Each order = %v", got)
	}
}

// TestFIFOPopZeroesSlot verifies popped slots drop their references
// immediately: a retained backing array must not pin popped jobs for
// the rest of a trial.
func TestFIFOPopZeroesSlot(t *testing.T) {
	f := NewFIFO[*int](0)
	for i := 0; i < 4; i++ {
		v := i
		f.Push(&v)
	}
	f.Pop()
	for i := 0; i < f.head; i++ {
		if f.items[i] != nil {
			t.Errorf("vacated slot %d still holds a reference", i)
		}
	}
	// Drain; compaction zeroes the suffix too.
	for {
		if _, ok := f.Pop(); !ok {
			break
		}
	}
	for i, v := range f.items[:cap(f.items)] {
		if v != nil {
			t.Errorf("backing slot %d still holds a reference after drain", i)
		}
	}
}

// TestFIFOMemoryBounded pushes/pops ~10⁵ cycles at a small steady
// depth and bounds both the backing array and the per-cycle
// allocations: the former re-slice-only Pop grew the live window of
// the backing array without bound and reallocated on every wrap.
func TestFIFOMemoryBounded(t *testing.T) {
	const depth, cycles = 8, 100000
	f := NewFIFO[int](0)
	for i := 0; i < depth; i++ {
		f.Push(i)
	}
	i := depth
	allocs := testing.AllocsPerRun(cycles, func() {
		f.Pop()
		f.Push(i)
		i++
	})
	if allocs > 0.001 {
		t.Errorf("steady-state pop/push allocates %.4f/op, want ~0 (compaction should reuse the array)", allocs)
	}
	if c := cap(f.items); c > 64*depth {
		t.Errorf("backing array grew to cap %d for depth-%d queue", c, depth)
	}
	if f.Len() != depth {
		t.Fatalf("Len = %d, want %d", f.Len(), depth)
	}
	// FIFO order survives all the compactions.
	want, _ := f.Peek()
	for {
		v, ok := f.Pop()
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("order broken: got %d, want %d", v, want)
		}
		want++
	}
}

// TestFIFOCompactionKeepsSemantics interleaves pushes and pops across
// compaction boundaries and checks contents against a reference.
func TestFIFOCompactionKeepsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := NewFIFO[int](0)
	var ref []int
	next := 0
	for op := 0; op < 20000; op++ {
		if rng.Intn(3) > 0 || len(ref) == 0 {
			f.Push(next)
			ref = append(ref, next)
			next++
		} else {
			v, ok := f.Pop()
			if !ok || v != ref[0] {
				t.Fatalf("op %d: Pop = %d/%v, want %d", op, v, ok, ref[0])
			}
			ref = ref[1:]
		}
		if f.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, f.Len(), len(ref))
		}
	}
	var got []int
	f.Each(func(v int) { got = append(got, v) })
	if len(got) != len(ref) {
		t.Fatalf("Each visited %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("content diverged at %d: %d vs %d", i, got[i], ref[i])
		}
	}
}

func TestShadow(t *testing.T) {
	var s Shadow[string]
	if s.Valid() {
		t.Error("zero shadow register should be empty")
	}
	if _, _, ok := s.Peek(); ok {
		t.Error("Peek on empty shadow should report !ok")
	}
	if _, _, ok := s.Take(); ok {
		t.Error("Take on empty shadow should report !ok")
	}
	s.Load(42, "op")
	if !s.Valid() {
		t.Error("shadow should be valid after Load")
	}
	k, v, ok := s.Peek()
	if !ok || k != 42 || v != "op" {
		t.Errorf("Peek = %d/%q/%v", k, v, ok)
	}
	s.Load(7, "op2") // overwrite
	k, v, _ = s.Take()
	if k != 7 || v != "op2" {
		t.Errorf("Take = %d/%q", k, v)
	}
	if s.Valid() {
		t.Error("shadow should be empty after Take")
	}
}

func BenchmarkPQPushPop(b *testing.B) {
	q := NewPQ[int](0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(slot.Time(rng.Intn(1000)), i)
		if q.Len() > 64 {
			q.PopMin()
		}
	}
}

// TestPQMemoryBounded mirrors TestFIFOMemoryBounded for the R-channel
// pool's priority queue: steady-state push/pop at a fixed resident
// depth must be allocation-free (nodes recycle through the freelist)
// and must not let removed entries pin their values — each pop zeroes
// the node's value and nils the vacated heap slot.
func TestPQMemoryBounded(t *testing.T) {
	const depth, cycles = 8, 100000
	q := NewPQ[*int](0)
	for i := 0; i < depth; i++ {
		v := i
		if _, err := q.Push(slot.Time(i), &v); err != nil {
			t.Fatal(err)
		}
	}
	key := slot.Time(depth)
	allocs := testing.AllocsPerRun(cycles, func() {
		q.PopMin()
		if _, err := q.Push(key, nil); err != nil {
			t.Fatal(err)
		}
		key++
	})
	if allocs > 0.001 {
		t.Errorf("steady-state pop/push allocates %.4f/op, want ~0 (freelist should recycle nodes)", allocs)
	}
	if q.Len() != depth {
		t.Fatalf("Len = %d, want %d", q.Len(), depth)
	}
	// The freelist holds only the transiently popped node, never an
	// unbounded backlog.
	if len(q.free) > depth {
		t.Errorf("freelist holds %d nodes at depth %d", len(q.free), depth)
	}
	// Freed nodes must not retain value references, and the heap's
	// backing array must not pin removed nodes.
	for i, n := range q.free {
		if n.value != nil {
			t.Errorf("freelist node %d retains value %v", i, n.value)
		}
	}
	for i := q.Len(); i < cap(q.heap) && i < q.Len()+depth; i++ {
		if q.heap[:cap(q.heap)][i] != nil {
			t.Errorf("vacated heap slot %d still pins a node", i)
		}
	}
	// Handles stay monotone across node recycling: a recycled node must
	// never resurrect a stale handle.
	h1, err := q.Push(900, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.PopMin()
	h2, err := q.Push(901, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h2 <= h1 {
		t.Errorf("handle went backwards across recycling: %d then %d", h1, h2)
	}
}
