package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"ioguard/internal/metrics"
	"ioguard/internal/sim"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// globalMin wraps a system so that it no longer advertises
// system.ShardedSystem: system.Run falls back to the legacy global
// fast-forward (one min over the whole system's NextWork). The wrapper
// lets the tests pit all three execution protocols — dense, global
// min, decoupled per-shard clocks — against each other.
type globalMin struct {
	system.System
	q  sim.Quiescer
	sk sim.Skipper
}

func wrapGlobalMin(build system.Builder) system.Builder {
	return func(tr system.Trial, col *system.Collector) (system.System, error) {
		sys, err := build(tr, col)
		if err != nil {
			return nil, err
		}
		g := &globalMin{System: sys}
		g.q, _ = sys.(sim.Quiescer)
		g.sk, _ = sys.(sim.Skipper)
		return g, nil
	}
}

// NextWork delegates the Quiescer protocol to the wrapped system; a
// system without one pins every slot (dense stepping, still correct).
func (g *globalMin) NextWork(now slot.Time) slot.Time {
	if g.q == nil {
		return now
	}
	return g.q.NextWork(now)
}

// SkipTo forwards skip notifications when the wrapped system wants
// them.
func (g *globalMin) SkipTo(from, to slot.Time) {
	if g.sk != nil {
		g.sk.SkipTo(from, to)
	}
}

// runThree executes the identical trial under all three protocols.
func runThree(t *testing.T, build system.Builder, tr system.Trial) (dense, global, sharded *metrics.TrialResult) {
	t.Helper()
	tr.Dense = true
	dense, err := system.Run(build, tr)
	if err != nil {
		t.Fatalf("dense run: %v", err)
	}
	tr.Dense = false
	global, err = system.Run(wrapGlobalMin(build), tr)
	if err != nil {
		t.Fatalf("global-min run: %v", err)
	}
	sharded, err = system.Run(build, tr)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return dense, global, sharded
}

// TestDecoupledEquivalenceTelemetry pits dense stepping against the
// decoupled per-device clocks on the bursty-telemetry family — sparse
// multi-device sets and the one-hot-device skew cell, the regimes the
// decoupling exists for — across every case-study system and baseline.
func TestDecoupledEquivalenceTelemetry(t *testing.T) {
	cfgs := []workload.TelemetryConfig{
		{VMs: 4},
		{VMs: 4, Sensors: 2, Seed: 5},
		{VMs: 4, HotDevice: "can", HotUtil: 0.6, Seed: 9},
		{VMs: 6, Sensors: 2, HotDevice: "uart", HotUtil: 0.8, Seed: 13},
	}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		for ci, cfg := range cfgs {
			t.Run(fmt.Sprintf("%s/cfg%d", name, ci), func(t *testing.T) {
				ts, err := workload.GenerateTelemetry(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tr := system.Trial{VMs: cfg.VMs, Tasks: ts, Horizon: ts.Hyperperiod(), Seed: int64(31 + ci)}
				dense, ff := runBoth(t, build, tr)
				requireEqual(t, dense, ff)
			})
		}
	}
}

// TestDecoupledThreeWayEquivalence checks that all three execution
// protocols — dense, legacy global min (via a wrapper that hides
// Shards), decoupled shard clocks — agree byte-for-byte on both the
// case-study and telemetry workloads, for every system.
func TestDecoupledThreeWayEquivalence(t *testing.T) {
	caseTS, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 0.7, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	telTS, err := workload.GenerateTelemetry(workload.TelemetryConfig{VMs: 4, HotDevice: "spi", HotUtil: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	workloads := []struct {
		name string
		tr   system.Trial
	}{
		{"case-study", system.Trial{VMs: 4, Tasks: caseTS, Horizon: caseTS.Hyperperiod() * 2, Seed: 101}},
		{"telemetry", system.Trial{VMs: 4, Tasks: telTS, Horizon: telTS.Hyperperiod(), Seed: 3}},
	}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		for _, w := range workloads {
			t.Run(fmt.Sprintf("%s/%s", name, w.name), func(t *testing.T) {
				dense, global, sharded := runThree(t, build, w.tr)
				requireEqual(t, dense, global)
				requireEqual(t, dense, sharded)
			})
		}
	}
}

// TestDecoupledEquivalenceRandomized fuzzes the contract: random VM
// counts, utilizations and seeds over the case-study generator, every
// system, dense vs decoupled.
func TestDecoupledEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20240805))
	builders := Builders()
	const trials = 4
	for i := 0; i < trials; i++ {
		vms := 1 + rng.Intn(8)
		util := 0.40 + 0.60*rng.Float64()
		seed := rng.Int63()
		ts, err := workload.Generate(workload.Config{
			VMs: vms, TargetUtil: util, Seed: seed,
			SyntheticJitter: slot.Time(rng.Intn(200)),
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := system.Trial{VMs: vms, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: seed}
		for _, name := range SystemNames() {
			build := builders[name]
			t.Run(fmt.Sprintf("t%d/%s", i, name), func(t *testing.T) {
				dense, ff := runBoth(t, build, tr)
				requireEqual(t, dense, ff)
			})
		}
	}
}
