// Package core assembles the complete I/O-GUARD system of Sec. II:
// guest RTOSs whose para-virtual drivers forward I/O requests straight
// to the hardware hypervisor, one (virtualization manager,
// virtualization driver) pair per connected I/O device, pre-defined
// tasks compiled into each manager's Time Slot Table at initialization
// and run-time tasks scheduled by the two-layer R-channel scheduler.
//
// The I/O-GUARD-x configurations of the case study (Sec. V-C) map to
// Config.PreloadFrac: x% of the I/O tasks are loaded into the
// P-channel before run time and the rest arrive through the R-channel.
package core

import (
	"fmt"
	"sort"
	"strings"

	"ioguard/internal/analysis"
	"ioguard/internal/hypervisor"
	"ioguard/internal/iodev"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// Config parameterizes an I/O-GUARD instance.
type Config struct {
	VMs int
	// PreloadFrac is the fraction of tasks pre-loaded into the
	// P-channel (0 ≤ f ≤ 1). Only zero-jitter tasks are eligible:
	// the Time Slot Table fixes their release times before run time.
	PreloadFrac float64
	// Mode selects the R-channel global scheduler. DirectEDF matches
	// the hardware description of Sec. III-A (G-Sched compares the
	// deadlines buffered in the shadow registers); ServerEDF is the
	// analyzable periodic-server configuration of Sec. IV.
	Mode hypervisor.Mode
	// Servers configures the per-VM periodic servers in ServerEDF
	// mode. The same servers are applied to every device's manager.
	Servers []task.Server
	// AutoServers (ServerEDF mode) ignores Servers and instead
	// dimensions minimal per-VM servers per device from that device's
	// R-channel tasks using the Theorem 3/4 synthesis, then verifies
	// them against the device's Time Slot Table with Theorem 1/2.
	// Construction fails if some device's R-channel load is
	// unschedulable — the analysis rejecting a configuration before
	// run time is the intended workflow of Sec. IV.
	AutoServers bool
	// ServerPeriod is Π for AutoServers; ≤0 picks a quarter of the
	// smallest R-channel deadline on the device (min 2 slots).
	ServerPeriod slot.Time
	// PoolCapacity bounds each I/O pool; ≤ 0 means unbounded.
	PoolCapacity int
	// WorkConserving lets the R-channel reclaim idle P-channel slots
	// (an extension; the paper's design is strict).
	WorkConserving bool
}

// System is a runnable I/O-GUARD instance implementing
// system.System.
type System struct {
	name      string
	cfg       Config
	hv        *hypervisor.Hypervisor
	residual  task.Set
	preloaded task.Set
	// overhead is the per-device request-translation cost charged as
	// device occupancy on every operation (the translator sits in
	// front of the I/O controller, so the controller cannot start the
	// next operation before translation completes).
	overhead map[string]slot.Time
}

var _ system.System = (*System)(nil)

// New builds an I/O-GUARD system for the workload ts, wiring observed
// completions into col. Tasks are partitioned per device; for each
// device the pre-loaded tasks are compiled into a Time Slot Table
// with offline EDF (slot.Build) and the remainder become R-channel
// residual work.
func New(cfg Config, ts task.Set, col *system.Collector) (*System, error) {
	if cfg.VMs <= 0 {
		return nil, fmt.Errorf("core: need at least one VM")
	}
	if cfg.PreloadFrac < 0 || cfg.PreloadFrac > 1 {
		return nil, fmt.Errorf("core: preload fraction %.2f outside [0,1]", cfg.PreloadFrac)
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		name:     fmt.Sprintf("I/O-GUARD-%d", int(cfg.PreloadFrac*100+0.5)),
		cfg:      cfg,
		hv:       hypervisor.NewHypervisor(),
		overhead: make(map[string]slot.Time),
	}
	preload := selectPreload(ts, cfg.PreloadFrac)
	byDevice := map[string]task.Set{}
	for _, t := range ts {
		byDevice[t.Device] = append(byDevice[t.Device], t)
	}
	devices := make([]string, 0, len(byDevice))
	for d := range byDevice {
		devices = append(devices, d)
	}
	sort.Strings(devices)

	path := rtos.Costs(rtos.IOGuard)
	for _, dev := range devices {
		model, err := iodev.Lookup(dev)
		if err != nil {
			return nil, err
		}
		drv := hypervisor.NewDriver(model)
		s.overhead[dev] = drv.OpOverhead()
		// Compile this device's pre-loaded tasks into σ*, with the
		// translation overhead folded into each WCET (the table's
		// "worst-case computation time" covers the full device
		// occupancy). If the offline EDF cannot place them all
		// (transient overload at extreme target utilizations), demote
		// tasks to the R-channel until the table builds.
		pre := byDevice[dev].Filter(func(t task.Sporadic) bool { return preload[t.ID] })
		tab, specs, err := buildTable(pre, drv.OpOverhead())
		for err != nil && len(pre) > 0 {
			demoted := pre[len(pre)-1]
			delete(preload, demoted.ID)
			pre = pre[:len(pre)-1]
			tab, specs, err = buildTable(pre, drv.OpOverhead())
		}
		if err != nil {
			return nil, err
		}
		servers := cfg.Servers
		if cfg.Mode == hypervisor.ServerEDF && cfg.AutoServers {
			residual := byDevice[dev].Filter(func(t task.Sporadic) bool { return !preload[t.ID] })
			pathLatency := path.Request + drv.RequestLatency() + path.Response + drv.ResponseLatency()
			servers, err = synthesizeServers(tab, residual, cfg.ServerPeriod, drv.OpOverhead(), pathLatency)
			if err != nil {
				return nil, fmt.Errorf("core: device %s: %w", dev, err)
			}
		}
		mgr, err := hypervisor.New(hypervisor.Config{
			VMs:            cfg.VMs,
			PoolCapacity:   cfg.PoolCapacity,
			Table:          tab,
			Servers:        servers,
			Mode:           cfg.Mode,
			WorkConserving: cfg.WorkConserving,
			ReqLatency:     path.Request + drv.RequestLatency(),
			RespLatency:    path.Response + drv.ResponseLatency(),
		})
		if err != nil {
			return nil, err
		}
		if col != nil {
			mgr.OnComplete = col.Complete
		}
		for id, ps := range specs {
			if err := mgr.Preload(ps.spec, id, ps.offset); err != nil {
				return nil, err
			}
		}
		if err := s.hv.Add(dev, mgr, drv); err != nil {
			return nil, err
		}
	}
	for _, t := range ts {
		if preload[t.ID] {
			s.preloaded = append(s.preloaded, t)
		} else {
			s.residual = append(s.residual, t)
		}
	}
	return s, nil
}

// selectPreload picks the pre-defined task set: zero-jitter tasks in
// ID order until the requested fraction of the whole workload is
// reached.
func selectPreload(ts task.Set, frac float64) map[int]bool {
	want := int(frac*float64(len(ts)) + 0.5)
	eligible := ts.Filter(func(t task.Sporadic) bool { return t.Jitter == 0 })
	sort.Slice(eligible, func(i, j int) bool { return eligible[i].ID < eligible[j].ID })
	out := make(map[int]bool, want)
	for i := 0; i < len(eligible) && i < want; i++ {
		out[eligible[i].ID] = true
	}
	return out
}

// synthesizeServers dimensions minimal per-VM servers for a device's
// R-channel tasks and verifies the two-layer analysis against its
// table. overhead is the per-op device occupancy the submission path
// charges, and pathLatency the request+response slots outside the
// device; the analysis sees inflated WCETs and deflated deadlines so
// its guarantees cover the full observed response time.
func synthesizeServers(tab *slot.Table, residual task.Set, pi, overhead, pathLatency slot.Time) ([]task.Server, error) {
	if len(residual) == 0 {
		return nil, nil
	}
	inflated := make(task.Set, len(residual))
	for i, t := range residual {
		t.WCET += overhead
		t.Deadline -= pathLatency
		if t.WCET > t.Deadline {
			return nil, fmt.Errorf("task %d: wcet %d + overhead exceeds effective deadline %d", t.ID, t.WCET, t.Deadline)
		}
		inflated[i] = t
	}
	residual = inflated
	if pi <= 0 {
		minD := residual[0].Deadline
		for _, t := range residual {
			if t.Deadline < minD {
				minD = t.Deadline
			}
		}
		pi = minD / 4
		if pi < 2 {
			pi = 2
		}
	}
	servers, res, err := analysis.SynthesizeServers(tab, residual, pi)
	if err != nil {
		return nil, err
	}
	if !res.Schedulable {
		return nil, fmt.Errorf("R-channel load unschedulable with Π=%d servers", pi)
	}
	return servers, nil
}

// preSpec is one pre-loaded task with its table start-time offset.
type preSpec struct {
	spec   *task.Sporadic
	offset slot.Time
}

// buildTable compiles pre-loaded tasks into a Time Slot Table and the
// spec map the manager's P-channel executes. overhead is added to
// every WCET: the table reserves the translation slots too.
func buildTable(pre task.Set, overhead slot.Time) (*slot.Table, map[slot.TaskID]preSpec, error) {
	if len(pre) == 0 {
		return slot.NewTable(1), nil, nil
	}
	reqs := make([]slot.Requirement, len(pre))
	specs := make(map[slot.TaskID]preSpec, len(pre))
	for i := range pre {
		id := slot.TaskID(i)
		// Stagger the start times across each task's period: loading
		// every pre-defined task at offset 0 would pack the table
		// into one solid busy burst per hyper-period and starve
		// tight R-channel deadlines of free slots.
		offset := (slot.Time(i) * 613) % pre[i].Period
		reqs[i] = slot.Requirement{
			ID:       id,
			Period:   pre[i].Period,
			WCET:     pre[i].WCET + overhead,
			Deadline: pre[i].Deadline,
			Offset:   offset,
		}
		spec := pre[i]
		spec.WCET += overhead
		specs[id] = preSpec{spec: &spec, offset: offset}
	}
	tab, _, err := slot.Build(reqs)
	if err != nil {
		return nil, nil, err
	}
	return tab, specs, nil
}

// Name returns e.g. "I/O-GUARD-70".
func (s *System) Name() string { return s.name }

// Arch returns rtos.IOGuard.
func (s *System) Arch() rtos.Arch { return rtos.IOGuard }

// Residual returns the R-channel tasks the external release engine
// must drive (pre-loaded tasks are generated by the P-channel).
func (s *System) Residual() task.Set { return s.residual }

// Preloaded returns the tasks compiled into the P-channel.
func (s *System) Preloaded() task.Set { return s.preloaded }

// Hypervisor exposes the underlying hardware hypervisor (for
// inspection and the ablation benchmarks).
func (s *System) Hypervisor() *hypervisor.Hypervisor { return s.hv }

// Submit forwards a released job through the para-virtual driver to
// the hypervisor, charging the request-translation slots as device
// occupancy.
func (s *System) Submit(now slot.Time, j *task.Job) {
	j.Remaining += s.overhead[j.Task.Device]
	s.hv.Submit(now, j)
}

// Step advances the hypervisor one slot.
func (s *System) Step(now slot.Time) { s.hv.Step(now) }

// NextWork implements the sim.Quiescer protocol: the earliest slot at
// which any device's manager has work.
func (s *System) NextWork(now slot.Time) slot.Time { return s.hv.NextWork(now) }

// SkipTo lets every manager account a fast-forwarded idle span.
func (s *System) SkipTo(from, to slot.Time) { s.hv.SkipTo(from, to) }

// Pending visits jobs buffered inside the hypervisor.
func (s *System) Pending(visit func(j *task.Job)) { s.hv.PendingJobs(visit) }

// deviceShard adapts one device's virtualization manager to the
// per-component clock protocol. Managers are fully independent — the
// R-channel, P-channel and response path of one device never touch
// another's state — so each may advance on its own virtual clock.
type deviceShard struct {
	dev      string
	mgr      *hypervisor.Manager
	overhead slot.Time
}

// Devices returns the single device this shard owns.
func (d *deviceShard) Devices() []string { return []string{d.dev} }

// Submit mirrors System.Submit for this device: the request-
// translation overhead is charged before the manager sees the job.
func (d *deviceShard) Submit(now slot.Time, j *task.Job) {
	j.Remaining += d.overhead
	d.mgr.Submit(now, j)
}

// Step advances the manager one slot of its local clock.
func (d *deviceShard) Step(now slot.Time) { d.mgr.Step(now) }

// NextWork is the manager's quiescence bound on its local clock.
func (d *deviceShard) NextWork(now slot.Time) slot.Time { return d.mgr.NextWork(now) }

// SetCompletionSink implements system.ParallelShard: the parallel
// runner buffers this manager's completions per shard and merges them
// at the epoch barrier, replacing the direct collector wiring done at
// construction.
func (d *deviceShard) SetCompletionSink(sink func(j *task.Job, at slot.Time)) {
	d.mgr.OnComplete = sink
}

// SkipTo bulk-accounts a fast-forwarded idle span.
func (d *deviceShard) SkipTo(from, to slot.Time) { d.mgr.SkipTo(from, to) }

// Shards implements system.ShardedSystem: one shard per device
// manager, in sorted device order (the same order the monolithic Step
// iterates, which keeps the decoupled completion interleaving
// byte-identical to dense runs).
func (s *System) Shards() []system.Shard {
	devs := s.hv.Devices()
	out := make([]system.Shard, 0, len(devs))
	for _, dev := range devs {
		mgr, err := s.hv.Manager(dev)
		if err != nil {
			continue
		}
		out = append(out, &deviceShard{dev: dev, mgr: mgr, overhead: s.overhead[dev]})
	}
	return out
}

// Dropped returns jobs rejected by full pools or unknown devices.
func (s *System) Dropped() int64 {
	n := s.hv.Dropped()
	for _, st := range s.hv.Stats() {
		n += st.Dropped
	}
	return n
}

// Describe summarizes the built system: per-device table occupancy,
// channel split and scheduler configuration.
func (s *System) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d VMs, %s G-Sched, %d pre-loaded / %d run-time tasks\n",
		s.name, s.cfg.VMs, s.cfg.Mode, len(s.preloaded), len(s.residual))
	for _, dev := range s.hv.Devices() {
		mgr, err := s.hv.Manager(dev)
		if err != nil {
			continue
		}
		tab := mgr.Config().Table
		fmt.Fprintf(&b, "  %-10s σ*: H=%d F=%d (P-channel %.1f%%), banks %d B, op overhead %d slots\n",
			dev, tab.Len(), tab.FreeCount(), 100*tab.Utilization(), mgr.BankBytes(), s.overhead[dev])
	}
	return b.String()
}
