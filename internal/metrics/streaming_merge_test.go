package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestStreamingMergeMomentsExact: Merge must combine n, mean,
// variance, min and max exactly (the parallel Welford update is
// algebraically exact; only quantiles are sketched).
func TestStreamingMergeMomentsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	whole := NewStreaming(0.01) // exact-moment reference, GK backend is fine
	parts := make([]*Streaming, 4)
	for i := range parts {
		parts[i] = NewStreamingKLL(0.01, uint64(i)+10)
	}
	for i := 0; i < 40_000; i++ {
		v := rng.NormFloat64()*100 + 50
		whole.Add(v)
		parts[i%len(parts)].Add(v)
	}
	agg := NewStreamingKLL(0.01, 1)
	for _, p := range parts {
		if err := agg.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if agg.N() != whole.N() {
		t.Fatalf("merged n=%d, want %d", agg.N(), whole.N())
	}
	if agg.Min() != whole.Min() || agg.Max() != whole.Max() {
		t.Fatalf("merged min/max %g/%g, want %g/%g", agg.Min(), agg.Max(), whole.Min(), whole.Max())
	}
	if d := math.Abs(agg.Mean() - whole.Mean()); d > 1e-9 {
		t.Fatalf("merged mean off by %g", d)
	}
	if d := math.Abs(agg.Variance() - whole.Variance()); d > 1e-6 {
		t.Fatalf("merged variance off by %g", d)
	}
}

// TestStreamingMergeEmptySides: folding empty recorders in either
// direction must leave moments untouched while still absorbing the
// coin stream.
func TestStreamingMergeEmptySides(t *testing.T) {
	full := NewStreamingKLL(0.01, 1)
	for i := 1; i <= 100; i++ {
		full.Add(float64(i))
	}
	if err := full.Merge(NewStreamingKLL(0.01, 2)); err != nil {
		t.Fatal(err)
	}
	if full.N() != 100 || full.Min() != 1 || full.Max() != 100 {
		t.Fatalf("merge of empty changed moments: n=%d min=%g max=%g", full.N(), full.Min(), full.Max())
	}
	empty := NewStreamingKLL(0.01, 3)
	if err := empty.Merge(full); err != nil {
		t.Fatal(err)
	}
	if empty.N() != 100 || empty.Min() != 1 || empty.Max() != 100 || empty.Mean() != full.Mean() {
		t.Fatalf("merge into empty lost moments: n=%d min=%g max=%g", empty.N(), empty.Min(), empty.Max())
	}
}

// TestStreamingMergeRequiresMergeableBackend: GK-backed recorders
// refuse to merge in either role.
func TestStreamingMergeRequiresMergeableBackend(t *testing.T) {
	gk := NewStreaming(0.01)
	kll := NewStreamingKLL(0.01, 1)
	if err := gk.Merge(kll); err == nil {
		t.Fatal("merge into GK-backed recorder succeeded")
	}
	if err := kll.Merge(gk); err == nil {
		t.Fatal("merge of GK-backed recorder succeeded")
	}
	if gk.Mergeable() {
		t.Fatal("GK-backed recorder claims mergeable")
	}
	if !kll.Mergeable() {
		t.Fatal("KLL-backed recorder claims non-mergeable")
	}
}

// TestStreamingClone: the clone is deep — mutating it does not move
// the original.
func TestStreamingClone(t *testing.T) {
	s := NewStreamingKLL(0.01, 1)
	for i := 0; i < 10_000; i++ {
		s.Add(float64(i))
	}
	before, _ := json.Marshal(s)
	c, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		c.Add(float64(-i))
	}
	after, _ := json.Marshal(s)
	if !bytes.Equal(before, after) {
		t.Fatal("mutating clone changed the original")
	}
	if _, err := NewStreaming(0.01).Clone(); err == nil {
		t.Fatal("clone of GK-backed recorder succeeded")
	}
}

// TestStreamingJSONRoundTrip: encode → decode → encode is byte-stable
// and the decoded recorder answers identically.
func TestStreamingJSONRoundTrip(t *testing.T) {
	s := NewStreamingKLL(0.005, 9)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 25_000; i++ {
		s.Add(rng.ExpFloat64() * 10)
	}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	dec := &Streaming{}
	if err := json.Unmarshal(b1, dec); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("encode→decode→encode not byte-stable")
	}
	if dec.N() != s.N() || dec.Mean() != s.Mean() || dec.Percentile(99) != s.Percentile(99) {
		t.Fatal("decoded recorder answers differently")
	}
	if _, err := json.Marshal(NewStreaming(0.01)); err == nil {
		t.Fatal("marshal of GK-backed recorder succeeded")
	}
}

// TestStreamingUnmarshalRejectsMalformed: the recorder's wire
// invariants (finiteness, m2 ≥ 0, min ≤ max, n consistency with the
// embedded sketch, empty-means-zero) each have a hostile case.
func TestStreamingUnmarshalRejectsMalformed(t *testing.T) {
	sketch := `{"eps":0.01,"k":300,"n":3,"rng":1,"levels":[[1,2,3]]}`
	cases := []struct {
		name, raw, want string
	}{
		{"missing sketch", `{"n":3,"mean":2,"m2":2,"min":1,"max":3}`, "missing sketch"},
		{"n mismatch", `{"n":4,"mean":2,"m2":2,"min":1,"max":3,"sketch":` + sketch + `}`, "disagrees"},
		{"negative m2", `{"n":3,"mean":2,"m2":-1,"min":1,"max":3,"sketch":` + sketch + `}`, "negative"},
		{"min above max", `{"n":3,"mean":2,"m2":2,"min":5,"max":3,"sketch":` + sketch + `}`, "exceeds"},
		{"overflow mean", `{"n":3,"mean":1e999,"m2":2,"min":1,"max":3,"sketch":` + sketch + `}`, ""},
		{"empty with moments", `{"n":0,"mean":7,"m2":0,"min":0,"max":0,"sketch":{"eps":0.01,"k":300,"n":0,"rng":1,"levels":[[]]}}`, "empty"},
		{"bad sketch", `{"n":3,"mean":2,"m2":2,"min":1,"max":3,"sketch":{"eps":9,"k":300,"n":3,"rng":1,"levels":[[1,2,3]]}}`, "ε"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Streaming
			if err := json.Unmarshal([]byte(tc.raw), &s); err == nil {
				t.Fatalf("decode of %q payload succeeded", tc.name)
			} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("decode of %q: error %v does not mention %q", tc.name, err, tc.want)
			}
		})
	}
	var s Streaming
	good := `{"n":3,"mean":2,"m2":2,"min":1,"max":3,"sketch":` + sketch + `}`
	if err := json.Unmarshal([]byte(good), &s); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if s.N() != 3 || s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("valid payload decoded wrong: %s", s.String())
	}
}

// TestStreamingKLLRecorderContract: the KLL-backed recorder satisfies
// the same Recorder behavior suite as the GK-backed one.
func TestStreamingKLLRecorderContract(t *testing.T) {
	var _ Recorder = NewStreamingKLL(0.01, 1)
	s := NewStreamingKLL(0.01, 1)
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty KLL-backed recorder not zero-valued")
	}
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	exact := &Sample{}
	for _, v := range vals {
		s.Add(v)
		exact.Add(v)
	}
	if s.Mean() != exact.Mean() || s.Min() != exact.Min() || s.Max() != exact.Max() {
		t.Fatalf("moments diverge from Sample: %s vs %s", s.String(), exact.String())
	}
	if s.Percentile(50) != exact.Percentile(50) {
		// No compaction at n=8: ranks are exact.
		t.Fatalf("p50 %g, want %g", s.Percentile(50), exact.Percentile(50))
	}
}
