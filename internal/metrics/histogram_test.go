package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(10, 10, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 30, 55, 80, 99, -1, 100, 250} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	want := []int64{1, 1, 1, 2} // 5 | 30 | 55 | 80,99
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", under, over)
	}
}

func TestHistogramAddSample(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	s.Add(3)
	h, _ := NewHistogram(0, 4, 2)
	h.AddSample(&s)
	if h.N() != 3 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(6)
	h.Add(7)
	h.Add(-5)
	h.Add(20)
	out := h.Render(10)
	for _, want := range []string{"< 0", "0–5", "5–10", "≥ 10", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	empty, _ := NewHistogram(0, 1, 1)
	if empty.Render(0) == "" {
		t.Error("empty histogram should still render its bucket row")
	}
}

func TestHistogramCountConservation(t *testing.T) {
	f := func(raw []int16) bool {
		h, _ := NewHistogram(-100, 100, 8)
		for _, r := range raw {
			h.Add(float64(r))
		}
		var sum int64
		for i := 0; i < 8; i++ {
			sum += h.Bucket(i)
		}
		u, o := h.OutOfRange()
		return sum+u+o == h.N() && h.N() == int64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
