// Tests for the run-iteration API the fast-forward stack consumes.
package slot

import (
	"testing"
)

// TestRunsPartitionTable: Runs visits maximal runs tiling [0,H).
func TestRunsPartitionTable(t *testing.T) {
	tab := NewTable(10)
	for _, s := range []Time{2, 3, 4, 7} {
		if err := tab.Assign(s, 1); err != nil {
			t.Fatal(err)
		}
	}
	var got []Run
	tab.Runs(func(r Run) bool { got = append(got, r); return true })
	want := []Run{
		{0, 2, Free}, {2, 3, 1}, {5, 2, Free}, {7, 1, 1}, {8, 2, Free},
	}
	if len(got) != len(want) {
		t.Fatalf("runs %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tab.RunCount() != 5 {
		t.Fatalf("RunCount = %d, want 5", tab.RunCount())
	}
}

// TestRunsEarlyStop: visitors returning false stop the iteration.
func TestRunsEarlyStop(t *testing.T) {
	tab := NewTable(10)
	if err := tab.Assign(5, 0); err != nil {
		t.Fatal(err)
	}
	n := 0
	tab.Runs(func(Run) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Runs visited %d after stop", n)
	}
	n = 0
	tab.FreeRuns(func(Run) bool { n++; return false })
	if n != 1 {
		t.Fatalf("FreeRuns visited %d after stop", n)
	}
}

// TestFreeRunsOnlyFree: FreeRuns skips owned runs entirely.
func TestFreeRunsOnlyFree(t *testing.T) {
	tab := NewTable(8)
	for _, s := range []Time{0, 1, 4} {
		if err := tab.Assign(s, 2); err != nil {
			t.Fatal(err)
		}
	}
	var got []Run
	tab.FreeRuns(func(r Run) bool { got = append(got, r); return true })
	want := []Run{{2, 2, Free}, {5, 3, Free}}
	if len(got) != len(want) {
		t.Fatalf("free runs %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("free run %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestOwnedRunsMerging: adjacent assignments coalesce into one run.
func TestOwnedRunsMerging(t *testing.T) {
	tab := NewTable(12)
	for _, s := range []Time{3, 4, 5, 9} {
		if err := tab.Assign(s, 7); err != nil {
			t.Fatal(err)
		}
	}
	runs := tab.OwnedRuns(7)
	want := []Run{{3, 3, 7}, {9, 1, 7}}
	if len(runs) != len(want) {
		t.Fatalf("owned runs %+v, want %+v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("owned run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
	if rs := tab.OwnedRuns(99); len(rs) != 0 {
		t.Fatalf("unknown id owns runs: %+v", rs)
	}
}

// TestMemoryFootprintScalesWithRuns: the interval table's footprint
// depends on R while the dense reference grows with H — the property
// the BENCH_sim.json footprint pairings quantify.
func TestMemoryFootprintScalesWithRuns(t *testing.T) {
	mk := func(h int) (*Table, *DenseTable) {
		iv, dn := NewTable(h), NewDenseTable(h)
		// Two owned runs regardless of h.
		for _, s := range []Time{1, 2, Time(h) - 2} {
			if err := iv.Assign(s, 0); err != nil {
				t.Fatal(err)
			}
			if err := dn.Assign(s, 0); err != nil {
				t.Fatal(err)
			}
		}
		return iv, dn
	}
	ivSmall, dnSmall := mk(1 << 8)
	ivBig, dnBig := mk(1 << 16)
	if ivBig.MemoryFootprint() != ivSmall.MemoryFootprint() {
		t.Errorf("interval footprint grew with H at constant R: %d → %d bytes",
			ivSmall.MemoryFootprint(), ivBig.MemoryFootprint())
	}
	if dnBig.MemoryFootprint() < 100*dnSmall.MemoryFootprint() {
		t.Errorf("dense footprint did not scale with H: %d → %d bytes",
			dnSmall.MemoryFootprint(), dnBig.MemoryFootprint())
	}
	if dnBig.MemoryFootprint() < 10*ivBig.MemoryFootprint() {
		t.Errorf("dense %d B not ≥10× interval %d B at H=%d",
			dnBig.MemoryFootprint(), ivBig.MemoryFootprint(), 1<<16)
	}
}
