package sim

import (
	"ioguard/internal/slot"
)

// Clocked is a component that owns a local virtual clock inside a
// ShardSet: it is stepped like a Stepper and must answer NextWork
// against its own clock (the Quiescer contract, evaluated per
// component rather than globally).
type Clocked interface {
	Stepper
	Quiescer
}

// FeedFunc delivers a shard's external inputs for slot now. The
// scheduler calls it immediately before stepping the shard at now, so
// the shard sees exactly the inputs a dense run would have submitted
// at that slot.
type FeedFunc func(shard int, now slot.Time)

// HorizonFunc bounds how far a shard may run ahead: it returns the
// earliest slot ≥ the shard's current clock at which an upstream peer
// could still hand the shard work, or limit when nothing can arrive
// before limit. Returning a conservative (too early) slot is always
// safe — the shard just wakes, finds nothing, and asks again.
type HorizonFunc func(shard int, limit slot.Time) slot.Time

// ShardStats accounts one shard's progress through a ShardSet run.
type ShardStats struct {
	Stepped int64     // slots executed
	Skipped slot.Time // slots fast-forwarded
}

// shard is one registered component plus its virtual clock.
type shard struct {
	c     Clocked
	sk    Skipper // nil: nothing to account over skipped spans
	clock slot.Time
	stats ShardStats
}

// ShardSet runs a group of independently-clocked components. Instead
// of one global min over every component's NextWork (which lets a
// single busy component force dense stepping of all the others), each
// shard advances through its own busy and idle regions; the set keeps
// a small binary heap of (clock, shard) entries and always executes
// the laggard. Determinism is preserved by construction:
//
//   - the minimum-clock shard runs first, so when a shard executes
//     slot t every peer is already at ≥ t and all cross-shard inputs
//     for t exist (the FeedFunc hands them over before the step);
//   - a shard may only jump over [t, next) when its own NextWork and
//     the HorizonFunc prove no work and no input can appear in the
//     span — exactly the global fast-forward rule, applied per shard;
//   - skipped spans are reported to the shard's Skipper, so per-slot
//     accounting is identical to dense stepping.
//
// A dense run and a ShardSet run of the same components are therefore
// bit-identical per component; only the interleaving of *independent*
// components differs, which callers that merge cross-shard output
// must undo by ordering on (slot, shard) — see system.Collector.
type ShardSet struct {
	shards []shard
	heap   []int32 // shard indices ordered by (clock, index)
}

// NewShardSet returns an empty shard scheduler.
func NewShardSet() *ShardSet {
	return &ShardSet{}
}

// Add registers a component as one shard with its clock at 0 and
// returns its shard index. The component's Skipper implementation, if
// any, is captured here.
func (s *ShardSet) Add(c Clocked) int {
	sh := shard{c: c}
	if sk, ok := c.(Skipper); ok {
		sh.sk = sk
	}
	s.shards = append(s.shards, sh)
	return len(s.shards) - 1
}

// Len returns the number of registered shards.
func (s *ShardSet) Len() int { return len(s.shards) }

// Stats returns shard i's progress accounting.
func (s *ShardSet) Stats(i int) ShardStats { return s.shards[i].stats }

// Clock returns shard i's local virtual clock.
func (s *ShardSet) Clock(i int) slot.Time { return s.shards[i].clock }

// before orders the scheduler heap by (clock, shard index): the
// laggard shard first, ties in registration order so equal-clock
// shards step in the same order a dense loop would.
func (s *ShardSet) before(a, b int32) bool {
	ca, cb := s.shards[a].clock, s.shards[b].clock
	if ca != cb {
		return ca < cb
	}
	return a < b
}

func (s *ShardSet) push(i int32) {
	h := append(s.heap, i)
	k := len(h) - 1
	for k > 0 {
		p := (k - 1) / 2
		if !s.before(h[k], h[p]) {
			break
		}
		h[k], h[p] = h[p], h[k]
		k = p
	}
	s.heap = h
}

func (s *ShardSet) pop() int32 {
	h := s.heap
	n := len(h) - 1
	root := h[0]
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.before(h[l], h[m]) {
			m = l
		}
		if r < n && s.before(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.heap = h
	return root
}

// Run advances every shard's clock to until (exclusive of slot until
// itself). Each heap pop executes exactly one slot of the laggard
// shard — feed first, then Step — and then fast-forwards the shard as
// far as its NextWork and the horizon allow. feed and horizon may be
// nil for closed shards with no external inputs.
func (s *ShardSet) Run(until slot.Time, feed FeedFunc, horizon HorizonFunc) {
	s.heap = s.heap[:0]
	for i := range s.shards {
		if s.shards[i].clock < until {
			s.push(int32(i))
		}
	}
	for len(s.heap) > 0 {
		idx := s.pop()
		sh := &s.shards[idx]
		now := sh.clock
		if feed != nil {
			feed(int(idx), now)
		}
		sh.c.Step(now)
		sh.stats.Stepped++
		now++
		if now >= until {
			sh.clock = until
			continue
		}
		// Fast-forward: the shard itself proves no internal work, the
		// horizon proves no external input can arrive in the span.
		next := until
		if nw := sh.c.NextWork(now); nw < next {
			next = nw
		}
		if horizon != nil {
			if hz := horizon(int(idx), next); hz < next {
				next = hz
			}
		}
		if next > now {
			if sh.sk != nil {
				sh.sk.SkipTo(now, next)
			}
			sh.stats.Skipped += next - now
			sh.clock = next
		} else {
			sh.clock = now
		}
		if sh.clock < until {
			s.push(idx)
		}
	}
}
