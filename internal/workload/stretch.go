// Stretching the case-study workload: the automotive task table fixes
// the base utilization at 0.40 per device, so sparser (idle-heavy)
// scenarios are derived by scaling periods rather than by lowering the
// generator's target.
package workload

import (
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Stretch returns a copy of ts with every period, deadline and jitter
// bound multiplied by k, dividing each task's utilization by k while
// preserving the constrained-deadline model. k ≤ 1 returns ts
// unchanged.
func Stretch(ts task.Set, k slot.Time) task.Set {
	if k <= 1 {
		return ts
	}
	out := make(task.Set, len(ts))
	for i, t := range ts {
		t.Period *= k
		t.Deadline *= k
		t.Jitter *= k
		out[i] = t
	}
	return out
}
