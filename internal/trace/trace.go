// Package trace records slot-level execution traces of the
// hypervisor (which job ran in which slot, when jobs were released
// and retired) and renders them as ASCII Gantt charts. The paper's
// predictability claims are about *when* operations run; the trace
// makes that visible for the examples and for debugging schedules.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Event is one recorded occurrence.
type Event struct {
	At   slot.Time
	Kind EventKind
	Job  *task.Job
}

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	Release EventKind = iota
	Execute
	Complete
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case Release:
		return "release"
	case Execute:
		return "execute"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Recorder accumulates events. The zero value is ready to use.
type Recorder struct {
	events []Event
}

// OnRelease records a job release.
func (r *Recorder) OnRelease(now slot.Time, j *task.Job) {
	r.events = append(r.events, Event{At: now, Kind: Release, Job: j})
}

// OnExecute records one executed slot; wire it to
// hypervisor.Manager.OnExecute.
func (r *Recorder) OnExecute(now slot.Time, j *task.Job) {
	r.events = append(r.events, Event{At: now, Kind: Execute, Job: j})
}

// OnComplete records an observed completion.
func (r *Recorder) OnComplete(j *task.Job, at slot.Time) {
	r.events = append(r.events, Event{At: at, Kind: Complete, Job: j})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns a copy of the recorded events in record order.
func (r *Recorder) Events() []Event {
	return append([]Event(nil), r.events...)
}

// ExecutedSlots returns, per task name, the slots it executed in.
func (r *Recorder) ExecutedSlots() map[string][]slot.Time {
	out := map[string][]slot.Time{}
	for _, e := range r.events {
		if e.Kind == Execute {
			out[e.Job.Task.Name] = append(out[e.Job.Task.Name], e.At)
		}
	}
	return out
}

// Gantt renders the execution trace between slots [from, to) as an
// ASCII chart: one row per task, '#' for an executed slot, '.' for an
// idle one.
func (r *Recorder) Gantt(from, to slot.Time) string {
	if to <= from {
		return ""
	}
	rows := r.ExecutedSlots()
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	width := int(to - from)
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s slots %d..%d\n", "task", from, to-1)
	for _, n := range names {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, s := range rows[n] {
			if s >= from && s < to {
				line[s-from] = '#'
			}
		}
		fmt.Fprintf(&b, "%-18s %s\n", n, line)
	}
	return b.String()
}
