// The in-memory job store: the server's asynchronous execution path
// for sweeps. POST /v1/sweeps submits a job and returns immediately
// with an id; a single runner goroutine executes queued jobs in
// submission order, chunking each sweep through system.RunCells and
// folding results in trial order — the same seed schedule and fold
// order as ParallelSweep, so a finished job's aggregate is identical
// to the CLI's. Admission is the queue channel's capacity: a full
// queue refuses the submit with ErrSaturated (HTTP 429), and an
// accepted job is never dropped — Close drains the queue before
// returning.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ioguard/internal/metrics"
	"ioguard/internal/system"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStoreConfig tunes the asynchronous sweep runner. Zero values
// select the defaults.
type JobStoreConfig struct {
	// MaxJobs bounds queued-but-unstarted jobs (default 64).
	MaxJobs int
	// ChunkSize is how many trials the runner executes per RunCells
	// call (default 64) — progress granularity, not a semantic knob.
	ChunkSize int
	// Workers is the RunCells goroutine count (≤ 0 = GOMAXPROCS).
	Workers int
	// MaxHistory bounds finished jobs retained for retrieval; the
	// oldest finished jobs are evicted beyond it (default 256).
	MaxHistory int
}

func (c JobStoreConfig) withDefaults() JobStoreConfig {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 256
	}
	return c
}

// Job is one submitted sweep and its accumulated results.
type Job struct {
	ID      string
	norm    *normalized
	created time.Time

	mu      sync.Mutex
	state   string
	err     error
	results []TrialResponse
	agg     *metrics.Aggregate
	done    chan struct{}

	completed atomic.Int64
}

// Status snapshots the job for GET /v1/sweeps/{id}.
func (j *Job) Status() SweepStatus { return j.status(false) }

// StatusWithSketches is Status plus the serialized merged
// response/tardiness sketches in the aggregate — the
// GET /v1/sweeps/{id}?sketch=1 payload for streaming-mode sweeps.
func (j *Job) StatusWithSketches() SweepStatus { return j.status(true) }

func (j *Job) status(withSketches bool) SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID:        j.ID,
		State:     j.state,
		System:    j.norm.req.System,
		Trials:    j.norm.trials,
		Completed: int(j.completed.Load()),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == JobDone && j.agg != nil {
		st.Aggregate = toAggregate(j.norm.req.System, j.agg, withSketches)
	}
	return st
}

// Results snapshots the per-trial responses accumulated so far (all
// of them once the job is done).
func (j *Job) Results() []TrialResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]TrialResponse(nil), j.results...)
}

// Done returns a channel closed when the job reaches a terminal
// state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStore queues, executes and retains sweep jobs.
type JobStore struct {
	cfg JobStoreConfig

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for bounded-history eviction
	closed bool
	seq    int64

	queue      chan *Job
	runnerDone chan struct{}

	accepted atomic.Int64
	rejected atomic.Int64
	finished atomic.Int64
}

// NewJobStore starts the runner goroutine and returns the store.
func NewJobStore(cfg JobStoreConfig) *JobStore {
	s := newJobStore(cfg)
	go s.run()
	return s
}

// newJobStore builds a store without starting the runner — the
// deterministic tests drive execution synchronously via runJob.
func newJobStore(cfg JobStoreConfig) *JobStore {
	cfg = cfg.withDefaults()
	return &JobStore{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.MaxJobs),
		runnerDone: make(chan struct{}),
	}
}

// Submit queues a sweep. It returns ErrSaturated when MaxJobs jobs
// are already waiting; an accepted job always reaches a terminal
// state, even across Close.
func (s *JobStore) Submit(norm *normalized) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: job store closed")
	}
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("sweep-%06d", s.seq),
		norm:    norm,
		created: time.Now(),
		state:   JobQueued,
		done:    make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.seq-- // not admitted: keep ids dense
		s.rejected.Add(1)
		return nil, ErrSaturated
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.accepted.Add(1)
	s.evictLocked()
	return j, nil
}

// evictLocked drops the oldest *finished* jobs beyond MaxHistory.
// Queued and running jobs are never evicted (an accepted job is never
// dropped).
func (s *JobStore) evictLocked() {
	if len(s.order) <= s.cfg.MaxHistory {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxHistory
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state == JobDone || j.state == JobFailed
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get returns the job by id.
func (s *JobStore) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Close stops admission and drains: every queued job runs to a
// terminal state before Close returns.
func (s *JobStore) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.runnerDone
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.runnerDone
}

// run executes queued jobs in submission order. A closed queue still
// yields its buffered jobs before reporting !ok, so Close-time
// draining falls out of the channel semantics.
func (s *JobStore) run() {
	defer close(s.runnerDone)
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one sweep in ChunkSize slices, folding the
// aggregate in trial order — exactly ParallelSweep's fold — and
// appending per-trial responses as chunks finish so partial results
// are visible while the job runs.
func (s *JobStore) runJob(j *Job) {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()

	cells := j.norm.cells()
	agg := &metrics.Aggregate{}
	sys := j.norm.req.System
	for off := 0; off < len(cells); off += s.cfg.ChunkSize {
		end := off + s.cfg.ChunkSize
		if end > len(cells) {
			end = len(cells)
		}
		chunk := cells[off:end]
		start := time.Now()
		results, err := system.RunCells(chunk, s.cfg.Workers)
		if err != nil {
			j.mu.Lock()
			j.state = JobFailed
			j.err = err
			close(j.done)
			j.mu.Unlock()
			s.finished.Add(1)
			return
		}
		execMs := float64(time.Since(start)) / float64(time.Millisecond)
		j.mu.Lock()
		for i, res := range results {
			agg.AddTrial(res)
			j.results = append(j.results, toResponse(sys, off+i, chunk[i].Trial.Seed, res, Timing{
				ExecMs:    execMs,
				BatchSize: len(chunk),
			}))
		}
		j.mu.Unlock()
		j.completed.Add(int64(len(results)))
	}
	j.mu.Lock()
	j.state = JobDone
	j.agg = agg
	close(j.done)
	j.mu.Unlock()
	s.finished.Add(1)
}

// JobStats is the store's snapshot for GET /v1/stats.
type JobStats struct {
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Finished int64 `json:"finished"`
	Queued   int   `json:"queued"`
	MaxJobs  int   `json:"max_jobs"`
}

// Stats snapshots the store's counters.
func (s *JobStore) Stats() JobStats {
	return JobStats{
		Accepted: s.accepted.Load(),
		Rejected: s.rejected.Load(),
		Finished: s.finished.Load(),
		Queued:   len(s.queue),
		MaxJobs:  s.cfg.MaxJobs,
	}
}
