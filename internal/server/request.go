// Request and response shapes of the trial service's JSON API, plus
// the translation from a validated request to the executable cells of
// the deterministic runner. A request names the same knobs as the
// ioguard-sim command line (system spec, VM count, target utilization,
// horizon, seed, trial count) and resolves through the same shared
// helpers — experiments.BuilderFor for semantics, workload.Generate
// for the task set, system.SweepCells for the sweep seed schedule —
// which is what makes a server-executed trial byte-identical to the
// CLI at the same seed.
package server

import (
	"encoding/json"
	"fmt"

	"ioguard/internal/experiments"
	"ioguard/internal/faults"
	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// TrialRequest is the body of POST /v1/trials and POST /v1/sweeps.
// Zero-valued fields take the same defaults as the CLI flags.
type TrialRequest struct {
	// System is the spec spelling resolved by experiments.BuilderFor:
	// legacy | rtxen | bluevisor | ioguard-<0..100>.
	System string `json:"system"`
	// VMs is the virtual-machine count (default 4).
	VMs int `json:"vms,omitempty"`
	// Util is the per-device target utilization (default 0.7).
	Util float64 `json:"util,omitempty"`
	// Hyperperiods is the horizon in workload hyper-periods (default 3).
	Hyperperiods int `json:"hyperperiods,omitempty"`
	// Seed seeds both the workload generator and the release jitter
	// (default 1). With Trials > 1 the per-trial seeds follow
	// ParallelSweep's SplitMix64 schedule from this base.
	Seed int64 `json:"seed,omitempty"`
	// Trials repeats the configuration across independent seeds
	// (default 1). POST /v1/trials streams every trial's result;
	// POST /v1/sweeps folds them into an aggregate.
	Trials int `json:"trials,omitempty"`
	// Dense disables the fast-forward (output is identical either way).
	Dense bool `json:"dense,omitempty"`
	// Metrics selects the collector mode: "exact" (default, buffered
	// exact percentiles), "stream" (bounded memory, mergeable KLL —
	// sweep aggregates carry true cross-trial quantiles) or
	// "stream-gk" (per-trial GK back-compat; sweep quantiles stay
	// per-trial only).
	Metrics string `json:"metrics,omitempty"`
	// ShardWorkers sets Trial.ShardWorkers: OS threads advancing one
	// trial's device shards in parallel (< 2 = sequential; output is
	// identical for any value).
	ShardWorkers int `json:"shard_workers,omitempty"`
	// DrainMin/DrainMax bound the sharded runner's adaptive release-
	// drain budget (Trial.DrainMin/DrainMax); 0 keeps the built-in
	// bounds. Output is identical for any valid pair.
	DrainMin int `json:"drain_min,omitempty"`
	DrainMax int `json:"drain_max,omitempty"`
	// The fault_* sextet mirrors the -fault-* CLI flags: a validated
	// faults.Plan injected into every trial of the request. All zero
	// (the default) runs clean. A bad plan is a client error (400).
	FaultSeed     int64   `json:"fault_seed,omitempty"`
	FaultJitter   int     `json:"fault_jitter,omitempty"`
	FaultDrop     float64 `json:"fault_drop,omitempty"`
	FaultDup      float64 `json:"fault_dup,omitempty"`
	FaultDelay    float64 `json:"fault_delay,omitempty"`
	FaultDelayMax int     `json:"fault_delay_max,omitempty"`
}

// normalized is a validated request: the resolved builder, generated
// task set and base trial, ready to be laid out as cells.
type normalized struct {
	req    TrialRequest
	build  system.Builder
	trial  system.Trial
	trials int
}

// normalize applies CLI defaults and validates the request into an
// executable form. Validation errors are client errors (HTTP 400).
func normalize(req TrialRequest) (*normalized, error) {
	if req.System == "" {
		req.System = "ioguard-70"
	}
	if req.VMs == 0 {
		req.VMs = 4
	}
	if req.Util == 0 {
		req.Util = 0.7
	}
	if req.Hyperperiods == 0 {
		req.Hyperperiods = 3
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Trials == 0 {
		req.Trials = 1
	}
	if req.Trials < 0 {
		return nil, fmt.Errorf("trials must be positive (got %d)", req.Trials)
	}
	if req.Hyperperiods < 0 {
		return nil, fmt.Errorf("hyperperiods must be positive (got %d)", req.Hyperperiods)
	}
	if req.ShardWorkers < 0 {
		return nil, fmt.Errorf("shard_workers must be non-negative (got %d)", req.ShardWorkers)
	}
	if req.DrainMin < 0 || req.DrainMax < 0 {
		return nil, fmt.Errorf("drain bounds must be non-negative (got min %d, max %d)", req.DrainMin, req.DrainMax)
	}
	if req.DrainMin > 0 && req.DrainMax > 0 && req.DrainMin > req.DrainMax {
		return nil, fmt.Errorf("drain_min %d exceeds drain_max %d", req.DrainMin, req.DrainMax)
	}
	plan := faults.Plan{
		Seed:          req.FaultSeed,
		ReleaseJitter: slot.Time(req.FaultJitter),
		DropProb:      req.FaultDrop,
		DupProb:       req.FaultDup,
		DelayProb:     req.FaultDelay,
		DelayMax:      slot.Time(req.FaultDelayMax),
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	build, err := experiments.BuilderFor(req.System)
	if err != nil {
		return nil, err
	}
	mode, err := system.ParseMetricsMode(req.Metrics)
	if err != nil {
		return nil, err
	}
	ts, err := workload.Generate(workload.Config{VMs: req.VMs, TargetUtil: req.Util, Seed: req.Seed})
	if err != nil {
		return nil, err
	}
	return &normalized{
		req:   req,
		build: build,
		trial: system.Trial{
			VMs:          req.VMs,
			Tasks:        ts,
			Horizon:      ts.Hyperperiod() * slot.Time(req.Hyperperiods),
			Seed:         req.Seed,
			Dense:        req.Dense,
			Metrics:      mode,
			ShardWorkers: req.ShardWorkers,
			DrainMin:     req.DrainMin,
			DrainMax:     req.DrainMax,
			Faults:       plan,
		},
		trials: req.Trials,
	}, nil
}

// cells lays the request out as runner cells: a single trial is one
// cell at the base seed (matching ioguard-sim's single-trial path); a
// sweep follows system.SweepCells' seed schedule exactly.
func (n *normalized) cells() []system.Cell {
	if n.trials == 1 {
		return []system.Cell{{Build: n.build, Trial: n.trial}}
	}
	return system.SweepCells(n.build, n.trial, n.trials)
}

// TrialResponse is one NDJSON line of a streamed trial execution.
type TrialResponse struct {
	System string `json:"system"`
	Index  int    `json:"index"`
	Seed   int64  `json:"seed"`

	Completed      int64   `json:"completed"`
	BytesServed    int64   `json:"bytes_served"`
	CriticalMisses int64   `json:"critical_misses"`
	OtherMisses    int64   `json:"other_misses"`
	Unfinished     int64   `json:"unfinished"`
	Dropped        int64   `json:"dropped"`
	Success        bool    `json:"success"`
	ThroughputMBps float64 `json:"throughput_mbps"`
	ResponseMean   float64 `json:"response_mean_slots"`
	ResponseP99    float64 `json:"response_p99_slots"`

	// Rendered is the trial's metrics block exactly as ioguard-sim
	// prints it (experiments.RenderTrial) — the byte-identical contract.
	Rendered string `json:"rendered"`

	// Timing is the server-side latency breakdown for this trial.
	Timing Timing `json:"timing"`
}

// Timing is the per-trial server latency breakdown recorded by the
// batcher.
type Timing struct {
	// QueueWaitMs is the time from admission to batch execution start.
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// ExecMs is the wall-clock execution time of the batch that carried
	// this trial.
	ExecMs float64 `json:"exec_ms"`
	// BatchSize is how many trials the carrying batch coalesced.
	BatchSize int `json:"batch_size"`
}

// toResponse renders one finished trial.
func toResponse(sys string, index int, seed int64, res *metrics.TrialResult, tm Timing) TrialResponse {
	return TrialResponse{
		System:         sys,
		Index:          index,
		Seed:           seed,
		Completed:      res.Completed,
		BytesServed:    res.BytesServed,
		CriticalMisses: res.CriticalMisses,
		OtherMisses:    res.OtherMisses,
		Unfinished:     res.Unfinished,
		Dropped:        res.Dropped,
		Success:        res.Success(),
		ThroughputMBps: res.ThroughputMBps(),
		ResponseMean:   res.Response.Mean(),
		ResponseP99:    res.Response.Percentile(99),
		Rendered:       experiments.RenderTrial(sys, res),
		Timing:         tm,
	}
}

// SweepStatus is the body of GET /v1/sweeps/{id}: the job's lifecycle
// state and, once done, the rendered aggregate.
type SweepStatus struct {
	ID        string          `json:"id"`
	State     string          `json:"state"` // queued | running | done | failed
	System    string          `json:"system"`
	Trials    int             `json:"trials"`
	Completed int             `json:"completed"`
	Error     string          `json:"error,omitempty"`
	Aggregate *SweepAggregate `json:"aggregate,omitempty"`
}

// DistSummary flattens one merged cross-trial distribution
// (metrics.DistFold) for the sweep payload. Epsilon is the sketch's
// rank-error bound (0 means the fold was exact); a nonzero Unmerged
// count means the sweep ran in a mode whose per-trial sketches cannot
// fold (stream-gk) and no cross-trial quantiles exist.
type DistSummary struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P99      float64 `json:"p99"`
	Max      float64 `json:"max"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Unmerged int     `json:"unmerged,omitempty"`
}

// distSummary snapshots a fold, or nil when it is empty.
func distSummary(f *metrics.DistFold) *DistSummary {
	if f.Unmerged() > 0 {
		return &DistSummary{Unmerged: f.Unmerged()}
	}
	if f.N() == 0 {
		return nil
	}
	d := &DistSummary{
		N:    f.N(),
		Mean: f.Mean(),
		P50:  f.Quantile(0.50),
		P90:  f.Quantile(0.90),
		P99:  f.Quantile(0.99),
		Max:  f.Max(),
	}
	if sk := f.Sketch(); sk != nil {
		d.Epsilon = sk.Epsilon()
	}
	return d
}

// SweepAggregate summarizes a finished sweep.
type SweepAggregate struct {
	Trials         int     `json:"trials"`
	Successes      int     `json:"successes"`
	SuccessRatio   float64 `json:"success_ratio"`
	ThroughputMean float64 `json:"throughput_mean_mbps"`
	ThroughputSD   float64 `json:"throughput_sd_mbps"`
	MissesMean     float64 `json:"misses_mean"`
	MissesMax      float64 `json:"misses_max"`
	// Response/Tardiness summarize the merged cross-trial latency
	// distributions (slots). Present when any trial folded.
	Response  *DistSummary `json:"response,omitempty"`
	Tardiness *DistSummary `json:"tardiness,omitempty"`
	// ResponseSketch/TardinessSketch are the serialized merged KLL
	// recorders, included only on GET /v1/sweeps/{id}?sketch=1 for
	// streaming-mode sweeps — a client can decode them into
	// metrics.Streaming and keep merging across sweeps.
	ResponseSketch  json.RawMessage `json:"response_sketch,omitempty"`
	TardinessSketch json.RawMessage `json:"tardiness_sketch,omitempty"`
	// Rendered is the aggregate block exactly as ioguard-sim's
	// -trials N mode prints it (experiments.RenderAggregate).
	Rendered string `json:"rendered"`
}

func toAggregate(sys string, agg *metrics.Aggregate, withSketches bool) *SweepAggregate {
	sa := &SweepAggregate{
		Trials:         agg.Trials,
		Successes:      agg.Successes,
		SuccessRatio:   agg.SuccessRatio(),
		ThroughputMean: agg.Throughput.Mean(),
		ThroughputSD:   agg.Throughput.StdDev(),
		MissesMean:     agg.Misses.Mean(),
		MissesMax:      agg.Misses.Max(),
		Response:       distSummary(&agg.Response),
		Tardiness:      distSummary(&agg.Tardiness),
		Rendered:       experiments.RenderAggregate(sys, agg),
	}
	if withSketches {
		if sk := agg.Response.Sketch(); sk != nil {
			if raw, err := json.Marshal(sk); err == nil {
				sa.ResponseSketch = raw
			}
		}
		if sk := agg.Tardiness.Sketch(); sk != nil {
			if raw, err := json.Marshal(sk); err == nil {
				sa.TardinessSketch = raw
			}
		}
	}
	return sa
}
