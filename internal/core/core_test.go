package core

import (
	"strings"
	"testing"

	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// caseWorkload builds a small two-device workload with zero jitter so
// every task is preload-eligible.
func caseWorkload() task.Set {
	return task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "ethernet", Period: 64, WCET: 4, Deadline: 64, OpBytes: 256},
		{ID: 1, VM: 0, Kind: task.Function, Device: "ethernet", Period: 128, WCET: 8, Deadline: 128, OpBytes: 512},
		{ID: 2, VM: 1, Kind: task.Safety, Device: "flexray", Period: 64, WCET: 4, Deadline: 64, OpBytes: 128},
		{ID: 3, VM: 1, Kind: task.Synthetic, Device: "flexray", Period: 128, WCET: 8, Deadline: 128, OpBytes: 64},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{VMs: 0}, caseWorkload(), nil); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := New(Config{VMs: 2, PreloadFrac: 1.5}, caseWorkload(), nil); err == nil {
		t.Error("fraction > 1 accepted")
	}
	bad := task.Set{{ID: 0, VM: 0, Device: "ethernet", Period: 0, WCET: 1, Deadline: 1}}
	if _, err := New(Config{VMs: 1}, bad, nil); err == nil {
		t.Error("invalid task accepted")
	}
	unknown := task.Set{{ID: 0, VM: 0, Device: "tape", Period: 8, WCET: 1, Deadline: 8}}
	if _, err := New(Config{VMs: 1}, unknown, nil); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestNameReflectsPreloadFraction(t *testing.T) {
	s40, err := New(Config{VMs: 2, PreloadFrac: 0.4}, caseWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s40.Name() != "I/O-GUARD-40" {
		t.Errorf("name = %q", s40.Name())
	}
	s70, _ := New(Config{VMs: 2, PreloadFrac: 0.7}, caseWorkload(), nil)
	if s70.Name() != "I/O-GUARD-70" {
		t.Errorf("name = %q", s70.Name())
	}
}

func TestPreloadPartition(t *testing.T) {
	ws := caseWorkload()
	s, err := New(Config{VMs: 2, PreloadFrac: 0.5}, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Preloaded()) != 2 || len(s.Residual()) != 2 {
		t.Fatalf("partition = %d pre / %d residual, want 2/2",
			len(s.Preloaded()), len(s.Residual()))
	}
	// Lowest IDs are selected first.
	if s.Preloaded()[0].ID != 0 || s.Preloaded()[1].ID != 1 {
		t.Errorf("preloaded = %v", s.Preloaded())
	}
	// Jittery tasks are never preloaded.
	ws2 := caseWorkload()
	for i := range ws2 {
		ws2[i].Jitter = 3
	}
	s2, err := New(Config{VMs: 2, PreloadFrac: 1}, ws2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Preloaded()) != 0 {
		t.Error("jittery tasks must stay in the R-channel")
	}
}

func TestZeroPreloadHasEmptyTables(t *testing.T) {
	s, err := New(Config{VMs: 2, PreloadFrac: 0}, caseWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Preloaded()) != 0 || len(s.Residual()) != 4 {
		t.Error("zero fraction should preload nothing")
	}
	mgr, err := s.Hypervisor().Manager("ethernet")
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Config().Table.FreeCount() != mgr.Config().Table.Len() {
		t.Error("table should be all free with no preloads")
	}
}

func TestEndToEndMeetsDeadlinesUnderFeasibleLoad(t *testing.T) {
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return New(Config{VMs: tr.VMs, PreloadFrac: 0.5, Mode: hypervisor.DirectEDF}, tr.Tasks, col)
	}
	res, err := system.Run(build, system.Trial{
		VMs: 2, Tasks: caseWorkload(), Horizon: 2048, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 40 {
		t.Fatalf("too few completions: %d", res.Completed)
	}
	if !res.Success() {
		t.Errorf("feasible load should have no critical misses: %+v", res)
	}
	if res.BytesServed == 0 {
		t.Error("throughput accounting broken")
	}
}

func TestPreloadedTasksCompleteExactlyOnSchedule(t *testing.T) {
	col := &system.Collector{}
	ts := task.Set{{ID: 0, VM: 0, Kind: task.Safety, Device: "spi", Period: 16, WCET: 2, Deadline: 16}}
	s, err := New(Config{VMs: 1, PreloadFrac: 1}, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Residual()) != 0 {
		t.Fatal("everything should be preloaded")
	}
	for now := slot.Time(0); now < 160; now++ {
		s.Step(now)
	}
	if col.Completed() != 10 {
		t.Fatalf("completions = %d, want 10", col.Completed())
	}
	col.Each(func(j *task.Job, at slot.Time) {
		if at > j.Deadline {
			t.Errorf("P-channel job %d missed: %d > %d", j.Seq, at, j.Deadline)
		}
	})
}

func TestHigherPreloadNoWorseUnderOverload(t *testing.T) {
	// Build an overloaded R-channel: when most tasks are preloaded the
	// table guarantees them, so I/O-GUARD-80 must miss no more
	// critical deadlines than I/O-GUARD-0.
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "spi", Period: 32, WCET: 8, Deadline: 32, OpBytes: 64},
		{ID: 1, VM: 0, Kind: task.Safety, Device: "spi", Period: 32, WCET: 8, Deadline: 32, OpBytes: 64},
		{ID: 2, VM: 1, Kind: task.Safety, Device: "spi", Period: 32, WCET: 8, Deadline: 32, OpBytes: 64},
		{ID: 3, VM: 1, Kind: task.Synthetic, Device: "spi", Period: 32, WCET: 12, Deadline: 32, OpBytes: 64},
	}
	missesAt := func(frac float64) int64 {
		build := func(tr system.Trial, col *system.Collector) (system.System, error) {
			return New(Config{VMs: 2, PreloadFrac: frac, Mode: hypervisor.DirectEDF}, tr.Tasks, col)
		}
		res, err := system.Run(build, system.Trial{VMs: 2, Tasks: ts, Horizon: 2048, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.CriticalMisses
	}
	if m80, m0 := missesAt(0.8), missesAt(0); m80 > m0 {
		t.Errorf("preloading should not hurt: misses 80%%=%d 0%%=%d", m80, m0)
	}
}

func TestDemotionOnInfeasiblePreload(t *testing.T) {
	// Two tasks that cannot both fit one table (combined U > 1): the
	// builder must demote rather than fail.
	ts := task.Set{
		{ID: 0, VM: 0, Device: "spi", Period: 8, WCET: 5, Deadline: 8},
		{ID: 1, VM: 1, Device: "spi", Period: 8, WCET: 5, Deadline: 8},
	}
	s, err := New(Config{VMs: 2, PreloadFrac: 1}, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Preloaded()) != 1 || len(s.Residual()) != 1 {
		t.Errorf("demotion should leave 1 preloaded, 1 residual: %d/%d",
			len(s.Preloaded()), len(s.Residual()))
	}
}

func TestServerEDFConfiguration(t *testing.T) {
	ts := caseWorkload()
	servers := []task.Server{
		{VM: 0, Period: 16, Budget: 8},
		{VM: 1, Period: 16, Budget: 8},
	}
	col := &system.Collector{}
	s, err := New(Config{VMs: 2, Mode: hypervisor.ServerEDF, Servers: servers}, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	build := func(tr system.Trial, c *system.Collector) (system.System, error) {
		return New(Config{VMs: 2, Mode: hypervisor.ServerEDF, Servers: servers}, tr.Tasks, c)
	}
	res, err := system.Run(build, system.Trial{VMs: 2, Tasks: ts, Horizon: 2048, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("server mode should complete work")
	}
	_ = s
}

func TestDescribe(t *testing.T) {
	s, err := New(Config{VMs: 2, PreloadFrac: 0.5}, caseWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Describe()
	for _, want := range []string{"I/O-GUARD-50", "ethernet", "flexray", "σ*", "op overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
