// Nightly benchmark profile: the paper-scale case study (1000 trials
// per utilization point, streaming metrics) that is far too heavy for
// the per-PR CI smoke run. cmd/ioguard-bench -suite nightly runs these
// specs and appends the report to BENCH_sim.json's trajectory, so the
// sweep's wall-clock and allocation behavior is tracked PR over PR.
// Kept out of Specs() on purpose: the default suite must stay fast
// enough for `-benchtime 1x` smoke runs on every push.
package benchsuite

import (
	"testing"

	"ioguard/internal/experiments"
	"ioguard/internal/system"
)

// nightlyTrials is the paper's repetition count per configuration
// (Sec. V: "each configuration was repeated 1000 times").
const nightlyTrials = 1000

// nightlyCaseStudy runs one full Fig. 7 sweep for a VM group in
// streaming metrics mode — per-trial collector memory stays bounded
// across the 13-point × 1000-trial grid — and deposits the sweep's
// merged cross-trial response/tardiness sketches in the capture
// registry for cmd/ioguard-bench to persist.
func nightlyCaseStudy(b *testing.B, name string, vms int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.CaseStudy(experiments.CaseStudyConfig{
			VMs:          vms,
			Trials:       nightlyTrials,
			HyperPeriods: 6,
			Seed:         1,
			Metrics:      system.MetricsStream,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("case study produced no points")
		}
		recordSweepSketches(name, points)
	}
}

// NightlySpecs returns the nightly-only benchmarks. They are not part
// of Specs(); select them with cmd/ioguard-bench -suite nightly.
func NightlySpecs() []Spec {
	return []Spec{
		{Name: "CaseStudy1000/4vm/stream", SlotsPerOp: 0,
			Bench: func(b *testing.B) { nightlyCaseStudy(b, "CaseStudy1000/4vm/stream", 4) }},
		{Name: "CaseStudy1000/8vm/stream", SlotsPerOp: 0,
			Bench: func(b *testing.B) { nightlyCaseStudy(b, "CaseStudy1000/8vm/stream", 8) }},
	}
}
