package vm

import (
	"math/rand"
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// jittered returns a sporadic set whose releases depend on the shared
// RNG, the case NextRelease must stay exact for.
func jittered(vmID, idBase int) task.Set {
	return task.Set{
		{ID: idBase, VM: vmID, Period: 10, WCET: 2, Deadline: 10, Jitter: 5},
		{ID: idBase + 1, VM: vmID, Period: 25, WCET: 3, Deadline: 20, Jitter: 12},
	}
}

type rel struct {
	task int
	seq  int
	at   slot.Time
}

// TestNextReleaseExact: jumping straight from release slot to release
// slot (the fast-forward pattern) must reproduce the exact release
// trace of calling Release on every slot. Jitter is materialized into
// the next-release array when the previous job is emitted, so
// NextRelease is a precise schedule, not a bound.
func TestNextReleaseExact(t *testing.T) {
	const horizon = 2000

	dense, err := NewFleet(2, append(jittered(0, 0), jittered(1, 2)...), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var denseTrace []rel
	for now := slot.Time(0); now < horizon; now++ {
		dense.Release(now, func(j *task.Job) {
			denseTrace = append(denseTrace, rel{j.Task.ID, j.Seq, now})
		})
	}

	jump, err := NewFleet(2, append(jittered(0, 0), jittered(1, 2)...), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var jumpTrace []rel
	visited := 0
	for now := jump.NextRelease(); now < horizon; now = jump.NextRelease() {
		visited++
		jump.Release(now, func(j *task.Job) {
			jumpTrace = append(jumpTrace, rel{j.Task.ID, j.Seq, now})
		})
		if jump.NextRelease() <= now {
			t.Fatalf("NextRelease did not advance past %d", now)
		}
	}
	if visited >= horizon {
		t.Fatal("jump runner visited every slot; nothing was skipped")
	}
	if len(denseTrace) != len(jumpTrace) {
		t.Fatalf("dense released %d jobs, jump released %d", len(denseTrace), len(jumpTrace))
	}
	for i := range denseTrace {
		if denseTrace[i] != jumpTrace[i] {
			t.Fatalf("release %d diverges: dense %+v, jump %+v", i, denseTrace[i], jumpTrace[i])
		}
	}
}

// TestNextReleaseEmptyGuest: a guest without tasks never has a
// release.
func TestNextReleaseEmptyGuest(t *testing.T) {
	f, err := NewFleet(1, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.NextRelease(); got != slot.Never {
		t.Errorf("empty fleet NextRelease = %d, want Never", got)
	}
}
