// Package slot provides the discrete time base of the I/O-GUARD
// reproduction: time-slot indices, greatest-common-divisor/least-common-
// multiple arithmetic on slots, and the Time Slot Table σ* that the
// P-channel of the virtualization manager consults every slot.
//
// All scheduling in the paper (Sec. III and IV of Jiang et al., DAC'21)
// happens at time-slot granularity: pre-defined I/O tasks own fixed
// slots of σ*, and the remaining free slots form the supply available
// to the R-channel's two-layer scheduler. The Table type models σ*
// exactly: a repeating schedule of length H in which every slot is
// either owned by one pre-defined task or free.
//
// The table is stored run-length encoded: a sorted list of maximal
// {start, owner} runs rather than one TaskID per slot. Memory and
// mutation cost scale with the number of ownership changes R, not with
// H, and point queries (Owner, IsFree, NextFree, FreeIn) are O(log R)
// binary searches. This is what makes ARINC-653-style workloads with
// hyper-periods in the millions of slots tractable: their tables are
// sparse (long partition periods, short windows), so R ≪ H. The
// fast-forward stack consumes the runs directly — FreeRuns/OwnedRuns
// spans become sim.Skipper jumps without per-slot scans.
package slot

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"unsafe"
)

// Time is a time-slot index (or a count of slots). One slot is the
// atomic unit of I/O execution and preemption in the hypervisor; the
// FPGA prototype derives it from the 100 MHz global timer.
type Time int64

// Never is a sentinel representing an unreachable point in time.
const Never Time = math.MaxInt64

// TaskID identifies a pre-defined I/O task loaded into the P-channel
// memory banks. IDs are small non-negative integers assigned at load
// time.
type TaskID int32

// Free marks a slot of the time slot table that is not owned by any
// pre-defined task and is therefore available to the R-channel.
const Free TaskID = -1

// GCD returns the greatest common divisor of a and b. GCD(0, b) = b.
func GCD(a, b Time) Time {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 when either
// is 0. It saturates at Never on overflow.
func LCM(a, b Time) Time {
	if a == 0 || b == 0 {
		return 0
	}
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	g := GCD(a, b)
	q := a / g
	if q > Never/b {
		return Never
	}
	return q * b
}

// LCMAll returns the least common multiple of all values, or 0 when
// the list is empty.
func LCMAll(vs ...Time) Time {
	var l Time
	for i, v := range vs {
		if i == 0 {
			l = v
			continue
		}
		l = LCM(l, v)
		if l == Never {
			return Never
		}
	}
	return l
}

// run is one maximal ownership interval of σ*: slots [start, next
// run's start) all belong to owner. The run length is implicit in the
// successor's start (the last run extends to H).
type run struct {
	start Time
	owner TaskID
}

// Table is the Time Slot Table σ*: a repeating schedule of length H
// whose entries record, for every slot of one hyper-period, which
// pre-defined task (if any) owns the slot. The infinite table σ used
// by the analysis in Sec. IV is the infinite repetition of σ*.
//
// Invariants (maintained by every mutator): for H > 0 the run list is
// non-empty, runs[0].start == 0, starts strictly increase, and
// adjacent runs have different owners (runs are maximal).
//
// The zero value is an empty table of length 0; use NewTable.
type Table struct {
	h    Time
	runs []run
	free int

	// Lazily built index, dropped on any mutation: freePrefix[i] is
	// the number of free slots covered by runs[0..i). It serves the
	// O(log R) window counting (FreeIn) and next-free-run search
	// (NextFree) the fast-forwarding simulation loop issues per
	// skipped span.
	freePrefix []Time
}

// Run is one maximal ownership interval of σ* as exposed by the
// iteration API: Length slots starting at Start all belong to Owner
// (Free for an idle run). Runs partition [0, H).
type Run struct {
	Start  Time
	Length Time
	Owner  TaskID
}

// NewTable returns an all-free table with hyper-period h.
func NewTable(h int) *Table {
	if h < 0 {
		h = 0
	}
	t := &Table{h: Time(h), free: h}
	if h > 0 {
		t.runs = []run{{0, Free}}
	}
	return t
}

// runEnd returns the first slot after run i.
func (t *Table) runEnd(i int) Time {
	if i+1 < len(t.runs) {
		return t.runs[i+1].start
	}
	return t.h
}

// findRun returns the index of the run containing slot idx ∈ [0, H).
func (t *Table) findRun(idx Time) int {
	return sort.Search(len(t.runs), func(k int) bool { return t.runs[k].start > idx }) - 1
}

// ensureIndex (re)builds the free-prefix index if a mutation dropped it.
func (t *Table) ensureIndex() {
	if t.freePrefix != nil || len(t.runs) == 0 {
		return
	}
	t.freePrefix = make([]Time, len(t.runs)+1)
	for i, rn := range t.runs {
		t.freePrefix[i+1] = t.freePrefix[i]
		if rn.owner == Free {
			t.freePrefix[i+1] += t.runEnd(i) - rn.start
		}
	}
}

// freeBefore returns the number of free slots in [0, x), 0 ≤ x ≤ H.
func (t *Table) freeBefore(x Time) Time {
	if x <= 0 {
		return 0
	}
	if x >= t.h {
		return Time(t.free)
	}
	t.ensureIndex()
	i := t.findRun(x)
	n := t.freePrefix[i]
	if t.runs[i].owner == Free {
		n += x - t.runs[i].start
	}
	return n
}

// Len returns H, the hyper-period (total number of slots in σ*).
func (t *Table) Len() int { return int(t.h) }

// FreeCount returns F, the number of free slots in σ*.
func (t *Table) FreeCount() int { return t.free }

// RunCount returns R, the number of maximal ownership runs in σ*. The
// table's memory and mutation costs scale with R, not H.
func (t *Table) RunCount() int { return len(t.runs) }

// CheckInvariants audits the table's structural invariants: runs tile
// [0, H) starting at 0 with strictly increasing starts, adjacent runs
// have distinct owners (maximality), the cached free count matches the
// free runs, and any built free-prefix index agrees with them. A
// healthy table always returns nil; harnesses that mutate the table at
// run time (LoadPre/UnloadPre mode changes) call this between
// operations to catch corruption at the operation that caused it.
func (t *Table) CheckInvariants() error {
	if t.h == 0 {
		if len(t.runs) != 0 {
			return fmt.Errorf("slot: empty table holds %d runs", len(t.runs))
		}
		if t.free != 0 {
			return fmt.Errorf("slot: empty table reports %d free slots", t.free)
		}
		return nil
	}
	if len(t.runs) == 0 {
		return fmt.Errorf("slot: table of length %d has no runs", t.h)
	}
	if t.runs[0].start != 0 {
		return fmt.Errorf("slot: first run starts at %d, want 0", t.runs[0].start)
	}
	var free Time
	for i, rn := range t.runs {
		end := t.runEnd(i)
		if end <= rn.start || rn.start < 0 || end > t.h {
			return fmt.Errorf("slot: run %d spans [%d, %d) outside [0, %d)", i, rn.start, end, t.h)
		}
		if i > 0 && rn.owner == t.runs[i-1].owner {
			return fmt.Errorf("slot: runs %d and %d share owner %d (not maximal)", i-1, i, rn.owner)
		}
		if rn.owner == Free {
			free += end - rn.start
		}
	}
	if int(free) != t.free {
		return fmt.Errorf("slot: cached free count %d, free runs sum %d", t.free, free)
	}
	if t.freePrefix != nil {
		if len(t.freePrefix) != len(t.runs)+1 {
			return fmt.Errorf("slot: free-prefix index has %d entries for %d runs", len(t.freePrefix), len(t.runs))
		}
		if t.freePrefix[len(t.runs)] != free {
			return fmt.Errorf("slot: free-prefix total %d, free runs sum %d", t.freePrefix[len(t.runs)], free)
		}
	}
	return nil
}

// Utilization returns the fraction of σ* consumed by pre-defined
// tasks, i.e. (H-F)/H. It is 0 for an empty table.
func (t *Table) Utilization() float64 {
	if t.h == 0 {
		return 0
	}
	return float64(int(t.h)-t.free) / float64(t.h)
}

// index maps an arbitrary (possibly ≥H) slot time onto σ*.
func (t *Table) index(at Time) int {
	i := at % t.h
	if i < 0 {
		i += t.h
	}
	return int(i)
}

// Owner returns the pre-defined task owning slot at (mod H), or Free.
func (t *Table) Owner(at Time) TaskID {
	if t.h == 0 {
		return Free
	}
	return t.runs[t.findRun(Time(t.index(at)))].owner
}

// IsFree reports whether slot at (mod H) is available to the R-channel.
func (t *Table) IsFree(at Time) bool { return t.Owner(at) == Free }

// splice replaces runs [lo, hi) with the given pieces in place.
func (t *Table) splice(lo, hi int, pieces []run) {
	old := len(t.runs)
	delta := len(pieces) - (hi - lo)
	if delta > 0 {
		t.runs = append(t.runs, make([]run, delta)...)
	}
	copy(t.runs[lo+len(pieces):old+delta], t.runs[hi:old])
	copy(t.runs[lo:], pieces)
	if delta < 0 {
		t.runs = t.runs[:old+delta]
	}
}

// setSpan hands slots [lo, hi) — which must lie inside a single run
// whose owner differs from the new one — to owner, splitting the run
// and re-merging with equal-owner neighbours to keep runs maximal.
func (t *Table) setSpan(lo, hi Time, owner TaskID) {
	r := t.findRun(lo)
	s, e := t.runs[r].start, t.runEnd(r)
	cur := t.runs[r].owner
	var buf [3]run
	pieces := buf[:0]
	if lo > s {
		pieces = append(pieces, run{s, cur})
	}
	pieces = append(pieces, run{lo, owner})
	if hi < e {
		pieces = append(pieces, run{hi, cur})
	}
	rlo, rhi := r, r+1
	if lo == s && r > 0 && t.runs[r-1].owner == owner {
		rlo = r - 1
		pieces[0].start = t.runs[rlo].start
	}
	if hi == e && r+1 < len(t.runs) && t.runs[r+1].owner == owner {
		rhi = r + 2
	}
	t.splice(rlo, rhi, pieces)
	t.freePrefix = nil
}

// Assign gives slot at (mod H) to task id. It fails if the slot is
// already owned or id is invalid.
func (t *Table) Assign(at Time, id TaskID) error {
	if id < 0 {
		return fmt.Errorf("slot: invalid task id %d", id)
	}
	if t.h == 0 {
		return errors.New("slot: assign on empty table")
	}
	i := Time(t.index(at))
	if o := t.runs[t.findRun(i)].owner; o != Free {
		return fmt.Errorf("slot: slot %d already owned by task %d", i, o)
	}
	t.setSpan(i, i+1, id)
	t.free--
	return nil
}

// Clear releases slot at (mod H) back to the free pool.
func (t *Table) Clear(at Time) {
	if t.h == 0 {
		return
	}
	i := Time(t.index(at))
	if t.runs[t.findRun(i)].owner != Free {
		t.setSpan(i, i+1, Free)
		t.free++
	}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	return &Table{h: t.h, runs: append([]run(nil), t.runs...), free: t.free}
}

// Runs visits every maximal ownership run of σ* in slot order,
// stopping early when visit returns false. The runs partition [0, H).
func (t *Table) Runs(visit func(Run) bool) {
	for i, rn := range t.runs {
		if !visit(Run{Start: rn.start, Length: t.runEnd(i) - rn.start, Owner: rn.owner}) {
			return
		}
	}
}

// FreeRuns visits every maximal free run of σ* in slot order, stopping
// early when visit returns false. Each run is a span the R-channel may
// consume whole — the fast-forward engine jumps these directly.
func (t *Table) FreeRuns(visit func(Run) bool) {
	for i, rn := range t.runs {
		if rn.owner != Free {
			continue
		}
		if !visit(Run{Start: rn.start, Length: t.runEnd(i) - rn.start, Owner: Free}) {
			return
		}
	}
}

// OwnedRuns returns the maximal runs owned by id, in slot order. The
// hypervisor's P-channel walks these instead of per-slot owned lists.
func (t *Table) OwnedRuns(id TaskID) []Run {
	var out []Run
	for i, rn := range t.runs {
		if rn.owner == id {
			out = append(out, Run{Start: rn.start, Length: t.runEnd(i) - rn.start, Owner: id})
		}
	}
	return out
}

// OwnedBy returns the indices (0 ≤ i < H) of every slot owned by id,
// in increasing order. Prefer OwnedRuns: this expands the runs to one
// entry per slot.
func (t *Table) OwnedBy(id TaskID) []Time {
	var out []Time
	for i, rn := range t.runs {
		if rn.owner == id {
			for s, e := rn.start, t.runEnd(i); s < e; s++ {
				out = append(out, s)
			}
		}
	}
	return out
}

// FreeSlots returns the indices (0 ≤ i < H) of all free slots, in
// increasing order. Prefer FreeRuns: this expands the runs to one
// entry per slot.
func (t *Table) FreeSlots() []Time {
	out := make([]Time, 0, t.free)
	for i, rn := range t.runs {
		if rn.owner == Free {
			for s, e := rn.start, t.runEnd(i); s < e; s++ {
				out = append(out, s)
			}
		}
	}
	return out
}

// MemoryFootprint returns the heap bytes backing the table (run list
// plus query index), the quantity internal/footprint compares against
// the dense per-slot encoding. The index is built first so the figure
// reflects a query-ready table.
func (t *Table) MemoryFootprint() int {
	t.ensureIndex()
	return cap(t.runs)*int(unsafe.Sizeof(run{})) + cap(t.freePrefix)*int(unsafe.Sizeof(Time(0)))
}

// NextFree returns the first slot ≥ from that is free in σ, or Never
// if the table has no free slots at all.
func (t *Table) NextFree(from Time) Time {
	if t.free == 0 || t.h == 0 {
		return Never
	}
	idx := Time(t.index(from))
	r := t.findRun(idx)
	if t.runs[r].owner == Free {
		return from
	}
	t.ensureIndex()
	// First free run after r: the first boundary where the free-slot
	// prefix grows past its value at the end of run r.
	base := t.freePrefix[r+1]
	n := len(t.runs)
	j := r + 1 + sort.Search(n-r-1, func(k int) bool { return t.freePrefix[r+2+k] > base })
	if j < n {
		return from + (t.runs[j].start - idx)
	}
	// Wrap onto the next repetition: the first free run from slot 0.
	j0 := sort.Search(n, func(k int) bool { return t.freePrefix[k+1] > 0 })
	return from + (t.h - idx) + t.runs[j0].start
}

// FreeIn returns the number of free slots in the half-open window
// [from, from+length) of the infinite table σ.
func (t *Table) FreeIn(from, length Time) Time {
	if length <= 0 || t.h == 0 {
		return 0
	}
	full := length / t.h
	n := full * Time(t.free)
	lo := Time(t.index(from))
	rem := length % t.h
	if hi := lo + rem; hi <= t.h {
		n += t.freeBefore(hi) - t.freeBefore(lo)
	} else {
		n += Time(t.free) - t.freeBefore(lo)
		n += t.freeBefore(hi - t.h)
	}
	return n
}

// String renders σ* as a compact single-line schedule, e.g.
// "|0|0|.|1|.|" where digits are task IDs and '.' is a free slot.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteByte('|')
	for i, rn := range t.runs {
		for s, e := rn.start, t.runEnd(i); s < e; s++ {
			if rn.owner == Free {
				b.WriteByte('.')
			} else {
				fmt.Fprintf(&b, "%d", rn.owner)
			}
			b.WriteByte('|')
		}
	}
	return b.String()
}

// Requirement describes one pre-defined (periodic) I/O task to be
// compiled into σ*: it releases a job every Period slots starting at
// Offset, each job needs WCET slots and must finish within Deadline
// slots of its release. Deadline ≤ Period (constrained deadlines).
type Requirement struct {
	ID       TaskID
	Period   Time
	WCET     Time
	Deadline Time
	Offset   Time
}

// Validate reports whether the requirement is internally consistent.
func (r Requirement) Validate() error {
	switch {
	case r.ID < 0:
		return fmt.Errorf("slot: requirement %d: negative id", r.ID)
	case r.Period <= 0:
		return fmt.Errorf("slot: requirement %d: period %d ≤ 0", r.ID, r.Period)
	case r.WCET <= 0:
		return fmt.Errorf("slot: requirement %d: wcet %d ≤ 0", r.ID, r.WCET)
	case r.Deadline <= 0:
		return fmt.Errorf("slot: requirement %d: deadline %d ≤ 0", r.ID, r.Deadline)
	case r.Deadline > r.Period:
		return fmt.Errorf("slot: requirement %d: deadline %d > period %d (constrained deadlines required)", r.ID, r.Deadline, r.Period)
	case r.WCET > r.Deadline:
		return fmt.Errorf("slot: requirement %d: wcet %d > deadline %d", r.ID, r.WCET, r.Deadline)
	case r.Offset < 0 || r.Offset >= r.Period:
		return fmt.Errorf("slot: requirement %d: offset %d outside [0,%d)", r.ID, r.Offset, r.Period)
	}
	return nil
}

// Placement records the slots granted to one job of a pre-defined
// task during table construction.
type Placement struct {
	Task     TaskID
	Release  Time
	Deadline Time
	Slots    []Time
}

// ErrOverload is returned by Build when the pre-defined tasks cannot
// all meet their deadlines within one hyper-period.
var ErrOverload = errors.New("slot: pre-defined task set is unschedulable")

// buildCap bounds the hyper-period Build accepts. The run-length table
// no longer ties memory to H, but the EDF sweep still walks every
// occupied slot, so an upper bound keeps pathological inputs from
// running unbounded.
const buildCap = 1 << 26

// buildJob is one job of the hyper-period during table construction.
type buildJob struct {
	req       Requirement
	release   Time
	deadline  Time
	remaining Time
	placed    []Time
	idx       int // position in deadline-sorted order: EDF tie-break
}

// expandJobs validates the requirements, computes H = lcm(periods) and
// expands every job of one hyper-period, returned both deadline-sorted
// (jobs) and release-sorted (byRelease).
func expandJobs(reqs []Requirement) (Time, []*buildJob, []*buildJob, error) {
	ids := map[TaskID]bool{}
	periods := make([]Time, 0, len(reqs))
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return 0, nil, nil, err
		}
		if ids[r.ID] {
			return 0, nil, nil, fmt.Errorf("slot: duplicate task id %d", r.ID)
		}
		ids[r.ID] = true
		periods = append(periods, r.Period)
	}
	h := LCMAll(periods...)
	if h == Never || h > buildCap {
		return 0, nil, nil, fmt.Errorf("slot: hyper-period %d too large", h)
	}
	var jobs []*buildJob
	for _, r := range reqs {
		for rel := r.Offset; rel < h; rel += r.Period {
			jobs = append(jobs, &buildJob{
				req:       r,
				release:   rel,
				deadline:  rel + r.Deadline,
				remaining: r.WCET,
			})
		}
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].deadline != jobs[j].deadline {
			return jobs[i].deadline < jobs[j].deadline
		}
		return jobs[i].release < jobs[j].release
	})
	for i, j := range jobs {
		j.idx = i
	}
	byRelease := append([]*buildJob(nil), jobs...)
	sort.Slice(byRelease, func(a, b int) bool { return byRelease[a].release < byRelease[b].release })
	return h, jobs, byRelease, nil
}

// edfSweep runs the offline preemptive EDF sweep over 2H slots,
// keeping the released unfinished jobs in a min-heap on (deadline,
// sorted position) — the same pick order as a linear scan of the
// deadline-sorted slice. Jobs whose deadline crosses the hyper-period
// boundary wrap onto the (identical) next repetition, so the sweep
// covers 2H slots but only places within [release, deadline);
// stretches with no released work are jumped. Placement goes through
// the isFree/assign callbacks so both table representations share the
// sweep.
func edfSweep(h Time, byRelease []*buildJob, isFree func(Time) bool, assign func(Time, TaskID) error) error {
	less := func(a, b *buildJob) bool {
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.idx < b.idx
	}
	var ready []*buildJob
	push := func(j *buildJob) {
		ready = append(ready, j)
		for i := len(ready) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(ready[i], ready[p]) {
				break
			}
			ready[i], ready[p] = ready[p], ready[i]
			i = p
		}
	}
	pop := func() {
		n := len(ready) - 1
		ready[0] = ready[n]
		ready[n] = nil
		ready = ready[:n]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && less(ready[l], ready[m]) {
				m = l
			}
			if r < n && less(ready[r], ready[m]) {
				m = r
			}
			if m == i {
				break
			}
			ready[i], ready[m] = ready[m], ready[i]
			i = m
		}
	}
	ri := 0
	for now := Time(0); now < 2*h; {
		for ri < len(byRelease) && byRelease[ri].release <= now {
			push(byRelease[ri])
			ri++
		}
		// An expired head can never be placed again; it surfaces as
		// ErrOverload in collectPlacements, exactly as under the
		// per-slot scan.
		for len(ready) > 0 && ready[0].deadline <= now {
			pop()
		}
		if len(ready) == 0 {
			if ri >= len(byRelease) {
				break
			}
			now = byRelease[ri].release
			continue
		}
		if isFree(now) { // else: taken by a wrapped earlier placement
			pick := ready[0]
			if err := assign(now, pick.req.ID); err != nil {
				return err
			}
			pick.placed = append(pick.placed, now%h)
			pick.remaining--
			if pick.remaining == 0 {
				pop()
			}
		}
		now++
	}
	return nil
}

// collectPlacements turns the swept jobs into the Placement report,
// failing with ErrOverload if any job was left short.
func collectPlacements(jobs []*buildJob) ([]Placement, error) {
	placements := make([]Placement, 0, len(jobs))
	for _, j := range jobs {
		if j.remaining > 0 {
			return nil, fmt.Errorf("%w: task %d job released at %d misses deadline %d",
				ErrOverload, j.req.ID, j.release, j.deadline)
		}
		placements = append(placements, Placement{
			Task:     j.req.ID,
			Release:  j.release,
			Deadline: j.deadline,
			Slots:    j.placed,
		})
	}
	sort.Slice(placements, func(i, j int) bool {
		if placements[i].Release != placements[j].Release {
			return placements[i].Release < placements[j].Release
		}
		return placements[i].Task < placements[j].Task
	})
	return placements, nil
}

// Build compiles a set of pre-defined task requirements into a Time
// Slot Table σ* of length H = lcm(periods), using offline preemptive
// EDF to place every job of the hyper-period. This mirrors the
// "loaded during system initialization" step of Sec. II-B: the
// resulting table fixes, before run time, exactly which slots each
// pre-defined task executes in.
//
// The first pass of the sweep (now < H) advances strictly forward, so
// Build emits the run list append-only and never allocates H-sized
// state; only the rare wrapped placements (now ≥ H) go through the
// general split/merge path on the finalized table.
//
// Build fails with ErrOverload if some job cannot meet its deadline.
func Build(reqs []Requirement) (*Table, []Placement, error) {
	if len(reqs) == 0 {
		return NewTable(0), nil, nil
	}
	h, jobs, byRelease, err := expandJobs(reqs)
	if err != nil {
		return nil, nil, err
	}
	tab := &Table{h: h}
	var acc []run
	var filled, placed Time
	finalized := false
	appendRun := func(start Time, owner TaskID) {
		if len(acc) > 0 && acc[len(acc)-1].owner == owner {
			return
		}
		acc = append(acc, run{start, owner})
	}
	finalize := func() {
		if finalized {
			return
		}
		finalized = true
		if filled < h {
			appendRun(filled, Free)
		}
		tab.runs = acc
		tab.free = int(h - placed)
	}
	isFree := func(now Time) bool {
		if now < h {
			return true // ahead of the append frontier: untouched
		}
		finalize()
		return tab.IsFree(now)
	}
	assign := func(now Time, id TaskID) error {
		if now < h {
			if now > filled {
				appendRun(filled, Free)
			}
			appendRun(now, id)
			filled = now + 1
			placed++
			return nil
		}
		finalize()
		return tab.Assign(now, id)
	}
	if err := edfSweep(h, byRelease, isFree, assign); err != nil {
		return nil, nil, err
	}
	finalize()
	placements, err := collectPlacements(jobs)
	if err != nil {
		return nil, nil, err
	}
	return tab, placements, nil
}
