// Package metrics provides the evaluation metrics of Sec. V: success
// ratio (trials without any safety/function deadline miss), I/O
// throughput, and response-time statistics (mean, percentiles,
// variance) used to quantify predictability.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"ioguard/internal/iodev"
	"ioguard/internal/slot"
)

// Sample accumulates scalar observations (e.g. response times).
type Sample struct {
	values []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddTime appends a slot-valued observation.
func (s *Sample) AddTime(t slot.Time) { s.Add(float64(t)) }

// Each visits every buffered observation in insertion order (or
// sorted order if a Percentile query sorted the buffer first) — the
// iteration DistFold uses to fold exact per-trial samples into an
// exact cross-trial reference.
func (s *Sample) Each(visit func(v float64)) {
	for _, v := range s.values {
		visit(v)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the population variance, or 0 for fewer than two
// observations.
func (s *Sample) Variance() float64 {
	if len(s.values) < 2 {
		return 0
	}
	m := s.Mean()
	var sum float64
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on the sorted sample, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.values[rank]
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f p99=%.0f max=%.0f",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Percentile(99), s.Max())
}

// FaultSummary accounts one faulted trial: what the fault-injection
// layer put in (jitter, drops, duplicates, delays — order-independent
// sums over the per-job decision hashes) and what the collector saw
// come out (delivered duplicates, deadline misses of perturbed jobs).
// Nil on TrialResult means the trial ran clean.
type FaultSummary struct {
	// Jittered counts jobs whose release the fault layer pushed later.
	Jittered int64
	// Dropped counts requests lost in transport. They never reach the
	// system, so they appear in neither Completed nor the system's own
	// Dropped counter; this field is the only record of them.
	Dropped int64
	// Duplicated counts injected duplicate requests.
	Duplicated int64
	// Delayed counts requests given extra transport delay.
	Delayed int64
	// DupDelivered counts duplicate completions the collector observed
	// (phantom actuations: excluded from every distribution, their cost
	// is the device bandwidth they consumed).
	DupDelivered int64
	// FaultedMisses counts deadline misses (critical + synthetic,
	// completed or censored-pending) of fault-perturbed jobs — the
	// fault-conditioned slice of the miss counters.
	FaultedMisses int64
}

// TrialResult is the outcome of one execution of one system under one
// configuration (one of the paper's 1000 trials).
type TrialResult struct {
	Released       int64 // jobs handed to the system by the release engine
	Completed      int64
	CriticalMisses int64 // deadline misses of safety/function tasks
	OtherMisses    int64 // deadline misses of synthetic tasks
	Unfinished     int64 // jobs never completed within the horizon
	Dropped        int64 // jobs rejected by full queues
	BytesServed    int64
	Horizon        slot.Time
	// Response holds the observed response times of all completed
	// jobs: an exact *Sample in the default metrics mode, a
	// bounded-memory *Streaming recorder in streaming mode.
	Response Recorder
	// Tardiness is max(observed completion − deadline, 0) per
	// completed job: the predictability metric (0 everywhere means
	// every deadline held; its tail quantifies how badly a system
	// degrades).
	Tardiness Recorder
	// Accuracy is the ROTA-I/O-style timing-accuracy distribution:
	// max(observed response − WCET, 0) per completed job, the error
	// between the observed actuation and the earliest one an unloaded
	// device could have produced. Nil unless the trial opted in
	// (Trial.Accuracy, or any enabled fault plan).
	Accuracy Recorder
	// Faults summarizes the trial's fault injection; nil for clean runs.
	Faults *FaultSummary
}

// Success reports whether the trial succeeded in the paper's sense:
// no safety or function task missed a deadline.
func (t *TrialResult) Success() bool { return t.CriticalMisses == 0 }

// ThroughputMBps returns the served payload in MB/s of simulated time.
func (t *TrialResult) ThroughputMBps() float64 {
	if t.Horizon <= 0 {
		return 0
	}
	secs := float64(t.Horizon) / iodev.SlotsPerSec
	return float64(t.BytesServed) / 1e6 / secs
}

// Aggregate summarizes many trials of one configuration: the success
// ratio across trials, the distribution of throughput, and — when the
// trial recorders support folding — the merged cross-trial response
// and tardiness distributions.
type Aggregate struct {
	Trials     int
	Successes  int
	Throughput Sample // MB/s per trial
	Misses     Sample // critical misses per trial
	// Response and Tardiness fold the per-trial completion
	// distributions across the whole sweep: exact Samples fold into an
	// exact reference, KLL-backed Streaming recorders Merge without
	// degrading ε, GK-backed recorders cannot fold and are counted as
	// unmerged. AddTrial folds in call order, so an aggregate built in
	// trial order is a pure function of the trial sequence — the
	// byte-identical-for-any-workers contract extends to quantiles.
	Response  DistFold
	Tardiness DistFold
	// Accuracy folds the per-trial timing-accuracy distributions; it
	// stays empty unless trials tracked one.
	Accuracy DistFold

	// FaultTrials counts trials that carried a fault summary; the
	// samples below hold one observation per such trial. All stay empty
	// for clean sweeps.
	FaultTrials     int
	FaultJittered   Sample // jittered releases per trial
	FaultDropped    Sample // transport drops per trial
	FaultDuplicated Sample // injected duplicates per trial
	FaultDelayed    Sample // delayed requests per trial
	DupDelivered    Sample // delivered duplicates per trial
	FaultedMisses   Sample // misses of perturbed jobs per trial
}

// AddTrial folds one trial into the aggregate.
func (a *Aggregate) AddTrial(t *TrialResult) {
	a.Trials++
	if t.Success() {
		a.Successes++
	}
	a.Throughput.Add(t.ThroughputMBps())
	a.Misses.Add(float64(t.CriticalMisses))
	a.Response.AddRecorder(t.Response)
	a.Tardiness.AddRecorder(t.Tardiness)
	a.Accuracy.AddRecorder(t.Accuracy)
	if t.Faults != nil {
		a.FaultTrials++
		a.FaultJittered.Add(float64(t.Faults.Jittered))
		a.FaultDropped.Add(float64(t.Faults.Dropped))
		a.FaultDuplicated.Add(float64(t.Faults.Duplicated))
		a.FaultDelayed.Add(float64(t.Faults.Delayed))
		a.DupDelivered.Add(float64(t.Faults.DupDelivered))
		a.FaultedMisses.Add(float64(t.Faults.FaultedMisses))
	}
}

// SuccessRatio returns the fraction of successful trials in [0,1].
func (a *Aggregate) SuccessRatio() float64 {
	if a.Trials == 0 {
		return 0
	}
	return float64(a.Successes) / float64(a.Trials)
}

// String summarizes the aggregate.
func (a *Aggregate) String() string {
	return fmt.Sprintf("trials=%d success=%.1f%% tput=%.3f±%.3f MB/s",
		a.Trials, 100*a.SuccessRatio(), a.Throughput.Mean(), a.Throughput.StdDev())
}
