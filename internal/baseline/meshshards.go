// Region shards for the mesh-transport baselines: the 5×5 mesh is
// split into the processor band (rows 0..H-2) and the device row
// (row H-1), each a noc.Region advancing on its own virtual clock.
// Cross-region packets move through the regions' boundary mailboxes,
// and each region's published horizon bounds how far the neighbor may
// fast-forward — a region never skips past a flit that could still
// arrive from across the cut. This is what lets Legacy and RT-Xen
// join ShardSet.RunParallel: the guest-side pipeline rides on the
// processor shard, the stations on the device shard.
package baseline

import (
	"ioguard/internal/noc"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// guestPipe is the system-specific guest-side request pipeline that
// lives on the processor shard: Legacy's kernel-path delay queue or
// RT-Xen's serialized VMM backend.
type guestPipe interface {
	// injectDue advances the pipeline at slot now, injecting every
	// request whose software path has completed.
	injectDue(now slot.Time)
	// pipeNextWork returns the earliest slot at which the pipeline
	// needs an executed step (may be ≤ now), or slot.Never.
	pipeNextWork(now slot.Time) slot.Time
	// nextEmit lower-bounds the injection slot of the next request the
	// pipeline could place on the mesh, given its clock reaches pub.
	// It must account for jobs not yet submitted (which arrive at
	// slots ≥ pub and then traverse the software path).
	nextEmit(pub slot.Time) slot.Time
}

// procShard is the processor-band shard: guest pipeline + upper mesh
// rows. It owns every device name, so all fleet releases route here,
// and it is the only shard that completes jobs — which makes the
// parallel merge order trivially identical to the sequential one.
type procShard struct {
	t       *meshTransport
	r       *noc.Region
	pipe    guestPipe
	devices []string
	submit  func(now slot.Time, j *task.Job)
}

var _ system.ParallelShard = (*procShard)(nil)

func (s *procShard) Devices() []string { return s.devices }

func (s *procShard) Submit(now slot.Time, j *task.Job) { s.submit(now, j) }

// Step runs one slot of the processor band: apply the neighbor's
// slot-(now-1) crossings, run the guest pipeline (injections land
// before the router phase, as in the dense Step), advance the
// routers, and publish the slot-(now+1) horizon.
func (s *procShard) Step(now slot.Time) {
	s.r.Apply(now)
	s.pipe.injectDue(now)
	s.r.Advance(now)
	s.r.Publish(now+1, s.pipe.nextEmit(now+1))
}

func (s *procShard) NextWork(now slot.Time) slot.Time {
	next := s.r.NextWork(now)
	if next <= now {
		return now
	}
	if at := s.pipe.pipeNextWork(now); at <= now {
		return now
	} else if at < next {
		next = at
	}
	return next
}

// SkipTo bulk-advances the band's link countdowns and republishes the
// horizon at the new clock (the skip proves no emission before to).
func (s *procShard) SkipTo(from, to slot.Time) {
	s.r.SkipTo(from, to)
	s.r.Publish(to, s.pipe.nextEmit(to))
}

func (s *procShard) SetCompletionSink(sink func(j *task.Job, at slot.Time)) {
	s.t.psink = sink
}

// devShard is the device-row shard: bottom mesh row plus every I/O
// station, stepped in tile order exactly as the monolithic transport
// does after the mesh.
type devShard struct {
	t        *meshTransport
	r        *noc.Region
	stations []*station
	// staged holds completed operations whose response packets are due
	// for injection at slot at (= completion slot + 1). Injection is
	// delayed until the next Step's Apply has run, so a response never
	// overtakes a same-slot router hop in a shared FIFO — the push
	// order a dense run would produce.
	staged []stagedResp
}

type stagedResp struct {
	at  slot.Time
	dev string
	j   *task.Job
}

// stageResponse is the station respond hook in region mode.
func (s *devShard) stageResponse(dev string, j *task.Job, finished slot.Time) {
	s.staged = append(s.staged, stagedResp{at: finished, dev: dev, j: j})
}

var _ system.ParallelShard = (*devShard)(nil)

// Devices returns nil: the processor shard owns every device name, so
// no releases route here — jobs reach this shard only as request
// packets across the mesh boundary.
func (s *devShard) Devices() []string { return nil }

// Submit should never be called (no devices are owned); a stray job
// is counted as lost in transport.
func (s *devShard) Submit(now slot.Time, j *task.Job) { s.t.dropped.Add(1) }

func (s *devShard) Step(now slot.Time) {
	s.r.Apply(now)
	for len(s.staged) > 0 && s.staged[0].at <= now {
		sr := s.staged[0]
		s.staged = s.staged[1:]
		s.t.sendResponse(sr.dev, sr.j, now)
	}
	s.r.Advance(now)
	for _, st := range s.stations {
		st.step(now)
	}
	s.r.Publish(now+1, s.nextEmit(now+1))
}

func (s *devShard) NextWork(now slot.Time) slot.Time {
	if len(s.staged) > 0 {
		return now // a response is due for injection next step
	}
	for _, st := range s.stations {
		if st.busy() {
			return now
		}
	}
	return s.r.NextWork(now)
}

func (s *devShard) SkipTo(from, to slot.Time) {
	s.r.SkipTo(from, to)
	s.r.Publish(to, s.nextEmit(to))
}

// SetCompletionSink is a no-op: the device row never completes jobs
// (responses eject — and complete — on the processor band).
func (s *devShard) SetCompletionSink(sink func(j *task.Job, at slot.Time)) {}

// nextEmit lower-bounds the next response injection: an in-service
// operation with r slots remaining responds at pub+r; a mere backlog
// responds no earlier than pub+1 (pull, setup, service all take
// slots); an idle station emits nothing.
func (s *devShard) nextEmit(pub slot.Time) slot.Time {
	if len(s.staged) > 0 {
		return pub // a staged response injects at the very next step
	}
	e := slot.Never
	for _, st := range s.stations {
		if st.current != nil {
			rem := st.current.Remaining
			if rem < 1 {
				rem = 1
			}
			if c := pub + rem; c < e {
				e = c
			}
		} else if st.backlog() > 0 {
			if c := pub + 1; c < e {
				e = c
			}
		}
	}
	return e
}
