package vm

import (
	"math/rand"
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func set(vmID int) task.Set {
	return task.Set{
		{ID: 0, VM: vmID, Period: 10, WCET: 2, Deadline: 10},
		{ID: 1, VM: vmID, Period: 25, WCET: 3, Deadline: 20},
	}
}

func TestNewGuestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGuest(0, set(0), nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewGuest(1, set(0), rng); err == nil {
		t.Error("foreign VM tasks accepted")
	}
	bad := task.Set{{ID: 0, VM: 0, Period: 0, WCET: 1, Deadline: 1}}
	if _, err := NewGuest(0, bad, rng); err == nil {
		t.Error("invalid task accepted")
	}
	g, err := NewGuest(3, nil, rng)
	if err != nil || g.ID() != 3 || len(g.Tasks()) != 0 {
		t.Error("empty guest should be fine")
	}
}

func TestReleaseRespectsMinimumSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := NewGuest(0, set(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	lastRelease := map[int]slot.Time{}
	for now := slot.Time(0); now < 500; now++ {
		g.Release(now, func(j *task.Job) {
			if j.Release != now {
				t.Fatalf("job released at %d but now is %d", j.Release, now)
			}
			if prev, ok := lastRelease[j.Task.ID]; ok {
				if gap := j.Release - prev; gap < j.Task.Period {
					t.Fatalf("task %d separation %d < period %d", j.Task.ID, gap, j.Task.Period)
				}
			}
			lastRelease[j.Task.ID] = j.Release
		})
	}
	if g.Released() < 40 {
		t.Errorf("released only %d jobs in 500 slots", g.Released())
	}
}

func TestReleaseJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := task.Set{{ID: 0, VM: 0, Period: 10, WCET: 1, Deadline: 10, Jitter: 4}}
	g, _ := NewGuest(0, ts, rng)
	var gaps []slot.Time
	var prev slot.Time = -1
	for now := slot.Time(0); now < 2000; now++ {
		g.Release(now, func(j *task.Job) {
			if prev >= 0 {
				gaps = append(gaps, j.Release-prev)
			}
			prev = j.Release
		})
	}
	sawJitter := false
	for _, gap := range gaps {
		if gap < 10 || gap > 14 {
			t.Fatalf("gap %d outside [10,14]", gap)
		}
		if gap > 10 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Error("jitter never materialized in 2000 slots")
	}
}

func TestReleaseDeterministicPerSeed(t *testing.T) {
	releases := func(seed int64) []slot.Time {
		rng := rand.New(rand.NewSource(seed))
		g, _ := NewGuest(0, set(0), rng)
		var out []slot.Time
		for now := slot.Time(0); now < 200; now++ {
			g.Release(now, func(j *task.Job) { out = append(out, j.Release) })
		}
		return out
	}
	a, b := releases(42), releases(42)
	if len(a) != len(b) {
		t.Fatal("same seed produced different release counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	c := releases(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestJobSequenceNumbers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ts := task.Set{{ID: 0, VM: 0, Period: 10, WCET: 1, Deadline: 10}}
	g, _ := NewGuest(0, ts, rng)
	want := 0
	for now := slot.Time(0); now < 100; now++ {
		g.Release(now, func(j *task.Job) {
			if j.Seq != want {
				t.Fatalf("seq = %d, want %d", j.Seq, want)
			}
			want++
		})
	}
}

func TestFleet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := task.Set{
		{ID: 0, VM: 0, Period: 10, WCET: 1, Deadline: 10},
		{ID: 1, VM: 2, Period: 10, WCET: 1, Deadline: 10},
	}
	fleet, err := NewFleet(3, ts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Guests()) != 3 {
		t.Fatalf("fleet size = %d", len(fleet.Guests()))
	}
	n := 0
	for now := slot.Time(0); now < 100; now++ {
		fleet.Release(now, func(j *task.Job) { n++ })
	}
	if int64(n) != fleet.Released() {
		t.Errorf("emitted %d ≠ Released() %d", n, fleet.Released())
	}
	if n < 18 {
		t.Errorf("too few releases: %d", n)
	}
}

func TestFleetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewFleet(0, nil, rng); err == nil {
		t.Error("zero VMs accepted")
	}
	ts := task.Set{{ID: 0, VM: 5, Period: 10, WCET: 1, Deadline: 10}}
	if _, err := NewFleet(2, ts, rng); err == nil {
		t.Error("task beyond fleet accepted")
	}
}
