package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ioguard/internal/slot"
)

// probe is a test component with a fixed plan of internal work slots.
// It fails the test if a planned slot is skipped over, and checks that
// SkipTo spans never cover planned work.
type probe struct {
	t    *testing.T
	name string
	work []slot.Time // sorted slots with internal work
	wi   int

	stepped int64
	skipped slot.Time
	log     *[]exec // shared execution log, appended to on every Step
	idx     int
}

type exec struct {
	at    slot.Time
	shard int
}

func (p *probe) Step(now slot.Time) {
	p.stepped++
	if p.log != nil {
		*p.log = append(*p.log, exec{at: now, shard: p.idx})
	}
	for p.wi < len(p.work) && p.work[p.wi] <= now {
		if p.work[p.wi] < now {
			p.t.Errorf("%s: work at %d executed late at %d", p.name, p.work[p.wi], now)
		}
		p.wi++
	}
}

func (p *probe) NextWork(now slot.Time) slot.Time {
	if p.wi >= len(p.work) {
		return slot.Never
	}
	if p.work[p.wi] < now {
		return now
	}
	return p.work[p.wi]
}

func (p *probe) SkipTo(from, to slot.Time) {
	p.skipped += to - from
	if p.wi < len(p.work) && p.work[p.wi] < to {
		p.t.Errorf("%s: SkipTo(%d,%d) jumps over work at %d", p.name, from, to, p.work[p.wi])
	}
}

// TestShardSetDecoupling: one shard busy every slot must not force
// dense stepping of an almost-idle peer — the exact failure mode of
// the global-min fast-forward this scheduler replaces.
func TestShardSetDecoupling(t *testing.T) {
	const horizon = 10_000
	busyPlan := make([]slot.Time, horizon)
	for i := range busyPlan {
		busyPlan[i] = slot.Time(i)
	}
	busy := &probe{t: t, name: "busy", work: busyPlan}
	idle := &probe{t: t, name: "idle", work: []slot.Time{0, 4000, 9999}}

	s := NewShardSet()
	s.Add(busy)
	s.Add(idle)
	s.Run(horizon, nil, nil)

	if busy.stepped != horizon {
		t.Errorf("busy shard stepped %d slots, want %d", busy.stepped, horizon)
	}
	if busy.wi != len(busy.work) || idle.wi != len(idle.work) {
		t.Errorf("unfinished work: busy %d/%d, idle %d/%d",
			busy.wi, len(busy.work), idle.wi, len(idle.work))
	}
	if idle.stepped+int64(idle.skipped) != horizon {
		t.Errorf("idle shard stepped %d + skipped %d ≠ horizon %d",
			idle.stepped, idle.skipped, horizon)
	}
	if idle.stepped > 10 {
		t.Errorf("idle shard stepped %d slots next to a busy peer; decoupling failed", idle.stepped)
	}
	st := s.Stats(1)
	if st.Stepped != idle.stepped || st.Skipped != idle.skipped {
		t.Errorf("Stats(1) = %+v, want {%d %d}", st, idle.stepped, idle.skipped)
	}
}

// TestShardSetExecutionOrder: the executed (slot, shard) pairs must
// come out in lexicographic order — the property that makes the
// decoupled interleaving identical to a dense loop that steps shards
// in registration order within each slot (and thus keeps collector
// output byte-identical without any re-sorting).
func TestShardSetExecutionOrder(t *testing.T) {
	const horizon = 2000
	rng := rand.New(rand.NewSource(99))
	var log []exec
	s := NewShardSet()
	for i := 0; i < 5; i++ {
		var plan []slot.Time
		for at := slot.Time(rng.Intn(10)); at < horizon; at += slot.Time(1 + rng.Intn(97)) {
			plan = append(plan, at)
		}
		p := &probe{t: t, name: "p", work: plan, log: &log, idx: i}
		p.idx = s.Add(p)
	}
	s.Run(horizon, nil, nil)
	if !sort.SliceIsSorted(log, func(a, b int) bool {
		if log[a].at != log[b].at {
			return log[a].at < log[b].at
		}
		return log[a].shard < log[b].shard
	}) {
		t.Fatal("execution log is not sorted by (slot, shard)")
	}
}

// sink is a purely input-driven component: it has no internal work and
// must be woken by the horizon exactly at each input's arrival slot.
type sink struct {
	t        *testing.T
	inputs   []slot.Time // sorted arrival slots
	ii       int         // next input not yet consumed (advanced by feed)
	consumed int
}

func (k *sink) Step(now slot.Time) {}
func (k *sink) NextWork(now slot.Time) slot.Time {
	return slot.Never
}

// TestShardSetHorizon: a shard with no internal work still may not
// run past an upstream input — the HorizonFunc must wake it at every
// arrival slot, even a conservative horizon that sometimes wakes it
// early.
func TestShardSetHorizon(t *testing.T) {
	const horizon = 50_000
	rng := rand.New(rand.NewSource(7))
	var ks []*sink
	s := NewShardSet()
	for i := 0; i < 3; i++ {
		var in []slot.Time
		for at := slot.Time(rng.Intn(500)); at < horizon; at += slot.Time(100 + rng.Intn(5000)) {
			in = append(in, at)
		}
		k := &sink{t: t, inputs: in}
		ks = append(ks, k)
		s.Add(k)
	}
	conservative := rand.New(rand.NewSource(8))
	feed := func(i int, now slot.Time) {
		k := ks[i]
		for k.ii < len(k.inputs) && k.inputs[k.ii] <= now {
			if k.inputs[k.ii] < now {
				t.Fatalf("shard %d: input at %d delivered late at %d", i, k.inputs[k.ii], now)
			}
			k.ii++
			k.consumed++
		}
	}
	hz := func(i int, limit slot.Time) slot.Time {
		k := ks[i]
		if k.ii >= len(k.inputs) {
			return limit
		}
		next := k.inputs[k.ii]
		if next > limit {
			return limit
		}
		// Occasionally under-report to model a conservative bound: the
		// shard wakes early, finds nothing, and re-queries.
		if conservative.Intn(4) == 0 && next > 0 {
			return next - slot.Time(conservative.Intn(int(next)+1))
		}
		return next
	}
	s.Run(horizon, feed, hz)
	for i, k := range ks {
		if k.consumed != len(k.inputs) {
			t.Errorf("shard %d consumed %d/%d inputs", i, k.consumed, len(k.inputs))
		}
		st := s.Stats(i)
		if st.Stepped+int64(st.Skipped) != horizon {
			t.Errorf("shard %d: stepped %d + skipped %d ≠ %d", i, st.Stepped, st.Skipped, horizon)
		}
		if st.Stepped == horizon {
			t.Errorf("shard %d never fast-forwarded", i)
		}
	}
}

// stale is a component whose NextWork mis-reports: it always answers
// with slot 0, a slot strictly before the shard's clock after the
// first step. The scheduler must treat such answers as "busy now" —
// stepping densely — and never move a clock backwards.
type stale struct {
	stepped []slot.Time
}

func (s *stale) Step(now slot.Time) { s.stepped = append(s.stepped, now) }

func (s *stale) NextWork(now slot.Time) slot.Time { return 0 }

// TestShardSetStaleNextWork: a NextWork answer below the shard's
// current clock must not rewind it (or wedge the scheduler) — the
// shard degrades to dense stepping, each slot executed exactly once in
// order.
func TestShardSetStaleNextWork(t *testing.T) {
	const horizon = 200
	bad := &stale{}
	peer := &probe{t: t, name: "peer", work: []slot.Time{0, 150}}
	s := NewShardSet()
	s.Add(bad)
	s.Add(peer)
	s.Run(horizon, nil, nil)
	if len(bad.stepped) != horizon {
		t.Fatalf("stale shard stepped %d slots, want %d (dense)", len(bad.stepped), horizon)
	}
	for i, at := range bad.stepped {
		if at != slot.Time(i) {
			t.Fatalf("stale shard step %d ran at slot %d; clock moved non-monotonically", i, at)
		}
	}
	if got := s.Clock(0); got != horizon {
		t.Errorf("stale shard clock = %d, want %d", got, horizon)
	}
	if peer.wi != len(peer.work) {
		t.Errorf("peer finished %d/%d work items next to a stale shard", peer.wi, len(peer.work))
	}
}

// TestShardSetSkipExactlyToUntil: a shard whose work ends early must
// fast-forward in one jump to exactly the run bound — clock pinned at
// until, the whole remaining span accounted as skipped — on a
// multi-shard set driven with nil feed and horizon.
func TestShardSetSkipExactlyToUntil(t *testing.T) {
	const horizon = 1000
	early := &probe{t: t, name: "early", work: []slot.Time{0}}
	late := &probe{t: t, name: "late", work: []slot.Time{0, 500, 999}}
	s := NewShardSet()
	s.Add(early)
	s.Add(late)
	s.Run(horizon, nil, nil)
	if st := s.Stats(0); st.Stepped != 1 || st.Skipped != horizon-1 {
		t.Errorf("early shard stats = %+v, want {Stepped:1 Skipped:%d}", st, horizon-1)
	}
	if got := s.Clock(0); got != horizon {
		t.Errorf("early shard clock = %d, want exactly until (%d)", got, horizon)
	}
	if late.wi != len(late.work) {
		t.Errorf("late shard finished %d/%d work items", late.wi, len(late.work))
	}
	// Re-running with the same bound must be a no-op: every clock is
	// already at until.
	s.Run(horizon, nil, nil)
	if st := s.Stats(0); st.Stepped != 1 {
		t.Errorf("re-run at the same bound stepped the shard again: %+v", st)
	}
}

// parallelProbes builds a ShardSet of n probes with deterministic
// per-shard work plans and private execution logs (no shared state, so
// the set is safe to drive from RunParallel's worker goroutines).
func parallelProbes(t *testing.T, n int, horizon slot.Time) (*ShardSet, []*probe, []*[]exec) {
	rng := rand.New(rand.NewSource(int64(n)*1009 + 1))
	s := NewShardSet()
	ps := make([]*probe, n)
	logs := make([]*[]exec, n)
	for i := 0; i < n; i++ {
		var plan []slot.Time
		for at := slot.Time(rng.Intn(16)); at < horizon; at += slot.Time(1 + rng.Intn(211)) {
			plan = append(plan, at)
		}
		log := &[]exec{}
		p := &probe{t: t, name: fmt.Sprintf("p%d", i), work: plan, log: log}
		p.idx = s.Add(p)
		ps[i] = p
		logs[i] = log
	}
	return s, ps, logs
}

// TestShardSetRunParallelMatchesRun: for any worker count — degenerate
// (1), uneven (n not divisible), equal to and exceeding the shard
// count — every shard's executed slot sequence, stats and final clock
// must be identical to the sequential laggard-first run.
func TestShardSetRunParallelMatchesRun(t *testing.T) {
	const shards, horizon = 6, 4000
	ref, _, refLogs := parallelProbes(t, shards, horizon)
	ref.Run(horizon, nil, nil)
	for _, workers := range []int{1, 2, 3, 4, 6, 9} {
		s, _, logs := parallelProbes(t, shards, horizon)
		s.RunParallel(horizon, nil, nil, workers)
		for i := 0; i < shards; i++ {
			if !reflect.DeepEqual(*logs[i], *refLogs[i]) {
				t.Errorf("workers=%d: shard %d executed %d slots, sequential executed %d (or in a different order)",
					workers, i, len(*logs[i]), len(*refLogs[i]))
			}
			if s.Stats(i) != ref.Stats(i) {
				t.Errorf("workers=%d: shard %d stats %+v, want %+v", workers, i, s.Stats(i), ref.Stats(i))
			}
			if s.Clock(i) != ref.Clock(i) {
				t.Errorf("workers=%d: shard %d clock %d, want %d", workers, i, s.Clock(i), ref.Clock(i))
			}
		}
	}
}

// TestShardSetRunParallelEpochs drives the same set through repeated
// RunParallel windows (the epoch pattern the system layer uses) with
// shard-confined feed/horizon closures, checking inputs are consumed
// exactly at their arrival slots and every epoch barrier leaves all
// clocks at the window bound.
func TestShardSetRunParallelEpochs(t *testing.T) {
	const horizon = 30_000
	const span = 1024
	rng := rand.New(rand.NewSource(23))
	var ks []*sink
	s := NewShardSet()
	for i := 0; i < 5; i++ {
		var in []slot.Time
		for at := slot.Time(rng.Intn(300)); at < horizon; at += slot.Time(50 + rng.Intn(3000)) {
			in = append(in, at)
		}
		k := &sink{t: t, inputs: in}
		ks = append(ks, k)
		s.Add(k)
	}
	// Both closures touch only shard i's state — the confinement
	// RunParallel's contract demands.
	feed := func(i int, now slot.Time) {
		k := ks[i]
		for k.ii < len(k.inputs) && k.inputs[k.ii] <= now {
			if k.inputs[k.ii] < now {
				t.Errorf("shard %d: input at %d delivered late at %d", i, k.inputs[k.ii], now)
			}
			k.ii++
			k.consumed++
		}
	}
	hz := func(i int, limit slot.Time) slot.Time {
		k := ks[i]
		if k.ii >= len(k.inputs) || k.inputs[k.ii] > limit {
			return limit
		}
		return k.inputs[k.ii]
	}
	for end := slot.Time(span); ; end += span {
		if end > horizon {
			end = horizon
		}
		s.RunParallel(end, feed, hz, 3)
		for i := range ks {
			if got := s.Clock(i); got != end {
				t.Fatalf("after epoch to %d: shard %d clock = %d (barrier leak)", end, i, got)
			}
		}
		if end == horizon {
			break
		}
	}
	for i, k := range ks {
		if k.consumed != len(k.inputs) {
			t.Errorf("shard %d consumed %d/%d inputs", i, k.consumed, len(k.inputs))
		}
		st := s.Stats(i)
		if st.Stepped+int64(st.Skipped) != horizon {
			t.Errorf("shard %d: stepped %d + skipped %d ≠ %d", i, st.Stepped, st.Skipped, horizon)
		}
	}
}
