// Command ioguard-bench runs the simulation benchmark suite
// (internal/benchsuite — the same bodies `go test -bench` wraps) and
// writes a machine-readable trajectory to BENCH_sim.json. The derived
// dense/fast-forward speedups quantify the engine's idle-slot
// fast-forward on the idle-heavy cells; allocs/op tracks the
// zero-allocation hot paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"ioguard/internal/benchsuite"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SlotsPerOp is how many simulated slots one iteration advances
	// (0 when not meaningful, e.g. queue micro-benchmarks).
	SlotsPerOp   int64   `json:"slots_per_op,omitempty"`
	SlotsPerSec  float64 `json:"slots_per_sec,omitempty"`
}

// Speedup compares the dense and fast-forward variants of one
// benchmark pair.
type Speedup struct {
	Name          string  `json:"name"`
	DenseNsPerOp  float64 `json:"dense_ns_per_op"`
	FFNsPerOp     float64 `json:"fastforward_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	DenseSlotsSec float64 `json:"dense_slots_per_sec,omitempty"`
	FFSlotsSec    float64 `json:"fastforward_slots_per_sec,omitempty"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Schema    string    `json:"schema"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	BenchTime string    `json:"benchtime"`
	Results   []Result  `json:"results"`
	Speedups  []Speedup `json:"speedups,omitempty"`
}

func measure(spec benchsuite.Spec) Result {
	r := testing.Benchmark(spec.Bench)
	res := Result{
		Name:        spec.Name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SlotsPerOp:  spec.SlotsPerOp,
	}
	if spec.SlotsPerOp > 0 && res.NsPerOp > 0 {
		res.SlotsPerSec = float64(spec.SlotsPerOp) / (res.NsPerOp / 1e9)
	}
	return res
}

// speedups pairs every <base>/dense and <base>/globalmin result with
// its <base>/fastforward sibling. The Dense* fields hold the baseline
// variant's numbers; for "/globalmin" entries that baseline is the
// single-clock fast-forward rather than dense stepping, so the ratio
// isolates what the per-device clock decoupling buys on its own.
func speedups(results []Result) []Speedup {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	var out []Speedup
	for _, r := range results {
		for _, suffix := range []string{"/dense", "/globalmin"} {
			base, ok := strings.CutSuffix(r.Name, suffix)
			if !ok {
				continue
			}
			ff, ok := byName[base+"/fastforward"]
			if !ok || ff.NsPerOp == 0 {
				continue
			}
			name := base
			if suffix == "/globalmin" {
				name = base + "/globalmin"
			}
			out = append(out, Speedup{
				Name:          name,
				DenseNsPerOp:  r.NsPerOp,
				FFNsPerOp:     ff.NsPerOp,
				Speedup:       r.NsPerOp / ff.NsPerOp,
				DenseSlotsSec: r.SlotsPerSec,
				FFSlotsSec:    ff.SlotsPerSec,
			})
		}
	}
	return out
}

func main() {
	testing.Init()
	var (
		out       = flag.String("o", "BENCH_sim.json", "output path (\"-\" for stdout)")
		benchtime = flag.String("benchtime", "1s", "per-benchmark measuring time (forwarded to test.benchtime; e.g. 2s, 100x)")
		match     = flag.String("bench", "", "only run benchmarks whose name contains this substring")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(1)
	}

	rep := Report{
		Schema:    "ioguard/bench_sim/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *benchtime,
	}
	for _, spec := range benchsuite.Specs() {
		if *match != "" && !strings.Contains(spec.Name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
		res := measure(spec)
		fmt.Fprintf(os.Stderr, "  %d iterations, %.0f ns/op, %d allocs/op\n",
			res.Iterations, res.NsPerOp, res.AllocsPerOp)
		rep.Results = append(rep.Results, res)
	}
	rep.Speedups = speedups(rep.Results)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: %v\n", err)
		os.Exit(1)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("%s: fast-forward %.1f× over dense\n", s.Name, s.Speedup)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
}
