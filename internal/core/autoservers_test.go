package core

import (
	"strings"
	"testing"

	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// lightServerWorkload keeps per-VM utilization low so synthesis
// succeeds comfortably.
func lightServerWorkload() task.Set {
	return task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "spi", Period: 512, WCET: 8, Deadline: 512, OpBytes: 64},
		{ID: 1, VM: 1, Kind: task.Function, Device: "spi", Period: 1024, WCET: 16, Deadline: 1024, OpBytes: 64},
	}
}

func TestAutoServersSynthesizesAndRuns(t *testing.T) {
	col := &system.Collector{}
	s, err := New(Config{
		VMs:         2,
		Mode:        hypervisor.ServerEDF,
		AutoServers: true,
	}, lightServerWorkload(), col)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := s.Hypervisor().Manager("spi")
	if err != nil {
		t.Fatal(err)
	}
	if len(mgr.Config().Servers) != 2 {
		t.Fatalf("synthesized servers = %v", mgr.Config().Servers)
	}
	for _, g := range mgr.Config().Servers {
		if err := g.Validate(); err != nil {
			t.Errorf("server %v invalid: %v", g, err)
		}
	}
	// The synthesized system must meet every deadline under maximal
	// sporadic pressure.
	build := func(tr system.Trial, c *system.Collector) (system.System, error) {
		return New(Config{VMs: tr.VMs, Mode: hypervisor.ServerEDF, AutoServers: true}, tr.Tasks, c)
	}
	res, err := system.Run(build, system.Trial{VMs: 2, Tasks: lightServerWorkload(), Horizon: 8192, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.CriticalMisses != 0 {
		t.Errorf("auto-server run: %+v", res)
	}
}

func TestAutoServersRejectsOverload(t *testing.T) {
	heavy := task.Set{
		{ID: 0, VM: 0, Device: "spi", Period: 16, WCET: 10, Deadline: 16},
		{ID: 1, VM: 1, Device: "spi", Period: 16, WCET: 10, Deadline: 16},
	}
	_, err := New(Config{VMs: 2, Mode: hypervisor.ServerEDF, AutoServers: true}, heavy, nil)
	if err == nil {
		t.Fatal("overloaded auto-server synthesis should fail")
	}
	if !strings.Contains(err.Error(), "spi") {
		t.Errorf("error should name the device: %v", err)
	}
}

func TestAutoServersRejectsTightDeadlineVsPath(t *testing.T) {
	// WCET + overhead barely exceeds the path-adjusted deadline.
	tight := task.Set{
		{ID: 0, VM: 0, Device: "spi", Period: 16, WCET: 10, Deadline: 12},
	}
	if _, err := New(Config{VMs: 1, Mode: hypervisor.ServerEDF, AutoServers: true}, tight, nil); err == nil {
		t.Error("deadline tighter than wcet+overhead+path should be rejected")
	}
}

func TestAutoServersExplicitPeriod(t *testing.T) {
	s, err := New(Config{
		VMs:          2,
		Mode:         hypervisor.ServerEDF,
		AutoServers:  true,
		ServerPeriod: 64,
	}, lightServerWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := s.Hypervisor().Manager("spi")
	for _, g := range mgr.Config().Servers {
		if g.Period != 64 {
			t.Errorf("server period = %d, want 64", g.Period)
		}
	}
}

func TestAutoServersIgnoredInDirectEDF(t *testing.T) {
	s, err := New(Config{VMs: 2, Mode: hypervisor.DirectEDF, AutoServers: true}, lightServerWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := s.Hypervisor().Manager("spi")
	if len(mgr.Config().Servers) != 0 {
		t.Error("DirectEDF should not synthesize servers")
	}
}

func TestVMStatsThroughCore(t *testing.T) {
	col := &system.Collector{}
	s, err := New(Config{VMs: 2, Mode: hypervisor.DirectEDF}, lightServerWorkload(), col)
	if err != nil {
		t.Fatal(err)
	}
	tk := &lightServerWorkload()[0]
	s.Submit(0, task.NewJob(tk, 0, 0))
	for now := slot.Time(0); now < 64; now++ {
		s.Step(now)
	}
	mgr, _ := s.Hypervisor().Manager("spi")
	st, err := mgr.VMStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 || st.Completed != 1 || st.SlotsUsed == 0 {
		t.Errorf("vm0 stats = %+v", st)
	}
	if _, err := mgr.VMStats(9); err == nil {
		t.Error("out-of-range VMStats accepted")
	}
}
