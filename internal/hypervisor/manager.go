// Package hypervisor implements the I/O-GUARD hardware hypervisor of
// Sec. III (Jiang et al., DAC'21): per connected I/O device, a
// virtualization manager decides the execution order of I/O tasks
// (P-channel for pre-defined tasks driven by the Time Slot Table,
// R-channel for run-time tasks under the two-layer preemptive-EDF
// scheduler), and a virtualization driver translates operations for
// the device's controller with bounded latency.
//
// The manager executes at time-slot granularity: one slot of the
// shared I/O device is granted per Step, preemption happens at slot
// boundaries, and the response channel is pass-through.
package hypervisor

import (
	"errors"
	"fmt"
	"sort"

	"ioguard/internal/queue"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Mode selects the global scheduler's policy for free slots.
type Mode uint8

// Global scheduling modes.
const (
	// ServerEDF is the paper's two-layer design: free slots are
	// allocated to per-VM periodic servers Γi=(Πi,Θi) by EDF on
	// server deadlines; the granted VM runs its earliest-deadline job.
	ServerEDF Mode = iota
	// DirectEDF skips the server layer: free slots go to the
	// globally earliest deadline across all shadow registers. Used
	// for ablation; it maximizes raw schedulability but gives up the
	// per-VM bandwidth isolation of the servers.
	DirectEDF
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ServerEDF:
		return "server-edf"
	case DirectEDF:
		return "direct-edf"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config parameterizes one virtualization manager.
type Config struct {
	VMs          int         // number of I/O pools
	PoolCapacity int         // per-pool priority-queue depth; ≤0 = unbounded
	Table        *slot.Table // σ*: nil means an all-free table of length 1
	Servers      []task.Server
	Mode         Mode
	// WorkConserving lets the R-channel reclaim table slots whose
	// pre-defined task has no pending work. The paper's design is
	// non-work-conserving (run-time tasks execute only "when the
	// pre-defined tasks are not occupying the I/O"); the flag exists
	// for the ablation benchmarks.
	WorkConserving bool
	// ReqLatency is the bounded request-path cost: I/O driver forward
	// plus request translator (Sec. III-B), in slots.
	ReqLatency slot.Time
	// RespLatency is the bounded response-path cost (pass-through
	// response channel plus response translator), in slots.
	RespLatency slot.Time
}

// Stats aggregates one manager's execution counters.
type Stats struct {
	PSlotsUsed  int64 // table-owned slots that executed their task
	PSlotsIdle  int64 // table-owned slots whose task had no work
	RSlotsUsed  int64 // free slots granted to run-time jobs
	SlotsIdle   int64 // slots with no work at all
	Reclaimed   int64 // table slots reclaimed by the R-channel
	Completed   int64 // jobs finished (both channels)
	Preemptions int64 // job switches while the previous job was unfinished
	Dropped     int64 // jobs lost: rejected at full pools or discarded at task retirement
	BytesServed int64 // payload bytes of completed jobs
}

// VMStats aggregates one VM's R-channel counters, the per-tenant view
// of the hardware isolation (each VM can audit its own pool).
type VMStats struct {
	Admitted  int64 // jobs that entered the VM's I/O pool
	Completed int64 // jobs finished through the R-channel
	Dropped   int64 // jobs lost: rejected at the full pool or discarded at task retirement
	SlotsUsed int64 // device slots granted to this VM
}

// preTask is one pre-defined task registered with the P-channel.
type preTask struct {
	spec        *task.Sporadic
	id          slot.TaskID
	offset      slot.Time
	nextRelease slot.Time
	started     bool // nextRelease fast-forwarded to the current time
	seq         int
	pending     *queue.FIFO[*task.Job] // released, unfinished jobs (in order)
	owned       []slot.Run             // maximal table runs owned by id, ascending in [0,H)
}

// nextOwned returns the first slot ≥ from of the infinite table σ that
// this task owns — the next slot at which a pending P-channel job can
// execute. The binary search runs over the task's owned runs (whole
// spans, not per-slot lists), so its cost follows the run count. h is
// the table hyper-period; owned is never empty (Preload rejects tasks
// without table slots).
func (pt *preTask) nextOwned(from, h slot.Time) slot.Time {
	idx := from % h
	i := sort.Search(len(pt.owned), func(k int) bool { return pt.owned[k].Start+pt.owned[k].Length > idx })
	if i < len(pt.owned) {
		if pt.owned[i].Start <= idx {
			return from // from lies inside an owned run
		}
		return from + (pt.owned[i].Start - idx)
	}
	return from + (h - idx) + pt.owned[0].Start
}

// serverState is the run-time state of one periodic server.
type serverState struct {
	cfg      task.Server
	budget   slot.Time
	deadline slot.Time // absolute deadline of the current period
}

// delivery is a job travelling the request path toward its pool.
type delivery struct {
	at  slot.Time
	job *task.Job
}

// Manager is one device's virtualization manager. It implements
// sim.Stepper: call Step exactly once per slot.
type Manager struct {
	cfg     Config
	pools   []*Pool
	servers []*serverState
	pre     map[slot.TaskID]*preTask
	preIDs  []slot.TaskID // deterministic iteration order
	inbox   *queue.FIFO[delivery]
	stats   Stats
	vmStats []VMStats
	lastJob *task.Job
	adm     *admission

	// OnComplete, when non-nil, receives every finished job after the
	// response path: at is the slot at which the requester observes
	// completion. The job's Finish field holds the raw execution
	// completion; deadline accounting uses at.
	OnComplete func(j *task.Job, at slot.Time)
	// OnExecute, when non-nil, is called for every slot granted to a
	// job (both channels) before the slot executes. Used by tracing.
	OnExecute func(now slot.Time, j *task.Job)
}

// New builds a manager. Servers are required in ServerEDF mode and
// must reference VMs within range, at most one per VM.
func New(cfg Config) (*Manager, error) {
	if cfg.VMs <= 0 {
		return nil, errors.New("hypervisor: need at least one VM")
	}
	if cfg.Table == nil {
		cfg.Table = slot.NewTable(1)
	}
	if cfg.ReqLatency < 0 || cfg.RespLatency < 0 {
		return nil, errors.New("hypervisor: negative path latency")
	}
	m := &Manager{
		cfg:   cfg,
		pre:   make(map[slot.TaskID]*preTask),
		inbox: queue.NewFIFO[delivery](0),
	}
	m.vmStats = make([]VMStats, cfg.VMs)
	for vm := 0; vm < cfg.VMs; vm++ {
		m.pools = append(m.pools, NewPool(vm, cfg.PoolCapacity))
	}
	if cfg.Mode == ServerEDF {
		seen := make(map[int]bool)
		for _, s := range cfg.Servers {
			if err := s.Validate(); err != nil {
				return nil, err
			}
			if s.VM >= cfg.VMs {
				return nil, fmt.Errorf("hypervisor: server for vm %d out of range (%d VMs)", s.VM, cfg.VMs)
			}
			if seen[s.VM] {
				return nil, fmt.Errorf("hypervisor: duplicate server for vm %d", s.VM)
			}
			seen[s.VM] = true
			m.servers = append(m.servers, &serverState{cfg: s, budget: s.Budget, deadline: s.Period})
		}
		sort.Slice(m.servers, func(i, j int) bool { return m.servers[i].cfg.VM < m.servers[j].cfg.VM })
	}
	return m, nil
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a snapshot of the execution counters.
func (m *Manager) Stats() Stats { return m.stats }

// BankBytes estimates the P-channel memory-bank usage: the Time Slot
// Table entries plus each pre-defined task's descriptor and timing
// record (task parameters, start times, WCET — the "timing
// information" of Sec. III-A). Feeds the RAM column of the hardware
// model.
func (m *Manager) BankBytes() int {
	const (
		tableEntryBytes = 2  // task id per slot
		descriptorBytes = 32 // period, wcet, deadline, offset, device op
	)
	return m.cfg.Table.Len()*tableEntryBytes + len(m.pre)*descriptorBytes
}

// VMStats returns one VM's R-channel counters.
func (m *Manager) VMStats(vm int) (VMStats, error) {
	if vm < 0 || vm >= len(m.vmStats) {
		return VMStats{}, fmt.Errorf("hypervisor: vm %d out of range", vm)
	}
	return m.vmStats[vm], nil
}

// Pool returns the I/O pool of the given VM.
func (m *Manager) Pool(vm int) (*Pool, error) {
	if vm < 0 || vm >= len(m.pools) {
		return nil, fmt.Errorf("hypervisor: vm %d out of range", vm)
	}
	return m.pools[vm], nil
}

// Preload registers a pre-defined task with the P-channel. The task
// must already own slots in the manager's Time Slot Table under id
// (built with slot.Build); the manager releases its jobs periodically
// from offset and executes them in the owned slots.
func (m *Manager) Preload(spec *task.Sporadic, id slot.TaskID, offset slot.Time) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := m.pre[id]; dup {
		return fmt.Errorf("hypervisor: pre-defined task %d already loaded", id)
	}
	owned := m.cfg.Table.OwnedRuns(id)
	if len(owned) == 0 {
		return fmt.Errorf("hypervisor: task %d owns no slot in the table", id)
	}
	m.pre[id] = &preTask{
		spec:        spec,
		id:          id,
		offset:      offset,
		nextRelease: offset,
		pending:     queue.NewFIFO[*task.Job](0),
		owned:       owned,
	}
	m.preIDs = append(m.preIDs, id)
	sort.Slice(m.preIDs, func(i, j int) bool { return m.preIDs[i] < m.preIDs[j] })
	return nil
}

// Submit hands a run-time I/O job to the hypervisor at slot now. The
// job reaches its VM's pool after the bounded request path latency.
// Jobs for out-of-range VMs are dropped and counted.
func (m *Manager) Submit(now slot.Time, j *task.Job) {
	if j.Task.VM < 0 || j.Task.VM >= len(m.pools) {
		m.stats.Dropped++
		return
	}
	if !m.admitted(j) {
		m.stats.Dropped++
		return
	}
	m.inbox.Push(delivery{at: now + m.cfg.ReqLatency, job: j})
}

// PendingJobs visits every job currently buffered anywhere in the
// manager (pools, request path, P-channel backlog).
func (m *Manager) PendingJobs(visit func(j *task.Job)) {
	for _, p := range m.pools {
		p.Each(visit)
	}
	m.inbox.Each(func(d delivery) { visit(d.job) })
	for _, id := range m.preIDs {
		m.pre[id].pending.Each(func(j *task.Job) { visit(j) })
	}
}

// Step advances the manager one slot:
//  1. deliver due request-path jobs into their pools,
//  2. release due jobs of pre-defined tasks,
//  3. refresh the local schedulers' shadow registers,
//  4. replenish server budgets at period boundaries,
//  5. run the executor for this slot (P-channel owner or G-Sched pick).
func (m *Manager) Step(now slot.Time) {
	for {
		d, ok := m.inbox.Peek()
		if !ok || d.at > now {
			break
		}
		m.inbox.Pop()
		if m.pools[d.job.Task.VM].Admit(d.job) {
			m.vmStats[d.job.Task.VM].Admitted++
		} else {
			m.stats.Dropped++
			m.vmStats[d.job.Task.VM].Dropped++
		}
	}
	for _, id := range m.preIDs {
		pt := m.pre[id]
		if !pt.started {
			// A task loaded mid-run starts at its next table-aligned
			// release; it must not back-fill jobs from before it was
			// loaded.
			for pt.nextRelease < now {
				pt.nextRelease += pt.spec.Period
			}
			pt.started = true
		}
		for pt.nextRelease <= now {
			pt.pending.Push(task.NewJob(pt.spec, pt.seq, pt.nextRelease))
			pt.seq++
			pt.nextRelease += pt.spec.Period
		}
	}
	for _, p := range m.pools {
		p.Schedule()
	}
	for _, s := range m.servers {
		if now%s.cfg.Period == 0 {
			s.budget = s.cfg.Budget
			s.deadline = now + s.cfg.Period
		}
	}
	m.execute(now)
}

// execute grants this slot to at most one job.
func (m *Manager) execute(now slot.Time) {
	if owner := m.cfg.Table.Owner(now); owner != slot.Free {
		pt := m.pre[owner]
		if pt != nil {
			if j, ok := pt.pending.Peek(); ok {
				m.runPre(now, pt, j)
				return
			}
		}
		// Owned slot with no pending work.
		if !m.cfg.WorkConserving {
			m.stats.PSlotsIdle++
			m.lastJob = nil
			return
		}
		if m.runRChannel(now) {
			m.stats.Reclaimed++
		} else {
			m.stats.PSlotsIdle++
		}
		return
	}
	if !m.runRChannel(now) {
		m.stats.SlotsIdle++
	}
}

// runPre executes one slot of a P-channel job.
func (m *Manager) runPre(now slot.Time, pt *preTask, j *task.Job) {
	m.account(j)
	m.notifyExecute(now, j)
	j.Tick(now)
	m.stats.PSlotsUsed++
	if j.Done() {
		pt.pending.Pop()
		m.complete(j)
	}
}

// runRChannel lets the global scheduler grant the slot to one VM's
// shadow-register job. It reports whether any job ran.
func (m *Manager) runRChannel(now slot.Time) bool {
	var pick *Pool
	switch m.cfg.Mode {
	case ServerEDF:
		// Strict polling periodic server: the slot belongs to the
		// earliest-deadline server with remaining budget, and the
		// budget drains whether or not the VM has pending work. This
		// realizes exactly the periodic resource model of Sec. IV-B
		// (supply to VM i = the slots where Γi is scheduled), keeping
		// the simulation inside the analysis' guarantees. A deferring
		// or slot-stealing variant would be more work-conserving but
		// voids Theorems 1/3 in corner cases.
		var best *serverState
		for _, s := range m.servers {
			if s.budget <= 0 {
				continue
			}
			if best == nil || s.deadline < best.deadline {
				best = s
			}
		}
		if best == nil {
			return false
		}
		best.budget--
		if _, _, ok := m.pools[best.cfg.VM].Shadow(); !ok {
			return false // the granted VM is idle; its slot is wasted
		}
		pick = m.pools[best.cfg.VM]
	case DirectEDF:
		bestD := slot.Never
		for _, p := range m.pools {
			d, _, ok := p.Shadow()
			if !ok {
				continue
			}
			if d < bestD {
				bestD = d
				pick = p
			}
		}
		if pick == nil {
			return false
		}
	}
	_, j, _ := pick.Shadow()
	m.account(j)
	m.notifyExecute(now, j)
	j.Tick(now)
	m.stats.RSlotsUsed++
	m.vmStats[pick.VM()].SlotsUsed++
	if j.Done() {
		if err := pick.Remove(j); err != nil {
			panic(err) // invariant: shadow job is always pool-resident
		}
		m.vmStats[pick.VM()].Completed++
		m.complete(j)
	}
	return true
}

// NextWork implements the sim.Quiescer protocol: the earliest slot ≥
// now at which the manager must be stepped, assuming all earlier slots
// were stepped. The manager is busy (returns now) whenever a pool or a
// due delivery holds R-channel work; a pending P-channel job only
// pins its task's next owned table slot (it cannot execute anywhere
// else). The remaining candidates are the request path's head
// delivery, each pre-defined task's next release, and — in ServerEDF
// mode — the next server period boundary (replenishment mutates
// budgets and deadlines) plus, while any budget remains, the next slot
// that would drain it. The bound is conservative, never optimistic:
// fast-forwarding on it is invisible in the execution results.
func (m *Manager) NextWork(now slot.Time) slot.Time {
	if d, ok := m.inbox.Peek(); ok && d.at <= now {
		return now
	}
	for _, p := range m.pools {
		if p.Len() > 0 {
			return now
		}
	}
	next := slot.Never
	// The inbox is FIFO over monotone delivery times, so its head is
	// the earliest future delivery.
	if d, ok := m.inbox.Peek(); ok && d.at < next {
		next = d.at
	}
	h := slot.Time(m.cfg.Table.Len())
	for _, id := range m.preIDs {
		pt := m.pre[id]
		if pt.pending.Len() > 0 {
			// A pending P-channel job executes only in slots its task
			// owns; the manager next touches it at the first such slot.
			no := pt.nextOwned(now, h)
			if no <= now {
				return now
			}
			if no < next {
				next = no
			}
		}
		nr := pt.nextRelease
		if !pt.started && nr < now {
			// Mirror Step's start-up fast-forward without mutating:
			// the first release is the next period multiple ≥ now.
			nr += ((now - nr + pt.spec.Period - 1) / pt.spec.Period) * pt.spec.Period
		}
		if nr <= now {
			return now
		}
		if nr < next {
			next = nr
		}
	}
	for _, s := range m.servers {
		// Replenishment fires only in a Step at the boundary slot, so
		// boundaries may never be skipped.
		if now%s.cfg.Period == 0 {
			return now
		}
		if b := (now/s.cfg.Period + 1) * s.cfg.Period; b < next {
			next = b
		}
		if s.budget > 0 {
			// Strict polling servers drain budget on every slot the
			// R-channel could be granted, pending work or not: free
			// slots always, and reclaimed table slots when
			// work-conserving.
			if m.cfg.WorkConserving {
				return now
			}
			nf := now
			if m.cfg.Table.Len() > 0 {
				nf = m.cfg.Table.NextFree(now)
			}
			if nf <= now {
				return now
			}
			if nf < next {
				next = nf
			}
		}
	}
	return next
}

// SkipTo accounts a fast-forwarded span [from, to) in bulk. The
// engine only skips slots NextWork declared idle, so per-slot
// execution state cannot change across the span; what remains is the
// idle bookkeeping Step would have done: free slots count as
// SlotsIdle, table-owned slots as PSlotsIdle, and (non-work-conserving
// only) an owned idle slot resets the preemption tracker exactly as
// execute() does densely.
func (m *Manager) SkipTo(from, to slot.Time) {
	span := to - from
	if span <= 0 {
		return
	}
	free := span
	if m.cfg.Table.Len() > 0 {
		free = m.cfg.Table.FreeIn(from, span)
	}
	m.stats.SlotsIdle += int64(free)
	owned := span - free
	m.stats.PSlotsIdle += int64(owned)
	if owned > 0 && !m.cfg.WorkConserving {
		m.lastJob = nil
	}
}

// account tracks preemptions: a switch away from an unfinished job.
func (m *Manager) account(j *task.Job) {
	if m.lastJob != nil && m.lastJob != j && !m.lastJob.Done() {
		m.stats.Preemptions++
	}
	m.lastJob = j
}

// notifyExecute fires the tracing hook for one granted slot.
func (m *Manager) notifyExecute(now slot.Time, j *task.Job) {
	if m.OnExecute != nil {
		m.OnExecute(now, j)
	}
}

// complete retires a finished job through the response path.
func (m *Manager) complete(j *task.Job) {
	m.stats.Completed++
	m.stats.BytesServed += int64(j.Task.OpBytes)
	if m.OnComplete != nil {
		m.OnComplete(j, j.Finish+m.cfg.RespLatency)
	}
}
