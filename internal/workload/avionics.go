// ARINC-653-style avionics workload family: partitioned I/O schedules
// with long, non-harmonic partition periods. Unlike the automotive
// catalogue (1–16 ms harmonic ladder, hyper-period ≤ 16 ms) the
// avionics periods mix powers of two and five up to 250 ms, so the
// hyper-period of the full set is 4,000,000 slots (4 s) — the
// million-slot σ* regime the interval slot table exists for. Per-device
// utilization stays low (≈2–3%, sparse partition windows separated by
// long idle gaps), which is exactly the shape ARINC-653 I/O partitions
// have: the cost of the dense table was all in H, not in occupancy.

package workload

import (
	"fmt"
	"math/rand"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// AvionicsHyperperiod is the hyper-period of the avionics set:
// lcm of the partition periods = 2^8 · 5^6 · ... = 4,000,000 slots.
// Every period in the catalogue divides it, so the full set's
// hyper-period is exactly this value.
const AvionicsHyperperiod slot.Time = 4_000_000

// AvionicsEntries returns the partition I/O catalogue: periodic
// partition windows on the AFDX-style Ethernet backbone and the
// ARINC-429-style field bus (modelled on the platform's flexray
// controller). Periods are drawn from the 2^a·5^b family so their
// lcm is exactly AvionicsHyperperiod; the two lcm carriers (62500 =
// 2^2·5^6 and 32000 = 2^8·5^3) lead each device's list so they are
// preloaded first at any realistic preload fraction.
func AvionicsEntries() []Entry {
	return []Entry{
		// AFDX/Ethernet backbone: sensor and flight-management traffic.
		{"afdx-nav-frame", task.Safety, "ethernet", 62500, 250, 1024},
		{"afdx-display-push", task.Function, "ethernet", 32000, 120, 512},
		{"afdx-sensor-fusion", task.Safety, "ethernet", 25000, 100, 512},
		{"afdx-io-gateway", task.Function, "ethernet", 16000, 80, 256},
		{"afdx-fms-plan", task.Function, "ethernet", 125000, 300, 2048},
		{"afdx-health-cnt", task.Safety, "ethernet", 50000, 160, 256},
		{"afdx-radio-tune", task.Function, "ethernet", 100000, 240, 512},
		{"afdx-maint-log", task.Function, "ethernet", 200000, 260, 1024},
		// ARINC-429-style bus: label broadcasts from avionics partitions.
		{"a429-adc-labels", task.Safety, "flexray", 62500, 240, 256},
		{"a429-ahrs-att", task.Safety, "flexray", 32000, 128, 128},
		{"a429-autopilot-cmd", task.Safety, "flexray", 16000, 72, 64},
		{"a429-cabin-press", task.Safety, "flexray", 25000, 90, 64},
		{"a429-gear-status", task.Safety, "flexray", 50000, 150, 64},
		{"a429-fuel-qty", task.Function, "flexray", 125000, 280, 128},
		{"a429-ice-detect", task.Safety, "flexray", 100000, 200, 64},
		{"a429-maint-words", task.Function, "flexray", 250000, 300, 256},
	}
}

// AvionicsAlarmEntries returns the aperiodic alarm traffic: sporadic
// crew alerts and advisories released with jitter, so they are never
// eligible for the P-channel and always exercise the R-channel
// alongside the table-guaranteed partitions. Periods divide
// AvionicsHyperperiod, keeping the full set's hyper-period unchanged.
func AvionicsAlarmEntries() []Entry {
	return []Entry{
		{"alarm-stall-warn", task.Safety, "flexray", 8000, 20, 32},
		{"alarm-tcas-advisory", task.Safety, "ethernet", 10000, 24, 64},
		{"alarm-egpws", task.Safety, "flexray", 20000, 30, 64},
		{"alarm-acars-msg", task.Function, "ethernet", 40000, 60, 256},
		{"alarm-xpdr-interr", task.Function, "ethernet", 8000, 16, 32},
		{"alarm-crew-alert", task.Safety, "flexray", 40000, 48, 64},
	}
}

// AvionicsConfig parameterizes the avionics generator.
type AvionicsConfig struct {
	VMs int
	// Partitions instantiates each partition entry this many times
	// (independent partition replicas); default 1.
	Partitions int
	// Jitter bounds the alarm release jitter. Zero selects Period/16
	// per alarm; negative disables jitter (which makes the alarms
	// preload-eligible — not the intended configuration).
	Jitter slot.Time
	// Seed drives alarm jitter assignment; the set itself is
	// deterministic in the config.
	Seed int64
}

// GenerateAvionics builds the ARINC-653-style task set: partition
// windows first (zero jitter, preload-eligible in ID order), alarms
// last. Task IDs are dense from 0; VMs are assigned round-robin.
func GenerateAvionics(cfg AvionicsConfig) (task.Set, error) {
	if cfg.VMs <= 0 {
		return nil, fmt.Errorf("workload: need at least one VM")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ts task.Set
	id := 0
	add := func(e Entry, jitter slot.Time) {
		ts = append(ts, task.Sporadic{
			ID:       id,
			Name:     e.Name,
			VM:       id % cfg.VMs,
			Kind:     e.Kind,
			Period:   e.Period,
			WCET:     e.WCET,
			Deadline: e.Period, // implicit deadlines, like the case study
			Device:   e.Device,
			OpBytes:  e.OpBytes,
			Jitter:   jitter,
		})
		id++
	}
	for p := 0; p < cfg.Partitions; p++ {
		for _, e := range AvionicsEntries() {
			if p > 0 {
				e.Name = fmt.Sprintf("%s-%d", e.Name, p)
			}
			add(e, 0)
		}
	}
	jitterFor := func(p slot.Time) slot.Time {
		switch {
		case cfg.Jitter < 0:
			return 0
		case cfg.Jitter > 0:
			return cfg.Jitter
		default:
			return p / 16
		}
	}
	for _, e := range AvionicsAlarmEntries() {
		// Draw even when the value is overridden, so Seed changes the
		// assignment order deterministically like the telemetry family.
		_ = rng.Int63()
		add(e, jitterFor(e.Period))
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}
