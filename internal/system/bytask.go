// Per-task breakdowns of a trial: which tasks missed, and each task's
// response-time distribution. Used by examples and debugging; the
// headline metrics stay in metrics.TrialResult.
package system

import (
	"fmt"
	"sort"
	"strings"

	"ioguard/internal/metrics"
	"ioguard/internal/task"
)

// TaskStat summarizes one task's completions within a trial.
type TaskStat struct {
	Task      *task.Sporadic
	Completed int64
	Misses    int64
	Response  metrics.Sample
}

// ByTask folds the collector's completions into per-task statistics,
// keyed by task ID.
func (c *Collector) ByTask() map[int]*TaskStat {
	out := map[int]*TaskStat{}
	for _, d := range c.done {
		j := d.job
		st, ok := out[j.Task.ID]
		if !ok {
			st = &TaskStat{Task: j.Task}
			out[j.Task.ID] = st
		}
		st.Completed++
		st.Response.AddTime(d.at - j.Release)
		if d.at > j.Deadline {
			st.Misses++
		}
	}
	return out
}

// RenderByTask prints per-task statistics sorted by (misses desc,
// id asc) — the misbehaving tasks surface first.
func RenderByTask(stats map[int]*TaskStat) string {
	ids := make([]int, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := stats[ids[a]], stats[ids[b]]
		if sa.Misses != sb.Misses {
			return sa.Misses > sb.Misses
		}
		return ids[a] < ids[b]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %6s %10s %10s\n", "task", "done", "miss", "mean-resp", "p99-resp")
	for _, id := range ids {
		st := stats[id]
		fmt.Fprintf(&b, "%-24s %6d %6d %10.1f %10.0f\n",
			st.Task.Name, st.Completed, st.Misses, st.Response.Mean(), st.Response.Percentile(99))
	}
	return b.String()
}
