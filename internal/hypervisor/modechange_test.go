package hypervisor

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestLoadPreAtRuntime(t *testing.T) {
	m, err := New(Config{VMs: 1, Table: slot.NewTable(16), Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	var log completionLog
	m.OnComplete = log.hook()
	// Run a while with an empty system.
	for now := slot.Time(0); now < 20; now++ {
		m.Step(now)
	}
	spec := &task.Sporadic{ID: 1, Name: "hot", VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	for now := slot.Time(20); now < 100; now++ {
		m.Step(now)
	}
	// Releases resume at the next aligned point (24, 32, ...): the
	// task must not back-fill jobs from slots 0-16.
	if len(log.jobs) == 0 {
		t.Fatal("hot-loaded task never ran")
	}
	if log.jobs[0].Release < 20 {
		t.Errorf("first release %d back-filled before load time", log.jobs[0].Release)
	}
	if log.misses() != 0 {
		t.Errorf("hot-loaded task missed %d deadlines", log.misses())
	}
}

func TestLoadPreRejectsConflicts(t *testing.T) {
	tab := slot.NewTable(16)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	spec := &task.Sporadic{ID: 1, VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadPre(spec, 0, 0); err == nil {
		t.Error("duplicate id accepted")
	}
	bad := &task.Sporadic{ID: 2, VM: 0, Period: 0, WCET: 1, Deadline: 1}
	if err := m.LoadPre(bad, 1, 0); err == nil {
		t.Error("invalid spec accepted")
	}
	odd := &task.Sporadic{ID: 3, VM: 0, Period: 5, WCET: 1, Deadline: 5}
	if err := m.LoadPre(odd, 2, 0); err == nil {
		t.Error("non-dividing period accepted")
	}
	// Fill the remaining bandwidth so the next allocation fails and
	// must not leak slots.
	hog := &task.Sporadic{ID: 4, VM: 0, Period: 8, WCET: 6, Deadline: 8}
	if err := m.LoadPre(hog, 3, 0); err != nil {
		t.Fatal(err)
	}
	free := tab.FreeCount()
	full := &task.Sporadic{ID: 5, VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(full, 4, 0); err == nil {
		t.Error("infeasible load accepted")
	}
	if tab.FreeCount() != free {
		t.Errorf("failed load leaked table slots: %d → %d", free, tab.FreeCount())
	}
}

func TestUnloadPreFreesEverything(t *testing.T) {
	tab := slot.NewTable(16)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	spec := &task.Sporadic{ID: 1, VM: 0, Period: 8, WCET: 4, Deadline: 8}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	m.Step(0) // release one job
	if err := m.UnloadPre(0); err != nil {
		t.Fatal(err)
	}
	if tab.FreeCount() != 16 {
		t.Errorf("table not fully freed: %d", tab.FreeCount())
	}
	n := 0
	m.PendingJobs(func(*task.Job) { n++ })
	if n != 0 {
		t.Errorf("pending jobs leaked: %d", n)
	}
	if err := m.UnloadPre(0); err == nil {
		t.Error("double unload accepted")
	}
	// The freed slots are immediately available to the R-channel.
	rt := &task.Sporadic{ID: 9, VM: 0, Period: 100, WCET: 4, Deadline: 100}
	var log completionLog
	m.OnComplete = log.hook()
	m.Submit(1, task.NewJob(rt, 0, 1))
	for now := slot.Time(1); now < 10; now++ {
		m.Step(now)
	}
	if len(log.jobs) != 1 {
		t.Error("R-channel did not reclaim the freed slots")
	}
}

func TestModeChangeCycle(t *testing.T) {
	// Load/unload repeatedly; table must return to fully free.
	tab := slot.NewTable(32)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	for cycle := 0; cycle < 10; cycle++ {
		spec := &task.Sporadic{ID: cycle, VM: 0, Period: 16, WCET: 3, Deadline: 16}
		if err := m.LoadPre(spec, slot.TaskID(cycle), slot.Time(cycle)%16); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := m.UnloadPre(slot.TaskID(cycle)); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if tab.FreeCount() != 32 {
		t.Errorf("table leaked slots across mode changes: free=%d", tab.FreeCount())
	}
}
