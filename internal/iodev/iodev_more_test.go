package iodev

import (
	"testing"

	"ioguard/internal/slot"
)

// TestServiceSlotsExactValues pins the timing model: at 1 µs slots,
// service time = setup + ceil((payload·8 + overhead) / rate · 1e6 µs).
func TestServiceSlotsExactValues(t *testing.T) {
	cases := []struct {
		m     Model
		bytes int
		want  slot.Time
	}{
		// SPI: 50 Mbps, 16 overhead bits, 2 setup slots.
		// 64 B → 528 bits → 10.56 µs → ceil 11 + 2 = 13.
		{SPI, 64, 13},
		// Ethernet: 1 Gbps, 304 overhead bits, 1 setup.
		// 0 B → 304 bits → 0.304 µs → ceil 1 + 1 = 2.
		{Ethernet, 0, 2},
		// FlexRay: 10 Mbps, 80 overhead bits, 2 setup.
		// 100 B → 880 bits → 88 µs → 88 + 2 = 90.
		{FlexRay, 100, 90},
		// CAN: 1 Mbps, 47 overhead bits, 2 setup.
		// 8 B → 111 bits → 111 µs → 111 + 2 = 113.
		{CAN, 8, 113},
	}
	for _, c := range cases {
		if got := c.m.ServiceSlots(c.bytes); got != c.want {
			t.Errorf("%s(%dB) = %d slots, want %d", c.m.Name, c.bytes, got, c.want)
		}
	}
}

func TestDeviceSequentialOps(t *testing.T) {
	d := NewDevice(CAN)
	var now slot.Time
	for i := 0; i < 5; i++ {
		done, err := d.Start(now, 8)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if d.OpsServed() != 5 || d.BytesServed() != 40 {
		t.Errorf("counters = %d ops / %d bytes", d.OpsServed(), d.BytesServed())
	}
	if now != 5*CAN.ServiceSlots(8) {
		t.Errorf("back-to-back ops took %d slots, want %d", now, 5*CAN.ServiceSlots(8))
	}
}

func TestSlotsPerSecConstant(t *testing.T) {
	if SlotsPerSec != 1_000_000 {
		t.Errorf("SlotsPerSec = %d; the model is calibrated for 1 µs slots", SlotsPerSec)
	}
	if ClockHz/CyclesPerSlot != SlotsPerSec {
		t.Error("clock constants inconsistent")
	}
}
