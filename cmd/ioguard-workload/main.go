// Command ioguard-workload generates, describes and exports the
// automotive case-study workloads of Sec. V-C (20 Renesas-style
// safety tasks + 20 EEMBC AutoBench-style function tasks + synthetic
// load to a target utilization).
//
// Usage:
//
//	ioguard-workload -vms 8 -util 0.85                  # describe
//	ioguard-workload -vms 8 -util 0.85 -o workload.json # export
//	ioguard-workload -catalogue                         # print the benchmark catalogues
package main

import (
	"flag"
	"fmt"
	"os"

	"ioguard/internal/slot"
	"ioguard/internal/workload"
)

func main() {
	var (
		vms       = flag.Int("vms", 4, "number of VMs")
		util      = flag.Float64("util", 0.7, "target device utilization")
		seed      = flag.Int64("seed", 1, "random seed")
		jitter    = flag.Int64("jitter", 0, "release jitter for synthetic tasks (slots)")
		out       = flag.String("o", "", "write the task set as JSON to this file")
		catalogue = flag.Bool("catalogue", false, "print the safety/function benchmark catalogues and exit")
	)
	flag.Parse()
	if err := run(*vms, *util, *seed, *jitter, *out, *catalogue); err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-workload:", err)
		os.Exit(1)
	}
}

func run(vms int, util float64, seed, jitter int64, out string, catalogue bool) error {
	if catalogue {
		printCatalogue("automotive safety tasks (Renesas use-case set)", workload.SafetyEntries())
		fmt.Println()
		printCatalogue("automotive function tasks (EEMBC AutoBench)", workload.FunctionEntries())
		return nil
	}
	ts, err := workload.Generate(workload.Config{
		VMs:             vms,
		TargetUtil:      util,
		Seed:            seed,
		SyntheticJitter: slot.Time(jitter),
	})
	if err != nil {
		return err
	}
	fmt.Print(workload.Describe(ts))
	if out == "" {
		return nil
	}
	data, err := workload.MarshalSet(ts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d tasks to %s\n", len(ts), out)
	return nil
}

func printCatalogue(title string, entries []workload.Entry) {
	fmt.Println(title)
	fmt.Printf("%-18s %-10s %8s %6s %8s %8s\n", "benchmark", "device", "period", "wcet", "bytes", "util")
	for _, e := range entries {
		fmt.Printf("%-18s %-10s %8d %6d %8d %8.4f\n",
			e.Name, e.Device, e.Period, e.WCET, e.OpBytes, e.Utilization())
	}
}
