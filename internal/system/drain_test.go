package system

import "testing"

// TestDrainPolicyBounds pins newDrainPolicy's clamping: zero values
// select the built-ins, explicit bounds clamp the historical seed, and
// an inverted pair collapses to the lower bound.
func TestDrainPolicyBounds(t *testing.T) {
	p := newDrainPolicy(0, 0)
	if p.min != drainChunkMin || p.max != drainChunkMax || p.chunk != drainChunkStart {
		t.Errorf("built-in policy = %+v, want [%d, %d] seeded at %d", p, drainChunkMin, drainChunkMax, drainChunkStart)
	}
	if p = newDrainPolicy(2048, 4096); p.chunk != 2048 {
		t.Errorf("seed below min not raised: %+v", p)
	}
	if p = newDrainPolicy(16, 256); p.chunk != 256 {
		t.Errorf("seed above max not lowered: %+v", p)
	}
	if p = newDrainPolicy(512, 64); p.min != 512 || p.max != 512 || p.chunk != 512 {
		t.Errorf("inverted pair not collapsed: %+v", p)
	}
	// One-sided bounds keep the other side's built-in.
	if p = newDrainPolicy(128, 0); p.min != 128 || p.max != drainChunkMax {
		t.Errorf("one-sided min = %+v", p)
	}
	if p = newDrainPolicy(0, 512); p.min != drainChunkMin || p.max != 512 {
		t.Errorf("one-sided max = %+v", p)
	}
}

// TestDrainPolicyAIMD pins the controller's trajectory: exhaustion
// doubles up to max, a cheap search (≤ a quarter of the budget) decays
// a quarter down to min, and a search that used real budget holds.
func TestDrainPolicyAIMD(t *testing.T) {
	p := newDrainPolicy(64, 4096)
	for _, want := range []int{2048, 4096, 4096} {
		p.grow()
		if p.chunk != want {
			t.Fatalf("grow → %d, want %d", p.chunk, want)
		}
	}
	p.settle(p.chunk) // used the whole budget: no decay
	if p.chunk != 4096 {
		t.Fatalf("full-budget settle moved the chunk to %d", p.chunk)
	}
	p.settle(p.chunk / 4) // exactly a quarter still counts as cheap
	if p.chunk != 3072 {
		t.Fatalf("quarter-budget settle → %d, want 3072", p.chunk)
	}
	for i := 0; i < 64; i++ {
		p.settle(0)
	}
	if p.chunk != 64 {
		t.Fatalf("repeated decay landed at %d, want the floor 64", p.chunk)
	}
	p.settle(0)
	if p.chunk != 64 {
		t.Fatalf("decay broke the floor: %d", p.chunk)
	}
}

// TestRunRejectsBadDrainBounds: negative or inverted Trial drain
// bounds are configuration errors, caught before any work runs.
func TestRunRejectsBadDrainBounds(t *testing.T) {
	base := Trial{VMs: 2, Tasks: workload(), Horizon: 10}
	for _, tc := range []struct {
		name     string
		min, max int
		ok       bool
	}{
		{"negative-min", -1, 0, false},
		{"negative-max", 0, -2, false},
		{"inverted", 512, 64, false},
		{"valid-pair", 64, 512, true},
		{"one-sided-min", 512, 0, true},
		{"one-sided-max", 0, 512, true},
	} {
		tr := base
		tr.DrainMin, tr.DrainMax = tc.min, tc.max
		_, err := Run(builder(1), tr)
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
