package sim

import (
	"sync"

	"ioguard/internal/slot"
)

// Clocked is a component that owns a local virtual clock inside a
// ShardSet: it is stepped like a Stepper and must answer NextWork
// against its own clock (the Quiescer contract, evaluated per
// component rather than globally).
type Clocked interface {
	Stepper
	Quiescer
}

// FeedFunc delivers a shard's external inputs for slot now. The
// scheduler calls it immediately before stepping the shard at now, so
// the shard sees exactly the inputs a dense run would have submitted
// at that slot.
type FeedFunc func(shard int, now slot.Time)

// HorizonFunc bounds how far a shard may run ahead: it returns the
// earliest slot ≥ the shard's current clock at which an upstream peer
// could still hand the shard work, or limit when nothing can arrive
// before limit. Returning a conservative (too early) slot is always
// safe — the shard just wakes, finds nothing, and asks again.
type HorizonFunc func(shard int, limit slot.Time) slot.Time

// ShardStats accounts one shard's progress through a ShardSet run.
type ShardStats struct {
	Stepped int64     // slots executed
	Skipped slot.Time // slots fast-forwarded
}

// shard is one registered component plus its virtual clock.
type shard struct {
	c     Clocked
	sk    Skipper // nil: nothing to account over skipped spans
	clock slot.Time
	stats ShardStats
}

// ShardSet runs a group of independently-clocked components. Instead
// of one global min over every component's NextWork (which lets a
// single busy component force dense stepping of all the others), each
// shard advances through its own busy and idle regions; the set keeps
// a small binary heap of (clock, shard) entries and always executes
// the laggard. Determinism is preserved by construction:
//
//   - the minimum-clock shard runs first, so when a shard executes
//     slot t every peer is already at ≥ t and all cross-shard inputs
//     for t exist (the FeedFunc hands them over before the step);
//   - a shard may only jump over [t, next) when its own NextWork and
//     the HorizonFunc prove no work and no input can appear in the
//     span — exactly the global fast-forward rule, applied per shard;
//   - skipped spans are reported to the shard's Skipper, so per-slot
//     accounting is identical to dense stepping.
//
// A dense run and a ShardSet run of the same components are therefore
// bit-identical per component; only the interleaving of *independent*
// components differs, which callers that merge cross-shard output
// must undo by ordering on (slot, shard) — see system.Collector.
type ShardSet struct {
	shards []shard
	heap   []int32   // shard indices ordered by (clock, index)
	groups [][]int32 // per-worker heaps, cached across RunParallel calls
}

// NewShardSet returns an empty shard scheduler.
func NewShardSet() *ShardSet {
	return &ShardSet{}
}

// Add registers a component as one shard with its clock at 0 and
// returns its shard index. The component's Skipper implementation, if
// any, is captured here.
func (s *ShardSet) Add(c Clocked) int {
	sh := shard{c: c}
	if sk, ok := c.(Skipper); ok {
		sh.sk = sk
	}
	s.shards = append(s.shards, sh)
	return len(s.shards) - 1
}

// Len returns the number of registered shards.
func (s *ShardSet) Len() int { return len(s.shards) }

// Stats returns shard i's progress accounting.
func (s *ShardSet) Stats(i int) ShardStats { return s.shards[i].stats }

// Clock returns shard i's local virtual clock.
func (s *ShardSet) Clock(i int) slot.Time { return s.shards[i].clock }

// before orders the scheduler heap by (clock, shard index): the
// laggard shard first, ties in registration order so equal-clock
// shards step in the same order a dense loop would.
func (s *ShardSet) before(a, b int32) bool {
	ca, cb := s.shards[a].clock, s.shards[b].clock
	if ca != cb {
		return ca < cb
	}
	return a < b
}

// push and pop operate on an explicit heap slice so the same ordering
// machinery serves both the global laggard heap (Run) and the
// per-group heaps of RunParallel. Concurrent use is safe as long as
// each heap only holds shard indices no other goroutine advances:
// before() then reads only clocks owned by the calling goroutine.
func (s *ShardSet) push(h []int32, i int32) []int32 {
	h = append(h, i)
	k := len(h) - 1
	for k > 0 {
		p := (k - 1) / 2
		if !s.before(h[k], h[p]) {
			break
		}
		h[k], h[p] = h[p], h[k]
		k = p
	}
	return h
}

func (s *ShardSet) pop(h []int32) ([]int32, int32) {
	n := len(h) - 1
	root := h[0]
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.before(h[l], h[m]) {
			m = l
		}
		if r < n && s.before(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h, root
}

// runHeap drains one laggard heap to until: each pop executes exactly
// one slot of the heap's minimum-clock shard — feed first, then Step —
// and then fast-forwards the shard as far as its NextWork and the
// horizon allow. Returns the emptied slice so callers can reuse its
// capacity.
func (s *ShardSet) runHeap(h []int32, until slot.Time, feed FeedFunc, horizon HorizonFunc) []int32 {
	for len(h) > 0 {
		var idx int32
		h, idx = s.pop(h)
		sh := &s.shards[idx]
		now := sh.clock
		if feed != nil {
			feed(int(idx), now)
		}
		sh.c.Step(now)
		sh.stats.Stepped++
		now++
		if now >= until {
			sh.clock = until
			continue
		}
		// Fast-forward: the shard itself proves no internal work, the
		// horizon proves no external input can arrive in the span.
		next := until
		if nw := sh.c.NextWork(now); nw < next {
			next = nw
		}
		if horizon != nil {
			if hz := horizon(int(idx), next); hz < next {
				next = hz
			}
		}
		if next > now {
			if sh.sk != nil {
				sh.sk.SkipTo(now, next)
			}
			sh.stats.Skipped += next - now
			sh.clock = next
		} else {
			sh.clock = now
		}
		if sh.clock < until {
			h = s.push(h, idx)
		}
	}
	return h
}

// Run advances every shard's clock to until (exclusive of slot until
// itself), executing the laggard-first (clock, shard) lexicographic
// schedule on the calling goroutine. feed and horizon may be nil for
// closed shards with no external inputs.
func (s *ShardSet) Run(until slot.Time, feed FeedFunc, horizon HorizonFunc) {
	h := s.heap[:0]
	for i := range s.shards {
		if s.shards[i].clock < until {
			h = s.push(h, int32(i))
		}
	}
	s.heap = s.runHeap(h, until, feed, horizon)
}

// RunParallel advances every shard's clock to until across `workers`
// OS threads: shards are partitioned round-robin into worker groups,
// and each group runs the laggard-first schedule over its own members
// on a private goroutine. The return is the epoch barrier — it does
// not happen until every shard's clock has reached until.
//
// Because groups advance concurrently, the (clock, shard) order that
// Run establishes holds only *within* a group here; callers that need
// the sequential interleaving must buffer cross-shard output per shard
// and merge it in (slot, shard) order at the barrier (see
// system.runShardedParallel). For the same reason feed and horizon
// must be shard-confined: they are invoked concurrently from different
// goroutines, each with the shard indices of one group only, so they
// may touch per-shard state freely but nothing shared. The sequential
// closures used with Run (which lazily drain a shared release engine)
// are NOT safe here — drain shared sources before the epoch instead.
//
// workers < 2 (or fewer than two shards) degrades to Run on the
// calling goroutine, preserving its exact schedule.
func (s *ShardSet) RunParallel(until slot.Time, feed FeedFunc, horizon HorizonFunc, workers int) {
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers < 2 {
		s.Run(until, feed, horizon)
		return
	}
	for len(s.groups) < workers {
		s.groups = append(s.groups, nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		h := s.groups[g][:0]
		for i := g; i < len(s.shards); i += workers {
			if s.shards[i].clock < until {
				h = s.push(h, int32(i))
			}
		}
		wg.Add(1)
		go func(g int, h []int32) {
			defer wg.Done()
			s.groups[g] = s.runHeap(h, until, feed, horizon)
		}(g, h)
	}
	wg.Wait()
}
