package noc

import (
	"testing"

	"ioguard/internal/slot"
)

// TestNextWorkTracksInFlight: the O(1) in-flight counter backing
// NextWork must match the O(routers) Pending scan at every slot
// boundary, and NextWork must pin the engine exactly while packets are
// inside the mesh.
func TestNextWorkTracksInFlight(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NextWork(0); got != slot.Never {
		t.Fatalf("empty mesh NextWork = %d, want Never", got)
	}
	if m.InFlight() != 0 || m.Pending() != 0 {
		t.Fatalf("empty mesh InFlight=%d Pending=%d", m.InFlight(), m.Pending())
	}
	pkt := mkPkt(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{4, 4}), 32)
	if !m.Inject(0, pkt) {
		t.Fatal("injection refused")
	}
	if m.InFlight() == 0 {
		t.Fatal("InFlight = 0 after injection")
	}
	sawBusy := false
	for now := slot.Time(0); now < 200 && m.InFlight() > 0; now++ {
		if got := m.NextWork(now); got != now {
			t.Fatalf("busy mesh NextWork(%d) = %d, want %d", now, got, now)
		}
		if m.InFlight() != m.Pending() {
			t.Fatalf("slot %d: InFlight=%d but Pending=%d", now, m.InFlight(), m.Pending())
		}
		sawBusy = true
		m.Step(now)
	}
	if !sawBusy {
		t.Fatal("mesh never reported busy slots")
	}
	if m.InFlight() != 0 || m.Pending() != 0 {
		t.Fatalf("after delivery InFlight=%d Pending=%d, want 0", m.InFlight(), m.Pending())
	}
	if got := m.NextWork(200); got != slot.Never {
		t.Errorf("drained mesh NextWork = %d, want Never", got)
	}
	if m.Stats().Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", m.Stats().Delivered)
	}
}
