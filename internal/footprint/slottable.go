// Slot-table footprint comparison: Fig. 6 counts static software
// segments, but once the hyper-period reaches millions of slots the
// Time Slot Table becomes the dominant *run-time* data structure of
// the P-channel. This file quantifies what the run-length σ*
// representation saves over the dense per-slot array on a given
// requirement set — the memory half of the BENCH_sim.json slot-table
// pairings.
package footprint

import (
	"fmt"
	"sort"

	"ioguard/internal/slot"
)

// SlotTableRow compares the two σ* encodings for one device's table:
// both are built from the same requirements and measured query-ready
// (free-prefix index included, since the manager always builds it).
type SlotTableRow struct {
	Device        string  `json:"device"`
	HyperPeriod   int     `json:"hyper_period_slots"`
	Runs          int     `json:"runs"`
	DenseBytes    int     `json:"dense_bytes"`
	IntervalBytes int     `json:"interval_bytes"`
	Reduction     float64 `json:"reduction"`
}

// SlotTableRows builds each device's table in both encodings and
// measures the resident footprints, in device-name order.
func SlotTableRows(reqs map[string][]slot.Requirement) ([]SlotTableRow, error) {
	devices := make([]string, 0, len(reqs))
	for dev := range reqs {
		devices = append(devices, dev)
	}
	sort.Strings(devices)
	rows := make([]SlotTableRow, 0, len(devices))
	for _, dev := range devices {
		iv, _, err := slot.Build(reqs[dev])
		if err != nil {
			return nil, fmt.Errorf("footprint: interval table for %s: %w", dev, err)
		}
		dn, _, err := slot.BuildDense(reqs[dev])
		if err != nil {
			return nil, fmt.Errorf("footprint: dense table for %s: %w", dev, err)
		}
		row := SlotTableRow{
			Device:        dev,
			HyperPeriod:   iv.Len(),
			Runs:          iv.RunCount(),
			DenseBytes:    dn.MemoryFootprint(),
			IntervalBytes: iv.MemoryFootprint(),
		}
		if row.IntervalBytes > 0 {
			row.Reduction = float64(row.DenseBytes) / float64(row.IntervalBytes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
