// Region view of the mesh: the router grid partitioned into
// contiguous row bands, each advancing on its own virtual clock.
//
// The monolithic Mesh steps all Width×Height routers under one clock,
// so one busy row pins every idle row to dense stepping — which is why
// the Legacy/RT-Xen baselines could not join the per-shard
// fast-forward. A Region owns one row band and exchanges cross-band
// traffic through boundary mailboxes; the conservative-lookahead
// discipline that makes decoupled clocks sound is the boundary-flit
// horizon each region publishes:
//
//	obHz(A→B) = the earliest slot at which a flit from A could still
//	            arrive across the A/B cut.
//
// B may fast-forward to obHz(A→B)+1 and no further (a region never
// skips past a flit that could still arrive from across the cut), and
// B's step of slot t first waits until obHz(A→B) ≥ t, at which point
// every crossing with arrival < t is already deposited in the mailbox
// (the publishing store is sequenced after the deposits, so the atomic
// read ordering carries them over). Horizons are published monotone
// non-decreasing, which is what makes stale reads safe: a stale value
// is merely more conservative.
//
// Determinism is exact, not statistical: a region applies the
// arrivals of slot t-1 — its own deferred hops plus both mailboxes —
// at the start of slot t in ascending (source router, source port)
// order, which is precisely the phase-2 order the monolithic
// Mesh.Step pushes them in, so queue contents (and therefore FIFO
// arbitration, delivery order and every statistic) are identical to a
// single-clock run slot for slot.
package noc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

// satAdd adds two non-negative slot times, saturating at slot.Never.
func satAdd(a, b slot.Time) slot.Time {
	if a >= slot.Never-b {
		return slot.Never
	}
	return a + b
}

// regionStats mirrors Stats with atomic fields so a snapshot may be
// taken while the owning region steps on another goroutine. Only the
// owner writes (plain read-modify-write on its own goroutine), so
// loads need no CAS loops.
type regionStats struct {
	injected   atomic.Int64
	delivered  atomic.Int64
	dropped    atomic.Int64
	forwarded  atomic.Int64
	maxQueued  atomic.Int64
	totalDelay atomic.Int64
	maxDelay   atomic.Int64
}

// snapshot returns the counters as a Stats value.
func (s *regionStats) snapshot() Stats {
	return Stats{
		Injected:   s.injected.Load(),
		Delivered:  s.delivered.Load(),
		Dropped:    s.dropped.Load(),
		Forwarded:  s.forwarded.Load(),
		MaxQueued:  int(s.maxQueued.Load()),
		TotalDelay: slot.Time(s.totalDelay.Load()),
		MaxDelay:   slot.Time(s.maxDelay.Load()),
	}
}

// crossing is one completed hop awaiting application at its
// destination router: the flit, where it lands, and when.
type crossing struct {
	fl      *flight
	dst     int  // destination router, global index
	port    Port // output port at dst (routed toward fl's destination)
	arrival slot.Time
}

// mailbox carries crossings over one boundary, in one direction. A
// single region deposits (in its phase-2 scan order, so entries are
// (arrival, source router, source port)-sorted by construction) and a
// single region drains; `earliest` mirrors the head arrival for
// lock-free horizon queries.
type mailbox struct {
	mu       sync.Mutex
	entries  []crossing
	head     int
	earliest atomic.Int64
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.earliest.Store(int64(slot.Never))
	return b
}

// deposit appends one crossing.
func (b *mailbox) deposit(c crossing) {
	b.mu.Lock()
	b.entries = append(b.entries, c)
	if b.head == len(b.entries)-1 {
		b.earliest.Store(int64(c.arrival))
	}
	b.mu.Unlock()
}

// drain applies every crossing with arrival < now, in deposit order.
func (b *mailbox) drain(now slot.Time, apply func(crossing)) {
	b.mu.Lock()
	for b.head < len(b.entries) && b.entries[b.head].arrival < now {
		c := b.entries[b.head]
		b.entries[b.head] = crossing{}
		b.head++
		apply(c)
	}
	if b.head == len(b.entries) {
		b.entries = b.entries[:0]
		b.head = 0
		b.earliest.Store(int64(slot.Never))
	} else {
		b.earliest.Store(int64(b.entries[b.head].arrival))
	}
	b.mu.Unlock()
}

// earliestArrival returns the head crossing's arrival slot, or
// slot.Never when the mailbox is empty.
func (b *mailbox) earliestArrival() slot.Time {
	return slot.Time(b.earliest.Load())
}

// Region is one row band of the mesh, independently clocked. Use
// Regions to build a partition; drive each region per executed slot as
//
//	Apply(now) → (local injections for now) → Advance(now) →
//	Publish(now+1, nextEmit)
//
// and on a fast-forward as SkipTo(from, to) followed by
// Publish(to, nextEmit). nextEmit is the caller's bound on its own
// earliest future injection (slot.Never when it can prove none);
// it feeds the outbound horizon so neighbors may skip idle spans.
type Region struct {
	cfg         Config
	first, last int // global router index range, inclusive
	routers     []*router
	// masks holds one active-port bitmask per router (bit p set iff
	// out[p] has a current flight or a waiting packet), so stepping
	// costs O(traffic in the band) instead of O(routers×ports).
	masks   []uint8
	minLink slot.Time // lower bound on any packet's link occupancy

	inflight int        // packets owned by this band (queued or on a link)
	deferred []crossing // own-band hops of the last executed slot
	scratch  []crossing // phase-1 completion buffer, reused

	stats regionStats

	prev, next         *Region  // adjacent bands (nil at the mesh edge)
	fromPrev, fromNext *mailbox // inbound boundary traffic
	obToPrev, obToNext atomic.Int64

	// OnDeliver receives packets ejected at this band's tiles. It may
	// be nil. It is invoked from the region owner's goroutine only.
	OnDeliver func(p *packet.Packet, injected, now slot.Time)

	// Loopback declares that packets delivered at this band's tiles can
	// cause a re-emission toward the side they arrived from (the device
	// row consumes requests and its stations emit responses back). It
	// voids the XY-monotonicity assumption that only opposite-side
	// traffic feeds a boundary, so the outbound horizon must also be
	// bounded by same-side inbound traffic. Set before the first step.
	Loopback bool
}

// Regions partitions a mesh configuration into contiguous row bands:
// rows[i] is band i's height. Band i is chained to bands i-1 and i+1
// through fresh mailboxes. The bands jointly simulate exactly the mesh
// New(cfg) would, slot for slot.
func Regions(cfg Config, rows []int) ([]*Region, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, h := range rows {
		if h <= 0 {
			return nil, fmt.Errorf("noc: region band of %d rows", h)
		}
		total += h
	}
	if total != cfg.Height {
		return nil, fmt.Errorf("noc: region bands cover %d rows, mesh has %d", total, cfg.Height)
	}
	minFlits := packet.New(packet.Header{}, nil).Flits(cfg.FlitBytes)
	minLink := slot.Time(minFlits) + cfg.HopLatency
	var out []*Region
	rowLo := 0
	for _, h := range rows {
		r := &Region{
			cfg:     cfg,
			first:   rowLo * cfg.Width,
			last:    (rowLo+h)*cfg.Width - 1,
			minLink: minLink,
		}
		for ri := r.first; ri <= r.last; ri++ {
			rt := &router{at: coordAt(cfg, ri)}
			for p := range rt.out {
				rt.out[p] = &outPort{waiting: newPktQueue(cfg)}
			}
			r.routers = append(r.routers, rt)
		}
		r.masks = make([]uint8, len(r.routers))
		out = append(out, r)
		rowLo += h
	}
	for i, r := range out {
		if i > 0 {
			r.prev = out[i-1]
			r.fromPrev = newMailbox()
		}
		if i < len(out)-1 {
			r.next = out[i+1]
			r.fromNext = newMailbox()
		}
	}
	return out, nil
}

// Stats returns a snapshot of this band's delivery statistics. Safe to
// call from any goroutine while the region runs.
func (r *Region) Stats() Stats { return r.stats.snapshot() }

// InFlight returns the number of packets currently owned by this band
// (excluding crossings parked in boundary mailboxes).
func (r *Region) InFlight() int { return r.inflight }

// Owns reports whether the band contains the given tile.
func (r *Region) Owns(id packet.NodeID) bool {
	return int(id) >= r.first && int(id) <= r.last
}

// noteDepth tracks the deepest per-port backlog seen.
func (r *Region) noteDepth(op *outPort) {
	if d := int64(op.waiting.len()); d > r.stats.maxQueued.Load() {
		r.stats.maxQueued.Store(d)
	}
}

// Inject submits a packet at its source tile (which must lie in this
// band) at time now, exactly as Mesh.Inject would.
func (r *Region) Inject(now slot.Time, pkt *packet.Packet) bool {
	if int(pkt.Dst) < 0 || int(pkt.Dst) >= r.cfg.Width*r.cfg.Height || !r.Owns(pkt.Src) {
		r.stats.dropped.Add(1)
		return false
	}
	li := int(pkt.Src) - r.first
	rt := r.routers[li]
	port := routeXY(rt.at, coordAt(r.cfg, int(pkt.Dst)))
	fl := &flight{pkt: pkt, injected: now}
	if !rt.out[port].waiting.push(fl) {
		r.stats.dropped.Add(1)
		return false
	}
	r.noteDepth(rt.out[port])
	r.masks[li] |= 1 << port
	r.stats.injected.Add(1)
	r.inflight++
	return true
}

// applyOne pushes a completed hop into its destination port — the
// phase-2 enqueue of the monolithic Step, replayed at the receiver.
func (r *Region) applyOne(c crossing) {
	li := c.dst - r.first
	op := r.routers[li].out[c.port]
	if !op.waiting.push(c.fl) {
		r.stats.dropped.Add(1) // bounded buffer overflow mid-route
		return
	}
	r.noteDepth(op)
	r.masks[li] |= 1 << c.port
	r.inflight++
}

// Apply begins slot now: it blocks until both neighbors' published
// horizons reach now (so every crossing of slot now-1 is deposited),
// then pushes the arrivals of slot now-1 in the monolithic phase-2
// order — upper neighbor's crossings first (smaller source routers),
// then this band's own deferred hops, then the lower neighbor's.
func (r *Region) Apply(now slot.Time) {
	for {
		if r.prev != nil && slot.Time(r.prev.obToNext.Load()) < now {
			runtime.Gosched()
			continue
		}
		if r.next != nil && slot.Time(r.next.obToPrev.Load()) < now {
			runtime.Gosched()
			continue
		}
		break
	}
	if r.fromPrev != nil {
		r.fromPrev.drain(now, r.applyOne)
	}
	for _, c := range r.deferred {
		r.applyOne(c)
	}
	r.deferred = r.deferred[:0]
	if r.fromNext != nil {
		r.fromNext.drain(now, r.applyOne)
	}
}

// Advance runs the two-phase router step over this band's routers:
// links serialize, completed hops eject locally, defer within the
// band, or cross a boundary into the neighbor's mailbox.
func (r *Region) Advance(now slot.Time) {
	hops := r.scratch[:0]
	for li, rt := range r.routers {
		m := r.masks[li]
		if m == 0 {
			continue
		}
		for p := Port(0); p < numPorts; p++ {
			if m&(1<<p) == 0 {
				continue
			}
			op := rt.out[p]
			if op.current == nil {
				fl, ok := op.waiting.pop()
				if !ok {
					r.masks[li] &^= 1 << p
					continue
				}
				fl.left = linkSlotsFor(r.cfg, fl.pkt)
				op.current = fl
			}
			op.current.left--
			if op.current.left > 0 {
				continue
			}
			fl := op.current
			op.current = nil
			if op.waiting.len() == 0 {
				r.masks[li] &^= 1 << p
			}
			hops = append(hops, crossing{fl: fl, dst: r.first + li, port: p, arrival: now})
		}
	}
	r.scratch = hops[:0]
	for _, h := range hops {
		r.stats.forwarded.Add(1)
		if h.port == Local {
			r.deliver(h.fl, now)
			continue
		}
		ni := neighborIdx(r.cfg, h.dst, h.port)
		np := routeXY(coordAt(r.cfg, ni), coordAt(r.cfg, int(h.fl.pkt.Dst)))
		c := crossing{fl: h.fl, dst: ni, port: np, arrival: now}
		// The flit leaves the counted state until applyOne re-admits it
		// (possibly in the neighbor band); deferred/mailbox occupancy is
		// tracked separately by NextWork and outHorizon.
		r.inflight--
		switch {
		case ni >= r.first && ni <= r.last:
			r.deferred = append(r.deferred, c)
		case ni < r.first:
			r.prev.fromNext.deposit(c)
		default:
			r.next.fromPrev.deposit(c)
		}
	}
}

func (r *Region) deliver(fl *flight, now slot.Time) {
	r.inflight--
	r.stats.delivered.Add(1)
	d := now + 1 - fl.injected
	r.stats.totalDelay.Add(int64(d))
	if int64(d) > r.stats.maxDelay.Load() {
		r.stats.maxDelay.Store(int64(d))
	}
	if r.OnDeliver != nil {
		r.OnDeliver(fl.pkt, fl.injected, now)
	}
}

// outHorizon computes the earliest slot at which a flit from this band
// could still arrive across the boundary toward prev (toPrev) or next,
// assuming the band has finished every slot < pub and will inject
// nothing before nextEmit. Every candidate is a lower bound on a real
// crossing's completion slot, so the minimum is sound; each candidate
// is also non-decreasing in pub, which keeps published horizons
// monotone.
func (r *Region) outHorizon(toPrev bool, pub, nextEmit slot.Time) slot.Time {
	h := slot.Never
	min := func(at slot.Time) {
		if at < h {
			h = at
		}
	}
	// Boundary ports: a flit already serializing crosses exactly when
	// its countdown ends; a queued one needs at least a full link time.
	lo, bp := len(r.routers)-r.cfg.Width, South
	if toPrev {
		lo, bp = 0, North
	}
	for li := lo; li < lo+r.cfg.Width; li++ {
		op := r.routers[li].out[bp]
		if op.current != nil {
			min(pub + op.current.left - 1)
		} else if op.waiting.len() > 0 {
			min(pub + r.minLink - 1)
		}
	}
	// Anything else inside the band — inner links, inner queues, or an
	// arrival awaiting application — needs at least one boundary-link
	// serialization from now.
	if r.inflight > 0 || len(r.deferred) > 0 {
		min(pub + r.minLink - 1)
	}
	// Inbound traffic can flow through: a crossing arriving at slot a
	// is applied at a+1 and needs a link time to cross onward. XY
	// routing is monotone per dimension, so only the opposite side
	// feeds this boundary.
	if toPrev {
		if r.fromNext != nil {
			if e := r.fromNext.earliestArrival(); e < slot.Never {
				min(satAdd(e, r.minLink))
			}
		}
		if r.next != nil {
			min(satAdd(slot.Time(r.next.obToPrev.Load()), r.minLink))
		}
	} else {
		if r.fromPrev != nil {
			if e := r.fromPrev.earliestArrival(); e < slot.Never {
				min(satAdd(e, r.minLink))
			}
		}
		if r.prev != nil {
			min(satAdd(slot.Time(r.prev.obToNext.Load()), r.minLink))
		}
	}
	// A loopback band can answer inbound traffic with a re-emission
	// toward the side it came from: an arrival at slot a ejects, is
	// consumed, and its reply still needs at least a full link back —
	// a+minLink is a generous lower bound on the reply's crossing.
	if r.Loopback {
		if toPrev {
			if r.fromPrev != nil {
				if e := r.fromPrev.earliestArrival(); e < slot.Never {
					min(satAdd(e, r.minLink))
				}
			}
			if r.prev != nil {
				min(satAdd(slot.Time(r.prev.obToNext.Load()), r.minLink))
			}
		} else {
			if r.fromNext != nil {
				if e := r.fromNext.earliestArrival(); e < slot.Never {
					min(satAdd(e, r.minLink))
				}
			}
			if r.next != nil {
				min(satAdd(slot.Time(r.next.obToPrev.Load()), r.minLink))
			}
		}
	}
	// Local injections: the caller promises none before nextEmit.
	if nextEmit < slot.Never {
		min(satAdd(nextEmit, r.minLink-1))
	}
	if h < pub {
		h = pub // a crossing in the past is impossible; keep the gate live
	}
	return h
}

// Publish recomputes and publishes the outbound boundary horizons,
// with pub the first unexecuted slot (now+1 after a step, the skip
// target after a SkipTo). Call after every step or skip; neighbors
// gate and bound their fast-forward on the published values.
func (r *Region) Publish(pub, nextEmit slot.Time) {
	if r.prev != nil {
		h := r.outHorizon(true, pub, nextEmit)
		if h > slot.Time(r.obToPrev.Load()) {
			r.obToPrev.Store(int64(h))
		}
	}
	if r.next != nil {
		h := r.outHorizon(false, pub, nextEmit)
		if h > slot.Time(r.obToNext.Load()) {
			r.obToNext.Store(int64(h))
		}
	}
}

// NextWork implements the sim.Quiescer protocol against the band's
// local clock: pending arrivals pin the next slot; active links report
// their exact completion; boundary horizons bound how far the band may
// run ahead of its neighbors (wake, re-query, leapfrog).
func (r *Region) NextWork(now slot.Time) slot.Time {
	if len(r.deferred) > 0 {
		return now
	}
	next := slot.Never
	for li, rt := range r.routers {
		m := r.masks[li]
		if m == 0 {
			continue
		}
		for p := Port(0); p < numPorts; p++ {
			if m&(1<<p) == 0 {
				continue
			}
			op := rt.out[p]
			if op.current == nil {
				return now // an idle link pulls a packet this slot
			}
			if op.current.left <= 1 {
				return now // hop completes during Advance(now)
			}
			if at := now + op.current.left - 1; at < next {
				next = at
			}
		}
	}
	bound := func(at slot.Time) slot.Time {
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
		return slot.Never
	}
	if r.fromPrev != nil {
		if e := r.fromPrev.earliestArrival(); e < slot.Never {
			if bound(satAdd(e, 1)) == now {
				return now
			}
		}
	}
	if r.fromNext != nil {
		if e := r.fromNext.earliestArrival(); e < slot.Never {
			if bound(satAdd(e, 1)) == now {
				return now
			}
		}
	}
	if r.prev != nil {
		if bound(satAdd(slot.Time(r.prev.obToNext.Load()), 1)) == now {
			return now
		}
	}
	if r.next != nil {
		if bound(satAdd(slot.Time(r.next.obToPrev.Load()), 1)) == now {
			return now
		}
	}
	return next
}

// SkipTo advances every in-transit link across a fast-forwarded span
// [from, to), exactly as Mesh.SkipTo does for the whole grid. The
// caller must Publish(to, …) afterwards so neighbors observe the jump.
func (r *Region) SkipTo(from, to slot.Time) {
	span := to - from
	for li, rt := range r.routers {
		m := r.masks[li]
		if m == 0 {
			continue
		}
		for p := Port(0); p < numPorts; p++ {
			if m&(1<<p) != 0 {
				if fl := rt.out[p].current; fl != nil {
					fl.left -= span
				}
			}
		}
	}
}
