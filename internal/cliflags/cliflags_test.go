package cliflags

import (
	"flag"
	"runtime"
	"testing"

	"ioguard/internal/system"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	e := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	r, err := e.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS", r.Workers)
	}
	if r.ShardWorkers != 0 {
		t.Errorf("default shard-workers = %d, want 0", r.ShardWorkers)
	}
	if r.Metrics != system.MetricsExact {
		t.Errorf("default metrics = %v, want exact", r.Metrics)
	}
	if r.DrainMin != 0 || r.DrainMax != 0 {
		t.Errorf("default drain bounds = (%d, %d), want (0, 0) = built-in", r.DrainMin, r.DrainMax)
	}
}

func TestResolveParsesAndValidates(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	e := Register(fs)
	if err := fs.Parse([]string{"-workers", "3", "-shard-workers", "2", "-metrics", "stream", "-drain-min", "128", "-drain-max", "8192"}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 3 || r.ShardWorkers != 2 || r.Metrics != system.MetricsStream {
		t.Errorf("resolved %+v", r)
	}
	if r.DrainMin != 128 || r.DrainMax != 8192 {
		t.Errorf("resolved drain bounds (%d, %d), want (128, 8192)", r.DrainMin, r.DrainMax)
	}
}

func TestResolveRejectsBadValues(t *testing.T) {
	if _, err := (&Exec{Metrics: "bogus"}).Resolve(); err == nil {
		t.Error("bogus metrics mode accepted")
	}
	if _, err := (&Exec{ShardWorkers: -1, Metrics: "exact"}).Resolve(); err == nil {
		t.Error("negative shard-workers accepted")
	}
	if _, err := (&Exec{Metrics: "exact", DrainMin: -1}).Resolve(); err == nil {
		t.Error("negative drain-min accepted")
	}
	if _, err := (&Exec{Metrics: "exact", DrainMax: -8}).Resolve(); err == nil {
		t.Error("negative drain-max accepted")
	}
	if _, err := (&Exec{Metrics: "exact", DrainMin: 512, DrainMax: 64}).Resolve(); err == nil {
		t.Error("inverted drain bounds accepted")
	}
	// A one-sided bound is valid: the other side keeps its built-in.
	if _, err := (&Exec{Metrics: "exact", DrainMin: 512}).Resolve(); err != nil {
		t.Errorf("one-sided drain-min rejected: %v", err)
	}
	if _, err := (&Exec{Metrics: "exact", DrainMax: 512}).Resolve(); err != nil {
		t.Errorf("one-sided drain-max rejected: %v", err)
	}
}

// TestFaultFlagsResolve: the -fault-* sextet parses into a validated
// faults.Plan on Resolved, and stays the zero (clean) plan by default.
func TestFaultFlagsResolve(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	e := Register(fs)
	if err := fs.Parse([]string{
		"-fault-seed", "9", "-fault-jitter", "50",
		"-fault-drop", "0.05", "-fault-dup", "0.02",
		"-fault-delay", "0.1", "-fault-delay-max", "32",
	}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p := r.Faults
	if p.Seed != 9 || p.ReleaseJitter != 50 || p.DropProb != 0.05 ||
		p.DupProb != 0.02 || p.DelayProb != 0.1 || p.DelayMax != 32 {
		t.Errorf("resolved plan %+v", p)
	}
	if !p.Enabled() {
		t.Error("configured plan reports disabled")
	}
	clean, err := (&Exec{Metrics: "exact"}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if clean.Faults.Enabled() {
		t.Errorf("default plan enabled: %+v", clean.Faults)
	}
}

// TestFaultFlagsRejectBadPlans routes plan validation through Resolve.
func TestFaultFlagsRejectBadPlans(t *testing.T) {
	if _, err := (&Exec{Metrics: "exact", FaultDrop: 1.5}).Resolve(); err == nil {
		t.Error("drop probability > 1 accepted")
	}
	if _, err := (&Exec{Metrics: "exact", FaultJitter: -1}).Resolve(); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := (&Exec{Metrics: "exact", FaultDelay: 0.5}).Resolve(); err == nil {
		t.Error("delay probability without -fault-delay-max accepted")
	}
}

// TestWorkersFloorMatchesRunCells: workers ≤ 0 must resolve to the
// same GOMAXPROCS fallback system.RunCells applies, so a resolved
// configuration never disagrees with the pool it parameterizes.
func TestWorkersFloorMatchesRunCells(t *testing.T) {
	r, err := (&Exec{Workers: -4, Metrics: ""}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("workers floor = %d, want GOMAXPROCS", r.Workers)
	}
}
