package rtos

import (
	"math"
	"strings"
	"testing"
)

func TestArchString(t *testing.T) {
	want := map[Arch]string{
		Legacy: "BS|Legacy", RTXen: "BS|RT-XEN", BlueVisor: "BS|BV", IOGuard: "I/O-GUARD",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if !strings.Contains(Arch(9).String(), "9") {
		t.Error("unknown arch should show numerically")
	}
	if len(Arches()) != 4 {
		t.Error("Arches should list all four systems")
	}
}

func TestCostsOrdering(t *testing.T) {
	// RT-Xen must be the most expensive path; I/O-GUARD the cheapest;
	// hardware virtualization has no serialized VMM work.
	if Costs(RTXen).Total() <= Costs(Legacy).Total() {
		t.Error("RT-Xen path should cost more than legacy")
	}
	if Costs(IOGuard).Total() > Costs(BlueVisor).Total() {
		t.Error("I/O-GUARD path should not cost more than BlueVisor")
	}
	if Costs(IOGuard).Total() >= Costs(Legacy).Total() {
		t.Error("I/O-GUARD para-virtual path should beat the legacy kernel path")
	}
	if Costs(Legacy).VMMRequest != 0 || Costs(BlueVisor).VMMRequest != 0 || Costs(IOGuard).VMMRequest != 0 {
		t.Error("only software virtualization has VMM work")
	}
	if Costs(RTXen).VMMRequest == 0 {
		t.Error("RT-Xen must pay serialized VMM work")
	}
	if Costs(Arch(99)).Total() != 0 {
		t.Error("unknown arch should cost 0")
	}
}

func TestSegmentArithmetic(t *testing.T) {
	s := Segment{Text: 10, Data: 2, BSS: 3}
	if s.Total() != 15 {
		t.Errorf("Total = %v", s.Total())
	}
	sum := s.Add(Segment{Text: 1, Data: 1, BSS: 1})
	if sum.Total() != 18 {
		t.Errorf("Add total = %v", sum.Total())
	}
	if s.Scale(2).Total() != 30 {
		t.Errorf("Scale total = %v", s.Scale(2).Total())
	}
}

func TestSegSplitSumsToTotal(t *testing.T) {
	s := seg(100)
	if math.Abs(s.Total()-100) > 1e-9 {
		t.Errorf("seg split total = %v", s.Total())
	}
	if s.Text < s.Data || s.Text < s.BSS {
		t.Error("text should dominate an embedded image")
	}
}

func TestFig6CalibrationAnchors(t *testing.T) {
	// RT-Xen's hypervisor + kernel-mod overhead over the legacy
	// kernel must be 61 KB = 129.8% (Sec. V-A).
	legacyKB := KernelFootprint(Legacy).Total()
	rtxenKB := HypervisorFootprint(RTXen).Total() + KernelFootprint(RTXen).Total()
	over := rtxenKB - legacyKB
	if math.Abs(over-61) > 1.0 {
		t.Errorf("RT-Xen overhead = %.1f KB, want ≈61", over)
	}
	if pct := over / legacyKB * 100; math.Abs(pct-129.8) > 5 {
		t.Errorf("RT-Xen overhead = %.1f%%, want ≈129.8%%", pct)
	}
	if HypervisorFootprint(Legacy).Total() != 0 {
		t.Error("legacy has no hypervisor")
	}
	if HypervisorFootprint(IOGuard).Total() != 0 {
		t.Error("I/O-GUARD eliminates the software VMM entirely")
	}
	if HypervisorFootprint(BlueVisor).Total() <= 0 {
		t.Error("BlueVisor keeps a thin software shim")
	}
	if KernelFootprint(IOGuard).Total() >= KernelFootprint(Legacy).Total() {
		t.Error("I/O-GUARD kernel sheds the I/O manager")
	}
	if KernelFootprint(Arch(9)).Total() != 0 {
		t.Error("unknown arch kernel should be empty")
	}
}

func TestDriverFootprintOrdering(t *testing.T) {
	for _, dev := range DriverDevices() {
		leg, err := DriverFootprint(Legacy, dev)
		if err != nil {
			t.Fatal(err)
		}
		xen, _ := DriverFootprint(RTXen, dev)
		bv, _ := DriverFootprint(BlueVisor, dev)
		iog, _ := DriverFootprint(IOGuard, dev)
		if !(xen.Total() > leg.Total() && leg.Total() > bv.Total() && bv.Total() > iog.Total()) {
			t.Errorf("%s: footprint ordering violated: xen=%.1f leg=%.1f bv=%.1f iog=%.1f",
				dev, xen.Total(), leg.Total(), bv.Total(), iog.Total())
		}
	}
}

func TestDriverFootprintComplexDevicesCostMore(t *testing.T) {
	eth, _ := DriverFootprint(Legacy, "ethernet")
	uart, _ := DriverFootprint(Legacy, "uart")
	if eth.Total() <= uart.Total() {
		t.Error("ethernet driver should dwarf the UART driver")
	}
}

func TestDriverFootprintErrors(t *testing.T) {
	if _, err := DriverFootprint(Legacy, "floppy"); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := DriverFootprint(Arch(9), "spi"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestDriverDevicesCoverCatalog(t *testing.T) {
	for _, d := range DriverDevices() {
		if _, err := DriverFootprint(Legacy, d); err != nil {
			t.Errorf("device %q listed but has no footprint: %v", d, err)
		}
	}
}
