// Greenwald–Khanna ε-approximate quantile sketch (SIGMOD'01): the
// bounded-memory percentile backend of the Streaming recorder. The
// sketch keeps a sorted list of tuples (v, g, Δ) where g is the gap in
// minimum rank to the previous tuple and Δ bounds the rank
// uncertainty; maintaining g+Δ ≤ ⌊2εn⌋ for every interior tuple
// guarantees any quantile query is answered within εn ranks while
// storing only O((1/ε)·log(εn)) tuples — independent of the horizon,
// which is what lets a trial's collector forget completions as they
// stream past.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchEpsilon is the rank-error bound used by the streaming
// recorders: a quantile query on n observations returns a value whose
// rank is within ⌈εn⌉ of the exact nearest rank. At 0.005 the p99 of
// one million observations is off by at most 5000 ranks (0.5 %),
// while the sketch stays at a few hundred tuples.
const DefaultSketchEpsilon = 0.005

// gkTuple summarizes a run of observations: v was observed, its
// minimum rank is the sum of g over the prefix, and its maximum rank
// exceeds the minimum by delta.
type gkTuple struct {
	v     float64
	g     int64
	delta int64
}

// GKSketch is a Greenwald–Khanna quantile summary. The zero value is
// not usable; construct with NewGKSketch.
type GKSketch struct {
	eps    float64
	n      int64
	tuples []gkTuple
	// pending counts inserts since the last compression; compressing
	// every ⌊1/(2ε)⌋ inserts amortizes the merge scan.
	pending int
}

// NewGKSketch returns an empty sketch with rank-error bound eps
// (clamped to (0, 0.5]).
func NewGKSketch(eps float64) *GKSketch {
	if !(eps > 0) || eps > 0.5 {
		eps = DefaultSketchEpsilon
	}
	return &GKSketch{eps: eps}
}

// Epsilon returns the sketch's rank-error bound.
func (s *GKSketch) Epsilon() float64 { return s.eps }

// N returns the number of observations absorbed.
func (s *GKSketch) N() int64 { return s.n }

// Tuples returns the current summary size (for memory accounting).
// Inserts since the last compression are folded in first, so the
// reported size honors the O((1/ε)·log(εn)) bound even when queried
// mid-stream between insert-cadence compressions.
func (s *GKSketch) Tuples() int {
	s.settle()
	return len(s.tuples)
}

// settle compresses lazily: queries between the amortized
// insert-cadence compressions must not observe (or answer from) a
// summary that has outgrown its documented bound.
func (s *GKSketch) settle() {
	if s.pending > 0 {
		s.compress()
		s.pending = 0
	}
}

// Add absorbs one observation.
func (s *GKSketch) Add(v float64) {
	i := sort.Search(len(s.tuples), func(k int) bool { return s.tuples[k].v >= v })
	var delta int64
	if i > 0 && i < len(s.tuples) {
		// Interior insert: the new tuple inherits the full rank
		// uncertainty ⌊2εn⌋−1; boundary inserts (new min/max) are
		// exact by construction.
		delta = int64(2 * s.eps * float64(s.n))
		if delta > 0 {
			delta--
		}
	}
	s.tuples = append(s.tuples, gkTuple{})
	copy(s.tuples[i+1:], s.tuples[i:])
	s.tuples[i] = gkTuple{v: v, g: 1, delta: delta}
	s.n++
	s.pending++
	if s.pending >= int(1/(2*s.eps)) {
		s.compress()
		s.pending = 0
	}
}

// compress merges adjacent tuples whose combined rank band still fits
// under ⌊2εn⌋, keeping the first and last tuples (exact min/max)
// untouched. The merge is in place: the slice is compacted without
// reallocating, so steady-state inserts stay allocation-free.
func (s *GKSketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	limit := int64(2 * s.eps * float64(s.n))
	out := s.tuples[:1]
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		next := s.tuples[i+1]
		if t.g+next.g+next.delta <= limit {
			// Fold t into its successor; its gap travels along.
			s.tuples[i+1].g += t.g
			continue
		}
		out = append(out, t)
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Quantile returns a value whose rank among the observations is
// within ⌈εn⌉ of the nearest-rank target ⌈q·n⌉ (q in [0,1]). An empty
// sketch returns 0, matching Sample's convention.
func (s *GKSketch) Quantile(q float64) float64 {
	if s.n == 0 || len(s.tuples) == 0 {
		return 0
	}
	s.settle()
	if q <= 0 {
		return s.tuples[0].v
	}
	if q >= 1 {
		return s.tuples[len(s.tuples)-1].v
	}
	target := int64(math.Ceil(q * float64(s.n)))
	if target < 1 {
		target = 1
	}
	// The documented contract is rank error within ⌈εn⌉, so the band
	// edge is target+⌈εn⌉ and the scan stops at the first successor
	// whose maximum rank reaches it. (The previous floored tolerance
	// with a strict compare searched a band of width ⌊εn⌋+1, which
	// matches ⌈εn⌉ only while εn is fractional; once εn is integral it
	// scanned one rank past the documented edge.)
	tol := int64(math.Ceil(s.eps * float64(s.n)))
	var rmin int64
	for i := 0; i < len(s.tuples)-1; i++ {
		rmin += s.tuples[i].g
		next := s.tuples[i+1]
		// Stop at the last tuple whose successor's rank band would
		// reach the edge of the tolerance band: its own band then
		// brackets the target.
		if rmin+next.g+next.delta >= target+tol {
			return s.tuples[i].v
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// String summarizes the sketch state.
func (s *GKSketch) String() string {
	return fmt.Sprintf("gk(ε=%g n=%d tuples=%d)", s.eps, s.n, len(s.tuples))
}
