package slot

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// bruteNextFree is the pre-index reference: scan forward one slot at a
// time.
func bruteNextFree(t *Table, from Time) Time {
	if t.FreeCount() == 0 || t.Len() == 0 {
		return Never
	}
	for at := from; ; at++ {
		if t.IsFree(at) {
			return at
		}
	}
}

// bruteFreeIn is the pre-index reference: count the window slot by
// slot.
func bruteFreeIn(t *Table, from, length Time) Time {
	n := Time(0)
	for at := from; at < from+length; at++ {
		if t.Len() > 0 && t.IsFree(at) {
			n++
		}
	}
	return n
}

func TestOwnedByMatchesScan(t *testing.T) {
	tab, _, err := Build([]Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8},
		{ID: 1, Period: 16, WCET: 3, Deadline: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := TaskID(0); id <= 2; id++ {
		var want []Time
		for i := 0; i < tab.Len(); i++ {
			if tab.Owner(Time(i)) == id {
				want = append(want, Time(i))
			}
		}
		if got := tab.OwnedBy(id); !reflect.DeepEqual(got, want) {
			t.Errorf("OwnedBy(%d) = %v, want %v", id, got, want)
		}
		if got := tab.OwnedBy(id); !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
			t.Errorf("OwnedBy(%d) not ascending: %v", id, got)
		}
	}
}

// TestFreeIndexTracksMutations interleaves every mutation path —
// Assign, Clear, Release, AllocatePeriodic — with NextFree/FreeIn
// queries (which lazily build the index) and checks each answer
// against the brute-force reference. A mutation that forgets to drop
// the index makes the cached answers stale and fails here.
func TestFreeIndexTracksMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tab := NewTable(64)
	check := func(ctx string) {
		t.Helper()
		for k := 0; k < 8; k++ {
			from := Time(rng.Intn(200)) - 30
			if got, want := tab.NextFree(from), bruteNextFree(tab, from); got != want {
				t.Fatalf("%s: NextFree(%d) = %d, want %d", ctx, from, got, want)
			}
			length := Time(rng.Intn(180))
			if got, want := tab.FreeIn(from, length), bruteFreeIn(tab, from, length); got != want {
				t.Fatalf("%s: FreeIn(%d,%d) = %d, want %d", ctx, from, length, got, want)
			}
		}
	}
	check("fresh table")
	for round := 0; round < 50; round++ {
		switch rng.Intn(4) {
		case 0:
			at := Time(rng.Intn(64))
			if tab.IsFree(at) {
				if err := tab.Assign(at, TaskID(rng.Intn(4))); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			tab.Clear(Time(rng.Intn(64)))
		case 2:
			tab.Release(TaskID(rng.Intn(4)))
		case 3:
			// May fail when the table is crowded; that's fine — failure
			// rolls back through Assign/Clear which also invalidate.
			_, _ = tab.AllocatePeriodic(Requirement{
				ID: TaskID(10 + rng.Intn(3)), Period: 32, WCET: 1 + Time(rng.Intn(2)), Deadline: 32,
			})
			tab.Release(TaskID(10 + rng.Intn(3)))
		}
		check("after mutation round")
	}
}

// TestReleaseInvalidatesIndex pins the specific staleness bug the
// randomized test would eventually catch: Release writes t.slots
// directly (not via Clear), so it must drop the lazy index itself.
func TestReleaseInvalidatesIndex(t *testing.T) {
	tab := NewTable(8)
	for i := 0; i < 8; i++ {
		if err := tab.Assign(Time(i), 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := tab.NextFree(0); got != Never { // builds the (empty) index
		t.Fatalf("NextFree on full table = %d, want Never", got)
	}
	if n := tab.Release(5); n != 8 {
		t.Fatalf("Release freed %d, want 8", n)
	}
	if got := tab.NextFree(3); got != 3 {
		t.Errorf("NextFree(3) after Release = %d, want 3 (stale index?)", got)
	}
	if got := tab.FreeIn(0, 8); got != 8 {
		t.Errorf("FreeIn(0,8) after Release = %d, want 8 (stale index?)", got)
	}
}

// referenceBuild is the original per-slot linear-scan Build (the
// pre-optimization implementation, verbatim in behavior): at every
// slot of the 2H sweep, pick the first min-deadline released job in
// deadline-sorted order. The heap-based Build must be
// indistinguishable from it.
func referenceBuild(reqs []Requirement) (*Table, []Placement, error) {
	if len(reqs) == 0 {
		return NewTable(0), nil, nil
	}
	ids := map[TaskID]bool{}
	periods := make([]Time, 0, len(reqs))
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, nil, err
		}
		if ids[r.ID] {
			return nil, nil, errors.New("slot: duplicate task id")
		}
		ids[r.ID] = true
		periods = append(periods, r.Period)
	}
	h := LCMAll(periods...)
	if h == Never || h > 1<<22 {
		return nil, nil, errors.New("slot: hyper-period too large")
	}
	type job struct {
		req       Requirement
		release   Time
		deadline  Time
		remaining Time
		placed    []Time
	}
	var jobs []*job
	for _, r := range reqs {
		for rel := r.Offset; rel < h; rel += r.Period {
			jobs = append(jobs, &job{req: r, release: rel, deadline: rel + r.Deadline, remaining: r.WCET})
		}
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].deadline != jobs[j].deadline {
			return jobs[i].deadline < jobs[j].deadline
		}
		return jobs[i].release < jobs[j].release
	})
	tab := NewTable(int(h))
	for now := Time(0); now < 2*h; now++ {
		var pick *job
		for _, j := range jobs {
			if j.remaining == 0 || j.release > now || now >= j.deadline {
				continue
			}
			if pick == nil || j.deadline < pick.deadline {
				pick = j
			}
		}
		if pick == nil || !tab.IsFree(now) {
			continue
		}
		if err := tab.Assign(now, pick.req.ID); err != nil {
			return nil, nil, err
		}
		pick.placed = append(pick.placed, now%h)
		pick.remaining--
	}
	placements := make([]Placement, 0, len(jobs))
	for _, j := range jobs {
		if j.remaining > 0 {
			return nil, nil, ErrOverload
		}
		placements = append(placements, Placement{Task: j.req.ID, Release: j.release, Deadline: j.deadline, Slots: j.placed})
	}
	sort.Slice(placements, func(i, j int) bool {
		if placements[i].Release != placements[j].Release {
			return placements[i].Release < placements[j].Release
		}
		return placements[i].Task < placements[j].Task
	})
	return tab, placements, nil
}

// TestBuildMatchesReferenceScan drives both Build implementations over
// randomized requirement sets — including offsets, tight deadlines and
// overloaded sets — and demands identical tables, placements and
// overload verdicts.
func TestBuildMatchesReferenceScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	periods := []Time{4, 8, 16, 32, 64}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		reqs := make([]Requirement, 0, n)
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			w := 1 + Time(rng.Intn(int(p/2)))
			d := w + Time(rng.Intn(int(p-w+1))) // w ≤ d ≤ p
			reqs = append(reqs, Requirement{
				ID: TaskID(i), Period: p, WCET: w, Deadline: d, Offset: Time(rng.Intn(int(p))),
			})
		}
		wantTab, wantPl, wantErr := referenceBuild(reqs)
		gotTab, gotPl, gotErr := Build(reqs)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: reference err %v, Build err %v (reqs %+v)", trial, wantErr, gotErr, reqs)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, ErrOverload) {
				t.Fatalf("trial %d: Build error not ErrOverload: %v", trial, gotErr)
			}
			continue
		}
		if wantTab.String() != gotTab.String() {
			t.Fatalf("trial %d: tables differ\nref:   %s\nbuild: %s\nreqs %+v",
				trial, wantTab.String(), gotTab.String(), reqs)
		}
		if !reflect.DeepEqual(wantPl, gotPl) {
			t.Fatalf("trial %d: placements differ\nref:   %+v\nbuild: %+v", trial, wantPl, gotPl)
		}
	}
}
