// DenseTable is the original per-slot encoding of σ*, kept as the
// behavioral reference for the run-length Table: one TaskID per slot
// plus an O(H) lazily rebuilt free index. The randomized differential
// suite and the fuzz target replay every operation against both
// representations, and internal/benchsuite uses it as the baseline the
// BENCH_sim.json speedup and footprint pairings are measured against.
// It is NOT used on any simulation path — Table is.
package slot

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"unsafe"
)

// DenseTable stores σ* with one entry per slot; memory and index
// rebuild cost are O(H) regardless of how sparse the schedule is.
type DenseTable struct {
	slots []TaskID
	free  int

	// Lazily built index over the free slots, dropped on any mutation:
	// freePrefix[i] counts the free slots in [0,i), and freePos lists
	// the free positions in ascending order.
	freePrefix []int32
	freePos    []Time
}

// NewDenseTable returns an all-free dense table with hyper-period h.
func NewDenseTable(h int) *DenseTable {
	if h < 0 {
		h = 0
	}
	s := make([]TaskID, h)
	for i := range s {
		s[i] = Free
	}
	return &DenseTable{slots: s, free: h}
}

func (t *DenseTable) ensureIndex() {
	if t.freePrefix != nil || len(t.slots) == 0 {
		return
	}
	t.freePrefix = make([]int32, len(t.slots)+1)
	t.freePos = make([]Time, 0, t.free)
	for i, id := range t.slots {
		t.freePrefix[i+1] = t.freePrefix[i]
		if id == Free {
			t.freePrefix[i+1]++
			t.freePos = append(t.freePos, Time(i))
		}
	}
}

// Len returns H, the hyper-period.
func (t *DenseTable) Len() int { return len(t.slots) }

// FreeCount returns the number of free slots.
func (t *DenseTable) FreeCount() int { return t.free }

// Utilization returns (H-F)/H, or 0 for an empty table.
func (t *DenseTable) Utilization() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(len(t.slots)-t.free) / float64(len(t.slots))
}

func (t *DenseTable) index(at Time) int {
	h := Time(len(t.slots))
	i := at % h
	if i < 0 {
		i += h
	}
	return int(i)
}

// Owner returns the task owning slot at (mod H), or Free.
func (t *DenseTable) Owner(at Time) TaskID {
	if len(t.slots) == 0 {
		return Free
	}
	return t.slots[t.index(at)]
}

// IsFree reports whether slot at (mod H) is free.
func (t *DenseTable) IsFree(at Time) bool { return t.Owner(at) == Free }

// Assign gives slot at (mod H) to task id.
func (t *DenseTable) Assign(at Time, id TaskID) error {
	if id < 0 {
		return fmt.Errorf("slot: invalid task id %d", id)
	}
	if len(t.slots) == 0 {
		return errors.New("slot: assign on empty table")
	}
	i := t.index(at)
	if t.slots[i] != Free {
		return fmt.Errorf("slot: slot %d already owned by task %d", i, t.slots[i])
	}
	t.slots[i] = id
	t.free--
	t.freePrefix, t.freePos = nil, nil
	return nil
}

// Clear releases slot at (mod H) back to the free pool.
func (t *DenseTable) Clear(at Time) {
	if len(t.slots) == 0 {
		return
	}
	i := t.index(at)
	if t.slots[i] != Free {
		t.slots[i] = Free
		t.free++
		t.freePrefix, t.freePos = nil, nil
	}
}

// Clone returns a deep copy.
func (t *DenseTable) Clone() *DenseTable {
	c := &DenseTable{slots: make([]TaskID, len(t.slots)), free: t.free}
	copy(c.slots, t.slots)
	return c
}

// OwnedBy returns the indices of every slot owned by id, in order.
func (t *DenseTable) OwnedBy(id TaskID) []Time {
	var out []Time
	for i, o := range t.slots {
		if o == id {
			out = append(out, Time(i))
		}
	}
	return out
}

// FreeSlots returns the indices of all free slots, in order.
func (t *DenseTable) FreeSlots() []Time {
	out := make([]Time, 0, t.free)
	for i, id := range t.slots {
		if id == Free {
			out = append(out, Time(i))
		}
	}
	return out
}

// MemoryFootprint returns the heap bytes backing the table (slot array
// plus query index, built first so the figure reflects a query-ready
// table) — the dense side of the footprint pairings.
func (t *DenseTable) MemoryFootprint() int {
	t.ensureIndex()
	return cap(t.slots)*int(unsafe.Sizeof(TaskID(0))) +
		cap(t.freePrefix)*int(unsafe.Sizeof(int32(0))) +
		cap(t.freePos)*int(unsafe.Sizeof(Time(0)))
}

// NextFree returns the first slot ≥ from that is free in σ, or Never.
func (t *DenseTable) NextFree(from Time) Time {
	if t.free == 0 || len(t.slots) == 0 {
		return Never
	}
	t.ensureIndex()
	idx := Time(t.index(from))
	i := sort.Search(len(t.freePos), func(k int) bool { return t.freePos[k] >= idx })
	if i < len(t.freePos) {
		return from + (t.freePos[i] - idx)
	}
	h := Time(len(t.slots))
	return from + (h - idx) + t.freePos[0]
}

// FreeIn returns the number of free slots in [from, from+length) of σ.
func (t *DenseTable) FreeIn(from, length Time) Time {
	if length <= 0 || len(t.slots) == 0 {
		return 0
	}
	t.ensureIndex()
	h := Time(len(t.slots))
	full := length / h
	n := full * Time(t.free)
	lo := Time(t.index(from))
	rem := length % h
	if hi := lo + rem; hi <= h {
		n += Time(t.freePrefix[hi] - t.freePrefix[lo])
	} else {
		n += Time(t.freePrefix[h] - t.freePrefix[lo])
		n += Time(t.freePrefix[hi-h])
	}
	return n
}

// String renders the table exactly like Table.String.
func (t *DenseTable) String() string {
	var b strings.Builder
	b.WriteByte('|')
	for _, id := range t.slots {
		if id == Free {
			b.WriteByte('.')
		} else {
			fmt.Fprintf(&b, "%d", id)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// AllocatePeriodic mirrors Table.AllocatePeriodic on the dense
// representation (per-slot window scan).
func (t *DenseTable) AllocatePeriodic(r Requirement) ([]Placement, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	h := Time(t.Len())
	if h == 0 {
		return nil, fmt.Errorf("slot: allocate on empty table")
	}
	if h%r.Period != 0 {
		return nil, fmt.Errorf("slot: period %d does not divide hyper-period %d", r.Period, h)
	}
	for i := 0; i < t.Len(); i++ {
		if t.slots[i] == r.ID {
			return nil, fmt.Errorf("slot: task %d already owns slots", r.ID)
		}
	}
	var assigned []Time
	rollback := func() {
		for _, s := range assigned {
			t.Clear(s)
		}
	}
	var placements []Placement
	for rel := r.Offset; rel < h; rel += r.Period {
		p := Placement{Task: r.ID, Release: rel, Deadline: rel + r.Deadline}
		need := r.WCET
		for s := rel; s < rel+r.Deadline && need > 0; s++ {
			if t.IsFree(s) {
				if err := t.Assign(s, r.ID); err != nil {
					rollback()
					return nil, err
				}
				assigned = append(assigned, s)
				p.Slots = append(p.Slots, s%h)
				need--
			}
		}
		if need > 0 {
			rollback()
			return nil, fmt.Errorf("%w: job released at %d short %d slots before deadline %d",
				ErrOverload, rel, need, p.Deadline)
		}
		placements = append(placements, p)
	}
	return placements, nil
}

// Release frees every slot owned by id and returns how many were
// freed. Negative ids (including Free) release nothing.
func (t *DenseTable) Release(id TaskID) int {
	if id < 0 {
		return 0
	}
	n := 0
	for i := range t.slots {
		if t.slots[i] == id {
			t.slots[i] = Free
			t.free++
			n++
		}
	}
	if n > 0 {
		t.freePrefix, t.freePos = nil, nil
	}
	return n
}

// BuildDense compiles requirements into a DenseTable with the same
// EDF sweep as Build, paying the dense representation's O(H)
// allocation and per-slot bookkeeping — the baseline the slot.Build
// micro-benchmarks compare against.
func BuildDense(reqs []Requirement) (*DenseTable, []Placement, error) {
	if len(reqs) == 0 {
		return NewDenseTable(0), nil, nil
	}
	h, jobs, byRelease, err := expandJobs(reqs)
	if err != nil {
		return nil, nil, err
	}
	tab := NewDenseTable(int(h))
	assign := func(now Time, id TaskID) error { return tab.Assign(now, id) }
	if err := edfSweep(h, byRelease, tab.IsFree, assign); err != nil {
		return nil, nil, err
	}
	placements, err := collectPlacements(jobs)
	if err != nil {
		return nil, nil, err
	}
	return tab, placements, nil
}
