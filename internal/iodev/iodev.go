// Package iodev models the I/O devices and controllers at the far end
// of the I/O-GUARD hypervisor: the standardized I/O controller of the
// virtualization driver operates a connected device using its native
// protocol (SPI, I²C, etc.; Sec. III-B of Jiang et al., DAC'21), and
// the device's bandwidth dominates the service time of each
// operation.
//
// The evaluation platform runs at 100 MHz and schedules in time
// slots; this package fixes one slot = 1 µs (100 clock cycles), the
// granularity at which the prototype's executor switches operations.
package iodev

import (
	"fmt"
	"sort"

	"ioguard/internal/slot"
)

// Timing constants of the evaluation platform.
const (
	ClockHz       = 100_000_000 // 100 MHz system clock
	CyclesPerSlot = 100         // one scheduling slot = 100 cycles
	SlotsPerSec   = ClockHz / CyclesPerSlot
)

// Model describes one device class: its protocol bandwidth and the
// fixed per-operation costs of the controller.
type Model struct {
	Name         string
	Protocol     string  // wire protocol name, e.g. "SPI"
	BitsPerSec   float64 // sustained payload bandwidth
	OverheadBits int     // framing bits per operation (addresses, CRC, ...)
	SetupSlots   slot.Time
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("iodev: model without name")
	case m.BitsPerSec <= 0:
		return fmt.Errorf("iodev: %s: non-positive bandwidth", m.Name)
	case m.OverheadBits < 0:
		return fmt.Errorf("iodev: %s: negative overhead", m.Name)
	case m.SetupSlots < 0:
		return fmt.Errorf("iodev: %s: negative setup", m.Name)
	}
	return nil
}

// ServiceSlots returns the number of slots the device is busy
// transferring payloadBytes in one operation, including framing and
// controller setup. The result is at least 1.
func (m Model) ServiceSlots(payloadBytes int) slot.Time {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	bits := float64(payloadBytes*8 + m.OverheadBits)
	secs := bits / m.BitsPerSec
	xfer := slot.Time(secs * SlotsPerSec)
	if float64(xfer) < secs*SlotsPerSec {
		xfer++ // ceil
	}
	n := m.SetupSlots + xfer
	if n < 1 {
		n = 1
	}
	return n
}

// ThroughputBytesPerSec returns the effective payload throughput when
// repeatedly transferring ops of payloadBytes.
func (m Model) ThroughputBytesPerSec(payloadBytes int) float64 {
	s := m.ServiceSlots(payloadBytes)
	return float64(payloadBytes) / (float64(s) / SlotsPerSec)
}

// Standard device models of the evaluation platform (Sec. V): the
// raw data arrives via 1 Gbps Ethernet and results leave via 10 Mbps
// FlexRay; SPI/I²C/UART/CAN are the peripheral classes whose drivers
// Fig. 6 sizes.
var (
	SPI      = Model{Name: "spi", Protocol: "SPI", BitsPerSec: 50e6, OverheadBits: 16, SetupSlots: 2}
	I2C      = Model{Name: "i2c", Protocol: "I2C", BitsPerSec: 400e3, OverheadBits: 29, SetupSlots: 2}
	UART     = Model{Name: "uart", Protocol: "UART", BitsPerSec: 115200, OverheadBits: 20, SetupSlots: 1}
	CAN      = Model{Name: "can", Protocol: "CAN", BitsPerSec: 1e6, OverheadBits: 47, SetupSlots: 2}
	Ethernet = Model{Name: "ethernet", Protocol: "Ethernet", BitsPerSec: 1e9, OverheadBits: 304, SetupSlots: 1}
	FlexRay  = Model{Name: "flexray", Protocol: "FlexRay", BitsPerSec: 10e6, OverheadBits: 80, SetupSlots: 2}
)

// Catalog returns the standard models keyed by name.
func Catalog() map[string]Model {
	return map[string]Model{
		SPI.Name:      SPI,
		I2C.Name:      I2C,
		UART.Name:     UART,
		CAN.Name:      CAN,
		Ethernet.Name: Ethernet,
		FlexRay.Name:  FlexRay,
	}
}

// Names returns the sorted names of the standard models.
func Names() []string {
	c := Catalog()
	out := make([]string, 0, len(c))
	for n := range c {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the standard model with the given name.
func Lookup(name string) (Model, error) {
	m, ok := Catalog()[name]
	if !ok {
		return Model{}, fmt.Errorf("iodev: unknown device %q", name)
	}
	return m, nil
}

// Device is a runtime instance of a model: it can serve one operation
// at a time and remembers until when it is busy. This is the shared
// resource the schedulers contend for.
type Device struct {
	Model
	busyUntil slot.Time
	opsServed int64
	bytesOut  int64
}

// NewDevice returns an idle device of the given model.
func NewDevice(m Model) *Device { return &Device{Model: m} }

// Idle reports whether the device can accept an operation at now.
func (d *Device) Idle(now slot.Time) bool { return now >= d.busyUntil }

// Start begins an operation of payloadBytes at now and returns the
// slot at which the device becomes idle again. Starting while busy
// returns an error: hardware controllers cannot overlap transfers.
func (d *Device) Start(now slot.Time, payloadBytes int) (slot.Time, error) {
	if !d.Idle(now) {
		return 0, fmt.Errorf("iodev: %s busy until %d (now %d)", d.Name, d.busyUntil, now)
	}
	d.busyUntil = now + d.ServiceSlots(payloadBytes)
	d.opsServed++
	d.bytesOut += int64(payloadBytes)
	return d.busyUntil, nil
}

// BusyUntil returns the slot at which the current operation finishes.
func (d *Device) BusyUntil() slot.Time { return d.busyUntil }

// OpsServed returns the number of operations started so far.
func (d *Device) OpsServed() int64 { return d.opsServed }

// BytesServed returns the total payload bytes moved so far.
func (d *Device) BytesServed() int64 { return d.bytesOut }

// Reset returns the device to idle and clears its counters.
func (d *Device) Reset() { d.busyUntil, d.opsServed, d.bytesOut = 0, 0, 0 }
