// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (Sec. V). Each benchmark regenerates its result
// (printing the same rows/series the paper reports on the first
// iteration) and reports headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The case-study benchmarks default
// to a laptop-scale grid; use cmd/ioguard-experiments for the full
// sweep with more trials.
package ioguard

import (
	"fmt"
	"sync"
	"testing"

	"ioguard/internal/benchsuite"
	"ioguard/internal/experiments"
	"ioguard/internal/footprint"
	"ioguard/internal/hw"
	"ioguard/internal/rtos"
	"ioguard/internal/workload"
)

// printOnce prints a rendered experiment exactly once per process, no
// matter how many benchmark iterations run.
var printOnce sync.Map

func printExperiment(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// BenchmarkFig6SoftwareOverhead regenerates Fig. 6: the run-time
// memory footprint of hypervisor, kernel and I/O drivers across the
// four architectures.
func BenchmarkFig6SoftwareOverhead(b *testing.B) {
	var rtxenOverKB float64
	for i := 0; i < b.N; i++ {
		out, err := footprint.Render()
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("fig6", "Fig. 6 — run-time software overhead (KB)\n"+out)
		rtxenOverKB, _ = footprint.OverheadVsLegacy(rtos.RTXen)
	}
	b.ReportMetric(rtxenOverKB, "rtxen-overhead-KB")
	iog, _ := footprint.StackTotal(rtos.IOGuard, rtos.DriverDevices())
	leg, _ := footprint.StackTotal(rtos.Legacy, rtos.DriverDevices())
	b.ReportMetric(iog/leg, "ioguard/legacy-stack-ratio")
}

// BenchmarkTable1HardwareOverhead regenerates Table I: FPGA resource
// consumption of the hypervisor vs. reference designs.
func BenchmarkTable1HardwareOverhead(b *testing.B) {
	var prop hw.Resources
	for i := 0; i < b.N; i++ {
		out, err := experiments.RenderTable1()
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("table1", out)
		prop, err = hw.Hypervisor(16, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prop.LUTs), "LUTs")
	b.ReportMetric(float64(prop.Registers), "registers")
	b.ReportMetric(prop.PowerMW, "power-mW")
}

// benchFig7 runs a reduced Fig. 7 sweep for one VM group and reports
// the success ratios at the ends of the utilization range.
func benchFig7(b *testing.B, vms int, key string) {
	b.Helper()
	cfg := experiments.CaseStudyConfig{
		VMs:          vms,
		Utils:        []float64{0.40, 0.55, 0.70, 0.85, 1.00},
		Trials:       3,
		HyperPeriods: 4,
		Seed:         1,
	}
	var points []experiments.CaseStudyPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.CaseStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment(key, experiments.RenderCaseStudy(points, vms))
	}
	report := func(sys string, util float64, name string) {
		for _, p := range points {
			if p.System == sys && p.Util == util {
				b.ReportMetric(p.Agg.SuccessRatio(), name)
			}
		}
	}
	report("I/O-GUARD-70", 1.00, "iog70-success@1.0")
	report("I/O-GUARD-40", 1.00, "iog40-success@1.0")
	report("BS|RT-XEN", 0.70, "rtxen-success@0.7")
	report("BS|BV", 0.70, "bv-success@0.7")
}

// BenchmarkFig7aSuccessRatio4VM regenerates Fig. 7(a): success ratio
// vs target utilization in the 4-VM group.
func BenchmarkFig7aSuccessRatio4VM(b *testing.B) { benchFig7(b, 4, "fig7a") }

// BenchmarkFig7bSuccessRatio8VM regenerates Fig. 7(b): success ratio
// vs target utilization in the 8-VM group.
func BenchmarkFig7bSuccessRatio8VM(b *testing.B) { benchFig7(b, 8, "fig7b") }

// BenchmarkFig7cThroughput regenerates Fig. 7(c): I/O throughput vs
// target utilization (the throughput panel is printed together with
// each success-ratio sweep; this benchmark reports the headline
// throughput numbers for both groups at full load).
func BenchmarkFig7cThroughput(b *testing.B) {
	cfg := experiments.CaseStudyConfig{
		VMs:          4,
		Utils:        []float64{0.40, 1.00},
		Trials:       3,
		HyperPeriods: 4,
		Seed:         1,
	}
	var points []experiments.CaseStudyPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.CaseStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("fig7c", experiments.RenderCaseStudy(points, 4))
	}
	for _, p := range points {
		if p.Util == 1.00 && p.System == "I/O-GUARD-70" {
			b.ReportMetric(p.Agg.Throughput.Mean(), "iog70-MBps@1.0")
		}
		if p.Util == 1.00 && p.System == "BS|RT-XEN" {
			b.ReportMetric(p.Agg.Throughput.Mean(), "rtxen-MBps@1.0")
		}
	}
}

// benchFig8 renders the scalability sweep once and reports one panel.
func benchFig8(b *testing.B, metric func(p experiments.Fig8Point) (string, float64)) {
	b.Helper()
	var points []experiments.Fig8Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig8(4)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("fig8", experiments.RenderFig8(points))
	}
	for _, p := range points {
		if p.Eta == 4 {
			name, v := metric(p)
			b.ReportMetric(v, name)
		}
	}
}

// BenchmarkFig8aAreaScaling regenerates Fig. 8(a): normalized area vs
// η for BS|Legacy and I/O-GUARD.
func BenchmarkFig8aAreaScaling(b *testing.B) {
	benchFig8(b, func(p experiments.Fig8Point) (string, float64) {
		return "area-overhead@eta4", (p.GuardArea - p.LegacyArea) / p.LegacyArea
	})
}

// BenchmarkFig8bPowerScaling regenerates Fig. 8(b): power vs η.
func BenchmarkFig8bPowerScaling(b *testing.B) {
	benchFig8(b, func(p experiments.Fig8Point) (string, float64) {
		return "guard-power-mW@eta4", p.GuardPower
	})
}

// BenchmarkFig8cFmaxScaling regenerates Fig. 8(c): maximum frequency
// vs η.
func BenchmarkFig8cFmaxScaling(b *testing.B) {
	benchFig8(b, func(p experiments.Fig8Point) (string, float64) {
		return "guard-fmax-MHz@eta4", p.GuardFmax
	})
}

// BenchmarkAblationScheduler quantifies the R-channel design choices
// (DESIGN.md Sec. 5): DirectEDF vs work-conserving reclaiming vs no
// pre-loading, at 80 % utilization on 8 VMs.
func BenchmarkAblationScheduler(b *testing.B) {
	var points []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.SchedulerAblation(8, 0.8, 2, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	var text string
	for _, p := range points {
		text += fmt.Sprintf("%-24s %s\n", p.Config, p.Agg)
	}
	printExperiment("ablation", "R-channel ablation at U=0.80, 8 VMs\n"+text)
	for _, p := range points {
		b.ReportMetric(p.Agg.SuccessRatio(), p.Config+"-success")
	}
}

// BenchmarkAblationPreloadFraction sweeps the P-channel pre-load
// fraction at full load (the mechanism behind Obs. 3: I/O-GUARD-70
// beats I/O-GUARD-40 because more tasks are table-guaranteed).
func BenchmarkAblationPreloadFraction(b *testing.B) {
	var points []experiments.PreloadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.PreloadSweep(8, 1.0, nil, 3, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("preload", experiments.RenderPreloadSweep(points, 8, 1.0))
	}
	for _, p := range points {
		b.ReportMetric(p.Agg.SuccessRatio(), fmt.Sprintf("success@%.0f%%", p.Frac*100))
	}
}

// BenchmarkCaseStudyParallel runs one Fig. 7 column at increasing
// worker counts. The (util × trial × system) cells are independent,
// so wall-clock time should fall near-linearly with workers (up to
// the core count) while the folded output stays byte-identical —
// compare the ns/op across sub-benchmarks:
//
//	go test -bench=CaseStudyParallel -benchtime=1x
func BenchmarkCaseStudyParallel(b *testing.B) {
	cfg := experiments.CaseStudyConfig{
		VMs:          4,
		Utils:        []float64{0.70, 0.85, 1.00},
		Trials:       4,
		HyperPeriods: 3,
		Seed:         1,
	}
	var baseline string
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			var points []experiments.CaseStudyPoint
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.CaseStudy(c)
				if err != nil {
					b.Fatal(err)
				}
			}
			// The deterministic-merge guarantee, enforced while timing:
			// every worker count renders the same table.
			table := experiments.RenderCaseStudy(points, c.VMs)
			if baseline == "" {
				baseline = table
			} else if table != baseline {
				b.Fatal("parallel case study diverged from workers=1 output")
			}
			b.ReportMetric(float64(len(c.Utils)*c.Trials*len(experiments.SystemNames())), "cells")
		})
	}
}

// BenchmarkParallelSweep measures the raw worker-pool scaling on a
// single configuration (no workload regeneration in the loop).
func BenchmarkParallelSweep(b *testing.B) {
	ts, err := workload.Generate(workload.Config{VMs: 8, TargetUtil: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr := Trial{VMs: 8, Tasks: ts, Horizon: ts.Hyperperiod() * 3, Seed: 1}
	build := experiments.IOGuardBuilder(0.70)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelSweep(build, tr, 8, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSuite exposes a benchsuite prefix as sub-benchmarks, so that
// `go test -bench` and cmd/ioguard-bench time identical bodies.
func benchSuite(b *testing.B, prefix string) {
	b.Helper()
	specs, err := benchsuite.ByPrefix(prefix)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range specs {
		b.Run(s.Name, s.Bench)
	}
}

// BenchmarkEngineIdle measures the simulation engine on a mostly idle
// horizon (one quiescent component, one event per 10k slots): the
// dense variant steps every slot, fastforward uses the quiescence
// protocol. Their ratio is the engine-level fast-forward speedup.
func BenchmarkEngineIdle(b *testing.B) { benchSuite(b, "EngineIdle") }

// BenchmarkRunSparse measures a full idle-heavy case-study trial
// (stretched automotive workload, 0.05 per-device utilization) through
// system.Run, dense vs fast-forward.
func BenchmarkRunSparse(b *testing.B) { benchSuite(b, "RunSparse") }

// BenchmarkRunAvionics measures the long-hyper-period stress cell (the
// ARINC-653-style avionics workload, H = 4,000,000 slots at ~3%
// per-device utilization) end to end through system.Run, dense
// stepping vs the fast-forward stack over the interval slot table.
func BenchmarkRunAvionics(b *testing.B) { benchSuite(b, "RunAvionics") }

// BenchmarkSlotBuild, BenchmarkSlotNextFree and BenchmarkSlotFreeIn
// compare the σ* representations (dense per-slot array vs run-length
// intervals) on the avionics stress cell's table: compilation plus
// first supply query, and mode-change-then-query-burst cycles for the
// two supply primitives the fast-forward stack leans on.
func BenchmarkSlotBuild(b *testing.B)    { benchSuite(b, "SlotBuild") }
func BenchmarkSlotNextFree(b *testing.B) { benchSuite(b, "SlotNextFree") }
func BenchmarkSlotFreeIn(b *testing.B)   { benchSuite(b, "SlotFreeIn") }

// BenchmarkRunSkewed measures the one-busy-device skew cell (bursty
// telemetry on four near-idle devices plus a 60%-utilized CAN
// controller) under all four execution protocols: dense stepping,
// the legacy single-clock fast-forward (globalmin), the decoupled
// per-device clocks (fastforward), and the decoupled clocks fanned
// across OS threads (parshard). The fastforward/globalmin ratio is
// the decoupling's own win — a busy device no longer throttles idle
// peers — and parshard/fastforward is the epoch-barrier executor's
// wall-clock speedup on top (only visible on multi-core hosts).
func BenchmarkRunSkewed(b *testing.B) { benchSuite(b, "RunSkewed") }

// BenchmarkRunSkewedLegacy and BenchmarkRunSkewedRTXen measure the
// same skew cell on the mesh-coupled baselines, whose transports now
// run as two boundary-horizon regions (processor band / device row).
// The fastforward variant forces the pre-split single-clock
// fast-forward — the busy CAN station pins all 25 routers dense — so
// parshard/fastforward is the region split's algorithmic win: only
// the device row steps densely while the processor band skips.
func BenchmarkRunSkewedLegacy(b *testing.B) { benchSuite(b, "RunSkewedLegacy") }

func BenchmarkRunSkewedRTXen(b *testing.B) { benchSuite(b, "RunSkewedRTXen") }

// BenchmarkCaseStudyShardPar measures a trimmed case-study sweep with
// intra-trial shard parallelism as the only concurrency (trial-level
// pool pinned to one worker).
func BenchmarkCaseStudyShardPar(b *testing.B) {
	for _, s := range benchsuite.Specs() {
		if s.Name == "CaseStudyShardPar" {
			s.Bench(b)
			return
		}
	}
	b.Fatal("spec CaseStudyShardPar not found")
}

// BenchmarkHypervisorStep measures the simulator's slot-processing
// rate for the full I/O-GUARD system (useful when sizing longer
// sweeps; not a paper figure).
func BenchmarkHypervisorStep(b *testing.B) {
	ts, err := workload.Generate(workload.Config{VMs: 8, TargetUtil: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	build := experiments.IOGuardBuilder(0.70)
	sys, err := build(Trial{VMs: 8, Tasks: ts}, &Collector{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(Time(i))
	}
}
