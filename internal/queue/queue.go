// Package queue implements the hardware queueing structures of the
// I/O-GUARD hypervisor micro-architecture (Sec. III-A of Jiang et al.,
// DAC'21) and of the baseline systems:
//
//   - PQ is the random-access priority queue used inside each
//     R-channel I/O pool. Unlike a FIFO, every entry carries an extra
//     register slot holding its scheduling parameters, and the queue
//     supports random access so the local scheduler can re-prioritize
//     and remove entries in place.
//   - FIFO is the conventional bounded first-in/first-out queue found
//     in traditional I/O controllers and the baseline systems; it
//     forbids context switches at the hardware level.
//   - Shadow is the one-entry shadow register that each I/O pool
//     exposes to the global scheduler.
package queue

import (
	"fmt"

	"ioguard/internal/slot"
)

// Handle identifies an entry inside a PQ for random access. Handles
// are never reused within one queue's lifetime.
type Handle int64

// node is one priority-queue entry together with its "additional slot"
// of parameters (the deadline key used for EDF ordering).
type node[T any] struct {
	key    slot.Time // absolute deadline (EDF priority)
	seq    int64     // insertion sequence, breaks ties FIFO
	handle Handle
	value  T
	pos    int // index in the heap array
}

// PQ is a deadline-ordered random-access priority queue. The zero
// value is not usable; call NewPQ. Min returns the entry with the
// earliest deadline, ties broken by insertion order (matching the
// deterministic hardware comparator tree).
//
// Removed entries drop their value references immediately and their
// nodes are recycled through a freelist, so steady-state push/pop
// traffic is allocation-free and popped values (e.g. *task.Job) become
// collectable at removal, not at queue growth. Handles and insertion
// sequence numbers stay monotone across recycling: node reuse never
// resurrects a stale handle or reorders FIFO tie-breaks.
type PQ[T any] struct {
	heap    []*node[T]
	byH     map[Handle]*node[T]
	free    []*node[T] // recycled nodes, values zeroed
	nextH   Handle
	nextSeq int64
	cap     int // 0 = unbounded
}

// NewPQ returns an empty priority queue. capacity limits the number of
// buffered entries, modeling the finite register file of the I/O pool;
// capacity ≤ 0 means unbounded.
func NewPQ[T any](capacity int) *PQ[T] {
	return &PQ[T]{byH: make(map[Handle]*node[T]), cap: capacity}
}

// Len returns the number of buffered entries.
func (q *PQ[T]) Len() int { return len(q.heap) }

// Cap returns the configured capacity (0 = unbounded).
func (q *PQ[T]) Cap() int { return q.cap }

// Full reports whether a bounded queue has no free entry registers.
func (q *PQ[T]) Full() bool { return q.cap > 0 && len(q.heap) >= q.cap }

// Push inserts value with the given deadline key and returns its
// handle. It fails when the queue is full.
func (q *PQ[T]) Push(key slot.Time, value T) (Handle, error) {
	if q.Full() {
		return 0, fmt.Errorf("queue: priority queue full (cap %d)", q.cap)
	}
	var n *node[T]
	if k := len(q.free) - 1; k >= 0 {
		n = q.free[k]
		q.free[k] = nil
		q.free = q.free[:k]
		n.key, n.seq, n.handle, n.value, n.pos = key, q.nextSeq, q.nextH, value, len(q.heap)
	} else {
		n = &node[T]{key: key, seq: q.nextSeq, handle: q.nextH, value: value, pos: len(q.heap)}
	}
	q.nextSeq++
	q.nextH++
	q.heap = append(q.heap, n)
	q.byH[n.handle] = n
	q.up(n.pos)
	return n.handle, nil
}

// Min returns the handle, key and value of the earliest-deadline
// entry without removing it. ok is false when the queue is empty.
func (q *PQ[T]) Min() (h Handle, key slot.Time, value T, ok bool) {
	if len(q.heap) == 0 {
		var zero T
		return 0, 0, zero, false
	}
	n := q.heap[0]
	return n.handle, n.key, n.value, true
}

// PopMin removes and returns the earliest-deadline entry.
func (q *PQ[T]) PopMin() (key slot.Time, value T, ok bool) {
	if len(q.heap) == 0 {
		var zero T
		return 0, zero, false
	}
	n := q.heap[0]
	key = n.key
	value = q.removeNode(n)
	return key, value, true
}

// Get returns the value stored under h.
func (q *PQ[T]) Get(h Handle) (value T, ok bool) {
	n, ok := q.byH[h]
	if !ok {
		var zero T
		return zero, false
	}
	return n.value, true
}

// Key returns the deadline key stored under h.
func (q *PQ[T]) Key(h Handle) (slot.Time, bool) {
	n, ok := q.byH[h]
	if !ok {
		return 0, false
	}
	return n.key, true
}

// Update rewrites the value stored under h in place (the schedulers'
// timely read/write access to the parameter slots).
func (q *PQ[T]) Update(h Handle, value T) bool {
	n, ok := q.byH[h]
	if !ok {
		return false
	}
	n.value = value
	return true
}

// Reprioritize changes the deadline key of entry h and restores the
// heap order.
func (q *PQ[T]) Reprioritize(h Handle, key slot.Time) bool {
	n, ok := q.byH[h]
	if !ok {
		return false
	}
	old := n.key
	n.key = key
	if key < old {
		q.up(n.pos)
	} else if key > old {
		q.down(n.pos)
	}
	return true
}

// Remove deletes entry h (random access removal).
func (q *PQ[T]) Remove(h Handle) (value T, ok bool) {
	n, ok := q.byH[h]
	if !ok {
		var zero T
		return zero, false
	}
	return q.removeNode(n), true
}

// Each visits every buffered entry in unspecified order.
func (q *PQ[T]) Each(visit func(h Handle, key slot.Time, value T)) {
	for _, n := range q.heap {
		visit(n.handle, n.key, n.value)
	}
}

// removeNode unlinks n from the heap and returns its value. The node's
// value is zeroed (releasing the reference) and the node recycled via
// the freelist; the vacated backing-array slot is nil'd so the array
// never pins removed nodes.
func (q *PQ[T]) removeNode(n *node[T]) T {
	i := n.pos
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	delete(q.byH, n.handle)
	if i < last {
		q.down(i)
		q.up(i)
	}
	v := n.value
	var zero T
	n.value = zero
	q.free = append(q.free, n)
	return v
}

// less orders by (key, seq): earliest deadline first, FIFO on ties.
func (q *PQ[T]) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (q *PQ[T]) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].pos = i
	q.heap[j].pos = j
}

func (q *PQ[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *PQ[T]) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q.heap) && q.less(l, m) {
			m = l
		}
		if r < len(q.heap) && q.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		q.swap(i, m)
		i = m
	}
}

// checkHeap validates the heap invariant; used by tests.
func (q *PQ[T]) checkHeap() error {
	for i := range q.heap {
		if q.heap[i].pos != i {
			return fmt.Errorf("queue: node at %d has pos %d", i, q.heap[i].pos)
		}
		l, r := 2*i+1, 2*i+2
		if l < len(q.heap) && q.less(l, i) {
			return fmt.Errorf("queue: heap violated at %d/%d", i, l)
		}
		if r < len(q.heap) && q.less(r, i) {
			return fmt.Errorf("queue: heap violated at %d/%d", i, r)
		}
	}
	return nil
}

// FIFO is a bounded first-in/first-out queue, the structure of
// conventional I/O controllers (Sec. I: "the implementation of
// traditional I/O controllers relies on FIFO queues, which forbids
// context switches at the hardware level"). The zero value is an
// unbounded empty queue.
//
// Dequeued slots are zeroed immediately (so popped values — e.g.
// *task.Job — become collectable) and the backing array is compacted
// once the dead prefix exceeds the live half, keeping memory bounded
// by the peak queue depth over arbitrarily long horizons.
type FIFO[T any] struct {
	items []T
	head  int // index of the current head within items
	cap   int // 0 = unbounded
}

// NewFIFO returns an empty FIFO; capacity ≤ 0 means unbounded.
func NewFIFO[T any](capacity int) *FIFO[T] { return &FIFO[T]{cap: capacity} }

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.items) - f.head }

// Full reports whether a bounded FIFO cannot accept another item.
func (f *FIFO[T]) Full() bool { return f.cap > 0 && f.Len() >= f.cap }

// Push enqueues v; it reports false when the FIFO is full (the
// hardware back-pressures the producer).
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		return false
	}
	f.items = append(f.items, v)
	return true
}

// Peek returns the head item without dequeuing it.
func (f *FIFO[T]) Peek() (T, bool) {
	if f.head >= len(f.items) {
		var zero T
		return zero, false
	}
	return f.items[f.head], true
}

// Pop dequeues and returns the head item.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.head >= len(f.items) {
		return zero, false
	}
	v := f.items[f.head]
	f.items[f.head] = zero
	f.head++
	if f.head > len(f.items)-f.head {
		// The dead prefix outweighs the live tail: shift the live
		// items down and zero the vacated suffix so no stale
		// references survive in the backing array. Amortized O(1):
		// the copied count is below half the elements popped since
		// the previous compaction.
		n := copy(f.items, f.items[f.head:])
		tail := f.items[n:]
		for i := range tail {
			tail[i] = zero
		}
		f.items = f.items[:n]
		f.head = 0
	}
	return v, true
}

// Each visits the queued items from head to tail.
func (f *FIFO[T]) Each(visit func(v T)) {
	for _, v := range f.items[f.head:] {
		visit(v)
	}
}

// Shadow is the one-entry shadow register of an I/O pool: the local
// scheduler loads the head operation of its pool into it, and the
// global scheduler compares deadlines across all shadow registers.
// The zero value is an empty register.
type Shadow[T any] struct {
	value T
	key   slot.Time
	valid bool
}

// Valid reports whether the register holds an operation.
func (s *Shadow[T]) Valid() bool { return s.valid }

// Load stores an operation and its deadline, overwriting any previous
// content (the local scheduler refreshed its choice).
func (s *Shadow[T]) Load(key slot.Time, v T) {
	s.key, s.value, s.valid = key, v, true
}

// Peek returns the registered operation without consuming it.
func (s *Shadow[T]) Peek() (key slot.Time, v T, ok bool) {
	if !s.valid {
		var zero T
		return 0, zero, false
	}
	return s.key, s.value, true
}

// Take consumes the registered operation (the executor accepted it).
func (s *Shadow[T]) Take() (key slot.Time, v T, ok bool) {
	key, v, ok = s.Peek()
	if ok {
		s.Clear()
	}
	return key, v, ok
}

// Clear empties the register.
func (s *Shadow[T]) Clear() {
	var zero T
	s.value, s.key, s.valid = zero, 0, false
}
