// Command ioguard-load drives the trial server with sustained
// concurrent load and reports the achieved trial rate plus the
// server-side latency breakdown (queue wait, batch execution, batch
// size) carried in every streamed result line. It doubles as the
// CI smoke harness: with -assert it fails the process unless the run
// saw zero transport/protocol errors, every accepted request streamed
// back exactly its trial count (no accepted-but-lost work), and the
// optional -min-tps / -expect-rejects conditions hold. In -self mode
// it spins an in-process server first, so one command exercises the
// full admit → batch → execute → stream path and can cross-check the
// server's own admission counters against the client's observations.
//
// Usage:
//
//	ioguard-load -addr http://127.0.0.1:8080 -clients 32 -duration 10s
//	ioguard-load -self -clients 16 -duration 3s -assert -min-tps 1000
//	ioguard-load -self -queue-depth 64 -clients 32 -expect-rejects -assert
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ioguard/internal/cliflags"
	"ioguard/internal/metrics"
	"ioguard/internal/server"
)

type counters struct {
	requests       atomic.Int64 // POSTs issued
	accepted       atomic.Int64 // 200 responses
	rejected       atomic.Int64 // 429 responses
	errors         atomic.Int64 // transport/protocol/trial errors
	trialsReturned atomic.Int64 // result lines read
	trialsLost     atomic.Int64 // accepted lines that never arrived
}

// loadEps is the rank-error bound of the latency sketches: 0.5% of
// ranks, tight enough that p50/p99 over a load run are stable.
const loadEps = 0.005

// clientTimings is one client goroutine's latency recorders. Each is
// a KLL-backed mergeable sketch, so the final report folds every
// connection's observations into one true cross-connection
// distribution — counts, means and extrema fold exactly, quantiles
// within ε·n ranks — with no shared mutex on the hot path and memory
// bounded regardless of how many trials stream back.
type clientTimings struct {
	clientMs  *metrics.Streaming // whole-request round trip
	queueWait *metrics.Streaming // server-reported, per trial
	execMs    *metrics.Streaming
	batchSize *metrics.Streaming
}

func newClientTimings(client int) *clientTimings {
	rec := func(ch uint64) *metrics.Streaming {
		return metrics.NewStreamingKLL(loadEps, uint64(client+1)*0x9E3779B97F4A7C15^ch)
	}
	return &clientTimings{rec(0), rec(1), rec(2), rec(3)}
}

func (t *clientTimings) addServer(tm serverTiming) {
	t.queueWait.Add(tm.QueueWaitMs)
	t.execMs.Add(tm.ExecMs)
	t.batchSize.Add(float64(tm.BatchSize))
}

// mergeClientTimings folds the per-client recorders in client-index
// order — the same fixed-fold-order rule as the sweep aggregates, so
// a run's report is a pure function of what each client observed.
func mergeClientTimings(per []*clientTimings) (*clientTimings, error) {
	out := newClientTimings(len(per))
	for _, tc := range per {
		for _, pair := range [][2]*metrics.Streaming{
			{out.clientMs, tc.clientMs},
			{out.queueWait, tc.queueWait},
			{out.execMs, tc.execMs},
			{out.batchSize, tc.batchSize},
		} {
			if err := pair[0].Merge(pair[1]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

type serverTiming struct {
	QueueWaitMs float64 `json:"queue_wait_ms"`
	ExecMs      float64 `json:"exec_ms"`
	BatchSize   int     `json:"batch_size"`
}

// resultLine is the subset of the server's NDJSON line the client
// needs.
type resultLine struct {
	Error  string       `json:"error"`
	Timing serverTiming `json:"timing"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "server base URL (empty with -self)")
		self     = flag.Bool("self", false, "spin an in-process server and load it (no network)")
		clients  = flag.Int("clients", 16, "concurrent client goroutines")
		duration = flag.Duration("duration", 5*time.Second, "how long to sustain the load")
		perReq   = flag.Int("trials-per-req", 4, "trials per POST /v1/trials request")
		system   = flag.String("system", "ioguard-70", "system spec for the generated trials")
		vms      = flag.Int("vms", 2, "VMs per trial")
		util     = flag.Float64("util", 0.5, "per-device target utilization")
		hps      = flag.Int("hyperperiods", 1, "horizon in hyper-periods per trial")
		seedBase = flag.Int64("seed-base", 1, "base seed; each request perturbs it")
		vary     = flag.Bool("vary-seeds", false, "give every request a distinct workload seed (costs a workload regeneration per request)")

		// -self server knobs.
		batchSize  = flag.Int("batch-size", 64, "self-mode: max trials per batch")
		batchWait  = flag.Duration("batch-wait", 2*time.Millisecond, "self-mode: batch flush wait")
		queueDepth = flag.Int("queue-depth", 1024, "self-mode: admission bound on queued trials")

		// Assertions.
		assert        = flag.Bool("assert", false, "exit non-zero unless the run is clean (and meets -min-tps / -expect-rejects)")
		minTPS        = flag.Float64("min-tps", 0, "assert at least this many executed trials per second")
		expectRejects = flag.Bool("expect-rejects", false, "assert admission control engaged (some 429s)")
	)
	exec := cliflags.RegisterDefault()
	flag.Parse()
	r, err := exec.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-load:", err)
		os.Exit(1)
	}

	base := *addr
	var srv *server.Server
	if *self {
		srv = server.New(server.Config{
			Batcher: server.BatcherConfig{
				BatchSize:  *batchSize,
				MaxWait:    *batchWait,
				QueueDepth: *queueDepth,
				Workers:    r.Workers,
			},
			DefaultMetrics:      r.Metrics.String(),
			DefaultShardWorkers: r.ShardWorkers,
			DefaultDrainMin:     r.DrainMin,
			DefaultDrainMax:     r.DrainMax,
		})
		ts := httptest.NewServer(srv.Handler())
		defer func() { ts.Close(); srv.Close() }()
		base = ts.URL
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "ioguard-load: need -addr or -self")
		os.Exit(1)
	}

	// One request body per distinct seed. Without -vary-seeds every
	// request shares one workload (the server normalizes each request
	// independently, so this measures execution, not generation).
	makeBody := func(reqIndex int64) []byte {
		seed := *seedBase
		if *vary {
			seed = *seedBase + reqIndex
		}
		b, _ := json.Marshal(map[string]any{
			"system":       *system,
			"vms":          *vms,
			"util":         *util,
			"hyperperiods": *hps,
			"seed":         seed,
			"trials":       *perReq,
			"metrics":      r.Metrics.String(),
		})
		return b
	}

	var (
		cnt    counters
		reqSeq atomic.Int64
		wg     sync.WaitGroup
	)
	perClient := make([]*clientTimings, *clients)
	deadline := time.Now().Add(*duration)
	client := &http.Client{}
	for c := 0; c < *clients; c++ {
		timings := newClientTimings(c)
		perClient[c] = timings
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				body := makeBody(reqSeq.Add(1))
				start := time.Now()
				resp, err := client.Post(base+"/v1/trials", "application/json", bytes.NewReader(body))
				if err != nil {
					cnt.errors.Add(1)
					continue
				}
				cnt.requests.Add(1)
				switch resp.StatusCode {
				case http.StatusOK:
					cnt.accepted.Add(1)
					got := 0
					sc := bufio.NewScanner(resp.Body)
					sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
					for sc.Scan() {
						var line resultLine
						if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Error != "" {
							cnt.errors.Add(1)
							continue
						}
						got++
						cnt.trialsReturned.Add(1)
						timings.addServer(line.Timing)
					}
					if err := sc.Err(); err != nil {
						cnt.errors.Add(1)
					}
					if got < *perReq {
						cnt.trialsLost.Add(int64(*perReq - got))
					}
					timings.clientMs.Add(float64(time.Since(start)) / float64(time.Millisecond))
				case http.StatusTooManyRequests:
					cnt.rejected.Add(1)
					// Honour the finer-grained hint from the body if
					// present; fall back to a short pause.
					var eb struct {
						RetryAfterMs int64 `json:"retry_after_ms"`
					}
					pause := 5 * time.Millisecond
					if b, err := io.ReadAll(resp.Body); err == nil && json.Unmarshal(b, &eb) == nil && eb.RetryAfterMs > 0 {
						pause = time.Duration(eb.RetryAfterMs) * time.Millisecond
					}
					time.Sleep(pause)
				default:
					cnt.errors.Add(1)
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := *duration

	tps := float64(cnt.trialsReturned.Load()) / elapsed.Seconds()
	fmt.Printf("ioguard-load: %d clients x %s against %s\n", *clients, duration, base)
	fmt.Printf("  requests:         %d accepted=%d rejected(429)=%d errors=%d\n",
		cnt.requests.Load(), cnt.accepted.Load(), cnt.rejected.Load(), cnt.errors.Load())
	fmt.Printf("  trials executed:  %d (%.0f trials/sec)\n", cnt.trialsReturned.Load(), tps)
	fmt.Printf("  trials lost:      %d (accepted but never streamed)\n", cnt.trialsLost.Load())
	merged, err := mergeClientTimings(perClient)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-load: merging latency sketches:", err)
		os.Exit(1)
	}
	fmt.Printf("  request RTT ms:   %s\n", summarize(merged.clientMs))
	fmt.Printf("  queue wait ms:    %s\n", summarize(merged.queueWait))
	fmt.Printf("  batch exec ms:    %s\n", summarize(merged.execMs))
	fmt.Printf("  batch size:       %s\n", summarize(merged.batchSize))

	failures := 0
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failures++
			fmt.Printf("  FAIL: %s\n", fmt.Sprintf(format, args...))
		}
	}
	if *assert {
		check(cnt.errors.Load() == 0, "%d transport/protocol errors", cnt.errors.Load())
		check(cnt.trialsLost.Load() == 0, "%d accepted trials lost", cnt.trialsLost.Load())
		if *minTPS > 0 {
			check(tps >= *minTPS, "throughput %.0f trials/sec below floor %.0f", tps, *minTPS)
		}
		if *expectRejects {
			check(cnt.rejected.Load() > 0, "admission control never engaged (no 429s)")
		}
		if srv != nil {
			st := srv.Batcher().Stats()
			check(st.RejectedRequests == cnt.rejected.Load(),
				"server admission counter %d != client-observed 429s %d", st.RejectedRequests, cnt.rejected.Load())
			check(st.ExecutedTrials == st.AcceptedTrials,
				"server executed %d of %d accepted trials", st.ExecutedTrials, st.AcceptedTrials)
		}
		if failures > 0 {
			os.Exit(1)
		}
		fmt.Println("  assertions: all passed")
	}
}

// summarize renders n/mean/p50/p99/max from a merged recorder: the
// count, mean and max are fold-exact across every connection; the
// quantiles hold to ε·n ranks of the true cross-connection ordering.
func summarize(s *metrics.Streaming) string {
	if s.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}
