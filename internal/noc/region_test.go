package noc

import (
	"math/rand"
	"sort"
	"testing"

	"ioguard/internal/packet"
	"ioguard/internal/sim"
	"ioguard/internal/slot"
)

// regDelivery is one observed ejection, for trace comparison.
type regDelivery struct {
	at   slot.Time
	task uint16
	seq  uint32
	dst  packet.NodeID
}

// injection schedules one packet's entry into the NoC.
type regInjection struct {
	at  slot.Time
	pkt *packet.Packet
}

// genTraffic builds random bidirectional traffic between the
// processor rows (tiles 0..19) and the device row (tiles 20..24) of
// the default 5×5 mesh, plus some intra-band packets, sorted by slot.
func genTraffic(rng *rand.Rand, n int, lastAt slot.Time) []regInjection {
	cfg := DefaultConfig()
	devRow := cfg.Width * (cfg.Height - 1)
	var out []regInjection
	for i := 0; i < n; i++ {
		var src, dst int
		switch rng.Intn(4) {
		case 0: // request: processor → device
			src = rng.Intn(devRow)
			dst = devRow + rng.Intn(cfg.Width)
		case 1: // response: device → processor
			src = devRow + rng.Intn(cfg.Width)
			dst = rng.Intn(devRow)
		case 2: // intra processor band
			src = rng.Intn(devRow)
			dst = rng.Intn(devRow)
		default: // intra device row
			src = devRow + rng.Intn(cfg.Width)
			dst = devRow + rng.Intn(cfg.Width)
		}
		pkt := packet.New(packet.Header{
			Src:  packet.NodeID(src),
			Dst:  packet.NodeID(dst),
			Kind: packet.Request,
			Op:   packet.Write,
			Task: uint16(i),
			Seq:  uint32(i),
		}, make([]byte, rng.Intn(64)))
		out = append(out, regInjection{at: slot.Time(rng.Int63n(int64(lastAt))), pkt: pkt})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// runMonolithic drives the reference Mesh densely and returns its
// delivery trace and statistics.
func runMonolithic(t *testing.T, injs []regInjection, horizon slot.Time) ([]regDelivery, Stats) {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []regDelivery
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
		got = append(got, regDelivery{at: now, task: p.Task, seq: p.Seq, dst: p.Dst})
	}
	i := 0
	for now := slot.Time(0); now < horizon; now++ {
		for i < len(injs) && injs[i].at == now {
			m.Inject(now, injs[i].pkt)
			i++
		}
		m.Step(now)
	}
	if m.InFlight() != 0 {
		t.Fatalf("monolithic mesh still has %d packets in flight at the horizon", m.InFlight())
	}
	return got, m.Stats()
}

// regionShard adapts one Region plus its injection script to the
// sim.Clocked protocol, the way a transport shard drives it.
type regionShard struct {
	t    *testing.T
	r    *Region
	injs []regInjection
	next int
	got  []regDelivery
}

func (s *regionShard) nextEmit() slot.Time {
	if s.next < len(s.injs) {
		return s.injs[s.next].at
	}
	return slot.Never
}

func (s *regionShard) Step(now slot.Time) {
	s.r.Apply(now)
	// The boundary-horizon invariant: once slot now is gated open,
	// nothing older than now-1 can still be undelivered, and Apply has
	// consumed everything below now.
	for _, b := range []*mailbox{s.r.fromPrev, s.r.fromNext} {
		if b == nil {
			continue
		}
		if e := b.earliestArrival(); e < now {
			s.t.Errorf("mailbox holds arrival %d while stepping %d", e, now)
		}
	}
	for s.next < len(s.injs) && s.injs[s.next].at == now {
		s.r.Inject(now, s.injs[s.next].pkt)
		s.next++
	}
	s.r.Advance(now)
	s.r.Publish(now+1, s.nextEmit())
}

func (s *regionShard) NextWork(now slot.Time) slot.Time {
	next := s.r.NextWork(now)
	if s.next < len(s.injs) {
		if at := s.injs[s.next].at; at <= now {
			return now
		} else if at < next {
			next = at
		}
	}
	return next
}

func (s *regionShard) SkipTo(from, to slot.Time) {
	s.r.SkipTo(from, to)
	s.r.Publish(to, s.nextEmit())
}

// buildRegionShards partitions the default mesh into processor rows
// vs device row and splits the injections by source band.
func buildRegionShards(t *testing.T, injs []regInjection) []*regionShard {
	t.Helper()
	cfg := DefaultConfig()
	regions, err := Regions(cfg, []int{cfg.Height - 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*regionShard, len(regions))
	for i, r := range regions {
		r := r
		sh := &regionShard{t: t, r: r}
		r.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
			sh.got = append(sh.got, regDelivery{at: now, task: p.Task, seq: p.Seq, dst: p.Dst})
		}
		for _, in := range injs {
			if r.Owns(in.pkt.Src) {
				sh.injs = append(sh.injs, in)
			}
		}
		shards[i] = sh
	}
	return shards
}

// mergedTrace interleaves per-shard delivery traces in (slot, shard)
// order — the monolithic phase-2 order, since band 0 holds the lower
// router indices.
func mergedTrace(shards []*regionShard) []regDelivery {
	heads := make([]int, len(shards))
	var out []regDelivery
	for {
		best := -1
		for i, sh := range shards {
			if heads[i] >= len(sh.got) {
				continue
			}
			if best < 0 || sh.got[heads[i]].at < shards[best].got[heads[best]].at {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, shards[best].got[heads[best]])
		heads[best]++
	}
}

func mergedStats(shards []*regionShard) Stats {
	var s Stats
	for _, sh := range shards {
		s = s.Merge(sh.r.Stats())
	}
	return s
}

func compareTraces(t *testing.T, want, got []regDelivery) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("delivered %d packets, monolithic delivered %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("delivery %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRegionEquivalenceSequential checks that the two-band partition
// driven by the sequential laggard-first scheduler reproduces the
// monolithic mesh's delivery trace and statistics exactly.
func TestRegionEquivalenceSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		injs := genTraffic(rng, 60, 1500)
		horizon := slot.Time(2500)
		want, wantStats := runMonolithic(t, injs, horizon)
		shards := buildRegionShards(t, injs)
		set := sim.NewShardSet()
		for _, sh := range shards {
			set.Add(sh)
		}
		set.Run(horizon, nil, nil)
		compareTraces(t, want, mergedTrace(shards))
		if got := mergedStats(shards); got != wantStats {
			t.Fatalf("trial %d: region stats %+v ≠ monolithic %+v", trial, got, wantStats)
		}
	}
}

// TestRegionEquivalenceParallel drives the partition under the
// epoch-barrier parallel executor across a sweep of epoch bounds —
// including bounds that land exactly on a boundary flit's crossing
// slot — and demands the same trace for every span and worker count.
func TestRegionEquivalenceParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	injs := genTraffic(rng, 40, 600)
	horizon := slot.Time(1400)
	want, wantStats := runMonolithic(t, injs, horizon)
	for _, span := range []slot.Time{1, 7, 64, 1400} {
		shards := buildRegionShards(t, injs)
		set := sim.NewShardSet()
		for _, sh := range shards {
			set.Add(sh)
		}
		for start := slot.Time(0); start < horizon; start += span {
			end := start + span
			if end > horizon {
				end = horizon
			}
			set.RunParallel(end, nil, nil, 2)
		}
		compareTraces(t, want, mergedTrace(shards))
		if got := mergedStats(shards); got != wantStats {
			t.Fatalf("span %d: region stats %+v ≠ monolithic %+v", span, got, wantStats)
		}
	}
}

// TestRegionBoundaryAtEpochBound pins the exact edge case: a single
// request whose boundary crossing completes precisely at an epoch
// bound must be applied in the first slot of the next epoch, for every
// possible bound placement.
func TestRegionBoundaryAtEpochBound(t *testing.T) {
	pkt := packet.New(packet.Header{
		Src: 2, Dst: 22, Kind: packet.Request, Op: packet.Write, Task: 1, Seq: 1,
	}, make([]byte, 8))
	injs := []regInjection{{at: 0, pkt: pkt}}
	horizon := slot.Time(64)
	want, _ := runMonolithic(t, injs, horizon)
	if len(want) != 1 {
		t.Fatalf("monolithic delivered %d packets, want 1", len(want))
	}
	for bound := slot.Time(1); bound < horizon; bound++ {
		shards := buildRegionShards(t, injs)
		set := sim.NewShardSet()
		for _, sh := range shards {
			set.Add(sh)
		}
		set.RunParallel(bound, nil, nil, 2)
		set.RunParallel(horizon, nil, nil, 2)
		compareTraces(t, want, mergedTrace(shards))
	}
}

// TestRegionIdleBandSkips asserts the fast-forward win the partition
// exists for: traffic confined to the processor band for a short
// prefix lets both bands — the loaded one after it drains, the empty
// device row throughout — skip nearly the whole horizon instead of
// stepping it densely.
func TestRegionIdleBandSkips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var injs []regInjection
	for i := 0; i < 10; i++ {
		pkt := packet.New(packet.Header{
			Src:  packet.NodeID(rng.Intn(20)),
			Dst:  packet.NodeID(rng.Intn(20)),
			Kind: packet.Request, Op: packet.Write,
			Task: uint16(i), Seq: uint32(i),
		}, make([]byte, 16))
		injs = append(injs, regInjection{at: slot.Time(rng.Int63n(100)), pkt: pkt})
	}
	sort.SliceStable(injs, func(i, j int) bool { return injs[i].at < injs[j].at })
	horizon := slot.Time(100_000)
	want, _ := runMonolithic(t, injs, horizon)
	shards := buildRegionShards(t, injs)
	set := sim.NewShardSet()
	for _, sh := range shards {
		set.Add(sh)
	}
	set.Run(horizon, nil, nil)
	compareTraces(t, want, mergedTrace(shards))
	for i := range shards {
		st := set.Stats(i)
		if st.Stepped > 400 {
			t.Errorf("band %d stepped %d slots of %d; the idle span should be skipped", i, st.Stepped, horizon)
		}
		if st.Stepped+int64(st.Skipped) != int64(horizon) {
			t.Errorf("band %d covered %d slots, want %d", i, st.Stepped+int64(st.Skipped), horizon)
		}
	}
}

// TestRegionStaleNextWork exercises the conservative-staleness
// contract: a NextWork answer taken before a neighbor deposits a
// crossing may be early but never late, and successive published
// horizons never decrease.
func TestRegionStaleNextWork(t *testing.T) {
	pkt := packet.New(packet.Header{
		Src: 7, Dst: 21, Kind: packet.Request, Op: packet.Write, Task: 9, Seq: 9,
	}, make([]byte, 4))
	shards := buildRegionShards(t, []regInjection{{at: 0, pkt: pkt}})
	p, d := shards[0], shards[1]
	// Before the processor band runs, the device row's view is stale:
	// it may only plan a bounded hop, never a jump past the horizon.
	stale := d.NextWork(0)
	if stale == slot.Never {
		t.Fatalf("device row planned an unbounded skip with a pending cross-boundary packet")
	}
	// The device row is empty and injects nothing: publish its (vacuous)
	// horizon up front so the processor band's gate stays open — the
	// role the sequential scheduler's laggard-first order plays.
	d.r.Publish(64, slot.Never)
	var lastOb slot.Time
	deposited := slot.Never
	for now := slot.Time(0); now < 64; now++ {
		p.Step(now)
		if ob := slot.Time(p.r.obToNext.Load()); ob < lastOb {
			t.Fatalf("published horizon regressed: %d after %d", ob, lastOb)
		} else {
			lastOb = ob
		}
		if deposited == slot.Never && d.r.fromPrev.earliestArrival() < slot.Never {
			deposited = d.r.fromPrev.earliestArrival()
		}
	}
	if deposited == slot.Never {
		t.Fatal("request never crossed into the device row")
	}
	// The stale answer must not overshoot the slot at which the
	// crossing needs applying.
	if apply := deposited + 1; stale > apply {
		t.Fatalf("stale NextWork %d overshoots the crossing's apply slot %d", stale, apply)
	}
	// Re-queried after the deposit, the device row wakes in time.
	if nw := d.NextWork(0); nw > deposited+1 {
		t.Fatalf("NextWork after deposit = %d, want ≤ %d", nw, deposited+1)
	}
	// Driving the device row past the apply slot plus one local-link
	// serialization delivers the packet.
	for now := slot.Time(0); now <= deposited+1+d.r.minLink; now++ {
		d.Step(now)
	}
	if len(d.got) != 1 || d.got[0].dst != 21 {
		t.Fatalf("device row delivered %+v, want the crossed request at tile 21", d.got)
	}
}
