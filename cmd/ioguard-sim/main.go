// Command ioguard-sim runs one slot-accurate simulation of a chosen
// architecture on the automotive case-study workload and prints the
// trial metrics (and optionally a Gantt excerpt of the I/O-GUARD
// hypervisor's schedule).
//
// Usage:
//
//	ioguard-sim -system ioguard-70 -vms 8 -util 0.85 -hyperperiods 4
//	ioguard-sim -system rtxen -vms 4 -util 0.6
//	ioguard-sim -system ioguard-40 -gantt 200
//	ioguard-sim -system ioguard-70 -trials 50 -workers 4
//	ioguard-sim -system ioguard-70 -hyperperiods 64 -metrics stream
//
// With -trials N > 1 the command repeats the trial across independent
// seeds on a deterministic worker pool and prints the aggregate
// (success ratio, throughput distribution) instead of single-trial
// metrics; -workers only changes wall-clock time, never the output.
//
// -metrics selects the collector implementation: exact (default)
// buffers every completion and reports exact percentiles; stream keeps
// collector memory independent of the horizon (Welford moments plus a
// Greenwald–Khanna quantile sketch), which is what makes very long
// -hyperperiods runs tractable. Counters, throughput and min/max are
// identical in both modes. In stream mode -csv writes rows online
// through a trace.CSVSink instead of buffering the event log.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"ioguard/internal/baseline"
	"ioguard/internal/core"
	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
	"ioguard/internal/trace"
	"ioguard/internal/workload"
)

func main() {
	var (
		sysName = flag.String("system", "ioguard-70", "legacy|rtxen|bluevisor|ioguard-<pct>")
		vms     = flag.Int("vms", 4, "number of virtual machines")
		util    = flag.Float64("util", 0.7, "target device utilization")
		hps     = flag.Int("hyperperiods", 3, "horizon in workload hyper-periods")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 1, "repeat across N independent seeds and print the aggregate")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines running trials when -trials > 1 (output is identical for any value)")
		gantt   = flag.Int("gantt", 0, "print a Gantt chart of the first N slots (I/O-GUARD only, single trial)")
		csvPath = flag.String("csv", "", "write the execution trace as CSV (I/O-GUARD only, single trial)")
		byTask  = flag.Bool("bytask", false, "print per-task completion/miss statistics (single trial)")
		dense   = flag.Bool("dense", false, "step every slot instead of fast-forwarding idle regions (disables the decoupled per-device clocks; output is identical either way)")
		metrics = flag.String("metrics", "exact", "collector mode: exact (buffered, exact percentiles) or stream (bounded memory, ε-approximate percentiles)")
		shardWk = flag.Int("shard-workers", 0, "OS threads advancing one trial's device shards in parallel (< 2 = sequential; output is identical for any value)")
	)
	flag.Parse()
	mode, err := system.ParseMetricsMode(*metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-sim:", err)
		os.Exit(1)
	}
	if err := run(*sysName, *vms, *util, *hps, *seed, *trials, *workers, *gantt, *csvPath, *byTask, *dense, mode, *shardWk); err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-sim:", err)
		os.Exit(1)
	}
}

func run(sysName string, vms int, util float64, hps int, seed int64, trials, workers, gantt int, csvPath string, byTask, dense bool, mode system.MetricsMode, shardWorkers int) error {
	ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d tasks, per-device utilization %v, hyper-period %d slots\n",
		len(ts), formatUtil(workload.DeviceUtilization(ts)), ts.Hyperperiod())

	if trials > 1 {
		return runSweep(sysName, vms, util, hps, seed, trials, workers, dense, mode, shardWorkers)
	}

	// Trace plumbing. The buffered Recorder backs -gantt (it renders
	// from the event log); -csv goes through the streaming CSVSink in
	// stream mode (rows written as events happen, bounded memory) and
	// through the Recorder's buffered export in exact mode. Completion
	// events reach either via Collector.Observe — online, not an
	// after-the-run Each replay.
	rec := &trace.Recorder{}
	var sink *trace.CSVSink
	var csvFile *os.File
	if csvPath != "" && mode == system.MetricsStream {
		csvFile, err = os.Create(csvPath)
		if err != nil {
			return err
		}
		defer csvFile.Close()
		if sink, err = trace.NewCSVSink(csvFile); err != nil {
			return err
		}
	}
	wantTrace := gantt > 0 || csvPath != ""
	onExec := rec.OnExecute
	if sink != nil {
		onExec = sink.OnExecute
	}
	build, err := builderFor(sysName, onExec, wantTrace)
	if err != nil {
		return err
	}
	var captured *system.Collector
	wrapped := func(tr system.Trial, col *system.Collector) (system.System, error) {
		captured = col
		if byTask {
			col.TrackByTask()
		}
		if sink != nil {
			col.Observe(sink.OnComplete)
		} else if csvPath != "" {
			col.Observe(rec.OnComplete)
		}
		return build(tr, col)
	}
	res, err := system.Run(wrapped, system.Trial{
		VMs:          vms,
		Tasks:        ts,
		Horizon:      ts.Hyperperiod() * slot.Time(hps),
		Seed:         seed,
		Dense:        dense,
		Metrics:      mode,
		ShardWorkers: shardWorkers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("system: %s\n", sysName)
	fmt.Printf("  completed:        %d jobs (%d bytes)\n", res.Completed, res.BytesServed)
	fmt.Printf("  critical misses:  %d\n", res.CriticalMisses)
	fmt.Printf("  synthetic misses: %d\n", res.OtherMisses)
	fmt.Printf("  unfinished:       %d   dropped: %d\n", res.Unfinished, res.Dropped)
	fmt.Printf("  success:          %v\n", res.Success())
	fmt.Printf("  throughput:       %.3f MB/s\n", res.ThroughputMBps())
	fmt.Printf("  response (slots): %s\n", res.Response.String())
	if gantt > 0 {
		if rec.Len() == 0 {
			fmt.Println("(no trace recorded: -gantt is only wired for ioguard-* systems)")
		} else {
			fmt.Println()
			fmt.Print(rec.Gantt(0, slot.Time(gantt)))
		}
	}
	if byTask && captured != nil {
		fmt.Println()
		fmt.Print(system.RenderByTask(captured.ByTask()))
	}
	if csvPath != "" {
		if sink != nil {
			if err := sink.Flush(); err != nil {
				return err
			}
			fmt.Printf("streamed trace events to %s\n", csvPath)
		} else {
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteCSV(f); err != nil {
				return err
			}
			fmt.Printf("wrote %d trace events to %s\n", rec.Len(), csvPath)
		}
	}
	return nil
}

// runSweep repeats the trial across independent release seeds on the
// deterministic worker pool and prints the aggregate.
func runSweep(sysName string, vms int, util float64, hps int, seed int64, trials, workers int, dense bool, mode system.MetricsMode, shardWorkers int) error {
	ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: seed})
	if err != nil {
		return err
	}
	build, err := builderFor(sysName, nil, false)
	if err != nil {
		return err
	}
	agg, err := system.ParallelSweep(build, system.Trial{
		VMs:          vms,
		Tasks:        ts,
		Horizon:      ts.Hyperperiod() * slot.Time(hps),
		Seed:         seed,
		Dense:        dense,
		Metrics:      mode,
		ShardWorkers: shardWorkers,
	}, trials, workers)
	if err != nil {
		return err
	}
	fmt.Printf("system: %s (%d trials)\n", sysName, trials)
	fmt.Printf("  success ratio:    %.1f%% (%d/%d trials)\n", 100*agg.SuccessRatio(), agg.Successes, agg.Trials)
	fmt.Printf("  throughput MB/s:  mean=%.3f sd=%.3f min=%.3f max=%.3f\n",
		agg.Throughput.Mean(), agg.Throughput.StdDev(), agg.Throughput.Min(), agg.Throughput.Max())
	fmt.Printf("  critical misses:  mean=%.1f max=%.0f per trial\n", agg.Misses.Mean(), agg.Misses.Max())
	return nil
}

func formatUtil(m map[string]float64) string {
	parts := make([]string, 0, len(m))
	for _, dev := range []string{"ethernet", "flexray"} {
		if u, ok := m[dev]; ok {
			parts = append(parts, fmt.Sprintf("%s=%.2f", dev, u))
		}
	}
	return strings.Join(parts, " ")
}

func builderFor(name string, onExec func(slot.Time, *task.Job), wantTrace bool) (system.Builder, error) {
	switch {
	case name == "legacy":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewLegacy(tr.VMs, tr.Tasks, col)
		}, nil
	case name == "rtxen":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewRTXen(tr.VMs, tr.Tasks, col, 0)
		}, nil
	case name == "bluevisor":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewBlueVisor(tr.VMs, tr.Tasks, col)
		}, nil
	case strings.HasPrefix(name, "ioguard-"):
		var pct int
		if _, err := fmt.Sscanf(name, "ioguard-%d", &pct); err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("bad I/O-GUARD spec %q (want ioguard-<0..100>)", name)
		}
		frac := float64(pct) / 100
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			s, err := core.New(core.Config{
				VMs:         tr.VMs,
				PreloadFrac: frac,
				Mode:        hypervisor.DirectEDF,
			}, tr.Tasks, col)
			if err != nil {
				return nil, err
			}
			if wantTrace && onExec != nil {
				for _, dev := range s.Hypervisor().Devices() {
					mgr, err := s.Hypervisor().Manager(dev)
					if err != nil {
						return nil, err
					}
					mgr.OnExecute = onExec
				}
			}
			return s, nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}
