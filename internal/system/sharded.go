// Sharded execution: per-component virtual clocks for systems whose
// components are independent except for the shared release engine.
// Each shard (typically one device manager) advances through its own
// busy/idle regions on a sim.ShardSet, so one busy device no longer
// forces dense stepping of idle peers — the fast-forward win becomes
// per-device instead of all-or-nothing.

package system

import (
	"ioguard/internal/queue"
	"ioguard/internal/sim"
	"ioguard/internal/slot"
	"ioguard/internal/task"
	"ioguard/internal/vm"
)

// Shard is one independently-clocked component of a ShardedSystem. It
// satisfies sim.Clocked; implementations that keep per-slot counters
// over idle spans additionally implement sim.Skipper.
type Shard interface {
	// Devices returns the device names whose released jobs this shard
	// consumes. Every residual device must be owned by exactly one
	// shard; jobs for unowned devices fall back to System.Submit.
	Devices() []string
	// Submit delivers a job released at slot now. The runner calls it
	// with now equal to both the job's release slot and the shard's
	// local clock, immediately before Step(now) — exactly the order a
	// dense run presents submissions in.
	Submit(now slot.Time, j *task.Job)
	// Step advances the shard one slot of its local clock.
	Step(now slot.Time)
	// NextWork is the sim.Quiescer contract against the local clock.
	NextWork(now slot.Time) slot.Time
}

// ShardedSystem is a System whose components can advance on
// decoupled per-component clocks. Shards() partitions the system;
// the monolithic Step/Submit remain available for dense runs.
type ShardedSystem interface {
	System
	Shards() []Shard
}

// drainChunk bounds how many release slots a single horizon query may
// materialize while searching for the querying shard's next
// submission. Hitting the bound returns the fleet cursor as a
// conservative horizon instead — the shard advances there, re-queries,
// and the search resumes — so a long-idle device never forces the
// runner to buffer an unbounded prefix of a busy device's releases.
const drainChunk = 1024

// runSharded drives one trial on decoupled per-shard clocks. The
// fleet is drained in global release order (keeping the jitter RNG
// sequence identical to a dense run) into per-shard FIFO buffers;
// each buffered job is submitted when its shard's clock reaches the
// release slot. Because sim.ShardSet executes (slot, shard) pairs in
// lexicographic order and shards are registered in the same order the
// monolithic Step iterates them, completions reach the collector in
// exactly the dense order — byte-identical results, enforced by the
// equivalence tests.
func runSharded(shards []Shard, fleet *vm.Fleet, horizon slot.Time, fallback func(j *task.Job)) {
	set := sim.NewShardSet()
	route := make(map[string]int, len(shards))
	bufs := make([]*queue.FIFO[*task.Job], len(shards))
	for i, sh := range shards {
		set.Add(sh)
		bufs[i] = queue.NewFIFO[*task.Job](0)
		for _, d := range sh.Devices() {
			route[d] = i
		}
	}
	emit := func(j *task.Job) {
		if i, ok := route[j.Task.Device]; ok {
			bufs[i].Push(j)
			return
		}
		// No shard owns the device; hand the job to the monolithic
		// submission path (which counts the drop, like a dense run).
		fallback(j)
	}
	feed := func(i int, now slot.Time) {
		// Materialize every release up to the shard's clock. Releases
		// strictly before a shard's clock cannot exist for the shard
		// itself (its horizon stops it at its buffer head), so this
		// only pulls in the current slot's batch plus other shards'
		// backlog, bounded by their actual lag.
		for {
			nr := fleet.NextRelease()
			if nr > now {
				break
			}
			fleet.Release(nr, emit)
		}
		b := bufs[i]
		for {
			j, ok := b.Peek()
			if !ok || j.Release > now {
				break
			}
			b.Pop()
			shards[i].Submit(now, j)
		}
	}
	hz := func(i int, limit slot.Time) slot.Time {
		if j, ok := bufs[i].Peek(); ok {
			return j.Release
		}
		// Search forward for this shard's next release, materializing
		// at most drainChunk release slots before falling back to the
		// (conservative, always-safe) fleet cursor. Next-release times
		// only move later, so once the cursor passes limit no release
		// below limit can ever appear — the jump is sound permanently.
		for budget := drainChunk; ; budget-- {
			nr := fleet.NextRelease()
			if nr >= limit {
				return limit
			}
			if budget <= 0 {
				return nr
			}
			fleet.Release(nr, emit)
			if j, ok := bufs[i].Peek(); ok {
				return j.Release
			}
		}
	}
	set.Run(horizon, feed, hz)
}
