// The robustness study: every buildable system — the case-study five
// plus the BS|PART static-partitioning baseline — driven through a
// fixed menu of fault scenarios on identical workloads, scored with
// the fault-conditioned metrics (misses of perturbed jobs, delivered
// duplicates) and the ROTA-I/O-style timing-accuracy distribution.
// Beyond the paper: Sec. V measures the systems on clean transports;
// this table asks how much of I/O-GUARD's margin survives release
// jitter and a lossy, duplicating, delaying interconnect.

package experiments

import (
	"errors"
	"fmt"
	"strings"

	"ioguard/internal/faults"
	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// FaultScenario is one named fault plan of the robustness menu.
type FaultScenario struct {
	Name string
	Plan faults.Plan
}

// FaultScenarios returns the robustness menu. The plan seeds are
// derived from base so two sweeps at different -seed values realize
// different fault streams, while every system inside one sweep sees
// the identical realization.
func FaultScenarios(base int64) []FaultScenario {
	return []FaultScenario{
		{Name: "clean", Plan: faults.Plan{}},
		{Name: "jitter", Plan: faults.Plan{Seed: base + 1, ReleaseJitter: 100}},
		{Name: "drop", Plan: faults.Plan{Seed: base + 2, DropProb: 0.05}},
		{Name: "dup", Plan: faults.Plan{Seed: base + 3, DupProb: 0.05}},
		{Name: "delay", Plan: faults.Plan{Seed: base + 4, DelayProb: 0.10, DelayMax: 64}},
		{Name: "storm", Plan: faults.Plan{
			Seed: base + 5, ReleaseJitter: 100,
			DropProb: 0.02, DupProb: 0.02, DelayProb: 0.05, DelayMax: 64,
		}},
	}
}

// RobustnessConfig parameterizes the robustness sweep.
type RobustnessConfig struct {
	VMs    int
	Util   float64 // target utilization; 0 = 0.7
	Trials int     // trials per (scenario, system); ≤0 = 5
	// HyperPeriods sets the horizon in workload hyper-periods; ≤0 = 4.
	HyperPeriods int
	Seed         int64
	// Systems restricts the comparison; nil = AllSystemNames().
	Systems []string
	// Scenarios restricts the fault menu by name; nil = all.
	Scenarios []string
	// Workers/ShardWorkers/Metrics/Dense follow CaseStudyConfig: they
	// change wall-clock time only, never a byte of output.
	Workers      int
	ShardWorkers int
	Metrics      system.MetricsMode
	Dense        bool
}

// RobustnessPoint is one (scenario, system) cell.
type RobustnessPoint struct {
	Scenario string
	System   string
	Agg      *metrics.Aggregate
}

// Robustness runs the sweep: for each scenario every system executes
// the same trials — identical workload, release seed and fault
// realization — so cells differ only by architecture. Clean-scenario
// trials still opt into the accuracy recorder, putting all cells on
// the same metric footing. Cells fan across cfg.Workers goroutines
// with the deterministic fold of system.RunCells.
func Robustness(cfg RobustnessConfig) ([]RobustnessPoint, error) {
	if cfg.VMs <= 0 {
		return nil, fmt.Errorf("experiments: need VMs > 0")
	}
	if cfg.Util == 0 {
		cfg.Util = 0.7
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}
	if cfg.HyperPeriods <= 0 {
		cfg.HyperPeriods = 4
	}
	names := cfg.Systems
	if names == nil {
		names = AllSystemNames()
	}
	scenarios := FaultScenarios(cfg.Seed)
	if cfg.Scenarios != nil {
		want := map[string]bool{}
		for _, s := range cfg.Scenarios {
			want[s] = true
		}
		var kept []FaultScenario
		for _, sc := range scenarios {
			if want[sc.Name] {
				kept = append(kept, sc)
				delete(want, sc.Name)
			}
		}
		for s := range want {
			return nil, fmt.Errorf("experiments: unknown fault scenario %q", s)
		}
		scenarios = kept
	}
	builders := Builders()
	cells := make([]system.Cell, 0, len(scenarios)*cfg.Trials*len(names))
	for _, sc := range scenarios {
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := trialSeed(cfg.Seed, trial, cfg.Util)
			ts, err := workload.Generate(workload.Config{
				VMs:        cfg.VMs,
				TargetUtil: cfg.Util,
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			horizon := ts.Hyperperiod() * slot.Time(cfg.HyperPeriods)
			for _, name := range names {
				build, ok := builders[name]
				if !ok {
					return nil, fmt.Errorf("experiments: unknown system %q", name)
				}
				cells = append(cells, system.Cell{Build: build, Trial: system.Trial{
					VMs:          cfg.VMs,
					Tasks:        ts,
					Horizon:      horizon,
					Seed:         seed,
					Dense:        cfg.Dense,
					Metrics:      cfg.Metrics,
					ShardWorkers: cfg.ShardWorkers,
					Faults:       sc.Plan,
					Accuracy:     true,
				}})
			}
		}
	}
	results, err := system.RunCells(cells, cfg.Workers)
	if err != nil {
		var ce *system.CellError
		if errors.As(err, &ce) {
			sc := scenarios[ce.Index/(cfg.Trials*len(names))]
			name := names[ce.Index%len(names)]
			return nil, fmt.Errorf("experiments: %s under %s: %w", name, sc.Name, ce.Err)
		}
		return nil, err
	}
	var out []RobustnessPoint
	for si, sc := range scenarios {
		aggs := make(map[string]*metrics.Aggregate, len(names))
		for _, name := range names {
			aggs[name] = &metrics.Aggregate{}
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			for ni, name := range names {
				idx := (si*cfg.Trials+trial)*len(names) + ni
				aggs[name].AddTrial(results[idx])
			}
		}
		for _, name := range names {
			out = append(out, RobustnessPoint{Scenario: sc.Name, System: name, Agg: aggs[name]})
		}
	}
	return out, nil
}

// RenderRobustness prints the robustness table: one block per
// scenario, one row per system, with the fault-conditioned miss
// counts and the timing-accuracy tail next to the classic success
// ratio.
func RenderRobustness(points []RobustnessPoint, vms int, util float64) string {
	type keyT struct{ sc, sys string }
	cells := map[keyT]*metrics.Aggregate{}
	var scOrder []string
	scSeen := map[string]bool{}
	sysSeen := map[string]bool{}
	for _, p := range points {
		cells[keyT{p.Scenario, p.System}] = p.Agg
		if !scSeen[p.Scenario] {
			scSeen[p.Scenario] = true
			scOrder = append(scOrder, p.Scenario)
		}
		sysSeen[p.System] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — fault-conditioned timing metrics, %d VMs, util %.2f\n", vms, util)
	for _, sc := range scOrder {
		fmt.Fprintf(&b, "scenario: %s\n", sc)
		fmt.Fprintf(&b, "  %-14s %8s %9s %9s %8s %8s %10s %10s\n",
			"system", "success", "misses/t", "fmiss/t", "drops/t", "dups/t", "acc-mean", "acc-p99")
		for _, name := range AllSystemNames() {
			if !sysSeen[name] {
				continue
			}
			agg := cells[keyT{sc, name}]
			if agg == nil {
				continue
			}
			fmt.Fprintf(&b, "  %-14s %7.1f%% %9.1f %9.1f %8.1f %8.1f %10.2f %10.0f\n",
				name,
				100*agg.SuccessRatio(),
				agg.Misses.Mean(),
				agg.FaultedMisses.Mean(),
				agg.FaultDropped.Mean(),
				agg.DupDelivered.Mean(),
				agg.Accuracy.Mean(),
				agg.Accuracy.Quantile(0.99))
		}
	}
	return b.String()
}
