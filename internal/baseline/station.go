// Package baseline implements the three comparison systems of the
// evaluation (Sec. V): BS|Legacy (no virtualization, router-level
// FIFO arbitration), BS|RT-XEN (software hypervisor with real-time
// patches and I/O enhancement) and BS|BV (BlueVisor-style hardware-
// assisted virtualization with FIFO I/O queues).
//
// All three share the traditional I/O controller structure this
// paper's Sec. I identifies as the hardware-level obstacle: FIFO
// queues that forbid context switches, so an operation that has
// started occupies the device until it completes (no preemption, no
// prioritization).
package baseline

import (
	"fmt"

	"ioguard/internal/queue"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// discipline selects how a station queues waiting operations.
type discipline uint8

const (
	// globalFIFO is a single first-come queue shared by all VMs
	// (legacy I/O controllers).
	globalFIFO discipline = iota
	// perVMRoundRobin keeps one FIFO per VM and serves their heads
	// round-robin (BlueVisor's parallel per-VM buffering).
	perVMRoundRobin
)

// controllerSetupSlots is the per-operation setup cost a software-
// driven conventional controller pays before the transfer starts
// (register programming, descriptor fetch). It occupies the device,
// so it inflates the effective utilization of every baseline.
const controllerSetupSlots slot.Time = 3

// station models one I/O device with a conventional (non-preemptive)
// controller: at most one operation in service; waiting operations
// queue under the configured discipline.
type station struct {
	name    string
	disc    discipline
	setup   slot.Time // per-operation controller setup, charged at service start
	global  *queue.FIFO[*task.Job]
	perVM   []*queue.FIFO[*task.Job]
	rrNext  int
	current *task.Job
	// respond is called when an operation completes; finished is the
	// first slot after the last service slot.
	respond func(j *task.Job, finished slot.Time)

	served int64
}

// newStation builds a station. vms is required for perVMRoundRobin.
func newStation(name string, disc discipline, vms int, setup slot.Time, respond func(*task.Job, slot.Time)) (*station, error) {
	st := &station{name: name, disc: disc, setup: setup, respond: respond}
	switch disc {
	case globalFIFO:
		st.global = queue.NewFIFO[*task.Job](0)
	case perVMRoundRobin:
		if vms <= 0 {
			return nil, fmt.Errorf("baseline: station %s needs VMs for round-robin", name)
		}
		for i := 0; i < vms; i++ {
			st.perVM = append(st.perVM, queue.NewFIFO[*task.Job](0))
		}
	default:
		return nil, fmt.Errorf("baseline: unknown discipline %d", disc)
	}
	return st, nil
}

// enqueue admits an operation to the waiting queue(s).
func (st *station) enqueue(j *task.Job) error {
	switch st.disc {
	case globalFIFO:
		st.global.Push(j)
	case perVMRoundRobin:
		vm := j.Task.VM
		if vm < 0 || vm >= len(st.perVM) {
			return fmt.Errorf("baseline: station %s: vm %d out of range", st.name, vm)
		}
		st.perVM[vm].Push(j)
	}
	return nil
}

// next pops the operation the controller serves next, or nil.
func (st *station) next() *task.Job {
	switch st.disc {
	case globalFIFO:
		j, _ := st.global.Pop()
		return j
	case perVMRoundRobin:
		n := len(st.perVM)
		for k := 0; k < n; k++ {
			q := st.perVM[(st.rrNext+k)%n]
			if j, ok := q.Pop(); ok {
				st.rrNext = (st.rrNext + k + 1) % n
				return j
			}
		}
	}
	return nil
}

// step advances the controller one slot: non-preemptive service of
// the current operation, pulling the next one when idle.
func (st *station) step(now slot.Time) {
	if st.current == nil {
		st.current = st.next()
		if st.current != nil {
			st.current.Remaining += st.setup
		}
	}
	if st.current == nil {
		return
	}
	st.current.Tick(now)
	if st.current.Done() {
		j := st.current
		st.current = nil
		st.served++
		st.respond(j, now+1)
	}
}

// pendingJobs visits queued and in-service operations.
func (st *station) pendingJobs(visit func(j *task.Job)) {
	if st.current != nil {
		visit(st.current)
	}
	switch st.disc {
	case globalFIFO:
		st.global.Each(visit)
	case perVMRoundRobin:
		for _, q := range st.perVM {
			q.Each(visit)
		}
	}
}

// busy reports whether the controller has an operation in service or
// waiting; a busy station needs every slot (non-preemptive service
// progresses one slot at a time).
func (st *station) busy() bool { return st.current != nil || st.backlog() > 0 }

// backlog returns the number of waiting (not in-service) operations.
func (st *station) backlog() int {
	switch st.disc {
	case globalFIFO:
		return st.global.Len()
	case perVMRoundRobin:
		n := 0
		for _, q := range st.perVM {
			n += q.Len()
		}
		return n
	}
	return 0
}
