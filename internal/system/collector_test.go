package system

import (
	"math"
	"math/rand"
	"testing"

	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestParseMetricsMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want MetricsMode
	}{{"exact", MetricsExact}, {"", MetricsExact}, {"stream", MetricsStream}, {"streaming", MetricsStream},
		{"stream-gk", MetricsStreamGK}, {"gk", MetricsStreamGK}} {
		got, err := ParseMetricsMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMetricsMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMetricsMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if MetricsExact.String() != "exact" || MetricsStream.String() != "stream" || MetricsStreamGK.String() != "stream-gk" {
		t.Error("mode String() does not round-trip the CLI spelling")
	}
}

// TestResultCensoringEdges nails the horizon boundaries of Result's
// classification: a completion at slot 0, a completion exactly at its
// deadline, a pending job whose deadline equals the horizon
// (censored — strict <), and one whose deadline is one slot inside it
// (a miss).
func TestResultCensoringEdges(t *testing.T) {
	for _, mode := range []MetricsMode{MetricsExact, MetricsStream, MetricsStreamGK} {
		c := NewCollectorFor(mode, 8)
		safety := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 20, WCET: 1, Deadline: 10, OpBytes: 4}
		// Completed at slot 0: zero response, zero tardiness, on time.
		atZero := task.NewJob(safety, 0, 0)
		c.Complete(atZero, 0)
		// Completed exactly at the deadline: on time (miss is strict >).
		onEdge := task.NewJob(safety, 1, 20) // deadline 30
		c.Complete(onEdge, 30)
		// Completed exactly at the horizon, one past its deadline.
		lateAtHorizon := task.NewJob(safety, 2, 89) // deadline 99
		c.Complete(lateAtHorizon, 100)
		fs := &fakeSystem{}
		pendAtHorizon := task.NewJob(safety, 3, 90) // deadline 100 == horizon → censored
		pendInside := task.NewJob(safety, 4, 89)    // deadline 99 < horizon → miss
		fs.queue = append(fs.queue, pendAtHorizon, pendInside)
		fs.at = append(fs.at, 1000, 1000)
		res := c.Result(fs, 100)
		if res.Completed != 3 {
			t.Errorf("%v: Completed = %d, want 3", mode, res.Completed)
		}
		if res.CriticalMisses != 2 { // lateAtHorizon + pendInside
			t.Errorf("%v: CriticalMisses = %d, want 2", mode, res.CriticalMisses)
		}
		if res.Unfinished != 2 {
			t.Errorf("%v: Unfinished = %d, want 2", mode, res.Unfinished)
		}
		if res.Response.Min() != 0 {
			t.Errorf("%v: slot-0 completion should give response min 0, got %v", mode, res.Response.Min())
		}
		if got := res.Tardiness.Max(); got != 1 {
			t.Errorf("%v: tardiness max = %v, want 1 (completion one past deadline)", mode, got)
		}
	}
}

// TestStreamCollectorMatchesExact runs the same randomized completion
// stream through both modes: counters must agree exactly, moments to
// float tolerance, percentiles within the sketch's rank bound.
func TestStreamCollectorMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	exact := NewCollector(0)
	stream := NewStreamCollector()
	safety := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 20, WCET: 1, Deadline: 10, OpBytes: 64}
	synth := &task.Sporadic{ID: 1, Kind: task.Synthetic, Period: 20, WCET: 1, Deadline: 10, OpBytes: 16}
	for i := 0; i < 20000; i++ {
		tk := safety
		if rng.Intn(3) == 0 {
			tk = synth
		}
		rel := slot.Time(i)
		j1 := task.NewJob(tk, i, rel)
		j2 := task.NewJob(tk, i, rel)
		at := rel + slot.Time(rng.Intn(25))
		exact.Complete(j1, at)
		stream.Complete(j2, at)
	}
	fs := &fakeSystem{}
	re := exact.Result(fs, 1<<30)
	rs := stream.Result(fs, 1<<30)
	if re.Completed != rs.Completed || re.CriticalMisses != rs.CriticalMisses ||
		re.OtherMisses != rs.OtherMisses || re.BytesServed != rs.BytesServed {
		t.Fatalf("counters diverge: exact %+v stream %+v", re, rs)
	}
	if re.Response.Min() != rs.Response.Min() || re.Response.Max() != rs.Response.Max() {
		t.Errorf("min/max diverge: %v/%v vs %v/%v",
			re.Response.Min(), re.Response.Max(), rs.Response.Min(), rs.Response.Max())
	}
	for _, what := range []struct {
		name string
		e, s metrics.Recorder
	}{{"response", re.Response, rs.Response}, {"tardiness", re.Tardiness, rs.Tardiness}} {
		if math.Abs(what.e.Mean()-what.s.Mean()) > 1e-9*(1+math.Abs(what.e.Mean())) {
			t.Errorf("%s mean: %v vs %v", what.name, what.e.Mean(), what.s.Mean())
		}
		if math.Abs(what.e.Variance()-what.s.Variance()) > 1e-6*(1+what.e.Variance()) {
			t.Errorf("%s variance: %v vs %v", what.name, what.e.Variance(), what.s.Variance())
		}
		for _, p := range []float64{50, 95, 99} {
			ep, sp := what.e.Percentile(p), what.s.Percentile(p)
			// Responses live on a small integer grid; the ε rank bound
			// translates to a small value distance here. Accept a few
			// grid steps.
			if math.Abs(ep-sp) > 2 {
				t.Errorf("%s p%g: exact %v stream %v", what.name, p, ep, sp)
			}
		}
	}
}

// TestStreamCollectorRetainsNoBuffer is the memory claim at the
// collector level: streaming mode must not keep per-completion state.
func TestStreamCollectorRetainsNoBuffer(t *testing.T) {
	c := NewStreamCollector()
	tk := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 10, WCET: 1, Deadline: 10}
	for i := 0; i < 5000; i++ {
		c.Complete(task.NewJob(tk, i, slot.Time(i)), slot.Time(i+3))
	}
	if len(c.done) != 0 || cap(c.done) != 0 {
		t.Errorf("stream collector buffered %d completions (cap %d), want none", len(c.done), cap(c.done))
	}
	if c.Completed() != 5000 {
		t.Errorf("Completed = %d, want 5000", c.Completed())
	}
	visited := 0
	c.Each(func(*task.Job, slot.Time) { visited++ })
	if visited != 0 {
		t.Errorf("Each visited %d completions in stream mode, want 0", visited)
	}
}

// TestObserveSeesCompletionsOnline: an Observe sink receives exactly
// the stream Complete records, in order, in both modes.
func TestObserveSeesCompletionsOnline(t *testing.T) {
	for _, mode := range []MetricsMode{MetricsExact, MetricsStream, MetricsStreamGK} {
		c := NewCollectorFor(mode, 4)
		tk := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 10, WCET: 1, Deadline: 10}
		var got []slot.Time
		c.Observe(func(j *task.Job, at slot.Time) { got = append(got, at) })
		for i := 0; i < 5; i++ {
			c.Complete(task.NewJob(tk, i, slot.Time(i)), slot.Time(2*i))
		}
		if len(got) != 5 {
			t.Fatalf("%v: observer saw %d completions, want 5", mode, len(got))
		}
		for i, at := range got {
			if at != slot.Time(2*i) {
				t.Errorf("%v: observation %d at %d, want %d", mode, i, at, 2*i)
			}
		}
	}
}

// TestObserveResponseFeedsHistogramOnline: the online histogram sink
// matches a post-hoc replay of the exact buffer.
func TestObserveResponseFeedsHistogramOnline(t *testing.T) {
	online, err := metrics.NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := metrics.NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(0)
	c.ObserveResponse(online)
	tk := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 10, WCET: 1, Deadline: 10}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		rel := slot.Time(i)
		c.Complete(task.NewJob(tk, i, rel), rel+slot.Time(rng.Intn(120)))
	}
	c.Each(func(j *task.Job, at slot.Time) { replay.Add(float64(at - j.Release)) })
	if online.N() != replay.N() {
		t.Fatalf("online n=%d, replay n=%d", online.N(), replay.N())
	}
	for i := 0; i < 10; i++ {
		if online.Bucket(i) != replay.Bucket(i) {
			t.Errorf("bucket %d: online %d, replay %d", i, online.Bucket(i), replay.Bucket(i))
		}
	}
	// Result's recorder view still answers through the tee.
	res := c.Result(&fakeSystem{}, 1<<30)
	if res.Response.N() != 500 {
		t.Errorf("teed recorder lost observations: n=%d", res.Response.N())
	}
}

// TestTrackByTaskMatchesReplay: online per-task stats equal the exact
// mode's replay-derived ones.
func TestTrackByTaskMatchesReplay(t *testing.T) {
	tracked := NewStreamCollector()
	tracked.TrackByTask()
	replayed := NewCollector(0)
	t0 := &task.Sporadic{ID: 0, Name: "a", Kind: task.Safety, Period: 10, WCET: 1, Deadline: 5}
	t1 := &task.Sporadic{ID: 1, Name: "b", Kind: task.Synthetic, Period: 10, WCET: 1, Deadline: 5}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		tk := t0
		if i%2 == 1 {
			tk = t1
		}
		rel := slot.Time(i)
		at := rel + slot.Time(rng.Intn(12))
		tracked.Complete(task.NewJob(tk, i, rel), at)
		replayed.Complete(task.NewJob(tk, i, rel), at)
	}
	on, off := tracked.ByTask(), replayed.ByTask()
	if len(on) != len(off) {
		t.Fatalf("tracked %d tasks, replay %d", len(on), len(off))
	}
	for id, want := range off {
		got := on[id]
		if got == nil {
			t.Fatalf("task %d missing from tracked stats", id)
		}
		if got.Completed != want.Completed || got.Misses != want.Misses {
			t.Errorf("task %d: tracked %d/%d, replay %d/%d",
				id, got.Completed, got.Misses, want.Completed, want.Misses)
		}
		if math.Abs(got.Response.Mean()-want.Response.Mean()) > 1e-9*(1+want.Response.Mean()) {
			t.Errorf("task %d mean: %v vs %v", id, got.Response.Mean(), want.Response.Mean())
		}
	}
}

// TestStreamCompleteSteadyStateAllocs: after warm-up, the streaming
// collector's Complete must not allocate — its recorders are
// bounded-memory and there is no completion log to grow.
func TestStreamCompleteSteadyStateAllocs(t *testing.T) {
	c := NewStreamCollector()
	tk := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 10, WCET: 1, Deadline: 10, OpBytes: 8}
	j := task.NewJob(tk, 0, 0)
	var x uint64 = 99
	for i := 0; i < 100_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		j.Release = slot.Time(x % 1024)
		j.Deadline = j.Release + 10
		c.Complete(j, j.Release+slot.Time(x%32))
	}
	allocs := testing.AllocsPerRun(50_000, func() {
		x = x*6364136223846793005 + 1442695040888963407
		j.Release = slot.Time(x % 1024)
		j.Deadline = j.Release + 10
		c.Complete(j, j.Release+slot.Time(x%32))
	})
	if allocs > 0.001 {
		t.Errorf("steady-state stream Complete allocates %.4f/op, want ~0", allocs)
	}
}

// TestRunStreamingMatchesExact drives a full Run in both modes: the
// scored TrialResults must agree on every exact quantity.
func TestRunStreamingMatchesExact(t *testing.T) {
	base := Trial{VMs: 2, Tasks: workload(), Horizon: 500, Seed: 3}
	exact := base
	stream := base
	stream.Metrics = MetricsStream
	re, err := Run(builder(4), exact)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(builder(4), stream)
	if err != nil {
		t.Fatal(err)
	}
	if re.Completed != rs.Completed || re.Released != rs.Released ||
		re.CriticalMisses != rs.CriticalMisses || re.OtherMisses != rs.OtherMisses ||
		re.BytesServed != rs.BytesServed || re.Unfinished != rs.Unfinished {
		t.Errorf("modes diverge on exact counters:\nexact:  %+v\nstream: %+v", re, rs)
	}
	if re.Response.Mean() != rs.Response.Mean() && math.Abs(re.Response.Mean()-rs.Response.Mean()) > 1e-9 {
		t.Errorf("response mean: %v vs %v", re.Response.Mean(), rs.Response.Mean())
	}
	if _, ok := re.Response.(*metrics.Sample); !ok {
		t.Errorf("exact mode recorder is %T, want *metrics.Sample", re.Response)
	}
	if _, ok := rs.Response.(*metrics.Streaming); !ok {
		t.Errorf("stream mode recorder is %T, want *metrics.Streaming", rs.Response)
	}
}
