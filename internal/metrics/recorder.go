// The streaming observation pipeline: a Recorder is fed one
// observation at a time and answers the summary queries the
// evaluation needs (moments, extrema, percentiles). Three
// implementations exist:
//
//   - Sample — the exact buffered recorder: keeps every value, answers
//     nearest-rank percentiles exactly. O(n) memory; the default, and
//     the reference the experiment tables are rendered from.
//   - Streaming — bounded memory: Welford running moments, exact
//     min/max, and a Greenwald–Khanna quantile sketch. Memory is
//     independent of the observation count (up to the sketch's
//     O((1/ε)·log(εn)) tuples), so long-horizon trials no longer
//     buffer every completion.
//   - Tee — duplicates each observation to side Observers (a
//     Histogram, a trace sink adapter) while delegating the summary
//     queries to a primary Recorder, so distribution views are built
//     online instead of replaying a buffer afterwards.
package metrics

// Observer is the write side of the pipeline: anything that can
// absorb one scalar observation. Histogram implements it directly.
type Observer interface {
	Add(v float64)
}

// Recorder is a full streaming statistics accumulator: the write side
// plus the summary queries of Sec. V (response-time mean, variance,
// extrema and percentiles).
type Recorder interface {
	Observer
	N() int
	Mean() float64
	Variance() float64
	StdDev() float64
	Min() float64
	Max() float64
	Percentile(p float64) float64
	String() string
}

// Compile-time conformance of the three implementations.
var (
	_ Recorder = (*Sample)(nil)
	_ Recorder = (*Streaming)(nil)
	_ Recorder = (*Tee)(nil)
	_ Observer = (*Histogram)(nil)
)

// Tee forwards every observation to the primary Recorder and to each
// attached sink. Summary queries come from the primary (promoted
// through the embedded interface), so a Tee is itself a Recorder and
// tees can nest.
type Tee struct {
	Recorder
	Sinks []Observer
}

// NewTee wraps primary so that every Add also reaches sinks.
func NewTee(primary Recorder, sinks ...Observer) *Tee {
	return &Tee{Recorder: primary, Sinks: sinks}
}

// Add records the observation in the primary and every sink.
func (t *Tee) Add(v float64) {
	t.Recorder.Add(v)
	for _, s := range t.Sinks {
		s.Add(v)
	}
}
