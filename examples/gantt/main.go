// Gantt: visualize the hypervisor's slot-level schedule — the
// P-channel running its pre-defined task in its fixed table slots,
// and the preemptive R-channel EDF interleaving two VMs' run-time
// jobs in the free slots (a later-submitted tighter-deadline job
// preempts at a slot boundary, which no FIFO controller can do).
//
//	go run ./examples/gantt
package main

import (
	"fmt"
	"log"

	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/task"
	"ioguard/internal/trace"
)

func main() {
	// σ*: the pre-defined "sensor-poll" task owns 2 of every 8 slots.
	tab, _, err := slot.Build([]slot.Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := hypervisor.New(hypervisor.Config{
		VMs:   2,
		Table: tab,
		Mode:  hypervisor.DirectEDF,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec := &trace.Recorder{}
	mgr.OnExecute = rec.OnExecute
	mgr.OnComplete = func(j *task.Job, at slot.Time) {
		fmt.Printf("t=%3d  completed %s (deadline %d, %s)\n", at, j.Task.Name, j.Deadline,
			missOrMet(at, j.Deadline))
	}

	sensor := &task.Sporadic{ID: 0, Name: "sensor-poll", VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := mgr.Preload(sensor, 0, 0); err != nil {
		log.Fatal(err)
	}

	bulk := &task.Sporadic{ID: 1, Name: "bulk-write", VM: 0, Period: 64, WCET: 14, Deadline: 60}
	urgent := &task.Sporadic{ID: 2, Name: "urgent-read", VM: 1, Period: 64, WCET: 3, Deadline: 12}

	// The bulk write arrives first; the urgent read arrives later with
	// a tighter deadline and preempts it on the next free slot.
	for now := slot.Time(0); now < 48; now++ {
		if now == 1 {
			mgr.Submit(now, task.NewJob(bulk, 0, now))
		}
		if now == 9 {
			mgr.Submit(now, task.NewJob(urgent, 0, now))
		}
		mgr.Step(now)
	}

	fmt.Println()
	fmt.Print(rec.Gantt(0, 48))
	st := mgr.Stats()
	fmt.Printf("\nP-slots used=%d  R-slots used=%d  idle=%d  preemptions=%d\n",
		st.PSlotsUsed, st.RSlotsUsed, st.SlotsIdle+st.PSlotsIdle, st.Preemptions)
}

func missOrMet(at, deadline slot.Time) string {
	if at > deadline {
		return "MISSED"
	}
	return "met"
}
