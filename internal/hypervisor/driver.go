// Driver: the virtualization driver of Sec. III-B — a pair of
// open-source real-time translators on the request and response
// paths, a standardized I/O controller, and memory banks holding the
// controller's low-level drivers. The translators bound the
// worst-case time of each translation (evidenced in BlueVisor [6]),
// which is what lets the analysis treat the request/response paths as
// constants.
package hypervisor

import (
	"fmt"

	"ioguard/internal/iodev"
	"ioguard/internal/packet"
	"ioguard/internal/slot"
	"ioguard/internal/translate"
)

// Driver encapsulates the device-specific half of the hypervisor.
type Driver struct {
	Controller iodev.Model // the standardized I/O controller's device model
	// ReqTranslateWCET bounds the request translator: virtualized
	// I/O operation → bottom-level I/O instructions.
	ReqTranslateWCET slot.Time
	// RespTranslateWCET bounds the response translator on the
	// pass-through response channel.
	RespTranslateWCET slot.Time
	// SetupWCET is the controller's per-operation setup occupancy
	// (protocol framing and register programming); the device cannot
	// start the next transfer before it completes. The hardware path
	// keeps it smaller than the software-driven controllers of the
	// baselines.
	SetupWCET slot.Time
	// DriverBankKB is the size of the memory banks storing the I/O
	// controller's drivers (loaded at system initialization).
	DriverBankKB int
}

// maxTranslatePayload bounds the payload size the translation WCETs
// are derived for (one Ethernet MTU).
const maxTranslatePayload = 1500

// NewDriver returns a driver for the given controller. The bounded
// translation costs are derived from the actual instruction programs
// of the device's translator (internal/translate): the worst request
// and response programs over all supported operations at the maximum
// payload. An invalid model falls back to the prototype's one-slot
// constants and is rejected later by Validate.
func NewDriver(m iodev.Model) Driver {
	d := Driver{Controller: m, ReqTranslateWCET: 1, RespTranslateWCET: 1, SetupWCET: 1, DriverBankKB: 4}
	tr, err := translate.NewTranslator(m)
	if err != nil {
		return d
	}
	if req, err := tr.WorstCaseRequestSlots(maxTranslatePayload); err == nil {
		d.ReqTranslateWCET = req
	}
	worstResp := slot.Time(1)
	for _, op := range []packet.Op{packet.Read, packet.Write, packet.Config} {
		if p, err := tr.TranslateResponse(op, maxTranslatePayload); err == nil {
			if w := p.WCETSlots(); w > worstResp {
				worstResp = w
			}
		}
	}
	d.RespTranslateWCET = worstResp
	if bytes, err := tr.BankBytes(); err == nil {
		bankKB := (bytes + 1023) / 1024
		if bankKB < 1 {
			bankKB = 1
		}
		d.DriverBankKB = bankKB + 3 // instruction templates + data/working banks
	}
	return d
}

// OpOverhead is the per-operation device occupancy beyond the
// transfer itself: request translation plus controller setup.
func (d Driver) OpOverhead() slot.Time { return d.ReqTranslateWCET + d.SetupWCET }

// Validate reports whether the driver is usable.
func (d Driver) Validate() error {
	if err := d.Controller.Validate(); err != nil {
		return err
	}
	if d.ReqTranslateWCET < 0 || d.RespTranslateWCET < 0 || d.SetupWCET < 0 {
		return fmt.Errorf("hypervisor: driver %s: negative translation cost", d.Controller.Name)
	}
	if d.DriverBankKB < 0 {
		return fmt.Errorf("hypervisor: driver %s: negative bank size", d.Controller.Name)
	}
	return nil
}

// RequestLatency is the bounded request-path cost the manager charges
// before a job enters its pool.
func (d Driver) RequestLatency() slot.Time { return d.ReqTranslateWCET }

// ResponseLatency is the bounded response-path cost between a job's
// last execution slot and the requester observing completion.
func (d Driver) ResponseLatency() slot.Time { return d.RespTranslateWCET }

// ServiceSlots returns the controller-busy slots for one operation of
// payloadBytes, delegated to the controller's device model.
func (d Driver) ServiceSlots(payloadBytes int) slot.Time {
	return d.Controller.ServiceSlots(payloadBytes)
}
