// Run-time table allocation: mode changes. The paper loads σ* once at
// system initialization; real deployments also hot-add and retire
// pre-defined tasks between operating modes. AllocatePeriodic places
// a new periodic task into the *free* slots of a live table (leaving
// every existing reservation untouched), and Release retires one.
// Both walk the run list instead of the slots: occupied stretches are
// jumped whole, so the cost scales with the runs crossed, not the
// window lengths.
package slot

import (
	"fmt"
)

// AllocatePeriodic reserves slots for a new periodic task in the free
// slots of the table: for every job released at offset + k·period
// within one hyper-period, the earliest free slots inside its deadline
// window are assigned. The period must divide the table length so the
// allocation repeats consistently. On failure the table is left
// unchanged.
func (t *Table) AllocatePeriodic(r Requirement) ([]Placement, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	h := Time(t.Len())
	if h == 0 {
		return nil, fmt.Errorf("slot: allocate on empty table")
	}
	if h%r.Period != 0 {
		return nil, fmt.Errorf("slot: period %d does not divide hyper-period %d", r.Period, h)
	}
	for _, rn := range t.runs {
		if rn.owner == r.ID {
			return nil, fmt.Errorf("slot: task %d already owns slots", r.ID)
		}
	}
	var assigned []Time
	rollback := func() {
		for _, s := range assigned {
			t.Clear(s)
		}
	}
	var placements []Placement
	for rel := r.Offset; rel < h; rel += r.Period {
		p := Placement{Task: r.ID, Release: rel, Deadline: rel + r.Deadline}
		need := r.WCET
		// Walk the window run by run: owned runs are skipped whole,
		// free runs donate their earliest slots — the same earliest-
		// free-first placement a per-slot scan produces.
		for s := rel; s < rel+r.Deadline && need > 0; {
			i := Time(t.index(s))
			ri := t.findRun(i)
			span := t.runEnd(ri) - i
			if t.runs[ri].owner != Free {
				s += span
				continue
			}
			take := span
			if lim := rel + r.Deadline - s; take > lim {
				take = lim
			}
			if take > need {
				take = need
			}
			for k := Time(0); k < take; k++ {
				if err := t.Assign(s+k, r.ID); err != nil {
					rollback()
					return nil, err
				}
				assigned = append(assigned, s+k)
				p.Slots = append(p.Slots, (s+k)%h)
			}
			need -= take
			s += span
		}
		if need > 0 {
			rollback()
			return nil, fmt.Errorf("%w: job released at %d short %d slots before deadline %d",
				ErrOverload, rel, need, p.Deadline)
		}
		placements = append(placements, p)
	}
	return placements, nil
}

// Release frees every slot owned by id and returns how many were
// freed. Negative ids (including Free) release nothing. One pass over
// the run list relabels the task's runs and re-merges neighbours.
func (t *Table) Release(id TaskID) int {
	if id < 0 || len(t.runs) == 0 {
		return 0
	}
	var n Time
	out := t.runs[:0]
	for i := range t.runs {
		rn := t.runs[i]
		if rn.owner == id {
			n += t.runEnd(i) - rn.start
			rn.owner = Free
		}
		if len(out) > 0 && out[len(out)-1].owner == rn.owner {
			continue // merge into the previous run
		}
		out = append(out, rn)
	}
	if n == 0 {
		return 0
	}
	t.runs = out
	t.free += int(n)
	t.freePrefix = nil
	return int(n)
}
