// Package rtos models the software half of the co-design: the guest
// RTOS (FreeRTOS in the prototype, Sec. II-A) and the per-architecture
// I/O access paths whose software costs differentiate the systems of
// the evaluation (Sec. V).
//
// In the legacy stack an application's I/O request crosses the kernel
// I/O manager and the low-level driver; under software virtualization
// (RT-Xen) it additionally traps into the VMM and is serviced by a
// software backend; under hardware-assisted virtualization
// (BlueVisor) and I/O-GUARD the kernel is bypassed by a thin
// para-virtual driver that forwards requests straight to the hardware
// hypervisor. Each hop costs CPU time (modeled in slots) and memory
// footprint (modeled as text/data/bss segments, consumed by the
// Fig. 6 reproduction in internal/footprint).
package rtos

import (
	"fmt"

	"ioguard/internal/slot"
)

// Arch identifies the system architectures compared in Sec. V.
type Arch uint8

// The four evaluated architectures, plus the static-partitioning
// baseline added for the robustness runs.
const (
	Legacy    Arch = iota // BS|Legacy: no virtualization, router-level arbitration
	RTXen                 // BS|RT-XEN: software hypervisor with RT patches
	BlueVisor             // BS|BV: hardware-assisted virtualization, FIFO I/O
	IOGuard               // the proposed system
	// Partition is BS|PART: Jailhouse-style static hardware
	// partitioning (Ramsauer et al., PAPERS.md) — each VM owns fixed
	// device-time windows, nothing is reclaimed across partitions.
	Partition
)

// Arches lists the paper's four architectures in presentation order —
// the set Fig. 6 (footprint) iterates. BS|PART joins the robustness
// sweeps but not the footprint reproduction, so it is deliberately not
// listed here.
func Arches() []Arch { return []Arch{Legacy, RTXen, BlueVisor, IOGuard} }

// String returns the paper's name for the architecture.
func (a Arch) String() string {
	switch a {
	case Legacy:
		return "BS|Legacy"
	case RTXen:
		return "BS|RT-XEN"
	case BlueVisor:
		return "BS|BV"
	case IOGuard:
		return "I/O-GUARD"
	case Partition:
		return "BS|PART"
	default:
		return fmt.Sprintf("arch(%d)", uint8(a))
	}
}

// PathCost is the software cost of one I/O operation on an
// architecture, in slots (1 µs at the platform's 100 MHz clock).
type PathCost struct {
	// Request is the on-core software path from the application's
	// call to the request leaving toward the I/O subsystem (syscall,
	// kernel I/O manager, driver; or the para-virtual forward).
	Request slot.Time
	// VMMRequest is the per-operation work of a *software* hypervisor
	// backend. It is serialized across all VMs — the VMM is a single
	// software resource — which is what makes software virtualization
	// collapse as VMs are added (Obs. 4).
	VMMRequest slot.Time
	// Response is the software path from I/O completion back to the
	// application.
	Response slot.Time
}

// Total returns the end-to-end software cost of one operation.
func (p PathCost) Total() slot.Time { return p.Request + p.VMMRequest + p.Response }

// Costs returns the calibrated access-path cost of each architecture.
// The magnitudes follow the paper's qualitative ordering: software
// virtualization pays the trap-into-VMM plus backend processing on
// every operation; hardware virtualization reduces the path to a
// bounded forward; I/O-GUARD's para-virtual driver "only forwards the
// I/O requests to the hypervisor".
func Costs(a Arch) PathCost {
	switch a {
	case Legacy:
		return PathCost{Request: 3, Response: 2}
	case RTXen:
		return PathCost{Request: 6, VMMRequest: 12, Response: 8}
	case BlueVisor:
		return PathCost{Request: 2, Response: 1}
	case IOGuard:
		return PathCost{Request: 1, Response: 1}
	case Partition:
		// Jailhouse-style partitioning leaves the guest driver talking
		// almost directly to its slice of the device: a thin partition
		// trap on each side, no VMM interposition on the data path.
		return PathCost{Request: 2, Response: 2}
	default:
		return PathCost{}
	}
}

// Segment is a memory footprint in KB split by ELF segment, the
// measurement unit of Fig. 6.
type Segment struct {
	Text float64
	Data float64
	BSS  float64
}

// Total returns the segment sum in KB.
func (s Segment) Total() float64 { return s.Text + s.Data + s.BSS }

// Add returns the component-wise sum of two segments.
func (s Segment) Add(o Segment) Segment {
	return Segment{Text: s.Text + o.Text, Data: s.Data + o.Data, BSS: s.BSS + o.BSS}
}

// Scale returns the segment scaled by k.
func (s Segment) Scale(k float64) Segment {
	return Segment{Text: s.Text * k, Data: s.Data * k, BSS: s.BSS * k}
}

// seg builds a Segment from a total KB figure with the typical
// embedded-image split (≈72% text, 10% data, 18% bss).
func seg(totalKB float64) Segment {
	return Segment{Text: totalKB * 0.72, Data: totalKB * 0.10, BSS: totalKB * 0.18}
}

// HypervisorFootprint returns the run-time footprint of the
// architecture's hypervisor/VMM software. Calibration anchors
// (Sec. V-A): the legacy system has none; RT-Xen's hypervisor plus
// kernel modifications add 61 KB (129.8%) over the legacy kernel;
// BlueVisor keeps only a thin software shim; I/O-GUARD "entirely
// eliminated the software overhead of the VMM".
func HypervisorFootprint(a Arch) Segment {
	switch a {
	case RTXen:
		return seg(52)
	case BlueVisor:
		return seg(9)
	default:
		return Segment{}
	}
}

// KernelFootprint returns the guest OS kernel footprint. The legacy
// kernel is fully featured (47 KB, so that RT-Xen's +61 KB matches
// the paper's +129.8%); RT-Xen adds paravirtual kernel modifications;
// I/O-GUARD's kernel sheds the I/O manager (Sec. II-A, Fig. 3).
func KernelFootprint(a Arch) Segment {
	switch a {
	case Legacy:
		return seg(47)
	case RTXen:
		return seg(56)
	case BlueVisor:
		return seg(47)
	case IOGuard:
		return seg(43)
	default:
		return Segment{}
	}
}

// legacyDriverKB is the calibrated footprint of each full low-level
// I/O driver in the legacy stack; driver complexity tracks device
// complexity (Sec. V-A: "the complexity of the I/O device determines
// its software overhead").
var legacyDriverKB = map[string]float64{
	"spi":      4.2,
	"i2c":      4.6,
	"uart":     3.1,
	"can":      6.3,
	"ethernet": 12.8,
	"flexray":  9.4,
}

// DriverDevices returns the device names with driver footprint data,
// in a fixed presentation order.
func DriverDevices() []string {
	return []string{"spi", "i2c", "uart", "can", "ethernet", "flexray"}
}

// DriverFootprint returns the per-device I/O driver footprint of an
// architecture. RT-Xen always sustains the largest footprint (split
// front-end/back-end drivers); BlueVisor moves translation to
// hardware; I/O-GUARD keeps only a forwarding stub because "the
// implementation of I/O drivers is straightforward, as they only
// forward the I/O requests to the hypervisor".
func DriverFootprint(a Arch, device string) (Segment, error) {
	base, ok := legacyDriverKB[device]
	if !ok {
		return Segment{}, fmt.Errorf("rtos: unknown device %q", device)
	}
	switch a {
	case Legacy:
		return seg(base), nil
	case RTXen:
		return seg(base * 1.8), nil
	case BlueVisor:
		return seg(base * 0.55), nil
	case IOGuard:
		kb := base * 0.22
		if kb < 0.8 {
			kb = 0.8
		}
		return seg(kb), nil
	default:
		return Segment{}, fmt.Errorf("rtos: unknown architecture %d", a)
	}
}
