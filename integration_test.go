package ioguard

import (
	"testing"

	"ioguard/internal/experiments"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// integrationWorkload is a mid-load automotive workload shared by the
// cross-system integration tests.
func integrationWorkload(t *testing.T, vms int, util float64) TaskSet {
	t.Helper()
	ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestIntegrationDeterminism runs every system twice on the same trial
// and demands bit-identical results — the property that underpins the
// paper's "identical data input in each execution" methodology.
func TestIntegrationDeterminism(t *testing.T) {
	ts := integrationWorkload(t, 4, 0.7)
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 5}
	for name, build := range experiments.Builders() {
		a, err := system.Run(build, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := system.Run(build, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Completed != b.Completed || a.CriticalMisses != b.CriticalMisses ||
			a.OtherMisses != b.OtherMisses || a.BytesServed != b.BytesServed ||
			a.Unfinished != b.Unfinished || a.Dropped != b.Dropped {
			t.Errorf("%s: non-deterministic results:\n  a=%+v\n  b=%+v", name, a, b)
		}
	}
}

// TestIntegrationIdenticalInputs verifies all systems face the same
// released workload volume for a given seed (the release engine is
// independent of the system; only pre-loaded tasks move inside).
func TestIntegrationIdenticalInputs(t *testing.T) {
	ts := integrationWorkload(t, 4, 0.6)
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 7}
	var totals []int64
	var names []string
	for name, build := range experiments.Builders() {
		res, err := system.Run(build, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// completed + unfinished = all jobs that entered the system;
		// for I/O-GUARD the P-channel releases internally at exactly
		// the same periodic rate the fleet would have used (jitter 0),
		// so totals must agree across systems up to boundary effects
		// of one release per task.
		totals = append(totals, res.Completed+res.Unfinished)
		names = append(names, name)
	}
	for i := 1; i < len(totals); i++ {
		diff := totals[i] - totals[0]
		if diff < 0 {
			diff = -diff
		}
		if diff > int64(len(ts)) {
			t.Errorf("%s served %d jobs vs %s's %d — inputs not comparable",
				names[i], totals[i], names[0], totals[0])
		}
	}
}

// TestIntegrationPredictability checks the paper's core quality claim
// at a contended utilization: for the same inputs, I/O-GUARD completes
// jobs with (at most) the baselines' worst-case tardiness — deadlines
// hold where FIFO-based systems overrun them.
func TestIntegrationPredictability(t *testing.T) {
	ts := integrationWorkload(t, 8, 0.8)
	tr := system.Trial{VMs: 8, Tasks: ts, Horizon: ts.Hyperperiod() * 3, Seed: 11}
	builders := experiments.Builders()
	maxTard := map[string]float64{}
	misses := map[string]int64{}
	for name, build := range builders {
		res, err := system.Run(build, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		maxTard[name] = res.Tardiness.Max()
		misses[name] = res.CriticalMisses + res.OtherMisses
	}
	for _, base := range []string{"BS|Legacy", "BS|RT-XEN", "BS|BV"} {
		if maxTard["I/O-GUARD-70"] > maxTard[base] {
			t.Errorf("I/O-GUARD-70 max tardiness %.0f should not exceed %s's %.0f",
				maxTard["I/O-GUARD-70"], base, maxTard[base])
		}
		if misses["I/O-GUARD-70"] > misses[base] {
			t.Errorf("I/O-GUARD-70 misses %d should not exceed %s's %d",
				misses["I/O-GUARD-70"], base, misses[base])
		}
	}
}

// TestIntegrationAnalysisBackedSystem builds an auto-server ServerEDF
// system through the public facade and confirms the analysis-backed
// configuration misses nothing.
func TestIntegrationAnalysisBackedSystem(t *testing.T) {
	tasks := TaskSet{
		{ID: 0, VM: 0, Kind: Safety, Device: "ethernet", Period: 512, WCET: 6, Deadline: 512, OpBytes: 128},
		{ID: 1, VM: 1, Kind: Safety, Device: "ethernet", Period: 1024, WCET: 12, Deadline: 1024, OpBytes: 128},
		{ID: 2, VM: 2, Kind: Function, Device: "flexray", Period: 2048, WCET: 30, Deadline: 2048, OpBytes: 64},
		{ID: 3, VM: 3, Kind: Function, Device: "flexray", Period: 1024, WCET: 10, Deadline: 1024, OpBytes: 64},
	}
	build := func(tr Trial, col *Collector) (System, error) {
		return NewSystem(SystemConfig{
			VMs:         tr.VMs,
			Mode:        ServerEDF,
			AutoServers: true,
		}, tr.Tasks, col)
	}
	res, err := Run(build, Trial{VMs: 4, Tasks: tasks, Horizon: 16384, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 40 {
		t.Fatalf("completed only %d", res.Completed)
	}
	if res.CriticalMisses != 0 || res.OtherMisses != 0 {
		t.Errorf("analysis-backed system missed deadlines: %+v", res)
	}
}

// TestIntegrationCaseStudyServerEDF runs the real automotive workload
// (at a utilization with analytical headroom) on the fully
// analysis-backed configuration: auto-dimensioned servers, ServerEDF
// G-Sched. Everything the analysis admits must meet its deadline.
func TestIntegrationCaseStudyServerEDF(t *testing.T) {
	ts, err := GenerateWorkload(WorkloadConfig{VMs: 4, TargetUtil: 0.5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	build := func(tr Trial, col *Collector) (System, error) {
		return NewSystem(SystemConfig{
			VMs:          tr.VMs,
			Mode:         ServerEDF,
			AutoServers:  true,
			ServerPeriod: 250,
		}, tr.Tasks, col)
	}
	res, err := Run(build, Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 21})
	if err != nil {
		// Synthesis may legitimately reject a draw whose per-VM load
		// exceeds any server; that is an analysis verdict, not a bug.
		t.Skipf("synthesis rejected this draw: %v", err)
	}
	if res.Completed < 100 {
		t.Fatalf("completed only %d jobs", res.Completed)
	}
	if res.CriticalMisses != 0 || res.OtherMisses != 0 {
		t.Errorf("analysis-backed case study missed deadlines: %+v", res)
	}
}

// TestIntegrationCriticalScalingPredictsCliff ties the sensitivity
// analysis to the simulation: a workload scaled beyond its critical
// factor must be rejected by synthesis or miss deadlines; below it,
// the analysis-backed system is clean.
func TestIntegrationCriticalScalingPredictsCliff(t *testing.T) {
	tab, _, err := BuildTable([]Requirement{{ID: 0, Period: 64, WCET: 8, Deadline: 64}})
	if err != nil {
		t.Fatal(err)
	}
	ts := TaskSet{
		{ID: 0, VM: 0, Period: 256, WCET: 16, Deadline: 256},
		{ID: 1, VM: 1, Period: 512, WCET: 24, Deadline: 512},
	}
	res, err := CriticalScaling(tab, ts, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BaselineOK {
		t.Fatal("baseline should be schedulable")
	}
	if res.Alpha <= 1 {
		t.Fatalf("expected headroom, got α=%.2f", res.Alpha)
	}
	// Just beyond the critical factor the synthesis must refuse.
	scaled := make(TaskSet, len(ts))
	for i, tk := range ts {
		tk.WCET = Time(float64(tk.WCET)*(res.Alpha+0.1) + 1)
		scaled[i] = tk
	}
	if _, sysRes, err := SynthesizeServers(tab, scaled, 64); err == nil && sysRes.Schedulable {
		t.Error("scaling past the critical factor should not be schedulable")
	}
}

// TestIntegrationJobConservation: no system may lose a job. Every job
// the release engine hands over is eventually completed, still
// pending, or explicitly counted as dropped; the I/O-GUARD systems
// additionally generate their P-channel jobs internally, so their
// completion totals can only exceed the released count.
func TestIntegrationJobConservation(t *testing.T) {
	ts := integrationWorkload(t, 4, 0.75)
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 31}
	for name, build := range experiments.Builders() {
		res, err := system.Run(build, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		accounted := res.Completed + res.Unfinished + res.Dropped
		switch name {
		case "I/O-GUARD-40", "I/O-GUARD-70":
			if accounted < res.Released {
				t.Errorf("%s: released %d but accounted only %d", name, res.Released, accounted)
			}
		default:
			if accounted != res.Released {
				t.Errorf("%s: released %d ≠ completed %d + pending %d + dropped %d",
					name, res.Released, res.Completed, res.Unfinished, res.Dropped)
			}
		}
	}
}
