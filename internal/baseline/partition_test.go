package baseline

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

func partWorkload() task.Set {
	return task.Set{
		{ID: 0, VM: 0, Kind: task.Synthetic, Device: "spi", Period: 1000, WCET: 10, Deadline: 1000, OpBytes: 64},
		{ID: 1, VM: 1, Kind: task.Safety, Device: "spi", Period: 1000, WCET: 5, Deadline: 1000, OpBytes: 64},
	}
}

// TestPartitionQuiesce drives BS|PART through the quiescence protocol:
// idle when drained, never a horizon in the past, completion reached
// stepping only pinned slots.
func TestPartitionQuiesce(t *testing.T) {
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "ethernet", Period: 10000, WCET: 5, Deadline: 10000, OpBytes: 64},
	}
	col := &system.Collector{}
	sys, err := NewPartition(2, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NextWork(0); got != slot.Never {
		t.Fatalf("idle system NextWork = %d, want Never", got)
	}
	sys.Submit(0, task.NewJob(&ts[0], 0, 0))
	now := slot.Time(0)
	steps := 0
	for steps < 10000 {
		next := sys.NextWork(now)
		if next == slot.Never {
			break
		}
		if next < now {
			t.Fatalf("NextWork went backwards: at %d got %d", now, next)
		}
		now = next
		sys.Step(now)
		steps++
		now++
	}
	if col.Completed() != 1 {
		t.Fatalf("completions = %d after %d pinned steps", col.Completed(), steps)
	}
	if got := sys.NextWork(now); got != slot.Never {
		t.Errorf("drained system NextWork = %d, want Never", got)
	}
}

// TestPartitionNoReclamation pins the defining anti-property: a VM's
// request waits for its own window even while the device sits idle in
// another VM's window. VM1's job arrives during VM0's (idle) window
// and must not start before slot 32.
func TestPartitionNoReclamation(t *testing.T) {
	ts := partWorkload()
	col := &system.Collector{}
	p, err := NewPartition(2, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	p.Submit(0, task.NewJob(&ts[1], 0, 0))
	for now := slot.Time(0); now < 200; now++ {
		p.Step(now)
	}
	if col.Completed() != 1 {
		t.Fatalf("completions = %d", col.Completed())
	}
	var at slot.Time
	col.Each(func(j *task.Job, t slot.Time) { at = t })
	// Arrival at slot 2 (request path), frozen until VM1's window at
	// slot 32, setup 2 + WCET 5 finish at 39, +2 response ⇒ 41.
	if at != 41 {
		t.Errorf("VM1 completion at %d, want 41 (idle VM0 window must be wasted, not reclaimed)", at)
	}
}

// TestPartitionFreezesAcrossWindows: an operation outliving its window
// freezes — keeping its residual service — and resumes in the owner's
// next window, while the other VM's window runs undisturbed.
func TestPartitionFreezesAcrossWindows(t *testing.T) {
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Synthetic, Device: "spi", Period: 10000, WCET: 40, Deadline: 10000, OpBytes: 64},
		{ID: 1, VM: 1, Kind: task.Safety, Device: "spi", Period: 10000, WCET: 5, Deadline: 10000, OpBytes: 64},
	}
	col := &system.Collector{}
	p, err := NewPartition(2, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	p.Submit(0, task.NewJob(&ts[0], 0, 0))
	p.Submit(0, task.NewJob(&ts[1], 0, 0))
	for now := slot.Time(0); now < 500; now++ {
		p.Step(now)
	}
	if col.Completed() != 2 {
		t.Fatalf("completions = %d", col.Completed())
	}
	done := map[int]slot.Time{}
	col.Each(func(j *task.Job, t slot.Time) { done[j.Task.ID] = t })
	// VM0: starts at slot 2 with 40+2 slots of service; 30 run in
	// window [2,32), the rest freeze through VM1's window and finish 12
	// slots into window [64,96): finish 76, +2 response ⇒ 78.
	if done[0] != 78 {
		t.Errorf("VM0 overrun completed at %d, want 78 (must freeze across the foreign window)", done[0])
	}
	// VM1 is untouched by VM0's overrun: same timeline as the
	// no-reclamation test.
	if done[1] != 41 {
		t.Errorf("VM1 completion at %d, want 41 (partition isolation)", done[1])
	}
}

// TestPartitionIsolationUnderFlood mirrors the BlueVisor starvation
// test: VM0 floods the device, VM1 submits one safety op. Under
// static partitioning the victim is served inside its own first
// window regardless of the flood — but never before that window.
func TestPartitionIsolationUnderFlood(t *testing.T) {
	ts := partWorkload()
	col := &system.Collector{}
	p, err := NewPartition(2, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Submit(0, task.NewJob(&ts[0], i, 0))
	}
	p.Submit(0, task.NewJob(&ts[1], 0, 0))
	var victimDone slot.Time
	for now := slot.Time(0); now < 2000; now++ {
		p.Step(now)
	}
	col.Each(func(j *task.Job, at slot.Time) {
		if j.Task.ID == 1 {
			victimDone = at
		}
	})
	if victimDone == 0 {
		t.Fatal("victim never completed")
	}
	if victimDone <= 32 {
		t.Errorf("victim finished at %d, before its first window — reclamation leaked in", victimDone)
	}
	if victimDone > 64 {
		t.Errorf("victim finished at %d; its own window should serve it by slot 64 despite the flood", victimDone)
	}
	// Unknown devices have no configured cell: the job is dropped.
	bogus := task.Sporadic{ID: 9, VM: 0, Kind: task.Synthetic, Device: "bogus", Period: 1000, WCET: 1, Deadline: 1000}
	p.Submit(0, task.NewJob(&bogus, 0, 0))
	if p.Dropped() != 1 {
		t.Errorf("Dropped = %d after unknown-device submit, want 1", p.Dropped())
	}
}
