package task

import (
	"strings"
	"testing"
	"testing/quick"

	"ioguard/internal/slot"
)

func valid(id, vm int, t, c, d slot.Time) Sporadic {
	return Sporadic{ID: id, Name: "t", VM: vm, Period: t, WCET: c, Deadline: d}
}

func TestKindString(t *testing.T) {
	if Safety.String() != "safety" || Function.String() != "function" || Synthetic.String() != "synthetic" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestSporadicUtilization(t *testing.T) {
	tk := valid(0, 0, 10, 2, 10)
	if got := tk.Utilization(); got != 0.2 {
		t.Errorf("U = %v, want 0.2", got)
	}
	if (Sporadic{}).Utilization() != 0 {
		t.Error("zero task utilization should be 0")
	}
}

func TestSporadicValidate(t *testing.T) {
	if err := valid(0, 0, 10, 2, 8).Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := []Sporadic{
		{Period: 0, WCET: 1, Deadline: 1},
		{Period: 10, WCET: 0, Deadline: 1},
		{Period: 10, WCET: 5, Deadline: 4},
		{Period: 10, WCET: 2, Deadline: 12},
		{Period: 10, WCET: 2, Deadline: 8, VM: -1},
		{Period: 10, WCET: 2, Deadline: 8, Jitter: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid task %+v accepted", i, b)
		}
	}
}

func TestSporadicString(t *testing.T) {
	s := valid(3, 1, 10, 2, 8).String()
	if !strings.Contains(s, "τ3") || !strings.Contains(s, "T=10") {
		t.Errorf("String() = %q", s)
	}
}

func TestServerValidate(t *testing.T) {
	if err := (Server{VM: 0, Period: 10, Budget: 3}).Validate(); err != nil {
		t.Errorf("valid server rejected: %v", err)
	}
	bad := []Server{
		{Period: 0, Budget: 1},
		{Period: 10, Budget: 0},
		{Period: 10, Budget: 11},
		{VM: -1, Period: 10, Budget: 3},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid server %+v accepted", i, b)
		}
	}
}

func TestServerUtilization(t *testing.T) {
	s := Server{Period: 8, Budget: 2}
	if got := s.Utilization(); got != 0.25 {
		t.Errorf("U = %v, want 0.25", got)
	}
	if (Server{}).Utilization() != 0 {
		t.Error("zero server utilization should be 0")
	}
	if !strings.Contains(s.String(), "Π=8") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSetUtilization(t *testing.T) {
	s := Set{valid(0, 0, 10, 2, 10), valid(1, 0, 20, 5, 20)}
	if got := s.Utilization(); got != 0.45 {
		t.Errorf("U = %v, want 0.45", got)
	}
}

func TestSetHyperperiod(t *testing.T) {
	s := Set{valid(0, 0, 4, 1, 4), valid(1, 0, 6, 1, 6)}
	if got := s.Hyperperiod(); got != 12 {
		t.Errorf("H = %d, want 12", got)
	}
	if (Set{}).Hyperperiod() != 0 {
		t.Error("empty set hyperperiod should be 0")
	}
}

func TestSetValidate(t *testing.T) {
	ok := Set{valid(0, 0, 10, 1, 10), valid(1, 1, 10, 1, 10)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	dup := Set{valid(0, 0, 10, 1, 10), valid(0, 1, 10, 1, 10)}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
	bad := Set{{Period: -1, WCET: 1, Deadline: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestSetByVMAndVMs(t *testing.T) {
	s := Set{valid(0, 2, 10, 1, 10), valid(1, 0, 10, 1, 10), valid(2, 2, 10, 1, 10)}
	m := s.ByVM()
	if len(m) != 2 || len(m[2]) != 2 || len(m[0]) != 1 {
		t.Errorf("ByVM = %v", m)
	}
	vms := s.VMs()
	if len(vms) != 2 || vms[0] != 0 || vms[1] != 2 {
		t.Errorf("VMs = %v, want [0 2]", vms)
	}
}

func TestSetFilter(t *testing.T) {
	s := Set{
		{ID: 0, Kind: Safety, Period: 10, WCET: 1, Deadline: 10},
		{ID: 1, Kind: Synthetic, Period: 10, WCET: 1, Deadline: 10},
	}
	got := s.Filter(func(t Sporadic) bool { return t.Kind == Safety })
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("Filter = %v", got)
	}
}

func TestSetMaxLaxity(t *testing.T) {
	s := Set{valid(0, 0, 10, 1, 8), valid(1, 0, 20, 1, 15)}
	if got := s.MaxLaxity(); got != 5 {
		t.Errorf("MaxLaxity = %d, want 5", got)
	}
	if (Set{}).MaxLaxity() != 0 {
		t.Error("empty set MaxLaxity should be 0")
	}
}

func TestJobLifecycle(t *testing.T) {
	tk := valid(0, 0, 10, 2, 8)
	j := NewJob(&tk, 0, 100)
	if j.Deadline != 108 || j.Remaining != 2 || j.Done() {
		t.Fatalf("new job state wrong: %+v", j)
	}
	if j.ResponseTime() != slot.Never {
		t.Error("incomplete job should have Never response time")
	}
	j.Tick(100)
	if j.Done() {
		t.Error("job done after 1 of 2 slots")
	}
	j.Tick(105)
	if !j.Done() || j.Finish != 106 {
		t.Errorf("finish = %d, want 106", j.Finish)
	}
	if j.ResponseTime() != 6 {
		t.Errorf("response time = %d, want 6", j.ResponseTime())
	}
	if j.Missed(200) {
		t.Error("job finishing at 106 with deadline 108 should not be a miss")
	}
}

func TestJobMissed(t *testing.T) {
	tk := valid(0, 0, 10, 2, 4)
	j := NewJob(&tk, 0, 0)
	if j.Missed(3) {
		t.Error("not missed before deadline")
	}
	if !j.Missed(5) {
		t.Error("pending job past deadline should be missed")
	}
	j.Tick(10)
	j.Tick(11)
	if !j.Missed(0) {
		t.Error("job finished at 12 with deadline 4 should be a miss")
	}
}

func TestJobTickPanicsWhenDone(t *testing.T) {
	tk := valid(0, 0, 10, 1, 8)
	j := NewJob(&tk, 0, 0)
	j.Tick(0)
	defer func() {
		if recover() == nil {
			t.Error("Tick on completed job should panic")
		}
	}()
	j.Tick(1)
}

func TestJobString(t *testing.T) {
	tk := valid(7, 0, 10, 1, 8)
	j := NewJob(&tk, 2, 5)
	if !strings.Contains(j.String(), "τ7#2") {
		t.Errorf("String() = %q", j.String())
	}
}

func TestSetUtilizationProperty(t *testing.T) {
	// Utilization of a set equals the sum over the per-VM partition.
	f := func(raw []uint8) bool {
		var s Set
		for i, r := range raw {
			p := slot.Time(r%16) + 2
			c := slot.Time(r%3) + 1
			if c > p {
				c = p
			}
			s = append(s, Sporadic{ID: i, VM: int(r % 4), Period: p, WCET: c, Deadline: p})
		}
		var sum float64
		for _, part := range s.ByVM() {
			sum += part.Utilization()
		}
		diff := sum - s.Utilization()
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
