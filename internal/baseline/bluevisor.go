// BS|BV: BlueVisor-style hardware-assisted virtualization (Jiang &
// Audsley, RTAS'18). The hypervisor is a dedicated coprocessor, so
// I/O requests bypass both the software VMM and the NoC routers and
// reach the I/O hardware over a short bounded path — but the I/O
// buffering "remains the FIFO structure at I/O hardware level, which
// hence cannot guarantee the I/O predictability" (Sec. I): per-VM
// FIFO pools served round-robin, non-preemptively, with no deadline
// awareness.
package baseline

import (
	"fmt"
	"sort"

	"ioguard/internal/queue"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// BlueVisor is the BS|BV baseline.
type BlueVisor struct {
	tasks    task.Set
	path     rtos.PathCost
	col      *system.Collector
	stations map[string]*station
	devices  []string
	pending  *queue.PQ[*task.Job] // keyed by pool-arrival slot
	dropped  int64
}

var _ system.System = (*BlueVisor)(nil)

// NewBlueVisor builds the BlueVisor baseline.
func NewBlueVisor(vms int, ts task.Set, col *system.Collector) (*BlueVisor, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("baseline: bluevisor needs at least one VM")
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	path := rtos.Costs(rtos.BlueVisor)
	b := &BlueVisor{
		tasks:    ts,
		path:     path,
		col:      col,
		stations: make(map[string]*station),
		devices:  devicesOf(ts),
		pending:  queue.NewPQ[*task.Job](0),
	}
	// BlueVisor's hardware translators program the controller faster
	// than a software driver but still occupy it per operation.
	const bvSetupSlots = 2
	for _, dev := range b.devices {
		st, err := newStation(dev, perVMRoundRobin, vms, bvSetupSlots, func(j *task.Job, finished slot.Time) {
			if b.col != nil {
				b.col.Complete(j, finished+b.path.Response)
			}
		})
		if err != nil {
			return nil, err
		}
		b.stations[dev] = st
	}
	sort.Strings(b.devices)
	return b, nil
}

// Name returns "BS|BV".
func (b *BlueVisor) Name() string { return rtos.BlueVisor.String() }

// Arch returns rtos.BlueVisor.
func (b *BlueVisor) Arch() rtos.Arch { return rtos.BlueVisor }

// Residual returns the full workload.
func (b *BlueVisor) Residual() task.Set { return b.tasks }

// Submit forwards the job over the bounded hardware path into its
// VM's FIFO pool at the device.
func (b *BlueVisor) Submit(now slot.Time, j *task.Job) {
	b.pending.Push(now+b.path.Request, j)
}

// Step admits due jobs to their pools and services the controllers.
func (b *BlueVisor) Step(now slot.Time) {
	for {
		_, at, j, ok := b.pending.Min()
		if !ok || at > now {
			break
		}
		b.pending.PopMin()
		st, ok := b.stations[j.Task.Device]
		if !ok {
			b.dropped++
			continue
		}
		if err := st.enqueue(j); err != nil {
			b.dropped++
		}
	}
	for _, dev := range b.devices {
		b.stations[dev].step(now)
	}
}

// NextWork implements the sim.Quiescer protocol: now while any
// station holds work, otherwise the earliest pool-arrival slot.
func (b *BlueVisor) NextWork(now slot.Time) slot.Time {
	for _, dev := range b.devices {
		if b.stations[dev].busy() {
			return now
		}
	}
	next := slot.Never
	if _, at, _, ok := b.pending.Min(); ok {
		if at <= now {
			return now
		}
		next = at
	}
	return next
}

// Pending visits jobs on the hardware path or queued at controllers.
func (b *BlueVisor) Pending(visit func(j *task.Job)) {
	b.pending.Each(func(_ queue.Handle, _ slot.Time, j *task.Job) { visit(j) })
	for _, dev := range b.devices {
		b.stations[dev].pendingJobs(visit)
	}
}

// Dropped returns jobs lost at unknown devices or full queues.
func (b *BlueVisor) Dropped() int64 { return b.dropped }
