// Command ioguard-server exposes the slot-accurate simulator as an
// HTTP service: trial requests are coalesced by a batcher onto the
// deterministic worker pool (POST /v1/trials streams results back as
// NDJSON), sweeps run asynchronously through an in-memory job store
// (POST /v1/sweeps, then GET /v1/sweeps/{id}), and admission control
// answers 429 + Retry-After when the bounded queues are full.
//
// Usage:
//
//	ioguard-server -addr 127.0.0.1:8080
//	ioguard-server -batch-size 128 -batch-wait 1ms -queue-depth 4096
//	ioguard-server -workers 8 -metrics stream
//
// A server-executed trial is byte-identical to ioguard-sim at the
// same request parameters: both resolve system specs, workloads and
// seed schedules through the same shared helpers, and the streamed
// response carries the trial's rendered metrics block verbatim.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops,
// streaming handlers finish, and both execution paths drain — every
// admitted trial and queued sweep completes before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ioguard/internal/cliflags"
	"ioguard/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		batchSize  = flag.Int("batch-size", 64, "max trials coalesced into one batch")
		batchWait  = flag.Duration("batch-wait", 2*time.Millisecond, "max time an open batch waits for more trials")
		queueDepth = flag.Int("queue-depth", 1024, "admission bound on queued trials (beyond it: 429)")
		maxJobs    = flag.Int("max-jobs", 64, "admission bound on queued sweep jobs (beyond it: 429)")
		retryAfter = flag.Duration("retry-after", 250*time.Millisecond, "retry hint returned with 429 responses")
		drainWait  = flag.Duration("drain-wait", 30*time.Second, "graceful-shutdown deadline for in-flight HTTP streams")
	)
	exec := cliflags.RegisterDefault()
	flag.Parse()
	r, err := exec.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-server:", err)
		os.Exit(1)
	}

	srv := server.New(server.Config{
		Batcher: server.BatcherConfig{
			BatchSize:  *batchSize,
			MaxWait:    *batchWait,
			QueueDepth: *queueDepth,
			Workers:    r.Workers,
		},
		Jobs: server.JobStoreConfig{
			MaxJobs: *maxJobs,
			Workers: r.Workers,
		},
		RetryAfter:          *retryAfter,
		DefaultMetrics:      r.Metrics.String(),
		DefaultShardWorkers: r.ShardWorkers,
		DefaultDrainMin:     r.DrainMin,
		DefaultDrainMax:     r.DrainMax,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ioguard-server: shutting down (draining in-flight work)")
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("ioguard-server: shutdown: %v", err)
		}
		close(idle)
	}()

	log.Printf("ioguard-server: listening on %s (workers=%d batch-size=%d batch-wait=%s queue-depth=%d)",
		*addr, r.Workers, *batchSize, *batchWait, *queueDepth)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ioguard-server:", err)
		os.Exit(1)
	}
	<-idle
	// Listener is closed and streaming handlers have returned; now
	// drain the execution paths so no admitted work is lost.
	srv.Close()
	log.Printf("ioguard-server: drained, bye")
}
