// KLL (Karnin–Lang–Liberty, FOCS'16): the mergeable ε-approximate
// quantile sketch behind cross-trial aggregation. The sketch keeps a
// pyramid of compactors: level i holds items of weight 2^i, and when
// the total size outgrows the capacity budget the lowest over-full
// level is sorted and every other item (a coin decides odd or even)
// is promoted one level up at doubled weight. Each compaction
// perturbs any fixed rank by at most the compacted weight, and the
// geometric capacity schedule (top levels widest, factor 2/3 per
// level down) keeps the summed perturbation below ⌈εn⌉ with high
// probability — a bound that, unlike Greenwald–Khanna's, survives
// Merge: folding two KLL summaries of the same ε yields a summary of
// the combined stream at the same ε, which is what lets a sweep fold
// per-trial sketches into per-cell and per-sweep aggregates.
//
// Determinism: the compaction coins come from a per-sketch SplitMix64
// stream seeded from trial identity — never the math/rand global — so
// a sketch's contents are a pure function of (seed, insert sequence)
// and a merged sketch of (seeds, fold order). That is what keeps
// ParallelSweep's rendered output byte-identical for any -workers.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"
)

// kllSafety converts the advertised rank-error bound ε into the
// compactor width k = ⌈kllSafety/ε⌉. Empirically KLL's 99th-percentile
// normalized rank error sits near 2.3/k (DataSketches calibration);
// 3.0 leaves a ~30 % margin so the property tests' adversarial
// streams and K-way merges stay inside ε·n.
const kllSafety = 3.0

// kllLevelDecay is the capacity decay per level below the top (the
// paper's c): lower levels are cheaper to re-compact, so they get
// geometrically less space. 2/3 is the standard choice.
const kllLevelDecay = 2.0 / 3.0

// kllMinWidth floors every level's capacity.
const kllMinWidth = 2

// kllMaxLevels bounds the pyramid height: level weights are 2^i, so 61
// levels already cover any int64 observation count.
const kllMaxLevels = 61

// KLL is a mergeable quantile summary. The zero value is not usable;
// construct with NewKLL.
type KLL struct {
	eps    float64
	k      int
	n      int64
	rng    uint64 // SplitMix64 state for compaction coins
	levels [][]float64
}

// NewKLL returns an empty mergeable sketch with rank-error bound eps
// (clamped to (0, 0.5] via DefaultSketchEpsilon) whose compaction
// coins are seeded from seed — pass the trial seed so the sketch is a
// pure function of trial identity.
func NewKLL(eps float64, seed uint64) *KLL {
	if !(eps > 0) || eps > 0.5 {
		eps = DefaultSketchEpsilon
	}
	return &KLL{
		eps:    eps,
		k:      int(math.Ceil(kllSafety / eps)),
		rng:    splitmix64(seed ^ 0x4B4C4C736B657463), // "KLLsketc"
		levels: [][]float64{make([]float64, 0, 64)},
	}
}

// splitmix64 is the avalanche finalizer used for both seeding and the
// coin stream.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// nextBit draws one compaction coin.
func (s *KLL) nextBit() int {
	s.rng = splitmix64(s.rng)
	return int(s.rng >> 63)
}

// Epsilon returns the advertised rank-error bound.
func (s *KLL) Epsilon() float64 { return s.eps }

// N returns the number of observations absorbed.
func (s *KLL) N() int64 { return s.n }

// Tuples returns the retained item count across all levels.
func (s *KLL) Tuples() int {
	total := 0
	for _, lv := range s.levels {
		total += len(lv)
	}
	return total
}

// capacity returns level i's item budget under the current pyramid
// height: k at the top, decaying by kllLevelDecay per level down,
// floored at kllMinWidth.
func (s *KLL) capacity(level int) int {
	depth := len(s.levels) - 1 - level
	c := float64(s.k)
	for i := 0; i < depth; i++ {
		c *= kllLevelDecay
		if c < kllMinWidth {
			return kllMinWidth
		}
	}
	return int(math.Ceil(c))
}

// capacityBudget sums the per-level budgets.
func (s *KLL) capacityBudget() int {
	total := 0
	for i := range s.levels {
		total += s.capacity(i)
	}
	return total
}

// Add absorbs one observation.
func (s *KLL) Add(v float64) {
	s.levels[0] = append(s.levels[0], v)
	s.n++
	if s.Tuples() > s.capacityBudget() {
		s.compress()
	}
}

// compress compacts over-full levels until the summary fits its
// budget again. Each pass compacts the lowest level exceeding its own
// capacity (falling back to the lowest non-empty level), which keeps
// the amortized work per insert constant.
func (s *KLL) compress() {
	for s.Tuples() > s.capacityBudget() {
		target := -1
		for i := range s.levels {
			if len(s.levels[i]) > s.capacity(i) {
				target = i
				break
			}
		}
		if target < 0 {
			for i := range s.levels {
				if len(s.levels[i]) > kllMinWidth-1 && len(s.levels[i]) >= 2 {
					target = i
					break
				}
			}
		}
		if target < 0 || len(s.levels[target]) < 2 {
			return // nothing compactable; accept the overshoot
		}
		s.compactLevel(target)
	}
}

// compactLevel sorts level i, retains the smallest item when the
// count is odd (weight must be conserved exactly), promotes every
// other remaining item to level i+1 at doubled weight, and discards
// the rest. The odd/even choice is one deterministic coin.
func (s *KLL) compactLevel(i int) {
	if i+1 >= len(s.levels) {
		if len(s.levels) >= kllMaxLevels {
			return
		}
		s.levels = append(s.levels, make([]float64, 0, kllMinWidth*2))
	}
	lv := s.levels[i]
	slices.Sort(lv)
	keep := 0
	if len(lv)%2 == 1 {
		keep = 1 // lv[0] stays behind at weight 2^i
	}
	pairs := lv[keep:]
	offset := s.nextBit()
	for j := offset; j < len(pairs); j += 2 {
		s.levels[i+1] = append(s.levels[i+1], pairs[j])
	}
	s.levels[i] = lv[:keep]
}

// Merge folds other into the receiver: level-wise concatenation plus
// a re-compression. Both sketches must be KLL at the same ε. The
// coin streams combine deterministically, so a fold executed in a
// fixed order yields identical bytes on every run.
func (s *KLL) Merge(other Sketch) error {
	o, ok := other.(*KLL)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into KLL", other)
	}
	if o.eps != s.eps {
		return fmt.Errorf("metrics: KLL ε mismatch (%g vs %g)", s.eps, o.eps)
	}
	for len(s.levels) < len(o.levels) {
		s.levels = append(s.levels, make([]float64, 0, kllMinWidth*2))
	}
	for i, lv := range o.levels {
		s.levels[i] = append(s.levels[i], lv...)
	}
	s.n += o.n
	s.rng = splitmix64(s.rng ^ splitmix64(o.rng))
	if s.Tuples() > s.capacityBudget() {
		s.compress()
	}
	return nil
}

// Clone returns a deep copy (fold seeds: the first trial folded into
// an aggregate is cloned rather than aliased, so later trials cannot
// mutate a result that was already scored).
func (s *KLL) Clone() *KLL {
	c := &KLL{eps: s.eps, k: s.k, n: s.n, rng: s.rng}
	c.levels = make([][]float64, len(s.levels))
	for i, lv := range s.levels {
		c.levels[i] = append(make([]float64, 0, cap(lv)), lv...)
	}
	return c
}

// kllItem pairs a retained value with its level weight for rank
// queries.
type kllItem struct {
	v float64
	w int64
}

// items flattens the pyramid into weighted items sorted by value.
func (s *KLL) items() []kllItem {
	out := make([]kllItem, 0, s.Tuples())
	for i, lv := range s.levels {
		w := int64(1) << uint(i)
		for _, v := range lv {
			out = append(out, kllItem{v: v, w: w})
		}
	}
	slices.SortFunc(out, func(a, b kllItem) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	return out
}

// Quantile returns a value whose rank among the observations is
// within ⌈εn⌉ of the nearest-rank target ⌈q·n⌉ (q in [0,1]). An
// empty sketch returns 0, matching Sample's convention.
func (s *KLL) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	it := s.items()
	if len(it) == 0 {
		return 0
	}
	if q <= 0 {
		return it[0].v
	}
	if q >= 1 {
		return it[len(it)-1].v
	}
	target := int64(math.Ceil(q * float64(s.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, item := range it {
		cum += item.w
		if cum >= target {
			return item.v
		}
	}
	return it[len(it)-1].v
}

// String summarizes the sketch state.
func (s *KLL) String() string {
	return fmt.Sprintf("kll(ε=%g k=%d n=%d levels=%d tuples=%d)",
		s.eps, s.k, s.n, len(s.levels), s.Tuples())
}

// kllJSON is the wire form. The rng state rides along so a decoded
// sketch keeps compacting deterministically.
type kllJSON struct {
	Eps    float64     `json:"eps"`
	K      int         `json:"k"`
	N      int64       `json:"n"`
	Rng    uint64      `json:"rng"`
	Levels [][]float64 `json:"levels"`
}

// MarshalJSON emits the canonical wire form: levels are sorted first
// (semantics-preserving — compaction sorts anyway) so encode → decode
// → encode is byte-stable.
func (s *KLL) MarshalJSON() ([]byte, error) {
	for _, lv := range s.levels {
		slices.Sort(lv)
	}
	return json.Marshal(kllJSON{Eps: s.eps, K: s.k, N: s.n, Rng: s.rng, Levels: s.levels})
}

// kllMaxWireItems bounds the decoded summary size: a well-formed
// sketch holds O(k/(1−c)) ≈ 3k items, so anything past a generous
// multiple is a hostile or corrupt payload, not a sketch.
const kllMaxWireItems = 1 << 22

// UnmarshalJSON decodes and *revalidates* — wire state is never
// trusted. The observation count is recomputed from the level sizes
// and must match the stored n (level weights are 2^i, so the item
// counts fully determine n); every value must be finite; the pyramid
// height and total size are bounded before any allocation-driven
// work. See TestKLLUnmarshalRejectsMalformed for the case table.
func (s *KLL) UnmarshalJSON(data []byte) error {
	var w kllJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if !(w.Eps > 0) || w.Eps > 0.5 {
		return fmt.Errorf("metrics: KLL wire ε %g outside (0, 0.5]", w.Eps)
	}
	if w.K < kllMinWidth || w.K > kllMaxWireItems {
		return fmt.Errorf("metrics: KLL wire k %d outside [%d, %d]", w.K, kllMinWidth, kllMaxWireItems)
	}
	if len(w.Levels) == 0 || len(w.Levels) > kllMaxLevels {
		return fmt.Errorf("metrics: KLL wire has %d levels, want 1..%d", len(w.Levels), kllMaxLevels)
	}
	total := 0
	var n int64
	for i, lv := range w.Levels {
		total += len(lv)
		if total > kllMaxWireItems {
			return fmt.Errorf("metrics: KLL wire exceeds %d items", kllMaxWireItems)
		}
		weight := int64(1) << uint(i)
		n += int64(len(lv)) * weight
		for _, v := range lv {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("metrics: KLL wire holds non-finite value at level %d", i)
			}
		}
	}
	if n < 0 {
		return fmt.Errorf("metrics: KLL wire item counts overflow int64")
	}
	if n != w.N {
		return fmt.Errorf("metrics: KLL wire n=%d disagrees with recomputed %d", w.N, n)
	}
	s.eps = w.Eps
	s.k = w.K
	s.n = n // recomputed, not the wire's word
	s.rng = w.Rng
	s.levels = w.Levels
	if len(s.levels[0]) == 0 && cap(s.levels[0]) == 0 {
		s.levels[0] = make([]float64, 0, 64)
	}
	if s.Tuples() > s.capacityBudget() {
		s.compress()
	}
	return nil
}
