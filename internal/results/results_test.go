package results

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ioguard/internal/metrics"
)

// sketchFor builds a small merged recorder for synthetic runs.
func sketchFor(t *testing.T, seed uint64, scale float64) *metrics.Streaming {
	t.Helper()
	s := metrics.NewStreamingKLL(0.01, seed)
	rng := rand.New(rand.NewSource(int64(seed)))
	for i := 0; i < 5000; i++ {
		s.Add(rng.ExpFloat64() * scale)
	}
	return s
}

func run(t *testing.T, stamp string, sweepP99Scale float64, speedup float64) Report {
	t.Helper()
	return Report{
		Schema:    ReportSchema,
		Timestamp: stamp,
		Suite:     "nightly",
		Results: []Result{
			{Name: "CaseStudy1000/4vm/stream", Iterations: 1, NsPerOp: 1e9},
		},
		Speedups: []Speedup{
			{Name: "RunSparse", DenseNsPerOp: speedup, FFNsPerOp: 1, Speedup: speedup},
		},
		SweepSketches: []SweepSketch{{
			Suite: "nightly", Sweep: "CaseStudy1000/4vm/stream", System: "I/O-GUARD-70",
			Trials: 1000, SuccessRatio: 0.99, ThroughputMean: 5,
			Response:  sketchFor(t, 7, sweepP99Scale),
			Tardiness: sketchFor(t, 8, 0.01),
		}},
	}
}

// TestDecodeV1Fixture: the pre-change BENCH_sim.json (committed
// before the v2 schema existed) must keep decoding — the back-compat
// contract of the schema bump.
func TestDecodeV1Fixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "bench_sim_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	traj, err := DecodeTrajectory(data)
	if err != nil {
		t.Fatalf("v1 fixture rejected: %v", err)
	}
	if len(traj.Runs) != 1 {
		t.Fatalf("fixture decoded to %d runs, want 1", len(traj.Runs))
	}
	r := traj.Runs[0]
	if r.Schema != ReportSchemaV1 || len(r.Results) == 0 || len(r.Speedups) == 0 {
		t.Fatalf("fixture run lost content: schema=%q results=%d speedups=%d",
			r.Schema, len(r.Results), len(r.Speedups))
	}
	if len(r.SweepSketches) != 0 {
		t.Fatalf("v1 run decoded phantom sweep sketches")
	}
	// And the analysis pipeline runs on it without findings (single
	// run → no verdict).
	a := Analyze(traj, AnalysisConfig{})
	if a.Regressed() {
		t.Fatalf("single v1 run produced regressions: %v", a.Regressions)
	}
}

// TestAppendUpgradesV1: appending a v2 run onto the v1 single-report
// fixture wraps it as run 0 and writes a v2 trajectory whose old run
// survives a second decode.
func TestAppendUpgradesV1(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_sim.json")
	src, err := os.ReadFile(filepath.Join("testdata", "bench_sim_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := AppendRun(path, run(t, "2026-01-02T00:00:00Z", 100, 5))
	if err != nil {
		t.Fatal(err)
	}
	traj, err := DecodeTrajectory(data)
	if err != nil {
		t.Fatalf("appended trajectory rejected: %v", err)
	}
	if traj.Schema != TrajectorySchema || len(traj.Runs) != 2 {
		t.Fatalf("append produced schema=%q runs=%d, want v2/2", traj.Schema, len(traj.Runs))
	}
	if traj.Runs[0].Schema != ReportSchemaV1 {
		t.Fatalf("v1 run 0 rewritten to %q", traj.Runs[0].Schema)
	}
	if len(traj.Runs[1].SweepSketches) != 1 {
		t.Fatalf("v2 run lost its sweep sketches")
	}
	// Round-trip again: append on top of the mixed file.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	data2, err := AppendRun(path, run(t, "2026-01-03T00:00:00Z", 100, 5))
	if err != nil {
		t.Fatal(err)
	}
	traj2, err := DecodeTrajectory(data2)
	if err != nil || len(traj2.Runs) != 3 {
		t.Fatalf("second append: %v, runs=%d", err, len(traj2.Runs))
	}
}

// TestDecodeRejectsMalformed: schema and sanity gates.
func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"unknown schema", `{"schema":"ioguard/other/v9"}`, "unknown schema"},
		{"no schema", `{"runs":[]}`, "unknown schema"},
		{"negative ns", `{"schema":"ioguard/bench_sim/v2","results":[{"name":"x","ns_per_op":-1}]}`, "negative"},
		{"empty result name", `{"schema":"ioguard/bench_sim/v2","results":[{"name":""}]}`, "empty name"},
		{"sketch missing key", `{"schema":"ioguard/bench_sim/v2","sweep_sketches":[{"sweep":"","system":"x"}]}`, "missing sweep/system"},
		{"success ratio out of range", `{"schema":"ioguard/bench_sim/v2","sweep_sketches":[{"sweep":"s","system":"x","success_ratio":1.5}]}`, "outside [0,1]"},
		{"negative trials", `{"schema":"ioguard/bench_sim/v2","sweep_sketches":[{"sweep":"s","system":"x","trials":-1}]}`, "negative trials"},
		{"corrupt embedded sketch", `{"schema":"ioguard/bench_sim/v2","sweep_sketches":[{"sweep":"s","system":"x","trials":1,"response":{"n":2,"mean":1,"m2":0,"min":1,"max":1,"sketch":{"eps":0.01,"k":300,"n":3,"rng":1,"levels":[[1,1,1]]}}}]}`, "disagrees"},
		{"run inside trajectory", `{"schema":"ioguard/bench_sim_trajectory/v2","runs":[{"schema":"bogus"}]}`, "unknown schema"},
		{"robustness missing key", `{"schema":"ioguard/bench_sim/v2","robustness":[{"scenario":"storm","system":""}]}`, "missing scenario/system"},
		{"robustness bad success", `{"schema":"ioguard/bench_sim/v2","robustness":[{"scenario":"storm","system":"BS|PART","success_ratio":-0.2}]}`, "outside [0,1]"},
		{"robustness negative", `{"schema":"ioguard/bench_sim/v2","robustness":[{"scenario":"storm","system":"BS|PART","drops_per_trial":-1}]}`, "negative measurement"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTrajectory([]byte(tc.raw)); err == nil {
				t.Fatalf("decode of %q payload succeeded", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("decode of %q: error %v does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestAnalyzeVerdicts: each gate fires on the trend that violates it
// and stays quiet on stable trends.
func TestAnalyzeVerdicts(t *testing.T) {
	stable := &Trajectory{Schema: TrajectorySchema, Runs: []Report{
		run(t, "1", 100, 5), run(t, "2", 100, 5), run(t, "3", 100, 5),
	}}
	if a := Analyze(stable, AnalysisConfig{}); a.Regressed() {
		t.Fatalf("stable trajectory regressed: %v", a.Regressions)
	}

	slow := &Trajectory{Schema: TrajectorySchema, Runs: []Report{
		run(t, "1", 100, 5), run(t, "2", 100, 5), run(t, "3", 100, 1.5),
	}}
	a := Analyze(slow, AnalysisConfig{})
	if !a.Regressed() || !strings.Contains(a.Regressions[0], "speedup") {
		t.Fatalf("speedup drop not flagged: %v", a.Regressions)
	}

	tail := &Trajectory{Schema: TrajectorySchema, Runs: []Report{
		run(t, "1", 100, 5), run(t, "2", 100, 5), run(t, "3", 1000, 5),
	}}
	a = Analyze(tail, AnalysisConfig{})
	if !a.Regressed() || !strings.Contains(strings.Join(a.Regressions, ";"), "p99") {
		t.Fatalf("p99 growth not flagged: %v", a.Regressions)
	}

	// Below MinRuns nothing fires even on a bad latest run.
	single := &Trajectory{Schema: TrajectorySchema, Runs: []Report{run(t, "1", 1000, 0.1)}}
	if a := Analyze(single, AnalysisConfig{}); a.Regressed() {
		t.Fatalf("single run regressed: %v", a.Regressions)
	}
}

// TestAnalyzeSuccessDrop: the success-ratio gate.
func TestAnalyzeSuccessDrop(t *testing.T) {
	good := run(t, "1", 100, 5)
	bad := run(t, "2", 100, 5)
	bad.SweepSketches[0].SuccessRatio = 0.80
	traj := &Trajectory{Schema: TrajectorySchema, Runs: []Report{good, bad}}
	a := Analyze(traj, AnalysisConfig{})
	if !a.Regressed() || !strings.Contains(strings.Join(a.Regressions, ";"), "success ratio") {
		t.Fatalf("success drop not flagged: %v", a.Regressions)
	}
}

// TestRenderShape: the rendered report carries every section and the
// verdict line.
func TestRenderShape(t *testing.T) {
	traj := &Trajectory{Schema: TrajectorySchema, Runs: []Report{
		run(t, "1", 100, 5), run(t, "2", 100, 5),
	}}
	out := Render(Analyze(traj, AnalysisConfig{}))
	for _, want := range []string{
		"benchmark trajectory report", "Sweep latency distributions",
		"Response p99 trend", "Speedup pairs", "Verdict", "OK",
		"nightly/CaseStudy1000/4vm/stream/I/O-GUARD-70",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
	reg := Render(Analyze(&Trajectory{Schema: TrajectorySchema, Runs: []Report{
		run(t, "1", 100, 5), run(t, "2", 100, 0.5),
	}}, AnalysisConfig{}))
	if !strings.Contains(reg, "REGRESSION") {
		t.Fatalf("regressed report missing REGRESSION:\n%s", reg)
	}
}

// TestReportJSONRoundTrip: a v2 report with sketches survives encode →
// decode with its quantiles intact.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := run(t, "1", 100, 5)
	rep.Robustness = []RobustnessRow{{
		Scenario: "storm", System: "BS|PART", Trials: 3,
		SuccessRatio: 0.5, MissesPerTrial: 12, FaultedMissesPerTrial: 4,
		DropsPerTrial: 2, DupsPerTrial: 1, AccuracyMeanSlots: 7.5, AccuracyP99Slots: 40,
	}}
	wantP99 := rep.SweepSketches[0].Response.Percentile(99)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := DecodeTrajectory(data)
	if err != nil {
		t.Fatal(err)
	}
	got := traj.Runs[0].SweepSketches[0].Response.Percentile(99)
	if got != wantP99 {
		t.Fatalf("round-tripped p99 %g, want %g", got, wantP99)
	}
	rr := traj.Runs[0].Robustness
	if len(rr) != 1 || rr[0] != rep.Robustness[0] {
		t.Fatalf("round-tripped robustness rows %+v, want %+v", rr, rep.Robustness)
	}
}
