package noc

import (
	"testing"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

// TestNextWorkTracksInFlight: the O(1) in-flight counter backing
// NextWork must match the O(routers) Pending scan at every slot
// boundary, and a drained mesh must report Never.
func TestNextWorkTracksInFlight(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NextWork(0); got != slot.Never {
		t.Fatalf("empty mesh NextWork = %d, want Never", got)
	}
	if m.InFlight() != 0 || m.Pending() != 0 {
		t.Fatalf("empty mesh InFlight=%d Pending=%d", m.InFlight(), m.Pending())
	}
	pkt := mkPkt(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{4, 4}), 32)
	if !m.Inject(0, pkt) {
		t.Fatal("injection refused")
	}
	if m.InFlight() == 0 {
		t.Fatal("InFlight = 0 after injection")
	}
	for now := slot.Time(0); now < 200 && m.InFlight() > 0; now++ {
		if got := m.NextWork(now); got < now {
			t.Fatalf("busy mesh NextWork(%d) = %d in the past", now, got)
		}
		if m.InFlight() != m.Pending() {
			t.Fatalf("slot %d: InFlight=%d but Pending=%d", now, m.InFlight(), m.Pending())
		}
		m.Step(now)
	}
	if m.InFlight() != 0 || m.Pending() != 0 {
		t.Fatalf("after delivery InFlight=%d Pending=%d, want 0", m.InFlight(), m.Pending())
	}
	if got := m.NextWork(200); got != slot.Never {
		t.Errorf("drained mesh NextWork = %d, want Never", got)
	}
	if m.Stats().Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", m.Stats().Delivered)
	}
}

// delivery records one OnDeliver invocation.
type delivery struct {
	task uint16
	seq  uint32
	at   slot.Time
}

// TestNextWorkSkipEquivalence: driving the mesh through the
// NextWork/SkipTo protocol (stepping only pinned slots) must deliver
// exactly the packets a dense per-slot run delivers, at the same
// slots — and must actually skip transit gaps, which is the horizon
// improvement the baselines' fast-forward rides on.
func TestNextWorkSkipEquivalence(t *testing.T) {
	inject := func(m *Mesh, now slot.Time) {
		// A staggered burst crossing the mesh corner to corner plus a
		// short hop, so links are busy at overlapping offsets.
		switch now {
		case 0:
			m.Inject(now, mkPkt(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{4, 4}), 32))
			m.Inject(now, mkPkt(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{4, 4}), 16))
		case 5:
			m.Inject(now, mkPkt(m.NodeAt(Coord{2, 1}), m.NodeAt(Coord{2, 4}), 64))
		case 97:
			m.Inject(now, mkPkt(m.NodeAt(Coord{4, 0}), m.NodeAt(Coord{0, 0}), 8))
		}
	}
	injectSlots := []slot.Time{0, 5, 97}
	const horizon = 600

	run := func(skip bool) ([]delivery, int64) {
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var got []delivery
		m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
			got = append(got, delivery{task: p.Task, seq: p.Seq, at: now})
		}
		var executed int64
		ii := 0
		for now := slot.Time(0); now < horizon; now++ {
			inject(m, now)
			m.Step(now)
			executed++
			if !skip {
				continue
			}
			resume := now + 1
			nw := m.NextWork(resume)
			if nw <= resume {
				continue
			}
			next := slot.Time(horizon)
			// The next injection is an external input: the runner may
			// not skip past it (mirrors the pending-queue bound the
			// baselines apply).
			for ii < len(injectSlots) && injectSlots[ii] < resume {
				ii++
			}
			if ii < len(injectSlots) && injectSlots[ii] < next {
				next = injectSlots[ii]
			}
			if nw < next {
				next = nw
			}
			if next <= resume {
				continue
			}
			m.SkipTo(resume, next)
			now = next - 1
		}
		if m.InFlight() != 0 {
			t.Fatalf("mesh not drained: %d in flight", m.InFlight())
		}
		return got, executed
	}

	dense, denseSteps := run(false)
	skipped, skipSteps := run(true)
	if len(dense) != 4 {
		t.Fatalf("dense run delivered %d packets, want 4", len(dense))
	}
	if len(dense) != len(skipped) {
		t.Fatalf("dense delivered %d, skip-driven %d", len(dense), len(skipped))
	}
	for i := range dense {
		if dense[i] != skipped[i] {
			t.Fatalf("delivery %d diverges: dense %+v, skip %+v", i, dense[i], skipped[i])
		}
	}
	if skipSteps >= denseSteps {
		t.Fatalf("skip-driven run executed %d slots, dense %d; transit gaps were not skipped", skipSteps, denseSteps)
	}
}
