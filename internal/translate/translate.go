// Package translate implements the real-time translators of the
// virtualization driver (Sec. III-B of Jiang et al., DAC'21): the
// request-path translator turns a virtualized I/O operation into a
// bounded sequence of bottom-level I/O controller instructions, and
// the response-path translator turns raw controller output back into
// a virtualized response. As evidenced in BlueVisor [6], each
// translation's worst-case time is bounded — here it is bounded by
// construction, because every virtual operation maps to a fixed,
// finite instruction program.
//
// The low-level drivers (the per-protocol program templates) are what
// the hypervisor stores in its dedicated memory banks at system
// initialization.
package translate

import (
	"fmt"
	"strings"

	"ioguard/internal/iodev"
	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

// Opcode is one bottom-level I/O controller instruction class.
type Opcode uint8

// Controller instruction set.
const (
	RegWrite Opcode = iota + 1 // program a controller register
	RegRead                    // read a controller register
	DMASetup                   // configure a DMA descriptor
	Start                      // kick off the transfer
	WaitIRQ                    // wait for the completion interrupt
	MemCopy                    // move payload between banks and FIFO
	CRCCheck                   // verify frame integrity
)

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	switch o {
	case RegWrite:
		return "regw"
	case RegRead:
		return "regr"
	case DMASetup:
		return "dma"
	case Start:
		return "start"
	case WaitIRQ:
		return "wirq"
	case MemCopy:
		return "memcp"
	case CRCCheck:
		return "crc"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// cycles is each opcode's bounded execution cost on the controller,
// in clock cycles.
var cycles = map[Opcode]int{
	RegWrite: 2,
	RegRead:  2,
	DMASetup: 6,
	Start:    1,
	WaitIRQ:  4, // polling-window bound, not the transfer itself
	MemCopy:  8, // per descriptor, payload moves by DMA
	CRCCheck: 10,
}

// Instruction is one translated controller instruction.
type Instruction struct {
	Op  Opcode
	Reg uint8  // target register / descriptor index
	Arg uint32 // immediate value
}

// String renders the instruction like "regw r3 ← 0x10".
func (i Instruction) String() string {
	return fmt.Sprintf("%s r%d ← %#x", i.Op, i.Reg, i.Arg)
}

// Program is a bounded instruction sequence for one I/O operation.
type Program []Instruction

// Cycles returns the program's worst-case controller cycles.
func (p Program) Cycles() int {
	n := 0
	for _, ins := range p {
		n += cycles[ins.Op]
	}
	return n
}

// WCETSlots returns the bounded translation+issue cost in scheduler
// slots (rounded up, at least 1).
func (p Program) WCETSlots() slot.Time {
	c := p.Cycles()
	s := slot.Time((c + iodev.CyclesPerSlot - 1) / iodev.CyclesPerSlot)
	if s < 1 {
		s = 1
	}
	return s
}

// String renders the program one instruction per line.
func (p Program) String() string {
	var b strings.Builder
	for _, ins := range p {
		b.WriteString(ins.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Translator is the request-path translator for one device protocol.
// The zero value is not usable; call NewTranslator.
type Translator struct {
	model iodev.Model
}

// NewTranslator returns a translator for the given controller model.
func NewTranslator(m iodev.Model) (*Translator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Translator{model: m}, nil
}

// Model returns the controller model the translator targets.
func (t *Translator) Model() iodev.Model { return t.model }

// Translate maps a virtualized I/O operation of payloadBytes into the
// controller's bottom-level instruction program. The program shape is
// fixed per (protocol, op), which is what bounds the translation WCET.
func (t *Translator) Translate(op packet.Op, payloadBytes int) (Program, error) {
	if payloadBytes < 0 {
		return nil, fmt.Errorf("translate: negative payload %d", payloadBytes)
	}
	switch op {
	case packet.Config:
		return Program{
			{Op: RegWrite, Reg: 0, Arg: uint32(payloadBytes)},
			{Op: RegRead, Reg: 0},
		}, nil
	case packet.Read, packet.Write:
		p := Program{
			{Op: RegWrite, Reg: 1, Arg: ctrlWord(t.model, op)},
			{Op: DMASetup, Reg: 2, Arg: uint32(payloadBytes)},
		}
		// Framed protocols verify integrity per frame.
		if t.model.OverheadBits >= 32 {
			p = append(p, Instruction{Op: CRCCheck, Reg: 3})
		}
		p = append(p,
			Instruction{Op: Start, Reg: 1, Arg: 1},
			Instruction{Op: WaitIRQ, Reg: 1},
		)
		if op == packet.Read {
			p = append(p, Instruction{Op: MemCopy, Reg: 2, Arg: uint32(payloadBytes)})
		}
		return p, nil
	default:
		return nil, fmt.Errorf("translate: unsupported op %v", op)
	}
}

// TranslateResponse maps a completed operation back into the
// virtualized response path (pass-through: status read plus payload
// hand-off for reads).
func (t *Translator) TranslateResponse(op packet.Op, payloadBytes int) (Program, error) {
	if payloadBytes < 0 {
		return nil, fmt.Errorf("translate: negative payload %d", payloadBytes)
	}
	p := Program{{Op: RegRead, Reg: 4}} // status
	if op == packet.Read {
		p = append(p, Instruction{Op: MemCopy, Reg: 2, Arg: uint32(payloadBytes)})
	}
	return p, nil
}

// WorstCaseRequestSlots bounds the request translation across all
// supported operations for a payload bound.
func (t *Translator) WorstCaseRequestSlots(maxPayload int) (slot.Time, error) {
	worst := slot.Time(0)
	for _, op := range []packet.Op{packet.Read, packet.Write, packet.Config} {
		p, err := t.Translate(op, maxPayload)
		if err != nil {
			return 0, err
		}
		if w := p.WCETSlots(); w > worst {
			worst = w
		}
	}
	return worst, nil
}

// ctrlWord derives the control-register value for an operation: the
// direction bit plus a protocol-speed field. The exact encoding is
// irrelevant to timing; it exists so programs are concrete.
func ctrlWord(m iodev.Model, op packet.Op) uint32 {
	w := uint32(0)
	if op == packet.Write {
		w |= 1
	}
	w |= uint32(m.OverheadBits) << 8
	return w
}

// BankBytes returns the memory-bank space needed to store the
// low-level driver (all program templates) for the device: the size
// the hypervisor reserves at initialization.
func (t *Translator) BankBytes() (int, error) {
	const instrBytes = 8 // opcode + reg + padding + arg
	total := 0
	for _, op := range []packet.Op{packet.Read, packet.Write, packet.Config} {
		p, err := t.Translate(op, 1)
		if err != nil {
			return 0, err
		}
		r, err := t.TranslateResponse(op, 1)
		if err != nil {
			return 0, err
		}
		total += (len(p) + len(r)) * instrBytes
	}
	return total, nil
}
