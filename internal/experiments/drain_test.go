package experiments

import (
	"fmt"
	"testing"

	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// TestDrainBoundsEquivalence pins the adaptive drain budget's
// correctness claim: the budget (and the epoch spans it interacts
// with) only sizes conservative fast-forward horizons, so pinning it
// to its extremes — a single-slot budget that exhausts on every dense
// stretch, and a budget wider than any workload burst — must leave
// every system's results byte-identical to a dense run, sequential and
// parallel alike.
func TestDrainBoundsEquivalence(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 3, TargetUtil: 0.75, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	base := system.Trial{VMs: 3, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 31}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		t.Run(name, func(t *testing.T) {
			tr := base
			tr.Dense = true
			dense, err := system.Run(build, tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, bounds := range []struct{ min, max int }{
				{1, 1},
				{1 << 16, 1 << 16},
				{8, 1 << 16},
			} {
				tr := base
				tr.DrainMin, tr.DrainMax = bounds.min, bounds.max
				for _, workers := range []int{0, 2} {
					tr.ShardWorkers = workers
					t.Run(fmt.Sprintf("drain=%d..%d/w%d", bounds.min, bounds.max, workers), func(t *testing.T) {
						got, err := system.Run(build, tr)
						if err != nil {
							t.Fatal(err)
						}
						requireEqual(t, dense, got)
					})
				}
			}
		})
	}
}
