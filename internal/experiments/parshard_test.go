package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"ioguard/internal/metrics"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// workerCounts are the fan-outs the parallel-shard contract is pinned
// at: the degenerate single worker (must route through the sequential
// schedule), the smallest real split, and every core the host offers.
func workerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	return counts
}

// runParallel executes the trial with the epoch-barrier parallel
// executor at the given worker count.
func runParallel(t *testing.T, build system.Builder, tr system.Trial, workers int) *metrics.TrialResult {
	t.Helper()
	tr.Dense = false
	tr.ShardWorkers = workers
	res, err := system.Run(build, tr)
	if err != nil {
		t.Fatalf("parallel run (%d workers): %v", workers, err)
	}
	return res
}

// TestParallelShardEquivalence is the parallel executor's enforcement
// point: for every system, dense stepping, sequential shard clocks and
// parallel shard execution must produce byte-identical TrialResults at
// every worker count — the same completions, misses, drops and bytes,
// and the same response/tardiness samples in the same order. Run under
// -race in CI, this also proves the epoch executor publishes no shared
// state outside the barrier.
func TestParallelShardEquivalence(t *testing.T) {
	caseTS, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 0.7, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	telTS, err := workload.GenerateTelemetry(workload.TelemetryConfig{VMs: 4, HotDevice: "can", HotUtil: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	workloads := []struct {
		name string
		tr   system.Trial
	}{
		{"case-study", system.Trial{VMs: 4, Tasks: caseTS, Horizon: caseTS.Hyperperiod() * 2, Seed: 101}},
		{"telemetry", system.Trial{VMs: 4, Tasks: telTS, Horizon: telTS.Hyperperiod(), Seed: 9}},
	}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		for _, w := range workloads {
			t.Run(fmt.Sprintf("%s/%s", name, w.name), func(t *testing.T) {
				dense, _, sharded := runThree(t, build, w.tr)
				requireEqual(t, dense, sharded)
				for _, workers := range workerCounts() {
					requireEqual(t, dense, runParallel(t, build, w.tr, workers))
				}
			})
		}
	}
}

// TestParallelShardEquivalenceStream repeats the contract in streaming
// metrics mode: the merge order at the epoch barrier must reproduce the
// sequential completion sequence exactly, or the order-sensitive GK
// sketches would diverge.
func TestParallelShardEquivalenceStream(t *testing.T) {
	ts, err := workload.GenerateTelemetry(workload.TelemetryConfig{VMs: 4, Sensors: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod(), Seed: 5, Metrics: system.MetricsStream}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		t.Run(name, func(t *testing.T) {
			sequential, err := system.Run(build, tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range workerCounts() {
				requireEqual(t, sequential, runParallel(t, build, tr, workers))
			}
		})
	}
}

// TestParallelShardEquivalenceRandomized fuzzes the contract: random
// VM counts, utilizations and seeds over the case-study generator,
// every system, dense vs parallel shards at 2 and GOMAXPROCS workers.
func TestParallelShardEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	builders := Builders()
	const trials = 3
	for i := 0; i < trials; i++ {
		vms := 1 + rng.Intn(8)
		util := 0.40 + 0.60*rng.Float64()
		seed := rng.Int63()
		ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tr := system.Trial{VMs: vms, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: seed}
		for _, name := range SystemNames() {
			build := builders[name]
			t.Run(fmt.Sprintf("t%d/%s", i, name), func(t *testing.T) {
				tr := tr
				tr.Dense = true
				dense, err := system.Run(build, tr)
				if err != nil {
					t.Fatal(err)
				}
				tr.Dense = false
				for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
					requireEqual(t, dense, runParallel(t, build, tr, workers))
				}
			})
		}
	}
}
