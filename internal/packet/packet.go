// Package packet implements the on-chip communication protocol the
// I/O-GUARD reproduction uses to encapsulate (virtualized) I/O
// requests and responses as packets (assumption (ii) of Sec. II,
// following the BlueShell NoC protocol of Plumbridge [8]).
//
// A packet is a fixed-size header followed by an optional payload. On
// the wire (and across the simulated NoC) packets are transmitted as
// flits of a configurable width; the header occupies the first flits.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ioguard/internal/slot"
)

// Kind discriminates the packet classes that traverse the NoC.
type Kind uint8

// Packet kinds.
const (
	Request  Kind = iota + 1 // processor → hypervisor/IO: perform an I/O operation
	Response                 // IO → processor: data or completion status
	Control                  // system management (e.g. P-channel table load)
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case Response:
		return "response"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is the I/O operation requested by a packet.
type Op uint8

// I/O operations.
const (
	Read   Op = iota + 1 // read from the device into the response payload
	Write                // write the request payload to the device
	Config               // device configuration access
)

// String returns the lowercase operation name.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Config:
		return "config"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// NodeID addresses a NoC tile (processor, hypervisor port or I/O).
type NodeID uint16

// HeaderBytes is the encoded size of a packet header.
const HeaderBytes = 24

// Header carries the routing and virtualization metadata of a packet.
// Deadline is the absolute deadline of the I/O job the packet belongs
// to; the hypervisor's schedulers read it from the priority-queue
// parameter slot.
type Header struct {
	Src      NodeID
	Dst      NodeID
	VM       uint8  // issuing virtual machine
	Kind     Kind   //
	Op       Op     //
	Task     uint16 // task ID within the VM
	Seq      uint32 // job sequence number
	Len      uint16 // payload length in bytes
	Deadline slot.Time
}

// Packet is a header plus payload.
type Packet struct {
	Header
	Payload []byte
}

// New builds a packet, setting Len from the payload.
func New(h Header, payload []byte) *Packet {
	h.Len = uint16(len(payload))
	return &Packet{Header: h, Payload: payload}
}

// Validate checks internal consistency.
func (p *Packet) Validate() error {
	switch {
	case p.Kind < Request || p.Kind > Control:
		return fmt.Errorf("packet: invalid kind %d", p.Kind)
	case p.Op < Read || p.Op > Config:
		return fmt.Errorf("packet: invalid op %d", p.Op)
	case int(p.Len) != len(p.Payload):
		return fmt.Errorf("packet: len field %d ≠ payload %d", p.Len, len(p.Payload))
	case p.Deadline < 0:
		return errors.New("packet: negative deadline")
	}
	return nil
}

// Size returns the encoded size in bytes (header + payload).
func (p *Packet) Size() int { return HeaderBytes + len(p.Payload) }

// Flits returns how many flits of flitBytes each are needed to carry
// the packet across the NoC (wormhole switching). It is at least 1.
func (p *Packet) Flits(flitBytes int) int {
	if flitBytes <= 0 {
		flitBytes = 4
	}
	n := (p.Size() + flitBytes - 1) / flitBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Encode serializes the packet (big-endian header, raw payload).
func (p *Packet) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, HeaderBytes+len(p.Payload))
	binary.BigEndian.PutUint16(buf[0:], uint16(p.Src))
	binary.BigEndian.PutUint16(buf[2:], uint16(p.Dst))
	buf[4] = p.VM
	buf[5] = uint8(p.Kind)
	buf[6] = uint8(p.Op)
	// buf[7] reserved
	binary.BigEndian.PutUint16(buf[8:], p.Task)
	binary.BigEndian.PutUint32(buf[10:], p.Seq)
	binary.BigEndian.PutUint16(buf[14:], p.Len)
	binary.BigEndian.PutUint64(buf[16:], uint64(p.Deadline))
	copy(buf[HeaderBytes:], p.Payload)
	return buf, nil
}

// Decode parses an encoded packet.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < HeaderBytes {
		return nil, fmt.Errorf("packet: short buffer %d < %d", len(buf), HeaderBytes)
	}
	if buf[7] != 0 {
		return nil, fmt.Errorf("packet: reserved header byte is %#x, want 0", buf[7])
	}
	p := &Packet{Header: Header{
		Src:      NodeID(binary.BigEndian.Uint16(buf[0:])),
		Dst:      NodeID(binary.BigEndian.Uint16(buf[2:])),
		VM:       buf[4],
		Kind:     Kind(buf[5]),
		Op:       Op(buf[6]),
		Task:     binary.BigEndian.Uint16(buf[8:]),
		Seq:      binary.BigEndian.Uint32(buf[10:]),
		Len:      binary.BigEndian.Uint16(buf[14:]),
		Deadline: slot.Time(binary.BigEndian.Uint64(buf[16:])),
	}}
	if len(buf) != HeaderBytes+int(p.Len) {
		return nil, fmt.Errorf("packet: buffer %d ≠ header+payload %d", len(buf), HeaderBytes+int(p.Len))
	}
	p.Payload = append([]byte(nil), buf[HeaderBytes:]...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ResponseTo builds the response packet for a request: source and
// destination swapped, same VM/task/seq, the given payload.
func ResponseTo(req *Packet, payload []byte) *Packet {
	return New(Header{
		Src:      req.Dst,
		Dst:      req.Src,
		VM:       req.VM,
		Kind:     Response,
		Op:       req.Op,
		Task:     req.Task,
		Seq:      req.Seq,
		Deadline: req.Deadline,
	}, payload)
}

// String renders the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s{%d→%d vm%d τ%d#%d %s %dB d=%d}",
		p.Kind, p.Src, p.Dst, p.VM, p.Task, p.Seq, p.Op, p.Len, p.Deadline)
}
