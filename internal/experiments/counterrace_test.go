package experiments

// Three-way equality tests for the shard-reachable shared counters.
// The parallel shard executor runs Submit on shard goroutines, so
// every counter its paths touch — pool drops (full queue), admission
// rejections, transport drops — must be shard-confined or atomic.
// These tests drive the two regimes that actually increment those
// counters (a drop-heavy bounded-pool trial and an admission-enabled
// ServerEDF trial) and require dense, sequential and parallel shard
// execution to agree byte-for-byte at every worker count. Run under
// -race in CI, they also prove the increments themselves are clean.

import (
	"testing"

	"ioguard/internal/core"
	"ioguard/internal/hypervisor"
	"ioguard/internal/metrics"
	"ioguard/internal/system"
	"ioguard/internal/task"
	"ioguard/internal/workload"
)

// TestDropHeavyCounterEquivalence overloads depth-1 I/O pools at full
// utilization so Pool.Admit's drop counter fires constantly from the
// shard goroutines, then pins dense/sequential/parallel equality.
func TestDropHeavyCounterEquivalence(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return core.New(core.Config{
			VMs:          tr.VMs,
			PreloadFrac:  0.7,
			Mode:         hypervisor.DirectEDF,
			PoolCapacity: 1,
		}, tr.Tasks, col)
	}
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod(), Seed: 5}

	sequential, err := system.Run(build, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sequential.Dropped == 0 {
		t.Fatal("depth-1 pools dropped nothing: the test lost its trigger")
	}

	dtr := tr
	dtr.Dense = true
	dense, err := system.Run(build, dtr)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, sequential, dense)
	for _, workers := range workerCounts() {
		requireEqual(t, sequential, runParallel(t, build, tr, workers))
	}
}

// admissionTasks spreads four run-time tasks across two devices and
// two VMs; only VM 0's tasks get registered, so every VM 1 job is
// refused at submit time and the admission counter fires from the
// shard goroutines.
func admissionTasks() task.Set {
	return task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "spi", Period: 512, WCET: 8, Deadline: 512, OpBytes: 64, Jitter: 32},
		{ID: 1, VM: 1, Kind: task.Function, Device: "spi", Period: 1024, WCET: 16, Deadline: 1024, OpBytes: 64, Jitter: 64},
		{ID: 2, VM: 0, Kind: task.Safety, Device: "uart", Period: 512, WCET: 8, Deadline: 512, OpBytes: 32, Jitter: 32},
		{ID: 3, VM: 1, Kind: task.Function, Device: "uart", Period: 1024, WCET: 16, Deadline: 1024, OpBytes: 32, Jitter: 64},
	}
}

// runAdmission executes one admission-enabled ServerEDF trial and
// returns its result plus the summed RejectedAtAdmission counter.
func runAdmission(t *testing.T, tr system.Trial) (*metrics.TrialResult, int64) {
	t.Helper()
	var captured *core.System
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		s, err := core.New(core.Config{VMs: tr.VMs, Mode: hypervisor.ServerEDF, AutoServers: true}, tr.Tasks, col)
		if err != nil {
			return nil, err
		}
		hv := s.Hypervisor()
		for _, dev := range hv.Devices() {
			m, err := hv.Manager(dev)
			if err != nil {
				return nil, err
			}
			if err := m.EnableAdmission(); err != nil {
				return nil, err
			}
			for _, spec := range tr.Tasks {
				if spec.VM == 0 && spec.Device == dev {
					if err := m.RegisterTask(spec); err != nil {
						return nil, err
					}
				}
			}
		}
		captured = s
		return s, nil
	}
	res, err := system.Run(build, tr)
	if err != nil {
		t.Fatalf("admission run: %v", err)
	}
	var rejected int64
	hv := captured.Hypervisor()
	for _, dev := range hv.Devices() {
		m, err := hv.Manager(dev)
		if err != nil {
			t.Fatal(err)
		}
		rejected += m.RejectedAtAdmission()
	}
	return res, rejected
}

// TestAdmissionCounterEquivalence pins the admission-rejection
// counter across dense, sequential and parallel shard execution: the
// same jobs must be refused, in the same quantity, at every worker
// count — and under -race the atomic increment must be clean.
func TestAdmissionCounterEquivalence(t *testing.T) {
	base := system.Trial{VMs: 2, Tasks: admissionTasks(), Horizon: 8192, Seed: 3}

	sequential, rejSeq := runAdmission(t, base)
	if rejSeq == 0 {
		t.Fatal("admission control rejected nothing: the test lost its trigger")
	}
	if sequential.Dropped == 0 {
		t.Fatal("rejected jobs did not surface as drops in the trial result")
	}

	dtr := base
	dtr.Dense = true
	dense, rejDense := runAdmission(t, dtr)
	requireEqual(t, sequential, dense)
	if rejDense != rejSeq {
		t.Fatalf("dense rejected %d, sequential %d", rejDense, rejSeq)
	}
	for _, workers := range workerCounts() {
		ptr := base
		ptr.ShardWorkers = workers
		par, rejPar := runAdmission(t, ptr)
		requireEqual(t, sequential, par)
		if rejPar != rejSeq {
			t.Fatalf("parallel(%d) rejected %d, sequential %d", workers, rejPar, rejSeq)
		}
	}
}
