package system

import (
	"errors"
	"fmt"
	"testing"

	"ioguard/internal/metrics"
	"ioguard/internal/slot"
)

// aggKey flattens every aggregate field that feeds rendered output,
// so equality here implies byte-identical tables downstream.
func aggKey(a *metrics.Aggregate) string {
	return fmt.Sprintf("trials=%d successes=%d tput[n=%d mean=%v sd=%v min=%v max=%v] misses[n=%d mean=%v max=%v]",
		a.Trials, a.Successes,
		a.Throughput.N(), a.Throughput.Mean(), a.Throughput.StdDev(), a.Throughput.Min(), a.Throughput.Max(),
		a.Misses.N(), a.Misses.Mean(), a.Misses.Max())
}

func TestParallelSweepDeterministic(t *testing.T) {
	tr := Trial{VMs: 2, Tasks: workload(), Horizon: 600, Seed: 11}
	sequential, err := ParallelSweep(builder(3), tr, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel() // exercises the pool concurrently under -race
			agg, err := ParallelSweep(builder(3), tr, 9, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := aggKey(agg), aggKey(sequential); got != want {
				t.Errorf("workers=%d diverged:\n got %s\nwant %s", workers, got, want)
			}
		})
	}
}

func TestParallelSweepMatchesSweep(t *testing.T) {
	tr := Trial{VMs: 2, Tasks: workload(), Horizon: 300, Seed: 1}
	a, err := Sweep(builder(2), tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelSweep(builder(2), tr, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if aggKey(a) != aggKey(b) {
		t.Errorf("Sweep and ParallelSweep disagree:\n %s\n %s", aggKey(a), aggKey(b))
	}
}

// TestTrialSeedCrossSweepDisjoint pins the fix for the additive
// derivation (base + i·7919): two sweeps whose base seeds differ by a
// multiple of the old stride used to replay overlapping trial-seed
// sequences (sweep A's trial i+k equalled sweep B's trial i). The
// SplitMix64-style mix must keep every pair of realistic sweeps fully
// disjoint, and stay a pure function of (base, index).
func TestTrialSeedCrossSweepDisjoint(t *testing.T) {
	const trials = 256
	bases := []int64{0, 1, 11, 17, 7919, 2 * 7919, 17 + 7919, 17 + 3*7919, -7919}
	seen := make(map[int64]string, trials*len(bases))
	for _, base := range bases {
		for i := 0; i < trials; i++ {
			s := trialSeed(base, i)
			at := fmt.Sprintf("base=%d trial=%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed %d collides: %s and %s", s, prev, at)
			}
			seen[s] = at
		}
	}
	if a, b := trialSeed(42, 7), trialSeed(42, 7); a != b {
		t.Fatalf("trialSeed not deterministic: %d vs %d", a, b)
	}
}

func TestRunCellsOrderAndIsolation(t *testing.T) {
	// Different delays give each cell a distinguishable result; the
	// returned slice must line up with the input order regardless of
	// which worker finishes first.
	delays := []slot.Time{1, 5, 2, 9, 3, 7, 4, 8, 6, 10}
	var cells []Cell
	for _, d := range delays {
		cells = append(cells, Cell{Build: builder(d), Trial: Trial{VMs: 2, Tasks: workload(), Horizon: 400, Seed: 3}})
	}
	results, err := RunCells(cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("results = %d, want %d", len(results), len(cells))
	}
	for i, d := range delays {
		if got := results[i].Response.Mean(); got != float64(d) {
			t.Errorf("cell %d: response mean %v, want %d (results out of order?)", i, got, d)
		}
	}
}

func TestRunCellsEmpty(t *testing.T) {
	results, err := RunCells(nil, 4)
	if err != nil || results != nil {
		t.Errorf("RunCells(nil) = %v, %v", results, err)
	}
}

func TestRunCellsErrorIsLowestIndex(t *testing.T) {
	boom := func(msg string) Builder {
		return func(tr Trial, col *Collector) (System, error) {
			return nil, errors.New(msg)
		}
	}
	cells := []Cell{
		{Build: builder(1), Trial: Trial{VMs: 2, Tasks: workload(), Horizon: 100, Seed: 1}},
		{Build: boom("first"), Trial: Trial{VMs: 2, Tasks: workload(), Horizon: 100, Seed: 1}},
		{Build: boom("second"), Trial: Trial{VMs: 2, Tasks: workload(), Horizon: 100, Seed: 1}},
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := RunCells(cells, workers)
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %v is not a *CellError", workers, err)
		}
		if ce.Index != 1 || ce.Err.Error() != "first" {
			t.Errorf("workers=%d: got cell %d (%v), want lowest failing cell 1", workers, ce.Index, ce.Err)
		}
	}
}

// mutatingSystem sorts its task set in place to simulate a builder
// that reorders the shared workload; the per-cell task-set copy must
// keep that invisible to sibling cells.
func TestRunCellsCopiesTaskSet(t *testing.T) {
	shared := workload()
	mutate := func(tr Trial, col *Collector) (System, error) {
		for i := range tr.Tasks {
			tr.Tasks[i].OpBytes = 0 // stomp the (cell-private) copy
		}
		return &fakeSystem{tasks: tr.Tasks, col: col, delay: 1}, nil
	}
	var cells []Cell
	for i := 0; i < 16; i++ {
		cells = append(cells, Cell{Build: mutate, Trial: Trial{VMs: 2, Tasks: shared, Horizon: 200, Seed: int64(i)}})
	}
	if _, err := RunCells(cells, 8); err != nil {
		t.Fatal(err)
	}
	if shared[0].OpBytes != 100 || shared[1].OpBytes != 50 {
		t.Errorf("shared task set mutated by a cell: %+v", shared)
	}
}
