// Package cliflags centralizes the execution flags every I/O-GUARD
// command shares — -workers, -shard-workers and -metrics — so their
// names, defaults, help text and validation live in exactly one place.
// Before this package each main.go re-declared the trio by hand, which
// let the trial server's configuration drift from the batch CLIs; now
// ioguard-sim, ioguard-experiments, ioguard-server and ioguard-load
// all register the same Exec block and resolve it through the same
// validation.
package cliflags

import (
	"flag"
	"fmt"
	"runtime"

	"ioguard/internal/faults"
	"ioguard/internal/slot"
	"ioguard/internal/system"
)

// Exec holds the raw values of the shared execution flags as parsed
// from the command line (or filled programmatically). Resolve
// validates them into a runnable configuration.
type Exec struct {
	// Workers is the goroutine count fanning independent trial cells;
	// ≤ 0 selects runtime.GOMAXPROCS(0). Output is identical for any
	// value (the deterministic-fold contract of system.RunCells).
	Workers int
	// ShardWorkers is the OS-thread count advancing one trial's device
	// shards in parallel (the epoch-barrier executor); < 2 keeps the
	// sequential per-shard schedule. Output is identical for any value.
	ShardWorkers int
	// Metrics is the collector-mode spelling: exact (buffered, exact
	// percentiles), stream (bounded memory, mergeable KLL sketch —
	// sweeps report merged cross-trial quantiles), or stream-gk (the
	// pre-KLL Greenwald–Khanna backend, per-trial quantiles only).
	Metrics string
	// DrainMin/DrainMax bound the sharded runner's adaptive release-
	// drain budget (system.Trial.DrainMin/DrainMax); 0 keeps the
	// built-in bounds. Output is identical for any valid pair — the
	// budget only sizes conservative fast-forward horizons.
	DrainMin int
	DrainMax int
	// The -fault-* sextet configures the deterministic fault-injection
	// layer (system.Trial.Faults). All zero — the defaults — is a clean
	// run; any enabled plan keeps the byte-identity contract across
	// -workers / -shard-workers / -dense because every fault decision
	// is a pure per-job hash of (FaultSeed, trial seed).
	FaultSeed     int64
	FaultJitter   int
	FaultDrop     float64
	FaultDup      float64
	FaultDelay    float64
	FaultDelayMax int
}

// Resolved is a validated execution configuration.
type Resolved struct {
	Workers      int
	ShardWorkers int
	Metrics      system.MetricsMode
	DrainMin     int
	DrainMax     int
	// Faults is the validated fault plan; the zero value runs clean.
	Faults faults.Plan
}

// Register installs the shared flags on fs with the canonical names,
// defaults and help strings, returning the destination block. Call
// Resolve after fs.Parse.
func Register(fs *flag.FlagSet) *Exec {
	e := &Exec{}
	fs.IntVar(&e.Workers, "workers", runtime.GOMAXPROCS(0),
		"goroutines running independent trials (output is identical for any value)")
	fs.IntVar(&e.ShardWorkers, "shard-workers", 0,
		"OS threads advancing one trial's device shards in parallel (< 2 = sequential; output is identical for any value)")
	fs.StringVar(&e.Metrics, "metrics", system.MetricsExact.String(),
		"collector mode: exact (buffered, exact percentiles), stream (bounded memory, mergeable cross-trial quantiles) or stream-gk (per-trial GK back-compat)")
	fs.IntVar(&e.DrainMin, "drain-min", 0,
		"lower bound on the sharded runner's adaptive release-drain budget (0 = built-in; output is identical for any value)")
	fs.IntVar(&e.DrainMax, "drain-max", 0,
		"upper bound on the sharded runner's adaptive release-drain budget (0 = built-in; output is identical for any value)")
	fs.Int64Var(&e.FaultSeed, "fault-seed", 0,
		"fault-injection stream seed; the same seed replays a faulted trial byte-identically")
	fs.IntVar(&e.FaultJitter, "fault-jitter", 0,
		"max extra release jitter in slots injected at the workload layer (0 = off)")
	fs.Float64Var(&e.FaultDrop, "fault-drop", 0,
		"probability a request is lost in transport before reaching the system")
	fs.Float64Var(&e.FaultDup, "fault-dup", 0,
		"probability a request is duplicated in transport")
	fs.Float64Var(&e.FaultDelay, "fault-delay", 0,
		"probability a request is delayed in transport (requires -fault-delay-max)")
	fs.IntVar(&e.FaultDelayMax, "fault-delay-max", 0,
		"max transport delay in slots for -fault-delay hits")
	return e
}

// RegisterDefault is Register on the process-wide flag.CommandLine.
func RegisterDefault() *Exec { return Register(flag.CommandLine) }

// Resolve validates the raw values: workers ≤ 0 resolves to
// runtime.GOMAXPROCS(0) (matching system.RunCells), negative
// shard-workers and drain bounds are rejected (as is an inverted
// min/max pair), and the metrics spelling is parsed through the single
// system.ParseMetricsMode entry point.
func (e *Exec) Resolve() (Resolved, error) {
	r := Resolved{Workers: e.Workers, ShardWorkers: e.ShardWorkers, DrainMin: e.DrainMin, DrainMax: e.DrainMax}
	if r.Workers <= 0 {
		r.Workers = runtime.GOMAXPROCS(0)
	}
	if r.ShardWorkers < 0 {
		return Resolved{}, fmt.Errorf("cliflags: negative -shard-workers %d", e.ShardWorkers)
	}
	if r.DrainMin < 0 || r.DrainMax < 0 {
		return Resolved{}, fmt.Errorf("cliflags: negative drain bound (-drain-min %d, -drain-max %d)", e.DrainMin, e.DrainMax)
	}
	if r.DrainMin > 0 && r.DrainMax > 0 && r.DrainMin > r.DrainMax {
		return Resolved{}, fmt.Errorf("cliflags: -drain-min %d exceeds -drain-max %d", e.DrainMin, e.DrainMax)
	}
	mode, err := system.ParseMetricsMode(e.Metrics)
	if err != nil {
		return Resolved{}, err
	}
	r.Metrics = mode
	r.Faults = faults.Plan{
		Seed:          e.FaultSeed,
		ReleaseJitter: slot.Time(e.FaultJitter),
		DropProb:      e.FaultDrop,
		DupProb:       e.FaultDup,
		DelayProb:     e.FaultDelay,
		DelayMax:      slot.Time(e.FaultDelayMax),
	}
	if err := r.Faults.Validate(); err != nil {
		return Resolved{}, err
	}
	return r, nil
}
