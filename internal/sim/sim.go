// Package sim provides the deterministic slot-stepped simulation
// engine that stands in for the VC709 FPGA platform of the paper's
// evaluation. All system elements synchronize to a single global
// timer (assumption (iii) of Sec. II); the engine models that timer
// and advances every registered component one time slot at a time.
//
// Determinism matters: the paper re-runs each configuration 1000
// times with identical inputs across systems; the engine therefore
// derives all randomness from one seeded source so that "the data
// input to the examined systems was identical in each execution".
//
// # Determinism contract
//
// Independent of how time advances, the observable order of work is
// fixed:
//
//   - events fire in (at, seq) order — earliest slot first, ties
//     broken by scheduling order — before any Stepper of that slot;
//   - steppers run once per executed slot, in registration order;
//   - fast-forwarding (below) may never skip a slot that any
//     component declared busy, so it is invisible to the simulated
//     system: dense stepping and fast-forward stepping produce
//     identical results, bit for bit.
//
// # Quiescence protocol
//
// Run fast-forwards over idle regions instead of stepping them slot
// by slot. A Stepper opts in by implementing Quiescer: NextWork(now)
// returns the earliest slot ≥ now at which the component needs to be
// stepped (now itself if it is busy, slot.Never if it is fully
// drained), assuming every slot before now has been stepped. Steppers
// that do not implement Quiescer are treated as always busy — the
// compatible default — which forces dense stepping of the whole
// engine. Components that account per-slot statistics over idle spans
// (e.g. table-idle counters) additionally implement Skipper; SkipTo
// observes the skipped span [from, to) in bulk.
//
// # Per-component clocks
//
// The Engine's fast-forward takes one global min over every
// component's NextWork, so a single busy component forces dense
// stepping of all the others. ShardSet lifts that restriction for
// groups of independent components: each shard owns a local virtual
// clock and advances through its own busy/idle regions, with
// cross-shard couplings expressed as explicit conservative horizons
// (HorizonFunc) instead of implicit lockstep. Executing the laggard
// shard first keeps the global execution order identical to dense
// stepping, so the determinism contract above holds per component.
package sim

import (
	"math/rand"

	"ioguard/internal/slot"
)

// Stepper is a hardware component clocked by the global timer: Step
// is called exactly once per executed slot, in registration order.
type Stepper interface {
	Step(now slot.Time)
}

// Quiescer is the optional fast-forward extension of Stepper.
// NextWork(now) returns the earliest slot ≥ now at which the
// component has work, under the assumption that every slot before now
// has been stepped: now itself when busy, slot.Never when fully
// drained. The engine may then skip the slots in between without
// stepping the component. Implementations must be conservative — a
// slot that would change any observable state counts as work.
type Quiescer interface {
	NextWork(now slot.Time) slot.Time
}

// Skipper is the optional bulk-accounting extension for components
// that maintain per-slot counters even while idle. When the engine
// fast-forwards, SkipTo(from, to) reports the skipped span [from, to)
// so the component can account it in O(1) instead of O(span).
type Skipper interface {
	SkipTo(from, to slot.Time)
}

// StepFunc adapts a function to the Stepper interface.
type StepFunc func(now slot.Time)

// Step calls f(now).
func (f StepFunc) Step(now slot.Time) { f(now) }

// event is a one-shot callback scheduled for an absolute slot.
type event struct {
	at  slot.Time
	seq int64
	fn  func(now slot.Time)
}

func (ev event) before(o event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// eventHeap is a value-based binary min-heap ordered by (at, seq).
// The sift operations are implemented directly rather than through
// container/heap: boxing event values into `any` would allocate on
// every Push, and the event queue is on the per-slot hot path.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	root := s[0]
	s[0] = s[n]
	s[n] = event{} // drop the callback reference from the backing array
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].before(s[m]) {
			m = l
		}
		if r < n && s[r].before(s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return root
}

// entry caches a registered component's optional interfaces so the
// per-slot loop and the fast-forward scan avoid repeated type
// assertions.
type entry struct {
	s  Stepper
	q  Quiescer // nil: always busy
	sk Skipper  // nil: nothing to account over skipped spans
}

// Engine is the global timer plus the set of clocked components. The
// zero value is not usable; call New.
type Engine struct {
	now      slot.Time
	rng      *rand.Rand
	steppers []entry
	events   eventHeap
	nextSeq  int64
}

// New returns an engine at slot 0 with a deterministic random source.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current slot.
func (e *Engine) Now() slot.Time { return e.now }

// RNG returns the engine's deterministic random source. All stochastic
// workload decisions must draw from it to keep runs reproducible.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Register adds a clocked component. Components are stepped in
// registration order within each slot, which fixes the intra-slot
// pipeline order (e.g. schedulers before executors). The component's
// Quiescer/Skipper implementations, if any, are captured here.
func (e *Engine) Register(s Stepper) {
	ent := entry{s: s}
	if q, ok := s.(Quiescer); ok {
		ent.q = q
	}
	if sk, ok := s.(Skipper); ok {
		ent.sk = sk
	}
	e.steppers = append(e.steppers, ent)
}

// At schedules fn to run at the start of slot at. Events scheduled for
// the past run at the start of the next Step. Events at the same slot
// run in scheduling order, before any Stepper.
func (e *Engine) At(at slot.Time, fn func(now slot.Time)) {
	e.events.push(event{at: at, seq: e.nextSeq, fn: fn})
	e.nextSeq++
}

// After schedules fn delay slots from now.
func (e *Engine) After(delay slot.Time, fn func(now slot.Time)) {
	e.At(e.now+delay, fn)
}

// Step advances the simulation by one slot: due events fire first,
// then every registered component steps, then time advances.
func (e *Engine) Step() {
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := e.events.pop()
		ev.fn(e.now)
	}
	for _, ent := range e.steppers {
		ent.s.Step(e.now)
	}
	e.now++
}

// nextWork returns the earliest slot in [e.now, horizon] that must be
// stepped: the next pending event, the earliest busy component, or
// the horizon. Any component without a Quiescer pins it to e.now.
func (e *Engine) nextWork(horizon slot.Time) slot.Time {
	next := horizon
	if len(e.events) > 0 {
		at := e.events[0].at
		if at <= e.now {
			return e.now
		}
		if at < next {
			next = at
		}
	}
	for _, ent := range e.steppers {
		if ent.q == nil {
			return e.now
		}
		nw := ent.q.NextWork(e.now)
		if nw <= e.now {
			return e.now
		}
		if nw < next {
			next = nw
		}
	}
	return next
}

// skipTo jumps the timer to slot to, letting Skipper components
// account the span [e.now, to) in bulk.
func (e *Engine) skipTo(to slot.Time) {
	for _, ent := range e.steppers {
		if ent.sk != nil {
			ent.sk.SkipTo(e.now, to)
		}
	}
	e.now = to
}

// Run steps the simulation until Now() == until (exclusive of slot
// until itself), fast-forwarding over regions every component declares
// idle. It is a no-op when until ≤ Now(). Per the determinism
// contract, Run and RunDense produce identical results.
func (e *Engine) Run(until slot.Time) {
	for e.now < until {
		e.Step()
		if e.now >= until {
			return
		}
		if next := e.nextWork(until); next > e.now {
			e.skipTo(next)
		}
	}
}

// RunDense steps every slot until Now() == until without
// fast-forwarding — the reference semantics Run must match.
func (e *Engine) RunDense(until slot.Time) {
	for e.now < until {
		e.Step()
	}
}
