// Streaming: the bounded-memory Recorder. Moments come from
// Welford's online algorithm (numerically stable running mean and sum
// of squared deviations), extrema are tracked exactly, and
// percentiles come from a quantile Sketch — so a recorder's memory is
// independent of how many observations flow through it, which is what
// makes paper-scale 1000-trial × 100 s sweeps tractable without
// buffering every completion. With the KLL backend (NewStreamingKLL)
// two recorders also Merge exactly: moments combine by the parallel
// Welford update, extrema by min/max, and the sketches fold without
// degrading ε — the primitive behind cross-trial sweep quantiles.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
)

// Streaming accumulates scalar observations in bounded memory: exact
// n/mean/variance/min/max, ε-approximate percentiles. Construct with
// NewStreaming (per-trial GK backend) or NewStreamingKLL (mergeable
// backend); the zero value is not usable (the sketch needs its ε).
type Streaming struct {
	n      int64
	mean   float64
	m2     float64 // sum of squared deviations from the running mean
	min    float64
	max    float64
	sketch Sketch
}

// NewStreaming returns an empty streaming recorder whose percentile
// queries are accurate to eps ranks per observation (≤ 0 selects
// DefaultSketchEpsilon). The quantile backend is the per-trial GK
// sketch, which cannot Merge; use NewStreamingKLL for recorders that
// fold into sweep aggregates.
func NewStreaming(eps float64) *Streaming {
	return &Streaming{sketch: NewGKSketch(eps)}
}

// NewStreamingKLL returns an empty streaming recorder backed by the
// mergeable KLL sketch, its compaction coins seeded from seed (pass
// the trial seed so the recorder is a pure function of trial
// identity). Merge on such recorders is fold-exact: the merged ε is
// the common ε, not a sum.
func NewStreamingKLL(eps float64, seed uint64) *Streaming {
	return &Streaming{sketch: NewKLL(eps, seed)}
}

// Epsilon returns the percentile sketch's rank-error bound.
func (s *Streaming) Epsilon() float64 { return s.sketch.Epsilon() }

// Mergeable reports whether this recorder's quantile backend supports
// fold-exact Merge (true for the KLL backend, false for GK).
func (s *Streaming) Mergeable() bool {
	_, ok := s.sketch.(MergeableSketch)
	return ok
}

// SketchTuples returns the quantile sketch's current summary size
// (for memory accounting in tests and benchmarks).
func (s *Streaming) SketchTuples() int { return s.sketch.Tuples() }

// Add absorbs one observation.
func (s *Streaming) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	s.sketch.Add(v)
}

// N returns the number of observations.
func (s *Streaming) N() int { return int(s.n) }

// Mean returns the arithmetic mean, or 0 for an empty recorder.
func (s *Streaming) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the population variance, or 0 for fewer than two
// observations (matching Sample).
func (s *Streaming) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Streaming) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Streaming) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 when empty.
func (s *Streaming) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) from the
// sketch: a value whose rank is within ⌈εn⌉ of the exact nearest
// rank. Empty recorders return 0, matching Sample.
func (s *Streaming) Percentile(p float64) float64 {
	return s.sketch.Quantile(p / 100)
}

// String summarizes the recorder in Sample's format.
func (s *Streaming) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f p99=%.0f max=%.0f",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Percentile(99), s.Max())
}

// Merge folds other into the receiver: counts add, moments combine by
// the parallel Welford update, extrema by min/max, and the quantile
// sketches Merge (which requires both recorders to carry the
// mergeable KLL backend at the same ε). The receiver is unchanged on
// error. Folding a fixed sequence of recorders in a fixed order is
// deterministic, so sweep aggregates render byte-identically for any
// worker count.
func (s *Streaming) Merge(other *Streaming) error {
	ms, ok := s.sketch.(MergeableSketch)
	if !ok {
		return fmt.Errorf("metrics: Merge target has non-mergeable %T backend", s.sketch)
	}
	if other.n == 0 {
		// Still fold the coin stream so aggregate identity covers
		// every trial, observed or not.
		return ms.Merge(other.sketch)
	}
	if err := ms.Merge(other.sketch); err != nil {
		return err
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	s.mean += delta * float64(other.n) / float64(n)
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	s.n = n
	return nil
}

// Clone returns a deep copy of a KLL-backed recorder (aggregates
// clone the first folded trial rather than aliasing it). GK-backed
// recorders cannot be cloned — they exist per trial only.
func (s *Streaming) Clone() (*Streaming, error) {
	k, ok := s.sketch.(*KLL)
	if !ok {
		return nil, fmt.Errorf("metrics: cannot clone recorder with %T backend", s.sketch)
	}
	c := *s
	c.sketch = k.Clone()
	return &c, nil
}

// streamingJSON is the recorder's wire form. Only KLL-backed
// recorders round-trip: serialization exists so sweeps can persist
// merged distributions, and only the mergeable backend has a lossless
// mergeable state worth shipping.
type streamingJSON struct {
	N      int64           `json:"n"`
	Mean   float64         `json:"mean"`
	M2     float64         `json:"m2"`
	Min    float64         `json:"min"`
	Max    float64         `json:"max"`
	Sketch json.RawMessage `json:"sketch"`
}

// MarshalJSON serializes a KLL-backed recorder.
func (s *Streaming) MarshalJSON() ([]byte, error) {
	k, ok := s.sketch.(*KLL)
	if !ok {
		return nil, fmt.Errorf("metrics: cannot marshal recorder with %T backend", s.sketch)
	}
	sk, err := json.Marshal(k)
	if err != nil {
		return nil, err
	}
	return json.Marshal(streamingJSON{
		N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max, Sketch: sk,
	})
}

// UnmarshalJSON decodes a KLL-backed recorder, revalidating every
// wire claim: the sketch's own invariants (see KLL.UnmarshalJSON),
// the moment fields' finiteness, m2 ≥ 0, min ≤ max, and n equal to
// the sketch's recomputed observation count. See
// TestStreamingUnmarshalRejectsMalformed for the case table.
func (s *Streaming) UnmarshalJSON(data []byte) error {
	var w streamingJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Sketch) == 0 {
		return fmt.Errorf("metrics: recorder wire form missing sketch")
	}
	k := &KLL{}
	if err := json.Unmarshal(w.Sketch, k); err != nil {
		return err
	}
	if w.N != k.N() {
		return fmt.Errorf("metrics: recorder wire n=%d disagrees with sketch n=%d", w.N, k.N())
	}
	for _, f := range [...]float64{w.Mean, w.M2, w.Min, w.Max} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("metrics: recorder wire holds non-finite moment")
		}
	}
	if w.M2 < 0 {
		return fmt.Errorf("metrics: recorder wire m2=%g negative", w.M2)
	}
	if w.N > 0 && w.Min > w.Max {
		return fmt.Errorf("metrics: recorder wire min=%g exceeds max=%g", w.Min, w.Max)
	}
	if w.N == 0 && (w.Mean != 0 || w.M2 != 0 || w.Min != 0 || w.Max != 0) {
		return fmt.Errorf("metrics: recorder wire empty but moments nonzero")
	}
	s.n = w.N
	s.mean = w.Mean
	s.m2 = w.M2
	s.min = w.Min
	s.max = w.Max
	s.sketch = k
	return nil
}
