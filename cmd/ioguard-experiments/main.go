// Command ioguard-experiments regenerates the tables and figures of
// the paper's evaluation (Sec. V). Each experiment prints the same
// rows/series the paper reports.
//
// Usage:
//
//	ioguard-experiments -exp fig6
//	ioguard-experiments -exp table1
//	ioguard-experiments -exp fig7a [-trials N] [-hyperperiods N] [-workers N]
//	ioguard-experiments -exp fig7b [-trials N]
//	ioguard-experiments -exp fig7c [-trials N]
//	ioguard-experiments -exp fig8 [-maxeta N]
//	ioguard-experiments -exp ablation [-util U]
//	ioguard-experiments -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"ioguard/internal/cliflags"
	"ioguard/internal/experiments"
	"ioguard/internal/footprint"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig6|table1|fig7a|fig7b|fig7c|fig8|ablation|preload|response|robust|all (robust is opt-in, not part of all)")
		trials  = flag.Int("trials", 5, "trials per case-study point (paper: 1000)")
		hps     = flag.Int("hyperperiods", 3, "horizon in workload hyper-periods (paper: 100 s runs)")
		maxEta  = flag.Int("maxeta", 4, "maximum scaling factor η for fig8")
		utilArg = flag.Float64("util", 0.8, "target utilization for the ablation")
		seed    = flag.Int64("seed", 1, "base random seed")
		dense   = flag.Bool("dense", false, "step every slot instead of fast-forwarding idle regions (disables the decoupled per-device clocks; output is identical either way)")
		quants  = flag.Bool("quantiles", false, "after each case-study table, print the merged cross-trial response/tardiness quantiles per (system, util) cell (exact in -metrics exact, ε-bounded in -metrics stream)")
	)
	execFlags := cliflags.RegisterDefault()
	flag.Parse()
	r, err := execFlags.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-experiments:", err)
		os.Exit(1)
	}
	if err := run(*exp, *trials, *hps, *maxEta, *utilArg, *seed, *dense, *quants, r); err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, trials, hps, maxEta int, util float64, seed int64, dense, quants bool, ec cliflags.Resolved) error {
	workers := ec.Workers
	switch exp {
	case "fig6":
		return fig6()
	case "table1":
		return table1()
	case "fig7a":
		return fig7(4, trials, hps, seed, dense, quants, ec)
	case "fig7b":
		return fig7(8, trials, hps, seed, dense, quants, ec)
	case "fig7c":
		// Fig. 7(c) shares the sweep; print both VM groups' throughput.
		if err := fig7(4, trials, hps, seed, dense, quants, ec); err != nil {
			return err
		}
		return fig7(8, trials, hps, seed, dense, quants, ec)
	case "fig8":
		return fig8(maxEta)
	case "ablation":
		return ablation(util, trials, seed, workers)
	case "preload":
		return preload(util, trials, seed, workers)
	case "response":
		return response(util, seed)
	case "robust":
		return robust(util, trials, hps, seed, dense, ec)
	case "all":
		if err := fig6(); err != nil {
			return err
		}
		if err := table1(); err != nil {
			return err
		}
		if err := fig7(4, trials, hps, seed, dense, quants, ec); err != nil {
			return err
		}
		if err := fig7(8, trials, hps, seed, dense, quants, ec); err != nil {
			return err
		}
		return fig8(maxEta)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func fig6() error {
	out, err := footprint.Render()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 6 — run-time software overhead (KB)")
	fmt.Print(out)
	fmt.Println()
	return nil
}

func table1() error {
	out, err := experiments.RenderTable1()
	if err != nil {
		return err
	}
	fmt.Print(out)
	fmt.Println()
	return nil
}

func fig7(vms, trials, hps int, seed int64, dense, quants bool, ec cliflags.Resolved) error {
	points, err := experiments.CaseStudy(experiments.CaseStudyConfig{
		VMs:          vms,
		Trials:       trials,
		HyperPeriods: hps,
		Seed:         seed,
		Workers:      ec.Workers,
		Dense:        dense,
		Metrics:      ec.Metrics,
		ShardWorkers: ec.ShardWorkers,
		DrainMin:     ec.DrainMin,
		DrainMax:     ec.DrainMax,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCaseStudy(points, vms))
	fmt.Println()
	if quants {
		fmt.Print(experiments.RenderCaseStudyQuantiles(points, vms))
		fmt.Println()
	}
	return nil
}

func fig8(maxEta int) error {
	points, err := experiments.Fig8(maxEta)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig8(points))
	fmt.Println()
	return nil
}

func preload(util float64, trials int, seed int64, workers int) error {
	points, err := experiments.PreloadSweep(8, util, nil, trials, seed, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderPreloadSweep(points, 8, util))
	return nil
}

func response(util float64, seed int64) error {
	profiles, err := experiments.ResponseProfile(8, util, seed)
	if err != nil {
		return err
	}
	fmt.Printf("Response-time distributions at U=%.2f, 8 VMs\n\n", util)
	fmt.Print(experiments.RenderResponseProfile(profiles))
	return nil
}

// robust runs the fault-scenario sweep across every buildable system
// (including BS|PART). Deliberately not part of -exp all: the
// committed experiments_output.txt pins the clean reproduction.
func robust(util float64, trials, hps int, seed int64, dense bool, ec cliflags.Resolved) error {
	points, err := experiments.Robustness(experiments.RobustnessConfig{
		VMs:          4,
		Util:         util,
		Trials:       trials,
		HyperPeriods: hps,
		Seed:         seed,
		Workers:      ec.Workers,
		ShardWorkers: ec.ShardWorkers,
		Metrics:      ec.Metrics,
		Dense:        dense,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderRobustness(points, 4, util))
	return nil
}

func ablation(util float64, trials int, seed int64, workers int) error {
	points, err := experiments.SchedulerAblation(8, util, trials, seed, workers)
	if err != nil {
		return err
	}
	fmt.Printf("R-channel scheduler ablation at U=%.2f, 8 VMs\n", util)
	for _, p := range points {
		fmt.Printf("%-24s %s\n", p.Config, p.Agg)
	}
	return nil
}
