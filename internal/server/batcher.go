// The request batcher: the server's synchronous execution path.
// Incoming trial cells from concurrent HTTP requests are coalesced
// into batches — flushed when BatchSize cells have gathered or
// MaxWait has elapsed since the batch opened — and each batch runs on
// the deterministic system.RunCells worker pool. Coalescing amortizes
// the pool's spin-up across requests, which is what lets the server
// sustain thousands of small trials per second.
//
// Admission control is a reservation counter against QueueDepth:
// Enqueue reserves all of a request's cells or none of them
// (all-or-nothing), so a multi-trial request is never half-admitted
// and an admitted cell always has channel capacity waiting — sends
// after a successful reservation cannot block. Refused requests get
// ErrSaturated, which the HTTP layer maps to 429 + Retry-After.
//
// Per-cell timing (queue wait, batch execution time, batch size) is
// recorded into bounded-memory metrics.Streaming recorders and
// returned with every result, so clients see the server-side latency
// breakdown of each trial.
package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ioguard/internal/metrics"
	"ioguard/internal/system"
)

// ErrSaturated is returned by Enqueue and JobStore.Submit when
// admission control refuses the request because the bounded queue is
// full. The HTTP layer maps it to 429 Too Many Requests.
var ErrSaturated = errors.New("server: saturated, retry later")

// BatcherConfig tunes the synchronous batch executor. Zero values
// select the defaults.
type BatcherConfig struct {
	// BatchSize caps the cells coalesced into one batch (default 64).
	BatchSize int
	// MaxWait bounds how long an open batch waits for more cells
	// before flushing (default 2ms).
	MaxWait time.Duration
	// QueueDepth bounds admitted-but-unstarted cells; Enqueue refuses
	// requests beyond it (default 1024).
	QueueDepth int
	// Workers is the RunCells goroutine count per batch (≤ 0 =
	// GOMAXPROCS).
	Workers int
	// StreamEps is the ε of the timing recorders' percentile sketch
	// (default 0.01).
	StreamEps float64
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.StreamEps <= 0 {
		c.StreamEps = 0.01
	}
	return c
}

// Result is one cell's outcome, delivered on Unit.Done.
type Result struct {
	Res    *metrics.TrialResult
	Err    error
	Timing Timing
}

// Unit is one admitted cell: a handle the caller waits on.
type Unit struct {
	cell     system.Cell
	enqueued time.Time
	done     chan Result // buffered (cap 1): the batch never blocks on a slow reader
}

// Done returns the channel carrying the cell's result. It yields
// exactly one value.
func (u *Unit) Done() <-chan Result { return u.done }

// Batcher coalesces admitted cells into batches and executes them on
// the deterministic worker pool.
type Batcher struct {
	cfg BatcherConfig

	// queued is the admission reservation: cells admitted but not yet
	// picked into a running batch. It is incremented before the channel
	// send and decremented when the batch collects the cell, so the
	// channel (cap QueueDepth) always has room for reserved sends.
	queued           atomic.Int64
	rejectedUnits    atomic.Int64
	rejectedRequests atomic.Int64
	acceptedUnits    atomic.Int64
	executedUnits    atomic.Int64
	batches          atomic.Int64

	mu     sync.RWMutex // guards closed (write: Close) vs Enqueue sends (read)
	closed bool
	in     chan *Unit
	drained chan struct{}

	// recMu guards the timing recorders (written per batch, read by
	// Stats).
	recMu     sync.Mutex
	queueWait *metrics.Streaming // milliseconds
	execTime  *metrics.Streaming // milliseconds per batch
	batchSize *metrics.Streaming // cells per batch
}

// NewBatcher starts the collector goroutine and returns the batcher.
func NewBatcher(cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:       cfg,
		in:        make(chan *Unit, cfg.QueueDepth),
		drained:   make(chan struct{}),
		queueWait: metrics.NewStreaming(cfg.StreamEps),
		execTime:  metrics.NewStreaming(cfg.StreamEps),
		batchSize: metrics.NewStreaming(cfg.StreamEps),
	}
	go b.collect()
	return b
}

// Enqueue admits all of cells or none of them. On success every
// returned Unit will receive exactly one Result, even across Close
// (admitted work is drained, never dropped). On saturation it returns
// ErrSaturated and admits nothing.
func (b *Batcher) Enqueue(cells []system.Cell) ([]*Unit, error) {
	n := int64(len(cells))
	if n == 0 {
		return nil, nil
	}
	if b.queued.Add(n) > int64(b.cfg.QueueDepth) {
		b.queued.Add(-n)
		b.rejectedUnits.Add(n)
		b.rejectedRequests.Add(1)
		return nil, ErrSaturated
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		b.queued.Add(-n)
		return nil, errors.New("server: batcher closed")
	}
	units := make([]*Unit, len(cells))
	now := time.Now()
	for i, c := range cells {
		u := &Unit{cell: c, enqueued: now, done: make(chan Result, 1)}
		units[i] = u
		b.in <- u // cannot block: reservation ≤ QueueDepth = channel cap
	}
	b.acceptedUnits.Add(n)
	return units, nil
}

// Close stops admission and drains: every already-admitted cell is
// executed and its Unit resolved before Close returns.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.drained
		return
	}
	b.closed = true
	close(b.in)
	b.mu.Unlock()
	<-b.drained
}

// collect is the single collector goroutine: it opens a batch on the
// first arriving cell, tops it up until BatchSize or MaxWait, then
// executes. A closed input channel still yields its buffered cells
// before reporting !ok, so close-time draining falls out naturally.
func (b *Batcher) collect() {
	defer close(b.drained)
	for {
		u, ok := <-b.in
		if !ok {
			return
		}
		batch := []*Unit{u}
		timer := time.NewTimer(b.cfg.MaxWait)
	fill:
		for len(batch) < b.cfg.BatchSize {
			select {
			case u2, ok := <-b.in:
				if !ok {
					break fill
				}
				batch = append(batch, u2)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.runBatch(batch)
	}
}

// runBatch executes one batch on the deterministic pool and resolves
// every unit. RunCells fails the whole batch on any cell error; to
// keep one bad request from poisoning its batch-mates, a failed batch
// falls back to running each cell individually so errors attribute to
// exactly the cell that caused them.
func (b *Batcher) runBatch(batch []*Unit) {
	b.queued.Add(-int64(len(batch)))
	cells := make([]system.Cell, len(batch))
	for i, u := range batch {
		cells[i] = u.cell
	}
	start := time.Now()
	results, err := system.RunCells(cells, b.cfg.Workers)
	if err != nil {
		results = make([]*metrics.TrialResult, len(cells))
		errs := make([]error, len(cells))
		for i := range cells {
			one, oneErr := system.RunCells(cells[i:i+1], 1)
			if oneErr != nil {
				errs[i] = oneErr
				continue
			}
			results[i] = one[0]
		}
		b.resolve(batch, results, errs, start)
		return
	}
	b.resolve(batch, results, make([]error, len(batch)), start)
}

func (b *Batcher) resolve(batch []*Unit, results []*metrics.TrialResult, errs []error, start time.Time) {
	execMs := float64(time.Since(start)) / float64(time.Millisecond)
	b.batches.Add(1)
	b.executedUnits.Add(int64(len(batch)))
	b.recMu.Lock()
	b.execTime.Add(execMs)
	b.batchSize.Add(float64(len(batch)))
	for _, u := range batch {
		b.queueWait.Add(float64(start.Sub(u.enqueued)) / float64(time.Millisecond))
	}
	b.recMu.Unlock()
	for i, u := range batch {
		u.done <- Result{
			Res: results[i],
			Err: errs[i],
			Timing: Timing{
				QueueWaitMs: float64(start.Sub(u.enqueued)) / float64(time.Millisecond),
				ExecMs:      execMs,
				BatchSize:   len(batch),
			},
		}
	}
}

// BatcherStats is the snapshot served by GET /v1/stats.
type BatcherStats struct {
	Batches          int64   `json:"batches"`
	AcceptedTrials   int64   `json:"accepted_trials"`
	ExecutedTrials   int64   `json:"executed_trials"`
	RejectedTrials   int64   `json:"rejected_trials"`
	RejectedRequests int64   `json:"rejected_requests"`
	Queued           int64   `json:"queued"`
	QueueDepth       int     `json:"queue_depth"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	QueueWaitMeanMs  float64 `json:"queue_wait_mean_ms"`
	QueueWaitP99Ms   float64 `json:"queue_wait_p99_ms"`
	ExecMeanMs       float64 `json:"exec_mean_ms"`
	ExecP99Ms        float64 `json:"exec_p99_ms"`
}

// Stats snapshots the batcher's counters and timing recorders.
func (b *Batcher) Stats() BatcherStats {
	b.recMu.Lock()
	st := BatcherStats{
		MeanBatchSize:   b.batchSize.Mean(),
		QueueWaitMeanMs: b.queueWait.Mean(),
		QueueWaitP99Ms:  b.queueWait.Percentile(99),
		ExecMeanMs:      b.execTime.Mean(),
		ExecP99Ms:       b.execTime.Percentile(99),
	}
	b.recMu.Unlock()
	st.Batches = b.batches.Load()
	st.AcceptedTrials = b.acceptedUnits.Load()
	st.ExecutedTrials = b.executedUnits.Load()
	st.RejectedTrials = b.rejectedUnits.Load()
	st.RejectedRequests = b.rejectedRequests.Load()
	st.Queued = b.queued.Load()
	st.QueueDepth = b.cfg.QueueDepth
	return st
}
