// Command ioguard-sim runs one slot-accurate simulation of a chosen
// architecture on the automotive case-study workload and prints the
// trial metrics (and optionally a Gantt excerpt of the I/O-GUARD
// hypervisor's schedule).
//
// Usage:
//
//	ioguard-sim -system ioguard-70 -vms 8 -util 0.85 -hyperperiods 4
//	ioguard-sim -system rtxen -vms 4 -util 0.6
//	ioguard-sim -system ioguard-40 -gantt 200
//	ioguard-sim -system ioguard-70 -trials 50 -workers 4
//	ioguard-sim -system ioguard-70 -hyperperiods 64 -metrics stream
//
// With -trials N > 1 the command repeats the trial across independent
// seeds on a deterministic worker pool and prints the aggregate
// (success ratio, throughput distribution) instead of single-trial
// metrics; -workers only changes wall-clock time, never the output.
//
// -metrics selects the collector implementation: exact (default)
// buffers every completion and reports exact percentiles; stream keeps
// collector memory independent of the horizon (Welford moments plus a
// Greenwald–Khanna quantile sketch), which is what makes very long
// -hyperperiods runs tractable. Counters, throughput and min/max are
// identical in both modes. In stream mode -csv writes rows online
// through a trace.CSVSink instead of buffering the event log.
//
// System specs, the printed metrics blocks and the -workers /
// -shard-workers / -metrics trio are shared with ioguard-server
// (internal/experiments, internal/cliflags): a server-executed trial
// at the same parameters is byte-identical to this command's output.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ioguard/internal/cliflags"
	"ioguard/internal/experiments"
	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
	"ioguard/internal/trace"
	"ioguard/internal/workload"
)

// openTraceFile creates the -csv output file. A variable so tests can
// substitute a failing writer and exercise the flush-error paths.
var openTraceFile = func(path string) (io.WriteCloser, error) { return os.Create(path) }

func main() {
	var (
		sysName = flag.String("system", "ioguard-70", experiments.SystemSpecs())
		family  = flag.String("workload", "case", "workload family: case (automotive case study) | avionics (ARINC-653-style long partition periods, H = 4,000,000 slots; -util is ignored)")
		vms     = flag.Int("vms", 4, "number of virtual machines")
		util    = flag.Float64("util", 0.7, "target device utilization (case family only)")
		hps     = flag.Int("hyperperiods", 3, "horizon in workload hyper-periods")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 1, "repeat across N independent seeds and print the aggregate")
		gantt   = flag.Int("gantt", 0, "print a Gantt chart of the first N slots (I/O-GUARD only, single trial)")
		csvPath = flag.String("csv", "", "write the execution trace as CSV (I/O-GUARD only, single trial)")
		byTask  = flag.Bool("bytask", false, "print per-task completion/miss statistics (single trial)")
		dense   = flag.Bool("dense", false, "step every slot instead of fast-forwarding idle regions (disables the decoupled per-device clocks; output is identical either way)")
	)
	exec := cliflags.RegisterDefault()
	flag.Parse()
	r, err := exec.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-sim:", err)
		os.Exit(1)
	}
	if err := run(os.Stdout, *sysName, *family, *vms, *util, *hps, *seed, *trials, *gantt, *csvPath, *byTask, *dense, r); err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-sim:", err)
		os.Exit(1)
	}
}

// generateFamily dispatches on the -workload flag. The case-study
// family sweeps -util; the avionics family's utilization is fixed by
// its catalogue (sparse partition windows), so -util is ignored there.
func generateFamily(family string, vms int, util float64, seed int64) (task.Set, error) {
	switch family {
	case "case":
		return workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: seed})
	case "avionics":
		return workload.GenerateAvionics(workload.AvionicsConfig{VMs: vms, Seed: seed})
	default:
		return nil, fmt.Errorf("unknown workload family %q (case|avionics)", family)
	}
}

func run(out io.Writer, sysName, family string, vms int, util float64, hps int, seed int64, trials, gantt int, csvPath string, byTask, dense bool, ec cliflags.Resolved) (err error) {
	mode := ec.Metrics
	ts, err := generateFamily(family, vms, util, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload: %d tasks, per-device utilization %v, hyper-period %d slots\n",
		len(ts), formatUtil(workload.DeviceUtilization(ts)), ts.Hyperperiod())

	if trials > 1 {
		return runSweep(out, sysName, family, vms, util, hps, seed, trials, dense, ec)
	}

	// Trace plumbing. The buffered Recorder backs -gantt (it renders
	// from the event log); -csv goes through the streaming CSVSink in
	// stream mode (rows written as events happen, bounded memory) and
	// through the Recorder's buffered export in exact mode. Completion
	// events reach either via Collector.Observe — online, not an
	// after-the-run Each replay.
	rec := &trace.Recorder{}
	var sink *trace.CSVSink
	if csvPath != "" && mode == system.MetricsStream {
		csvFile, ferr := openTraceFile(csvPath)
		if ferr != nil {
			return ferr
		}
		defer csvFile.Close()
		if sink, err = trace.NewCSVSink(csvFile); err != nil {
			return err
		}
		// Sticky-error contract: the sink swallows write errors on the
		// hot path and surfaces them at Flush, so EVERY exit path —
		// including a trial error after partial trace output — must
		// join the flush error into the command's result. The success
		// path below flushes inline (to order the error before its
		// status message) and clears sink so this runs only on early
		// exits.
		defer func() {
			if sink != nil {
				err = errors.Join(err, sink.Flush())
			}
		}()
	}
	wantTrace := gantt > 0 || csvPath != ""
	onExec := rec.OnExecute
	if sink != nil {
		onExec = sink.OnExecute
	}
	build, err := experiments.BuilderFor(sysName)
	if err != nil {
		return err
	}
	if wantTrace {
		build = withTrace(build, onExec)
	}
	var captured *system.Collector
	wrapped := func(tr system.Trial, col *system.Collector) (system.System, error) {
		captured = col
		if byTask {
			col.TrackByTask()
		}
		if sink != nil {
			col.Observe(sink.OnComplete)
		} else if csvPath != "" {
			col.Observe(rec.OnComplete)
		}
		return build(tr, col)
	}
	res, err := system.Run(wrapped, system.Trial{
		VMs:          vms,
		Tasks:        ts,
		Horizon:      ts.Hyperperiod() * slot.Time(hps),
		Seed:         seed,
		Dense:        dense,
		Metrics:      mode,
		ShardWorkers: ec.ShardWorkers,
		DrainMin:     ec.DrainMin,
		DrainMax:     ec.DrainMax,
		Faults:       ec.Faults,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiments.RenderTrial(sysName, res))
	if gantt > 0 {
		if rec.Len() == 0 {
			fmt.Fprintln(out, "(no trace recorded: -gantt is only wired for ioguard-* systems)")
		} else {
			fmt.Fprintln(out)
			fmt.Fprint(out, rec.Gantt(0, slot.Time(gantt)))
		}
	}
	if byTask && captured != nil {
		fmt.Fprintln(out)
		fmt.Fprint(out, system.RenderByTask(captured.ByTask()))
	}
	if csvPath != "" {
		if sink != nil {
			s := sink
			sink = nil // the deferred joiner must not flush again
			if err := s.Flush(); err != nil {
				return err
			}
			fmt.Fprintf(out, "streamed trace events to %s\n", csvPath)
		} else {
			f, err := openTraceFile(csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteCSV(f); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %d trace events to %s\n", rec.Len(), csvPath)
		}
	}
	return nil
}

// runSweep repeats the trial across independent release seeds on the
// deterministic worker pool and prints the aggregate.
func runSweep(out io.Writer, sysName, family string, vms int, util float64, hps int, seed int64, trials int, dense bool, ec cliflags.Resolved) error {
	ts, err := generateFamily(family, vms, util, seed)
	if err != nil {
		return err
	}
	build, err := experiments.BuilderFor(sysName)
	if err != nil {
		return err
	}
	agg, err := system.ParallelSweep(build, system.Trial{
		VMs:          vms,
		Tasks:        ts,
		Horizon:      ts.Hyperperiod() * slot.Time(hps),
		Seed:         seed,
		Dense:        dense,
		Metrics:      ec.Metrics,
		ShardWorkers: ec.ShardWorkers,
		DrainMin:     ec.DrainMin,
		DrainMax:     ec.DrainMax,
		Faults:       ec.Faults,
	}, trials, ec.Workers)
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiments.RenderAggregate(sysName, agg))
	return nil
}

func formatUtil(m map[string]float64) string {
	parts := make([]string, 0, len(m))
	for _, dev := range []string{"ethernet", "flexray"} {
		if u, ok := m[dev]; ok {
			parts = append(parts, fmt.Sprintf("%s=%.2f", dev, u))
		}
	}
	return strings.Join(parts, " ")
}

// withTrace hooks the per-slot execution callback into every manager
// of an I/O-GUARD system (baselines have no managers; the hook is a
// no-op for them, matching -gantt's documented scope).
func withTrace(build system.Builder, onExec func(slot.Time, *task.Job)) system.Builder {
	return func(tr system.Trial, col *system.Collector) (system.System, error) {
		s, err := build(tr, col)
		if err != nil {
			return nil, err
		}
		if hv, ok := s.(interface{ Hypervisor() *hypervisor.Hypervisor }); ok {
			for _, dev := range hv.Hypervisor().Devices() {
				mgr, err := hv.Hypervisor().Manager(dev)
				if err != nil {
					return nil, err
				}
				mgr.OnExecute = onExec
			}
		}
		return s, nil
	}
}
