package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"ioguard/internal/core"
	"ioguard/internal/hypervisor"
	"ioguard/internal/metrics"
	"ioguard/internal/system"
	"ioguard/internal/task"
	"ioguard/internal/workload"
)

// runBoth executes the identical trial twice — dense slot stepping and
// idle-slot fast-forward — and returns both results.
func runBoth(t *testing.T, build system.Builder, tr system.Trial) (dense, ff *metrics.TrialResult) {
	t.Helper()
	tr.Dense = true
	dense, err := system.Run(build, tr)
	if err != nil {
		t.Fatalf("dense run: %v", err)
	}
	tr.Dense = false
	ff, err = system.Run(build, tr)
	if err != nil {
		t.Fatalf("fast-forward run: %v", err)
	}
	return dense, ff
}

func requireEqual(t *testing.T, dense, ff *metrics.TrialResult) {
	t.Helper()
	if !reflect.DeepEqual(dense, ff) {
		t.Errorf("dense and fast-forward results diverge:\ndense: %+v\nff:    %+v", dense, ff)
	}
}

// TestDenseFastForwardEquivalence is the determinism contract's
// enforcement point: for every case-study system, across randomized
// seeded workloads, dense stepping and fast-forward must produce
// identical TrialResults — the same completions, misses, drops and
// bytes, and the same response/tardiness samples in the same order.
func TestDenseFastForwardEquivalence(t *testing.T) {
	utils := []float64{0.40, 1.00}
	seeds := []int64{1, 7919, 424243}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		for _, util := range utils {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/u%.2f/s%d", name, util, seed), func(t *testing.T) {
					ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: util, Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: seed}
					dense, ff := runBoth(t, build, tr)
					requireEqual(t, dense, ff)
				})
			}
		}
	}
}

// TestDenseFastForwardEquivalenceModes covers the scheduler modes the
// case study does not exercise: ServerEDF with synthesized servers
// (strict budget polling) and work-conserving slack reclaiming, both
// of which have their own NextWork logic.
func TestDenseFastForwardEquivalenceModes(t *testing.T) {
	light := task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "spi", Period: 512, WCET: 8, Deadline: 512, OpBytes: 64, Jitter: 32},
		{ID: 1, VM: 1, Kind: task.Function, Device: "spi", Period: 1024, WCET: 16, Deadline: 1024, OpBytes: 64, Jitter: 64},
	}
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"server-edf", core.Config{VMs: 2, Mode: hypervisor.ServerEDF, AutoServers: true}},
		{"server-edf+reclaim", core.Config{VMs: 2, Mode: hypervisor.ServerEDF, AutoServers: true, WorkConserving: true}},
		{"direct-edf+reclaim", core.Config{VMs: 2, PreloadFrac: 0.5, Mode: hypervisor.DirectEDF, WorkConserving: true}},
	}
	for _, m := range modes {
		cfg := m.cfg
		build := func(tr system.Trial, col *system.Collector) (system.System, error) {
			return core.New(cfg, tr.Tasks, col)
		}
		for _, seed := range []int64{3, 17} {
			t.Run(fmt.Sprintf("%s/s%d", m.name, seed), func(t *testing.T) {
				tr := system.Trial{VMs: 2, Tasks: light, Horizon: 8192, Seed: seed}
				dense, ff := runBoth(t, build, tr)
				requireEqual(t, dense, ff)
			})
		}
	}
}

// TestDenseFastForwardEquivalenceSparse exercises deep skips: the
// stretched case-study workload leaves most slots idle, so nearly all
// progress happens through SkipTo spans rather than Step calls —
// exactly the regime the fast-forward exists for.
func TestDenseFastForwardEquivalenceSparse(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ts, err = workload.Stretch(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod(), Seed: 11}
	for _, name := range []string{"I/O-GUARD-70", "BS|RT-XEN"} {
		build := Builders()[name]
		t.Run(name, func(t *testing.T) {
			dense, ff := runBoth(t, build, tr)
			requireEqual(t, dense, ff)
		})
	}
}
