package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"ioguard/internal/faults"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// stormPlan exercises every fault point at once.
func stormPlan(seed int64) faults.Plan {
	return faults.Plan{
		Seed:          seed,
		ReleaseJitter: 120,
		DropProb:      0.02,
		DupProb:       0.02,
		DelayProb:     0.05,
		DelayMax:      48,
	}
}

// TestFaultedEquivalence extends the dense/fast-forward/parallel
// equivalence contract to faulted trials: the fault realization is a
// pure per-job hash, so for every system and fault plan the dense
// loop, the sequential shard clocks and the epoch-barrier executor at
// any worker count must produce identical TrialResults — including
// the fault summary and the timing-accuracy distribution.
func TestFaultedEquivalence(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 0.7, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name string
		plan faults.Plan
	}{
		{"storm", stormPlan(77)},
		{"drop-only", faults.Plan{Seed: 77, DropProb: 0.05}},
	}
	builders := Builders()
	for _, name := range SystemNames() {
		build := builders[name]
		for _, p := range plans {
			t.Run(fmt.Sprintf("%s/%s", name, p.name), func(t *testing.T) {
				tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 31, Faults: p.plan}
				dense, ff := runBoth(t, build, tr)
				requireEqual(t, dense, ff)
				for _, workers := range workerCounts() {
					requireEqual(t, dense, runParallel(t, build, tr, workers))
				}
				if dense.Faults == nil {
					t.Fatal("faulted trial carried no fault summary")
				}
				if dense.Accuracy == nil {
					t.Fatal("faulted trial tracked no timing accuracy")
				}
			})
		}
	}
}

// TestFaultSeedReplayAndDivergence pins the -fault-seed contract: the
// same (seed, fault seed) replays the trial exactly; a different fault
// seed realizes different faults on the same workload.
func TestFaultSeedReplayAndDivergence(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 0.8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	build := Builders()["I/O-GUARD-70"]
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 12, Faults: stormPlan(1)}
	a, err := system.Run(build, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := system.Run(build, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault seed did not replay the trial")
	}
	tr.Faults.Seed = 2
	c, err := system.Run(build, tr)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Faults, c.Faults) && reflect.DeepEqual(a.Response, c.Response) {
		t.Fatal("different fault seeds realized identical faults")
	}
}

// TestCleanPlanLeavesResultsUntouched is the zero-fault guard: a zero
// plan must not move a byte of the trial result relative to a build
// that never heard of faults, and the accuracy opt-in must add only
// the accuracy recorder.
func TestCleanPlanLeavesResultsUntouched(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	build := Builders()["BS|BV"]
	base := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 3}
	plain, err := system.Run(build, base)
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.Faults = faults.Plan{Seed: 99} // a seed alone enables nothing
	withZero, err := system.Run(build, zero)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, plain, withZero)

	acc := base
	acc.Accuracy = true
	withAcc, err := system.Run(build, acc)
	if err != nil {
		t.Fatal(err)
	}
	if withAcc.Accuracy == nil {
		t.Fatal("accuracy opt-in tracked nothing")
	}
	if withAcc.Faults != nil {
		t.Fatal("clean accuracy run grew a fault summary")
	}
	withAcc.Accuracy = nil
	requireEqual(t, plain, withAcc)
}

// TestFaultPlanValidationSurfacesInRun pins that Run rejects a bad
// plan before building the system.
func TestFaultPlanValidationSurfacesInRun(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 2, TargetUtil: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := system.Trial{VMs: 2, Tasks: ts, Horizon: 100, Seed: 1,
		Faults: faults.Plan{DropProb: 2}}
	if _, err := system.Run(Builders()["BS|Legacy"], tr); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}
