package baseline

import (
	"sync/atomic"
	"testing"
	"time"

	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// TestMeshStatsConcurrentSnapshot reads Legacy.MeshStats and Dropped
// while the region shards step on parallel workers. Run under -race in
// CI, it proves the per-region counters are safe to snapshot mid-run —
// the satellite requirement that monitoring a live trial (the server's
// sweep endpoints do this) never tears or races a counter.
func TestMeshStatsConcurrentSnapshot(t *testing.T) {
	ts, err := workload.GenerateTelemetry(workload.TelemetryConfig{VMs: 4, HotDevice: "can", HotUtil: 0.6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var sys atomic.Pointer[Legacy]
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		l, err := NewLegacy(tr.VMs, tr.Tasks, col)
		if err == nil {
			sys.Store(l)
		}
		return l, err
	}
	tr := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 7, ShardWorkers: 2}

	done := make(chan error, 1)
	go func() {
		_, err := system.Run(build, tr)
		done <- err
	}()

	// Poll the counters for the whole run (yielding between snapshots —
	// a hard spin would starve the shard workers on a single-CPU host);
	// the snapshots must be race-free and monotone in the packet count.
	var lastInjected int64
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			l := sys.Load()
			if l == nil {
				t.Fatal("system never built")
			}
			final := l.MeshStats()
			if final.Injected < lastInjected {
				t.Errorf("final injected %d below observed %d", final.Injected, lastInjected)
			}
			if final.Delivered == 0 {
				t.Error("no deliveries recorded")
			}
			_ = l.Dropped()
			return
		default:
		}
		if l := sys.Load(); l != nil {
			s := l.MeshStats()
			if s.Injected < lastInjected {
				t.Fatalf("injected went backwards: %d -> %d", lastInjected, s.Injected)
			}
			lastInjected = s.Injected
			_ = l.Dropped()
		}
		time.Sleep(200 * time.Microsecond)
	}
}
