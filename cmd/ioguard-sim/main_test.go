package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ioguard/internal/cliflags"
	"ioguard/internal/server"
	"ioguard/internal/system"
)

// failingWriter accepts `left` bytes and then fails every write — the
// same shape internal/trace uses to pin the sink's sticky-error
// contract, here exercising the CLI's exit paths.
type failingWriter struct {
	left int
}

var errDiskFull = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errDiskFull
	}
	n := len(p)
	if n > w.left {
		n = w.left
		w.left = 0
		return n, errDiskFull
	}
	w.left -= n
	return n, nil
}

func (w *failingWriter) Close() error { return nil }

// withFailingTraceFile routes -csv output into a failing writer for
// the duration of the test.
func withFailingTraceFile(t *testing.T, budget int) {
	t.Helper()
	orig := openTraceFile
	openTraceFile = func(string) (io.WriteCloser, error) { return &failingWriter{left: budget}, nil }
	t.Cleanup(func() { openTraceFile = orig })
}

// TestStreamCSVFlushErrorSurfaces: a trial that itself succeeds must
// still fail the command when the streamed trace hit a write error —
// the sink swallows it on the hot path and only Flush reveals it.
func TestStreamCSVFlushErrorSurfaces(t *testing.T) {
	withFailingTraceFile(t, 64)
	var out bytes.Buffer
	err := run(&out, "ioguard-70", "case", 2, 0.5, 1, 1, 1, 0, "trace.csv", false, false, cliflags.Resolved{Workers: 1, Metrics: system.MetricsStream})
	if err == nil {
		t.Fatal("run succeeded despite failing trace writer")
	}
	if !strings.Contains(err.Error(), "streaming csv") || !errors.Is(err, errDiskFull) {
		t.Fatalf("error does not surface the sink failure: %v", err)
	}
	if strings.Contains(out.String(), "streamed trace events") {
		t.Fatalf("success message printed despite flush error:\n%s", out.String())
	}
}

// TestFlushErrorJoinedWithTrialError: when the trial errors after the
// sink was opened (partial trace output), the command must report
// BOTH the trial error and the flush error — the early-exit path used
// to drop the latter.
func TestFlushErrorJoinedWithTrialError(t *testing.T) {
	withFailingTraceFile(t, 3) // header alone overruns the budget
	var out bytes.Buffer
	// hyperperiods 0 → non-positive horizon: the trial fails after the
	// sink exists and the header row is buffered.
	err := run(&out, "ioguard-70", "case", 2, 0.5, 0, 1, 1, 0, "trace.csv", false, false, cliflags.Resolved{Workers: 1, Metrics: system.MetricsStream})
	if err == nil {
		t.Fatal("run succeeded despite trial error and failing writer")
	}
	if !strings.Contains(err.Error(), "non-positive horizon") {
		t.Fatalf("trial error lost: %v", err)
	}
	if !strings.Contains(err.Error(), "streaming csv") || !errors.Is(err, errDiskFull) {
		t.Fatalf("flush error lost on early-exit path: %v", err)
	}
}

// TestExactCSVWriteErrorSurfaces covers the buffered export path.
func TestExactCSVWriteErrorSurfaces(t *testing.T) {
	withFailingTraceFile(t, 8)
	var out bytes.Buffer
	err := run(&out, "ioguard-70", "case", 2, 0.5, 1, 1, 1, 0, "trace.csv", false, false, cliflags.Resolved{Workers: 1, Metrics: system.MetricsExact})
	if err == nil {
		t.Fatal("run succeeded despite failing trace writer")
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("exact-mode export error lost: %v", err)
	}
}

// TestServerTrialMatchesCLI pins the service contract: a trial
// executed through POST /v1/trials renders byte-identically to this
// command at the same parameters, for both collector modes and a
// sharded run.
func TestServerTrialMatchesCLI(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name    string
		system  string
		metrics system.MetricsMode
		shardWk int
	}{
		{"exact", "ioguard-70", system.MetricsExact, 0},
		{"stream", "ioguard-70", system.MetricsStream, 0},
		{"baseline", "bluevisor", system.MetricsExact, 0},
		{"sharded", "ioguard-70", system.MetricsExact, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cli bytes.Buffer
			if err := run(&cli, tc.system, "case", 2, 0.5, 1, 7, 1, 0, "", false, false, cliflags.Resolved{Workers: 1, Metrics: tc.metrics, ShardWorkers: tc.shardWk}); err != nil {
				t.Fatalf("cli run: %v", err)
			}

			body, _ := json.Marshal(map[string]any{
				"system":        tc.system,
				"vms":           2,
				"util":          0.5,
				"hyperperiods":  1,
				"seed":          7,
				"metrics":       tc.metrics.String(),
				"shard_workers": tc.shardWk,
			})
			resp, err := http.Post(ts.URL+"/v1/trials", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			sc := bufio.NewScanner(resp.Body)
			if !sc.Scan() {
				t.Fatalf("no result line: %v", sc.Err())
			}
			var line struct {
				Rendered string `json:"rendered"`
				Error    string `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad line: %v", err)
			}
			if line.Error != "" {
				t.Fatalf("server trial failed: %s", line.Error)
			}
			// The CLI prints a workload banner then the metrics block;
			// the server's rendered block must match it byte for byte.
			idx := strings.Index(cli.String(), "system: ")
			if idx < 0 {
				t.Fatalf("no metrics block in CLI output:\n%s", cli.String())
			}
			if got, want := line.Rendered, cli.String()[idx:]; got != want {
				t.Fatalf("server output diverges from CLI:\n--- server ---\n%s\n--- cli ---\n%s", got, want)
			}
		})
	}
}

// TestSweepAggregateMatchesCLI does the same for the asynchronous
// sweep path: submit, poll to done, compare the rendered aggregate.
func TestSweepAggregateMatchesCLI(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	var cli bytes.Buffer
	if err := run(&cli, "bluevisor", "case", 2, 0.5, 1, 7, 5, 0, "", false, false, cliflags.Resolved{Workers: 2, Metrics: system.MetricsExact}); err != nil {
		t.Fatalf("cli run: %v", err)
	}

	body, _ := json.Marshal(map[string]any{
		"system": "bluevisor", "vms": 2, "util": 0.5, "hyperperiods": 1, "seed": 7, "trials": 5,
	})
	resp, err := http.Post(hts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	// ?wait=1 blocks until the job is terminal; then fetch the status.
	wr, err := http.Get(hts.URL + "/v1/sweeps/" + st.ID + "/results?wait=1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	wr.Body.Close()
	sr, err := http.Get(hts.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer sr.Body.Close()
	var status struct {
		State     string `json:"state"`
		Aggregate *struct {
			Rendered string `json:"rendered"`
		} `json:"aggregate"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&status); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if status.State != "done" || status.Aggregate == nil {
		t.Fatalf("job not done: %+v", status)
	}
	idx := strings.Index(cli.String(), "system: ")
	if got, want := status.Aggregate.Rendered, cli.String()[idx:]; got != want {
		t.Fatalf("sweep aggregate diverges from CLI:\n--- server ---\n%s\n--- cli ---\n%s", got, want)
	}
}
