package benchsuite

import (
	"testing"

	"ioguard/internal/experiments"
	"ioguard/internal/system"
)

// smallSweep runs a scaled-down streaming case study (the nightly
// shape at smoke size) and returns its points.
func smallSweep(t *testing.T, metrics system.MetricsMode) []experiments.CaseStudyPoint {
	t.Helper()
	points, err := experiments.CaseStudy(experiments.CaseStudyConfig{
		VMs:          4,
		Utils:        []float64{0.40, 0.60},
		Trials:       3,
		HyperPeriods: 1,
		Seed:         1,
		Systems:      []string{"BS|Legacy", "I/O-GUARD-70"},
		Metrics:      metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// TestRecordSweepSketches: a streaming sweep deposits one merged
// sketch per (sweep, system) with every trial folded, repeat runs
// replace rather than duplicate, and Take drains.
func TestRecordSweepSketches(t *testing.T) {
	TakeSweepSketches() // isolate from other tests
	points := smallSweep(t, system.MetricsStream)
	recordSweepSketches("smoke/4vm", points)
	recordSweepSketches("smoke/4vm", points) // b.N > 1 replay
	got := TakeSweepSketches()
	if len(got) != 2 {
		t.Fatalf("registry holds %d sketches, want 2 (one per system)", len(got))
	}
	for _, sk := range got {
		if sk.Sweep != "smoke/4vm" {
			t.Errorf("sketch sweep %q, want smoke/4vm", sk.Sweep)
		}
		if sk.Trials != 6 { // 2 utils × 3 trials
			t.Errorf("%s: trials %d, want 6", sk.System, sk.Trials)
		}
		if sk.Response == nil || sk.Response.N() == 0 {
			t.Errorf("%s: empty response sketch", sk.System)
		}
		if sk.SuccessRatio < 0 || sk.SuccessRatio > 1 {
			t.Errorf("%s: success ratio %g", sk.System, sk.SuccessRatio)
		}
	}
	if rest := TakeSweepSketches(); len(rest) != 0 {
		t.Fatalf("Take did not drain: %d left", len(rest))
	}
}

// TestRecordSweepSketchesSkipsUnmergeable: exact sweeps have no
// serializable fold (the exact buffer never persists) and GK sweeps
// cannot merge — neither deposits sketches.
func TestRecordSweepSketchesSkipsUnmergeable(t *testing.T) {
	TakeSweepSketches()
	recordSweepSketches("smoke/exact", smallSweep(t, system.MetricsExact))
	recordSweepSketches("smoke/gk", smallSweep(t, system.MetricsStreamGK))
	if got := TakeSweepSketches(); len(got) != 0 {
		t.Fatalf("unmergeable sweeps deposited %d sketches", len(got))
	}
}
