// CSV export of execution traces, for offline analysis of schedules
// in spreadsheet/plotting tools. The row format is shared with the
// streaming CSVSink so a buffered export and an online one are
// byte-identical for the same events.
package trace

import (
	"io"
	"strconv"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// csvHeader is the column layout shared by WriteCSV and CSVSink.
var csvHeader = []string{"slot", "event", "task", "vm", "job", "deadline"}

// csvRecord formats one event into row, which must have
// len(csvHeader) cells; reusing the caller's row keeps the per-event
// path allocation-light.
func csvRecord(row []string, at slot.Time, kind EventKind, j *task.Job) {
	row[0] = strconv.FormatInt(int64(at), 10)
	row[1] = kind.String()
	row[2] = j.Task.Name
	row[3] = strconv.Itoa(j.Task.VM)
	row[4] = strconv.Itoa(j.Seq)
	row[5] = strconv.FormatInt(int64(j.Deadline), 10)
}

// WriteCSV streams the recorded events as CSV with the header
// slot,event,task,vm,job,deadline — the buffered equivalent of
// feeding every event through a CSVSink.
func (r *Recorder) WriteCSV(w io.Writer) error {
	sink, err := NewCSVSink(w)
	if err != nil {
		return err
	}
	for _, e := range r.events {
		sink.event(e.At, e.Kind, e.Job)
	}
	return sink.Flush()
}
