package hypervisor

import (
	"testing"

	"ioguard/internal/task"
)

func TestPoolAdmitAndShadow(t *testing.T) {
	p := NewPool(0, 0)
	if p.VM() != 0 || p.Len() != 0 {
		t.Fatal("new pool state wrong")
	}
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 10, WCET: 2, Deadline: 8}
	j1 := task.NewJob(tk, 0, 0)  // deadline 8
	j2 := task.NewJob(tk, 1, 10) // deadline 18
	if !p.Admit(j2) || !p.Admit(j1) {
		t.Fatal("admit failed")
	}
	p.Schedule()
	d, j, ok := p.Shadow()
	if !ok || j != j1 || d != 8 {
		t.Errorf("shadow = %v/%d, want j1/8", j, d)
	}
}

func TestPoolShadowEmptyAfterRemoveAll(t *testing.T) {
	p := NewPool(1, 0)
	tk := &task.Sporadic{ID: 0, VM: 1, Period: 10, WCET: 2, Deadline: 8}
	j := task.NewJob(tk, 0, 0)
	p.Admit(j)
	p.Schedule()
	if err := p.Remove(j); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Shadow(); ok {
		t.Error("shadow should be clear after removing the only job")
	}
	if err := p.Remove(j); err == nil {
		t.Error("double remove should error")
	}
}

func TestPoolRemoveRefreshesShadow(t *testing.T) {
	p := NewPool(0, 0)
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 10, WCET: 2, Deadline: 8}
	j1 := task.NewJob(tk, 0, 0)
	j2 := task.NewJob(tk, 1, 4)
	p.Admit(j1)
	p.Admit(j2)
	p.Schedule()
	p.Remove(j1)
	_, j, ok := p.Shadow()
	if !ok || j != j2 {
		t.Error("shadow should refresh to next job after remove")
	}
}

func TestPoolCapacityDrops(t *testing.T) {
	p := NewPool(0, 1)
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 10, WCET: 2, Deadline: 8}
	if !p.Admit(task.NewJob(tk, 0, 0)) {
		t.Fatal("first admit failed")
	}
	if p.Admit(task.NewJob(tk, 1, 1)) {
		t.Error("admit above capacity should fail")
	}
	if p.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", p.Dropped())
	}
}

func TestPoolEach(t *testing.T) {
	p := NewPool(0, 0)
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 10, WCET: 2, Deadline: 8}
	p.Admit(task.NewJob(tk, 0, 0))
	p.Admit(task.NewJob(tk, 1, 1))
	n := 0
	p.Each(func(j *task.Job) { n++ })
	if n != 2 {
		t.Errorf("Each visited %d, want 2", n)
	}
}
