// The HTTP surface of the trial service. Endpoints:
//
//	POST /v1/trials             synchronous: admit → batch → execute,
//	                            streaming one NDJSON line per trial as
//	                            it completes (in trial order)
//	POST /v1/sweeps             asynchronous: queue a sweep job, reply
//	                            202 with its id immediately
//	GET  /v1/sweeps/{id}        job status (+ rendered aggregate when done)
//	GET  /v1/sweeps/{id}/results  NDJSON of per-trial results so far
//	                            (?wait=1 blocks until the job finishes)
//	GET  /v1/stats              batcher + job-store counters and timing
//	GET  /healthz               liveness
//
// Saturation on either path returns 429 Too Many Requests with a
// Retry-After header (integer seconds, per RFC 9110) and a JSON body
// carrying a finer-grained retry_after_ms hint.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Config assembles a Server. Zero values select the component
// defaults (see BatcherConfig and JobStoreConfig).
type Config struct {
	Batcher BatcherConfig
	Jobs    JobStoreConfig
	// RetryAfter is the hint returned with 429 responses (default
	// 250ms; the header rounds up to whole seconds).
	RetryAfter time.Duration
	// DefaultMetrics, DefaultShardWorkers and DefaultDrainMin/Max fill
	// requests that omit the matching fields — the server-side halves
	// of the shared -metrics / -shard-workers / -drain-min / -drain-max
	// flags (internal/cliflags).
	DefaultMetrics      string
	DefaultShardWorkers int
	DefaultDrainMin     int
	DefaultDrainMax     int
}

// Server is the trial service: a batcher for the synchronous path, a
// job store for the asynchronous path, and the HTTP mux over both.
type Server struct {
	cfg     Config
	batcher *Batcher
	jobs    *JobStore
	mux     *http.ServeMux
	started time.Time
}

// New starts the service's goroutines (batch collector, job runner)
// and returns the server. Call Close to drain and stop them.
func New(cfg Config) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 250 * time.Millisecond
	}
	s := &Server{
		cfg:     cfg,
		batcher: NewBatcher(cfg.Batcher),
		jobs:    NewJobStore(cfg.Jobs),
		started: time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/trials", s.handleTrials)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains both execution paths: every admitted trial and every
// queued sweep runs to completion before Close returns. Shut the
// http.Server down first (so streaming handlers finish), then Close.
func (s *Server) Close() {
	s.jobs.Close()
	s.batcher.Close()
}

// Batcher exposes the synchronous path's stats for tests and the
// load generator's self-hosted mode.
func (s *Server) Batcher() *Batcher { return s.batcher }

// Jobs exposes the asynchronous path's store.
func (s *Server) Jobs() *JobStore { return s.jobs }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) writeSaturated(w http.ResponseWriter) {
	// Retry-After only speaks whole seconds; round up so the client
	// never retries earlier than the hint, and carry the precise hint
	// in the body.
	secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusTooManyRequests, errorBody{
		Error:        ErrSaturated.Error(),
		RetryAfterMs: int64(s.cfg.RetryAfter / time.Millisecond),
	})
}

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*normalized, bool) {
	var req TrialRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return nil, false
	}
	if req.Metrics == "" {
		req.Metrics = s.cfg.DefaultMetrics
	}
	if req.ShardWorkers == 0 {
		req.ShardWorkers = s.cfg.DefaultShardWorkers
	}
	if req.DrainMin == 0 {
		req.DrainMin = s.cfg.DefaultDrainMin
	}
	if req.DrainMax == 0 {
		req.DrainMax = s.cfg.DefaultDrainMax
	}
	norm, err := normalize(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return nil, false
	}
	return norm, true
}

// handleTrials is the synchronous path: admit the request's cells
// all-or-nothing, then stream one NDJSON line per trial, in trial
// order, as results come back from the batcher.
func (s *Server) handleTrials(w http.ResponseWriter, r *http.Request) {
	norm, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	cells := norm.cells()
	units, err := s.batcher.Enqueue(cells)
	if err == ErrSaturated {
		s.writeSaturated(w)
		return
	}
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i, u := range units {
		res := <-u.Done()
		if res.Err != nil {
			enc.Encode(struct {
				Index int    `json:"index"`
				Error string `json:"error"`
			}{i, res.Err.Error()})
		} else {
			enc.Encode(toResponse(norm.req.System, i, cells[i].Trial.Seed, res.Res, res.Timing))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSweepSubmit is the asynchronous path: queue the sweep and
// return 202 with the job id.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	norm, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	j, err := s.jobs.Submit(norm)
	if err == ErrSaturated {
		s.writeSaturated(w)
		return
	}
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such sweep"})
		return
	}
	if r.URL.Query().Get("sketch") == "1" {
		writeJSON(w, http.StatusOK, j.StatusWithSketches())
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such sweep"})
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, tr := range j.Results() {
		enc.Encode(tr)
	}
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Batcher       BatcherStats `json:"batcher"`
	Jobs          JobStats     `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Batcher:       s.batcher.Stats(),
		Jobs:          s.jobs.Stats(),
	})
}
