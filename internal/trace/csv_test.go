package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"ioguard/internal/task"
)

func TestWriteCSV(t *testing.T) {
	var r Recorder
	tk := &task.Sporadic{ID: 0, Name: "crc", VM: 2, Period: 10, WCET: 2, Deadline: 8}
	j := task.NewJob(tk, 3, 0)
	r.OnRelease(0, j)
	r.OnExecute(1, j)
	r.OnComplete(j, 4)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 events
		t.Fatalf("rows = %d", len(rows))
	}
	if strings.Join(rows[0], ",") != "slot,event,task,vm,job,deadline" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "release" || rows[2][1] != "execute" || rows[3][1] != "complete" {
		t.Errorf("event column wrong: %v", rows)
	}
	if rows[2][0] != "1" || rows[2][2] != "crc" || rows[2][3] != "2" || rows[2][4] != "3" || rows[2][5] != "8" {
		t.Errorf("execute row = %v", rows[2])
	}
}

// failingWriter errors after n bytes, exercising the error paths.
type failingWriter struct{ left int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if len(p) > f.left {
		return 0, errors.New("disk full")
	}
	f.left -= len(p)
	return len(p), nil
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	var r Recorder
	tk := &task.Sporadic{ID: 0, Name: "x", VM: 0, Period: 10, WCET: 1, Deadline: 10}
	for i := 0; i < 100; i++ {
		r.OnExecute(0, task.NewJob(tk, i, 0))
	}
	if err := r.WriteCSV(&failingWriter{left: 64}); err == nil {
		t.Error("write error swallowed")
	}
}
