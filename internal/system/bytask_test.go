package system

import (
	"strings"
	"testing"

	"ioguard/internal/task"
)

func TestByTask(t *testing.T) {
	c := &Collector{}
	a := &task.Sporadic{ID: 0, Name: "alpha", Period: 20, WCET: 1, Deadline: 10}
	b := &task.Sporadic{ID: 1, Name: "beta", Period: 20, WCET: 1, Deadline: 10}
	c.Complete(task.NewJob(a, 0, 0), 5)   // on time
	c.Complete(task.NewJob(a, 1, 20), 35) // late (deadline 30)
	c.Complete(task.NewJob(b, 0, 0), 2)
	stats := c.ByTask()
	if len(stats) != 2 {
		t.Fatalf("stats = %d tasks", len(stats))
	}
	sa := stats[0]
	if sa.Completed != 2 || sa.Misses != 1 {
		t.Errorf("alpha = %+v", sa)
	}
	if sa.Response.Mean() != 10 { // (5 + 15) / 2
		t.Errorf("alpha mean response = %v", sa.Response.Mean())
	}
	if stats[1].Misses != 0 {
		t.Errorf("beta misses = %d", stats[1].Misses)
	}
}

func TestRenderByTaskOrdersByMisses(t *testing.T) {
	c := &Collector{}
	good := &task.Sporadic{ID: 0, Name: "good", Period: 20, WCET: 1, Deadline: 10}
	bad := &task.Sporadic{ID: 1, Name: "bad", Period: 20, WCET: 1, Deadline: 1}
	c.Complete(task.NewJob(good, 0, 0), 1)
	c.Complete(task.NewJob(bad, 0, 0), 9)
	out := RenderByTask(c.ByTask())
	if !strings.Contains(out, "good") || !strings.Contains(out, "bad") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	if strings.Index(out, "bad") > strings.Index(out, "good") {
		t.Error("missing task should sort first")
	}
}

func TestByTaskEmpty(t *testing.T) {
	c := &Collector{}
	if len(c.ByTask()) != 0 {
		t.Error("empty collector should yield no stats")
	}
	if !strings.Contains(RenderByTask(nil), "task") {
		t.Error("empty render should still have a header")
	}
}
