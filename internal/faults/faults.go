// Package faults is the deterministic fault-injection layer of the
// robustness experiments (ROTA-I/O-style, PAPERS.md): it perturbs job
// releases at the workload layer (extra release jitter beyond the
// sporadic model's own bound) and request packets at the transport
// layer (drops, duplicates, extra delivery delay) under a seeded plan.
//
// Determinism is the design constraint. The harness runs one trial on
// anywhere between one and GOMAXPROCS threads (-workers fans trials
// out, -shard-workers fans one trial's device shards out), and a
// faulted run must be byte-identical at every setting. A shared
// sequential RNG cannot provide that — the draw order would depend on
// the schedule — so every decision here is a pure function of
//
//	(plan seed, trial seed, task ID, job sequence, fault point)
//
// hashed through SplitMix64 finalizers. Whoever asks, in whatever
// order, gets the same answer; the counters the Stream keeps are order
// independent sums. The same property makes every decision
// re-derivable after the fact, which is how the collector classifies a
// finished job as fault-perturbed without carrying state on the job.
package faults

import (
	"fmt"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Plan configures the fault layer for one trial. The zero value is a
// clean run: Enabled reports false and the runner skips the layer
// entirely, leaving the hot path (and every golden output) untouched.
type Plan struct {
	// Seed identifies the fault universe. The per-trial stream mixes it
	// with the trial seed, so a sweep's trials see independent fault
	// realizations while the same (-fault-seed, -seed) pair replays
	// exactly.
	Seed int64
	// ReleaseJitter adds up to this many slots of extra delay to every
	// residual task's inter-release gap (uniform in [0, ReleaseJitter]),
	// on top of the sporadic model's own bounded jitter — the workload-
	// layer perturbation.
	ReleaseJitter slot.Time
	// DropProb is the probability a submitted request is lost in
	// transport and never reaches the system.
	DropProb float64
	// DupProb is the probability a submitted request is duplicated: a
	// clone follows the original through the same transport.
	DupProb float64
	// DelayProb is the probability a submitted request is held in
	// transport for a uniform extra delay in [1, DelayMax] slots.
	DelayProb float64
	// DelayMax bounds the transport delay; required positive when
	// DelayProb is.
	DelayMax slot.Time
}

// Enabled reports whether the plan perturbs anything.
func (p Plan) Enabled() bool {
	return p.ReleaseJitter > 0 || p.DropProb > 0 || p.DupProb > 0 || p.DelayProb > 0
}

// Validate rejects unusable plans (client error on the server path,
// flag error on the CLIs).
func (p Plan) Validate() error {
	if p.ReleaseJitter < 0 {
		return fmt.Errorf("faults: negative release jitter %d", p.ReleaseJitter)
	}
	if p.DelayMax < 0 {
		return fmt.Errorf("faults: negative delay bound %d", p.DelayMax)
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.DropProb}, {"dup", p.DupProb}, {"delay", p.DelayProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.DelayProb > 0 && p.DelayMax == 0 {
		return fmt.Errorf("faults: delay probability %v needs a positive -fault-delay-max", p.DelayProb)
	}
	return nil
}

// dupSeqBit marks the job sequence number of an injected duplicate.
// Transports key in-flight state by (task, seq) — the mesh baselines'
// inflight maps, the collector's identity checks — so a duplicate must
// not collide with its original. Real sequence numbers stay far below
// this bit (a trial would need >10⁹ jobs of one task to reach it).
const dupSeqBit = 1 << 30

// IsDup reports whether j is a fault-injected duplicate.
func IsDup(j *task.Job) bool { return j.Seq&dupSeqBit != 0 }

// Summary is the order-independent account of what a stream injected
// into one trial, surfaced on metrics.TrialResult via the collector.
type Summary struct {
	// Jittered counts jobs whose release the fault layer pushed later.
	Jittered int64
	// Dropped counts requests lost in transport (never submitted; they
	// are neither misses nor system drops — see DESIGN.md).
	Dropped int64
	// Duplicated counts injected duplicate requests.
	Duplicated int64
	// Delayed counts requests given extra transport delay.
	Delayed int64
}

// Action is the transport-layer verdict for one request.
type Action struct {
	Drop  bool
	Dup   bool
	Delay slot.Time
}

// Fault points, mixed into the hash so the same job draws
// independently at each decision.
const (
	pointJitter uint64 = iota + 1
	pointDrop
	pointDup
	pointDelay
	pointDelaySpan
)

// splitmix64 is the SplitMix64 finalizer (Steele et al.), the same
// mixer the trial-seed schedule uses.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Stream is one trial's fault realization. All methods are pure in the
// decision they return; the mutation is limited to the summary
// counters, which every caller touches from the single-threaded
// release/submission contexts of the runner (the coordinator phase
// under -shard-workers, the run loop otherwise).
type Stream struct {
	plan Plan
	base uint64
	sum  Summary
}

// New builds the stream for one trial, or nil for a clean plan — the
// runner branches on nil, keeping the zero-fault hot path identical to
// a build without this package.
func New(plan Plan, trialSeed int64) *Stream {
	if !plan.Enabled() {
		return nil
	}
	base := splitmix64(uint64(plan.Seed) + 0x9E3779B97F4A7C15)
	base = splitmix64(base ^ uint64(trialSeed))
	return &Stream{plan: plan, base: base}
}

// word derives the decision word for one (fault point, task, seq)
// triple. The dup marker bit is masked off first so a duplicate shares
// its original's identity at every point except its own injection —
// Perturbed must answer the same for both.
func (s *Stream) word(point uint64, t *task.Sporadic, seq int) uint64 {
	z := s.base + point*0x9E3779B97F4A7C15
	z = splitmix64(z + (uint64(t.ID)+1)*0xBF58476D1CE4E5B9)
	return splitmix64(z + uint64(seq&^dupSeqBit) + 1)
}

// hit converts a decision word into a Bernoulli draw at probability p.
func hit(w uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(w>>11)/(1<<53) < p
}

// jitterFor is the pure release-jitter draw for job (t, seq). First
// jobs (sequence 0) are never jittered: their release is already drawn
// uniformly in [0, Period) by the fleet, and the jitter hook only
// shapes inter-release gaps — keeping the draw zero here keeps
// Perturbed consistent with what the workload layer actually applied.
func (s *Stream) jitterFor(t *task.Sporadic, seq int) slot.Time {
	if s.plan.ReleaseJitter <= 0 || seq&^dupSeqBit == 0 {
		return 0
	}
	w := s.word(pointJitter, t, seq)
	return slot.Time(w % uint64(s.plan.ReleaseJitter+1))
}

// actionFor is the pure transport verdict for job (t, seq). Drop wins
// over dup and delay: a lost packet is simply lost.
func (s *Stream) actionFor(t *task.Sporadic, seq int) Action {
	var a Action
	if hit(s.word(pointDrop, t, seq), s.plan.DropProb) {
		a.Drop = true
		return a
	}
	a.Dup = hit(s.word(pointDup, t, seq), s.plan.DupProb)
	if hit(s.word(pointDelay, t, seq), s.plan.DelayProb) {
		span := s.word(pointDelaySpan, t, seq)
		a.Delay = 1 + slot.Time(span%uint64(s.plan.DelayMax))
	}
	return a
}

// ReleaseJitter returns the extra release delay for job (t, seq) and
// accounts it. Its signature matches vm.JitterFunc so the runner can
// hand the method straight to the fleet.
func (s *Stream) ReleaseJitter(t *task.Sporadic, seq int) slot.Time {
	d := s.jitterFor(t, seq)
	if d > 0 {
		s.sum.Jittered++
	}
	return d
}

// Transport returns the transport verdict for job j and accounts it.
// Call exactly once per original (non-duplicate) request, at the
// submission boundary.
func (s *Stream) Transport(j *task.Job) Action {
	a := s.actionFor(j.Task, j.Seq)
	switch {
	case a.Drop:
		s.sum.Dropped++
	default:
		if a.Dup {
			s.sum.Duplicated++
		}
		if a.Delay > 0 {
			s.sum.Delayed++
		}
	}
	return a
}

// DupJob clones j as its injected duplicate: same spec, release and
// deadline, the sequence number marked with the duplicate bit.
func (s *Stream) DupJob(j *task.Job) *task.Job {
	return task.NewJob(j.Task, j.Seq|dupSeqBit, j.Release)
}

// Perturbed re-derives whether job j was touched by any fault —
// jittered release, transport delay, or being (or having spawned) a
// duplicate — without consuming randomness or touching counters. The
// collector uses it to split deadline misses into fault-conditioned
// and clean.
func (s *Stream) Perturbed(j *task.Job) bool {
	if IsDup(j) {
		return true
	}
	if s.jitterFor(j.Task, j.Seq) > 0 {
		return true
	}
	a := s.actionFor(j.Task, j.Seq)
	return a.Drop || a.Dup || a.Delay > 0
}

// Summary snapshots the injection counters.
func (s *Stream) Summary() Summary { return s.sum }
