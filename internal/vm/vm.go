// Package vm models the guest virtual machines of the evaluation
// platform: each VM runs an RTOS hosting a set of I/O tasks, and its
// release engine generates the tasks' jobs — periodically for
// pre-defined-style tasks, sporadically (period plus bounded jitter)
// for run-time tasks (Sec. II-B).
//
// The engine is deliberately deterministic given its random source,
// so the same seed produces "identical data input to the examined
// systems in each execution" as required for the paper's fair
// comparisons.
//
// Release generation is heap-batched: every guest keeps a min-heap
// over its tasks' next-release slots and the fleet keeps a min-heap
// over its guests' earliest releases, so a release slot costs
// O(log tasks) per released job (instead of scanning every task of
// every guest) and NextRelease is O(1). Emission order is unchanged:
// within one slot, guests release in VM order and each guest's due
// tasks release in task order, exactly like the scan they replace
// (enforced by the heap-vs-scan property test).
package vm

import (
	"fmt"
	"math/rand"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// JitterFunc returns extra release delay (in slots) for the job of t
// with the given sequence number. It must be a pure function of its
// arguments: the fleet consults it while materializing releases, and a
// trial's release schedule has to be identical however the runner
// interleaves that materialization (see the faults package, whose
// Stream.ReleaseJitter satisfies this signature).
type JitterFunc func(t *task.Sporadic, seq int) slot.Time

// Guest is one virtual machine's release engine.
type Guest struct {
	id    int
	specs []*task.Sporadic
	next  []slot.Time
	seq   []int
	// heap holds task indices ordered by (next[i], i): the earliest
	// upcoming release first, ties broken by task order so same-slot
	// emissions match the task-scan order.
	heap []int32
	rng  *rand.Rand
	// jitter, when set, adds fault-injected delay to each job's
	// inter-release gap on top of the sporadic model's own bound.
	jitter JitterFunc

	released int64
}

// NewGuest builds a guest for VM id owning the given tasks. Every
// task's first release is drawn uniformly from [0, Period) to
// desynchronize the VMs; subsequent releases respect the sporadic
// minimum separation plus up to Jitter extra delay.
func NewGuest(id int, ts task.Set, rng *rand.Rand) (*Guest, error) {
	if rng == nil {
		return nil, fmt.Errorf("vm: guest %d needs a random source", id)
	}
	g := &Guest{id: id, rng: rng}
	for i := range ts {
		t := ts[i]
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if t.VM != id {
			return nil, fmt.Errorf("vm: task %d belongs to vm %d, not %d", t.ID, t.VM, id)
		}
		spec := t
		g.specs = append(g.specs, &spec)
		g.next = append(g.next, slot.Time(rng.Int63n(int64(t.Period))))
		g.seq = append(g.seq, 0)
		g.heap = append(g.heap, int32(i))
	}
	for i := len(g.heap)/2 - 1; i >= 0; i-- {
		g.siftDown(i)
	}
	return g, nil
}

// taskBefore orders the guest's release heap by (next slot, task
// index).
func (g *Guest) taskBefore(a, b int32) bool {
	if g.next[a] != g.next[b] {
		return g.next[a] < g.next[b]
	}
	return a < b
}

// siftDown restores the heap property below position i after the key
// at i increased (a task's next release only ever moves later).
func (g *Guest) siftDown(i int) {
	h := g.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && g.taskBefore(h[l], h[m]) {
			m = l
		}
		if r < len(h) && g.taskBefore(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// ID returns the VM index.
func (g *Guest) ID() int { return g.id }

// Tasks returns the guest's task specs (shared pointers: the jobs the
// guest releases reference them).
func (g *Guest) Tasks() []*task.Sporadic { return g.specs }

// Released returns how many jobs the guest has released so far.
func (g *Guest) Released() int64 { return g.released }

// Release emits every job due at slot now, in (release slot, task
// index) order. Call in increasing time order — once per slot, or
// jumping straight between NextRelease slots.
func (g *Guest) Release(now slot.Time, emit func(j *task.Job)) {
	for len(g.heap) > 0 {
		i := g.heap[0]
		if g.next[i] > now {
			return
		}
		spec := g.specs[i]
		j := task.NewJob(spec, g.seq[i], g.next[i])
		g.seq[i]++
		g.released++
		gap := spec.Period
		if spec.Jitter > 0 {
			gap += slot.Time(g.rng.Int63n(int64(spec.Jitter) + 1))
		}
		if g.jitter != nil {
			// Fault-injected extra delay for the *next* job (the one
			// whose release this gap determines): keyed by its sequence
			// number so the draw is independent of materialization order.
			gap += g.jitter(spec, g.seq[i])
		}
		g.next[i] += gap
		g.siftDown(0)
		emit(j)
	}
}

// NextRelease returns the earliest upcoming release slot across the
// guest's tasks in O(1), or slot.Never for a guest without tasks. It
// is exact, not a bound: release jitter is materialized into the heap
// when the previous job is released, so the runner may fast-forward
// straight to this slot without missing a release.
func (g *Guest) NextRelease() slot.Time {
	if len(g.heap) == 0 {
		return slot.Never
	}
	return g.next[g.heap[0]]
}

// Fleet is a set of guests released in VM order. It keeps a min-heap
// over the guests' earliest releases so NextRelease is O(1) for any
// fleet size.
type Fleet struct {
	guests []*Guest
	// heap holds guest indices ordered by (guest NextRelease, guest
	// ID): ties release in VM order, matching the guest-scan order.
	heap []int32

	released int64
}

// NewFleet partitions ts by VM and builds one guest per VM, numbered
// 0..vms-1. VMs without tasks get an empty guest. All guests share
// the given random source.
func NewFleet(vms int, ts task.Set, rng *rand.Rand) (*Fleet, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("vm: need at least one VM, got %d", vms)
	}
	byVM := ts.ByVM()
	f := &Fleet{guests: make([]*Guest, 0, vms)}
	for id := 0; id < vms; id++ {
		g, err := NewGuest(id, byVM[id], rng)
		if err != nil {
			return nil, err
		}
		f.guests = append(f.guests, g)
		f.heap = append(f.heap, int32(id))
	}
	for vmID := range byVM {
		if vmID >= vms {
			return nil, fmt.Errorf("vm: task set references vm %d beyond fleet of %d", vmID, vms)
		}
	}
	for i := len(f.heap)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
	return f, nil
}

// Guests returns the fleet's guests in VM order.
func (f *Fleet) Guests() []*Guest { return f.guests }

// SetReleaseJitter installs a fault-injection jitter source on every
// guest. Call before the first Release: jitter is materialized into
// the release heap as gaps are computed, so a late install would leave
// already-scheduled releases unperturbed. First releases (sequence 0)
// are drawn uniformly in [0, Period) and are not perturbed further.
func (f *Fleet) SetReleaseJitter(fn JitterFunc) {
	for _, g := range f.guests {
		g.jitter = fn
	}
}

// guestBefore orders the fleet's heap by (guest NextRelease, VM ID).
func (f *Fleet) guestBefore(a, b int32) bool {
	na, nb := f.guests[a].NextRelease(), f.guests[b].NextRelease()
	if na != nb {
		return na < nb
	}
	return a < b
}

// siftDown restores the heap property below position i after the key
// at i increased.
func (f *Fleet) siftDown(i int) {
	h := f.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && f.guestBefore(h[l], h[m]) {
			m = l
		}
		if r < len(h) && f.guestBefore(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Release emits all due jobs across the fleet at slot now, guests in
// VM order within the slot. Call in increasing time order.
func (f *Fleet) Release(now slot.Time, emit func(j *task.Job)) {
	for len(f.heap) > 0 {
		g := f.guests[f.heap[0]]
		if g.NextRelease() > now {
			return
		}
		before := g.released
		g.Release(now, emit)
		f.released += g.released - before
		f.siftDown(0)
	}
}

// NextRelease returns the earliest upcoming release slot across the
// fleet in O(1), or slot.Never when no guest has tasks.
func (f *Fleet) NextRelease() slot.Time {
	if len(f.heap) == 0 {
		return slot.Never
	}
	return f.guests[f.heap[0]].NextRelease()
}

// Released returns the fleet-wide release count.
func (f *Fleet) Released() int64 { return f.released }
