package workload

import (
	"strings"
	"testing"

	"ioguard/internal/task"
)

func TestSetJSONRoundTrip(t *testing.T) {
	ts, err := Generate(Config{VMs: 4, TargetUtil: 0.7, Seed: 3, SyntheticJitter: 50})
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSet(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("round trip %d ≠ %d tasks", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Fatalf("task %d changed: %+v vs %+v", i, got[i], ts[i])
		}
	}
}

func TestMarshalSetRejectsInvalid(t *testing.T) {
	bad := task.Set{{ID: 0, Period: -1, WCET: 1, Deadline: 1}}
	if _, err := MarshalSet(bad); err == nil {
		t.Error("invalid set accepted")
	}
}

func TestUnmarshalSetErrors(t *testing.T) {
	if _, err := UnmarshalSet([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := UnmarshalSet([]byte(`[{"id":0,"kind":"nope","period":10,"wcet":1,"deadline":10,"vm":0}]`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := UnmarshalSet([]byte(`[{"id":0,"kind":"safety","period":10,"wcet":20,"deadline":10,"vm":0}]`)); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestKindFromString(t *testing.T) {
	for _, k := range []task.Kind{task.Safety, task.Function, task.Synthetic} {
		got, err := kindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("kind %v round trip failed: %v %v", k, got, err)
		}
	}
}

func TestDescribe(t *testing.T) {
	ts, _ := Generate(Config{VMs: 4, TargetUtil: 0.8, Seed: 1})
	out := Describe(ts)
	for _, want := range []string{"20 safety", "20 function", "hyper-period", "device ethernet", "device flexray", "heaviest tasks"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
