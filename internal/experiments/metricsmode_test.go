// Three-way metrics-mode contract: exact, stream (mergeable KLL) and
// stream-gk (per-trial GK) sweeps must render byte-identical tables at
// any worker count within a mode, the case-study tables must not vary
// across modes at all (they use only exactly-counted quantities), and
// the merged cross-trial quantiles must sit inside the proven ε·n rank
// band of the exact distribution. Run under -race in CI, the worker
// loops also prove the fold publishes no shared state.
package experiments

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// renderSweep renders everything a case-study sweep prints: the Fig. 7
// tables, the -quantiles companion and every per-cell aggregate block.
func renderSweep(points []CaseStudyPoint, vms int) string {
	var b strings.Builder
	b.WriteString(RenderCaseStudy(points, vms))
	b.WriteString(RenderCaseStudyQuantiles(points, vms))
	for _, p := range points {
		b.WriteString(RenderAggregate(p.System, p.Agg))
	}
	return b.String()
}

// TestMetricsModeThreeWaySweepEquivalence pins two contracts at once:
// within each metrics mode the full rendered sweep is byte-identical
// for workers 1, 2 and GOMAXPROCS (the fold order is trial order, not
// completion order), and across modes the Fig. 7 tables agree exactly
// (success ratios and throughput are counted, never sketched).
func TestMetricsModeThreeWaySweepEquivalence(t *testing.T) {
	cfg := CaseStudyConfig{
		VMs:          4,
		Utils:        []float64{0.50, 0.90},
		Trials:       4,
		HyperPeriods: 1,
		Seed:         7,
		Systems:      []string{"BS|Legacy", "I/O-GUARD-70"},
	}
	modes := []system.MetricsMode{system.MetricsExact, system.MetricsStream, system.MetricsStreamGK}
	tables := map[system.MetricsMode]string{}
	for _, mode := range modes {
		mode := mode
		var reference string
		for _, workers := range workerCounts() {
			c := cfg
			c.Metrics = mode
			c.Workers = workers
			points, err := CaseStudy(c)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			out := renderSweep(points, c.VMs)
			if reference == "" {
				reference = out
				tables[mode] = RenderCaseStudy(points, c.VMs)
				continue
			}
			if out != reference {
				t.Fatalf("%v: workers=%d rendered sweep diverged from workers=%d", mode, workers, workerCounts()[0])
			}
		}
	}
	for _, mode := range modes[1:] {
		if tables[mode] != tables[system.MetricsExact] {
			t.Fatalf("case-study tables differ between exact and %v:\n%s\n---\n%s",
				mode, tables[system.MetricsExact], tables[mode])
		}
	}
}

// TestMergedQuantilesWithinEpsBand is the sketch pipeline's acceptance
// band: across a randomized 1000-trial sweep, every merged cross-trial
// quantile must land between the exact values at ranks q·n ± (ε·n + 2)
// — the KLL guarantee, preserved under the per-trial merges — while
// the folded count, mean and extrema agree (those combine exactly).
func TestMergedQuantilesWithinEpsBand(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-trial sweep")
	}
	const trials = 1000
	ts, err := workload.Generate(workload.Config{VMs: 2, TargetUtil: 0.6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tr := system.Trial{VMs: 2, Tasks: ts, Horizon: ts.Hyperperiod(), Seed: 42}
	build := Builders()["I/O-GUARD-70"]
	workers := runtime.GOMAXPROCS(0)

	tr.Metrics = system.MetricsExact
	exact, err := system.ParallelSweep(build, tr, trials, workers)
	if err != nil {
		t.Fatal(err)
	}
	tr.Metrics = system.MetricsStream
	stream, err := system.ParallelSweep(build, tr, trials, workers)
	if err != nil {
		t.Fatal(err)
	}

	sk := stream.Response.Sketch()
	if sk == nil {
		t.Fatal("streaming sweep produced no merged response sketch")
	}
	n := exact.Response.N()
	if n < trials || stream.Response.N() != n {
		t.Fatalf("fold counts disagree: exact n=%d, merged n=%d", n, stream.Response.N())
	}
	if got, want := stream.Response.Max(), exact.Response.Max(); got != want {
		t.Fatalf("merged max %g != exact max %g (extrema fold exactly)", got, want)
	}
	if got, want := stream.Response.Mean(), exact.Response.Mean(); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("merged mean %g != exact mean %g (moments fold exactly)", got, want)
	}
	eps := sk.Epsilon()
	slack := 2.0 / float64(n) // rank-interpolation slop at the band edges
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99} {
		got := stream.Response.Quantile(q)
		lo := exact.Response.Quantile(math.Max(0, q-eps-slack))
		hi := exact.Response.Quantile(math.Min(1, q+eps+slack))
		if got < lo || got > hi {
			t.Errorf("q=%.2f: merged %g outside exact ε-band [%g, %g] (ε=%g, n=%d)", q, got, lo, hi, eps, n)
		}
	}
}

// TestStreamSweepStateIndependentOfTrials pins the streaming sweep's
// memory contract: the serialized cross-trial fold (the aggregate's
// only distribution state in stream mode) must not grow linearly with
// trial count — 8× the trials may add at most the KLL's logarithmic
// level growth, bounded here by 1.5× plus a constant.
func TestStreamSweepStateIndependentOfTrials(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 2, TargetUtil: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := system.Trial{
		VMs: 2, Tasks: ts, Horizon: ts.Hyperperiod(), Seed: 9,
		Metrics: system.MetricsStream,
	}
	build := Builders()["I/O-GUARD-70"]
	size := func(trials int) int {
		agg, err := system.ParallelSweep(build, tr, trials, 4)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(&agg.Response)
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	small, large := size(40), size(320)
	if large > small*3/2+1024 {
		t.Fatalf("sweep state grew with trial count: 40 trials → %d B, 320 trials → %d B", small, large)
	}
	const capBytes = 128 << 10
	if large > capBytes {
		t.Fatalf("sweep state %d B exceeds the %d B cap", large, capBytes)
	}
}
