module ioguard

go 1.22
