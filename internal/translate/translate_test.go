package translate

import (
	"strings"
	"testing"
	"testing/quick"

	"ioguard/internal/iodev"
	"ioguard/internal/packet"
)

func TestOpcodeStrings(t *testing.T) {
	names := map[Opcode]string{
		RegWrite: "regw", RegRead: "regr", DMASetup: "dma",
		Start: "start", WaitIRQ: "wirq", MemCopy: "memcp", CRCCheck: "crc",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Error("unknown opcode should show numerically")
	}
}

func TestNewTranslatorValidation(t *testing.T) {
	if _, err := NewTranslator(iodev.Model{}); err == nil {
		t.Error("invalid model accepted")
	}
	tr, err := NewTranslator(iodev.SPI)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model().Name != "spi" {
		t.Error("model not retained")
	}
}

func TestTranslateShapes(t *testing.T) {
	tr, _ := NewTranslator(iodev.SPI)
	write, err := tr.Translate(packet.Write, 64)
	if err != nil {
		t.Fatal(err)
	}
	read, err := tr.Translate(packet.Read, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A read additionally copies the payload back.
	if len(read) != len(write)+1 {
		t.Errorf("read len %d, write len %d (read should add MemCopy)", len(read), len(write))
	}
	last := read[len(read)-1]
	if last.Op != MemCopy || last.Arg != 64 {
		t.Errorf("read should end in MemCopy of the payload: %v", last)
	}
	cfg, err := tr.Translate(packet.Config, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg) != 2 {
		t.Errorf("config program = %d instrs, want 2", len(cfg))
	}
	if _, err := tr.Translate(packet.Op(99), 4); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := tr.Translate(packet.Write, -1); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestFramedProtocolsCheckCRC(t *testing.T) {
	can, _ := NewTranslator(iodev.CAN) // 47 overhead bits → framed
	spi, _ := NewTranslator(iodev.SPI) // 16 overhead bits → unframed
	hasCRC := func(p Program) bool {
		for _, ins := range p {
			if ins.Op == CRCCheck {
				return true
			}
		}
		return false
	}
	pc, _ := can.Translate(packet.Write, 8)
	ps, _ := spi.Translate(packet.Write, 8)
	if !hasCRC(pc) {
		t.Error("CAN writes should verify CRC")
	}
	if hasCRC(ps) {
		t.Error("SPI writes should not carry a CRC instruction")
	}
}

func TestProgramCyclesAndWCET(t *testing.T) {
	p := Program{
		{Op: RegWrite}, {Op: Start}, {Op: WaitIRQ},
	}
	if got := p.Cycles(); got != 2+1+4 {
		t.Errorf("Cycles = %d, want 7", got)
	}
	if got := p.WCETSlots(); got != 1 {
		t.Errorf("WCETSlots = %d, want 1 (7 cycles < 100)", got)
	}
	var big Program
	for i := 0; i < 30; i++ {
		big = append(big, Instruction{Op: CRCCheck}) // 300 cycles
	}
	if got := big.WCETSlots(); got != 3 {
		t.Errorf("WCETSlots = %d, want 3", got)
	}
	if (Program{}).WCETSlots() != 1 {
		t.Error("empty program still costs one slot to issue")
	}
}

func TestTranslateResponse(t *testing.T) {
	tr, _ := NewTranslator(iodev.Ethernet)
	r, err := tr.TranslateResponse(packet.Read, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[1].Op != MemCopy {
		t.Errorf("read response program = %v", r)
	}
	w, _ := tr.TranslateResponse(packet.Write, 256)
	if len(w) != 1 {
		t.Errorf("write response program = %v", w)
	}
	if _, err := tr.TranslateResponse(packet.Read, -2); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestWorstCaseRequestSlotsBoundsAllOps(t *testing.T) {
	for _, m := range iodev.Catalog() {
		tr, err := NewTranslator(m)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := tr.WorstCaseRequestSlots(1500)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []packet.Op{packet.Read, packet.Write, packet.Config} {
			p, _ := tr.Translate(op, 1500)
			if p.WCETSlots() > worst {
				t.Errorf("%s/%v: program WCET %d exceeds bound %d", m.Name, op, p.WCETSlots(), worst)
			}
		}
		if worst < 1 || worst > 4 {
			t.Errorf("%s: worst-case translation %d slots outside the bounded-translator range", m.Name, worst)
		}
	}
}

func TestTranslationDeterministic(t *testing.T) {
	f := func(payload uint16, writeOp bool) bool {
		tr, _ := NewTranslator(iodev.FlexRay)
		op := packet.Read
		if writeOp {
			op = packet.Write
		}
		a, err1 := tr.Translate(op, int(payload))
		b, err2 := tr.Translate(op, int(payload))
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankBytes(t *testing.T) {
	tr, _ := NewTranslator(iodev.SPI)
	n, err := tr.BankBytes()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n > 4096 {
		t.Errorf("BankBytes = %d, want a small positive bank", n)
	}
	// A framed protocol's driver is at least as large.
	trCAN, _ := NewTranslator(iodev.CAN)
	nc, _ := trCAN.BankBytes()
	if nc < n {
		t.Errorf("CAN bank %d should be ≥ SPI bank %d", nc, n)
	}
}

func TestInstructionString(t *testing.T) {
	s := Instruction{Op: RegWrite, Reg: 3, Arg: 16}.String()
	if !strings.Contains(s, "regw") || !strings.Contains(s, "r3") || !strings.Contains(s, "0x10") {
		t.Errorf("String = %q", s)
	}
	p := Program{{Op: Start}}
	if !strings.Contains(p.String(), "start") {
		t.Errorf("Program.String = %q", p.String())
	}
}
