package system

import (
	"errors"
	"testing"

	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// fakeSystem completes every job a fixed delay after submission.
type fakeSystem struct {
	tasks   task.Set
	col     *Collector
	delay   slot.Time
	queue   []*task.Job
	at      []slot.Time
	dropped int64
}

func (f *fakeSystem) Name() string       { return "fake" }
func (f *fakeSystem) Arch() rtos.Arch    { return rtos.Legacy }
func (f *fakeSystem) Residual() task.Set { return f.tasks }
func (f *fakeSystem) Dropped() int64     { return f.dropped }
func (f *fakeSystem) Submit(now slot.Time, j *task.Job) {
	f.queue = append(f.queue, j)
	f.at = append(f.at, now+f.delay)
}
func (f *fakeSystem) Step(now slot.Time) {
	var keepJ []*task.Job
	var keepT []slot.Time
	for i, j := range f.queue {
		if f.at[i] <= now {
			for !j.Done() {
				j.Tick(now)
			}
			f.col.Complete(j, f.at[i])
		} else {
			keepJ = append(keepJ, j)
			keepT = append(keepT, f.at[i])
		}
	}
	f.queue, f.at = keepJ, keepT
}
func (f *fakeSystem) Pending(visit func(*task.Job)) {
	for _, j := range f.queue {
		visit(j)
	}
}

func workload() task.Set {
	return task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Period: 20, WCET: 1, Deadline: 10, OpBytes: 100},
		{ID: 1, VM: 1, Kind: task.Synthetic, Period: 30, WCET: 1, Deadline: 15, OpBytes: 50},
	}
}

func builder(delay slot.Time) Builder {
	return func(tr Trial, col *Collector) (System, error) {
		return &fakeSystem{tasks: tr.Tasks, col: col, delay: delay}, nil
	}
}

func TestCollectorRecords(t *testing.T) {
	c := &Collector{}
	tk := &task.Sporadic{ID: 0, Period: 10, WCET: 1, Deadline: 10}
	j := task.NewJob(tk, 0, 0)
	c.Complete(j, 5)
	if c.Completed() != 1 {
		t.Fatal("Completed != 1")
	}
	seen := 0
	c.Each(func(jj *task.Job, at slot.Time) {
		seen++
		if jj != j || at != 5 {
			t.Error("Each content wrong")
		}
	})
	if seen != 1 {
		t.Error("Each visited wrong count")
	}
}

func TestResultScoring(t *testing.T) {
	c := &Collector{}
	safety := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 20, WCET: 1, Deadline: 10, OpBytes: 7}
	synth := &task.Sporadic{ID: 1, Kind: task.Synthetic, Period: 20, WCET: 1, Deadline: 10}
	onTime := task.NewJob(safety, 0, 0) // deadline 10
	late := task.NewJob(safety, 1, 20)  // deadline 30
	lateSyn := task.NewJob(synth, 0, 0) // deadline 10
	c.Complete(onTime, 8)
	c.Complete(late, 35)
	c.Complete(lateSyn, 12)
	fs := &fakeSystem{}
	// Pending: one safety job past deadline, one with future deadline.
	pend1 := task.NewJob(safety, 2, 40) // deadline 50 < horizon 100 → miss
	pend2 := task.NewJob(safety, 3, 95) // deadline 105 ≥ horizon → censored
	fs.queue = append(fs.queue, pend1, pend2)
	fs.at = append(fs.at, 1000, 1000)
	res := c.Result(fs, 100)
	if res.Completed != 3 {
		t.Errorf("Completed = %d", res.Completed)
	}
	if res.CriticalMisses != 2 { // late + pend1
		t.Errorf("CriticalMisses = %d, want 2", res.CriticalMisses)
	}
	if res.OtherMisses != 1 {
		t.Errorf("OtherMisses = %d, want 1", res.OtherMisses)
	}
	if res.Unfinished != 2 {
		t.Errorf("Unfinished = %d, want 2", res.Unfinished)
	}
	if res.BytesServed != 14 {
		t.Errorf("BytesServed = %d, want 14", res.BytesServed)
	}
	if res.Success() {
		t.Error("trial with critical misses cannot succeed")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(builder(1), Trial{VMs: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := task.Set{{ID: 0, VM: 0, Period: -1, WCET: 1, Deadline: 1}}
	if _, err := Run(builder(1), Trial{VMs: 1, Tasks: bad, Horizon: 10}); err == nil {
		t.Error("invalid workload accepted")
	}
	failing := func(tr Trial, col *Collector) (System, error) {
		return nil, errors.New("boom")
	}
	if _, err := Run(failing, Trial{VMs: 1, Tasks: workload(), Horizon: 10}); err == nil {
		t.Error("builder error swallowed")
	}
}

func TestRunFastSystemSucceeds(t *testing.T) {
	res, err := Run(builder(2), Trial{VMs: 2, Tasks: workload(), Horizon: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if !res.Success() {
		t.Errorf("delay-2 system should meet all deadlines: %+v", res)
	}
	if res.Response.Mean() != 2 {
		t.Errorf("response mean = %v, want 2", res.Response.Mean())
	}
}

func TestRunSlowSystemMisses(t *testing.T) {
	res, err := Run(builder(12), Trial{VMs: 2, Tasks: workload(), Horizon: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalMisses == 0 {
		t.Error("delay-12 system must miss the D=10 safety task")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := Trial{VMs: 2, Tasks: workload(), Horizon: 300, Seed: 7}
	a, err := Run(builder(3), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(builder(3), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.CriticalMisses != b.CriticalMisses || a.BytesServed != b.BytesServed {
		t.Error("same trial must be reproducible")
	}
}

func TestSweepAggregates(t *testing.T) {
	agg, err := Sweep(builder(2), Trial{VMs: 2, Tasks: workload(), Horizon: 300, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 5 || agg.SuccessRatio() != 1 {
		t.Errorf("aggregate = %+v", agg)
	}
	if _, err := Sweep(builder(2), Trial{VMs: 1, Horizon: 0}, 2); err == nil {
		t.Error("sweep should propagate run errors")
	}
}
