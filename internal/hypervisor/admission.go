// Online admission control for run-time I/O tasks — an extension of
// the paper's design: since the hypervisor already holds every VM's
// server parameters (ServerEDF mode), it can run the L-Sched test of
// Theorem 3/4 in the control plane whenever a VM registers a new
// run-time task, and refuse tasks that would break the VM's existing
// guarantees. Jobs of unregistered tasks are then rejected at submit
// time, so a faulty or malicious guest cannot sneak load past the
// analysis.
package hypervisor

import (
	"fmt"
	"sync/atomic"

	"ioguard/internal/analysis"
	"ioguard/internal/task"
)

// Admission is the per-manager admission-control state. It is created
// by EnableAdmission and consulted by Submit.
type admission struct {
	registered map[int]task.Set // vm → admitted task specs
	// rejected counts jobs refused at submit time. Atomic: Submit runs
	// on a shard goroutine under the parallel executor while counter
	// snapshots (RejectedAtAdmission, the server's stats endpoint) may
	// read concurrently from another thread.
	rejected atomic.Int64
}

// EnableAdmission switches the manager to admission-controlled
// operation. Only valid in ServerEDF mode (the test needs the per-VM
// servers). After enabling, jobs are accepted only for registered
// tasks.
func (m *Manager) EnableAdmission() error {
	if m.cfg.Mode != ServerEDF {
		return fmt.Errorf("hypervisor: admission control requires ServerEDF mode")
	}
	if len(m.servers) == 0 {
		return fmt.Errorf("hypervisor: admission control requires configured servers")
	}
	// The per-task L-Sched tests are only meaningful if the servers
	// themselves hold on this manager's Time Slot Table (Theorem 1/2).
	servers := make([]task.Server, len(m.servers))
	for i, s := range m.servers {
		servers[i] = s.cfg
	}
	sb := analysis.NewSupplyBound(m.cfg.Table)
	res, err := analysis.TestGSched(sb, servers)
	if err != nil {
		return fmt.Errorf("hypervisor: admission control: %w", err)
	}
	if !res.Schedulable {
		return fmt.Errorf("hypervisor: admission control: servers not schedulable on the table (fails at window %d)", res.FailsAt)
	}
	m.adm = &admission{registered: make(map[int]task.Set)}
	return nil
}

// AdmissionEnabled reports whether admission control is active.
func (m *Manager) AdmissionEnabled() bool { return m.adm != nil }

// RejectedAtAdmission returns the count of jobs refused because their
// task was not registered.
func (m *Manager) RejectedAtAdmission() int64 {
	if m.adm == nil {
		return 0
	}
	return m.adm.rejected.Load()
}

// RegisterTask runs the Theorem 3/4 test for the task's VM with the
// task added to the VM's current set; on success the task is admitted
// and its jobs will be accepted.
func (m *Manager) RegisterTask(spec task.Sporadic) error {
	if m.adm == nil {
		return fmt.Errorf("hypervisor: admission control not enabled")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.VM < 0 || spec.VM >= m.cfg.VMs {
		return fmt.Errorf("hypervisor: vm %d out of range", spec.VM)
	}
	var server *task.Server
	for _, s := range m.servers {
		if s.cfg.VM == spec.VM {
			g := s.cfg
			server = &g
			break
		}
	}
	if server == nil {
		return fmt.Errorf("hypervisor: vm %d has no server", spec.VM)
	}
	for _, t := range m.adm.registered[spec.VM] {
		if t.ID == spec.ID {
			return fmt.Errorf("hypervisor: task %d already registered on vm %d", spec.ID, spec.VM)
		}
	}
	candidate := append(append(task.Set{}, m.adm.registered[spec.VM]...), spec)
	res, err := analysis.TestLSched(*server, candidate, spec.VM)
	if err != nil {
		return fmt.Errorf("hypervisor: admission of task %d: %w", spec.ID, err)
	}
	if !res.Schedulable {
		return fmt.Errorf("hypervisor: task %d rejected: vm %d would miss deadlines (fails at window %d)",
			spec.ID, spec.VM, res.FailsAt)
	}
	m.adm.registered[spec.VM] = candidate
	return nil
}

// UnregisterTask releases a task's reservation.
func (m *Manager) UnregisterTask(vm, id int) error {
	if m.adm == nil {
		return fmt.Errorf("hypervisor: admission control not enabled")
	}
	ts := m.adm.registered[vm]
	for i, t := range ts {
		if t.ID == id {
			m.adm.registered[vm] = append(ts[:i:i], ts[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("hypervisor: task %d not registered on vm %d", id, vm)
}

// admitted reports whether a job belongs to a registered task (always
// true when admission control is off).
func (m *Manager) admitted(j *task.Job) bool {
	if m.adm == nil {
		return true
	}
	for _, t := range m.adm.registered[j.Task.VM] {
		if t.ID == j.Task.ID {
			return true
		}
	}
	m.adm.rejected.Add(1)
	return false
}
