// CSVSink: the streaming counterpart of Recorder.WriteCSV. Instead of
// buffering every event and exporting after the run, the sink writes
// each event's CSV row the moment it is recorded — wire its On*
// methods to the same hooks as Recorder's (hypervisor.Manager.OnExecute,
// system.Collector.Observe) and trace export works in bounded memory,
// matching the streaming metrics mode.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// CSVSink writes trace events to a CSV stream as they happen.
// Construct with NewCSVSink; call Flush (and check its error) when the
// run finishes. Errors are sticky: the first write failure is kept and
// later events are dropped, so the hot path never has to handle one.
type CSVSink struct {
	cw  *csv.Writer
	row []string
	err error
}

// NewCSVSink returns a sink writing to w, with the header row already
// emitted.
func NewCSVSink(w io.Writer) (*CSVSink, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return nil, fmt.Errorf("trace: writing csv header: %w", err)
	}
	return &CSVSink{cw: cw, row: make([]string, len(csvHeader))}, nil
}

// event writes one row unless a previous write already failed.
func (s *CSVSink) event(at slot.Time, kind EventKind, j *task.Job) {
	if s.err != nil {
		return
	}
	csvRecord(s.row, at, kind, j)
	s.err = s.cw.Write(s.row)
}

// OnRelease records a job release.
func (s *CSVSink) OnRelease(now slot.Time, j *task.Job) { s.event(now, Release, j) }

// OnExecute records one executed slot; wire it to
// hypervisor.Manager.OnExecute.
func (s *CSVSink) OnExecute(now slot.Time, j *task.Job) { s.event(now, Execute, j) }

// OnComplete records an observed completion; wire it to
// system.Collector.Observe.
func (s *CSVSink) OnComplete(j *task.Job, at slot.Time) { s.event(at, Complete, j) }

// Flush drains buffered rows and returns the first error encountered
// by any write since construction.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	if s.err == nil {
		s.err = s.cw.Error()
	}
	if s.err != nil {
		return fmt.Errorf("trace: streaming csv: %w", s.err)
	}
	return nil
}
