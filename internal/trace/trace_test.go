package trace

import (
	"strings"
	"testing"

	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestEventKindString(t *testing.T) {
	if Release.String() != "release" || Execute.String() != "execute" || Complete.String() != "complete" {
		t.Error("event kind names wrong")
	}
	if !strings.Contains(EventKind(9).String(), "9") {
		t.Error("unknown kind should show numerically")
	}
}

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	tk := &task.Sporadic{ID: 0, Name: "crc", VM: 0, Period: 10, WCET: 2, Deadline: 10}
	j := task.NewJob(tk, 0, 0)
	r.OnRelease(0, j)
	r.OnExecute(1, j)
	r.OnExecute(2, j)
	r.OnComplete(j, 3)
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != Release || evs[3].Kind != Complete {
		t.Error("event order wrong")
	}
	slots := r.ExecutedSlots()["crc"]
	if len(slots) != 2 || slots[0] != 1 || slots[1] != 2 {
		t.Errorf("executed slots = %v", slots)
	}
}

func TestGantt(t *testing.T) {
	var r Recorder
	a := &task.Sporadic{ID: 0, Name: "alpha", VM: 0, Period: 10, WCET: 2, Deadline: 10}
	b := &task.Sporadic{ID: 1, Name: "beta", VM: 0, Period: 10, WCET: 1, Deadline: 10}
	ja, jb := task.NewJob(a, 0, 0), task.NewJob(b, 0, 0)
	r.OnExecute(0, ja)
	r.OnExecute(1, jb)
	r.OnExecute(2, ja)
	out := r.Gantt(0, 4)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("gantt missing rows: %s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "#.#.") {
		t.Errorf("alpha row = %q, want #.#.", lines[1])
	}
	if !strings.Contains(lines[2], ".#..") {
		t.Errorf("beta row = %q, want .#..", lines[2])
	}
	if r.Gantt(5, 5) != "" {
		t.Error("empty window should render nothing")
	}
}

func TestRecorderWiresIntoManager(t *testing.T) {
	var r Recorder
	m, err := hypervisor.New(hypervisor.Config{VMs: 1, Mode: hypervisor.DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	m.OnExecute = r.OnExecute
	m.OnComplete = r.OnComplete
	tk := &task.Sporadic{ID: 0, Name: "op", VM: 0, Period: 100, WCET: 3, Deadline: 100}
	m.Submit(0, task.NewJob(tk, 0, 0))
	for now := slot.Time(0); now < 10; now++ {
		m.Step(now)
	}
	if len(r.ExecutedSlots()["op"]) != 3 {
		t.Errorf("executed slots = %v", r.ExecutedSlots())
	}
	found := false
	for _, e := range r.Events() {
		if e.Kind == Complete {
			found = true
		}
	}
	if !found {
		t.Error("no completion recorded")
	}
}
