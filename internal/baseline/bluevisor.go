// BS|BV: BlueVisor-style hardware-assisted virtualization (Jiang &
// Audsley, RTAS'18). The hypervisor is a dedicated coprocessor, so
// I/O requests bypass both the software VMM and the NoC routers and
// reach the I/O hardware over a short bounded path — but the I/O
// buffering "remains the FIFO structure at I/O hardware level, which
// hence cannot guarantee the I/O predictability" (Sec. I): per-VM
// FIFO pools served round-robin, non-preemptively, with no deadline
// awareness.
package baseline

import (
	"fmt"
	"sync/atomic"

	"ioguard/internal/queue"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// bvShard is one device's controller pipeline: the bounded hardware
// path (a delay queue keyed by pool-arrival slot) in front of the
// device's round-robin station. Devices never touch each other's
// state — there is no shared mesh in BlueVisor — so each shard may
// advance on its own virtual clock.
type bvShard struct {
	owner   *BlueVisor
	dev     string
	st      *station
	pending *queue.PQ[*task.Job] // keyed by pool-arrival slot
	// dropped counts this shard's full-queue rejections. Kept per
	// shard (summed by BlueVisor.Dropped) so concurrent shards under
	// the parallel executor never write a shared counter.
	dropped int64
	// sink, when the parallel runner installs one, receives this
	// shard's completions instead of the owner's collector.
	sink func(j *task.Job, at slot.Time)
}

// Devices returns the single device this shard owns.
func (s *bvShard) Devices() []string { return []string{s.dev} }

// Submit forwards the job over the bounded hardware path into its
// VM's FIFO pool at the device.
func (s *bvShard) Submit(now slot.Time, j *task.Job) {
	s.pending.Push(now+s.owner.path.Request, j)
}

// Step admits due jobs to their pools and services the controller.
func (s *bvShard) Step(now slot.Time) {
	for {
		_, at, j, ok := s.pending.Min()
		if !ok || at > now {
			break
		}
		s.pending.PopMin()
		if err := s.st.enqueue(j); err != nil {
			s.dropped++
		}
	}
	s.st.step(now)
}

// complete delivers one finished job — response-path cost added — to
// the redirected sink when one is installed, else to the collector.
func (s *bvShard) complete(j *task.Job, finished slot.Time) {
	at := finished + s.owner.path.Response
	if s.sink != nil {
		s.sink(j, at)
		return
	}
	if s.owner.col != nil {
		s.owner.col.Complete(j, at)
	}
}

// SetCompletionSink implements system.ParallelShard.
func (s *bvShard) SetCompletionSink(sink func(j *task.Job, at slot.Time)) {
	s.sink = sink
}

// NextWork implements the sim.Quiescer protocol on the shard's local
// clock: now while the station holds work, otherwise the earliest
// pool-arrival slot.
func (s *bvShard) NextWork(now slot.Time) slot.Time {
	if s.st.busy() {
		return now
	}
	if _, at, _, ok := s.pending.Min(); ok {
		if at <= now {
			return now
		}
		return at
	}
	return slot.Never
}

// pendingJobs visits jobs on the hardware path or queued at the
// controller.
func (s *bvShard) pendingJobs(visit func(j *task.Job)) {
	s.pending.Each(func(_ queue.Handle, _ slot.Time, j *task.Job) { visit(j) })
	s.st.pendingJobs(visit)
}

// BlueVisor is the BS|BV baseline: one bvShard per device.
type BlueVisor struct {
	tasks   task.Set
	path    rtos.PathCost
	col    *system.Collector
	shards []*bvShard
	byDev  map[string]*bvShard
	// dropped counts jobs for unknown devices. Atomic: Submit is the
	// sharded runners' fallback path and may interleave with
	// concurrent Dropped snapshots; per-shard full-queue drops stay in
	// bvShard.dropped (shard-confined, summed below).
	dropped atomic.Int64
}

var _ system.System = (*BlueVisor)(nil)
var _ system.ShardedSystem = (*BlueVisor)(nil)

// NewBlueVisor builds the BlueVisor baseline.
func NewBlueVisor(vms int, ts task.Set, col *system.Collector) (*BlueVisor, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("baseline: bluevisor needs at least one VM")
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	b := &BlueVisor{
		tasks: ts,
		path:  rtos.Costs(rtos.BlueVisor),
		col:   col,
		byDev: make(map[string]*bvShard),
	}
	// BlueVisor's hardware translators program the controller faster
	// than a software driver but still occupy it per operation.
	const bvSetupSlots = 2
	for _, dev := range devicesOf(ts) {
		sh := &bvShard{owner: b, dev: dev, pending: queue.NewPQ[*task.Job](0)}
		st, err := newStation(dev, perVMRoundRobin, vms, bvSetupSlots, sh.complete)
		if err != nil {
			return nil, err
		}
		sh.st = st
		b.shards = append(b.shards, sh)
		b.byDev[dev] = sh
	}
	return b, nil
}

// Name returns "BS|BV".
func (b *BlueVisor) Name() string { return rtos.BlueVisor.String() }

// Arch returns rtos.BlueVisor.
func (b *BlueVisor) Arch() rtos.Arch { return rtos.BlueVisor }

// Residual returns the full workload.
func (b *BlueVisor) Residual() task.Set { return b.tasks }

// Submit routes the job to its device's shard (jobs for unknown
// devices are dropped — there is no controller to serve them).
func (b *BlueVisor) Submit(now slot.Time, j *task.Job) {
	sh, ok := b.byDev[j.Task.Device]
	if !ok {
		b.dropped.Add(1)
		return
	}
	sh.Submit(now, j)
}

// Step advances every shard one slot, in sorted device order (the
// same order the decoupled scheduler preserves per slot).
func (b *BlueVisor) Step(now slot.Time) {
	for _, sh := range b.shards {
		sh.Step(now)
	}
}

// NextWork implements the sim.Quiescer protocol: the earliest shard
// horizon.
func (b *BlueVisor) NextWork(now slot.Time) slot.Time {
	next := slot.Never
	for _, sh := range b.shards {
		nw := sh.NextWork(now)
		if nw <= now {
			return now
		}
		if nw < next {
			next = nw
		}
	}
	return next
}

// Shards implements system.ShardedSystem: one shard per device, in
// sorted device order. BlueVisor has no cross-device coupling, so the
// per-device decoupling is exact.
func (b *BlueVisor) Shards() []system.Shard {
	out := make([]system.Shard, len(b.shards))
	for i, sh := range b.shards {
		out[i] = sh
	}
	return out
}

// Pending visits jobs on the hardware path or queued at controllers.
func (b *BlueVisor) Pending(visit func(j *task.Job)) {
	for _, sh := range b.shards {
		sh.pendingJobs(visit)
	}
}

// Dropped returns jobs lost at unknown devices or full queues.
func (b *BlueVisor) Dropped() int64 {
	n := b.dropped.Load()
	for _, sh := range b.shards {
		n += sh.dropped
	}
	return n
}
