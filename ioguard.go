// Package ioguard is the public API of the I/O-GUARD reproduction
// (Jiang et al., "I/O-GUARD: Hardware/Software Co-Design for I/O
// Virtualization with Guaranteed Real-time Performance", DAC 2021).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - the I/O task and periodic-server models of Sec. IV (Task,
//     TaskSet, Server, Job),
//   - the Time Slot Table σ* and its offline construction (Sec. II-B
//     and III-A),
//   - the two-layer schedulability analysis of Sec. IV (Analyze,
//     SynthesizeServers),
//   - the slot-accurate I/O-GUARD system (NewSystem) and the three
//     baseline architectures of Sec. V, all runnable under the common
//     trial harness (Run, Sweep),
//   - the evaluation drivers that regenerate every table and figure
//     (see internal/experiments and cmd/ioguard-experiments).
//
// See examples/quickstart for a five-minute tour.
package ioguard

import (
	"ioguard/internal/analysis"
	"ioguard/internal/baseline"
	"ioguard/internal/core"
	"ioguard/internal/hypervisor"
	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
	"ioguard/internal/workload"
)

// Core model types (Sec. IV).
type (
	// Time is a time-slot index; one slot is 1 µs (100 cycles at the
	// platform's 100 MHz clock).
	Time = slot.Time
	// Task is a sporadic I/O task τk = (Tk, Ck, Dk).
	Task = task.Sporadic
	// TaskSet is a collection of I/O tasks.
	TaskSet = task.Set
	// Server is a periodic server Γi = (Πi, Θi) backing one VM.
	Server = task.Server
	// Job is one released task instance.
	Job = task.Job
	// Kind classifies tasks (Safety / Function / Synthetic).
	Kind = task.Kind
)

// Task kinds.
const (
	Safety    = task.Safety
	Function  = task.Function
	Synthetic = task.Synthetic
)

// Time Slot Table (σ*) types.
type (
	// Table is the Time Slot Table σ* consulted by the P-channel.
	Table = slot.Table
	// Requirement is one pre-defined task to compile into σ*.
	Requirement = slot.Requirement
)

// BuildTable compiles pre-defined task requirements into a Time Slot
// Table using offline preemptive EDF (the "loaded during system
// initialization" step of Sec. II-B).
func BuildTable(reqs []Requirement) (*Table, []slot.Placement, error) {
	return slot.Build(reqs)
}

// Scheduling analysis (Sec. IV).

// AnalysisResult is the outcome of the full two-layer test.
type AnalysisResult = analysis.SystemResult

// Analyze runs the complete two-layer schedulability analysis:
// Theorem 1/2 for the allocation of free slots to the per-VM servers,
// then Theorem 3/4 per VM for its sporadic tasks.
func Analyze(tab *Table, servers []Server, ts TaskSet) (AnalysisResult, error) {
	return analysis.TestSystem(tab, servers, ts)
}

// SynthesizeServers dimensions one minimal-budget server per VM (all
// with period pi) and verifies the global test against the table.
func SynthesizeServers(tab *Table, ts TaskSet, pi Time) ([]Server, AnalysisResult, error) {
	return analysis.SynthesizeServers(tab, ts, pi)
}

// System construction.

// SchedMode selects the R-channel global scheduler.
type SchedMode = hypervisor.Mode

// Global scheduling modes: DirectEDF matches the hardware G-Sched of
// Sec. III-A; ServerEDF is the analyzable configuration of Sec. IV.
const (
	ServerEDF = hypervisor.ServerEDF
	DirectEDF = hypervisor.DirectEDF
)

// SystemConfig parameterizes an I/O-GUARD instance.
type SystemConfig = core.Config

// System is the common interface of all runnable architectures.
type System = system.System

// Collector records observed completions during a run.
type Collector = system.Collector

// MetricsMode selects the collector's recorder implementation:
// MetricsExact (the zero value) buffers every completion and answers
// exact percentiles; MetricsStream keeps collector memory independent
// of the horizon using online moments and an ε-approximate quantile
// sketch.
type MetricsMode = system.MetricsMode

// Metrics modes.
const (
	MetricsExact  = system.MetricsExact
	MetricsStream = system.MetricsStream
)

// Recorder is the streaming observer interface behind trial metrics:
// both the exact Sample and the bounded-memory Streaming recorder
// implement it.
type Recorder = metrics.Recorder

// NewSystem builds a complete I/O-GUARD system (hypervisor per device,
// P-channel tables, R-channel pools) for the workload, reporting
// completions to col (which may be nil).
func NewSystem(cfg SystemConfig, ts TaskSet, col *Collector) (*core.System, error) {
	return core.New(cfg, ts, col)
}

// Baselines of Sec. V.

// NewLegacy builds BS|Legacy: no virtualization, NoC-routed I/O with
// FIFO arbitration.
func NewLegacy(vms int, ts TaskSet, col *Collector) (System, error) {
	return baseline.NewLegacy(vms, ts, col)
}

// NewRTXen builds BS|RT-XEN: a software hypervisor with real-time
// patches; quantum ≤ 0 selects the default VCPU quantum.
func NewRTXen(vms int, ts TaskSet, col *Collector, quantum Time) (System, error) {
	return baseline.NewRTXen(vms, ts, col, quantum)
}

// NewBlueVisor builds BS|BV: hardware-assisted virtualization with
// per-VM FIFO I/O pools.
func NewBlueVisor(vms int, ts TaskSet, col *Collector) (System, error) {
	return baseline.NewBlueVisor(vms, ts, col)
}

// Trial harness.

// Trial parameterizes one execution.
type Trial = system.Trial

// Builder constructs a system wired to a collector.
type Builder = system.Builder

// TrialResult scores one execution.
type TrialResult = metrics.TrialResult

// Aggregate summarizes repeated trials.
type Aggregate = metrics.Aggregate

// Run executes one trial: a deterministic release engine drives the
// system's residual tasks for the trial horizon, and the result is
// scored with the paper's metrics (success, throughput, response
// times).
func Run(build Builder, tr Trial) (*TrialResult, error) {
	return system.Run(build, tr)
}

// Sweep repeats a trial configuration across independent seeds and
// aggregates success ratio and throughput.
func Sweep(build Builder, tr Trial, trials int) (*Aggregate, error) {
	return system.Sweep(build, tr, trials)
}

// ParallelSweep is Sweep across a deterministic worker pool: trials
// run on `workers` goroutines (≤0 = GOMAXPROCS) and are folded in
// trial order, so the aggregate is identical for any worker count.
func ParallelSweep(build Builder, tr Trial, trials, workers int) (*Aggregate, error) {
	return system.ParallelSweep(build, tr, trials, workers)
}

// Workload generation (Sec. V-C).

// WorkloadConfig parameterizes the automotive case-study generator.
type WorkloadConfig = workload.Config

// GenerateWorkload builds the case-study task set: the full safety and
// function catalogues plus synthetic load lifting each device to the
// target utilization.
func GenerateWorkload(cfg WorkloadConfig) (TaskSet, error) {
	return workload.Generate(cfg)
}

// Sensitivity analysis.

// ScalingResult reports a configuration's critical WCET scaling factor.
type ScalingResult = analysis.ScalingResult

// CriticalScaling finds the largest uniform WCET inflation that keeps
// ts schedulable on tab with minimal per-VM servers of period pi — the
// analytical margin behind the Fig. 7 cliffs.
func CriticalScaling(tab *Table, ts TaskSet, pi Time, tol float64) (ScalingResult, error) {
	return analysis.CriticalScaling(tab, ts, pi, tol)
}
