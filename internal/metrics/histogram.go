// Histogram: fixed-bucket distribution summaries with an ASCII
// rendering, used to visualize response-time and tardiness
// distributions (the experimental-variance aspect of Obs. 3: the
// paper reports I/O-GUARD's curves with "less experimental
// variance").
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into equal-width buckets over
// [Lo, Hi); values outside the range fall into under/overflow buckets.
type Histogram struct {
	Lo, Hi  float64
	buckets []int64
	under   int64
	over    int64
	n       int64
}

// NewHistogram builds a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("metrics: need positive bucket count, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: invalid range [%v,%v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]int64, n)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(v float64) {
	h.n++
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.buckets)) * (v - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// AddSample counts every observation of a sample.
func (h *Histogram) AddSample(s *Sample) {
	for _, v := range s.values {
		h.Add(v)
	}
}

// N returns the total observation count (including out-of-range).
func (h *Histogram) N() int64 { return h.n }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Render draws the histogram with unit-scaled bars of at most width
// characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	max := h.under
	if h.over > max {
		max = h.over
	}
	for _, c := range h.buckets {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	bar := func(c int64) string {
		n := int(math.Round(float64(c) / float64(max) * float64(width)))
		return strings.Repeat("#", n)
	}
	var b strings.Builder
	step := (h.Hi - h.Lo) / float64(len(h.buckets))
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s %6d %s\n", fmt.Sprintf("< %.0f", h.Lo), h.under, bar(h.under))
	}
	for i, c := range h.buckets {
		lo := h.Lo + float64(i)*step
		fmt.Fprintf(&b, "%12s %6d %s\n", fmt.Sprintf("%.0f–%.0f", lo, lo+step), c, bar(c))
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%12s %6d %s\n", fmt.Sprintf("≥ %.0f", h.Hi), h.over, bar(h.over))
	}
	return b.String()
}
