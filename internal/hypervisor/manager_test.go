package hypervisor

import (
	"math/rand"
	"strings"
	"testing"

	"ioguard/internal/analysis"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// completionLog collects OnComplete callbacks.
type completionLog struct {
	jobs []*task.Job
	at   []slot.Time
}

func (c *completionLog) hook() func(*task.Job, slot.Time) {
	return func(j *task.Job, at slot.Time) {
		c.jobs = append(c.jobs, j)
		c.at = append(c.at, at)
	}
}

func (c *completionLog) misses() int {
	n := 0
	for i, j := range c.jobs {
		if c.at[i] > j.Deadline {
			n++
		}
	}
	return n
}

func run(m *Manager, until slot.Time) {
	for now := slot.Time(0); now < until; now++ {
		m.Step(now)
	}
}

func TestModeString(t *testing.T) {
	if ServerEDF.String() != "server-edf" || DirectEDF.String() != "direct-edf" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode should show numerically")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{VMs: 0}); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := New(Config{VMs: 1, ReqLatency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(Config{VMs: 1, Mode: ServerEDF,
		Servers: []task.Server{{VM: 3, Period: 4, Budget: 1}}}); err == nil {
		t.Error("server for out-of-range VM accepted")
	}
	if _, err := New(Config{VMs: 1, Mode: ServerEDF,
		Servers: []task.Server{{VM: 0, Period: 0, Budget: 1}}}); err == nil {
		t.Error("invalid server accepted")
	}
	if _, err := New(Config{VMs: 2, Mode: ServerEDF, Servers: []task.Server{
		{VM: 0, Period: 4, Budget: 1}, {VM: 0, Period: 8, Budget: 1}}}); err == nil {
		t.Error("duplicate server accepted")
	}
	m, err := New(Config{VMs: 2, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().Table == nil || m.Config().Table.Len() != 1 {
		t.Error("nil table should default to length-1 all-free")
	}
	if _, err := m.Pool(1); err != nil {
		t.Error("pool lookup failed")
	}
	if _, err := m.Pool(5); err == nil {
		t.Error("out-of-range pool lookup accepted")
	}
}

func TestPChannelRunsInOwnedSlots(t *testing.T) {
	// Table of 4 slots: task 0 owns slots 0,1. Pre-defined task
	// (T=4,C=2,D=4) must complete every period exactly on time.
	tab, _, err := slot.Build([]slot.Requirement{{ID: 0, Period: 4, WCET: 2, Deadline: 4}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	var log completionLog
	m.OnComplete = log.hook()
	spec := &task.Sporadic{ID: 100, Name: "sensor", VM: 0, Period: 4, WCET: 2, Deadline: 4}
	if err := m.Preload(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	run(m, 16)
	if len(log.jobs) != 4 {
		t.Fatalf("completions = %d, want 4", len(log.jobs))
	}
	if log.misses() != 0 {
		t.Errorf("P-channel tasks missed deadlines: %v", log.at)
	}
	// Each job completes at the end of its 2nd slot: releases 0,4,8,12
	// complete at 2,6,10,14.
	for i, at := range log.at {
		want := slot.Time(4*i + 2)
		if at != want {
			t.Errorf("job %d completed at %d, want %d", i, at, want)
		}
	}
	st := m.Stats()
	if st.PSlotsUsed != 8 {
		t.Errorf("PSlotsUsed = %d, want 8", st.PSlotsUsed)
	}
}

func TestPreloadValidation(t *testing.T) {
	tab, _, _ := slot.Build([]slot.Requirement{{ID: 0, Period: 4, WCET: 1, Deadline: 4}})
	m, _ := New(Config{VMs: 1, Table: tab})
	bad := &task.Sporadic{ID: 1, Period: 0, WCET: 1, Deadline: 1}
	if err := m.Preload(bad, 0, 0); err == nil {
		t.Error("invalid spec accepted")
	}
	spec := &task.Sporadic{ID: 1, VM: 0, Period: 4, WCET: 1, Deadline: 4}
	if err := m.Preload(spec, 7, 0); err == nil {
		t.Error("task with no owned slots accepted")
	}
	if err := m.Preload(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Preload(spec, 0, 0); err == nil {
		t.Error("duplicate preload accepted")
	}
}

func TestDirectEDFOrdering(t *testing.T) {
	// Two VMs, all-free table, direct EDF: the later-submitted but
	// earlier-deadline job must preempt.
	m, _ := New(Config{VMs: 2, Mode: DirectEDF})
	var log completionLog
	m.OnComplete = log.hook()
	long := &task.Sporadic{ID: 0, VM: 0, Period: 100, WCET: 10, Deadline: 50}
	short := &task.Sporadic{ID: 1, VM: 1, Period: 100, WCET: 2, Deadline: 10}
	jLong := task.NewJob(long, 0, 0)
	m.Submit(0, jLong)
	var jShort *task.Job
	for now := slot.Time(0); now < 40; now++ {
		if now == 3 {
			jShort = task.NewJob(short, 0, now)
			m.Submit(now, jShort)
		}
		m.Step(now)
	}
	if len(log.jobs) != 2 {
		t.Fatalf("completions = %d, want 2", len(log.jobs))
	}
	if log.jobs[0] != jShort {
		t.Error("short-deadline job should finish first (preemption)")
	}
	// Short arrives at slot 3, runs 3,4 → finishes at 5.
	if log.at[0] != 5 {
		t.Errorf("short finished at %d, want 5", log.at[0])
	}
	// Long: 3 slots before preemption + 7 after → finishes at 12.
	if log.at[1] != 12 {
		t.Errorf("long finished at %d, want 12", log.at[1])
	}
	if m.Stats().Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", m.Stats().Preemptions)
	}
}

func TestRequestAndResponseLatency(t *testing.T) {
	m, _ := New(Config{VMs: 1, Mode: DirectEDF, ReqLatency: 3, RespLatency: 2})
	var log completionLog
	m.OnComplete = log.hook()
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 100, WCET: 1, Deadline: 100}
	m.Submit(0, task.NewJob(tk, 0, 0))
	run(m, 10)
	if len(log.jobs) != 1 {
		t.Fatalf("completions = %d", len(log.jobs))
	}
	// Submitted at 0, enters pool at 3, runs slot 3, finishes at 4,
	// observed at 4+2=6.
	if log.at[0] != 6 {
		t.Errorf("observed completion at %d, want 6", log.at[0])
	}
}

func TestSubmitOutOfRangeVM(t *testing.T) {
	m, _ := New(Config{VMs: 1, Mode: DirectEDF})
	tk := &task.Sporadic{ID: 0, VM: 5, Period: 10, WCET: 1, Deadline: 10}
	m.Submit(0, task.NewJob(tk, 0, 0))
	if m.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", m.Stats().Dropped)
	}
}

func TestPoolOverflowCountsDropped(t *testing.T) {
	m, _ := New(Config{VMs: 1, Mode: DirectEDF, PoolCapacity: 1})
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 100, WCET: 50, Deadline: 100}
	m.Submit(0, task.NewJob(tk, 0, 0))
	m.Submit(0, task.NewJob(tk, 1, 0))
	run(m, 2)
	if m.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", m.Stats().Dropped)
	}
}

func TestServerEDFBudgetIsolation(t *testing.T) {
	// VM0's server: Θ=2 per Π=4. VM0 floods; VM1 (Θ=2/Π=4) must
	// still get its share: in any period each VM runs at most Θ.
	m, _ := New(Config{
		VMs:  2,
		Mode: ServerEDF,
		Servers: []task.Server{
			{VM: 0, Period: 4, Budget: 2},
			{VM: 1, Period: 4, Budget: 2},
		},
	})
	flood := &task.Sporadic{ID: 0, VM: 0, Period: 1000, WCET: 500, Deadline: 1000}
	m.Submit(0, task.NewJob(flood, 0, 0))
	victim := &task.Sporadic{ID: 1, VM: 1, Period: 8, WCET: 2, Deadline: 8}
	var log completionLog
	m.OnComplete = log.hook()
	for now := slot.Time(0); now < 64; now++ {
		if now%8 == 0 {
			m.Submit(now, task.NewJob(victim, int(now/8), now))
		}
		m.Step(now)
	}
	victimDone := 0
	for i, j := range log.jobs {
		if j.Task == victim {
			victimDone++
			if log.at[i] > j.Deadline {
				t.Errorf("victim job %d missed: done %d deadline %d", j.Seq, log.at[i], j.Deadline)
			}
		}
	}
	if victimDone != 8 {
		t.Errorf("victim completions = %d, want 8", victimDone)
	}
}

func TestServerEDFWastesIdleGrant(t *testing.T) {
	// Strict polling server: a slot granted to an idle VM is wasted.
	m, _ := New(Config{
		VMs:     2,
		Mode:    ServerEDF,
		Servers: []task.Server{{VM: 0, Period: 2, Budget: 2}}, // VM0 owns everything
	})
	tk := &task.Sporadic{ID: 0, VM: 1, Period: 100, WCET: 1, Deadline: 100}
	m.Submit(0, task.NewJob(tk, 0, 0)) // VM1 has work but no server
	run(m, 10)
	if m.Stats().Completed != 0 {
		t.Error("VM without server must not run in ServerEDF mode")
	}
	if m.Stats().SlotsIdle != 10 {
		t.Errorf("SlotsIdle = %d, want 10", m.Stats().SlotsIdle)
	}
}

func TestWorkConservingReclaim(t *testing.T) {
	// Table: task 0 owns half the slots but has no work (never
	// preloaded with a matching spec — we preload a task whose period
	// is long so the banked slots idle). Work-conserving mode lets
	// R-channel jobs reclaim them.
	tab := slot.NewTable(2)
	tab.Assign(0, 0)
	mWC, _ := New(Config{VMs: 1, Mode: DirectEDF, Table: tab, WorkConserving: true})
	mStrict, _ := New(Config{VMs: 1, Mode: DirectEDF, Table: tab.Clone()})
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 1000, WCET: 10, Deadline: 1000}
	var logWC, logStrict completionLog
	mWC.OnComplete = logWC.hook()
	mStrict.OnComplete = logStrict.hook()
	mWC.Submit(0, task.NewJob(tk, 0, 0))
	mStrict.Submit(0, task.NewJob(tk, 0, 0))
	run(mWC, 30)
	run(mStrict, 30)
	if len(logWC.jobs) != 1 || len(logStrict.jobs) != 1 {
		t.Fatal("both systems should finish the job within 30 slots")
	}
	if logWC.at[0] >= logStrict.at[0] {
		t.Errorf("work-conserving (%d) should finish before strict (%d)", logWC.at[0], logStrict.at[0])
	}
	if mWC.Stats().Reclaimed == 0 {
		t.Error("work-conserving run should count reclaimed slots")
	}
	if mStrict.Stats().PSlotsIdle == 0 {
		t.Error("strict run should count idle P-slots")
	}
}

func TestPendingJobsVisitsEverything(t *testing.T) {
	tab, _, _ := slot.Build([]slot.Requirement{{ID: 0, Period: 8, WCET: 1, Deadline: 8}})
	m, _ := New(Config{VMs: 1, Mode: DirectEDF, Table: tab, ReqLatency: 5})
	spec := &task.Sporadic{ID: 9, VM: 0, Period: 8, WCET: 1, Deadline: 8}
	m.Preload(spec, 0, 0)
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 100, WCET: 4, Deadline: 100}
	m.Submit(0, task.NewJob(tk, 0, 0)) // in request path
	m.Step(0)                          // releases pre job, runs it (slot 0 owned)
	n := 0
	m.PendingJobs(func(j *task.Job) { n++ })
	// Request-path job still in inbox (ReqLatency 5); pre-job done at
	// slot 0 (WCET 1) so not pending.
	if n != 1 {
		t.Errorf("pending = %d, want 1", n)
	}
}

// TestAnalysisSimulationAgreement is the load-bearing cross-check:
// whenever the two-layer analysis (Theorems 1-4) declares a
// configuration schedulable, the slot-accurate simulation of the
// hypervisor in ServerEDF mode must not miss a single deadline, even
// with adversarial (maximal-rate) sporadic releases.
func TestAnalysisSimulationAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tested := 0
	for trial := 0; trial < 120 && tested < 40; trial++ {
		// Random pre-defined load.
		var reqs []slot.Requirement
		if rng.Intn(2) == 1 {
			reqs = append(reqs, slot.Requirement{ID: 0, Period: 8, WCET: slot.Time(1 + rng.Intn(2)), Deadline: 8})
		}
		tab, _, err := slot.Build(reqs)
		if err != nil {
			continue
		}
		if tab.Len() == 0 {
			tab = slot.NewTable(8)
		}
		// Random sporadic tasks over 2 VMs.
		var ts task.Set
		id := 0
		for vm := 0; vm < 2; vm++ {
			for k := 0; k < 1+rng.Intn(2); k++ {
				T := slot.Time([]int{16, 24, 32, 48}[rng.Intn(4)])
				C := slot.Time(1 + rng.Intn(2))
				D := C + slot.Time(rng.Intn(int(T-C)+1))
				ts = append(ts, task.Sporadic{ID: id, VM: vm, Period: T, WCET: C, Deadline: D})
				id++
			}
		}
		servers, res, err := analysis.SynthesizeServers(tab, ts, 8)
		if err != nil || !res.Schedulable {
			continue
		}
		tested++
		m, err := New(Config{VMs: 2, Mode: ServerEDF, Table: tab, Servers: servers})
		if err != nil {
			t.Fatal(err)
		}
		var log completionLog
		m.OnComplete = log.hook()
		// Adversarial release: every task releases at its maximal rate.
		specs := make([]*task.Sporadic, len(ts))
		for i := range ts {
			specs[i] = &ts[i]
		}
		next := make([]slot.Time, len(ts))
		seq := make([]int, len(ts))
		horizon := 6 * ts.Hyperperiod()
		if horizon > 4096 {
			horizon = 4096
		}
		for now := slot.Time(0); now < horizon; now++ {
			for i, spec := range specs {
				if next[i] <= now {
					m.Submit(now, task.NewJob(spec, seq[i], now))
					seq[i]++
					next[i] = now + spec.Period
				}
			}
			m.Step(now)
		}
		if n := log.misses(); n > 0 {
			t.Fatalf("trial %d: analysis said schedulable but simulation missed %d deadlines\ntable=%s servers=%v tasks=%v",
				trial, n, tab, servers, ts)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d schedulable configurations generated", tested)
	}
}

func TestStatsSlotAccounting(t *testing.T) {
	// Every slot must be accounted exactly once.
	tab, _, _ := slot.Build([]slot.Requirement{{ID: 0, Period: 4, WCET: 1, Deadline: 4}})
	m, _ := New(Config{VMs: 1, Mode: DirectEDF, Table: tab})
	spec := &task.Sporadic{ID: 9, VM: 0, Period: 8, WCET: 1, Deadline: 8} // every other owned slot idles
	m.Preload(spec, 0, 0)
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 16, WCET: 2, Deadline: 16}
	for now := slot.Time(0); now < 64; now++ {
		if now%16 == 0 {
			m.Submit(now, task.NewJob(tk, int(now/16), now))
		}
		m.Step(now)
	}
	st := m.Stats()
	total := st.PSlotsUsed + st.PSlotsIdle + st.RSlotsUsed + st.SlotsIdle + st.Reclaimed
	if total != 64 {
		t.Errorf("accounted slots = %d, want 64 (%+v)", total, st)
	}
}
