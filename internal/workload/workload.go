// Package workload generates the task sets of the case study
// (Sec. V-C): 20 automotive safety tasks drawn from the Renesas
// automotive use-case set (CRC, RSA32, ...), 20 automotive function
// tasks drawn from the EEMBC AutoBench suite (FFT, road-speed
// calculation, ...), plus synthetic tasks used to steer the overall
// system to a target utilization.
//
// The paper measures WCETs with a hybrid measurement approach on the
// FPGA; this reproduction fixes per-benchmark WCETs of matching
// magnitude so that the base (safety + function) load is ≈40% per
// device, exactly as the case study configures it. Raw data enters
// through a 1 Gbps Ethernet controller and results leave via a
// 10 Mbps FlexRay controller; the catalogue splits the tasks between
// the two accordingly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Entry is one catalogue benchmark: a named I/O task template.
type Entry struct {
	Name    string
	Kind    task.Kind
	Device  string
	Period  slot.Time // slots (1 µs each)
	WCET    slot.Time // slots
	OpBytes int
}

// Utilization returns the entry's bandwidth share.
func (e Entry) Utilization() float64 { return float64(e.WCET) / float64(e.Period) }

// periodLadder keeps hyper-periods bounded: all catalogue and
// synthetic periods are drawn from this harmonic family (1–16 ms).
var periodLadder = []slot.Time{1000, 2000, 4000, 8000, 16000}

// MaxOpSlots bounds a single I/O operation's service demand: larger
// transfers are chunked into multiple operations (DMA burst limits do
// the same on the real platform). Without this bound a single
// synthetic bulk transfer could exceed the tightest task deadline and
// no non-preemptive system could ever succeed.
const MaxOpSlots slot.Time = 300

// SafetyEntries returns the 20 automotive safety tasks (Renesas
// automotive use-case set). Ten target the Ethernet ingress, ten the
// FlexRay egress; each device's safety share is ≈0.2.
func SafetyEntries() []Entry {
	return []Entry{
		{"crc8", task.Safety, "ethernet", 1000, 18, 64},
		{"crc16", task.Safety, "ethernet", 1000, 20, 128},
		{"crc32", task.Safety, "ethernet", 2000, 42, 256},
		{"rsa32-sign", task.Safety, "ethernet", 8000, 170, 128},
		{"rsa32-verify", task.Safety, "ethernet", 8000, 150, 128},
		{"aes128-enc", task.Safety, "ethernet", 4000, 80, 256},
		{"aes128-dec", task.Safety, "ethernet", 4000, 85, 256},
		{"sha256", task.Safety, "ethernet", 2000, 40, 256},
		{"hmac-verify", task.Safety, "ethernet", 4000, 78, 128},
		{"frame-guard", task.Safety, "ethernet", 1000, 22, 64},
		{"watchdog-ping", task.Safety, "flexray", 1000, 16, 16},
		{"lockstep-cmp", task.Safety, "flexray", 2000, 44, 64},
		{"parity-check", task.Safety, "flexray", 1000, 19, 32},
		{"brake-monitor", task.Safety, "flexray", 2000, 38, 64},
		{"airbag-poll", task.Safety, "flexray", 1000, 21, 32},
		{"torque-limit", task.Safety, "flexray", 4000, 84, 64},
		{"lane-keep-guard", task.Safety, "flexray", 4000, 76, 128},
		{"battery-guard", task.Safety, "flexray", 8000, 168, 64},
		{"ecu-heartbeat", task.Safety, "flexray", 2000, 36, 16},
		{"door-interlock", task.Safety, "flexray", 8000, 152, 32},
	}
}

// FunctionEntries returns the 20 automotive function tasks (EEMBC
// AutoBench kernels). Each device's function share is ≈0.2.
func FunctionEntries() []Entry {
	return []Entry{
		{"aifftr-fft", task.Function, "ethernet", 4000, 86, 512},
		{"aiifft-ifft", task.Function, "ethernet", 4000, 82, 512},
		{"aifirf-fir", task.Function, "ethernet", 2000, 41, 256},
		{"iirflt-iir", task.Function, "ethernet", 2000, 39, 256},
		{"matrix-mult", task.Function, "ethernet", 8000, 164, 1024},
		{"idctrn-idct", task.Function, "ethernet", 8000, 156, 512},
		{"cacheb-buster", task.Function, "ethernet", 4000, 79, 256},
		{"pntrch-search", task.Function, "ethernet", 2000, 37, 128},
		{"tblook-interp", task.Function, "ethernet", 1000, 20, 64},
		{"basefp-float", task.Function, "ethernet", 1000, 18, 64},
		{"a2time-angle", task.Function, "flexray", 2000, 40, 64},
		{"rspeed-speed", task.Function, "flexray", 1000, 19, 32},
		{"puwmod-pwm", task.Function, "flexray", 1000, 21, 32},
		{"ttsprk-spark", task.Function, "flexray", 2000, 42, 64},
		{"canrdr-canio", task.Function, "flexray", 2000, 38, 128},
		{"bitmnp-bitman", task.Function, "flexray", 4000, 80, 64},
		{"matrix-arith", task.Function, "flexray", 8000, 160, 256},
		{"swerve-plan", task.Function, "flexray", 8000, 158, 128},
		{"cruise-update", task.Function, "flexray", 4000, 78, 64},
		{"gear-select", task.Function, "flexray", 2000, 44, 32},
	}
}

// UUniFast draws n utilizations summing to total (Bini & Buttazzo's
// UUniFast), each strictly positive. It panics on n ≤ 0.
func UUniFast(rng *rand.Rand, n int, total float64) []float64 {
	if n <= 0 {
		panic("workload: UUniFast needs n > 0")
	}
	out := make([]float64, n)
	sum := total
	for i := 1; i < n; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i))
		out[i-1] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// Config parameterizes the case-study workload.
type Config struct {
	VMs int
	// TargetUtil is the per-device target utilization in [0,1]; the
	// case study sweeps it from 0.40 to 1.00.
	TargetUtil float64
	// Seed drives the synthetic-task draw and jitter assignment.
	Seed int64
	// SyntheticJitter adds bounded release jitter to synthetic tasks
	// (they model run-time load; jitter keeps them out of the
	// P-channel). Zero keeps everything periodic.
	SyntheticJitter slot.Time
	// SyntheticPerDevice is the number of synthetic tasks per device
	// used to absorb the utilization gap; default 4.
	SyntheticPerDevice int
}

// Generate builds the case-study task set: the full safety and
// function catalogues plus synthetic load lifting each device to the
// target utilization. Task IDs are dense from 0; VMs are assigned
// round-robin.
func Generate(cfg Config) (task.Set, error) {
	if cfg.VMs <= 0 {
		return nil, fmt.Errorf("workload: need at least one VM")
	}
	if cfg.TargetUtil < 0 || cfg.TargetUtil > 1 {
		return nil, fmt.Errorf("workload: target utilization %.2f outside [0,1]", cfg.TargetUtil)
	}
	if cfg.SyntheticPerDevice <= 0 {
		cfg.SyntheticPerDevice = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	entries := append(SafetyEntries(), FunctionEntries()...)

	var ts task.Set
	id := 0
	baseUtil := map[string]float64{}
	add := func(e Entry, jitter slot.Time) {
		ts = append(ts, task.Sporadic{
			ID:       id,
			Name:     e.Name,
			VM:       id % cfg.VMs,
			Kind:     e.Kind,
			Period:   e.Period,
			WCET:     e.WCET,
			Deadline: e.Period, // implicit deadlines (Sec. V-C)
			Device:   e.Device,
			OpBytes:  e.OpBytes,
			Jitter:   jitter,
		})
		id++
	}
	for _, e := range entries {
		add(e, 0)
		baseUtil[e.Device] += e.Utilization()
	}
	devices := make([]string, 0, len(baseUtil))
	for d := range baseUtil {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, dev := range devices {
		gap := cfg.TargetUtil - baseUtil[dev]
		// The safety+function catalogue fixes a ≈0.40 floor per device:
		// a target below it cannot be met by generating fewer synthetic
		// tasks (there are none to remove). Refuse instead of silently
		// producing the floor workload; sparser sets are derived by
		// period-stretching the catalogue.
		if gap < -0.001 {
			return nil, fmt.Errorf(
				"workload: target utilization %.2f is below the catalogue's base %.2f on %s; use Stretch/StretchToUtil to derive sparser sets",
				cfg.TargetUtil, baseUtil[dev], dev)
		}
		if gap <= 0.001 {
			continue
		}
		for i, u := range UUniFast(rng, cfg.SyntheticPerDevice, gap) {
			p := periodLadder[rng.Intn(len(periodLadder))]
			c := slot.Time(u*float64(p) + 0.5)
			if c < 1 {
				c = 1
			}
			if c > p {
				c = p
			}
			// Chunk bulk synthetic transfers: emit m tasks of ≤
			// MaxOpSlots each instead of one oversized operation.
			m := int((c + MaxOpSlots - 1) / MaxOpSlots)
			if m < 1 {
				m = 1
			}
			part := (c + slot.Time(m) - 1) / slot.Time(m)
			for k := 0; k < m; k++ {
				add(Entry{
					Name:    fmt.Sprintf("synthetic-%s-%d-%d", dev, i, k),
					Kind:    task.Synthetic,
					Device:  dev,
					Period:  p,
					WCET:    part,
					OpBytes: 64,
				}, cfg.SyntheticJitter)
			}
		}
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// DeviceUtilization returns the per-device utilization of a set.
func DeviceUtilization(ts task.Set) map[string]float64 {
	out := map[string]float64{}
	for _, t := range ts {
		out[t.Device] += t.Utilization()
	}
	return out
}
