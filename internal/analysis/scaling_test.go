package analysis

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestCriticalScalingValidation(t *testing.T) {
	tab := slot.NewTable(8)
	if _, err := CriticalScaling(tab, nil, 4, 0); err == nil {
		t.Error("empty set accepted")
	}
	bad := task.Set{{ID: 0, Period: -1, WCET: 1, Deadline: 1}}
	if _, err := CriticalScaling(tab, bad, 4, 0); err == nil {
		t.Error("invalid set accepted")
	}
	ok := task.Set{{ID: 0, VM: 0, Period: 32, WCET: 1, Deadline: 32}}
	if _, err := CriticalScaling(tab, ok, 0, 0); err == nil {
		t.Error("non-positive period accepted")
	}
}

func TestCriticalScalingLightLoadHasMargin(t *testing.T) {
	tab := slot.NewTable(16) // all free
	ts := task.Set{
		{ID: 0, VM: 0, Period: 128, WCET: 2, Deadline: 128},
		{ID: 1, VM: 1, Period: 256, WCET: 4, Deadline: 256},
	}
	res, err := CriticalScaling(tab, ts, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BaselineOK {
		t.Fatal("light load should be schedulable at α=1")
	}
	if res.Alpha < 2 {
		t.Errorf("α = %.2f, expected substantial headroom", res.Alpha)
	}
	// The reported α must itself be feasible and α+2·tol infeasible
	// or saturated.
	if !feasible(tab, ts, 16, res.Alpha) {
		t.Error("reported α not feasible")
	}
}

func TestCriticalScalingRespectsBusyTable(t *testing.T) {
	// Same tasks, but a table with only half its slots free must yield
	// a smaller critical scaling factor.
	free := slot.NewTable(16)
	busy := slot.NewTable(16)
	for i := 0; i < 8; i++ {
		busy.Assign(slot.Time(2*i), 0)
	}
	ts := task.Set{
		{ID: 0, VM: 0, Period: 64, WCET: 4, Deadline: 64},
		{ID: 1, VM: 1, Period: 64, WCET: 4, Deadline: 64},
	}
	a, err := CriticalScaling(free, ts, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CriticalScaling(busy, ts, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if b.Alpha >= a.Alpha {
		t.Errorf("busy table α=%.2f should be below free table α=%.2f", b.Alpha, a.Alpha)
	}
}

func TestCriticalScalingOverloadedBaseline(t *testing.T) {
	tab := slot.NewTable(8)
	ts := task.Set{
		{ID: 0, VM: 0, Period: 8, WCET: 5, Deadline: 8},
		{ID: 1, VM: 1, Period: 8, WCET: 5, Deadline: 8},
	}
	res, err := CriticalScaling(tab, ts, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineOK {
		t.Fatal("overloaded baseline should fail at α=1")
	}
	if res.Alpha >= 1 {
		t.Errorf("α = %.2f, want < 1 for an overloaded system", res.Alpha)
	}
}

func TestScaleSetRoundsUp(t *testing.T) {
	ts := task.Set{{ID: 0, VM: 0, Period: 10, WCET: 3, Deadline: 10}}
	got := scaleSet(ts, 1.1)
	if got[0].WCET != 4 {
		t.Errorf("scaled WCET = %d, want ceil(3.3)=4", got[0].WCET)
	}
	tiny := scaleSet(ts, 0.01)
	if tiny[0].WCET != 1 {
		t.Errorf("scaled WCET = %d, want floor of 1", tiny[0].WCET)
	}
	if ts[0].WCET != 3 {
		t.Error("scaleSet must not mutate its input")
	}
}
