// Schedulability tour: everything in Sec. IV, end to end — the
// supply-bound function of a Time Slot Table (Eq. 1-2), server and
// task demand bounds (Eq. 3, 9), the periodic-resource supply (Eq. 8),
// the G-Sched and L-Sched tests (Theorems 1-4), and a comparison of
// the pseudo-polynomial horizons against the exact hyper-period test.
//
//	go run ./examples/schedulability
package main

import (
	"fmt"
	"log"

	"ioguard/internal/analysis"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func main() {
	// Compile a Time Slot Table from two pre-defined tasks.
	tab, placements, err := slot.Build([]slot.Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8, Offset: 0},
		{ID: 1, Period: 16, WCET: 3, Deadline: 12, Offset: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σ* (H=%d, F=%d): %s\n", tab.Len(), tab.FreeCount(), tab)
	for _, p := range placements {
		fmt.Printf("  task %d released@%d deadline@%d → slots %v\n", p.Task, p.Release, p.Deadline, p.Slots)
	}

	// The supply-bound function of the repeating table (Eq. 1-2).
	sb := analysis.NewSupplyBound(tab)
	fmt.Println("\nsbf(σ,t) — minimum free slots in any window of length t:")
	for _, t := range []slot.Time{1, 2, 4, 8, 16, 32} {
		fmt.Printf("  sbf(%2d) = %d\n", t, sb.At(t))
	}

	// Per-VM periodic servers and their bounds (Eq. 3 and 8).
	g := task.Server{VM: 0, Period: 8, Budget: 3}
	fmt.Printf("\nserver %s: dbf/sbf over t:\n", g)
	for _, t := range []slot.Time{8, 16, 24, 32} {
		fmt.Printf("  t=%2d: dbf=%2d sbf=%2d\n", t, analysis.ServerDBF(g, t), analysis.ServerSBF(g, t))
	}

	// A VM's sporadic tasks and the L-Sched test (Theorem 3/4).
	ts := task.Set{
		{ID: 0, VM: 0, Period: 32, WCET: 3, Deadline: 24},
		{ID: 1, VM: 0, Period: 64, WCET: 5, Deadline: 64},
	}
	local, err := analysis.TestLSched(g, ts, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nL-Sched (Thm 3/4): schedulable=%v, horizon=%d, %d points checked, slack=%.3f\n",
		local.Schedulable, local.Horizon, local.Checked, local.Slack)
	exact, err := analysis.TestLSchedExact(g, ts, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact test agrees: %v (exhaustive horizon %d, %d points)\n",
		exact.Schedulable == local.Schedulable, exact.Horizon, exact.Checked)

	// Full two-layer analysis with synthesized servers.
	full := task.Set{
		{ID: 0, VM: 0, Period: 32, WCET: 3, Deadline: 24},
		{ID: 1, VM: 0, Period: 64, WCET: 5, Deadline: 64},
		{ID: 2, VM: 1, Period: 48, WCET: 4, Deadline: 48},
	}
	servers, res, err := analysis.SynthesizeServers(tab, full, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized servers: %v\n", servers)
	fmt.Printf("two-layer verdict: schedulable=%v (G-Sched slack %.3f)\n",
		res.Schedulable, res.Global.Slack)
}
