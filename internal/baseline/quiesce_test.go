package baseline

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// TestBaselinesQuiesce: every baseline must declare itself idle when
// drained (so fast-forward can skip), report future work after a
// submission without ever returning a slot in the past, and reach
// quiescence again once the job completes — stepping only the slots
// NextWork pins.
func TestBaselinesQuiesce(t *testing.T) {
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "ethernet", Period: 10000, WCET: 5, Deadline: 10000, OpBytes: 64},
	}
	builders := map[string]func(col *system.Collector) (system.System, error){
		"legacy": func(col *system.Collector) (system.System, error) {
			return NewLegacy(1, ts, col)
		},
		"rt-xen": func(col *system.Collector) (system.System, error) {
			return NewRTXen(1, ts, col, 0)
		},
		"bluevisor": func(col *system.Collector) (system.System, error) {
			return NewBlueVisor(1, ts, col)
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			col := &system.Collector{}
			sys, err := build(col)
			if err != nil {
				t.Fatal(err)
			}
			q, ok := sys.(interface {
				NextWork(now slot.Time) slot.Time
			})
			if !ok {
				t.Fatal("baseline does not implement the quiescence protocol")
			}
			if got := q.NextWork(0); got != slot.Never {
				t.Fatalf("idle system NextWork = %d, want Never", got)
			}
			sys.Submit(0, task.NewJob(&ts[0], 0, 0))
			// Drive through the protocol: execute only pinned slots.
			now := slot.Time(0)
			steps := 0
			for steps < 10000 {
				next := q.NextWork(now)
				if next == slot.Never {
					break
				}
				if next < now {
					t.Fatalf("NextWork went backwards: at %d got %d", now, next)
				}
				now = next
				sys.Step(now)
				steps++
				now++
			}
			if col.Completed() != 1 {
				t.Fatalf("completions = %d after %d pinned steps", col.Completed(), steps)
			}
			if got := q.NextWork(now); got != slot.Never {
				t.Errorf("drained system NextWork = %d, want Never", got)
			}
		})
	}
}
