package faults

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func testPlan() Plan {
	return Plan{
		Seed:          7,
		ReleaseJitter: 50,
		DropProb:      0.1,
		DupProb:       0.1,
		DelayProb:     0.2,
		DelayMax:      32,
	}
}

func testSpec(id int) *task.Sporadic {
	return &task.Sporadic{ID: id, Name: "t", VM: 0, Period: 100, WCET: 3, Deadline: 100, Device: "ethernet"}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"full", testPlan(), true},
		{"neg jitter", Plan{ReleaseJitter: -1}, false},
		{"neg delay max", Plan{DelayMax: -1}, false},
		{"drop prob > 1", Plan{DropProb: 1.5}, false},
		{"dup prob < 0", Plan{DupProb: -0.1}, false},
		{"delay without bound", Plan{DelayProb: 0.5}, false},
		{"delay with bound", Plan{DelayProb: 0.5, DelayMax: 4}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewNilForCleanPlan(t *testing.T) {
	if s := New(Plan{}, 1); s != nil {
		t.Fatal("clean plan must produce a nil stream")
	}
	if s := New(Plan{Seed: 99}, 1); s != nil {
		t.Fatal("a seed alone enables nothing")
	}
	if s := New(testPlan(), 1); s == nil {
		t.Fatal("enabled plan produced no stream")
	}
}

// Decisions must be pure functions of (plan seed, trial seed, task,
// seq): two streams over the same identity agree decision-for-decision
// regardless of query order, and a different trial seed diverges.
func TestDecisionsDeterministicAndOrderIndependent(t *testing.T) {
	plan := testPlan()
	a := New(plan, 42)
	b := New(plan, 42)
	spec := testSpec(3)
	// Query b in reverse order to prove order independence.
	type dec struct {
		jit slot.Time
		act Action
	}
	const n = 200
	da := make([]dec, n)
	db := make([]dec, n)
	for i := 0; i < n; i++ {
		da[i] = dec{a.jitterFor(spec, i), a.actionFor(spec, i)}
	}
	for i := n - 1; i >= 0; i-- {
		db[i] = dec{b.jitterFor(spec, i), b.actionFor(spec, i)}
	}
	diverged := false
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("seq %d: decisions diverged: %+v vs %+v", i, da[i], db[i])
		}
	}
	c := New(plan, 43)
	for i := 0; i < n; i++ {
		if (dec{c.jitterFor(spec, i), c.actionFor(spec, i)}) != da[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("trial seed 43 replayed seed 42's decisions exactly")
	}
}

func TestDrawBounds(t *testing.T) {
	s := New(testPlan(), 1)
	spec := testSpec(1)
	var jittered, dropped, delayed int
	for i := 0; i < 2000; i++ {
		j := s.jitterFor(spec, i)
		if j < 0 || j > 50 {
			t.Fatalf("jitter %d outside [0,50]", j)
		}
		if j > 0 {
			jittered++
		}
		a := s.actionFor(spec, i)
		if a.Delay < 0 || a.Delay > 32 {
			t.Fatalf("delay %d outside [0,32]", a.Delay)
		}
		if a.Drop {
			if a.Dup || a.Delay != 0 {
				t.Fatal("drop must preempt dup and delay")
			}
			dropped++
		}
		if a.Delay > 0 {
			delayed++
		}
	}
	if jittered == 0 || dropped == 0 || delayed == 0 {
		t.Fatalf("draws never hit: jittered=%d dropped=%d delayed=%d", jittered, dropped, delayed)
	}
	// Coarse rate check: 10% drop over 2000 draws should land well
	// inside [100, 300].
	if dropped < 100 || dropped > 300 {
		t.Errorf("drop rate badly off: %d/2000 at p=0.1", dropped)
	}
}

func TestFirstJobsNeverJittered(t *testing.T) {
	s := New(testPlan(), 1)
	for id := 0; id < 50; id++ {
		if j := s.jitterFor(testSpec(id), 0); j != 0 {
			t.Fatalf("task %d: first job drew jitter %d", id, j)
		}
	}
}

func TestDupJobIdentity(t *testing.T) {
	s := New(testPlan(), 1)
	spec := testSpec(2)
	j := task.NewJob(spec, 5, 120)
	d := s.DupJob(j)
	if !IsDup(d) || IsDup(j) {
		t.Fatal("dup marking wrong")
	}
	if d.Task != j.Task || d.Release != j.Release || d.Deadline != j.Deadline {
		t.Fatal("duplicate must mirror its original")
	}
	// The duplicate shares its original's decision identity.
	if s.jitterFor(spec, d.Seq) != s.jitterFor(spec, j.Seq) {
		t.Error("dup decision identity diverged from original")
	}
	if s.actionFor(spec, d.Seq) != s.actionFor(spec, j.Seq) {
		t.Error("dup action identity diverged from original")
	}
}

// Perturbed must re-derive exactly the jobs the stream touched, and a
// duplicate is perturbed by construction.
func TestPerturbedMatchesDecisions(t *testing.T) {
	s := New(testPlan(), 9)
	spec := testSpec(4)
	for i := 0; i < 500; i++ {
		j := task.NewJob(spec, i, slot.Time(i)*100)
		want := s.jitterFor(spec, i) > 0
		a := s.actionFor(spec, i)
		want = want || a.Drop || a.Dup || a.Delay > 0
		if got := s.Perturbed(j); got != want {
			t.Fatalf("seq %d: Perturbed=%v, decisions say %v", i, got, want)
		}
		if !s.Perturbed(s.DupJob(j)) {
			t.Fatalf("seq %d: duplicate not perturbed", i)
		}
	}
}

// Summary counters account exactly what Transport and ReleaseJitter
// handed out.
func TestSummaryCounts(t *testing.T) {
	s := New(testPlan(), 5)
	spec := testSpec(6)
	var want Summary
	for i := 0; i < 1000; i++ {
		if d := s.ReleaseJitter(spec, i); d > 0 {
			want.Jittered++
		}
		j := task.NewJob(spec, i, slot.Time(i))
		a := s.Transport(j)
		switch {
		case a.Drop:
			want.Dropped++
		default:
			if a.Dup {
				want.Duplicated++
			}
			if a.Delay > 0 {
				want.Delayed++
			}
		}
	}
	if got := s.Summary(); got != want {
		t.Fatalf("summary %+v, recount %+v", got, want)
	}
}
