// Bursty-telemetry workload family: genuinely sparse multi-device
// task sets (not derived from the 0.40-util automotive base via
// Stretch). Sensor endpoints report in short bursts separated by long
// silences, spread over all six I/O devices of the platform, so
// multi-device cells with non-overlapping busy windows — the regime
// the per-device clock decoupling targets — are first-class rather
// than synthesized.

package workload

import (
	"fmt"
	"math/rand"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// telemetryLadder is the harmonic period family of the telemetry
// catalogue (8–64 ms): reports are rare, so hyper-periods stay
// bounded at 64 ms even though per-device utilization is ≈1–2%.
var telemetryLadder = []slot.Time{8000, 16000, 32000, 64000}

// TelemetryEntries returns the bursty-telemetry catalogue: low-rate
// report bursts across five low-speed device models of the platform
// (internal/iodev) — can, flexray, i2c, spi and uart, which also fit
// the mesh baselines' five-tile device row. Per-device utilization is
// ≈0.5–2%, so any one device is idle for >98% of the horizon.
func TelemetryEntries() []Entry {
	return []Entry{
		// SPI: inertial sensor pack, read out in bursts.
		{"imu-burst", task.Function, "spi", 8000, 42, 512},
		{"mag-sample", task.Function, "spi", 16000, 28, 128},
		// I²C: slow environmental sensors.
		{"baro-report", task.Function, "i2c", 16000, 24, 64},
		{"temp-sweep", task.Function, "i2c", 32000, 40, 128},
		// UART: GNSS receiver sentences and cellular modem chatter.
		{"gps-nmea", task.Function, "uart", 16000, 60, 256},
		{"gps-almanac", task.Function, "uart", 64000, 120, 1024},
		{"modem-at", task.Function, "uart", 32000, 52, 128},
		// CAN: drivetrain diagnostics polling and body status.
		{"obd-poll", task.Function, "can", 8000, 36, 128},
		{"dtc-scan", task.Function, "can", 32000, 64, 256},
		{"body-status", task.Function, "can", 16000, 44, 64},
		// FlexRay: periodic health frames (safety-relevant).
		{"health-frame", task.Safety, "flexray", 32000, 48, 64},
		{"wear-report", task.Safety, "flexray", 64000, 96, 128},
	}
}

// TelemetryConfig parameterizes the bursty-telemetry generator.
type TelemetryConfig struct {
	VMs int
	// Sensors instantiates each catalogue entry this many times
	// (independent sensor channels); default 1.
	Sensors int
	// Jitter bounds the extra release delay per report. Zero selects
	// Period/16 per task (telemetry is event-ish, never strictly
	// periodic); negative disables jitter entirely.
	Jitter slot.Time
	// HotDevice, when set, drives that endpoint to HotUtil with dense
	// diagnostic traffic (1 ms period) — the one-busy-device skew cell
	// of the decoupling benchmarks. The remaining devices keep their
	// sparse telemetry load.
	HotDevice string
	HotUtil   float64
	// Seed drives jitter assignment ordering only; the set itself is
	// deterministic in the config.
	Seed int64
}

// GenerateTelemetry builds a bursty-telemetry task set. Task IDs are
// dense from 0; VMs are assigned round-robin.
func GenerateTelemetry(cfg TelemetryConfig) (task.Set, error) {
	if cfg.VMs <= 0 {
		return nil, fmt.Errorf("workload: need at least one VM")
	}
	if cfg.Sensors <= 0 {
		cfg.Sensors = 1
	}
	if cfg.HotUtil < 0 || cfg.HotUtil > 1 {
		return nil, fmt.Errorf("workload: hot utilization %.2f outside [0,1]", cfg.HotUtil)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ts task.Set
	id := 0
	add := func(e Entry, jitter slot.Time) {
		ts = append(ts, task.Sporadic{
			ID:       id,
			Name:     e.Name,
			VM:       id % cfg.VMs,
			Kind:     e.Kind,
			Period:   e.Period,
			WCET:     e.WCET,
			Deadline: e.Period, // implicit deadlines, like the case study
			Device:   e.Device,
			OpBytes:  e.OpBytes,
			Jitter:   jitter,
		})
		id++
	}
	jitterFor := func(p slot.Time) slot.Time {
		switch {
		case cfg.Jitter < 0:
			return 0
		case cfg.Jitter > 0:
			return cfg.Jitter
		default:
			return p / 16
		}
	}
	for s := 0; s < cfg.Sensors; s++ {
		for _, e := range TelemetryEntries() {
			if s > 0 {
				e.Name = fmt.Sprintf("%s-%d", e.Name, s)
			}
			add(e, jitterFor(e.Period))
		}
	}
	if cfg.HotDevice != "" && cfg.HotUtil > 0 {
		// Dense diagnostic stream on the hot endpoint: chunked ops at
		// the shortest catalogue period, sized to the target
		// utilization (same chunking rule as the synthetic case-study
		// load).
		const hotPeriod slot.Time = 1000
		c := slot.Time(cfg.HotUtil*float64(hotPeriod) + 0.5)
		if c < 1 {
			c = 1
		}
		m := int((c + MaxOpSlots - 1) / MaxOpSlots)
		if m < 1 {
			m = 1
		}
		part := (c + slot.Time(m) - 1) / slot.Time(m)
		for k := 0; k < m; k++ {
			hotJitter := slot.Time(rng.Int63n(64))
			if cfg.Jitter < 0 {
				hotJitter = 0
			}
			add(Entry{
				Name:    fmt.Sprintf("diag-flood-%s-%d", cfg.HotDevice, k),
				Kind:    task.Synthetic,
				Device:  cfg.HotDevice,
				Period:  hotPeriod,
				WCET:    part,
				OpBytes: 64,
			}, hotJitter)
		}
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}
