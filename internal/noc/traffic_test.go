package noc

import (
	"math/rand"
	"strings"
	"testing"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

func TestPatternString(t *testing.T) {
	if Uniform.String() != "uniform" || Hotspot.String() != "hotspot" || Transpose.String() != "transpose" {
		t.Error("pattern names wrong")
	}
	if !strings.Contains(Pattern(9).String(), "9") {
		t.Error("unknown pattern should show numerically")
	}
}

func TestNewTrafficValidation(t *testing.T) {
	m, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	if _, err := NewTraffic(nil, Uniform, 0.1, 8, rng); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := NewTraffic(m, Uniform, 0.1, 8, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewTraffic(m, Uniform, 0, 8, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTraffic(m, Uniform, 1.5, 8, rng); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := NewTraffic(m, Uniform, 0.1, -1, rng); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestUniformTrafficInjects(t *testing.T) {
	m, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	tr, err := NewTraffic(m, Uniform, 0.2, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for now := slot.Time(0); now < 200; now++ {
		tr.Step(now)
		m.Step(now)
	}
	st := m.Stats()
	// Expectation: 25 nodes × 0.2 × 200 = 1000 injections; allow wide
	// slack for randomness.
	if st.Injected < 600 || st.Injected > 1400 {
		t.Errorf("Injected = %d, want ≈1000", st.Injected)
	}
	if st.Delivered == 0 {
		t.Error("nothing delivered")
	}
}

func TestHotspotTrafficConverges(t *testing.T) {
	m, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	tr, _ := NewTraffic(m, Hotspot, 0.3, 8, rng)
	hot := m.NodeAt(Coord{X: 0, Y: 0})
	tr.SetHotspot(hot)
	other := 0
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
		if p.Dst != hot {
			other++
		}
	}
	for now := slot.Time(0); now < 300; now++ {
		tr.Step(now)
		m.Step(now)
	}
	if other != 0 {
		t.Errorf("%d packets delivered off-hotspot", other)
	}
	if m.Stats().Delivered == 0 {
		t.Error("hotspot received nothing")
	}
}

func TestTransposeTraffic(t *testing.T) {
	m, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	tr, _ := NewTraffic(m, Transpose, 0.5, 4, rng)
	bad := 0
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
		src, dst := m.CoordOf(p.Src), m.CoordOf(p.Dst)
		if dst.X != src.Y || dst.Y != src.X {
			bad++
		}
	}
	for now := slot.Time(0); now < 100; now++ {
		tr.Step(now)
		m.Step(now)
	}
	if bad != 0 {
		t.Errorf("%d packets broke the transpose mapping", bad)
	}
}

func TestHotspotSlowerThanTranspose(t *testing.T) {
	// Under equal rates, converging hotspot traffic must see higher
	// average latency than the disjoint transpose permutation — the
	// FIFO arbitration contention the paper's Sec. I describes.
	lat := func(p Pattern) float64 {
		m, _ := New(DefaultConfig())
		rng := rand.New(rand.NewSource(5))
		tr, _ := NewTraffic(m, p, 0.15, 16, rng)
		for now := slot.Time(0); now < 2000; now++ {
			tr.Step(now)
			m.Step(now)
		}
		return m.Stats().AvgDelay()
	}
	hot, trans := lat(Hotspot), lat(Transpose)
	if hot <= trans {
		t.Errorf("hotspot latency %.1f should exceed transpose %.1f", hot, trans)
	}
}
