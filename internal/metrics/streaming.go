// Streaming: the bounded-memory Recorder. Moments come from
// Welford's online algorithm (numerically stable running mean and sum
// of squared deviations), extrema are tracked exactly, and
// percentiles come from a Greenwald–Khanna sketch — so a recorder's
// memory is independent of how many observations flow through it,
// which is what makes paper-scale 1000-trial × 100 s sweeps tractable
// without buffering every completion.
package metrics

import (
	"fmt"
	"math"
)

// Streaming accumulates scalar observations in bounded memory: exact
// n/mean/variance/min/max, ε-approximate percentiles. Construct with
// NewStreaming; the zero value is not usable (the sketch needs its ε).
type Streaming struct {
	n      int64
	mean   float64
	m2     float64 // sum of squared deviations from the running mean
	min    float64
	max    float64
	sketch *GKSketch
}

// NewStreaming returns an empty streaming recorder whose percentile
// queries are accurate to eps ranks per observation (≤ 0 selects
// DefaultSketchEpsilon).
func NewStreaming(eps float64) *Streaming {
	return &Streaming{sketch: NewGKSketch(eps)}
}

// Epsilon returns the percentile sketch's rank-error bound.
func (s *Streaming) Epsilon() float64 { return s.sketch.Epsilon() }

// SketchTuples returns the quantile sketch's current summary size
// (for memory accounting in tests and benchmarks).
func (s *Streaming) SketchTuples() int { return s.sketch.Tuples() }

// Add absorbs one observation.
func (s *Streaming) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	s.sketch.Add(v)
}

// N returns the number of observations.
func (s *Streaming) N() int { return int(s.n) }

// Mean returns the arithmetic mean, or 0 for an empty recorder.
func (s *Streaming) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the population variance, or 0 for fewer than two
// observations (matching Sample).
func (s *Streaming) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Streaming) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Streaming) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 when empty.
func (s *Streaming) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) from the
// sketch: a value whose rank is within ⌈εn⌉ of the exact nearest
// rank. Empty recorders return 0, matching Sample.
func (s *Streaming) Percentile(p float64) float64 {
	return s.sketch.Quantile(p / 100)
}

// String summarizes the recorder in Sample's format.
func (s *Streaming) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f p99=%.0f max=%.0f",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Percentile(99), s.Max())
}
