package analysis

import (
	"strings"
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestPlotGSched(t *testing.T) {
	tab := slot.NewTable(8)
	tab.Assign(0, 1)
	sb := NewSupplyBound(tab)
	servers := []task.Server{{VM: 0, Period: 8, Budget: 2}}
	out := PlotGSched(sb, servers, 32)
	if !strings.Contains(out, "G-Sched") || !strings.Contains(out, "s") {
		t.Errorf("plot missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 14 { // title + 12 rows + axis
		t.Errorf("plot has %d lines, want 14", len(lines))
	}
}

func TestPlotLSched(t *testing.T) {
	g := task.Server{VM: 3, Period: 8, Budget: 4}
	ts := task.Set{{ID: 0, VM: 3, Period: 16, WCET: 2, Deadline: 16}}
	out := PlotLSched(g, ts, 48)
	if !strings.Contains(out, "vm3") || !strings.Contains(out, "d") {
		t.Errorf("plot missing content:\n%s", out)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	sb := NewSupplyBound(slot.NewTable(4))
	// upTo < 1 and zero demand must not panic.
	out := PlotGSched(sb, nil, 0)
	if out == "" {
		t.Error("degenerate plot should still render")
	}
}

func TestPlotMarksCoincidence(t *testing.T) {
	// Supply == demand everywhere → every plotted column is 'x'.
	out := plot("eq", 10, 4,
		func(t slot.Time) slot.Time { return t },
		func(t slot.Time) slot.Time { return t })
	if !strings.Contains(out, "x") || strings.Contains(out, "s ") && strings.Contains(out, "d ") {
		t.Errorf("coincident series should be marked x:\n%s", out)
	}
}
