package vm

import (
	"math/rand"
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// scanGuest is the reference release engine the heap replaced: it
// scans every task on every call, emitting a task's due jobs in task
// order. Kept here (test-only) as the oracle for the heap-vs-scan
// property test.
type scanGuest struct {
	specs []*task.Sporadic
	next  []slot.Time
	seq   []int
	rng   *rand.Rand
}

func newScanGuest(id int, ts task.Set, rng *rand.Rand) *scanGuest {
	g := &scanGuest{rng: rng}
	for i := range ts {
		spec := ts[i]
		g.specs = append(g.specs, &spec)
		g.next = append(g.next, slot.Time(rng.Int63n(int64(spec.Period))))
		g.seq = append(g.seq, 0)
	}
	return g
}

func (g *scanGuest) release(now slot.Time, emit func(j *task.Job)) {
	for i, spec := range g.specs {
		for g.next[i] <= now {
			j := task.NewJob(spec, g.seq[i], g.next[i])
			g.seq[i]++
			gap := spec.Period
			if spec.Jitter > 0 {
				gap += slot.Time(g.rng.Int63n(int64(spec.Jitter) + 1))
			}
			g.next[i] += gap
			emit(j)
		}
	}
}

func (g *scanGuest) nextRelease() slot.Time {
	next := slot.Never
	for _, at := range g.next {
		if at < next {
			next = at
		}
	}
	return next
}

// randomSet draws a workload whose releases exercise heap reordering:
// mixed periods, heavy jitter, several VMs.
func randomSet(rng *rand.Rand, vms, tasksPerVM int) task.Set {
	var ts task.Set
	id := 0
	periods := []slot.Time{3, 5, 7, 10, 16, 25, 40}
	for v := 0; v < vms; v++ {
		for k := 0; k < tasksPerVM; k++ {
			p := periods[rng.Intn(len(periods))]
			ts = append(ts, task.Sporadic{
				ID: id, VM: v, Period: p, WCET: 1, Deadline: p,
				Jitter: slot.Time(rng.Int63n(int64(p))),
			})
			id++
		}
	}
	return ts
}

// TestHeapVsScanEmissionOrder: across random workloads and both call
// patterns (once per slot, and jumping between NextRelease slots), the
// heap-based fleet must emit the exact job sequence of the task-scan
// reference — same tasks, same sequence numbers, same release slots,
// same order. Identical order implies identical RNG draws, which is
// what keeps heap batching invisible to the determinism contract.
func TestHeapVsScanEmissionOrder(t *testing.T) {
	const horizon = 500
	for trial := int64(0); trial < 20; trial++ {
		shape := rand.New(rand.NewSource(1000 + trial))
		ts := randomSet(shape, 1+shape.Intn(4), 1+shape.Intn(6))
		vms := 0
		for _, tk := range ts {
			if tk.VM >= vms {
				vms = tk.VM + 1
			}
		}

		// Reference: scan guests in VM order every slot.
		scanRng := rand.New(rand.NewSource(trial))
		byVM := ts.ByVM()
		var scans []*scanGuest
		for v := 0; v < vms; v++ {
			scans = append(scans, newScanGuest(v, byVM[v], scanRng))
		}
		var want []rel
		for now := slot.Time(0); now < horizon; now++ {
			for _, g := range scans {
				g.release(now, func(j *task.Job) {
					want = append(want, rel{j.Task.ID, j.Seq, j.Release})
				})
			}
		}

		check := func(name string, got []rel) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: released %d jobs, scan released %d", trial, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: job %d diverges: heap %+v, scan %+v", trial, name, i, got[i], want[i])
				}
			}
		}

		// Heap fleet, dense per-slot calls.
		dense, err := NewFleet(vms, ts, rand.New(rand.NewSource(trial)))
		if err != nil {
			t.Fatal(err)
		}
		var got []rel
		for now := slot.Time(0); now < horizon; now++ {
			dense.Release(now, func(j *task.Job) {
				got = append(got, rel{j.Task.ID, j.Seq, j.Release})
			})
		}
		check("dense", got)
		if dense.Released() != int64(len(got)) {
			t.Fatalf("trial %d: Released() = %d, emitted %d", trial, dense.Released(), len(got))
		}

		// Heap fleet, jumping straight between NextRelease slots (the
		// fast-forward pattern of the sharded runner).
		jump, err := NewFleet(vms, ts, rand.New(rand.NewSource(trial)))
		if err != nil {
			t.Fatal(err)
		}
		got = nil
		for now := jump.NextRelease(); now < horizon; now = jump.NextRelease() {
			jump.Release(now, func(j *task.Job) {
				got = append(got, rel{j.Task.ID, j.Seq, j.Release})
			})
		}
		check("jump", got)
	}
}

// TestScanGuestMatchesNextRelease pins the oracle itself: its
// nextRelease must agree with the heap guest's NextRelease when both
// consume the same RNG stream.
func TestScanGuestMatchesNextRelease(t *testing.T) {
	ts := jittered(0, 0)
	heap, err := NewGuest(0, ts, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	scan := newScanGuest(0, ts, rand.New(rand.NewSource(42)))
	for now := slot.Time(0); now < 300; now++ {
		if h, s := heap.NextRelease(), scan.nextRelease(); h != s {
			t.Fatalf("slot %d: heap NextRelease %d, scan %d", now, h, s)
		}
		heap.Release(now, func(*task.Job) {})
		scan.release(now, func(*task.Job) {})
	}
}
