package ioguard

import (
	"testing"
)

// demoWorkload is a small two-VM, two-device workload used across the
// API tests.
func demoWorkload() TaskSet {
	return TaskSet{
		{ID: 0, Name: "sensor", VM: 0, Kind: Safety, Device: "ethernet",
			Period: 64, WCET: 4, Deadline: 64, OpBytes: 128},
		{ID: 1, Name: "actuator", VM: 1, Kind: Function, Device: "flexray",
			Period: 128, WCET: 8, Deadline: 128, OpBytes: 64},
	}
}

func TestBuildTable(t *testing.T) {
	tab, placements, err := BuildTable([]Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 8 || tab.FreeCount() != 6 {
		t.Errorf("table H=%d F=%d", tab.Len(), tab.FreeCount())
	}
	if len(placements) != 1 {
		t.Errorf("placements = %d", len(placements))
	}
}

func TestAnalyzeAndSynthesize(t *testing.T) {
	tab, _, err := BuildTable([]Requirement{{ID: 0, Period: 8, WCET: 2, Deadline: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ts := TaskSet{
		{ID: 0, VM: 0, Period: 64, WCET: 4, Deadline: 64},
		{ID: 1, VM: 1, Period: 64, WCET: 4, Deadline: 64},
	}
	servers, res, err := SynthesizeServers(tab, ts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable || len(servers) != 2 {
		t.Fatalf("synthesis failed: %+v", res)
	}
	res2, err := Analyze(tab, servers, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Schedulable {
		t.Error("Analyze should confirm the synthesized servers")
	}
}

func TestNewSystemRunsToCompletion(t *testing.T) {
	col := &Collector{}
	build := func(tr Trial, c *Collector) (System, error) {
		return NewSystem(SystemConfig{VMs: tr.VMs, PreloadFrac: 0.5, Mode: DirectEDF}, tr.Tasks, c)
	}
	res, err := Run(build, Trial{VMs: 2, Tasks: demoWorkload(), Horizon: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || !res.Success() {
		t.Errorf("result = %+v", res)
	}
	_ = col
}

func TestBaselinesViaFacade(t *testing.T) {
	builders := []Builder{
		func(tr Trial, c *Collector) (System, error) { return NewLegacy(tr.VMs, tr.Tasks, c) },
		func(tr Trial, c *Collector) (System, error) { return NewRTXen(tr.VMs, tr.Tasks, c, 0) },
		func(tr Trial, c *Collector) (System, error) { return NewBlueVisor(tr.VMs, tr.Tasks, c) },
	}
	for i, b := range builders {
		res, err := Run(b, Trial{VMs: 2, Tasks: demoWorkload(), Horizon: 4096, Seed: 2})
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		if res.Completed == 0 {
			t.Errorf("builder %d completed nothing", i)
		}
	}
}

func TestSweepViaFacade(t *testing.T) {
	build := func(tr Trial, c *Collector) (System, error) {
		return NewSystem(SystemConfig{VMs: tr.VMs, Mode: DirectEDF}, tr.Tasks, c)
	}
	agg, err := Sweep(build, Trial{VMs: 2, Tasks: demoWorkload(), Horizon: 2048, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 3 || agg.SuccessRatio() != 1 {
		t.Errorf("aggregate = %+v", agg)
	}
}
