// Package analysis implements the schedulability analysis of the
// I/O-GUARD two-layer scheduler (Sec. IV of Jiang et al., DAC'21):
//
//   - the supply bound function sbf(σ,t) of the repeating Time Slot
//     Table σ* (Eq. 1 and 2),
//   - the demand bound function dbf(Γi,t) of the per-VM periodic
//     server tasks (Eq. 3) and the G-Sched test of Theorem 1 with the
//     pseudo-polynomial horizon of Theorem 2,
//   - the periodic-resource supply bound sbf(Γi,t) (Eq. 8), the
//     sporadic demand bound dbf(τk,t) (Eq. 9) and the L-Sched test of
//     Theorem 3 with the pseudo-polynomial horizon of Theorem 4,
//   - exact (hyper-period exhaustive) variants used to cross-validate
//     the theorems, and a server-synthesis helper that dimensions
//     Γi = (Πi, Θi) for a given workload.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// SupplyBound is the precomputed sbf(σ,·) of a Time Slot Table: the
// minimum number of free slots available to R-channel jobs in any
// window of a given length (Eq. 1 stores the H in-period values in a
// look-up table; Eq. 2 extends them periodically).
type SupplyBound struct {
	prefix []slot.Time // prefix[i] = free slots in σ*[0,i)
	memo   []slot.Time // memo[t] = sbf(σ,t), lazily filled; Never = unset
	h      slot.Time   // H: table length
	f      slot.Time   // F: free slots per period
}

// NewSupplyBound prepares the sbf(σ,·) look-up table for tab. The
// per-length minima (Eq. 1 enumerates a sliding window across one
// period — σ repeats σ*, so H window positions cover all cases) are
// computed lazily and memoized: each distinct in-period length costs
// O(H) once, so querying k lengths costs O(H·k) instead of the O(H²)
// full enumeration.
func NewSupplyBound(tab *slot.Table) *SupplyBound {
	h := tab.Len()
	sb := &SupplyBound{h: slot.Time(h), f: slot.Time(tab.FreeCount())}
	if h == 0 {
		return sb
	}
	// Walk the table's ownership runs instead of querying each slot:
	// within a run the prefix advances linearly (by 1 per slot when
	// free, flat when owned), so the fill costs O(H) increments but no
	// per-slot table look-ups.
	sb.prefix = make([]slot.Time, h+1)
	tab.Runs(func(r slot.Run) bool {
		step := slot.Time(0)
		if r.Owner == slot.Free {
			step = 1
		}
		for i := r.Start; i < r.Start+r.Length; i++ {
			sb.prefix[i+1] = sb.prefix[i] + step
		}
		return true
	})
	sb.memo = make([]slot.Time, h)
	for i := range sb.memo {
		sb.memo[i] = slot.Never
	}
	sb.memo[0] = 0
	return sb
}

// enumAt returns sbf(σ,t) for 0 ≤ t < H, computing and memoizing the
// sliding-window minimum on first use.
func (s *SupplyBound) enumAt(t slot.Time) slot.Time {
	if s.memo[t] != slot.Never {
		return s.memo[t]
	}
	h := int(s.h)
	l := int(t)
	min := slot.Never
	for start := 0; start < h; start++ {
		var v slot.Time
		if start+l <= h {
			v = s.prefix[start+l] - s.prefix[start]
		} else {
			v = (s.prefix[h] - s.prefix[start]) + s.prefix[start+l-h]
		}
		if v < min {
			min = v
		}
	}
	s.memo[t] = min
	return min
}

// H returns the table length (slots per period).
func (s *SupplyBound) H() slot.Time { return s.h }

// F returns the free slots per period.
func (s *SupplyBound) F() slot.Time { return s.f }

// At evaluates sbf(σ,t) for any t ≥ 0 using Eq. 1 for t < H and the
// periodic extension of Eq. 2 for t ≥ H. Negative t yields 0.
func (s *SupplyBound) At(t slot.Time) slot.Time {
	if t <= 0 || s.h == 0 {
		return 0
	}
	if t < s.h {
		return s.enumAt(t)
	}
	return s.enumAt(t%s.h) + (t/s.h)*s.f
}

// ServerDBF is dbf(Γi,t) of Eq. 3: the maximum demand a periodic
// implicit-deadline server task can place in any window of length t.
func ServerDBF(g task.Server, t slot.Time) slot.Time {
	if t < 0 || g.Period <= 0 {
		return 0
	}
	return (t / g.Period) * g.Budget
}

// ServerSBF is sbf(Γi,t) of Eq. 8: the minimum supply VM i receives
// from its periodic server in any window of length t (periodic
// resource model).
func ServerSBF(g task.Server, t slot.Time) slot.Time {
	tp := t - (g.Period - g.Budget)
	if tp < 0 {
		return 0
	}
	k := tp / g.Period
	theta := tp - g.Period*k - (g.Period - g.Budget)
	if theta < 0 {
		theta = 0
	}
	return k*g.Budget + theta
}

// TaskDBF is dbf(τk,t) of Eq. 9: the maximum demand a sporadic task
// with constrained deadline can place in any window of length t.
func TaskDBF(tk task.Sporadic, t slot.Time) slot.Time {
	if t < tk.Deadline || tk.Period <= 0 {
		return 0
	}
	return ((t-tk.Deadline)/tk.Period + 1) * tk.WCET
}

// SetDBF sums Eq. 9 over a task set.
func SetDBF(ts task.Set, t slot.Time) slot.Time {
	var d slot.Time
	for _, tk := range ts {
		d += TaskDBF(tk, t)
	}
	return d
}

// Result reports the outcome of one schedulability test.
type Result struct {
	Schedulable bool
	// FailsAt is the first window length at which demand exceeded
	// supply; it is meaningful only when Schedulable is false.
	FailsAt slot.Time
	// Horizon is the largest window length the test had to examine
	// (the pseudo-polynomial bound of Theorem 2 or 4, or the exact
	// hyper-period for the exact variants).
	Horizon slot.Time
	// Slack is the bandwidth margin used as the constant c (Theorem 2)
	// or c′ (Theorem 4).
	Slack float64
	// Checked is the number of window lengths actually evaluated.
	Checked int
}

// ErrOverUtilized is returned when the requested bandwidth exceeds
// the available bandwidth, making the system trivially unschedulable.
var ErrOverUtilized = errors.New("analysis: over-utilized")

// maxHorizon caps test horizons to keep degenerate parameter choices
// from looping practically forever.
const maxHorizon = slot.Time(1) << 32

// minSlack is the smallest bandwidth margin the pseudo-polynomial
// tests accept as their constant c (Theorem 2) or c′ (Theorem 4).
// Below it the system is in the ε-slack corner the theorems exclude
// (and floating-point rounding cannot distinguish from zero), so the
// tests report over-utilization instead.
const minSlack = 1e-9

// TestGSched applies Theorem 1 with the horizon of Theorem 2: every
// VM i receives at least Θi free slots in every Πi slots iff
// Σ dbf(Γi,t) ≤ sbf(σ,t) for all t up to F·(H-1)/H / c, where
// c = F/H − ΣΘi/Πi > 0.
//
// Demand only changes at multiples of the server periods, and supply
// is non-decreasing, so only those step points need checking.
func TestGSched(sb *SupplyBound, servers []task.Server) (Result, error) {
	for _, g := range servers {
		if err := g.Validate(); err != nil {
			return Result{}, err
		}
	}
	if sb.H() == 0 {
		if len(servers) == 0 {
			return Result{Schedulable: true}, nil
		}
		return Result{}, errors.New("analysis: empty table with non-empty servers")
	}
	var usum float64
	for _, g := range servers {
		usum += g.Utilization()
	}
	bw := float64(sb.F()) / float64(sb.H())
	slack := bw - usum
	if slack < minSlack {
		// Theorem 2's premise needs strictly positive slack; with
		// zero or negative slack the system is (at best) borderline,
		// which Sec. IV calls over-utilized in practice.
		return Result{Slack: slack}, fmt.Errorf("%w: servers need %.4f of bandwidth %.4f", ErrOverUtilized, usum, bw)
	}
	horizon := slot.Time(math.Ceil(float64(sb.F()) * float64(sb.H()-1) / float64(sb.H()) / slack))
	if horizon > maxHorizon {
		horizon = maxHorizon
	}
	res := Result{Schedulable: true, Horizon: horizon, Slack: slack}
	periods := make([]slot.Time, len(servers))
	for i, g := range servers {
		periods[i] = g.Period
	}
	stepPoints(periods, periods, horizon, func(t slot.Time) bool {
		res.Checked++
		var demand slot.Time
		for _, g := range servers {
			demand += ServerDBF(g, t)
		}
		if demand > sb.At(t) {
			res.Schedulable = false
			res.FailsAt = t
			return false
		}
		return true
	})
	return res, nil
}

// stepPoints lazily visits, in increasing order and without
// duplicates, the points offsets[i] + m·periods[i] (m ≥ 0) that are
// < horizon, calling visit on each until it returns false. Memory is
// O(len(periods)) regardless of the horizon.
func stepPoints(offsets, periods []slot.Time, horizon slot.Time, visit func(slot.Time) bool) {
	next := make([]slot.Time, len(offsets))
	copy(next, offsets)
	for {
		min := slot.Never
		for _, t := range next {
			if t < min {
				min = t
			}
		}
		if min >= horizon || min == slot.Never {
			return
		}
		for i, t := range next {
			if t == min {
				next[i] = t + periods[i]
			}
		}
		if !visit(min) {
			return
		}
	}
}

// TestGSchedExact checks Theorem 1's condition for every window
// length up to lcm(H, Π1..Πn) (plus one period for safety). It is
// exponential in the worst case and exists to cross-validate
// TestGSched in tests and small configurations.
func TestGSchedExact(sb *SupplyBound, servers []task.Server) (Result, error) {
	for _, g := range servers {
		if err := g.Validate(); err != nil {
			return Result{}, err
		}
	}
	if sb.H() == 0 {
		if len(servers) == 0 {
			return Result{Schedulable: true}, nil
		}
		return Result{}, errors.New("analysis: empty table with non-empty servers")
	}
	ps := []slot.Time{sb.H()}
	for _, g := range servers {
		ps = append(ps, g.Period)
	}
	horizon := slot.LCMAll(ps...) + sb.H()
	if horizon > maxHorizon {
		return Result{}, fmt.Errorf("analysis: exact horizon %d too large", horizon)
	}
	res := Result{Schedulable: true, Horizon: horizon}
	for t := slot.Time(1); t <= horizon; t++ {
		res.Checked++
		var demand slot.Time
		for _, g := range servers {
			demand += ServerDBF(g, t)
		}
		if demand > sb.At(t) {
			res.Schedulable = false
			res.FailsAt = t
			return res, nil
		}
	}
	return res, nil
}

// TestLSched applies Theorem 3 with the horizon of Theorem 4: all
// I/O jobs of VM i meet their deadlines under EDF on the supply of
// Γi iff Σ dbf(τk,t) ≤ sbf(Γi,t) for all t up to
// (max(Tk−Dk) + 2Πi − Θi − 1) / c′, where c′ = Θi/Πi − ΣCk/Tk > 0.
//
// Demand changes only at the deadlines t = Dk + m·Tk, so only those
// points are checked.
func TestLSched(g task.Server, ts task.Set, vm int) (Result, error) {
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	if err := ts.Validate(); err != nil {
		return Result{}, err
	}
	if len(ts) == 0 {
		return Result{Schedulable: true, Slack: g.Utilization()}, nil
	}
	slack := g.Utilization() - ts.Utilization()
	if slack < minSlack {
		return Result{Slack: slack}, fmt.Errorf("%w: vm %d tasks need %.4f of server bandwidth %.4f",
			ErrOverUtilized, vm, ts.Utilization(), g.Utilization())
	}
	num := float64(ts.MaxLaxity() + 2*g.Period - g.Budget - 1)
	horizon := slot.Time(math.Ceil(num / slack))
	if horizon > maxHorizon {
		horizon = maxHorizon
	}
	res := Result{Schedulable: true, Horizon: horizon, Slack: slack}
	offsets := make([]slot.Time, len(ts))
	periods := make([]slot.Time, len(ts))
	for i, tk := range ts {
		offsets[i] = tk.Deadline
		periods[i] = tk.Period
	}
	stepPoints(offsets, periods, horizon+1, func(t slot.Time) bool {
		res.Checked++
		if SetDBF(ts, t) > ServerSBF(g, t) {
			res.Schedulable = false
			res.FailsAt = t
			return false
		}
		return true
	})
	return res, nil
}

// TestLSchedExact checks Theorem 3's condition for every window
// length up to lcm(Πi, T1..Tk) plus the largest deadline. Exponential
// in the worst case; used for cross-validation.
func TestLSchedExact(g task.Server, ts task.Set, vm int) (Result, error) {
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	if err := ts.Validate(); err != nil {
		return Result{}, err
	}
	if len(ts) == 0 {
		return Result{Schedulable: true}, nil
	}
	ps := []slot.Time{g.Period}
	var maxD slot.Time
	for _, tk := range ts {
		ps = append(ps, tk.Period)
		if tk.Deadline > maxD {
			maxD = tk.Deadline
		}
	}
	horizon := slot.LCMAll(ps...) + maxD + g.Period
	if horizon > maxHorizon {
		return Result{}, fmt.Errorf("analysis: exact horizon %d too large", horizon)
	}
	res := Result{Schedulable: true, Horizon: horizon}
	for t := slot.Time(1); t <= horizon; t++ {
		res.Checked++
		if SetDBF(ts, t) > ServerSBF(g, t) {
			res.Schedulable = false
			res.FailsAt = t
			return res, nil
		}
	}
	return res, nil
}

// SystemResult is the outcome of the full two-layer test.
type SystemResult struct {
	Schedulable bool
	Global      Result
	PerVM       map[int]Result
}

// TestSystem runs the complete two-layer analysis: Theorem 1/2 for
// the global allocation of free slots to the servers, then Theorem
// 3/4 per VM for the sporadic tasks on each server's supply. Servers
// without tasks and tasks whose VM has no server are both rejected.
func TestSystem(tab *slot.Table, servers []task.Server, ts task.Set) (SystemResult, error) {
	if err := ts.Validate(); err != nil {
		return SystemResult{}, err
	}
	byVM := ts.ByVM()
	serverOf := make(map[int]task.Server, len(servers))
	for _, g := range servers {
		if _, dup := serverOf[g.VM]; dup {
			return SystemResult{}, fmt.Errorf("analysis: duplicate server for vm %d", g.VM)
		}
		serverOf[g.VM] = g
	}
	for vm := range byVM {
		if _, ok := serverOf[vm]; !ok {
			return SystemResult{}, fmt.Errorf("analysis: vm %d has tasks but no server", vm)
		}
	}
	sb := NewSupplyBound(tab)
	global, err := TestGSched(sb, servers)
	if err != nil {
		return SystemResult{Global: global}, err
	}
	out := SystemResult{Schedulable: global.Schedulable, Global: global, PerVM: map[int]Result{}}
	for vm, g := range serverOf {
		local, err := TestLSched(g, byVM[vm], vm)
		if err != nil {
			return out, err
		}
		out.PerVM[vm] = local
		if !local.Schedulable {
			out.Schedulable = false
		}
	}
	return out, nil
}

// SynthesizeServer returns the smallest budget Θ ∈ [1, Π] such that
// the VM's task set passes the L-Sched test on Γ=(Π,Θ), using binary
// search over the budget (ServerSBF is monotone in Θ). It fails when
// even Θ=Π is insufficient.
func SynthesizeServer(vm int, pi slot.Time, ts task.Set) (task.Server, error) {
	if pi <= 0 {
		return task.Server{}, fmt.Errorf("analysis: non-positive server period %d", pi)
	}
	if len(ts) == 0 {
		return task.Server{VM: vm, Period: pi, Budget: 1}, nil
	}
	ok := func(theta slot.Time) bool {
		r, err := TestLSched(task.Server{VM: vm, Period: pi, Budget: theta}, ts, vm)
		return err == nil && r.Schedulable
	}
	if !ok(pi) {
		return task.Server{}, fmt.Errorf("analysis: vm %d tasks unschedulable even with full budget Π=%d", vm, pi)
	}
	lo, hi := slot.Time(1), pi // invariant: ok(hi)
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return task.Server{VM: vm, Period: pi, Budget: hi}, nil
}

// SynthesizeServers dimensions one server per VM present in ts, all
// with the same period pi, and verifies the global test against tab.
// It returns the servers sorted by VM index.
func SynthesizeServers(tab *slot.Table, ts task.Set, pi slot.Time) ([]task.Server, SystemResult, error) {
	byVM := ts.ByVM()
	vms := ts.VMs()
	servers := make([]task.Server, 0, len(vms))
	for _, vm := range vms {
		g, err := SynthesizeServer(vm, pi, byVM[vm])
		if err != nil {
			return nil, SystemResult{}, err
		}
		servers = append(servers, g)
	}
	res, err := TestSystem(tab, servers, ts)
	return servers, res, err
}
