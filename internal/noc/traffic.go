// Synthetic traffic generation for NoC characterization: the standard
// patterns used to stress interconnects (uniform random, hotspot,
// transpose), driven by a deterministic source. Used by the NoC
// benchmarks and available to experiments that need background
// on-chip load.
package noc

import (
	"fmt"
	"math/rand"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

// Pattern selects the destination distribution of generated traffic.
type Pattern uint8

// Traffic patterns.
const (
	// Uniform sends each packet to a uniformly random other tile.
	Uniform Pattern = iota
	// Hotspot sends all packets to one tile (the classic worst case
	// for FIFO arbitration — every flow converges).
	Hotspot
	// Transpose sends from (x,y) to (y,x), a permutation pattern with
	// long disjoint paths.
	Transpose
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case Transpose:
		return "transpose"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// Traffic injects synthetic packets into a mesh. It implements
// sim.Stepper.
type Traffic struct {
	mesh    *Mesh
	pattern Pattern
	rate    float64 // injection probability per node per slot
	payload int
	hotspot packet.NodeID
	rng     *rand.Rand
	nextSeq uint32
}

// NewTraffic builds a generator. rate is the per-node injection
// probability per slot (0 < rate ≤ 1); payload is the packet payload
// size in bytes.
func NewTraffic(m *Mesh, pattern Pattern, rate float64, payload int, rng *rand.Rand) (*Traffic, error) {
	if m == nil || rng == nil {
		return nil, fmt.Errorf("noc: traffic needs a mesh and a random source")
	}
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("noc: injection rate %v outside (0,1]", rate)
	}
	if payload < 0 {
		return nil, fmt.Errorf("noc: negative payload")
	}
	cfg := m.Config()
	return &Traffic{
		mesh:    m,
		pattern: pattern,
		rate:    rate,
		payload: payload,
		hotspot: m.NodeAt(Coord{X: cfg.Width / 2, Y: cfg.Height / 2}),
		rng:     rng,
	}, nil
}

// SetHotspot overrides the hotspot destination tile.
func (t *Traffic) SetHotspot(id packet.NodeID) { t.hotspot = id }

// destFor returns the destination for a packet from src.
func (t *Traffic) destFor(src packet.NodeID) packet.NodeID {
	cfg := t.mesh.Config()
	n := cfg.Width * cfg.Height
	switch t.pattern {
	case Hotspot:
		return t.hotspot
	case Transpose:
		c := t.mesh.CoordOf(src)
		// Transpose needs a square mesh; clamp into range otherwise.
		d := Coord{X: c.Y % cfg.Width, Y: c.X % cfg.Height}
		return t.mesh.NodeAt(d)
	default:
		for {
			d := packet.NodeID(t.rng.Intn(n))
			if d != src {
				return d
			}
		}
	}
}

// Step injects this slot's packets.
func (t *Traffic) Step(now slot.Time) {
	cfg := t.mesh.Config()
	n := cfg.Width * cfg.Height
	for src := 0; src < n; src++ {
		if t.rng.Float64() >= t.rate {
			continue
		}
		s := packet.NodeID(src)
		d := t.destFor(s)
		if s == d {
			continue
		}
		p := packet.New(packet.Header{
			Src: s, Dst: d, Kind: packet.Request, Op: packet.Write,
			Seq: t.nextSeq, Deadline: now + 100000,
		}, make([]byte, t.payload))
		t.nextSeq++
		t.mesh.Inject(now, p)
	}
}
