package packet

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ioguard/internal/slot"
)

func sample() *Packet {
	return New(Header{
		Src: 3, Dst: 17, VM: 2, Kind: Request, Op: Write,
		Task: 9, Seq: 1234, Deadline: 5000,
	}, []byte("hello io"))
}

func TestKindOpStrings(t *testing.T) {
	if Request.String() != "request" || Response.String() != "response" || Control.String() != "control" {
		t.Error("kind names wrong")
	}
	if Read.String() != "read" || Write.String() != "write" || Config.String() != "config" {
		t.Error("op names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") || !strings.Contains(Op(99).String(), "99") {
		t.Error("unknown values should show numerically")
	}
}

func TestNewSetsLen(t *testing.T) {
	p := sample()
	if int(p.Len) != len(p.Payload) {
		t.Errorf("Len = %d, payload = %d", p.Len, len(p.Payload))
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	p := sample()
	p.Kind = 0
	if p.Validate() == nil {
		t.Error("invalid kind accepted")
	}
	p = sample()
	p.Op = 77
	if p.Validate() == nil {
		t.Error("invalid op accepted")
	}
	p = sample()
	p.Len = 3
	if p.Validate() == nil {
		t.Error("len mismatch accepted")
	}
	p = sample()
	p.Deadline = -1
	if p.Validate() == nil {
		t.Error("negative deadline accepted")
	}
}

func TestSizeFlits(t *testing.T) {
	p := sample() // 24 header + 8 payload = 32 bytes
	if p.Size() != 32 {
		t.Errorf("Size = %d, want 32", p.Size())
	}
	if got := p.Flits(4); got != 8 {
		t.Errorf("Flits(4) = %d, want 8", got)
	}
	if got := p.Flits(16); got != 2 {
		t.Errorf("Flits(16) = %d, want 2", got)
	}
	if got := p.Flits(0); got != 8 {
		t.Errorf("Flits(0) should default to 4-byte flits: %d", got)
	}
	empty := New(Header{Kind: Request, Op: Read}, nil)
	if empty.Flits(1024) != 1 {
		t.Error("Flits must be at least 1")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sample()
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != p.Header {
		t.Errorf("header mismatch: %+v vs %+v", got.Header, p.Header)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestEncodeInvalid(t *testing.T) {
	p := sample()
	p.Kind = 0
	if _, err := p.Encode(); err == nil {
		t.Error("encoding invalid packet should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("short buffer accepted")
	}
	p := sample()
	buf, _ := p.Encode()
	if _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
	buf[5] = 0 // invalid kind
	if _, err := Decode(buf); err == nil {
		t.Error("invalid kind in wire data accepted")
	}
}

func TestResponseTo(t *testing.T) {
	req := sample()
	resp := ResponseTo(req, []byte{1, 2, 3})
	if resp.Src != req.Dst || resp.Dst != req.Src {
		t.Error("response should swap src/dst")
	}
	if resp.Kind != Response || resp.VM != req.VM || resp.Task != req.Task || resp.Seq != req.Seq {
		t.Error("response metadata wrong")
	}
	if resp.Len != 3 {
		t.Errorf("response Len = %d", resp.Len)
	}
	if resp.Deadline != req.Deadline {
		t.Error("response must carry the job deadline")
	}
}

func TestString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "request") || !strings.Contains(s, "3→17") {
		t.Errorf("String() = %q", s)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst uint16, vm uint8, task uint16, seq uint32, deadline uint32, payload []byte) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		p := New(Header{
			Src: NodeID(src), Dst: NodeID(dst), VM: vm,
			Kind: Request, Op: Read, Task: task, Seq: seq,
			Deadline: slot.Time(deadline),
		}, payload)
		buf, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Header == p.Header && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
