// Package benchsuite defines the simulation benchmark bodies shared
// by the `go test -bench` wrappers at the repository root and by
// cmd/ioguard-bench, which runs them standalone and emits a JSON
// trajectory (BENCH_sim.json). Keeping the bodies here guarantees the
// two entry points measure exactly the same work.
//
// The dense/fastforward pairs exist to quantify the engine's
// idle-slot fast-forward (sim.Quiescer): both variants execute the
// identical simulation — the equivalence tests enforce bit-identical
// results — so their ratio is pure scheduling-loop speedup. The
// RunSkewed trio adds a /globalmin variant (single-clock fast-forward
// with the per-device decoupling disabled) so the decoupling's own
// contribution on one-busy-device workloads is measured separately.
package benchsuite

import (
	"fmt"
	"runtime"
	"testing"

	"ioguard/internal/core"
	"ioguard/internal/experiments"
	"ioguard/internal/hypervisor"
	"ioguard/internal/queue"
	"ioguard/internal/sim"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
	"ioguard/internal/workload"
)

// Spec is one benchmark: a name (sub-benchmark path), the number of
// simulated slots one iteration advances (0 when slots/sec is not
// meaningful, e.g. queue micro-benchmarks), and the body.
type Spec struct {
	Name       string
	SlotsPerOp int64
	Bench      func(b *testing.B)
}

// engineIdleSlots is the horizon of the EngineIdle benchmark: a mostly
// idle engine with one quiescent component and an event every
// engineIdleEvery slots.
const (
	engineIdleSlots = 1_000_000
	engineIdleEvery = 10_000
)

// idleStepper is never busy; it counts executed slots and skipped
// spans so the benchmark can assert full coverage of the horizon.
type idleStepper struct {
	stepped int64
	skipped slot.Time
}

func (s *idleStepper) Step(slot.Time)               { s.stepped++ }
func (s *idleStepper) NextWork(slot.Time) slot.Time { return slot.Never }
func (s *idleStepper) SkipTo(from, to slot.Time)    { s.skipped += to - from }

func engineIdle(b *testing.B, dense bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New(1)
		st := &idleStepper{}
		e.Register(st)
		fired := 0
		for at := slot.Time(0); at < engineIdleSlots; at += engineIdleEvery {
			e.At(at, func(slot.Time) { fired++ })
		}
		if dense {
			e.RunDense(engineIdleSlots)
		} else {
			e.Run(engineIdleSlots)
		}
		if fired != engineIdleSlots/engineIdleEvery {
			b.Fatalf("fired %d events, want %d", fired, engineIdleSlots/engineIdleEvery)
		}
		if st.stepped+int64(st.skipped) != engineIdleSlots {
			b.Fatalf("stepped %d + skipped %d ≠ horizon %d", st.stepped, st.skipped, engineIdleSlots)
		}
	}
}

// engineEventSlots is the horizon of the EngineEvents benchmark: a
// self-rescheduling event chain exercises the event heap every slot.
const engineEventSlots = 100_000

func engineEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New(1)
		var fired int64
		var chain func(now slot.Time)
		chain = func(now slot.Time) {
			fired++
			if now+1 < engineEventSlots {
				e.After(1, chain)
			}
		}
		e.At(0, chain)
		e.Run(engineEventSlots)
		if fired != engineEventSlots {
			b.Fatalf("fired %d events, want %d", fired, engineEventSlots)
		}
	}
}

// sparseStretch derives the idle-heavy cell: the case-study workload's
// base per-device utilization (0.40) divided by 8 gives 0.05 per
// device — a ≤30% total-utilization cell across both devices.
const (
	sparseStretch      slot.Time = 8
	sparseHyperperiods slot.Time = 2
)

// sparseWorkload builds the stretched task set and its trial horizon.
func sparseWorkload() (t system.Trial, err error) {
	ts, err := workload.Generate(workload.Config{VMs: 8, TargetUtil: 0.4, Seed: 1})
	if err != nil {
		return system.Trial{}, err
	}
	ts, err = workload.Stretch(ts, sparseStretch)
	if err != nil {
		return system.Trial{}, err
	}
	return system.Trial{
		VMs:     8,
		Tasks:   ts,
		Horizon: ts.Hyperperiod() * sparseHyperperiods,
		Seed:    1,
	}, nil
}

// sparseSlotsPerOp reports the RunSparse horizon for slots/sec
// derivation.
func sparseSlotsPerOp() int64 {
	tr, err := sparseWorkload()
	if err != nil {
		return 0
	}
	return int64(tr.Horizon)
}

func runSparse(b *testing.B, dense bool) {
	tr, err := sparseWorkload()
	if err != nil {
		b.Fatal(err)
	}
	tr.Dense = dense
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return core.New(core.Config{
			VMs:         tr.VMs,
			PreloadFrac: 0.7,
			Mode:        hypervisor.DirectEDF,
		}, tr.Tasks, col)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := system.Run(build, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("trial completed no jobs")
		}
	}
}

// skewedHyperperiods sizes the RunSkewed horizon.
const skewedHyperperiods slot.Time = 2

// skewedWorkload builds the one-busy-device skew cell: bursty
// telemetry keeps four devices almost idle while a diagnostic flood
// drives the CAN controller to 60% utilization. Under a single global
// clock the busy device pins the whole system to dense stepping; the
// per-device clocks let the idle devices keep fast-forwarding.
func skewedWorkload() (system.Trial, error) {
	ts, err := workload.GenerateTelemetry(workload.TelemetryConfig{
		VMs: 4, HotDevice: "can", HotUtil: 0.6, Seed: 1,
	})
	if err != nil {
		return system.Trial{}, err
	}
	return system.Trial{
		VMs:     4,
		Tasks:   ts,
		Horizon: ts.Hyperperiod() * skewedHyperperiods,
		Seed:    1,
	}, nil
}

// skewedSlotsPerOp reports the RunSkewed horizon for slots/sec
// derivation.
func skewedSlotsPerOp() int64 {
	tr, err := skewedWorkload()
	if err != nil {
		return 0
	}
	return int64(tr.Horizon)
}

// globalMinSystem hides the ShardedSystem protocol of the wrapped
// system, forcing system.Run onto the legacy single-clock fast-forward
// (one global min over NextWork). The RunSkewed/globalmin variant uses
// it to isolate what the per-device clocks buy beyond that.
type globalMinSystem struct {
	system.System
	q  sim.Quiescer
	sk sim.Skipper
}

func (g *globalMinSystem) NextWork(now slot.Time) slot.Time { return g.q.NextWork(now) }

func (g *globalMinSystem) SkipTo(from, to slot.Time) {
	if g.sk != nil {
		g.sk.SkipTo(from, to)
	}
}

// parShardWorkers sizes the intra-trial shard fan-out for the
// /parshard variants: every core the host offers, floored at 2 so the
// epoch-barrier executor (rather than the sequential fallback) is
// exercised even on single-core runners.
func parShardWorkers() int {
	if p := runtime.GOMAXPROCS(0); p > 2 {
		return p
	}
	return 2
}

func runSkewed(b *testing.B, variant string) {
	tr, err := skewedWorkload()
	if err != nil {
		b.Fatal(err)
	}
	tr.Dense = variant == "dense"
	if variant == "parshard" {
		tr.ShardWorkers = parShardWorkers()
	}
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		sys, err := core.New(core.Config{
			VMs:  tr.VMs,
			Mode: hypervisor.DirectEDF,
		}, tr.Tasks, col)
		if err != nil || variant != "globalmin" {
			return sys, err
		}
		return &globalMinSystem{System: sys, q: sys, sk: sys}, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := system.Run(build, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("trial completed no jobs")
		}
	}
}

// runSkewedBaseline drives the skewed cell on a mesh-coupled baseline
// (legacy | rtxen). The fastforward variant hides the region shards
// behind globalMinSystem — the pre-split single-clock fast-forward,
// where the busy CAN station pins all 25 routers to dense stepping.
// parshard engages the region shards across parShardWorkers() threads,
// so the pairing's ratio is the region split's win: only the device
// row (5 routers plus stations) steps densely while the processor band
// fast-forwards between its own injections.
func runSkewedBaseline(b *testing.B, sysName, variant string) {
	tr, err := skewedWorkload()
	if err != nil {
		b.Fatal(err)
	}
	if variant == "parshard" {
		tr.ShardWorkers = parShardWorkers()
	}
	inner, err := experiments.BuilderFor(sysName)
	if err != nil {
		b.Fatal(err)
	}
	build := inner
	if variant == "fastforward" {
		build = func(tr system.Trial, col *system.Collector) (system.System, error) {
			sys, err := inner(tr, col)
			if err != nil {
				return nil, err
			}
			q, ok := sys.(sim.Quiescer)
			if !ok {
				return nil, fmt.Errorf("benchsuite: %s lacks the global fast-forward", sysName)
			}
			sk, _ := sys.(sim.Skipper)
			return &globalMinSystem{System: sys, q: q, sk: sk}, nil
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := system.Run(build, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("trial completed no jobs")
		}
	}
}

// caseStudyShardPar runs a trimmed Fig. 7 sweep with each trial's
// device shards fanned across OS threads (and the trial-level pool
// pinned to one worker, so intra-trial parallelism is the only
// concurrency being measured). It sizes the end-to-end win of the
// epoch-barrier executor on the realistic multi-device workload, next
// to RunSkewed/parshard's single-cell measurement.
func caseStudyShardPar(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.CaseStudy(experiments.CaseStudyConfig{
			VMs:          4,
			Utils:        []float64{0.70},
			Trials:       2,
			HyperPeriods: 2,
			Seed:         1,
			Workers:      1,
			ShardWorkers: parShardWorkers(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("case study produced no points")
		}
	}
}

// collectorComplete measures the collector's per-completion hot path
// at steady state: one warmed job folded in repeatedly, mirroring how
// every system's response path drives Complete each slot. The stream
// variant must run allocation-free (bounded recorders, no completion
// log — the same guarantee the PQ-freelist and FIFO benchmarks pin
// for their hot paths); exact mode amortizes its log's append.
func collectorComplete(b *testing.B, mode system.MetricsMode) {
	col := system.NewCollectorFor(mode, 1<<16)
	tk := &task.Sporadic{ID: 0, Kind: task.Safety, Period: 10, WCET: 1, Deadline: 10, OpBytes: 64}
	j := task.NewJob(tk, 0, 0)
	var x uint64 = 7
	warm := 100_000
	if mode == system.MetricsExact {
		// Exact mode buffers every completion; warming 100k iterations
		// would just grow the log. Warm enough to settle the recorders.
		warm = 1 << 10
	}
	for i := 0; i < warm; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		j.Release = slot.Time(x % 1024)
		j.Deadline = j.Release + 10
		col.Complete(j, j.Release+slot.Time(x%32))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		j.Release = slot.Time(x % 1024)
		j.Deadline = j.Release + 10
		col.Complete(j, j.Release+slot.Time(x%32))
	}
}

// pqChurn measures the steady-state cost of the R-channel pool's
// priority queue: push/pop cycles at a fixed resident depth. With the
// node freelist this must run allocation-free.
func pqChurn(b *testing.B) {
	const depth = 64
	q := queue.NewPQ[int](0)
	for i := 0; i < depth; i++ {
		if _, err := q.Push(slot.Time(i), i); err != nil {
			b.Fatal(err)
		}
	}
	key := slot.Time(depth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Push(key, i); err != nil {
			b.Fatal(err)
		}
		key++
		q.PopMin()
	}
}

// Specs returns every benchmark in the suite. Names use the same
// sub-benchmark paths the `go test -bench` wrappers expose.
func Specs() []Spec {
	return []Spec{
		{Name: "EngineIdle/dense", SlotsPerOp: engineIdleSlots,
			Bench: func(b *testing.B) { engineIdle(b, true) }},
		{Name: "EngineIdle/fastforward", SlotsPerOp: engineIdleSlots,
			Bench: func(b *testing.B) { engineIdle(b, false) }},
		{Name: "EngineEvents", SlotsPerOp: engineEventSlots, Bench: engineEvents},
		{Name: "RunSparse/dense", SlotsPerOp: sparseSlotsPerOp(),
			Bench: func(b *testing.B) { runSparse(b, true) }},
		{Name: "RunSparse/fastforward", SlotsPerOp: sparseSlotsPerOp(),
			Bench: func(b *testing.B) { runSparse(b, false) }},
		{Name: "RunAvionics/dense", SlotsPerOp: avionicsSlotsPerOp(),
			Bench: func(b *testing.B) { runAvionics(b, true) }},
		{Name: "RunAvionics/fastforward", SlotsPerOp: avionicsSlotsPerOp(),
			Bench: func(b *testing.B) { runAvionics(b, false) }},
		{Name: "RunSkewed/dense", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewed(b, "dense") }},
		{Name: "RunSkewed/globalmin", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewed(b, "globalmin") }},
		{Name: "RunSkewed/fastforward", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewed(b, "fastforward") }},
		{Name: "RunSkewed/parshard", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewed(b, "parshard") }},
		{Name: "RunSkewedLegacy/fastforward", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewedBaseline(b, "legacy", "fastforward") }},
		{Name: "RunSkewedLegacy/parshard", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewedBaseline(b, "legacy", "parshard") }},
		{Name: "RunSkewedRTXen/fastforward", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewedBaseline(b, "rtxen", "fastforward") }},
		{Name: "RunSkewedRTXen/parshard", SlotsPerOp: skewedSlotsPerOp(),
			Bench: func(b *testing.B) { runSkewedBaseline(b, "rtxen", "parshard") }},
		{Name: "CaseStudyShardPar", SlotsPerOp: 0, Bench: caseStudyShardPar},
		{Name: "SlotBuild/dense", SlotsPerOp: 0,
			Bench: func(b *testing.B) { slotBuild(b, true) }},
		{Name: "SlotBuild/interval", SlotsPerOp: 0,
			Bench: func(b *testing.B) { slotBuild(b, false) }},
		{Name: "SlotNextFree/dense", SlotsPerOp: 0,
			Bench: func(b *testing.B) { slotNextFree(b, true) }},
		{Name: "SlotNextFree/interval", SlotsPerOp: 0,
			Bench: func(b *testing.B) { slotNextFree(b, false) }},
		{Name: "SlotFreeIn/dense", SlotsPerOp: 0,
			Bench: func(b *testing.B) { slotFreeIn(b, true) }},
		{Name: "SlotFreeIn/interval", SlotsPerOp: 0,
			Bench: func(b *testing.B) { slotFreeIn(b, false) }},
		{Name: "PQChurn", SlotsPerOp: 0, Bench: pqChurn},
		{Name: "CollectorComplete/exact", SlotsPerOp: 0,
			Bench: func(b *testing.B) { collectorComplete(b, system.MetricsExact) }},
		{Name: "CollectorComplete/stream", SlotsPerOp: 0,
			Bench: func(b *testing.B) { collectorComplete(b, system.MetricsStream) }},
	}
}

// ByPrefix returns the specs whose name starts with prefix + "/",
// keyed by the remainder — the shape b.Run sub-benchmarks want.
func ByPrefix(prefix string) ([]Spec, error) {
	var out []Spec
	for _, s := range Specs() {
		if len(s.Name) > len(prefix)+1 && s.Name[:len(prefix)+1] == prefix+"/" {
			s.Name = s.Name[len(prefix)+1:]
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchsuite: no specs under %q", prefix)
	}
	return out, nil
}
