// The quantile-sketch abstraction behind the streaming recorders. Two
// backends implement it:
//
//   - GKSketch — the original Greenwald–Khanna summary: tightest
//     per-stream memory, but two GK summaries cannot be folded without
//     compounding ε, so it stays a *per-trial* backend (kept for
//     back-compat behind -metrics stream-gk).
//   - KLL — the mergeable sketch (Karnin–Lang–Liberty, FOCS'16):
//     Merge combines two summaries without degrading the advertised
//     rank-error bound, which is what lets ParallelSweep fold
//     per-trial distributions into per-cell and per-sweep aggregates
//     and lets the nightly trajectory accumulate a true latency
//     distribution across runs.
//
// Every sketch is deterministic: KLL's compaction coins come from a
// per-sketch SplitMix64 stream seeded from trial identity (never the
// math/rand global), so a sweep's merged sketch is a pure function of
// (seeds, fold order) and rendered output is byte-identical for any
// worker count.
package metrics

// Sketch is an ε-approximate quantile summary: bounded memory,
// rank-error ≤ ⌈εn⌉ on every quantile query.
type Sketch interface {
	// Add absorbs one observation.
	Add(v float64)
	// N returns the number of observations absorbed.
	N() int64
	// Quantile returns a value whose rank among the observations is
	// within ⌈εn⌉ of the nearest-rank target ⌈q·n⌉ (q in [0,1]).
	// Empty sketches return 0, matching Sample's convention.
	Quantile(q float64) float64
	// Epsilon returns the advertised rank-error bound.
	Epsilon() float64
	// Tuples returns the current summary size in retained items (for
	// memory accounting in tests and benchmarks).
	Tuples() int
}

// MergeableSketch is a Sketch whose summaries fold: Merge absorbs
// another summary of the same ε without compounding the bound, so
// K-way merges of per-trial sketches still answer within ⌈εn⌉ ranks
// of the combined stream.
type MergeableSketch interface {
	Sketch
	// Merge folds other into the receiver. It fails when the sketches
	// are incompatible (different ε or backend); the receiver is
	// unchanged on error.
	Merge(other Sketch) error
}

// Compile-time conformance of the two backends.
var (
	_ Sketch          = (*GKSketch)(nil)
	_ MergeableSketch = (*KLL)(nil)
)
