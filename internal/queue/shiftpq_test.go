package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ioguard/internal/slot"
)

func TestShiftPQBasics(t *testing.T) {
	q := NewShiftPQ[string](0)
	if _, _, _, ok := q.Min(); ok {
		t.Fatal("Min on empty should report !ok")
	}
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty should report !ok")
	}
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	_, k, v, ok := q.Min()
	if !ok || k != 10 || v != "a" {
		t.Errorf("Min = %d/%q", k, v)
	}
	var order []string
	q.Each(func(_ Handle, _ slot.Time, v string) { order = append(order, v) })
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("Each order = %v (shift queue is ordered)", order)
	}
}

func TestShiftPQCapacity(t *testing.T) {
	q := NewShiftPQ[int](2)
	if q.Cap() != 2 {
		t.Errorf("Cap = %d", q.Cap())
	}
	q.Push(1, 1)
	q.Push(2, 2)
	if !q.Full() {
		t.Error("should be full")
	}
	if _, err := q.Push(3, 3); err == nil {
		t.Error("push past capacity accepted")
	}
}

func TestShiftPQTieBreakFIFO(t *testing.T) {
	q := NewShiftPQ[string](0)
	q.Push(5, "first")
	q.Push(5, "second")
	_, v, _ := q.PopMin()
	if v != "first" {
		t.Errorf("tie broken to %q", v)
	}
}

func TestShiftPQRandomAccess(t *testing.T) {
	q := NewShiftPQ[string](0)
	h1, _ := q.Push(10, "a")
	h2, _ := q.Push(20, "b")
	if v, ok := q.Get(h1); !ok || v != "a" {
		t.Error("Get failed")
	}
	if k, ok := q.Key(h2); !ok || k != 20 {
		t.Error("Key failed")
	}
	if !q.Update(h2, "B") {
		t.Error("Update failed")
	}
	if !q.Reprioritize(h2, 1) {
		t.Error("Reprioritize failed")
	}
	_, k, v, _ := q.Min()
	if k != 1 || v != "B" {
		t.Errorf("head = %d/%q after reprioritize", k, v)
	}
	if v, ok := q.Remove(h1); !ok || v != "a" {
		t.Error("Remove failed")
	}
	if _, ok := q.Get(h1); ok {
		t.Error("stale handle resolvable")
	}
	if q.Update(99, "x") || q.Reprioritize(99, 0) {
		t.Error("unknown handle accepted")
	}
	if _, ok := q.Remove(99); ok {
		t.Error("Remove of unknown handle accepted")
	}
	if _, ok := q.Key(99); ok {
		t.Error("Key of unknown handle accepted")
	}
}

// TestShiftPQEquivalence drives the heap PQ and the shift-register PQ
// with identical operation streams and demands identical observable
// behaviour — the hardware structure is a drop-in replacement.
func TestShiftPQEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		heap := NewPQ[int](8)
		shift := NewShiftPQ[int](8)
		var hH, hS []Handle // parallel handle lists
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1:
				key := slot.Time(rng.Intn(50))
				a, errA := heap.Push(key, op)
				b, errB := shift.Push(key, op)
				if (errA == nil) != (errB == nil) {
					return false
				}
				if errA == nil {
					hH = append(hH, a)
					hS = append(hS, b)
				}
			case 2:
				ka, va, oka := heap.PopMin()
				kb, vb, okb := shift.PopMin()
				if oka != okb || ka != kb || va != vb {
					return false
				}
			case 3:
				if len(hH) > 0 {
					i := rng.Intn(len(hH))
					key := slot.Time(rng.Intn(50))
					ra := heap.Reprioritize(hH[i], key)
					rb := shift.Reprioritize(hS[i], key)
					if ra != rb {
						return false
					}
				}
			case 4:
				if len(hH) > 0 {
					i := rng.Intn(len(hH))
					va, oka := heap.Remove(hH[i])
					vb, okb := shift.Remove(hS[i])
					if oka != okb || va != vb {
						return false
					}
					hH = append(hH[:i], hH[i+1:]...)
					hS = append(hS[:i], hS[i+1:]...)
				}
			}
			if heap.Len() != shift.Len() {
				return false
			}
			ha, ka, va, oka := heap.Min()
			_, kb, vb, okb := shift.Min()
			_ = ha
			if oka != okb || (oka && (ka != kb || va != vb)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShiftPQPushPop(b *testing.B) {
	q := NewShiftPQ[int](0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(slot.Time(rng.Intn(1000)), i)
		if q.Len() > 64 {
			q.PopMin()
		}
	}
}
