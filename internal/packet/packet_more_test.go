package packet

import (
	"testing"

	"ioguard/internal/slot"
)

// TestLenFieldBoundary documents the 64 KB payload ceiling of the
// 16-bit length field: oversized payloads are rejected by Validate
// (the Len field wraps and no longer matches), never silently
// truncated on the wire.
func TestLenFieldBoundary(t *testing.T) {
	max := New(Header{Kind: Request, Op: Write}, make([]byte, 65535))
	if err := max.Validate(); err != nil {
		t.Errorf("65535-byte payload should be valid: %v", err)
	}
	over := New(Header{Kind: Request, Op: Write}, make([]byte, 65536))
	if err := over.Validate(); err == nil {
		t.Error("payload beyond the Len field accepted")
	}
}

func TestHeaderFieldBoundaries(t *testing.T) {
	p := New(Header{
		Src: 65535, Dst: 65535, VM: 255, Kind: Control, Op: Config,
		Task: 65535, Seq: 4294967295, Deadline: slot.Time(1) << 62,
	}, nil)
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != p.Header {
		t.Errorf("boundary header mangled:\n%+v\n%+v", got.Header, p.Header)
	}
}

func TestDecodeRejectsReservedByte(t *testing.T) {
	p := New(Header{Kind: Request, Op: Read}, nil)
	buf, _ := p.Encode()
	buf[7] = 1
	if _, err := Decode(buf); err == nil {
		t.Error("nonzero reserved byte accepted")
	}
}

func TestFlitsMatchesSizeExactly(t *testing.T) {
	for _, payload := range []int{0, 1, 4, 63, 64, 65} {
		p := New(Header{Kind: Request, Op: Write}, make([]byte, payload))
		want := (p.Size() + 3) / 4
		if got := p.Flits(4); got != want {
			t.Errorf("payload %d: flits = %d, want %d", payload, got, want)
		}
	}
}
