// Slot-table benchmarks: the σ* representation change (dense array →
// run-length intervals) measured at the ARINC-653 stress cell, where
// the hyper-period reaches 4,000,000 slots but the partitions occupy
// only ~3% of them. The dense/interval pairs share one requirement
// set, so their ratio isolates the representation:
//
//   - SlotBuild compiles the partition set into a query-ready table
//     (the EDF sweep plus the first supply query, which forces the
//     free-prefix index — dense pays O(H) for both, interval O(R)).
//   - SlotNextFree and SlotFreeIn model a mode change followed by a
//     burst of supply queries: one slot toggles (invalidating the
//     index) and then slotQueriesPerCycle queries amortize the
//     rebuild. Dense rebuilds O(H) per cycle; interval O(R).
//
// RunAvionics is the end-to-end long-hyper-period trial: the full
// avionics workload through system.Run, dense stepping vs the
// fast-forward stack riding the interval table's skip spans.
package benchsuite

import (
	"testing"

	"ioguard/internal/core"
	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// AvionicsTableRequirements compiles the stress cell's table-eligible
// partitions into per-device σ* requirement sets, using the same
// offset stagger core applies to pre-loaded tasks. Both the slot
// benchmarks and the BENCH_sim.json footprint pairings build from
// these, so the numbers describe the same tables.
func AvionicsTableRequirements() map[string][]slot.Requirement {
	byDev := map[string][]slot.Requirement{}
	for _, e := range workload.AvionicsEntries() {
		i := len(byDev[e.Device])
		byDev[e.Device] = append(byDev[e.Device], slot.Requirement{
			ID:       slot.TaskID(i),
			Period:   e.Period,
			WCET:     e.WCET,
			Deadline: e.Period,
			Offset:   (slot.Time(i) * 613) % e.Period,
		})
	}
	return byDev
}

// slotBenchDevice is the device whose table the micro-benchmarks
// build: the AFDX backbone, the stress cell's busier channel.
const slotBenchDevice = "ethernet"

func slotBenchReqs(b *testing.B) []slot.Requirement {
	reqs := AvionicsTableRequirements()[slotBenchDevice]
	if len(reqs) == 0 {
		b.Fatalf("no avionics requirements for device %q", slotBenchDevice)
	}
	return reqs
}

// queryTable is the query surface the two encodings share.
type queryTable interface {
	Len() int
	Assign(at slot.Time, id slot.TaskID) error
	Clear(at slot.Time)
	NextFree(from slot.Time) slot.Time
	FreeIn(from, length slot.Time) slot.Time
}

func slotBenchTable(b *testing.B, dense bool) queryTable {
	reqs := slotBenchReqs(b)
	if dense {
		tab, _, err := slot.BuildDense(reqs)
		if err != nil {
			b.Fatal(err)
		}
		return tab
	}
	tab, _, err := slot.Build(reqs)
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func slotBuild(b *testing.B, dense bool) {
	reqs := slotBenchReqs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var free slot.Time
		if dense {
			tab, _, err := slot.BuildDense(reqs)
			if err != nil {
				b.Fatal(err)
			}
			free = tab.NextFree(0) // force the query index the manager needs
		} else {
			tab, _, err := slot.Build(reqs)
			if err != nil {
				b.Fatal(err)
			}
			free = tab.NextFree(0)
		}
		if free == slot.Never {
			b.Fatal("stress-cell table has no free slots")
		}
	}
}

// slotQueriesPerCycle is how many supply queries follow each
// index-invalidating mutation in the query benchmarks — roughly the
// number of NextWork/SkipTo probes the manager issues per device
// between R-channel admissions.
const slotQueriesPerCycle = 64

// lcgNext advances the benchmark's deterministic position generator.
func lcgNext(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

func slotNextFree(b *testing.B, dense bool) {
	tab := slotBenchTable(b, dense)
	h := uint64(tab.Len())
	at := tab.NextFree(0)
	x := uint64(1)
	var sink slot.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A mode change touches one slot, dropping the query index…
		if err := tab.Assign(at, 9999); err != nil {
			b.Fatal(err)
		}
		tab.Clear(at)
		// …and the following query burst pays for its rebuild.
		for q := 0; q < slotQueriesPerCycle; q++ {
			x = lcgNext(x)
			sink += tab.NextFree(slot.Time(x % h))
		}
	}
	if sink == slot.Never {
		b.Fatal("unreachable sink check")
	}
}

func slotFreeIn(b *testing.B, dense bool) {
	tab := slotBenchTable(b, dense)
	h := uint64(tab.Len())
	at := tab.NextFree(0)
	x := uint64(1)
	var sink slot.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Assign(at, 9999); err != nil {
			b.Fatal(err)
		}
		tab.Clear(at)
		for q := 0; q < slotQueriesPerCycle; q++ {
			x = lcgNext(x)
			from := slot.Time(x % h)
			x = lcgNext(x)
			// Window lengths up to 2H exercise the whole-period
			// shortcut and the wrap-around tail.
			length := slot.Time(x%(2*h) + 1)
			sink += tab.FreeIn(from, length)
		}
	}
	if sink < 0 {
		b.Fatal("unreachable sink check")
	}
}

// avionicsHyperperiods sizes the RunAvionics horizon: one full
// repetition of the 4M-slot table.
const avionicsHyperperiods slot.Time = 1

// avionicsWorkload builds the stress-cell trial.
func avionicsWorkload() (system.Trial, error) {
	ts, err := workload.GenerateAvionics(workload.AvionicsConfig{VMs: 4, Seed: 1})
	if err != nil {
		return system.Trial{}, err
	}
	return system.Trial{
		VMs:     4,
		Tasks:   ts,
		Horizon: ts.Hyperperiod() * avionicsHyperperiods,
		Seed:    1,
	}, nil
}

// avionicsSlotsPerOp reports the RunAvionics horizon for slots/sec
// derivation.
func avionicsSlotsPerOp() int64 {
	tr, err := avionicsWorkload()
	if err != nil {
		return 0
	}
	return int64(tr.Horizon)
}

func runAvionics(b *testing.B, dense bool) {
	tr, err := avionicsWorkload()
	if err != nil {
		b.Fatal(err)
	}
	tr.Dense = dense
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return core.New(core.Config{
			VMs:         tr.VMs,
			PreloadFrac: 0.7,
			Mode:        hypervisor.DirectEDF,
		}, tr.Tasks, col)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := system.Run(build, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("trial completed no jobs")
		}
	}
}
