// Sharded execution: per-component virtual clocks for systems whose
// components are independent except for the shared release engine.
// Each shard (typically one device manager) advances through its own
// busy/idle regions on a sim.ShardSet, so one busy device no longer
// forces dense stepping of idle peers — the fast-forward win becomes
// per-device instead of all-or-nothing.

package system

import (
	"ioguard/internal/faults"
	"ioguard/internal/queue"
	"ioguard/internal/sim"
	"ioguard/internal/slot"
	"ioguard/internal/task"
	"ioguard/internal/vm"
)

// Shard is one independently-clocked component of a ShardedSystem. It
// satisfies sim.Clocked; implementations that keep per-slot counters
// over idle spans additionally implement sim.Skipper.
type Shard interface {
	// Devices returns the device names whose released jobs this shard
	// consumes. Every residual device must be owned by exactly one
	// shard; jobs for unowned devices fall back to System.Submit.
	Devices() []string
	// Submit delivers a job released at slot now. The runner calls it
	// with now equal to both the job's release slot and the shard's
	// local clock, immediately before Step(now) — exactly the order a
	// dense run presents submissions in.
	Submit(now slot.Time, j *task.Job)
	// Step advances the shard one slot of its local clock.
	Step(now slot.Time)
	// NextWork is the sim.Quiescer contract against the local clock.
	NextWork(now slot.Time) slot.Time
}

// ShardedSystem is a System whose components can advance on
// decoupled per-component clocks. Shards() partitions the system;
// the monolithic Step/Submit remain available for dense runs.
type ShardedSystem interface {
	System
	Shards() []Shard
}

// ParallelShard is a Shard whose completion stream can be redirected
// into a runner-owned sink. The parallel executor requires it: shards
// step concurrently, so completions must be buffered per shard (the
// sink is only ever called from that shard's goroutine) and merged in
// (slot, shard) order at the epoch barrier instead of reaching the
// collector directly. Shards that don't implement it cap a trial at
// sequential sharded execution.
type ParallelShard interface {
	Shard
	// SetCompletionSink routes every subsequent completion of this
	// shard to sink instead of the collector the shard was built with.
	SetCompletionSink(sink func(j *task.Job, at slot.Time))
}

// The adaptive drain budget bounds how many release slots a single
// horizon query may materialize while searching for the querying
// shard's next submission. Hitting the budget returns the fleet
// cursor as a conservative horizon instead — the shard advances
// there, re-queries, and the search resumes — so a long-idle device
// never forces the runner to buffer an unbounded prefix of a busy
// device's releases. The budget starts at the historical fixed chunk
// and moves with observed release density between these bounds
// (overridable per trial via Trial.DrainMin/DrainMax).
const (
	drainChunkStart = 1024
	drainChunkMin   = 64
	drainChunkMax   = 1 << 16
)

// drainPolicy is the AIMD controller for the drain budget. A search
// that exhausts its budget without finding the shard's release means
// releases are denser than the budget assumed — the next search gets
// twice the room (up to max). A search that finishes well under
// budget lets the controller decay toward min, so sparse workloads
// stop over-materializing other shards' backlog per query. The budget
// only bounds a conservative horizon (a too-early horizon merely makes
// the shard wake, find nothing, and re-query), so any trajectory of
// chunk values yields byte-identical trial results — the controller
// trades skip extents, never correctness.
type drainPolicy struct {
	min, max, chunk int
}

// newDrainPolicy clamps the configured bounds (zero values pick the
// built-in ones, an inverted pair collapses to [lo, lo]) and seeds the
// budget at the historical fixed chunk.
func newDrainPolicy(lo, hi int) *drainPolicy {
	if lo <= 0 {
		lo = drainChunkMin
	}
	if hi <= 0 {
		hi = drainChunkMax
	}
	if hi < lo {
		hi = lo
	}
	c := drainChunkStart
	if c < lo {
		c = lo
	}
	if c > hi {
		c = hi
	}
	return &drainPolicy{min: lo, max: hi, chunk: c}
}

// grow reacts to an exhausted search: releases are dense, double the
// budget so the next query can see past them.
func (p *drainPolicy) grow() {
	if c := p.chunk * 2; c <= p.max {
		p.chunk = c
	} else {
		p.chunk = p.max
	}
}

// settle reacts to a completed search that used `used` slots of the
// budget: when under a quarter of it, decay the budget by a quarter —
// additive-ish decrease against grow's doubling, so a burst ratchets
// up fast and a quiet stretch drifts back down.
func (p *drainPolicy) settle(used int) {
	if used*4 > p.chunk {
		return
	}
	if c := p.chunk - p.chunk/4; c >= p.min {
		p.chunk = c
	} else {
		p.chunk = p.min
	}
}

// relBuf buffers one shard's pending submissions in due order. A clean
// trial's dues are the release slots themselves, which arrive monotone
// (the fleet drains in global release order), so a plain FIFO holds
// them; fault-injected transport delay makes dues non-monotone, so
// faulted trials pay for a priority queue instead. The PQ breaks equal
// keys in insertion order, so whenever dues happen to be monotone the
// two representations drain identically.
type relBuf struct {
	fifo *queue.FIFO[*task.Job]
	pq   *queue.PQ[*task.Job]
}

func newRelBuf(faulted bool) *relBuf {
	if faulted {
		return &relBuf{pq: queue.NewPQ[*task.Job](0)}
	}
	return &relBuf{fifo: queue.NewFIFO[*task.Job](0)}
}

// push enqueues j for delivery at due. The FIFO form requires (and the
// clean runner guarantees) due == j.Release in arrival order.
func (b *relBuf) push(due slot.Time, j *task.Job) {
	if b.pq != nil {
		b.pq.Push(due, j)
		return
	}
	b.fifo.Push(j)
}

// peek returns the earliest-due buffered job.
func (b *relBuf) peek() (slot.Time, *task.Job, bool) {
	if b.pq != nil {
		_, due, j, ok := b.pq.Min()
		return due, j, ok
	}
	j, ok := b.fifo.Peek()
	if !ok {
		return 0, nil, false
	}
	return j.Release, j, true
}

// pop removes the earliest-due buffered job.
func (b *relBuf) pop() {
	if b.pq != nil {
		b.pq.PopMin()
		return
	}
	b.fifo.Pop()
}

// faultedEmit wraps a per-shard routing function with the transport
// fault layer: drops vanish before routing, duplicates follow their
// original, and delay shifts the delivery due past the release slot.
// It is only ever called from the runner's single-threaded fleet-drain
// contexts, matching the fault stream's counter discipline.
func faultedEmit(fs *faults.Stream, put func(due slot.Time, j *task.Job)) func(j *task.Job) {
	return func(j *task.Job) {
		a := fs.Transport(j)
		if a.Drop {
			return
		}
		due := j.Release + a.Delay
		put(due, j)
		if a.Dup {
			put(due, fs.DupJob(j))
		}
	}
}

// runSharded drives one trial on decoupled per-shard clocks. The
// fleet is drained in global release order (keeping the jitter RNG
// sequence identical to a dense run) into per-shard due-ordered
// buffers; each buffered job is submitted when its shard's clock
// reaches the due slot (the release slot, plus any fault-injected
// transport delay). Because sim.ShardSet executes (slot, shard) pairs
// in lexicographic order and shards are registered in the same order
// the monolithic Step iterates them, completions reach the collector
// in exactly the dense order — byte-identical results, enforced by the
// equivalence tests.
func runSharded(shards []Shard, fleet *vm.Fleet, horizon slot.Time, pol *drainPolicy, fs *faults.Stream, fallback func(j *task.Job)) {
	set := sim.NewShardSet()
	route := make(map[string]int, len(shards))
	bufs := make([]*relBuf, len(shards))
	for i, sh := range shards {
		set.Add(sh)
		bufs[i] = newRelBuf(fs != nil)
		for _, d := range sh.Devices() {
			route[d] = i
		}
	}
	put := func(due slot.Time, j *task.Job) {
		if i, ok := route[j.Task.Device]; ok {
			bufs[i].push(due, j)
			return
		}
		// No shard owns the device; hand the job to the monolithic
		// submission path (which counts the drop, like a dense run).
		fallback(j)
	}
	emit := func(j *task.Job) { put(j.Release, j) }
	if fs != nil {
		emit = faultedEmit(fs, put)
	}
	feed := func(i int, now slot.Time) {
		// Materialize every release up to the shard's clock. Releases
		// strictly before a shard's clock cannot exist for the shard
		// itself (its horizon stops it at its buffer head), so this
		// only pulls in the current slot's batch plus other shards'
		// backlog, bounded by their actual lag.
		for {
			nr := fleet.NextRelease()
			if nr > now {
				break
			}
			fleet.Release(nr, emit)
		}
		b := bufs[i]
		for {
			due, j, ok := b.peek()
			if !ok || due > now {
				break
			}
			b.pop()
			shards[i].Submit(now, j)
		}
	}
	hz := func(i int, limit slot.Time) slot.Time {
		if due, _, ok := bufs[i].peek(); ok {
			if fs == nil {
				return due
			}
			// Under transport delay, dues are not materialized in due
			// order: a release the fleet has not yet produced can still
			// land below the buffered head. The head therefore only
			// bounds the horizon once the fleet cursor has passed it —
			// shrink the search limit to the head and keep draining.
			if due < limit {
				limit = due
			}
		}
		// Search forward for this shard's next release, materializing
		// at most the adaptive budget's worth of release slots before
		// falling back to the (conservative, always-safe) fleet cursor.
		// Next-release times only move later, so once the cursor passes
		// limit no release below limit can ever appear — the jump is
		// sound permanently. The search's outcome feeds the budget
		// controller: exhaustion grows it, a cheap hit decays it.
		budget := pol.chunk
		for used := 0; ; used++ {
			nr := fleet.NextRelease()
			if nr >= limit {
				pol.settle(used)
				return limit
			}
			if used >= budget {
				pol.grow()
				return nr
			}
			fleet.Release(nr, emit)
			if due, _, ok := bufs[i].peek(); ok {
				if fs == nil {
					pol.settle(used)
					return due
				}
				if due < limit {
					limit = due
				}
			}
		}
	}
	set.Run(horizon, feed, hz)
}

// The epoch span bounds one parallel window in busy regions: the
// coordinator pre-drains the span's releases, the shard groups
// execute them concurrently, and the buffered completions merge at the
// barrier. Larger spans amortize the barrier; smaller spans bound the
// completion buffers. Idle regions are not bound by it — an empty span
// extends straight to the next release, so a long gap costs one epoch.
// The span starts at the historical fixed window and is resized from
// each epoch's measured shard load: when even the laggard shard
// executed only a sliver of the span (everything else fast-forwarded),
// barriers dominate and the span doubles; when an epoch buffered more
// completions than epochCompCap, the merge working set is growing and
// the span halves. Like the drain budget, the span changes only where
// barriers fall, never results.
const (
	epochSpanStart = 4096
	epochSpanMin   = 1024
	epochSpanMax   = 1 << 16
	epochCompCap   = 4096
)

// shardCompletion is one buffered completion: the job and observation
// slot the collector will see, plus the local slot of the emitting
// Step, which (with the shard index) reconstructs the sequential
// delivery order.
type shardCompletion struct {
	j       *task.Job
	at      slot.Time
	emitted slot.Time
}

// runShardedParallel drives one trial on decoupled per-shard clocks
// across `workers` OS threads. It reports false — without running
// anything — when the trial cannot execute in parallel (fewer than two
// shards or workers, or a shard without completion redirection), in
// which case the caller falls back to runSharded.
//
// The sequential runner's feed/horizon closures lazily drain the
// shared fleet, which cannot be called concurrently. The parallel
// runner instead alternates two phases per epoch [start, end):
//
//  1. Coordinator (single-threaded): drain every fleet release below
//     end — in global release order, so the jitter RNG sequence is
//     identical to a dense run — into per-shard FIFO mailboxes, then
//  2. Epoch (parallel): sim.ShardSet.RunParallel advances every shard
//     to end. Within the epoch feed and horizon touch only the
//     querying shard's own mailbox (head release or the limit), so
//     they are shard-confined as RunParallel requires. Every mailbox
//     drains fully: all buffered releases are < end and each shard's
//     clock reaches end.
//
// Completions emitted during the epoch are buffered per shard — each
// tagged with the local slot of the Step that emitted it — and merged
// into the collector at the barrier in (slot, shard) lexicographic
// order: exactly the order the sequential laggard-first schedule
// delivers them in, so results are byte-identical to runSharded (and
// hence to dense), for any worker count. The safety argument is the
// same lookahead one as sequential sharding: a shard only jumps a span
// its own NextWork and its mailbox horizon prove empty, and no feed
// can target an unexecuted slot because every release below the epoch
// end is mailboxed before the epoch starts.
func runShardedParallel(shards []Shard, fleet *vm.Fleet, horizon slot.Time, workers int, fs *faults.Stream, col *Collector, fallback func(j *task.Job)) bool {
	if len(shards) < 2 || workers < 2 {
		return false
	}
	par := make([]ParallelShard, len(shards))
	for i, sh := range shards {
		p, ok := sh.(ParallelShard)
		if !ok {
			return false
		}
		par[i] = p
	}
	set := sim.NewShardSet()
	route := make(map[string]int, len(shards))
	bufs := make([]*relBuf, len(shards))
	comps := make([][]shardCompletion, len(shards))
	cur := make([]slot.Time, len(shards))
	for i, sh := range shards {
		set.Add(sh)
		bufs[i] = newRelBuf(fs != nil)
		for _, d := range sh.Devices() {
			route[d] = i
		}
		i := i
		par[i].SetCompletionSink(func(j *task.Job, at slot.Time) {
			comps[i] = append(comps[i], shardCompletion{j: j, at: at, emitted: cur[i]})
		})
	}
	put := func(due slot.Time, j *task.Job) {
		if i, ok := route[j.Task.Device]; ok {
			bufs[i].push(due, j)
			return
		}
		fallback(j)
	}
	emit := func(j *task.Job) { put(j.Release, j) }
	if fs != nil {
		// The coordinator phase is single-threaded, so fault decisions
		// (and their counters) happen here, never inside the epoch. A
		// delayed job whose due lands at or past the epoch end simply
		// stays mailboxed across barriers: every job with due < end has
		// release ≤ due < end and is therefore already mailboxed when
		// the epoch starts — the in-epoch horizon can still trust the
		// mailbox head.
		emit = faultedEmit(fs, put)
	}
	feed := func(i int, now slot.Time) {
		cur[i] = now
		b := bufs[i]
		for {
			due, j, ok := b.peek()
			if !ok || due > now {
				break
			}
			b.pop()
			shards[i].Submit(now, j)
		}
	}
	hz := func(i int, limit slot.Time) slot.Time {
		if due, _, ok := bufs[i].peek(); ok {
			return due
		}
		return limit
	}
	heads := make([]int, len(shards))
	prevStepped := make([]int64, len(shards))
	span := slot.Time(epochSpanStart)
	for start := slot.Time(0); start < horizon; {
		end := start + span
		if end > horizon {
			end = horizon
		}
		for {
			nr := fleet.NextRelease()
			if nr >= end {
				break
			}
			fleet.Release(nr, emit)
		}
		// Empty span: stretch the epoch to the next release (or the
		// horizon) so idle regions cost one barrier, not one per span.
		if end < horizon {
			empty := true
			for _, b := range bufs {
				if _, _, ok := b.peek(); ok {
					empty = false
					break
				}
			}
			if nr := fleet.NextRelease(); empty && nr > end {
				end = nr
				if end > horizon {
					end = horizon
				}
			}
		}
		set.RunParallel(end, feed, hz, workers)
		// Barrier merge: replay the per-shard completion streams into
		// the collector in (emission slot, shard) order. Each stream is
		// already slot-ordered, so a k-way head merge reproduces the
		// sequential delivery sequence exactly.
		for i := range heads {
			heads[i] = 0
		}
		for {
			best := -1
			for i, cs := range comps {
				if heads[i] >= len(cs) {
					continue
				}
				if best < 0 || cs[heads[i]].emitted < comps[best][heads[best]].emitted {
					best = i
				}
			}
			if best < 0 {
				break
			}
			c := comps[best][heads[best]]
			heads[best]++
			if col != nil {
				col.Complete(c.j, c.at)
			}
		}
		// Resize the next window from this epoch's measured load: the
		// laggard's executed-slot count is how much dense work the span
		// actually covered, the merged-completion count is the barrier's
		// working set.
		merged := 0
		for i := range comps {
			merged += len(comps[i])
			comps[i] = comps[i][:0]
		}
		width := end - start
		var lag int64
		for i := range shards {
			st := set.Stats(i).Stepped
			if d := st - prevStepped[i]; d > lag {
				lag = d
			}
			prevStepped[i] = st
		}
		if merged > epochCompCap {
			if span /= 2; span < epochSpanMin {
				span = epochSpanMin
			}
		} else if lag < int64(width)/8 && merged*4 < epochCompCap {
			if span *= 2; span > epochSpanMax {
				span = epochSpanMax
			}
		}
		start = end
	}
	return true
}
