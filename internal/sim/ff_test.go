package sim

import (
	"reflect"
	"testing"

	"ioguard/internal/slot"
)

// recorder is a Quiescer+Skipper with a scripted busy set: it records
// every Step slot and every skipped span, and declares work exactly at
// the slots in busy.
type recorder struct {
	busy    map[slot.Time]bool
	stepped []slot.Time
	spans   [][2]slot.Time
}

func (r *recorder) Step(now slot.Time) { r.stepped = append(r.stepped, now) }

func (r *recorder) NextWork(now slot.Time) slot.Time {
	// Scan forward; busy sets in these tests are tiny and bounded.
	limit := now + slot.Time(1<<20)
	for at := now; at < limit; at++ {
		if r.busy[at] {
			return at
		}
	}
	return slot.Never
}

func (r *recorder) SkipTo(from, to slot.Time) { r.spans = append(r.spans, [2]slot.Time{from, to}) }

func busySet(at ...slot.Time) map[slot.Time]bool {
	m := make(map[slot.Time]bool, len(at))
	for _, a := range at {
		m[a] = true
	}
	return m
}

// TestRunSkipsIdleRegions: only declared-busy slots (plus slot 0,
// which Run always executes before consulting NextWork) are stepped;
// the skipped spans tile the gaps exactly.
func TestRunSkipsIdleRegions(t *testing.T) {
	e := New(1)
	r := &recorder{busy: busySet(5, 6, 100)}
	e.Register(r)
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", e.Now())
	}
	want := []slot.Time{0, 5, 6, 100}
	if !reflect.DeepEqual(r.stepped, want) {
		t.Errorf("stepped %v, want %v", r.stepped, want)
	}
	// Spans and steps together must cover [0, 1000) without overlap.
	covered := int64(len(r.stepped))
	prevEnd := slot.Time(-1)
	for _, sp := range r.spans {
		if sp[0] >= sp[1] {
			t.Errorf("empty or inverted span %v", sp)
		}
		if sp[0] <= prevEnd {
			t.Errorf("span %v overlaps previous end %d", sp, prevEnd)
		}
		prevEnd = sp[1]
		covered += int64(sp[1] - sp[0])
	}
	if covered != 1000 {
		t.Errorf("steps+spans cover %d slots, want 1000", covered)
	}
}

// TestRunMatchesRunDense: the same scripted component stepped densely
// observes the same busy slots in the same order.
func TestRunMatchesRunDense(t *testing.T) {
	busy := busySet(0, 3, 4, 17, 63, 64, 99)
	ff := &recorder{busy: busy}
	e1 := New(1)
	e1.Register(ff)
	e1.Run(128)

	dense := &recorder{busy: busy}
	e2 := New(1)
	e2.Register(dense)
	e2.RunDense(128)

	// Dense steps every slot; fast-forward must hit every busy slot.
	var denseBusy []slot.Time
	for _, at := range dense.stepped {
		if busy[at] {
			denseBusy = append(denseBusy, at)
		}
	}
	var ffBusy []slot.Time
	for _, at := range ff.stepped {
		if busy[at] {
			ffBusy = append(ffBusy, at)
		}
	}
	if !reflect.DeepEqual(denseBusy, ffBusy) {
		t.Errorf("busy slots stepped: dense %v, fast-forward %v", denseBusy, ffBusy)
	}
}

// TestEventsFireDuringFastForward: pending events bound the skip, so a
// fully quiescent engine still fires every event at its exact slot.
func TestEventsFireDuringFastForward(t *testing.T) {
	e := New(1)
	r := &recorder{busy: busySet()}
	e.Register(r)
	var fired []slot.Time
	for _, at := range []slot.Time{10, 500, 501, 999} {
		e.At(at, func(now slot.Time) { fired = append(fired, now) })
	}
	e.Run(1000)
	want := []slot.Time{10, 500, 501, 999}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("events fired at %v, want %v", fired, want)
	}
}

// TestNonQuiescerForcesDense: one component without NextWork pins the
// whole engine to slot-by-slot stepping.
func TestNonQuiescerForcesDense(t *testing.T) {
	e := New(1)
	q := &recorder{busy: busySet()}
	steps := 0
	e.Register(q)
	e.Register(StepFunc(func(slot.Time) { steps++ }))
	e.Run(100)
	if steps != 100 {
		t.Errorf("plain stepper ran %d slots, want 100 (always-busy default)", steps)
	}
	if len(q.stepped) != 100 || len(q.spans) != 0 {
		t.Errorf("quiescent peer stepped %d / skipped %d spans; dense stepping expected",
			len(q.stepped), len(q.spans))
	}
}

// TestRunStopsAtHorizon: NextWork far beyond the horizon must not push
// Now past until.
func TestRunStopsAtHorizon(t *testing.T) {
	e := New(1)
	e.Register(&recorder{busy: busySet(1 << 19)})
	e.Run(100)
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
}

// TestEventHeapSteadyStateAllocFree: a self-rescheduling chain at
// constant heap depth must not allocate per slot once the heap's
// backing array has grown.
func TestEventHeapSteadyStateAllocFree(t *testing.T) {
	e := New(1)
	var chain func(now slot.Time)
	chain = func(now slot.Time) { e.After(1, chain) }
	e.At(0, chain)
	e.Run(64) // warm up: heap and stepper slices at steady size
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs > 0.001 {
		t.Errorf("steady-state Step allocates %.3f allocs/op, want 0", allocs)
	}
}
