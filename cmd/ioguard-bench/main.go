// Command ioguard-bench runs the simulation benchmark suite
// (internal/benchsuite — the same bodies `go test -bench` wraps) and
// writes a machine-readable report to BENCH_sim.json. The derived
// dense/fast-forward speedups quantify the engine's idle-slot
// fast-forward on the idle-heavy cells; allocs/op tracks the
// zero-allocation hot paths.
//
// Two suites exist: the default one is sized for per-PR smoke runs,
// while -suite nightly selects the paper-scale case study (1000 trials
// per point, streaming metrics) and additionally persists each sweep's
// merged cross-trial response/tardiness sketches (results.SweepSketch)
// so the trajectory accumulates a true latency distribution over time.
// With -append the report is appended to a trajectory file (schema
// ioguard/bench_sim_trajectory/v2; v1 files are upgraded in place,
// their runs preserved) whose runs array accumulates one entry per
// invocation — the nightly CI job uses this to track the sweep's
// performance PR over PR, and cmd/ioguard-report renders and gates
// the accumulated trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ioguard/internal/benchsuite"
	"ioguard/internal/experiments"
	"ioguard/internal/footprint"
	"ioguard/internal/results"
)

// robustnessRows runs the fault-injection robustness sweep at smoke
// scale and flattens it into report rows: every system (the case-study
// five plus BS|PART) under every fault scenario, scored with the
// fault-conditioned miss/drop counters and the timing-accuracy
// distribution. The sweep is a deterministic simulation — identical
// rows on every host — so unlike the wall-clock benchmarks these
// columns are comparable across trajectory runs byte for byte.
func robustnessRows(seed int64) ([]results.RobustnessRow, error) {
	pts, err := experiments.Robustness(experiments.RobustnessConfig{
		VMs:          4,
		Util:         0.8,
		Trials:       3,
		HyperPeriods: 2,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]results.RobustnessRow, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, results.RobustnessRow{
			Scenario:              p.Scenario,
			System:                p.System,
			Trials:                p.Agg.Trials,
			SuccessRatio:          p.Agg.SuccessRatio(),
			MissesPerTrial:        p.Agg.Misses.Mean(),
			FaultedMissesPerTrial: p.Agg.FaultedMisses.Mean(),
			DropsPerTrial:         p.Agg.FaultDropped.Mean(),
			DupsPerTrial:          p.Agg.DupDelivered.Mean(),
			AccuracyMeanSlots:     p.Agg.Accuracy.Mean(),
			AccuracyP99Slots:      p.Agg.Accuracy.Quantile(0.99),
		})
	}
	return rows, nil
}

func measure(spec benchsuite.Spec) results.Result {
	r := testing.Benchmark(spec.Bench)
	res := results.Result{
		Name:        spec.Name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SlotsPerOp:  spec.SlotsPerOp,
	}
	if spec.SlotsPerOp > 0 && res.NsPerOp > 0 {
		res.SlotsPerSec = float64(spec.SlotsPerOp) / (res.NsPerOp / 1e9)
	}
	return res
}

func main() {
	testing.Init()
	var (
		out       = flag.String("o", "BENCH_sim.json", "output path (\"-\" for stdout)")
		benchtime = flag.String("benchtime", "1s", "per-benchmark measuring time (forwarded to test.benchtime; e.g. 2s, 100x)")
		match     = flag.String("bench", "", "only run benchmarks whose name contains this substring")
		suite     = flag.String("suite", "default", "benchmark suite: default (per-PR smoke scale) or nightly (paper-scale 1000-trial case study)")
		appendRep = flag.Bool("append", false, "append this run to the output file's trajectory (ioguard/bench_sim_trajectory/v2) instead of overwriting it")
		robust    = flag.Bool("robust", true, "include the fault-injection robustness rows (deterministic smoke-scale sweep over every system and fault scenario)")
		robustSd  = flag.Int64("robust-seed", 11, "base seed for the robustness sweep's workloads and fault realizations")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(1)
	}
	var specs []benchsuite.Spec
	switch *suite {
	case "default":
		specs = benchsuite.Specs()
	case "nightly":
		specs = benchsuite.NightlySpecs()
	default:
		fmt.Fprintf(os.Stderr, "ioguard-bench: unknown suite %q (want default|nightly)\n", *suite)
		os.Exit(1)
	}

	rep := results.Report{
		Schema:    results.ReportSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Suite:     *suite,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *benchtime,
	}
	for _, spec := range specs {
		if *match != "" && !strings.Contains(spec.Name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
		res := measure(spec)
		fmt.Fprintf(os.Stderr, "  %d iterations, %.0f ns/op, %d allocs/op\n",
			res.Iterations, res.NsPerOp, res.AllocsPerOp)
		rep.Results = append(rep.Results, res)
	}
	rep.Speedups = results.Speedups(rep.Results)
	slotRows, err := footprint.SlotTableRows(benchsuite.AvionicsTableRequirements())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: slot-table footprint: %v\n", err)
		os.Exit(1)
	}
	rep.SlotTables = slotRows
	for _, sk := range benchsuite.TakeSweepSketches() {
		sk.Suite = *suite
		rep.SweepSketches = append(rep.SweepSketches, sk)
	}
	if *robust {
		fmt.Fprintln(os.Stderr, "running robustness sweep...")
		rep.Robustness, err = robustnessRows(*robustSd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioguard-bench: robustness sweep: %v\n", err)
			os.Exit(1)
		}
	}

	var data []byte
	if *appendRep && *out != "-" {
		data, err = results.AppendRun(*out, rep)
	} else {
		data, err = json.MarshalIndent(rep, "", "  ")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: %v\n", err)
		os.Exit(1)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("%s: %.1f× over baseline\n", s.Name, s.Speedup)
	}
	for _, r := range rep.SlotTables {
		fmt.Printf("slot-table %s: dense %d B → interval %d B (%.0f× smaller, %d runs over %d slots)\n",
			r.Device, r.DenseBytes, r.IntervalBytes, r.Reduction, r.Runs, r.HyperPeriod)
	}
	for _, sk := range rep.SweepSketches {
		fmt.Printf("sweep sketch %s: %d trials, response p99 %.0f slots\n",
			sk.Key(), sk.Trials, sk.Response.Percentile(99))
	}
	if n := len(rep.Robustness); n > 0 {
		fmt.Printf("robustness: %d (scenario, system) rows\n", n)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
}
