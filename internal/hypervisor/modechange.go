// Mode changes: hot-adding and retiring pre-defined tasks on a live
// manager. The paper loads the Time Slot Table once at system
// initialization (Sec. II-B); deployed systems switch operating modes,
// so the manager also supports allocating table slots for a new
// pre-defined task at run time (using only free slots — existing
// reservations are never disturbed) and releasing a retired one.
package hypervisor

import (
	"fmt"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// LoadPre allocates table slots for spec at run time and registers it
// with the P-channel. The task's period must divide the table length.
// Existing reservations and R-channel state are untouched; on any
// failure the table is left unchanged.
func (m *Manager) LoadPre(spec *task.Sporadic, id slot.TaskID, offset slot.Time) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := m.pre[id]; dup {
		return fmt.Errorf("hypervisor: pre-defined task %d already loaded", id)
	}
	_, err := m.cfg.Table.AllocatePeriodic(slot.Requirement{
		ID:       id,
		Period:   spec.Period,
		WCET:     spec.WCET,
		Deadline: spec.Deadline,
		Offset:   offset,
	})
	if err != nil {
		return err
	}
	if err := m.Preload(spec, id, offset); err != nil {
		m.cfg.Table.Release(id)
		return err
	}
	return nil
}

// UnloadPre retires a pre-defined task: its pending jobs are dropped
// (and counted — a discarded job is a lost I/O operation, visible in
// Stats.Dropped and the owning VM's audit counters like any other
// loss), its registration removed, and its table slots freed for the
// R-channel.
func (m *Manager) UnloadPre(id slot.TaskID) error {
	pt, ok := m.pre[id]
	if !ok {
		return fmt.Errorf("hypervisor: pre-defined task %d not loaded", id)
	}
	for {
		j, ok := pt.pending.Pop()
		if !ok {
			break
		}
		m.stats.Dropped++
		if vm := j.Task.VM; vm >= 0 && vm < len(m.vmStats) {
			m.vmStats[vm].Dropped++
		}
	}
	delete(m.pre, id)
	for i, pid := range m.preIDs {
		if pid == id {
			m.preIDs = append(m.preIDs[:i:i], m.preIDs[i+1:]...)
			break
		}
	}
	m.cfg.Table.Release(id)
	return nil
}
