package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"ioguard/internal/metrics"
	"ioguard/internal/system"
)

// lightRequest is a fast trial configuration (sub-millisecond per
// trial on one core) so the e2e tests stay cheap.
func lightRequest(trials int) map[string]any {
	return map[string]any{
		"system":       "bluevisor",
		"vms":          2,
		"util":         0.5,
		"hyperperiods": 1,
		"seed":         3,
		"trials":       trials,
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	return resp
}

// readLines decodes every NDJSON line of a trial stream.
func readLines(t *testing.T, resp *http.Response) []TrialResponse {
	t.Helper()
	defer resp.Body.Close()
	var out []TrialResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var line TrialResponse
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestTrialsRoundTrip: submit → batch → stream. The response must
// carry one line per trial, in trial order, with the rendered block
// and a populated timing breakdown, and repeating the request must
// reproduce the stream byte-identically (the determinism contract).
func TestTrialsRoundTrip(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	resp := postJSON(t, hts.URL+"/v1/trials", lightRequest(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := readLines(t, resp)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	seeds := map[int64]bool{}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d (stream out of order)", i, l.Index)
		}
		if l.Rendered == "" || l.Completed == 0 {
			t.Fatalf("line %d missing results: %+v", i, l)
		}
		if l.Timing.BatchSize < 1 || l.Timing.ExecMs < 0 || l.Timing.QueueWaitMs < 0 {
			t.Fatalf("line %d missing timing breakdown: %+v", i, l.Timing)
		}
		seeds[l.Seed] = true
	}
	if len(seeds) != 4 {
		t.Fatalf("sweep seeds not independent: %v", seeds)
	}

	again := readLines(t, postJSON(t, hts.URL+"/v1/trials", lightRequest(4)))
	for i := range lines {
		if lines[i].Rendered != again[i].Rendered || lines[i].Seed != again[i].Seed {
			t.Fatalf("rerun diverged at line %d:\n%s\nvs\n%s", i, lines[i].Rendered, again[i].Rendered)
		}
	}
}

// TestTrialsMatchParallelSweep: the server's sweep execution must
// follow ParallelSweep's exact seed schedule and per-trial results.
func TestTrialsMatchParallelSweep(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	lines := readLines(t, postJSON(t, hts.URL+"/v1/trials", lightRequest(3)))
	norm, err := normalize(TrialRequest{System: "bluevisor", VMs: 2, Util: 0.5, Hyperperiods: 1, Seed: 3, Trials: 3})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	results, err := system.RunCells(norm.cells(), 1)
	if err != nil {
		t.Fatalf("runcells: %v", err)
	}
	for i, res := range results {
		if lines[i].Completed != res.Completed || lines[i].CriticalMisses != res.CriticalMisses ||
			lines[i].BytesServed != res.BytesServed {
			t.Fatalf("trial %d diverges from direct execution: %+v vs %+v", i, lines[i], res)
		}
	}
}

// TestBadRequestsRejected: validation failures are client errors.
func TestBadRequestsRejected(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	for _, body := range []map[string]any{
		{"system": "warp-drive"},
		{"system": "ioguard-170"},
		{"trials": -4},
		{"metrics": "fuzzy"},
		{"shard_workers": -1},
		{"fault_drop": 2.0},
		{"fault_delay": 0.5}, // delay probability without fault_delay_max
		{"fault_jitter": -3},
	} {
		resp := postJSON(t, hts.URL+"/v1/trials", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %v: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestFaultedTrialsRoundTrip: a request carrying a fault plan streams
// fault-annotated renders, reproduces byte-identically on rerun, and
// matches direct execution of the normalized cells — the server-side
// face of the -fault-seed replay contract.
func TestFaultedTrialsRoundTrip(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	req := lightRequest(3)
	req["fault_seed"] = 7
	req["fault_jitter"] = 40
	req["fault_drop"] = 0.05
	lines := readLines(t, postJSON(t, hts.URL+"/v1/trials", req))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, l := range lines {
		if !bytes.Contains([]byte(l.Rendered), []byte("faults injected:")) {
			t.Fatalf("line %d render missing fault block:\n%s", i, l.Rendered)
		}
	}
	again := readLines(t, postJSON(t, hts.URL+"/v1/trials", req))
	for i := range lines {
		if lines[i].Rendered != again[i].Rendered {
			t.Fatalf("faulted rerun diverged at line %d", i)
		}
	}
	norm, err := normalize(TrialRequest{System: "bluevisor", VMs: 2, Util: 0.5, Hyperperiods: 1,
		Seed: 3, Trials: 3, FaultSeed: 7, FaultJitter: 40, FaultDrop: 0.05})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	results, err := system.RunCells(norm.cells(), 1)
	if err != nil {
		t.Fatalf("runcells: %v", err)
	}
	for i, res := range results {
		if res.Faults == nil {
			t.Fatalf("trial %d: no fault summary on direct execution", i)
		}
		if lines[i].Completed != res.Completed || lines[i].CriticalMisses != res.CriticalMisses {
			t.Fatalf("trial %d diverges from direct execution", i)
		}
	}
}

// TestSaturationReturns429 drives more concurrent trials than the
// queue admits and checks three things: some requests are refused
// with 429 + Retry-After, refused requests admit nothing, and every
// accepted request streams back its full trial count — an accepted
// job is never dropped.
func TestSaturationReturns429(t *testing.T) {
	srv := New(Config{Batcher: BatcherConfig{QueueDepth: 8, BatchSize: 8, MaxWait: time.Millisecond}})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	const clients = 16
	var (
		mu       sync.Mutex
		rejected int
		complete int
		short    int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp := postJSON(t, hts.URL+"/v1/trials", lightRequest(4))
				switch resp.StatusCode {
				case http.StatusOK:
					n := 0
					sc := bufio.NewScanner(resp.Body)
					for sc.Scan() {
						n++
					}
					resp.Body.Close()
					mu.Lock()
					if n == 4 {
						complete++
					} else {
						short++
					}
					mu.Unlock()
				case http.StatusTooManyRequests:
					ra := resp.Header.Get("Retry-After")
					if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
						t.Errorf("429 without usable Retry-After %q", ra)
					}
					var eb errorBody
					if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.RetryAfterMs <= 0 {
						t.Errorf("429 body missing retry_after_ms: %v %+v", err, eb)
					}
					resp.Body.Close()
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					resp.Body.Close()
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()

	if rejected == 0 {
		t.Fatal("admission control never engaged (no 429s)")
	}
	if short != 0 {
		t.Fatalf("%d accepted requests streamed fewer trials than admitted", short)
	}
	st := srv.Batcher().Stats()
	if st.RejectedRequests != int64(rejected) {
		t.Fatalf("server admission counter %d != client-observed 429s %d", st.RejectedRequests, rejected)
	}
	if st.ExecutedTrials != st.AcceptedTrials {
		t.Fatalf("executed %d of %d accepted trials", st.ExecutedTrials, st.AcceptedTrials)
	}
	if st.AcceptedTrials != int64(complete*4) {
		t.Fatalf("accepted %d trials but clients saw %d", st.AcceptedTrials, complete*4)
	}
}

// TestBatcherAllOrNothing pins the reservation arithmetic directly:
// a request larger than the remaining depth is refused whole, a
// smaller one still fits, and Close resolves every admitted unit.
func TestBatcherAllOrNothing(t *testing.T) {
	// BatchSize > depth and a huge MaxWait keep reservations pinned:
	// the collector gathers units into an open batch but never runs it
	// until Close drains.
	b := NewBatcher(BatcherConfig{QueueDepth: 4, BatchSize: 100, MaxWait: time.Hour, Workers: 1})
	norm, err := normalize(TrialRequest{System: "bluevisor", VMs: 2, Util: 0.5, Hyperperiods: 1, Seed: 3, Trials: 3})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	cells3 := norm.cells()

	first, err := b.Enqueue(cells3)
	if err != nil {
		t.Fatalf("first enqueue: %v", err)
	}
	if _, err := b.Enqueue(cells3); err != ErrSaturated {
		t.Fatalf("oversized enqueue: got %v, want ErrSaturated", err)
	}
	second, err := b.Enqueue(cells3[:1])
	if err != nil {
		t.Fatalf("fitting enqueue refused: %v", err)
	}
	st := b.Stats()
	if st.RejectedRequests != 1 || st.RejectedTrials != 3 || st.AcceptedTrials != 4 {
		t.Fatalf("admission counters wrong: %+v", st)
	}

	b.Close() // must drain: all four admitted units resolve
	for i, u := range append(first, second...) {
		select {
		case res := <-u.Done():
			if res.Err != nil || res.Res == nil {
				t.Fatalf("unit %d failed: %+v", i, res)
			}
		default:
			t.Fatalf("unit %d unresolved after Close", i)
		}
	}
	if st := b.Stats(); st.ExecutedTrials != 4 || st.Queued != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
}

// TestBatchErrorAttribution: one poisoned cell must not fail its
// batch-mates — the batcher retries individually and attributes the
// error to exactly the bad cell.
func TestBatchErrorAttribution(t *testing.T) {
	b := NewBatcher(BatcherConfig{QueueDepth: 16, BatchSize: 3, MaxWait: time.Hour, Workers: 1})
	defer b.Close()
	norm, err := normalize(TrialRequest{System: "bluevisor", VMs: 2, Util: 0.5, Hyperperiods: 1, Seed: 3, Trials: 3})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	cells := norm.cells()
	cells[1].Trial.Horizon = 0 // poison: Run rejects a non-positive horizon

	units, err := b.Enqueue(cells)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	for i, u := range units {
		res := <-u.Done()
		if i == 1 {
			if res.Err == nil {
				t.Fatal("poisoned cell did not report its error")
			}
			continue
		}
		if res.Err != nil || res.Res == nil {
			t.Fatalf("healthy cell %d caught its batch-mate's error: %+v", i, res)
		}
	}
}

// TestSweepJobLifecycle: async submit returns 202 + id, the job
// reaches done, status carries the aggregate, and the results
// endpoint streams every per-trial line. Unknown ids are 404s.
func TestSweepJobLifecycle(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	resp := postJSON(t, hts.URL+"/v1/sweeps", lightRequest(5))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if st.ID == "" || st.Trials != 5 {
		t.Fatalf("bad submit status: %+v", st)
	}

	wresp, err := http.Get(hts.URL + "/v1/sweeps/" + st.ID + "/results?wait=1")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	var nlines int
	sc := bufio.NewScanner(wresp.Body)
	for sc.Scan() {
		nlines++
	}
	wresp.Body.Close()
	if nlines != 5 {
		t.Fatalf("results streamed %d lines, want 5", nlines)
	}

	sresp, err := http.Get(hts.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var final SweepStatus
	if err := json.NewDecoder(sresp.Body).Decode(&final); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	sresp.Body.Close()
	if final.State != JobDone || final.Completed != 5 || final.Aggregate == nil {
		t.Fatalf("job not finished: %+v", final)
	}
	if final.Aggregate.Trials != 5 || final.Aggregate.Rendered == "" {
		t.Fatalf("bad aggregate: %+v", final.Aggregate)
	}

	nf, err := http.Get(hts.URL + "/v1/sweeps/sweep-999999")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", nf.StatusCode)
	}
}

// runSweep submits a sweep in the given metrics mode, waits for it,
// and returns the final status fetched from url + query.
func runSweep(t *testing.T, hts *httptest.Server, mode string, query string) SweepStatus {
	t.Helper()
	req := lightRequest(4)
	req["metrics"] = mode
	resp := postJSON(t, hts.URL+"/v1/sweeps", req)
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	wresp, err := http.Get(hts.URL + "/v1/sweeps/" + st.ID + "/results?wait=1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	wresp.Body.Close()
	sresp, err := http.Get(hts.URL + "/v1/sweeps/" + st.ID + query)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer sresp.Body.Close()
	var final SweepStatus
	if err := json.NewDecoder(sresp.Body).Decode(&final); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return final
}

// TestSweepAggregateDistSummaries: the sweep payload carries merged
// cross-trial quantile summaries per metrics mode — exact folds with
// ε=0, streaming folds at the sketch's ε, GK folds answer nothing —
// and ?sketch=1 attaches a serialized sketch that decodes back into a
// recorder agreeing with the summary.
func TestSweepAggregateDistSummaries(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	exact := runSweep(t, hts, "exact", "")
	if exact.Aggregate == nil || exact.Aggregate.Response == nil {
		t.Fatalf("exact sweep missing response summary: %+v", exact.Aggregate)
	}
	if d := exact.Aggregate.Response; d.Epsilon != 0 || d.N == 0 || d.P50 > d.P99 || d.P99 > d.Max {
		t.Fatalf("exact response summary inconsistent: %+v", d)
	}
	if len(exact.Aggregate.ResponseSketch) != 0 {
		t.Fatalf("exact sweep leaked a serialized sketch without ?sketch=1")
	}

	stream := runSweep(t, hts, "stream", "?sketch=1")
	d := stream.Aggregate.Response
	if d == nil || d.Epsilon <= 0 || d.Unmerged != 0 {
		t.Fatalf("stream response summary not merged: %+v", d)
	}
	if d.N != exact.Aggregate.Response.N {
		t.Fatalf("stream folded %d observations, exact folded %d", d.N, exact.Aggregate.Response.N)
	}
	if len(stream.Aggregate.ResponseSketch) == 0 {
		t.Fatalf("?sketch=1 returned no serialized response sketch")
	}
	var dec metrics.Streaming
	if err := json.Unmarshal(stream.Aggregate.ResponseSketch, &dec); err != nil {
		t.Fatalf("serialized sketch does not decode: %v", err)
	}
	if dec.N() != int(d.N) || dec.Percentile(99) != d.P99 {
		t.Fatalf("decoded sketch (n=%d p99=%g) disagrees with summary %+v", dec.N(), dec.Percentile(99), d)
	}

	gk := runSweep(t, hts, "stream-gk", "?sketch=1")
	if d := gk.Aggregate.Response; d == nil || d.Unmerged == 0 {
		t.Fatalf("stream-gk summary should report unmerged sketches: %+v", d)
	}
	if len(gk.Aggregate.ResponseSketch) != 0 {
		t.Fatalf("stream-gk sweep has no mergeable sketch to serialize")
	}
}

// TestJobStoreSaturation fills the queue of a store whose runner is
// not started, so admission is tested without racing execution; Close
// must then drain every accepted job.
func TestJobStoreSaturation(t *testing.T) {
	s := newJobStore(JobStoreConfig{MaxJobs: 2, Workers: 1})
	norm, err := normalize(TrialRequest{System: "bluevisor", VMs: 2, Util: 0.5, Hyperperiods: 1, Seed: 3, Trials: 2})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	var jobs []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(norm)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if _, err := s.Submit(norm); err != ErrSaturated {
		t.Fatalf("overflow submit: got %v, want ErrSaturated", err)
	}
	if st := s.Stats(); st.Accepted != 2 || st.Rejected != 1 {
		t.Fatalf("job counters wrong: %+v", st)
	}

	go s.run()
	s.Close() // drains both accepted jobs
	for i, j := range jobs {
		st := j.Status()
		if st.State != JobDone || st.Completed != 2 {
			t.Fatalf("job %d not drained: %+v", i, st)
		}
	}
}

// TestServerCloseDrains: trials admitted just before shutdown still
// resolve — Close waits for both execution paths.
func TestServerCloseDrains(t *testing.T) {
	srv := New(Config{Batcher: BatcherConfig{MaxWait: time.Hour, BatchSize: 100, QueueDepth: 64}})
	norm, err := normalize(TrialRequest{System: "bluevisor", VMs: 2, Util: 0.5, Hyperperiods: 1, Seed: 3, Trials: 4})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	units, err := srv.Batcher().Enqueue(norm.cells())
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	job, err := srv.Jobs().Submit(norm)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	srv.Close()
	for i, u := range units {
		select {
		case res := <-u.Done():
			if res.Err != nil {
				t.Fatalf("unit %d: %v", i, res.Err)
			}
		default:
			t.Fatalf("unit %d unresolved after Close", i)
		}
	}
	if st := job.Status(); st.State != JobDone {
		t.Fatalf("job not drained: %+v", st)
	}
}

// TestStatsEndpoint sanity-checks the counters surfaced to /v1/stats.
func TestStatsEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	readLines(t, postJSON(t, hts.URL+"/v1/trials", lightRequest(2)))
	resp, err := http.Get(hts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Batcher.AcceptedTrials != 2 || st.Batcher.ExecutedTrials != 2 || st.Batcher.Batches == 0 {
		t.Fatalf("batcher stats wrong: %+v", st.Batcher)
	}
	if st.Batcher.MeanBatchSize <= 0 || st.Batcher.ExecMeanMs <= 0 {
		t.Fatalf("timing recorders empty: %+v", st.Batcher)
	}
}
