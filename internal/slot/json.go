// JSON serialization of the Time Slot Table: σ* is configuration
// state loaded into the P-channel memory banks at initialization, so
// it needs a stable on-disk form for tooling (cmd/ioguard-analyze)
// and for shipping tables between the offline builder and a deployed
// system.
package slot

import (
	"encoding/json"
	"fmt"
)

// tableJSON is the wire form: one entry per slot, Free as -1.
type tableJSON struct {
	Slots []TaskID `json:"slots"`
}

// MarshalJSON encodes the table as {"slots":[...]} with -1 for free
// slots.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Slots: append([]TaskID(nil), t.slots...)})
}

// UnmarshalJSON decodes a table, validating that every entry is either
// Free or a non-negative task ID and recomputing the free count.
func (t *Table) UnmarshalJSON(data []byte) error {
	var w tableJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	free := 0
	for i, id := range w.Slots {
		switch {
		case id == Free:
			free++
		case id < 0:
			return fmt.Errorf("slot: table entry %d has invalid id %d", i, id)
		}
	}
	t.slots = w.Slots
	t.free = free
	return nil
}
