package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Variance(); got != 5 {
		t.Errorf("Variance = %v, want 5", got)
	}
	if math.Abs(s.StdDev()-math.Sqrt(5)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev())
	}
}

func TestSampleAddTime(t *testing.T) {
	var s Sample
	s.AddTime(42)
	if s.Mean() != 42 {
		t.Error("AddTime should add the slot value")
	}
}

func TestSamplePercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100}, {-5, 1}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSamplePercentileAfterAdd(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50) // sorts
	s.Add(1)             // must re-sort on next query
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 after Add = %v, want 1", got)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(1)
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSampleMeanBounds(t *testing.T) {
	f := func(raw []int32) bool {
		var s Sample
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			s.Add(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= min-1e-9*math.Abs(min)-1e-9 && m <= max+1e-9*math.Abs(max)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrialResultSuccess(t *testing.T) {
	tr := TrialResult{Completed: 10}
	if !tr.Success() {
		t.Error("no misses should be success")
	}
	tr.CriticalMisses = 1
	if tr.Success() {
		t.Error("critical miss should fail the trial")
	}
	tr.CriticalMisses = 0
	tr.OtherMisses = 5
	if !tr.Success() {
		t.Error("synthetic misses must not fail the trial")
	}
}

func TestThroughput(t *testing.T) {
	tr := TrialResult{BytesServed: 2_000_000, Horizon: 1_000_000} // 2MB in 1s
	if got := tr.ThroughputMBps(); math.Abs(got-2) > 1e-9 {
		t.Errorf("throughput = %v, want 2", got)
	}
	if (&TrialResult{}).ThroughputMBps() != 0 {
		t.Error("zero horizon should give 0 throughput")
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	good := TrialResult{BytesServed: 1_000_000, Horizon: 1_000_000}
	bad := TrialResult{CriticalMisses: 3, BytesServed: 500_000, Horizon: 1_000_000}
	a.AddTrial(&good)
	a.AddTrial(&bad)
	if a.Trials != 2 || a.Successes != 1 {
		t.Errorf("aggregate = %+v", a)
	}
	if a.SuccessRatio() != 0.5 {
		t.Errorf("SuccessRatio = %v", a.SuccessRatio())
	}
	if a.Misses.Max() != 3 {
		t.Errorf("Misses.Max = %v", a.Misses.Max())
	}
	if !strings.Contains(a.String(), "50.0%") {
		t.Errorf("String = %q", a.String())
	}
	if (&Aggregate{}).SuccessRatio() != 0 {
		t.Error("empty aggregate ratio should be 0")
	}
}
