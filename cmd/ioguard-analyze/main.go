// Command ioguard-analyze runs the two-layer schedulability analysis
// of Sec. IV on a system description read from a JSON file (or on a
// built-in demo when no file is given).
//
// Input format:
//
//	{
//	  "predefined": [{"id":0,"period":16,"wcet":2,"deadline":16,"offset":0}],
//	  "servers":    [{"vm":0,"period":8,"budget":2}],
//	  "tasks":      [{"id":0,"vm":0,"period":64,"wcet":4,"deadline":64}]
//	}
//
// With -synthesize PI the servers section is ignored and minimal
// per-VM servers of period PI are dimensioned instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"ioguard/internal/analysis"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

type inputFile struct {
	Predefined []struct {
		ID       int32 `json:"id"`
		Period   int64 `json:"period"`
		WCET     int64 `json:"wcet"`
		Deadline int64 `json:"deadline"`
		Offset   int64 `json:"offset"`
	} `json:"predefined"`
	Servers []struct {
		VM     int   `json:"vm"`
		Period int64 `json:"period"`
		Budget int64 `json:"budget"`
	} `json:"servers"`
	Tasks []struct {
		ID       int   `json:"id"`
		VM       int   `json:"vm"`
		Period   int64 `json:"period"`
		WCET     int64 `json:"wcet"`
		Deadline int64 `json:"deadline"`
	} `json:"tasks"`
}

func main() {
	var (
		file       = flag.String("f", "", "JSON system description (empty = built-in demo)")
		synthesize = flag.Int64("synthesize", 0, "ignore servers; synthesize minimal servers with this period")
		verbose    = flag.Bool("v", false, "print the time slot table and per-VM detail")
		plot       = flag.Bool("plot", false, "plot supply vs demand curves")
		dumpTable  = flag.String("dump-table", "", "write the built σ* as JSON to this file")
	)
	flag.Parse()
	if err := run(*file, *synthesize, *verbose, *plot, *dumpTable); err != nil {
		fmt.Fprintln(os.Stderr, "ioguard-analyze:", err)
		os.Exit(1)
	}
}

func run(file string, synthesizePi int64, verbose, plot bool, dumpTable string) error {
	in := demo()
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		in = inputFile{}
		if err := json.Unmarshal(raw, &in); err != nil {
			return err
		}
	}

	var reqs []slot.Requirement
	for _, p := range in.Predefined {
		reqs = append(reqs, slot.Requirement{
			ID: slot.TaskID(p.ID), Period: slot.Time(p.Period),
			WCET: slot.Time(p.WCET), Deadline: slot.Time(p.Deadline),
			Offset: slot.Time(p.Offset),
		})
	}
	tab, placements, err := slot.Build(reqs)
	if err != nil {
		return fmt.Errorf("building time slot table: %w", err)
	}
	fmt.Printf("Time Slot Table: H=%d F=%d utilization=%.3f (%d pre-defined jobs placed)\n",
		tab.Len(), tab.FreeCount(), tab.Utilization(), len(placements))
	if verbose {
		fmt.Println("  σ* =", tab)
	}
	if dumpTable != "" {
		data, err := json.MarshalIndent(tab, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(dumpTable, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote σ* to", dumpTable)
	}

	var ts task.Set
	for _, t := range in.Tasks {
		ts = append(ts, task.Sporadic{
			ID: t.ID, VM: t.VM, Period: slot.Time(t.Period),
			WCET: slot.Time(t.WCET), Deadline: slot.Time(t.Deadline),
		})
	}

	var servers []task.Server
	if synthesizePi > 0 {
		var res analysis.SystemResult
		servers, res, err = analysis.SynthesizeServers(tab, ts, slot.Time(synthesizePi))
		if err != nil {
			return fmt.Errorf("synthesizing servers: %w", err)
		}
		fmt.Println("Synthesized servers:")
		for _, g := range servers {
			fmt.Printf("  %s (U=%.3f)\n", g, g.Utilization())
		}
		report(res, verbose)
		if plot {
			plotSystem(tab, servers, ts)
		}
		return nil
	}
	for _, s := range in.Servers {
		servers = append(servers, task.Server{VM: s.VM, Period: slot.Time(s.Period), Budget: slot.Time(s.Budget)})
	}
	res, err := analysis.TestSystem(tab, servers, ts)
	if err != nil {
		return err
	}
	report(res, verbose)
	if plot {
		plotSystem(tab, servers, ts)
	}
	return nil
}

// plotSystem renders the G-Sched curve and each VM's L-Sched curve.
func plotSystem(tab *slot.Table, servers []task.Server, ts task.Set) {
	sb := analysis.NewSupplyBound(tab)
	upTo := 4 * sb.H()
	fmt.Println()
	fmt.Print(analysis.PlotGSched(sb, servers, upTo))
	byVM := ts.ByVM()
	for _, g := range servers {
		if set, ok := byVM[g.VM]; ok {
			fmt.Println()
			fmt.Print(analysis.PlotLSched(g, set, upTo))
		}
	}
}

func report(res analysis.SystemResult, verbose bool) {
	verdict := "SCHEDULABLE"
	if !res.Schedulable {
		verdict = "NOT SCHEDULABLE"
	}
	fmt.Printf("Two-layer analysis: %s\n", verdict)
	fmt.Printf("  G-Sched (Thm 1/2): ok=%v slack=%.4f horizon=%d checked=%d",
		res.Global.Schedulable, res.Global.Slack, res.Global.Horizon, res.Global.Checked)
	if !res.Global.Schedulable {
		fmt.Printf(" fails-at=%d", res.Global.FailsAt)
	}
	fmt.Println()
	vms := make([]int, 0, len(res.PerVM))
	for vmID := range res.PerVM {
		vms = append(vms, vmID)
	}
	sort.Ints(vms)
	for _, vmID := range vms {
		r := res.PerVM[vmID]
		fmt.Printf("  L-Sched vm%d (Thm 3/4): ok=%v slack=%.4f", vmID, r.Schedulable, r.Slack)
		if verbose {
			fmt.Printf(" horizon=%d checked=%d", r.Horizon, r.Checked)
		}
		if !r.Schedulable {
			fmt.Printf(" fails-at=%d", r.FailsAt)
		}
		fmt.Println()
	}
}

// demo returns the built-in example system.
func demo() inputFile {
	var in inputFile
	data := []byte(`{
	  "predefined": [
	    {"id":0,"period":16,"wcet":2,"deadline":16,"offset":0},
	    {"id":1,"period":32,"wcet":4,"deadline":32,"offset":8}
	  ],
	  "servers": [
	    {"vm":0,"period":8,"budget":2},
	    {"vm":1,"period":8,"budget":2}
	  ],
	  "tasks": [
	    {"id":0,"vm":0,"period":64,"wcet":4,"deadline":64},
	    {"id":1,"vm":0,"period":128,"wcet":8,"deadline":96},
	    {"id":2,"vm":1,"period":64,"wcet":6,"deadline":64}
	  ]
	}`)
	if err := json.Unmarshal(data, &in); err != nil {
		panic(err)
	}
	return in
}
