package hypervisor

import (
	"testing"

	"ioguard/internal/iodev"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestDriverDefaults(t *testing.T) {
	d := NewDriver(iodev.SPI)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.RequestLatency() != 1 || d.ResponseLatency() != 1 {
		t.Error("default translation costs should be 1 slot each way")
	}
	if d.ServiceSlots(64) != iodev.SPI.ServiceSlots(64) {
		t.Error("ServiceSlots should delegate to the controller model")
	}
}

func TestDriverValidate(t *testing.T) {
	bad := []Driver{
		{Controller: iodev.Model{}},
		{Controller: iodev.SPI, ReqTranslateWCET: -1},
		{Controller: iodev.SPI, RespTranslateWCET: -1},
		{Controller: iodev.SPI, DriverBankKB: -1},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d: invalid driver accepted", i)
		}
	}
}

func newTestHV(t *testing.T) (*Hypervisor, *Manager, *Manager) {
	t.Helper()
	h := NewHypervisor()
	mEth, err := New(Config{VMs: 2, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	mFlex, err := New(Config{VMs: 2, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add("ethernet", mEth, NewDriver(iodev.Ethernet)); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("flexray", mFlex, NewDriver(iodev.FlexRay)); err != nil {
		t.Fatal(err)
	}
	return h, mEth, mFlex
}

func TestHypervisorAddValidation(t *testing.T) {
	h := NewHypervisor()
	m, _ := New(Config{VMs: 1})
	if err := h.Add("", m, NewDriver(iodev.SPI)); err == nil {
		t.Error("empty device name accepted")
	}
	if err := h.Add("spi", m, Driver{}); err == nil {
		t.Error("invalid driver accepted")
	}
	if err := h.Add("spi", m, NewDriver(iodev.SPI)); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("spi", m, NewDriver(iodev.SPI)); err == nil {
		t.Error("duplicate device accepted")
	}
}

func TestHypervisorRouting(t *testing.T) {
	h, mEth, mFlex := newTestHV(t)
	tkE := &task.Sporadic{ID: 0, VM: 0, Device: "ethernet", Period: 100, WCET: 1, Deadline: 100}
	tkF := &task.Sporadic{ID: 1, VM: 1, Device: "flexray", Period: 100, WCET: 1, Deadline: 100}
	tkX := &task.Sporadic{ID: 2, VM: 0, Device: "uart", Period: 100, WCET: 1, Deadline: 100}
	h.Submit(0, task.NewJob(tkE, 0, 0))
	h.Submit(0, task.NewJob(tkF, 0, 0))
	h.Submit(0, task.NewJob(tkX, 0, 0))
	if h.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", h.Dropped())
	}
	for now := slot.Time(0); now < 5; now++ {
		h.Step(now)
	}
	if mEth.Stats().Completed != 1 || mFlex.Stats().Completed != 1 {
		t.Errorf("completions eth=%d flex=%d, want 1/1",
			mEth.Stats().Completed, mFlex.Stats().Completed)
	}
	st := h.Stats()
	if len(st) != 2 || st["ethernet"].Completed != 1 {
		t.Errorf("Stats = %v", st)
	}
}

func TestHypervisorAccessors(t *testing.T) {
	h, mEth, _ := newTestHV(t)
	if got, err := h.Manager("ethernet"); err != nil || got != mEth {
		t.Error("Manager lookup failed")
	}
	if _, err := h.Manager("nope"); err == nil {
		t.Error("unknown manager lookup accepted")
	}
	if d, err := h.Driver("flexray"); err != nil || d.Controller.Name != "flexray" {
		t.Error("Driver lookup failed")
	}
	if _, err := h.Driver("nope"); err == nil {
		t.Error("unknown driver lookup accepted")
	}
	devs := h.Devices()
	if len(devs) != 2 || devs[0] != "ethernet" || devs[1] != "flexray" {
		t.Errorf("Devices = %v", devs)
	}
}

func TestHypervisorPendingJobs(t *testing.T) {
	h, _, _ := newTestHV(t)
	tk := &task.Sporadic{ID: 0, VM: 0, Device: "ethernet", Period: 100, WCET: 50, Deadline: 100}
	h.Submit(0, task.NewJob(tk, 0, 0))
	h.Step(0)
	n := 0
	h.PendingJobs(func(j *task.Job) { n++ })
	if n != 1 {
		t.Errorf("pending = %d, want 1", n)
	}
}
