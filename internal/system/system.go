// Package system defines the common harness under which all four
// architectures of the evaluation (Sec. V) execute identical
// workloads: a System accepts released I/O jobs and is stepped by the
// global timer; a Collector records observed completions; Run drives
// one trial and scores it with the paper's metrics.
package system

import (
	"fmt"
	"math/rand"

	"ioguard/internal/faults"
	"ioguard/internal/metrics"
	"ioguard/internal/queue"
	"ioguard/internal/rtos"
	"ioguard/internal/sim"
	"ioguard/internal/slot"
	"ioguard/internal/task"
	"ioguard/internal/vm"
)

// System is one complete architecture under test.
type System interface {
	// Name identifies the system (and its configuration) in reports.
	Name() string
	// Arch returns the underlying architecture class.
	Arch() rtos.Arch
	// Residual returns the tasks an external release engine must
	// drive. Systems that pre-load tasks internally (the I/O-GUARD
	// P-channel) exclude those from the residual.
	Residual() task.Set
	// Submit delivers a job released by its VM at slot now.
	Submit(now slot.Time, j *task.Job)
	// Step advances the system by one slot; call once per slot.
	Step(now slot.Time)
	// Pending visits jobs still buffered inside the system.
	Pending(visit func(j *task.Job))
	// Dropped returns the count of jobs rejected by full queues.
	Dropped() int64
}

// Trial parameterizes one execution.
type Trial struct {
	VMs     int
	Tasks   task.Set
	Horizon slot.Time
	Seed    int64
	// Dense forces slot-by-slot stepping even when the system under
	// test implements the quiescence protocol (sim.Quiescer). The zero
	// value lets Run fast-forward over idle regions; both modes produce
	// byte-identical results — an invariant enforced by the equivalence
	// tests and the CI cmp job.
	Dense bool
	// Metrics selects the collector's recorder implementation: the
	// zero value (MetricsExact) buffers every completion and renders
	// byte-identical to the historical collector; MetricsStream keeps
	// collector memory independent of the horizon at the cost of
	// ε-approximate percentiles.
	Metrics MetricsMode
	// ShardWorkers fans a ShardedSystem's shards out across this many
	// OS threads within the trial (the epoch-barrier parallel executor,
	// runShardedParallel). Values < 2 — the zero value included — keep
	// the sequential laggard-first schedule on one thread; either way
	// results are byte-identical, an invariant enforced by the
	// three-way equivalence tests and the CI -race job.
	ShardWorkers int
	// DrainMin/DrainMax bound the sharded runner's adaptive release-
	// drain budget (how many release slots one horizon query may
	// materialize while hunting the querying shard's next submission).
	// Zero values pick the built-in bounds; either way the budget seeds
	// at the historical fixed chunk, and because it only bounds a
	// conservative horizon search, every setting produces byte-identical
	// results — the knobs trade fast-forward extents against release
	// buffering, never correctness.
	DrainMin int
	DrainMax int
	// Faults configures the deterministic fault-injection layer: release
	// jitter at the workload layer, drop/duplicate/delay at the
	// submission boundary. The zero value is a clean run — the fault
	// path is skipped entirely and output is identical to a build
	// without the layer. Every decision is a pure per-job hash of
	// (Faults.Seed, Seed), so faulted runs stay byte-identical at any
	// -workers / -shard-workers / -dense setting.
	Faults faults.Plan
	// Accuracy opts into the timing-accuracy recorder
	// (max(response − WCET, 0) per completion, TrialResult.Accuracy)
	// even for clean runs; any enabled fault plan implies it.
	Accuracy bool
}

// Builder constructs a system wired to a collector. It receives the
// full workload; the returned system's Residual() tells the runner
// which tasks to drive externally.
type Builder func(tr Trial, col *Collector) (System, error)

// expectedCompletions bounds how many jobs a trial can complete, for
// pre-sizing the collector: one job per task period within the
// horizon, plus the partial period.
func expectedCompletions(ts task.Set, horizon slot.Time) int {
	var n slot.Time
	for _, t := range ts {
		if t.Period > 0 {
			n += horizon/t.Period + 1
		}
	}
	return int(n)
}

// Run executes one trial: a deterministic VM fleet releases the
// system's residual tasks while the system steps, then the collector
// scores the outcome.
//
// Fast-forward picks the strongest protocol the system offers (unless
// tr.Dense forces the reference slot-by-slot loop):
//
//   - ShardedSystem: every shard owns a local virtual clock and
//     advances independently through its own busy/idle regions
//     (sim.ShardSet), so one busy device no longer throttles idle
//     peers; with tr.ShardWorkers ≥ 2 (and shards that support
//     completion redirection) the shards additionally fan out across
//     OS threads under the epoch-barrier executor;
//   - sim.Quiescer only: the legacy global fast-forward — the slot
//     loop skips regions where the *whole* system declares no work
//     and the fleet has no release due.
//
// Either way a skipped slot is one nothing observable happens in, so
// dense, global fast-forward, and sharded runs are byte-identical —
// an invariant enforced by the equivalence tests and the CI cmp.
func Run(build Builder, tr Trial) (*metrics.TrialResult, error) {
	if tr.Horizon <= 0 {
		return nil, fmt.Errorf("system: non-positive horizon %d", tr.Horizon)
	}
	if tr.DrainMin < 0 || tr.DrainMax < 0 {
		return nil, fmt.Errorf("system: negative drain bound (min %d, max %d)", tr.DrainMin, tr.DrainMax)
	}
	if tr.DrainMin > 0 && tr.DrainMax > 0 && tr.DrainMin > tr.DrainMax {
		return nil, fmt.Errorf("system: drain bounds inverted (min %d > max %d)", tr.DrainMin, tr.DrainMax)
	}
	if err := tr.Tasks.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Faults.Validate(); err != nil {
		return nil, err
	}
	col := NewSeededCollectorFor(tr.Metrics, expectedCompletions(tr.Tasks, tr.Horizon), tr.Seed)
	if tr.Accuracy || tr.Faults.Enabled() {
		col.TrackAccuracy()
	}
	fs := faults.New(tr.Faults, tr.Seed)
	if fs != nil {
		col.SetFaultStream(fs)
	}
	sys, err := build(tr, col)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(tr.Seed))
	fleet, err := vm.NewFleet(tr.VMs, sys.Residual(), rng)
	if err != nil {
		return nil, err
	}
	if fs != nil {
		fleet.SetReleaseJitter(fs.ReleaseJitter)
	}
	if ss, ok := sys.(ShardedSystem); ok && !tr.Dense {
		if shards := ss.Shards(); len(shards) > 0 {
			fallback := func(j *task.Job) { sys.Submit(j.Release, j) }
			if !runShardedParallel(shards, fleet, tr.Horizon, tr.ShardWorkers, fs, col, fallback) {
				runSharded(shards, fleet, tr.Horizon, newDrainPolicy(tr.DrainMin, tr.DrainMax), fs, fallback)
			}
			res := col.Result(sys, tr.Horizon)
			res.Released = fleet.Released()
			return res, nil
		}
	}
	q, _ := sys.(sim.Quiescer)
	sk, _ := sys.(sim.Skipper)
	// One closure for the whole trial: a per-slot closure would
	// allocate on every iteration of the hot loop.
	var now slot.Time
	submit := func(j *task.Job) { sys.Submit(now, j) }
	// Faulted trials wrap the submission boundary: every released job
	// draws its transport verdict, drops vanish, duplicates follow
	// their original, and delayed requests park in a due-ordered queue
	// until their delivery slot. Clean trials never take this branch —
	// the hot path below is byte-for-byte the historical loop.
	var delayed *queue.PQ[*task.Job]
	if fs != nil {
		delayed = queue.NewPQ[*task.Job](0)
		submit = func(j *task.Job) {
			a := fs.Transport(j)
			if a.Drop {
				return
			}
			due := j.Release + a.Delay
			if a.Delay > 0 {
				delayed.Push(due, j)
			} else {
				sys.Submit(now, j)
			}
			if a.Dup {
				d := fs.DupJob(j)
				if a.Delay > 0 {
					delayed.Push(due, d)
				} else {
					sys.Submit(now, d)
				}
			}
		}
	}
	for now = 0; now < tr.Horizon; now++ {
		if delayed != nil {
			// Deliver delayed requests first: a sharded run's buffers
			// order same-slot submissions by due then emission, which
			// puts earlier-released (delayed) jobs ahead of this slot's
			// fresh releases.
			for {
				_, due, dj, ok := delayed.Min()
				if !ok || due > now {
					break
				}
				delayed.PopMin()
				sys.Submit(now, dj)
			}
		}
		fleet.Release(now, submit)
		sys.Step(now)
		if tr.Dense || q == nil {
			continue
		}
		resume := now + 1
		nw := q.NextWork(resume)
		if nw <= resume {
			continue
		}
		next := tr.Horizon
		if nr := fleet.NextRelease(); nr < next {
			next = nr
		}
		if nw < next {
			next = nw
		}
		if delayed != nil {
			if _, due, _, ok := delayed.Min(); ok && due < next {
				next = due
			}
		}
		if next <= resume {
			continue
		}
		if sk != nil {
			sk.SkipTo(resume, next)
		}
		now = next - 1
	}
	res := col.Result(sys, tr.Horizon)
	res.Released = fleet.Released()
	return res, nil
}

// Sweep runs `trials` independent seeds of one configuration and
// aggregates them (the paper repeats each configuration 1000 times;
// callers choose how many fit their budget). It is the single-worker
// special case of ParallelSweep.
func Sweep(build Builder, tr Trial, trials int) (*metrics.Aggregate, error) {
	return ParallelSweep(build, tr, trials, 1)
}
