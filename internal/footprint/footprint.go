// Package footprint reproduces the software-overhead comparison of
// Fig. 6 (Sec. V-A): the run-time memory footprint — BSS, data and
// text segments — of the hypervisor/VMM, the OS kernel, and each I/O
// driver across the four evaluated architectures. The legacy kernel
// is fully featured but excludes I/O drivers, matching the paper's
// measurement setup.
package footprint

import (
	"fmt"
	"strings"

	"ioguard/internal/rtos"
)

// Row is one bar of Fig. 6: a (system, component) pair with its
// segment breakdown.
type Row struct {
	Arch      rtos.Arch
	Component string // "hypervisor", "kernel", or "driver:<device>"
	Seg       rtos.Segment
}

// Fig6Rows returns every bar of Fig. 6 in presentation order: for
// each architecture the hypervisor/VMM, the OS kernel, then one bar
// per I/O driver.
func Fig6Rows() ([]Row, error) {
	var rows []Row
	for _, a := range rtos.Arches() {
		rows = append(rows,
			Row{Arch: a, Component: "hypervisor", Seg: rtos.HypervisorFootprint(a)},
			Row{Arch: a, Component: "kernel", Seg: rtos.KernelFootprint(a)},
		)
		for _, dev := range rtos.DriverDevices() {
			seg, err := rtos.DriverFootprint(a, dev)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Arch: a, Component: "driver:" + dev, Seg: seg})
		}
	}
	return rows, nil
}

// CoreTotal returns the hypervisor+kernel footprint of an
// architecture in KB (the part of Fig. 6 the text quantifies: RT-Xen
// adds 61 KB / 129.8% over the legacy system).
func CoreTotal(a rtos.Arch) float64 {
	return rtos.HypervisorFootprint(a).Total() + rtos.KernelFootprint(a).Total()
}

// StackTotal returns the full software footprint in KB for a stack
// using the given devices' drivers.
func StackTotal(a rtos.Arch, devices []string) (float64, error) {
	total := CoreTotal(a)
	for _, dev := range devices {
		seg, err := rtos.DriverFootprint(a, dev)
		if err != nil {
			return 0, err
		}
		total += seg.Total()
	}
	return total, nil
}

// OverheadVsLegacy returns an architecture's hypervisor+kernel
// overhead relative to the legacy kernel, in KB and percent.
func OverheadVsLegacy(a rtos.Arch) (kb, pct float64) {
	legacy := CoreTotal(rtos.Legacy)
	kb = CoreTotal(a) - legacy
	if legacy > 0 {
		pct = kb / legacy * 100
	}
	return kb, pct
}

// Render formats Fig. 6 as an aligned text table (one row per
// system/component with the segment breakdown), which is what the
// experiment harness prints.
func Render() (string, error) {
	rows, err := Fig6Rows()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-16s %8s %8s %8s %8s\n", "system", "component", "text", "data", "bss", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-16s %8.1f %8.1f %8.1f %8.1f\n",
			r.Arch, r.Component, r.Seg.Text, r.Seg.Data, r.Seg.BSS, r.Seg.Total())
	}
	return b.String(), nil
}
