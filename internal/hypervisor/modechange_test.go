package hypervisor

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func TestLoadPreAtRuntime(t *testing.T) {
	m, err := New(Config{VMs: 1, Table: slot.NewTable(16), Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	var log completionLog
	m.OnComplete = log.hook()
	// Run a while with an empty system.
	for now := slot.Time(0); now < 20; now++ {
		m.Step(now)
	}
	spec := &task.Sporadic{ID: 1, Name: "hot", VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	for now := slot.Time(20); now < 100; now++ {
		m.Step(now)
	}
	// Releases resume at the next aligned point (24, 32, ...): the
	// task must not back-fill jobs from slots 0-16.
	if len(log.jobs) == 0 {
		t.Fatal("hot-loaded task never ran")
	}
	if log.jobs[0].Release < 20 {
		t.Errorf("first release %d back-filled before load time", log.jobs[0].Release)
	}
	if log.misses() != 0 {
		t.Errorf("hot-loaded task missed %d deadlines", log.misses())
	}
}

func TestLoadPreRejectsConflicts(t *testing.T) {
	tab := slot.NewTable(16)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	spec := &task.Sporadic{ID: 1, VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadPre(spec, 0, 0); err == nil {
		t.Error("duplicate id accepted")
	}
	bad := &task.Sporadic{ID: 2, VM: 0, Period: 0, WCET: 1, Deadline: 1}
	if err := m.LoadPre(bad, 1, 0); err == nil {
		t.Error("invalid spec accepted")
	}
	odd := &task.Sporadic{ID: 3, VM: 0, Period: 5, WCET: 1, Deadline: 5}
	if err := m.LoadPre(odd, 2, 0); err == nil {
		t.Error("non-dividing period accepted")
	}
	// Fill the remaining bandwidth so the next allocation fails and
	// must not leak slots.
	hog := &task.Sporadic{ID: 4, VM: 0, Period: 8, WCET: 6, Deadline: 8}
	if err := m.LoadPre(hog, 3, 0); err != nil {
		t.Fatal(err)
	}
	free := tab.FreeCount()
	full := &task.Sporadic{ID: 5, VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(full, 4, 0); err == nil {
		t.Error("infeasible load accepted")
	}
	if tab.FreeCount() != free {
		t.Errorf("failed load leaked table slots: %d → %d", free, tab.FreeCount())
	}
}

func TestUnloadPreFreesEverything(t *testing.T) {
	tab := slot.NewTable(16)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	spec := &task.Sporadic{ID: 1, VM: 0, Period: 8, WCET: 4, Deadline: 8}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	m.Step(0) // release one job
	if err := m.UnloadPre(0); err != nil {
		t.Fatal(err)
	}
	if tab.FreeCount() != 16 {
		t.Errorf("table not fully freed: %d", tab.FreeCount())
	}
	n := 0
	m.PendingJobs(func(*task.Job) { n++ })
	if n != 0 {
		t.Errorf("pending jobs leaked: %d", n)
	}
	if err := m.UnloadPre(0); err == nil {
		t.Error("double unload accepted")
	}
	// The freed slots are immediately available to the R-channel.
	rt := &task.Sporadic{ID: 9, VM: 0, Period: 100, WCET: 4, Deadline: 100}
	var log completionLog
	m.OnComplete = log.hook()
	m.Submit(1, task.NewJob(rt, 0, 1))
	for now := slot.Time(1); now < 10; now++ {
		m.Step(now)
	}
	if len(log.jobs) != 1 {
		t.Error("R-channel did not reclaim the freed slots")
	}
}

// TestUnloadPreCountsDroppedJobs is the drop-accounting regression
// test: retiring a task with queued jobs is a loss event, so both the
// manager-wide and the per-VM Dropped counters must cover every
// discarded pending job. On the pre-fix code the drain loop threw the
// jobs away silently and this test fails.
func TestUnloadPreCountsDroppedJobs(t *testing.T) {
	tab := slot.NewTable(16)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	spec := &task.Sporadic{ID: 1, Name: "doomed", VM: 0, Period: 16, WCET: 2, Deadline: 16}
	if err := m.LoadPre(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Step slot 0 to release the first job, then starve the P-channel
	// by never stepping a slot the task owns: jobs accumulate in the
	// pending queue and can never finish (WCET 2, at most one tick).
	m.Step(0)
	for now := slot.Time(1); now < 34; now++ {
		if tab.Owner(now) == 0 {
			continue
		}
		m.Step(now)
	}
	pending := 0
	m.PendingJobs(func(*task.Job) { pending++ })
	if pending != 2 {
		t.Fatalf("setup: %d pending jobs, want 2 (releases at 0 and 16)", pending)
	}
	if got := m.Stats(); got.Dropped != 0 || got.Completed != 0 {
		t.Fatalf("setup: dropped=%d completed=%d before unload", got.Dropped, got.Completed)
	}
	if err := m.UnloadPre(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Dropped; got != int64(pending) {
		t.Errorf("Stats().Dropped = %d after unload, want %d (every discarded pending job)", got, pending)
	}
	vs, err := m.VMStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Dropped != int64(pending) {
		t.Errorf("VMStats(0).Dropped = %d after unload, want %d", vs.Dropped, pending)
	}
	left := 0
	m.PendingJobs(func(*task.Job) { left++ })
	if left != 0 {
		t.Errorf("%d pending jobs survived the unload", left)
	}
}

// TestReloadRecyclesTaskIDCleanly pins the classification of
// completions across a load-unload-reload cycle that immediately
// recycles the TaskID: completions stay attributed to the *Sporadic
// that released them (jobs hold the spec pointer, not the table id),
// the retired task's discarded job is counted as dropped and never
// surfaces as a completion, and the reloaded task neither back-fills
// releases nor inherits its predecessor's backlog.
func TestReloadRecyclesTaskIDCleanly(t *testing.T) {
	tab := slot.NewTable(16)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	var log completionLog
	m.OnComplete = log.hook()
	alpha := &task.Sporadic{ID: 1, Name: "alpha", VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.LoadPre(alpha, 0, 0); err != nil {
		t.Fatal(err)
	}
	for now := slot.Time(0); now < 16; now++ {
		m.Step(now)
	}
	alphaDone := len(log.jobs)
	if alphaDone != 2 {
		t.Fatalf("alpha completed %d jobs in one hyper-period, want 2", alphaDone)
	}
	// Slot 16 releases alpha's third job (WCET 2: one tick at most, so
	// it is still pending) — unload with that job in flight.
	m.Step(16)
	if err := m.UnloadPre(0); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("table after unload: %v", err)
	}
	if got := m.Stats().Dropped; got != 1 {
		t.Fatalf("Stats().Dropped = %d, want 1 (alpha's in-flight job)", got)
	}
	// Recycle TaskID 0 immediately for a different spec.
	beta := &task.Sporadic{ID: 2, Name: "beta", VM: 0, Period: 16, WCET: 4, Deadline: 16}
	if err := m.LoadPre(beta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("table after reload: %v", err)
	}
	for now := slot.Time(17); now < 64; now++ {
		m.Step(now)
	}
	var alphaAfter, betaDone int
	for i, j := range log.jobs {
		switch j.Task {
		case alpha:
			if i >= alphaDone {
				alphaAfter++
			}
		case beta:
			betaDone++
			if j.Release < 17 {
				t.Errorf("beta release %d back-filled from before its load", j.Release)
			}
		default:
			t.Errorf("completion %d attributed to unknown spec %q", i, j.Task.Name)
		}
	}
	if alphaAfter != 0 {
		t.Errorf("%d completions attributed to the retired alpha after its unload", alphaAfter)
	}
	if betaDone == 0 {
		t.Error("recycled TaskID never completed a beta job")
	}
	if got := m.Stats(); got.Completed != int64(len(log.jobs)) {
		t.Errorf("Stats().Completed = %d, log has %d", got.Completed, len(log.jobs))
	}
	if log.misses() != 0 {
		t.Errorf("%d deadline misses across the reload cycle", log.misses())
	}
}

// TestModeChangeUnderLoad drives a GearV/T-Visor-style criticality
// switch on a live manager: R-channel traffic flows throughout while a
// second pre-defined task is hot-loaded, retired, and hot-loaded again
// with a different spec under the same TaskID. The table must pass the
// structural audit after every mode change, no run-time job may be
// lost, and the table must return to the base allocation at the end.
func TestModeChangeUnderLoad(t *testing.T) {
	tab := slot.NewTable(32)
	m, _ := New(Config{VMs: 2, Table: tab, Mode: DirectEDF})
	var log completionLog
	m.OnComplete = log.hook()
	base := &task.Sporadic{ID: 1, Name: "base", VM: 0, Period: 16, WCET: 2, Deadline: 16}
	if err := m.LoadPre(base, 0, 0); err != nil {
		t.Fatal(err)
	}
	baseFree := tab.FreeCount()
	rt := &task.Sporadic{ID: 10, Name: "rt", VM: 1, Period: 100, WCET: 1, Deadline: 100}
	hiA := &task.Sporadic{ID: 2, Name: "hi-a", VM: 0, Period: 16, WCET: 4, Deadline: 16}
	hiB := &task.Sporadic{ID: 3, Name: "hi-b", VM: 1, Period: 32, WCET: 6, Deadline: 32}
	submitted := 0
	for now := slot.Time(0); now < 200; now++ {
		switch now {
		case 40:
			if err := m.LoadPre(hiA, 1, 0); err != nil {
				t.Fatalf("slot %d: %v", now, err)
			}
		case 96:
			if err := m.UnloadPre(1); err != nil {
				t.Fatalf("slot %d: %v", now, err)
			}
		case 120:
			if err := m.LoadPre(hiB, 1, 0); err != nil {
				t.Fatalf("slot %d: %v", now, err)
			}
		}
		if now == 40 || now == 96 || now == 120 {
			if err := tab.CheckInvariants(); err != nil {
				t.Fatalf("table after mode change at slot %d: %v", now, err)
			}
		}
		if now%8 == 3 && now < 160 {
			m.Submit(now, task.NewJob(rt, submitted, now))
			submitted++
		}
		m.Step(now)
	}
	if err := m.UnloadPre(1); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("table after final unload: %v", err)
	}
	if tab.FreeCount() != baseFree {
		t.Errorf("free slots %d after retiring the hot tasks, want %d", tab.FreeCount(), baseFree)
	}
	rtDone := 0
	for _, j := range log.jobs {
		if j.Task == rt {
			rtDone++
		}
	}
	if rtDone != submitted {
		t.Errorf("R-channel completed %d of %d submitted jobs across the mode changes", rtDone, submitted)
	}
	if log.misses() != 0 {
		t.Errorf("%d deadline misses under mode changes", log.misses())
	}
}

func TestModeChangeCycle(t *testing.T) {
	// Load/unload repeatedly; table must return to fully free.
	tab := slot.NewTable(32)
	m, _ := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	for cycle := 0; cycle < 10; cycle++ {
		spec := &task.Sporadic{ID: cycle, VM: 0, Period: 16, WCET: 3, Deadline: 16}
		if err := m.LoadPre(spec, slot.TaskID(cycle), slot.Time(cycle)%16); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := m.UnloadPre(slot.TaskID(cycle)); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if tab.FreeCount() != 32 {
		t.Errorf("table leaked slots across mode changes: free=%d", tab.FreeCount())
	}
}
