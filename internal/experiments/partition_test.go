package experiments

import (
	"testing"

	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// TestPartitionEquivalence extends the dense/fast-forward/parallel
// byte-identity contract to the BS|PART baseline, clean and under the
// fault storm: windows gate service on absolute slots, so the shard
// clocks must land on exactly the dense schedule at any worker count.
func TestPartitionEquivalence(t *testing.T) {
	build := Builders()["BS|PART"]
	for _, util := range []float64{0.5, 0.9} {
		ts, err := workload.Generate(workload.Config{VMs: 4, TargetUtil: util, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		base := system.Trial{VMs: 4, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 17}
		faulted := base
		faulted.Faults = stormPlan(5)
		for _, tr := range []system.Trial{base, faulted} {
			dense, ff := runBoth(t, build, tr)
			requireEqual(t, dense, ff)
			for _, workers := range workerCounts() {
				requireEqual(t, dense, runParallel(t, build, tr, workers))
			}
			if dense.Completed == 0 {
				t.Fatal("partition baseline completed nothing")
			}
		}
	}
}
