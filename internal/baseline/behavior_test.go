package baseline

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// TestRTXenVMMSerializes: the software hypervisor processes one
// backend operation at a time, so two simultaneous requests from
// different VMs leave the VMM at least VMMRequest slots apart — even
// though they target different devices.
func TestRTXenVMMSerializes(t *testing.T) {
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "ethernet", Period: 10000, WCET: 5, Deadline: 10000},
		{ID: 1, VM: 1, Kind: task.Safety, Device: "flexray", Period: 10000, WCET: 5, Deadline: 10000},
	}
	col := &system.Collector{}
	// Quantum 1 keeps VCPU windows from dominating the measurement.
	x, err := NewRTXen(2, ts, col, 1)
	if err != nil {
		t.Fatal(err)
	}
	x.Submit(0, task.NewJob(&ts[0], 0, 0))
	x.Submit(0, task.NewJob(&ts[1], 0, 0))
	for now := slot.Time(0); now < 500; now++ {
		x.Step(now)
	}
	if col.Completed() != 2 {
		t.Fatalf("completions = %d", col.Completed())
	}
	var at []slot.Time
	col.Each(func(j *task.Job, t slot.Time) { at = append(at, t) })
	gap := at[1] - at[0]
	if gap < 0 {
		gap = -gap
	}
	if gap < x.path.VMMRequest {
		t.Errorf("completions %d apart; VMM serialization should force ≥ %d", gap, x.path.VMMRequest)
	}
}

// TestBlueVisorRoundRobinStarvationFree: even with one VM flooding,
// every VM's head-of-line op is served within one round-robin cycle.
func TestBlueVisorRoundRobinStarvationFree(t *testing.T) {
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Synthetic, Device: "spi", Period: 1000, WCET: 10, Deadline: 1000},
		{ID: 1, VM: 1, Kind: task.Safety, Device: "spi", Period: 1000, WCET: 10, Deadline: 1000},
	}
	col := &system.Collector{}
	b, err := NewBlueVisor(2, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	// VM0 floods 10 ops; VM1 submits one.
	for i := 0; i < 10; i++ {
		b.Submit(0, task.NewJob(&ts[0], i, 0))
	}
	b.Submit(0, task.NewJob(&ts[1], 0, 0))
	var victimDone slot.Time
	for now := slot.Time(0); now < 500; now++ {
		b.Step(now)
		if victimDone == 0 {
			col.Each(func(j *task.Job, at slot.Time) {
				if j.Task.ID == 1 {
					victimDone = at
				}
			})
		}
	}
	if victimDone == 0 {
		t.Fatal("victim never completed")
	}
	// Round robin: the victim waits at most one flood op + its own
	// service, not ten.
	if victimDone > 60 {
		t.Errorf("victim finished at %d; round robin should bound its wait to ~2 ops", victimDone)
	}
}

// TestLegacyFIFOStarvesUnderFlood contrasts the same scenario on the
// legacy global FIFO: the victim waits behind the entire flood.
func TestLegacyFIFOStarvesUnderFlood(t *testing.T) {
	ts := task.Set{
		{ID: 0, VM: 0, Kind: task.Synthetic, Device: "spi", Period: 1000, WCET: 10, Deadline: 1000},
		{ID: 1, VM: 1, Kind: task.Safety, Device: "spi", Period: 1000, WCET: 10, Deadline: 1000},
	}
	col := &system.Collector{}
	l, err := NewLegacy(2, ts, col)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Submit(0, task.NewJob(&ts[0], i, 0))
	}
	l.Submit(0, task.NewJob(&ts[1], 0, 0))
	var victimDone slot.Time
	for now := slot.Time(0); now < 2000; now++ {
		l.Step(now)
	}
	col.Each(func(j *task.Job, at slot.Time) {
		if j.Task.ID == 1 {
			victimDone = at
		}
	})
	if victimDone == 0 {
		t.Fatal("victim never completed")
	}
	// Ten flood ops × (10 service + 3 setup) ≈ 130 slots of blocking
	// before the victim can even start.
	if victimDone < 100 {
		t.Errorf("victim finished at %d; global FIFO should have made it wait out the flood", victimDone)
	}
}

// TestBaselineStatsNonNegative sanity-checks the exported counters on
// a busy run.
func TestBaselineStatsNonNegative(t *testing.T) {
	ts := lightWorkload()
	col := &system.Collector{}
	l, _ := NewLegacy(2, ts, col)
	for i := 0; i < 5; i++ {
		l.Submit(0, task.NewJob(&ts[0], i, 0))
	}
	for now := slot.Time(0); now < 3000; now++ {
		l.Step(now)
	}
	st := l.MeshStats()
	if st.Injected <= 0 || st.Delivered <= 0 || st.Forwarded < st.Delivered {
		t.Errorf("mesh stats inconsistent: %+v", st)
	}
	if st.AvgDelay() <= 0 || st.MaxQueued < 0 {
		t.Errorf("derived stats inconsistent: %+v", st)
	}
}
