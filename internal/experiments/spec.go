// System-spec resolution and single-trial rendering shared by the
// batch CLIs and the trial server. ioguard-sim historically owned both
// (its -system flag and its printed metrics block); the server must
// execute and render trials *byte-identically* to the CLI, so the
// logic lives here and both import it.

package experiments

import (
	"fmt"
	"strings"

	"ioguard/internal/baseline"
	"ioguard/internal/core"
	"ioguard/internal/hypervisor"
	"ioguard/internal/metrics"
	"ioguard/internal/system"
)

// BuilderFor resolves a CLI system spec — legacy | rtxen | bluevisor |
// ioguard-<0..100> — to a builder with ioguard-sim's semantics: the
// I/O-GUARD variants run the DirectEDF G-Sched with unbounded pools
// (the case-study Builders() instead apply the prototype's bounded
// pool depth). The server resolves request specs through the same
// function, which is what makes a server-executed trial byte-identical
// to the CLI at the same seed and worker counts.
func BuilderFor(name string) (system.Builder, error) {
	switch {
	case name == "legacy":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewLegacy(tr.VMs, tr.Tasks, col)
		}, nil
	case name == "rtxen":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewRTXen(tr.VMs, tr.Tasks, col, 0)
		}, nil
	case name == "bluevisor":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewBlueVisor(tr.VMs, tr.Tasks, col)
		}, nil
	case name == "partition":
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewPartition(tr.VMs, tr.Tasks, col)
		}, nil
	case strings.HasPrefix(name, "ioguard-"):
		var pct int
		if _, err := fmt.Sscanf(name, "ioguard-%d", &pct); err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("bad I/O-GUARD spec %q (want ioguard-<0..100>)", name)
		}
		frac := float64(pct) / 100
		return func(tr system.Trial, col *system.Collector) (system.System, error) {
			return core.New(core.Config{
				VMs:         tr.VMs,
				PreloadFrac: frac,
				Mode:        hypervisor.DirectEDF,
			}, tr.Tasks, col)
		}, nil
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}

// SystemSpecs lists the spec spellings BuilderFor accepts, for help
// strings and request validation errors.
func SystemSpecs() string { return "legacy|rtxen|bluevisor|partition|ioguard-<pct>" }

// RenderTrial prints one trial's metrics block exactly as ioguard-sim
// does — the byte-for-byte contract the server determinism test pins.
func RenderTrial(name string, res *metrics.TrialResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system: %s\n", name)
	fmt.Fprintf(&b, "  completed:        %d jobs (%d bytes)\n", res.Completed, res.BytesServed)
	fmt.Fprintf(&b, "  critical misses:  %d\n", res.CriticalMisses)
	fmt.Fprintf(&b, "  synthetic misses: %d\n", res.OtherMisses)
	fmt.Fprintf(&b, "  unfinished:       %d   dropped: %d\n", res.Unfinished, res.Dropped)
	fmt.Fprintf(&b, "  success:          %v\n", res.Success())
	fmt.Fprintf(&b, "  throughput:       %.3f MB/s\n", res.ThroughputMBps())
	fmt.Fprintf(&b, "  response (slots): %s\n", res.Response.String())
	// The lines below exist only on opted-in trials, so every
	// historical render stays byte-identical.
	if res.Accuracy != nil {
		fmt.Fprintf(&b, "  accuracy (slots): %s\n", res.Accuracy.String())
	}
	if f := res.Faults; f != nil {
		fmt.Fprintf(&b, "  faults injected:  jittered=%d dropped=%d duplicated=%d delayed=%d\n",
			f.Jittered, f.Dropped, f.Duplicated, f.Delayed)
		fmt.Fprintf(&b, "  fault effects:    dup-delivered=%d faulted-misses=%d\n",
			f.DupDelivered, f.FaultedMisses)
	}
	return b.String()
}

// RenderAggregate prints a sweep's aggregate block exactly as
// ioguard-sim's -trials N mode does. The response/tardiness lines are
// the cross-trial distributions: exact in -metrics exact, fold-exact
// merged sketches (within ⌈εN⌉ ranks) in -metrics stream, and a
// per-trial-only note in -metrics stream-gk, whose GK summaries
// cannot merge. Each mode renders deterministically for any worker
// count — the fold order is trial order.
func RenderAggregate(name string, agg *metrics.Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system: %s (%d trials)\n", name, agg.Trials)
	fmt.Fprintf(&b, "  success ratio:    %.1f%% (%d/%d trials)\n", 100*agg.SuccessRatio(), agg.Successes, agg.Trials)
	fmt.Fprintf(&b, "  throughput MB/s:  mean=%.3f sd=%.3f min=%.3f max=%.3f\n",
		agg.Throughput.Mean(), agg.Throughput.StdDev(), agg.Throughput.Min(), agg.Throughput.Max())
	fmt.Fprintf(&b, "  critical misses:  mean=%.1f max=%.0f per trial\n", agg.Misses.Mean(), agg.Misses.Max())
	fmt.Fprintf(&b, "  response (slots): %s\n", agg.Response.String())
	fmt.Fprintf(&b, "  tardiness:        %s\n", agg.Tardiness.String())
	// Fault lines appear only when trials carried a fault summary, so
	// clean sweeps render exactly the historical block.
	if agg.FaultTrials > 0 {
		fmt.Fprintf(&b, "  faulted trials:   %d/%d\n", agg.FaultTrials, agg.Trials)
		fmt.Fprintf(&b, "  faults injected:  jittered=%.1f dropped=%.1f duplicated=%.1f delayed=%.1f per trial\n",
			agg.FaultJittered.Mean(), agg.FaultDropped.Mean(), agg.FaultDuplicated.Mean(), agg.FaultDelayed.Mean())
		fmt.Fprintf(&b, "  fault effects:    dup-delivered=%.1f faulted-misses=%.1f per trial\n",
			agg.DupDelivered.Mean(), agg.FaultedMisses.Mean())
		fmt.Fprintf(&b, "  accuracy (slots): %s\n", agg.Accuracy.String())
	}
	return b.String()
}
