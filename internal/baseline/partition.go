// BS|PART: Jailhouse-style static hardware partitioning (Ramsauer et
// al., "Look Mum, no VM Exits!" — see PAPERS.md). Each device's time
// is carved into fixed per-VM windows assigned round-robin over a
// static cycle; a VM's I/O is served only inside its own windows.
// There is no VMM on the data path and no interference between VMs —
// but also *no slack reclamation*: a window whose owner is idle is
// wasted even while other VMs queue, and an operation that outlives
// its window freezes until the owner's next turn. The baseline
// isolates exactly the property I/O-GUARD's two-channel design keeps
// without paying for it: partitioning buys isolation by forfeiting
// work conservation.
package baseline

import (
	"fmt"
	"sync/atomic"

	"ioguard/internal/queue"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// partitionWindowSlots is the width of one VM's device window. The
// static cycle is vms*partitionWindowSlots; slot t belongs to VM
// (t/window) mod vms on every device (Jailhouse configures one global
// static schedule, not per-device ones).
const partitionWindowSlots slot.Time = 32

// partSetupSlots is the per-operation controller setup inside a
// window; the partitioned controller is as thin as BlueVisor's
// hardware translator.
const partSetupSlots slot.Time = 2

// partShard is one device under static partitioning: the bounded
// partition-trap path (a delay queue keyed by arrival slot) in front
// of per-VM queues that are only served inside the owning VM's
// windows. Devices share nothing, so each shard may advance on its
// own virtual clock.
type partShard struct {
	owner   *PartitionSystem
	dev     string
	pending *queue.PQ[*task.Job] // keyed by queue-arrival slot
	perVM   []*queue.FIFO[*task.Job]
	// inProg[vm] is the operation VM vm has started but not finished.
	// It survives window switches frozen — the partitioned controller
	// neither preempts nor migrates it, and no other VM may use the
	// residual window time (the no-reclamation property under test).
	inProg []*task.Job
	// dropped counts this shard's rejections (jobs naming a VM outside
	// the static configuration — Jailhouse has no cell to run them).
	// Shard-confined; summed by PartitionSystem.Dropped.
	dropped int64
	// sink, when the parallel runner installs one, receives this
	// shard's completions instead of the owner's collector.
	sink func(j *task.Job, at slot.Time)
}

// Devices returns the single device this shard owns.
func (s *partShard) Devices() []string { return []string{s.dev} }

// Submit forwards the job over the partition trap into the device's
// arrival queue.
func (s *partShard) Submit(now slot.Time, j *task.Job) {
	s.pending.Push(now+s.owner.path.Request, j)
}

// ownerAt returns the VM owning slot t of the static cycle.
func (s *partShard) ownerAt(t slot.Time) int {
	return int((t / partitionWindowSlots) % slot.Time(len(s.perVM)))
}

// nextOwnedSlot returns the earliest slot ≥ now inside one of vm's
// windows.
func (s *partShard) nextOwnedSlot(vm int, now slot.Time) slot.Time {
	cycle := partitionWindowSlots * slot.Time(len(s.perVM))
	pos := now % cycle
	start := partitionWindowSlots * slot.Time(vm)
	switch {
	case pos >= start && pos < start+partitionWindowSlots:
		return now
	case pos < start:
		return now + (start - pos)
	default:
		return now + (cycle - pos) + start
	}
}

// Step admits due jobs to their VM queues and serves the slot owner's
// queue — and only it. Admission is a catch-up loop over everything
// due ≤ now, so skipped idle slots admit in the same (arrival,
// submission) order a dense run would.
func (s *partShard) Step(now slot.Time) {
	for {
		_, at, j, ok := s.pending.Min()
		if !ok || at > now {
			break
		}
		s.pending.PopMin()
		vm := j.Task.VM
		if vm < 0 || vm >= len(s.perVM) {
			s.dropped++
			continue
		}
		s.perVM[vm].Push(j)
	}
	vm := s.ownerAt(now)
	cur := s.inProg[vm]
	if cur == nil {
		if j, ok := s.perVM[vm].Pop(); ok {
			j.Remaining += partSetupSlots
			cur = j
			s.inProg[vm] = j
		}
	}
	if cur == nil {
		return // owner idle: the window slot is wasted, never lent out
	}
	cur.Tick(now)
	if cur.Done() {
		s.inProg[vm] = nil
		s.complete(cur, now+1)
	}
}

// complete delivers one finished operation — response-path cost added
// — to the redirected sink when one is installed, else the collector.
func (s *partShard) complete(j *task.Job, finished slot.Time) {
	at := finished + s.owner.path.Response
	if s.sink != nil {
		s.sink(j, at)
		return
	}
	if s.owner.col != nil {
		s.owner.col.Complete(j, at)
	}
}

// SetCompletionSink implements system.ParallelShard.
func (s *partShard) SetCompletionSink(sink func(j *task.Job, at slot.Time)) {
	s.sink = sink
}

// NextWork implements the sim.Quiescer protocol on the shard's local
// clock: the earliest slot some VM with pending or frozen work owns,
// or the next queue arrival. Arrival wakeups are conservative — the
// arriving VM's window may be later — but admission is order-stable,
// so the extra step changes nothing observable.
func (s *partShard) NextWork(now slot.Time) slot.Time {
	next := slot.Never
	for vm := range s.perVM {
		if s.inProg[vm] == nil && s.perVM[vm].Len() == 0 {
			continue
		}
		t := s.nextOwnedSlot(vm, now)
		if t <= now {
			return now
		}
		if t < next {
			next = t
		}
	}
	if _, at, _, ok := s.pending.Min(); ok {
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
	}
	return next
}

// pendingJobs visits jobs on the trap path, queued, or frozen
// mid-service.
func (s *partShard) pendingJobs(visit func(j *task.Job)) {
	s.pending.Each(func(_ queue.Handle, _ slot.Time, j *task.Job) { visit(j) })
	for vm, q := range s.perVM {
		if s.inProg[vm] != nil {
			visit(s.inProg[vm])
		}
		q.Each(visit)
	}
}

// PartitionSystem is the BS|PART baseline: one partShard per device,
// all following the same static window cycle.
type PartitionSystem struct {
	tasks  task.Set
	path   rtos.PathCost
	col    *system.Collector
	shards []*partShard
	byDev  map[string]*partShard
	// dropped counts jobs for unknown devices. Atomic for the same
	// reason as BlueVisor's: Submit is the sharded runners' fallback
	// path and may interleave with concurrent Dropped snapshots.
	dropped atomic.Int64
}

var _ system.System = (*PartitionSystem)(nil)
var _ system.ShardedSystem = (*PartitionSystem)(nil)
var _ system.ParallelShard = (*partShard)(nil)

// NewPartition builds the static-partitioning baseline.
func NewPartition(vms int, ts task.Set, col *system.Collector) (*PartitionSystem, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("baseline: partition needs at least one VM")
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	p := &PartitionSystem{
		tasks: ts,
		path:  rtos.Costs(rtos.Partition),
		col:   col,
		byDev: make(map[string]*partShard),
	}
	for _, dev := range devicesOf(ts) {
		sh := &partShard{
			owner:   p,
			dev:     dev,
			pending: queue.NewPQ[*task.Job](0),
			inProg:  make([]*task.Job, vms),
		}
		for i := 0; i < vms; i++ {
			sh.perVM = append(sh.perVM, queue.NewFIFO[*task.Job](0))
		}
		p.shards = append(p.shards, sh)
		p.byDev[dev] = sh
	}
	return p, nil
}

// Name returns "BS|PART".
func (p *PartitionSystem) Name() string { return rtos.Partition.String() }

// Arch returns rtos.Partition.
func (p *PartitionSystem) Arch() rtos.Arch { return rtos.Partition }

// Residual returns the full workload.
func (p *PartitionSystem) Residual() task.Set { return p.tasks }

// Submit routes the job to its device's shard (jobs for unknown
// devices are dropped — no cell is configured to serve them).
func (p *PartitionSystem) Submit(now slot.Time, j *task.Job) {
	sh, ok := p.byDev[j.Task.Device]
	if !ok {
		p.dropped.Add(1)
		return
	}
	sh.Submit(now, j)
}

// Step advances every shard one slot, in sorted device order.
func (p *PartitionSystem) Step(now slot.Time) {
	for _, sh := range p.shards {
		sh.Step(now)
	}
}

// NextWork implements the sim.Quiescer protocol: the earliest shard
// horizon.
func (p *PartitionSystem) NextWork(now slot.Time) slot.Time {
	next := slot.Never
	for _, sh := range p.shards {
		nw := sh.NextWork(now)
		if nw <= now {
			return now
		}
		if nw < next {
			next = nw
		}
	}
	return next
}

// Shards implements system.ShardedSystem: one shard per device in
// sorted device order. Partitioned devices share only the slot clock,
// so the per-device decoupling is exact.
func (p *PartitionSystem) Shards() []system.Shard {
	out := make([]system.Shard, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh
	}
	return out
}

// Pending visits jobs on trap paths, queued, or frozen mid-service.
func (p *PartitionSystem) Pending(visit func(j *task.Job)) {
	for _, sh := range p.shards {
		sh.pendingJobs(visit)
	}
}

// Dropped returns jobs lost at unknown devices or unconfigured VMs.
func (p *PartitionSystem) Dropped() int64 {
	n := p.dropped.Load()
	for _, sh := range p.shards {
		n += sh.dropped
	}
	return n
}
