// ASCII plots of supply vs. demand curves — the visual form of the
// Theorem 1/3 conditions. A configuration is schedulable exactly when
// the demand staircase never rises above the supply curve; the plot
// makes the binding window lengths visible.
package analysis

import (
	"fmt"
	"strings"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// plot renders two integer series (supply, demand) over t ∈ [0, upTo]
// as a fixed-height ASCII chart: 's' marks supply, 'd' demand, 'x'
// where they coincide.
func plot(title string, upTo slot.Time, height int, supply, demand func(slot.Time) slot.Time) string {
	if upTo < 1 {
		upTo = 1
	}
	if height <= 0 {
		height = 12
	}
	n := int(upTo) + 1
	sv := make([]slot.Time, n)
	dv := make([]slot.Time, n)
	var max slot.Time = 1
	for t := 0; t < n; t++ {
		sv[t] = supply(slot.Time(t))
		dv[t] = demand(slot.Time(t))
		if sv[t] > max {
			max = sv[t]
		}
		if dv[t] > max {
			max = dv[t]
		}
	}
	// Downsample columns to at most 72.
	cols := n
	if cols > 72 {
		cols = 72
	}
	colOf := func(t int) int { return t * cols / n }
	rowOf := func(v slot.Time) int { return int(int64(v) * int64(height-1) / int64(max)) }
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for t := 0; t < n; t++ {
		c := colOf(t)
		rs, rd := rowOf(sv[t]), rowOf(dv[t])
		set := func(r int, ch byte) {
			cur := grid[height-1-r][c]
			switch {
			case cur == ' ':
				grid[height-1-r][c] = ch
			case cur != ch:
				grid[height-1-r][c] = 'x'
			}
		}
		set(rs, 's')
		set(rd, 'd')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (s=supply d=demand x=both; y:0..%d, t:0..%d)\n", title, max, upTo)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "\n")
	return b.String()
}

// PlotGSched renders sbf(σ,t) against Σ dbf(Γi,t) up to window upTo.
func PlotGSched(sb *SupplyBound, servers []task.Server, upTo slot.Time) string {
	return plot("G-Sched: table supply vs server demand", upTo, 12,
		sb.At,
		func(t slot.Time) slot.Time {
			var d slot.Time
			for _, g := range servers {
				d += ServerDBF(g, t)
			}
			return d
		})
}

// PlotLSched renders sbf(Γ,t) against Σ dbf(τk,t) up to window upTo.
func PlotLSched(g task.Server, ts task.Set, upTo slot.Time) string {
	return plot(fmt.Sprintf("L-Sched vm%d: server supply vs task demand", g.VM), upTo, 12,
		func(t slot.Time) slot.Time { return ServerSBF(g, t) },
		func(t slot.Time) slot.Time { return SetDBF(ts, t) })
}
