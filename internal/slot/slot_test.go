package slot

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{18, 12, 6},
		{7, 13, 1},
		{-12, 18, 6},
		{12, -18, 6},
		{100, 100, 100},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{7, 13, 91},
		{10, 10, 10},
		{1, 9, 9},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMOverflowSaturates(t *testing.T) {
	if got := LCM(Never-1, Never-2); got != Never {
		t.Errorf("LCM near max = %d, want Never", got)
	}
}

func TestLCMAll(t *testing.T) {
	if got := LCMAll(); got != 0 {
		t.Errorf("LCMAll() = %d, want 0", got)
	}
	if got := LCMAll(4, 6, 10); got != 60 {
		t.Errorf("LCMAll(4,6,10) = %d, want 60", got)
	}
	if got := LCMAll(5); got != 5 {
		t.Errorf("LCMAll(5) = %d, want 5", got)
	}
}

func TestGCDLCMProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Time(a), Time(b)
		if x == 0 || y == 0 {
			return LCM(x, y) == 0
		}
		g, l := GCD(x, y), LCM(x, y)
		ax, ay := x, y
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		return g*l == ax*ay && l%ax == 0 && l%ay == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTable(t *testing.T) {
	tab := NewTable(10)
	if tab.Len() != 10 || tab.FreeCount() != 10 {
		t.Fatalf("NewTable(10): len=%d free=%d", tab.Len(), tab.FreeCount())
	}
	if tab.Utilization() != 0 {
		t.Errorf("empty table utilization = %v, want 0", tab.Utilization())
	}
	if !tab.IsFree(3) || !tab.IsFree(13) || !tab.IsFree(-7) {
		t.Error("all slots of a new table should be free (mod H)")
	}
}

func TestNewTableNegative(t *testing.T) {
	tab := NewTable(-5)
	if tab.Len() != 0 {
		t.Errorf("NewTable(-5).Len() = %d, want 0", tab.Len())
	}
}

func TestAssignClear(t *testing.T) {
	tab := NewTable(8)
	if err := tab.Assign(3, 7); err != nil {
		t.Fatal(err)
	}
	if tab.Owner(3) != 7 || tab.Owner(11) != 7 || tab.Owner(-5) != 7 {
		t.Error("Owner should wrap mod H")
	}
	if tab.FreeCount() != 7 {
		t.Errorf("free = %d, want 7", tab.FreeCount())
	}
	if err := tab.Assign(11, 2); err == nil {
		t.Error("double assign (mod H) should fail")
	}
	if err := tab.Assign(4, -1); err == nil {
		t.Error("assign with negative id should fail")
	}
	tab.Clear(11)
	if !tab.IsFree(3) || tab.FreeCount() != 8 {
		t.Error("Clear should free the slot mod H")
	}
	tab.Clear(3) // double clear is a no-op
	if tab.FreeCount() != 8 {
		t.Error("double Clear changed free count")
	}
}

func TestAssignEmptyTable(t *testing.T) {
	tab := NewTable(0)
	if err := tab.Assign(0, 1); err == nil {
		t.Error("assign on empty table should fail")
	}
	tab.Clear(0) // must not panic
	if tab.Owner(5) != Free {
		t.Error("empty table owner should be Free")
	}
}

func TestUtilization(t *testing.T) {
	tab := NewTable(4)
	tab.Assign(0, 1)
	tab.Assign(1, 1)
	if got := tab.Utilization(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestClone(t *testing.T) {
	tab := NewTable(4)
	tab.Assign(2, 9)
	c := tab.Clone()
	c.Clear(2)
	if tab.Owner(2) != 9 {
		t.Error("Clone must not share state")
	}
	if c.FreeCount() != 4 {
		t.Error("clone free count wrong after Clear")
	}
}

func TestFreeSlots(t *testing.T) {
	tab := NewTable(5)
	tab.Assign(1, 0)
	tab.Assign(3, 1)
	got := tab.FreeSlots()
	want := []Time{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("FreeSlots = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeSlots = %v, want %v", got, want)
		}
	}
}

func TestNextFree(t *testing.T) {
	tab := NewTable(4)
	tab.Assign(0, 1)
	tab.Assign(1, 1)
	if got := tab.NextFree(0); got != 2 {
		t.Errorf("NextFree(0) = %d, want 2", got)
	}
	if got := tab.NextFree(3); got != 3 {
		t.Errorf("NextFree(3) = %d, want 3", got)
	}
	if got := tab.NextFree(4); got != 6 {
		t.Errorf("NextFree(4) = %d, want 6 (wraps to slot 2)", got)
	}
	full := NewTable(2)
	full.Assign(0, 1)
	full.Assign(1, 2)
	if got := full.NextFree(0); got != Never {
		t.Errorf("NextFree on full table = %d, want Never", got)
	}
}

func TestFreeIn(t *testing.T) {
	tab := NewTable(4)
	tab.Assign(0, 1)
	// free slots: 1,2,3 → F=3
	if got := tab.FreeIn(0, 4); got != 3 {
		t.Errorf("FreeIn(0,4) = %d, want 3", got)
	}
	if got := tab.FreeIn(0, 8); got != 6 {
		t.Errorf("FreeIn(0,8) = %d, want 6", got)
	}
	if got := tab.FreeIn(3, 2); got != 1 {
		t.Errorf("FreeIn(3,2) = %d, want 1 (slot 3 free, slot 0 busy)", got)
	}
	if got := tab.FreeIn(0, 0); got != 0 {
		t.Errorf("FreeIn(0,0) = %d, want 0", got)
	}
	if got := tab.FreeIn(0, -3); got != 0 {
		t.Errorf("FreeIn negative length = %d, want 0", got)
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable(3)
	tab.Assign(1, 5)
	s := tab.String()
	if !strings.Contains(s, "5") || !strings.HasPrefix(s, "|.") {
		t.Errorf("String() = %q", s)
	}
}

func TestRequirementValidate(t *testing.T) {
	good := Requirement{ID: 0, Period: 10, WCET: 2, Deadline: 8, Offset: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("valid requirement rejected: %v", err)
	}
	bad := []Requirement{
		{ID: -1, Period: 10, WCET: 2, Deadline: 8},
		{ID: 0, Period: 0, WCET: 2, Deadline: 8},
		{ID: 0, Period: 10, WCET: 0, Deadline: 8},
		{ID: 0, Period: 10, WCET: 2, Deadline: 0},
		{ID: 0, Period: 10, WCET: 2, Deadline: 12},
		{ID: 0, Period: 10, WCET: 9, Deadline: 8},
		{ID: 0, Period: 10, WCET: 2, Deadline: 8, Offset: 10},
		{ID: 0, Period: 10, WCET: 2, Deadline: 8, Offset: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid requirement %+v accepted", i, r)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	tab, pl, err := Build(nil)
	if err != nil || tab.Len() != 0 || len(pl) != 0 {
		t.Fatalf("Build(nil) = %v,%v,%v", tab, pl, err)
	}
}

func TestBuildSingle(t *testing.T) {
	tab, pl, err := Build([]Requirement{{ID: 0, Period: 5, WCET: 2, Deadline: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 5 {
		t.Fatalf("H = %d, want 5", tab.Len())
	}
	if tab.FreeCount() != 3 {
		t.Errorf("F = %d, want 3", tab.FreeCount())
	}
	if len(pl) != 1 {
		t.Fatalf("placements = %d, want 1", len(pl))
	}
	if len(pl[0].Slots) != 2 {
		t.Errorf("placed slots = %v, want 2 slots", pl[0].Slots)
	}
	// EDF from time 0 places the job in its first two slots.
	if tab.Owner(0) != 0 || tab.Owner(1) != 0 {
		t.Errorf("expected slots 0,1 owned by task 0: %s", tab)
	}
}

func TestBuildTwoTasksEDF(t *testing.T) {
	// Task 1 has the tighter deadline and must run first under EDF.
	reqs := []Requirement{
		{ID: 0, Period: 10, WCET: 3, Deadline: 10},
		{ID: 1, Period: 10, WCET: 2, Deadline: 4},
	}
	tab, _, err := Build(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 10 || tab.FreeCount() != 5 {
		t.Fatalf("H=%d F=%d, want 10/5", tab.Len(), tab.FreeCount())
	}
	if tab.Owner(0) != 1 || tab.Owner(1) != 1 {
		t.Errorf("EDF should give first slots to tighter-deadline task: %s", tab)
	}
	if tab.Owner(2) != 0 || tab.Owner(3) != 0 || tab.Owner(4) != 0 {
		t.Errorf("task 0 should follow: %s", tab)
	}
}

func TestBuildHyperperiod(t *testing.T) {
	reqs := []Requirement{
		{ID: 0, Period: 4, WCET: 1, Deadline: 4},
		{ID: 1, Period: 6, WCET: 1, Deadline: 6},
	}
	tab, pl, err := Build(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 12 {
		t.Fatalf("H = %d, want lcm(4,6)=12", tab.Len())
	}
	// 3 jobs of task 0 + 2 jobs of task 1 = 5 placements, 5 busy slots.
	if len(pl) != 5 {
		t.Errorf("placements = %d, want 5", len(pl))
	}
	if tab.FreeCount() != 7 {
		t.Errorf("F = %d, want 7", tab.FreeCount())
	}
}

func TestBuildWithOffset(t *testing.T) {
	tab, pl, err := Build([]Requirement{{ID: 0, Period: 6, WCET: 1, Deadline: 3, Offset: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Owner(2) != 0 {
		t.Errorf("offset job should start at slot 2: %s", tab)
	}
	if pl[0].Release != 2 {
		t.Errorf("release = %d, want 2", pl[0].Release)
	}
}

func TestBuildOverload(t *testing.T) {
	reqs := []Requirement{
		{ID: 0, Period: 4, WCET: 3, Deadline: 4},
		{ID: 1, Period: 4, WCET: 3, Deadline: 4},
	}
	_, _, err := Build(reqs)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
}

func TestBuildDuplicateID(t *testing.T) {
	reqs := []Requirement{
		{ID: 0, Period: 4, WCET: 1, Deadline: 4},
		{ID: 0, Period: 8, WCET: 1, Deadline: 8},
	}
	if _, _, err := Build(reqs); err == nil {
		t.Error("duplicate IDs should be rejected")
	}
}

func TestBuildInvalidRequirement(t *testing.T) {
	if _, _, err := Build([]Requirement{{ID: 0, Period: -1, WCET: 1, Deadline: 1}}); err == nil {
		t.Error("invalid requirement should be rejected")
	}
}

func TestBuildPlacementsMeetDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var reqs []Requirement
		n := 1 + rng.Intn(4)
		periods := []Time{4, 8, 16, 32}
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			c := Time(1 + rng.Intn(2))
			d := c + Time(rng.Intn(int(p-c)+1))
			if d > p {
				d = p
			}
			reqs = append(reqs, Requirement{ID: TaskID(i), Period: p, WCET: c, Deadline: d})
		}
		tab, pls, err := Build(reqs)
		if errors.Is(err, ErrOverload) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		h := Time(tab.Len())
		for _, pl := range pls {
			if len(pl.Slots) == 0 {
				t.Fatalf("trial %d: empty placement %+v", trial, pl)
			}
			for _, s := range pl.Slots {
				// Slot must fall inside [release, deadline) modulo H.
				in := false
				for base := Time(0); base <= 2*h; base += h {
					abs := s + base
					if abs >= pl.Release && abs < pl.Deadline {
						in = true
						break
					}
				}
				if !in {
					t.Fatalf("trial %d: slot %d outside window [%d,%d) of task %d",
						trial, s, pl.Release, pl.Deadline, pl.Task)
				}
				if tab.Owner(s) != pl.Task {
					t.Fatalf("trial %d: table owner mismatch at %d", trial, s)
				}
			}
		}
	}
}

func TestBuildFreeCountConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := []Requirement{
			{ID: 0, Period: Time(4 << rng.Intn(3)), WCET: 1, Deadline: 4},
			{ID: 1, Period: 8, WCET: Time(1 + rng.Intn(3)), Deadline: 8},
		}
		tab, _, err := Build(reqs)
		if err != nil {
			return true
		}
		return tab.FreeCount() == len(tab.FreeSlots())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
