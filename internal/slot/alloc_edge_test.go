// Edge-case coverage for the mode-change allocation paths and the
// wrap-around window arithmetic the R-channel supply queries rely on.
package slot

import (
	"errors"
	"testing"
)

// TestReleaseUnknownTaskID: retiring a task that owns nothing is a
// no-op returning 0, and negative ids (including Free itself) never
// release anything — Release(Free) must not "free the free slots".
func TestReleaseUnknownTaskID(t *testing.T) {
	tab := NewTable(16)
	for _, s := range []Time{2, 3, 4, 9} {
		if err := tab.Assign(s, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := tab.String()
	for _, id := range []TaskID{7, Free, -5} {
		if n := tab.Release(id); n != 0 {
			t.Fatalf("Release(%d) freed %d slots", id, n)
		}
	}
	if tab.String() != before || tab.FreeCount() != 12 {
		t.Fatalf("no-op release mutated the table: %s free=%d", tab, tab.FreeCount())
	}
	if n := tab.Release(1); n != 4 {
		t.Fatalf("Release(1) freed %d, want 4", n)
	}
	if tab.FreeCount() != 16 || tab.RunCount() != 1 {
		t.Fatalf("release did not merge back to all-free: free=%d runs=%d", tab.FreeCount(), tab.RunCount())
	}
}

// TestFreeInWrapsHyperperiodBoundary pins the window counting across
// the H boundary against a brute-force per-slot count.
func TestFreeInWrapsHyperperiodBoundary(t *testing.T) {
	tab := NewTable(10)
	for _, s := range []Time{0, 1, 5, 8, 9} {
		if err := tab.Assign(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	brute := func(from, length Time) Time {
		var n Time
		for s := from; s < from+length; s++ {
			if tab.IsFree(s) {
				n++
			}
		}
		return n
	}
	for _, tc := range []struct{ from, length Time }{
		{7, 6},   // crosses H once
		{9, 1},   // last slot only
		{9, 2},   // wraps onto slot 0
		{8, 24},  // multiple wraps
		{-3, 7},  // negative start crossing 0
		{5, 10},  // exactly one period from mid-table
		{0, 30},  // three full periods
		{13, 11}, // second repetition crossing into the third
	} {
		if got, want := tab.FreeIn(tc.from, tc.length), brute(tc.from, tc.length); got != want {
			t.Errorf("FreeIn(%d,%d) = %d, want %d", tc.from, tc.length, got, want)
		}
	}
}

// TestAllocateOnFullTable: a fully occupied table rejects any
// allocation with ErrOverload and stays untouched.
func TestAllocateOnFullTable(t *testing.T) {
	tab := NewTable(8)
	for s := Time(0); s < 8; s++ {
		if err := tab.Assign(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := tab.String()
	_, err := tab.AllocatePeriodic(Requirement{ID: 5, Period: 4, WCET: 1, Deadline: 4})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("full-table allocation: err=%v, want ErrOverload", err)
	}
	if tab.String() != before || tab.FreeCount() != 0 {
		t.Fatalf("failed allocation mutated a full table: %s", tab)
	}
}

// TestAllocateSkipsOwnedRuns: the run-walking window scan must land on
// exactly the earliest free slots even when the window opens on a long
// owned run.
func TestAllocateSkipsOwnedRuns(t *testing.T) {
	tab := NewTable(16)
	for s := Time(0); s < 6; s++ {
		if err := tab.Assign(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	pl, err := tab.AllocatePeriodic(Requirement{ID: 3, Period: 8, WCET: 2, Deadline: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 2 {
		t.Fatalf("got %d placements, want 2", len(pl))
	}
	want := [][]Time{{6, 7}, {8, 9}}
	for k, p := range pl {
		if len(p.Slots) != 2 || p.Slots[0] != want[k][0] || p.Slots[1] != want[k][1] {
			t.Fatalf("placement %d slots %v, want %v", k, p.Slots, want[k])
		}
	}
}

// TestAllocateWindowWrapsBoundary: a job window that wraps past H must
// place into the (already partially allocated) head of the table.
func TestAllocateWindowWrapsBoundary(t *testing.T) {
	tab := NewTable(8)
	// Occupy the tail so the offset job's window [6, 14) has only the
	// wrapped slots 0..1 free after slot 6.
	for _, s := range []Time{7} {
		if err := tab.Assign(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	pl, err := tab.AllocatePeriodic(Requirement{ID: 4, Period: 8, WCET: 3, Deadline: 8, Offset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 {
		t.Fatalf("got %d placements, want 1", len(pl))
	}
	want := []Time{6, 0, 1} // slot 6, then wrap past owned slot 7 onto 0,1
	if len(pl[0].Slots) != 3 {
		t.Fatalf("slots %v, want %v", pl[0].Slots, want)
	}
	for k := range want {
		if pl[0].Slots[k] != want[k] {
			t.Fatalf("slots %v, want %v", pl[0].Slots, want)
		}
	}
	if !tab.IsFree(2) || tab.Owner(0) != 4 || tab.Owner(6) != 4 {
		t.Fatalf("wrapped allocation landed wrong: %s", tab)
	}
}
