package baseline

import (
	"testing"

	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

func lightWorkload() task.Set {
	return task.Set{
		{ID: 0, VM: 0, Kind: task.Safety, Device: "ethernet", Period: 256, WCET: 8, Deadline: 256, OpBytes: 256},
		{ID: 1, VM: 1, Kind: task.Function, Device: "flexray", Period: 512, WCET: 16, Deadline: 512, OpBytes: 128},
	}
}

func TestStationGlobalFIFOOrder(t *testing.T) {
	var done []*task.Job
	st, err := newStation("dev", globalFIFO, 0, 0, func(j *task.Job, at slot.Time) {
		done = append(done, j)
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 100, WCET: 2, Deadline: 100}
	j1 := task.NewJob(tk, 0, 0)
	j2 := task.NewJob(tk, 1, 0)
	st.enqueue(j1)
	st.enqueue(j2)
	if st.backlog() != 2 {
		t.Errorf("backlog = %d", st.backlog())
	}
	for now := slot.Time(0); now < 4; now++ {
		st.step(now)
	}
	if len(done) != 2 || done[0] != j1 || done[1] != j2 {
		t.Errorf("FIFO order violated: %v", done)
	}
	if st.served != 2 {
		t.Errorf("served = %d", st.served)
	}
}

func TestStationNonPreemptive(t *testing.T) {
	// A long op in service is never preempted by a later short one.
	var doneOrder []int
	st, _ := newStation("dev", globalFIFO, 0, 0, func(j *task.Job, at slot.Time) {
		doneOrder = append(doneOrder, j.Task.ID)
	})
	long := &task.Sporadic{ID: 0, VM: 0, Period: 1000, WCET: 10, Deadline: 1000}
	short := &task.Sporadic{ID: 1, VM: 0, Period: 1000, WCET: 1, Deadline: 5}
	st.enqueue(task.NewJob(long, 0, 0))
	st.step(0) // long starts
	st.enqueue(task.NewJob(short, 0, 1))
	for now := slot.Time(1); now < 20; now++ {
		st.step(now)
	}
	if len(doneOrder) != 2 || doneOrder[0] != 0 {
		t.Errorf("long op should finish first (non-preemptive): %v", doneOrder)
	}
}

func TestStationRoundRobinFairness(t *testing.T) {
	var done []int // VM ids in completion order
	st, err := newStation("dev", perVMRoundRobin, 3, 0, func(j *task.Job, at slot.Time) {
		done = append(done, j.Task.VM)
	})
	if err != nil {
		t.Fatal(err)
	}
	for vm := 0; vm < 3; vm++ {
		tk := &task.Sporadic{ID: vm, VM: vm, Period: 100, WCET: 1, Deadline: 100}
		st.enqueue(task.NewJob(tk, 0, 0))
		st.enqueue(task.NewJob(tk, 1, 0))
	}
	for now := slot.Time(0); now < 6; now++ {
		st.step(now)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", done, want)
		}
	}
}

func TestStationValidation(t *testing.T) {
	if _, err := newStation("d", perVMRoundRobin, 0, 0, nil); err == nil {
		t.Error("round-robin without VMs accepted")
	}
	if _, err := newStation("d", discipline(9), 0, 0, nil); err == nil {
		t.Error("unknown discipline accepted")
	}
	st, _ := newStation("d", perVMRoundRobin, 1, 0, func(*task.Job, slot.Time) {})
	tk := &task.Sporadic{ID: 0, VM: 5, Period: 10, WCET: 1, Deadline: 10}
	if err := st.enqueue(task.NewJob(tk, 0, 0)); err == nil {
		t.Error("out-of-range VM accepted")
	}
}

func TestStationPendingJobs(t *testing.T) {
	st, _ := newStation("d", globalFIFO, 0, 0, func(*task.Job, slot.Time) {})
	tk := &task.Sporadic{ID: 0, VM: 0, Period: 100, WCET: 5, Deadline: 100}
	st.enqueue(task.NewJob(tk, 0, 0))
	st.enqueue(task.NewJob(tk, 1, 0))
	st.step(0) // first moves into service
	n := 0
	st.pendingJobs(func(*task.Job) { n++ })
	if n != 2 {
		t.Errorf("pending = %d, want 2 (1 in service + 1 queued)", n)
	}
}

func runTrial(t *testing.T, build system.Builder, ts task.Set, horizon slot.Time) *metricsResult {
	t.Helper()
	res, err := system.Run(build, system.Trial{VMs: 2, Tasks: ts, Horizon: horizon, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return &metricsResult{res.Completed, res.CriticalMisses, res.Response.Mean()}
}

type metricsResult struct {
	completed int64
	misses    int64
	respMean  float64
}

func TestLegacyEndToEnd(t *testing.T) {
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewLegacy(tr.VMs, tr.Tasks, col)
	}
	got := runTrial(t, build, lightWorkload(), 8192)
	if got.completed < 30 {
		t.Fatalf("legacy completed only %d jobs", got.completed)
	}
	if got.misses != 0 {
		t.Errorf("light load should not miss: %d", got.misses)
	}
	// Response time must include the NoC traversal: well above WCET.
	if got.respMean < 10 {
		t.Errorf("legacy response mean %.1f suspiciously low", got.respMean)
	}
}

func TestLegacyProperties(t *testing.T) {
	l, err := NewLegacy(2, lightWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "BS|Legacy" || l.Arch() != rtos.Legacy {
		t.Error("identity wrong")
	}
	if len(l.Residual()) != 2 {
		t.Error("legacy must drive all tasks externally")
	}
	if l.Dropped() != 0 {
		t.Error("fresh system should have no drops")
	}
	if _, err := NewLegacy(2, task.Set{{ID: 0, Period: -1, WCET: 1, Deadline: 1}}, nil); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestRTXenEndToEnd(t *testing.T) {
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewRTXen(tr.VMs, tr.Tasks, col, 0)
	}
	got := runTrial(t, build, lightWorkload(), 8192)
	if got.completed < 30 {
		t.Fatalf("rt-xen completed only %d jobs", got.completed)
	}
}

func TestRTXenSlowerThanLegacy(t *testing.T) {
	buildL := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewLegacy(tr.VMs, tr.Tasks, col)
	}
	buildX := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewRTXen(tr.VMs, tr.Tasks, col, 0)
	}
	leg := runTrial(t, buildL, lightWorkload(), 8192)
	xen := runTrial(t, buildX, lightWorkload(), 8192)
	if xen.respMean <= leg.respMean {
		t.Errorf("rt-xen mean response %.1f should exceed legacy %.1f (trap + VMM + VCPU windows)",
			xen.respMean, leg.respMean)
	}
}

func TestRTXenVCPUWindow(t *testing.T) {
	x, err := NewRTXen(4, lightWorkload(), nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	// At slot 0 VM0's window is open.
	if got := x.nextWindow(0, 0); got != 0 {
		t.Errorf("nextWindow(0,0) = %d", got)
	}
	// VM2's first window starts at quantum*2.
	if got := x.nextWindow(2, 0); got != 100 {
		t.Errorf("nextWindow(2,0) = %d, want 100", got)
	}
	// Wrap-around: VM0 after its window passed.
	if got := x.nextWindow(0, 60); got != 200 {
		t.Errorf("nextWindow(0,60) = %d, want 200", got)
	}
	// Single VM: always open.
	x1, _ := NewRTXen(1, lightWorkload().Filter(func(tk task.Sporadic) bool { return tk.VM == 0 }), nil, 50)
	if got := x1.nextWindow(0, 123); got != 123 {
		t.Errorf("single-VM window = %d", got)
	}
}

func TestRTXenValidation(t *testing.T) {
	if _, err := NewRTXen(0, lightWorkload(), nil, 0); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := NewRTXen(2, task.Set{{ID: 0, Period: -1, WCET: 1, Deadline: 1}}, nil, 0); err == nil {
		t.Error("invalid workload accepted")
	}
	x, _ := NewRTXen(2, lightWorkload(), nil, 0)
	if x.Name() != "BS|RT-XEN" || x.Arch() != rtos.RTXen {
		t.Error("identity wrong")
	}
}

func TestBlueVisorEndToEnd(t *testing.T) {
	build := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewBlueVisor(tr.VMs, tr.Tasks, col)
	}
	got := runTrial(t, build, lightWorkload(), 8192)
	if got.completed < 30 {
		t.Fatalf("bluevisor completed only %d jobs", got.completed)
	}
	if got.misses != 0 {
		t.Errorf("light load should not miss: %d", got.misses)
	}
}

func TestBlueVisorFasterThanLegacy(t *testing.T) {
	buildL := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewLegacy(tr.VMs, tr.Tasks, col)
	}
	buildB := func(tr system.Trial, col *system.Collector) (system.System, error) {
		return NewBlueVisor(tr.VMs, tr.Tasks, col)
	}
	leg := runTrial(t, buildL, lightWorkload(), 8192)
	bv := runTrial(t, buildB, lightWorkload(), 8192)
	if bv.respMean >= leg.respMean {
		t.Errorf("bluevisor bypasses the NoC: response %.1f should beat legacy %.1f",
			bv.respMean, leg.respMean)
	}
}

func TestBlueVisorValidation(t *testing.T) {
	if _, err := NewBlueVisor(0, lightWorkload(), nil); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := NewBlueVisor(2, task.Set{{ID: 0, Period: -1, WCET: 1, Deadline: 1}}, nil); err == nil {
		t.Error("invalid workload accepted")
	}
	b, _ := NewBlueVisor(2, lightWorkload(), nil)
	if b.Name() != "BS|BV" || b.Arch() != rtos.BlueVisor {
		t.Error("identity wrong")
	}
}

func TestBaselinesPendingTracksInFlight(t *testing.T) {
	builders := map[string]system.Builder{
		"legacy": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return NewLegacy(tr.VMs, tr.Tasks, col)
		},
		"rtxen": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return NewRTXen(tr.VMs, tr.Tasks, col, 0)
		},
		"bluevisor": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return NewBlueVisor(tr.VMs, tr.Tasks, col)
		},
	}
	heavy := task.Set{{ID: 0, VM: 0, Kind: task.Safety, Device: "spi", Period: 10000, WCET: 5000, Deadline: 10000}}
	for name, build := range builders {
		col := &system.Collector{}
		sys, err := build(system.Trial{VMs: 2, Tasks: heavy}, col)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sys.Submit(0, task.NewJob(&heavy[0], 0, 0))
		for now := slot.Time(0); now < 100; now++ {
			sys.Step(now)
		}
		n := 0
		sys.Pending(func(*task.Job) { n++ })
		if n != 1 {
			t.Errorf("%s: pending = %d, want 1 (job still in service)", name, n)
		}
	}
}

// TestFIFOPriorityInversion demonstrates the paper's hardware-level
// dilemma: a conventional FIFO controller lets a long low-urgency
// operation block a short tight-deadline one past its deadline. The
// same scenario on the preemptive I/O-GUARD hypervisor (exercised in
// internal/hypervisor's TestDirectEDFOrdering) meets the deadline.
func TestFIFOPriorityInversion(t *testing.T) {
	var observed []slot.Time
	st, _ := newStation("dev", globalFIFO, 0, 0, func(j *task.Job, at slot.Time) {
		observed = append(observed, at)
	})
	long := &task.Sporadic{ID: 0, VM: 0, Period: 1000, WCET: 50, Deadline: 1000}
	tight := &task.Sporadic{ID: 1, VM: 1, Period: 1000, WCET: 2, Deadline: 10}
	st.enqueue(task.NewJob(long, 0, 0))
	jTight := task.NewJob(tight, 0, 0)
	st.enqueue(jTight)
	for now := slot.Time(0); now < 60; now++ {
		st.step(now)
	}
	if len(observed) != 2 {
		t.Fatalf("completions = %d", len(observed))
	}
	if observed[1] <= jTight.Deadline {
		t.Errorf("FIFO should have blocked the tight job past its deadline (done %d, deadline %d)",
			observed[1], jTight.Deadline)
	}
}
