package ioguard_test

import (
	"fmt"

	"ioguard"
)

// ExampleBuildTable compiles two pre-defined tasks into a Time Slot
// Table with offline EDF.
func ExampleBuildTable() {
	tab, placements, err := ioguard.BuildTable([]ioguard.Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8},
		{ID: 1, Period: 16, WCET: 3, Deadline: 16},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("H=%d F=%d jobs=%d\n", tab.Len(), tab.FreeCount(), len(placements))
	// Output: H=16 F=9 jobs=3
}

// ExampleAnalyze runs the full two-layer schedulability analysis.
func ExampleAnalyze() {
	tab, _, _ := ioguard.BuildTable([]ioguard.Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8},
	})
	servers := []ioguard.Server{
		{VM: 0, Period: 8, Budget: 2},
		{VM: 1, Period: 8, Budget: 2},
	}
	tasks := ioguard.TaskSet{
		{ID: 0, VM: 0, Period: 64, WCET: 4, Deadline: 64},
		{ID: 1, VM: 1, Period: 64, WCET: 4, Deadline: 64},
	}
	res, err := ioguard.Analyze(tab, servers, tasks)
	if err != nil {
		panic(err)
	}
	fmt.Println("schedulable:", res.Schedulable)
	// Output: schedulable: true
}

// ExampleRun executes one deterministic trial of the I/O-GUARD system.
func ExampleRun() {
	tasks := ioguard.TaskSet{
		{ID: 0, Name: "sensor", VM: 0, Kind: ioguard.Safety,
			Device: "spi", Period: 100, WCET: 5, Deadline: 100, OpBytes: 64},
	}
	build := func(tr ioguard.Trial, col *ioguard.Collector) (ioguard.System, error) {
		return ioguard.NewSystem(ioguard.SystemConfig{
			VMs: 1, PreloadFrac: 1, Mode: ioguard.DirectEDF,
		}, tr.Tasks, col)
	}
	res, err := ioguard.Run(build, ioguard.Trial{VMs: 1, Tasks: tasks, Horizon: 1000, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed=%d success=%v\n", res.Completed, res.Success())
	// Output: completed=10 success=true
}

// ExampleSynthesizeServers dimensions minimal per-VM servers.
func ExampleSynthesizeServers() {
	tab, _, _ := ioguard.BuildTable(nil) // empty: all slots free
	_ = tab
	free, _, _ := ioguard.BuildTable([]ioguard.Requirement{{ID: 0, Period: 16, WCET: 1, Deadline: 16}})
	tasks := ioguard.TaskSet{
		{ID: 0, VM: 0, Period: 64, WCET: 4, Deadline: 64},
	}
	servers, res, err := ioguard.SynthesizeServers(free, tasks, 16)
	if err != nil {
		panic(err)
	}
	fmt.Printf("servers=%v schedulable=%v\n", servers, res.Schedulable)
	// Output: servers=[Γ0(Π=16,Θ=2)] schedulable=true
}
