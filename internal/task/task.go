// Package task models the I/O workload of I/O-GUARD (Sec. IV of
// Jiang et al., DAC'21): sporadic I/O tasks τk = (Tk, Ck, Dk) that
// release jobs with minimum separation Tk, per-job execution budget Ck
// and constrained relative deadline Dk ≤ Tk; and the periodic server
// tasks Γi = (Πi, Θi) that the global scheduler uses to guarantee each
// VM i at least Θi free time slots in every Πi slots.
package task

import (
	"fmt"
	"sort"

	"ioguard/internal/slot"
)

// Kind classifies a task for the evaluation metrics of Sec. V: the
// success ratio counts deadline misses of safety and function tasks,
// while synthetic tasks exist only to raise the target utilization.
type Kind uint8

// Task kinds, mirroring the three task-set categories of Sec. V-C.
const (
	Safety    Kind = iota // automotive safety task (Renesas use-case set)
	Function              // automotive function task (EEMBC set)
	Synthetic             // synthetic background load
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Safety:
		return "safety"
	case Function:
		return "function"
	case Synthetic:
		return "synthetic"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Sporadic is one I/O task τk = (Tk, Ck, Dk). The zero value is not a
// valid task; populate at least Period, WCET and Deadline.
type Sporadic struct {
	ID       int       // unique within a task set
	Name     string    // human-readable, e.g. "crc32" or "fft"
	VM       int       // owning virtual machine (index ≥ 0)
	Kind     Kind      // safety / function / synthetic
	Period   slot.Time // Tk: minimum inter-release separation, in slots
	WCET     slot.Time // Ck: per-job execution budget, in slots
	Deadline slot.Time // Dk: relative deadline, Ck ≤ Dk ≤ Tk
	Device   string    // name of the target I/O device
	OpBytes  int       // payload bytes moved per job (throughput accounting)
	Jitter   slot.Time // maximum extra release delay beyond the minimum separation
}

// Utilization returns Ck/Tk.
func (t Sporadic) Utilization() float64 {
	if t.Period == 0 {
		return 0
	}
	return float64(t.WCET) / float64(t.Period)
}

// Validate reports whether the task parameters satisfy the model of
// Sec. IV (positive parameters, constrained deadline).
func (t Sporadic) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %d (%s): period %d ≤ 0", t.ID, t.Name, t.Period)
	case t.WCET <= 0:
		return fmt.Errorf("task %d (%s): wcet %d ≤ 0", t.ID, t.Name, t.WCET)
	case t.Deadline < t.WCET:
		return fmt.Errorf("task %d (%s): deadline %d < wcet %d", t.ID, t.Name, t.Deadline, t.WCET)
	case t.Deadline > t.Period:
		return fmt.Errorf("task %d (%s): deadline %d > period %d (constrained deadlines required)", t.ID, t.Name, t.Deadline, t.Period)
	case t.VM < 0:
		return fmt.Errorf("task %d (%s): negative VM %d", t.ID, t.Name, t.VM)
	case t.Jitter < 0:
		return fmt.Errorf("task %d (%s): negative jitter %d", t.ID, t.Name, t.Jitter)
	}
	return nil
}

// String renders the task in (T,C,D) notation.
func (t Sporadic) String() string {
	return fmt.Sprintf("τ%d[%s vm%d (T=%d,C=%d,D=%d)]", t.ID, t.Name, t.VM, t.Period, t.WCET, t.Deadline)
}

// Server is one periodic server task Γi = (Πi, Θi): VM i receives at
// least Θi free time slots in every Πi slots (periodic resource model,
// Shin & Lee 2003, as adopted in Sec. IV-B).
type Server struct {
	VM     int
	Period slot.Time // Πi
	Budget slot.Time // Θi
}

// Utilization returns Θi/Πi, the bandwidth fraction reserved for the VM.
func (s Server) Utilization() float64 {
	if s.Period == 0 {
		return 0
	}
	return float64(s.Budget) / float64(s.Period)
}

// Validate reports whether 1 ≤ Θi ≤ Πi.
func (s Server) Validate() error {
	switch {
	case s.Period <= 0:
		return fmt.Errorf("server vm%d: period %d ≤ 0", s.VM, s.Period)
	case s.Budget <= 0:
		return fmt.Errorf("server vm%d: budget %d ≤ 0", s.VM, s.Budget)
	case s.Budget > s.Period:
		return fmt.Errorf("server vm%d: budget %d > period %d", s.VM, s.Budget, s.Period)
	case s.VM < 0:
		return fmt.Errorf("server vm%d: negative VM index", s.VM)
	}
	return nil
}

// String renders the server in Γ=(Π,Θ) notation.
func (s Server) String() string {
	return fmt.Sprintf("Γ%d(Π=%d,Θ=%d)", s.VM, s.Period, s.Budget)
}

// Set is a collection of sporadic tasks, typically the workload of one
// VM or of the whole system.
type Set []Sporadic

// Utilization returns ΣCk/Tk over the set.
func (s Set) Utilization() float64 {
	var u float64
	for _, t := range s {
		u += t.Utilization()
	}
	return u
}

// Hyperperiod returns the least common multiple of all periods, or 0
// for an empty set.
func (s Set) Hyperperiod() slot.Time {
	ps := make([]slot.Time, len(s))
	for i, t := range s {
		ps[i] = t.Period
	}
	return slot.LCMAll(ps...)
}

// Validate checks every task and the uniqueness of IDs.
func (s Set) Validate() error {
	seen := make(map[int]bool, len(s))
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("duplicate task id %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// ByVM partitions the set into the per-VM task sets 𝒯i used by the
// local schedulers. The returned map contains only VMs that own at
// least one task.
func (s Set) ByVM() map[int]Set {
	m := make(map[int]Set)
	for _, t := range s {
		m[t.VM] = append(m[t.VM], t)
	}
	return m
}

// VMs returns the sorted list of VM indices present in the set.
func (s Set) VMs() []int {
	seen := make(map[int]bool)
	for _, t := range s {
		seen[t.VM] = true
	}
	out := make([]int, 0, len(seen))
	for vm := range seen {
		out = append(out, vm)
	}
	sort.Ints(out)
	return out
}

// Filter returns the tasks for which keep returns true.
func (s Set) Filter(keep func(Sporadic) bool) Set {
	var out Set
	for _, t := range s {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// MaxLaxity returns max(Tk - Dk) over the set, the quantity used by
// the pseudo-polynomial bound of Theorem 4. It returns 0 for an empty
// set (constrained deadlines make every Tk-Dk ≥ 0).
func (s Set) MaxLaxity() slot.Time {
	var m slot.Time
	for _, t := range s {
		if l := t.Period - t.Deadline; l > m {
			m = l
		}
	}
	return m
}

// Job is one released instance of a sporadic task, the unit the
// R-channel schedules: it occupies priority-queue slots with its
// parameters, is mapped (one operation at a time) into a shadow
// register by the local scheduler, and executes preemptively on the
// free time slots granted by the global scheduler.
type Job struct {
	Task      *Sporadic
	Seq       int       // job index within its task (0-based)
	Release   slot.Time // absolute release slot
	Deadline  slot.Time // absolute deadline slot (Release + Task.Deadline)
	Remaining slot.Time // slots of execution still required
	Finish    slot.Time // absolute completion slot; Never until done
}

// NewJob releases the seq-th job of t at the given absolute slot.
func NewJob(t *Sporadic, seq int, release slot.Time) *Job {
	return &Job{
		Task:      t,
		Seq:       seq,
		Release:   release,
		Deadline:  release + t.Deadline,
		Remaining: t.WCET,
		Finish:    slot.Never,
	}
}

// Done reports whether the job has completed execution.
func (j *Job) Done() bool { return j.Remaining == 0 }

// Missed reports whether the job missed its deadline: either it
// finished after the deadline, or time now has passed the deadline
// while work remains.
func (j *Job) Missed(now slot.Time) bool {
	if j.Done() {
		return j.Finish > j.Deadline
	}
	return now > j.Deadline
}

// ResponseTime returns Finish-Release for a completed job and Never
// otherwise.
func (j *Job) ResponseTime() slot.Time {
	if !j.Done() {
		return slot.Never
	}
	return j.Finish - j.Release
}

// Tick consumes one slot of execution at time now, recording the
// finish time when the job completes. Calling Tick on a finished job
// panics: the executor must never grant slots to completed jobs.
func (j *Job) Tick(now slot.Time) {
	if j.Remaining <= 0 {
		panic(fmt.Sprintf("task: Tick on completed job %v", j))
	}
	j.Remaining--
	if j.Remaining == 0 {
		j.Finish = now + 1 // completes at the end of this slot
	}
}

// String renders the job for traces.
func (j *Job) String() string {
	return fmt.Sprintf("job(τ%d#%d r=%d d=%d rem=%d)", j.Task.ID, j.Seq, j.Release, j.Deadline, j.Remaining)
}
