// Stretching the case-study workload: the automotive task table fixes
// the base utilization at ≈0.40 per device, so sparser (idle-heavy)
// scenarios are derived by scaling periods rather than by lowering the
// generator's target — Generate rejects targets below the floor.
package workload

import (
	"fmt"
	"math"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Stretch returns a copy of ts with every period, deadline and jitter
// bound multiplied by k, dividing each task's utilization by k while
// preserving the constrained-deadline model. k == 1 returns ts
// unchanged; k < 1 is an error (compressing periods would break the
// WCET ≤ deadline invariant).
func Stretch(ts task.Set, k slot.Time) (task.Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("workload: stretch factor %d < 1", k)
	}
	if k == 1 {
		return ts, nil
	}
	out := make(task.Set, len(ts))
	for i, t := range ts {
		t.Period *= k
		t.Deadline *= k
		t.Jitter *= k
		out[i] = t
	}
	return out, nil
}

// StretchToUtil stretches ts until no device exceeds targetUtil: the
// factor is the smallest integer k with maxDeviceUtil/k ≤ targetUtil.
// This is the supported way to derive sub-floor utilizations (e.g.
// idle-heavy benchmark cells) from the case-study catalogue, whose
// base load Generate refuses to undercut.
func StretchToUtil(ts task.Set, targetUtil float64) (task.Set, error) {
	if targetUtil <= 0 {
		return nil, fmt.Errorf("workload: non-positive target utilization %.3f", targetUtil)
	}
	var maxUtil float64
	for _, u := range DeviceUtilization(ts) {
		if u > maxUtil {
			maxUtil = u
		}
	}
	if maxUtil <= targetUtil {
		return ts, nil
	}
	return Stretch(ts, slot.Time(math.Ceil(maxUtil/targetUtil)))
}
