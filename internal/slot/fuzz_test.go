package slot

import (
	"encoding/json"
	"testing"
)

// FuzzTableJSON checks the table decoder never panics and that
// accepted tables are internally consistent (free count matches the
// entries).
func FuzzTableJSON(f *testing.F) {
	tab := NewTable(4)
	tab.Assign(1, 7)
	seed, _ := json.Marshal(tab)
	f.Add(seed)
	f.Add([]byte(`{"slots":[]}`))
	f.Add([]byte(`{"slots":[-1,-1,3]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got Table
		if err := json.Unmarshal(data, &got); err != nil {
			return
		}
		free := 0
		for i := 0; i < got.Len(); i++ {
			if got.IsFree(Time(i)) {
				free++
			}
		}
		if free != got.FreeCount() {
			t.Fatalf("free count %d ≠ recomputed %d", got.FreeCount(), free)
		}
	})
}
