package hw

import (
	"math"
	"strings"
	"testing"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUTs: 10, Registers: 20, DSPs: 1, RAMKB: 4, PowerMW: 2}
	b := Resources{LUTs: 1, Registers: 2, DSPs: 1, RAMKB: 1, PowerMW: 0.5}
	sum := a.Add(b)
	if sum.LUTs != 11 || sum.Registers != 22 || sum.DSPs != 2 || sum.RAMKB != 5 || sum.PowerMW != 2.5 {
		t.Errorf("Add = %+v", sum)
	}
	tri := a.Scale(3)
	if tri.LUTs != 30 || tri.PowerMW != 6 {
		t.Errorf("Scale = %+v", tri)
	}
	if !strings.Contains(a.String(), "LUTs=10") {
		t.Errorf("String = %q", a.String())
	}
}

func TestHypervisorValidation(t *testing.T) {
	if _, err := Hypervisor(0, 2); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := Hypervisor(16, 0); err == nil {
		t.Error("zero I/Os accepted")
	}
}

// TestTable1Calibration pins the model to the paper's measured
// "Proposed" row at the 16-VM, 2-I/O configuration.
func TestTable1Calibration(t *testing.T) {
	got, err := Hypervisor(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.0f, want %.0f ± %.0f", name, got, want, tol)
		}
	}
	within("LUTs", float64(got.LUTs), 2777, 2777*0.02)
	within("Registers", float64(got.Registers), 2974, 2974*0.02)
	within("Power", got.PowerMW, 279, 279*0.02)
	if got.DSPs != 0 {
		t.Errorf("DSPs = %d, want 0", got.DSPs)
	}
	if got.RAMKB != 256 {
		t.Errorf("RAM = %d KB, want 256", got.RAMKB)
	}
}

// TestTable1Orderings checks every comparison Obs. 2 draws from the
// table.
func TestTable1Orderings(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Resources{}
	for _, r := range rows {
		byName[r.Name] = r.Res
	}
	prop := byName["Proposed"]
	// "significantly less hardware than full-featured processors":
	// ≈56.6% of MicroBlaze's LUTs, 67.8% registers, 77.7% power.
	if f := float64(prop.LUTs) / float64(byName["MicroBlaze"].LUTs); math.Abs(f-0.566) > 0.03 {
		t.Errorf("LUT ratio vs MicroBlaze = %.3f, want ≈0.566", f)
	}
	if f := float64(prop.Registers) / float64(byName["MicroBlaze"].Registers); math.Abs(f-0.678) > 0.03 {
		t.Errorf("register ratio vs MicroBlaze = %.3f, want ≈0.678", f)
	}
	if f := prop.PowerMW / byName["MicroBlaze"].PowerMW; math.Abs(f-0.777) > 0.03 {
		t.Errorf("power ratio vs MicroBlaze = %.3f, want ≈0.777", f)
	}
	// ≈37.4% of RISC-V's LUTs, 18.2% registers, 47.9% power.
	if f := float64(prop.LUTs) / float64(byName["RISC-V"].LUTs); math.Abs(f-0.374) > 0.03 {
		t.Errorf("LUT ratio vs RISC-V = %.3f, want ≈0.374", f)
	}
	if f := float64(prop.Registers) / float64(byName["RISC-V"].Registers); math.Abs(f-0.182) > 0.03 {
		t.Errorf("register ratio vs RISC-V = %.3f, want ≈0.182", f)
	}
	// More hardware than plain I/O controllers.
	if prop.LUTs <= byName["SPI"].LUTs || prop.LUTs <= byName["Ethernet"].LUTs {
		t.Error("hypervisor should cost more than bare I/O controllers")
	}
	// Same RAM as BlueVisor, fewer LUTs and registers.
	bv := byName["BlueIO"]
	if prop.RAMKB != bv.RAMKB {
		t.Error("RAM should match BlueVisor")
	}
	if prop.LUTs >= bv.LUTs || prop.Registers >= bv.Registers {
		t.Error("proposed should undercut BlueVisor logic")
	}
}

func TestHypervisorScalesLinearlyInVMs(t *testing.T) {
	h8, _ := Hypervisor(8, 2)
	h16, _ := Hypervisor(16, 2)
	h32, _ := Hypervisor(32, 2)
	d1 := h16.LUTs - h8.LUTs
	d2 := h32.LUTs - h16.LUTs
	if d2 != 2*d1 {
		t.Errorf("LUT growth not linear in VMs: +%d then +%d", d1, d2)
	}
	// RAM is per-device, not per-VM.
	if h8.RAMKB != h32.RAMKB {
		t.Error("RAM should not scale with VMs")
	}
}

func TestSystemResourcesValidation(t *testing.T) {
	if _, err := SystemResources(true, -1); err == nil {
		t.Error("negative eta accepted")
	}
	if _, err := NormalizedArea(true, -1); err == nil {
		t.Error("negative eta accepted")
	}
	if _, err := SystemPowerMW(true, -1); err == nil {
		t.Error("negative eta accepted")
	}
	if _, err := MaxFrequencyMHz(true, -1); err == nil {
		t.Error("negative eta accepted")
	}
}

// TestFig8aAreaScaling: both systems grow with η; I/O-GUARD's
// overhead over legacy stays under 20% (Obs. 5).
func TestFig8aAreaScaling(t *testing.T) {
	var prevLegacy, prevGuard float64
	for eta := 0; eta <= 5; eta++ {
		leg, err := NormalizedArea(false, eta)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := NormalizedArea(true, eta)
		if err != nil {
			t.Fatal(err)
		}
		if leg <= prevLegacy && eta > 0 && (1<<eta) <= 32 {
			t.Errorf("η=%d: legacy area did not grow (%.4f ≤ %.4f)", eta, leg, prevLegacy)
		}
		if grd <= leg {
			t.Errorf("η=%d: I/O-GUARD must cost more area than legacy", eta)
		}
		if over := (grd - leg) / leg; over > 0.20 {
			t.Errorf("η=%d: area overhead %.1f%% exceeds the 20%% bound", eta, over*100)
		}
		if grd > 1 {
			t.Errorf("η=%d: normalized area %.3f exceeds the fabric", eta, grd)
		}
		prevLegacy, prevGuard = leg, grd
	}
	_ = prevGuard
}

// TestFig8bPowerScaling: power tracks area and grows with η.
func TestFig8bPowerScaling(t *testing.T) {
	var prev float64
	for eta := 0; eta <= 4; eta++ {
		leg, _ := SystemPowerMW(false, eta)
		grd, _ := SystemPowerMW(true, eta)
		if grd <= leg {
			t.Errorf("η=%d: I/O-GUARD must draw more power than legacy", eta)
		}
		if eta > 0 && grd <= prev {
			t.Errorf("η=%d: power did not grow", eta)
		}
		prev = grd
	}
}

// TestFig8cFmax: the hypervisor's fmax exceeds the legacy fabric's at
// every scale and degrades slowly (Obs. 6).
func TestFig8cFmax(t *testing.T) {
	var prev float64 = math.Inf(1)
	for eta := 0; eta <= 5; eta++ {
		grd, err := MaxFrequencyMHz(true, eta)
		if err != nil {
			t.Fatal(err)
		}
		leg, _ := MaxFrequencyMHz(false, eta)
		if grd <= leg {
			t.Errorf("η=%d: hypervisor fmax %.1f must exceed legacy %.1f", eta, grd, leg)
		}
		if grd > prev {
			t.Errorf("η=%d: fmax should not improve with scale", eta)
		}
		if grd < 100 {
			t.Errorf("η=%d: fmax %.1f below the 100 MHz operating clock", eta, grd)
		}
		prev = grd
	}
}

func TestTable1RowOrder(t *testing.T) {
	rows, _ := Table1()
	want := []string{"MicroBlaze", "RISC-V", "SPI", "Ethernet", "BlueIO", "Proposed"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Name != want[i] {
			t.Errorf("row %d = %q, want %q", i, r.Name, want[i])
		}
	}
}

func TestBreakdownSumsToHypervisor(t *testing.T) {
	for _, cfg := range []struct{ vms, ios int }{{16, 2}, {4, 1}, {32, 3}} {
		rows, err := Breakdown(cfg.vms, cfg.ios)
		if err != nil {
			t.Fatal(err)
		}
		var sum Resources
		for _, r := range rows {
			sum = sum.Add(r.Res)
		}
		want, _ := Hypervisor(cfg.vms, cfg.ios)
		if sum != want {
			t.Errorf("%d VMs/%d IOs: breakdown sum %+v ≠ hypervisor %+v", cfg.vms, cfg.ios, sum, want)
		}
	}
	if _, err := Breakdown(0, 1); err == nil {
		t.Error("invalid config accepted")
	}
}
