// ShiftPQ: a shift-register priority queue, the micro-architecture
// hardware priority queues are typically built from (an ordered array
// of register cells; an insert shifts lower-priority entries one cell
// down in a single cycle). Functionally equivalent to the heap-based
// PQ — TestShiftPQEquivalence proves it against the same operation
// streams — but O(capacity) storage with O(1)-cycle hardware inserts,
// which is why Table I's register count scales with the pool depth.
package queue

import (
	"fmt"

	"ioguard/internal/slot"
)

// shiftCell is one register stage of the shift queue.
type shiftCell[T any] struct {
	key    slot.Time
	seq    int64
	handle Handle
	value  T
}

// ShiftPQ is a deadline-ordered priority queue implemented as an
// ordered register array. The zero value is not usable; call
// NewShiftPQ.
type ShiftPQ[T any] struct {
	cells   []shiftCell[T]
	byH     map[Handle]int // handle → index (maintained on every shift)
	nextH   Handle
	nextSeq int64
	cap     int
}

// NewShiftPQ returns an empty shift-register queue; capacity ≤ 0
// means unbounded (software convenience; hardware instances are
// always bounded).
func NewShiftPQ[T any](capacity int) *ShiftPQ[T] {
	return &ShiftPQ[T]{byH: make(map[Handle]int), cap: capacity}
}

// Len returns the number of occupied cells.
func (q *ShiftPQ[T]) Len() int { return len(q.cells) }

// Cap returns the configured capacity (0 = unbounded).
func (q *ShiftPQ[T]) Cap() int { return q.cap }

// Full reports whether a bounded queue has no free cell.
func (q *ShiftPQ[T]) Full() bool { return q.cap > 0 && len(q.cells) >= q.cap }

// Push inserts value at its ordered position, shifting lower-priority
// cells down.
func (q *ShiftPQ[T]) Push(key slot.Time, value T) (Handle, error) {
	if q.Full() {
		return 0, fmt.Errorf("queue: shift queue full (cap %d)", q.cap)
	}
	c := shiftCell[T]{key: key, seq: q.nextSeq, handle: q.nextH, value: value}
	q.nextSeq++
	q.nextH++
	// Find the insertion point: after all entries with (key, seq) <.
	i := len(q.cells)
	for i > 0 {
		prev := q.cells[i-1]
		if prev.key < c.key || (prev.key == c.key && prev.seq < c.seq) {
			break
		}
		i--
	}
	q.cells = append(q.cells, shiftCell[T]{})
	copy(q.cells[i+1:], q.cells[i:])
	q.cells[i] = c
	q.reindex(i)
	return c.handle, nil
}

// reindex refreshes the handle map from cell i onward.
func (q *ShiftPQ[T]) reindex(from int) {
	for i := from; i < len(q.cells); i++ {
		q.byH[q.cells[i].handle] = i
	}
}

// Min returns the head cell without removing it.
func (q *ShiftPQ[T]) Min() (h Handle, key slot.Time, value T, ok bool) {
	if len(q.cells) == 0 {
		var zero T
		return 0, 0, zero, false
	}
	c := q.cells[0]
	return c.handle, c.key, c.value, true
}

// PopMin removes and returns the head cell.
func (q *ShiftPQ[T]) PopMin() (key slot.Time, value T, ok bool) {
	if len(q.cells) == 0 {
		var zero T
		return 0, zero, false
	}
	c := q.cells[0]
	q.removeAt(0)
	return c.key, c.value, true
}

// Get returns the value stored under h.
func (q *ShiftPQ[T]) Get(h Handle) (T, bool) {
	i, ok := q.byH[h]
	if !ok {
		var zero T
		return zero, false
	}
	return q.cells[i].value, true
}

// Key returns the key stored under h.
func (q *ShiftPQ[T]) Key(h Handle) (slot.Time, bool) {
	i, ok := q.byH[h]
	if !ok {
		return 0, false
	}
	return q.cells[i].key, true
}

// Update rewrites the value stored under h.
func (q *ShiftPQ[T]) Update(h Handle, value T) bool {
	i, ok := q.byH[h]
	if !ok {
		return false
	}
	q.cells[i].value = value
	return true
}

// Reprioritize changes the key of entry h, re-shifting it into place.
func (q *ShiftPQ[T]) Reprioritize(h Handle, key slot.Time) bool {
	i, ok := q.byH[h]
	if !ok {
		return false
	}
	c := q.cells[i]
	c.key = key
	q.removeAt(i)
	// Re-insert preserving the original handle and seq.
	j := len(q.cells)
	for j > 0 {
		prev := q.cells[j-1]
		if prev.key < c.key || (prev.key == c.key && prev.seq < c.seq) {
			break
		}
		j--
	}
	q.cells = append(q.cells, shiftCell[T]{})
	copy(q.cells[j+1:], q.cells[j:])
	q.cells[j] = c
	q.reindex(j)
	return true
}

// Remove deletes entry h.
func (q *ShiftPQ[T]) Remove(h Handle) (T, bool) {
	i, ok := q.byH[h]
	if !ok {
		var zero T
		return zero, false
	}
	v := q.cells[i].value
	q.removeAt(i)
	return v, true
}

func (q *ShiftPQ[T]) removeAt(i int) {
	delete(q.byH, q.cells[i].handle)
	copy(q.cells[i:], q.cells[i+1:])
	q.cells = q.cells[:len(q.cells)-1]
	q.reindex(i)
}

// Each visits every occupied cell in priority order (head first).
func (q *ShiftPQ[T]) Each(visit func(h Handle, key slot.Time, value T)) {
	for _, c := range q.cells {
		visit(c.handle, c.key, c.value)
	}
}
