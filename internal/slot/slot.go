// Package slot provides the discrete time base of the I/O-GUARD
// reproduction: time-slot indices, greatest-common-divisor/least-common-
// multiple arithmetic on slots, and the Time Slot Table σ* that the
// P-channel of the virtualization manager consults every slot.
//
// All scheduling in the paper (Sec. III and IV of Jiang et al., DAC'21)
// happens at time-slot granularity: pre-defined I/O tasks own fixed
// slots of σ*, and the remaining free slots form the supply available
// to the R-channel's two-layer scheduler. The Table type models σ*
// exactly: a repeating schedule of length H in which every slot is
// either owned by one pre-defined task or free.
package slot

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Time is a time-slot index (or a count of slots). One slot is the
// atomic unit of I/O execution and preemption in the hypervisor; the
// FPGA prototype derives it from the 100 MHz global timer.
type Time int64

// Never is a sentinel representing an unreachable point in time.
const Never Time = math.MaxInt64

// TaskID identifies a pre-defined I/O task loaded into the P-channel
// memory banks. IDs are small non-negative integers assigned at load
// time.
type TaskID int32

// Free marks a slot of the time slot table that is not owned by any
// pre-defined task and is therefore available to the R-channel.
const Free TaskID = -1

// GCD returns the greatest common divisor of a and b. GCD(0, b) = b.
func GCD(a, b Time) Time {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 when either
// is 0. It saturates at Never on overflow.
func LCM(a, b Time) Time {
	if a == 0 || b == 0 {
		return 0
	}
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	g := GCD(a, b)
	q := a / g
	if q > Never/b {
		return Never
	}
	return q * b
}

// LCMAll returns the least common multiple of all values, or 0 when
// the list is empty.
func LCMAll(vs ...Time) Time {
	var l Time
	for i, v := range vs {
		if i == 0 {
			l = v
			continue
		}
		l = LCM(l, v)
		if l == Never {
			return Never
		}
	}
	return l
}

// Table is the Time Slot Table σ*: a repeating schedule of length H
// whose entries record, for every slot of one hyper-period, which
// pre-defined task (if any) owns the slot. The infinite table σ used
// by the analysis in Sec. IV is the infinite repetition of σ*.
//
// The zero value is an empty table of length 0; use NewTable.
type Table struct {
	slots []TaskID
	free  int

	// Lazily built index over the free slots, dropped on any mutation:
	// freePrefix[i] counts the free slots in [0,i), and freePos lists
	// the free positions in ascending order. Both serve the O(1)/O(log)
	// queries the fast-forwarding simulation loop issues per skipped
	// span (FreeIn, NextFree).
	freePrefix []int32
	freePos    []Time
}

// ensureIndex (re)builds the free-slot index if a mutation dropped it.
func (t *Table) ensureIndex() {
	if t.freePrefix != nil || len(t.slots) == 0 {
		return
	}
	t.freePrefix = make([]int32, len(t.slots)+1)
	t.freePos = make([]Time, 0, t.free)
	for i, id := range t.slots {
		t.freePrefix[i+1] = t.freePrefix[i]
		if id == Free {
			t.freePrefix[i+1]++
			t.freePos = append(t.freePos, Time(i))
		}
	}
}

// NewTable returns an all-free table with hyper-period h.
func NewTable(h int) *Table {
	if h < 0 {
		h = 0
	}
	s := make([]TaskID, h)
	for i := range s {
		s[i] = Free
	}
	return &Table{slots: s, free: h}
}

// Len returns H, the hyper-period (total number of slots in σ*).
func (t *Table) Len() int { return len(t.slots) }

// FreeCount returns F, the number of free slots in σ*.
func (t *Table) FreeCount() int { return t.free }

// Utilization returns the fraction of σ* consumed by pre-defined
// tasks, i.e. (H-F)/H. It is 0 for an empty table.
func (t *Table) Utilization() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(len(t.slots)-t.free) / float64(len(t.slots))
}

// index maps an arbitrary (possibly ≥H) slot time onto σ*.
func (t *Table) index(at Time) int {
	h := Time(len(t.slots))
	i := at % h
	if i < 0 {
		i += h
	}
	return int(i)
}

// Owner returns the pre-defined task owning slot at (mod H), or Free.
func (t *Table) Owner(at Time) TaskID {
	if len(t.slots) == 0 {
		return Free
	}
	return t.slots[t.index(at)]
}

// IsFree reports whether slot at (mod H) is available to the R-channel.
func (t *Table) IsFree(at Time) bool { return t.Owner(at) == Free }

// Assign gives slot at (mod H) to task id. It fails if the slot is
// already owned or id is invalid.
func (t *Table) Assign(at Time, id TaskID) error {
	if id < 0 {
		return fmt.Errorf("slot: invalid task id %d", id)
	}
	if len(t.slots) == 0 {
		return errors.New("slot: assign on empty table")
	}
	i := t.index(at)
	if t.slots[i] != Free {
		return fmt.Errorf("slot: slot %d already owned by task %d", i, t.slots[i])
	}
	t.slots[i] = id
	t.free--
	t.freePrefix, t.freePos = nil, nil
	return nil
}

// Clear releases slot at (mod H) back to the free pool.
func (t *Table) Clear(at Time) {
	if len(t.slots) == 0 {
		return
	}
	i := t.index(at)
	if t.slots[i] != Free {
		t.slots[i] = Free
		t.free++
		t.freePrefix, t.freePos = nil, nil
	}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{slots: make([]TaskID, len(t.slots)), free: t.free}
	copy(c.slots, t.slots)
	return c
}

// OwnedBy returns the indices (0 ≤ i < H) of every slot owned by id,
// in increasing order.
func (t *Table) OwnedBy(id TaskID) []Time {
	var out []Time
	for i, o := range t.slots {
		if o == id {
			out = append(out, Time(i))
		}
	}
	return out
}

// FreeSlots returns the indices (0 ≤ i < H) of all free slots, in
// increasing order.
func (t *Table) FreeSlots() []Time {
	out := make([]Time, 0, t.free)
	for i, id := range t.slots {
		if id == Free {
			out = append(out, Time(i))
		}
	}
	return out
}

// NextFree returns the first slot ≥ from that is free in σ, or Never
// if the table has no free slots at all.
func (t *Table) NextFree(from Time) Time {
	if t.free == 0 || len(t.slots) == 0 {
		return Never
	}
	t.ensureIndex()
	idx := Time(t.index(from))
	i := sort.Search(len(t.freePos), func(k int) bool { return t.freePos[k] >= idx })
	if i < len(t.freePos) {
		return from + (t.freePos[i] - idx)
	}
	h := Time(len(t.slots))
	return from + (h - idx) + t.freePos[0]
}

// FreeIn returns the number of free slots in the half-open window
// [from, from+length) of the infinite table σ.
func (t *Table) FreeIn(from, length Time) Time {
	if length <= 0 || len(t.slots) == 0 {
		return 0
	}
	t.ensureIndex()
	h := Time(len(t.slots))
	full := length / h
	n := full * Time(t.free)
	lo := Time(t.index(from))
	rem := length % h
	if hi := lo + rem; hi <= h {
		n += Time(t.freePrefix[hi] - t.freePrefix[lo])
	} else {
		n += Time(t.freePrefix[h] - t.freePrefix[lo])
		n += Time(t.freePrefix[hi-h])
	}
	return n
}

// String renders σ* as a compact single-line schedule, e.g.
// "|0|0|.|1|.|" where digits are task IDs and '.' is a free slot.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteByte('|')
	for _, id := range t.slots {
		if id == Free {
			b.WriteByte('.')
		} else {
			fmt.Fprintf(&b, "%d", id)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// Requirement describes one pre-defined (periodic) I/O task to be
// compiled into σ*: it releases a job every Period slots starting at
// Offset, each job needs WCET slots and must finish within Deadline
// slots of its release. Deadline ≤ Period (constrained deadlines).
type Requirement struct {
	ID       TaskID
	Period   Time
	WCET     Time
	Deadline Time
	Offset   Time
}

// Validate reports whether the requirement is internally consistent.
func (r Requirement) Validate() error {
	switch {
	case r.ID < 0:
		return fmt.Errorf("slot: requirement %d: negative id", r.ID)
	case r.Period <= 0:
		return fmt.Errorf("slot: requirement %d: period %d ≤ 0", r.ID, r.Period)
	case r.WCET <= 0:
		return fmt.Errorf("slot: requirement %d: wcet %d ≤ 0", r.ID, r.WCET)
	case r.Deadline <= 0:
		return fmt.Errorf("slot: requirement %d: deadline %d ≤ 0", r.ID, r.Deadline)
	case r.Deadline > r.Period:
		return fmt.Errorf("slot: requirement %d: deadline %d > period %d (constrained deadlines required)", r.ID, r.Deadline, r.Period)
	case r.WCET > r.Deadline:
		return fmt.Errorf("slot: requirement %d: wcet %d > deadline %d", r.ID, r.WCET, r.Deadline)
	case r.Offset < 0 || r.Offset >= r.Period:
		return fmt.Errorf("slot: requirement %d: offset %d outside [0,%d)", r.ID, r.Offset, r.Period)
	}
	return nil
}

// Placement records the slots granted to one job of a pre-defined
// task during table construction.
type Placement struct {
	Task     TaskID
	Release  Time
	Deadline Time
	Slots    []Time
}

// ErrOverload is returned by Build when the pre-defined tasks cannot
// all meet their deadlines within one hyper-period.
var ErrOverload = errors.New("slot: pre-defined task set is unschedulable")

// Build compiles a set of pre-defined task requirements into a Time
// Slot Table σ* of length H = lcm(periods), using offline preemptive
// EDF to place every job of the hyper-period. This mirrors the
// "loaded during system initialization" step of Sec. II-B: the
// resulting table fixes, before run time, exactly which slots each
// pre-defined task executes in.
//
// Build fails with ErrOverload if some job cannot meet its deadline.
func Build(reqs []Requirement) (*Table, []Placement, error) {
	if len(reqs) == 0 {
		return NewTable(0), nil, nil
	}
	ids := map[TaskID]bool{}
	periods := make([]Time, 0, len(reqs))
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, nil, err
		}
		if ids[r.ID] {
			return nil, nil, fmt.Errorf("slot: duplicate task id %d", r.ID)
		}
		ids[r.ID] = true
		periods = append(periods, r.Period)
	}
	h := LCMAll(periods...)
	if h == Never || h > 1<<22 {
		return nil, nil, fmt.Errorf("slot: hyper-period %d too large", h)
	}

	// Expand all jobs of one hyper-period.
	type job struct {
		req       Requirement
		release   Time
		deadline  Time
		remaining Time
		placed    []Time
		idx       int // position in deadline-sorted order: EDF tie-break
	}
	var jobs []*job
	for _, r := range reqs {
		for rel := r.Offset; rel < h; rel += r.Period {
			jobs = append(jobs, &job{
				req:       r,
				release:   rel,
				deadline:  rel + r.Deadline,
				remaining: r.WCET,
			})
		}
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].deadline != jobs[j].deadline {
			return jobs[i].deadline < jobs[j].deadline
		}
		return jobs[i].release < jobs[j].release
	})
	for i, j := range jobs {
		j.idx = i
	}
	byRelease := append([]*job(nil), jobs...)
	sort.Slice(byRelease, func(a, b int) bool { return byRelease[a].release < byRelease[b].release })

	tab := NewTable(int(h))
	// Offline preemptive EDF: sweep the slots once, keeping the
	// released unfinished jobs in a min-heap on (deadline, sorted
	// position) — the same pick order as a linear scan of the
	// deadline-sorted slice. Jobs whose deadline crosses the
	// hyper-period boundary wrap onto the (identical) next repetition,
	// so the sweep covers 2H slots but only places within
	// [release, deadline); stretches with no released work are jumped.
	less := func(a, b *job) bool {
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.idx < b.idx
	}
	var ready []*job
	push := func(j *job) {
		ready = append(ready, j)
		for i := len(ready) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(ready[i], ready[p]) {
				break
			}
			ready[i], ready[p] = ready[p], ready[i]
			i = p
		}
	}
	pop := func() {
		n := len(ready) - 1
		ready[0] = ready[n]
		ready[n] = nil
		ready = ready[:n]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && less(ready[l], ready[m]) {
				m = l
			}
			if r < n && less(ready[r], ready[m]) {
				m = r
			}
			if m == i {
				break
			}
			ready[i], ready[m] = ready[m], ready[i]
			i = m
		}
	}
	ri := 0
	for now := Time(0); now < 2*h; {
		for ri < len(byRelease) && byRelease[ri].release <= now {
			push(byRelease[ri])
			ri++
		}
		// An expired head can never be placed again; it surfaces as
		// ErrOverload below, exactly as under the per-slot scan.
		for len(ready) > 0 && ready[0].deadline <= now {
			pop()
		}
		if len(ready) == 0 {
			if ri >= len(byRelease) {
				break
			}
			now = byRelease[ri].release
			continue
		}
		if tab.IsFree(now) { // else: taken by a wrapped earlier placement
			pick := ready[0]
			if err := tab.Assign(now, pick.req.ID); err != nil {
				return nil, nil, err
			}
			pick.placed = append(pick.placed, now%h)
			pick.remaining--
			if pick.remaining == 0 {
				pop()
			}
		}
		now++
	}
	placements := make([]Placement, 0, len(jobs))
	for _, j := range jobs {
		if j.remaining > 0 {
			return nil, nil, fmt.Errorf("%w: task %d job released at %d misses deadline %d",
				ErrOverload, j.req.ID, j.release, j.deadline)
		}
		placements = append(placements, Placement{
			Task:     j.req.ID,
			Release:  j.release,
			Deadline: j.deadline,
			Slots:    j.placed,
		})
	}
	sort.Slice(placements, func(i, j int) bool {
		if placements[i].Release != placements[j].Release {
			return placements[i].Release < placements[j].Release
		}
		return placements[i].Task < placements[j].Task
	})
	return tab, placements, nil
}
