package sim

import (
	"testing"

	"ioguard/internal/slot"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Errorf("Now = %d, want 0", e.Now())
	}
}

func TestRunAdvancesTime(t *testing.T) {
	e := New(1)
	e.Run(10)
	if e.Now() != 10 {
		t.Errorf("Now = %d, want 10", e.Now())
	}
	e.Run(5) // no-op, until < now
	if e.Now() != 10 {
		t.Errorf("Run into the past moved time: %d", e.Now())
	}
}

func TestSteppersCalledOncePerSlotInOrder(t *testing.T) {
	e := New(1)
	var log []int
	e.Register(StepFunc(func(now slot.Time) { log = append(log, 1) }))
	e.Register(StepFunc(func(now slot.Time) { log = append(log, 2) }))
	e.Run(3)
	want := []int{1, 2, 1, 2, 1, 2}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestStepperSeesCurrentSlot(t *testing.T) {
	e := New(1)
	var seen []slot.Time
	e.Register(StepFunc(func(now slot.Time) { seen = append(seen, now) }))
	e.Run(4)
	for i, s := range seen {
		if s != slot.Time(i) {
			t.Fatalf("seen = %v", seen)
		}
	}
}

func TestEventsFireAtScheduledSlot(t *testing.T) {
	e := New(1)
	var fired slot.Time = -1
	e.At(5, func(now slot.Time) { fired = now })
	e.Run(5)
	if fired != -1 {
		t.Error("event fired early")
	}
	e.Run(6)
	if fired != 5 {
		t.Errorf("event fired at %d, want 5", fired)
	}
}

func TestEventsBeforeSteppers(t *testing.T) {
	e := New(1)
	var order []string
	e.Register(StepFunc(func(now slot.Time) {
		if now == 2 {
			order = append(order, "step")
		}
	}))
	e.At(2, func(now slot.Time) { order = append(order, "event") })
	e.Run(3)
	if len(order) != 2 || order[0] != "event" || order[1] != "step" {
		t.Errorf("order = %v, want [event step]", order)
	}
}

func TestEventsSameSlotFIFO(t *testing.T) {
	e := New(1)
	var order []int
	e.At(1, func(slot.Time) { order = append(order, 1) })
	e.At(1, func(slot.Time) { order = append(order, 2) })
	e.At(0, func(slot.Time) { order = append(order, 0) })
	e.Run(2)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestPastEventFiresNextStep(t *testing.T) {
	e := New(1)
	e.Run(10)
	fired := slot.Time(-1)
	e.At(3, func(now slot.Time) { fired = now })
	e.Step()
	if fired != 10 {
		t.Errorf("past event fired at %d, want 10", fired)
	}
}

func TestAfter(t *testing.T) {
	e := New(1)
	e.Run(7)
	var fired slot.Time = -1
	e.After(3, func(now slot.Time) { fired = now })
	e.Run(11)
	if fired != 10 {
		t.Errorf("After(3) fired at %d, want 10", fired)
	}
}

func TestEventMayScheduleEvent(t *testing.T) {
	e := New(1)
	var hits []slot.Time
	var recur func(now slot.Time)
	recur = func(now slot.Time) {
		hits = append(hits, now)
		if now < 6 {
			e.At(now+2, recur)
		}
	}
	e.At(0, recur)
	e.Run(10)
	want := []slot.Time{0, 2, 4, 6}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.RNG().Int63() != b.RNG().Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).RNG().Int63() != c.RNG().Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}
