// Quickstart: build an I/O-GUARD system for a tiny automotive
// workload, check it with the two-layer schedulability analysis, run
// the slot-accurate simulation, and print the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ioguard"
)

func main() {
	// A workload of four I/O tasks across two VMs and two devices.
	// Periods/WCETs are in time slots (1 µs each at 100 MHz).
	tasks := ioguard.TaskSet{
		{ID: 0, Name: "radar-frame", VM: 0, Kind: ioguard.Safety,
			Device: "ethernet", Period: 2000, WCET: 60, Deadline: 2000, OpBytes: 1024},
		{ID: 1, Name: "crc-check", VM: 0, Kind: ioguard.Safety,
			Device: "ethernet", Period: 1000, WCET: 25, Deadline: 1000, OpBytes: 128},
		{ID: 2, Name: "torque-cmd", VM: 1, Kind: ioguard.Function,
			Device: "flexray", Period: 4000, WCET: 90, Deadline: 4000, OpBytes: 64},
		{ID: 3, Name: "telemetry", VM: 1, Kind: ioguard.Synthetic,
			Device: "flexray", Period: 8000, WCET: 240, Deadline: 8000, OpBytes: 512},
	}

	// 1. Offline analysis: compile a Time Slot Table for the tasks we
	// will pre-load, then verify the rest under the two-layer test.
	tab, _, err := ioguard.BuildTable([]ioguard.Requirement{
		{ID: 0, Period: 2000, WCET: 60, Deadline: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σ*: H=%d slots, F=%d free (pre-defined load %.1f%%)\n",
		tab.Len(), tab.FreeCount(), 100*tab.Utilization())

	rchannel := tasks[1:] // the run-time tasks
	servers, res, err := ioguard.SynthesizeServers(tab, rchannel, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-layer analysis: schedulable=%v with servers %v\n", res.Schedulable, servers)

	// 2. Execution: run the complete system for 32 ms of simulated
	// time; half the tasks are pre-loaded into the P-channel.
	build := func(tr ioguard.Trial, col *ioguard.Collector) (ioguard.System, error) {
		return ioguard.NewSystem(ioguard.SystemConfig{
			VMs:         tr.VMs,
			PreloadFrac: 0.5,
			Mode:        ioguard.DirectEDF,
		}, tr.Tasks, col)
	}
	trial := ioguard.Trial{VMs: 2, Tasks: tasks, Horizon: 32000, Seed: 42}
	result, err := ioguard.Run(build, trial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: %d jobs completed, %d critical misses, success=%v\n",
		result.Completed, result.CriticalMisses, result.Success())
	fmt.Printf("throughput: %.3f MB/s, response times: %s\n",
		result.ThroughputMBps(), result.Response.String())

	// 3. The same workload on the software-virtualized baseline, for
	// contrast.
	xen := func(tr ioguard.Trial, col *ioguard.Collector) (ioguard.System, error) {
		return ioguard.NewRTXen(tr.VMs, tr.Tasks, col, 0)
	}
	xenRes, err := ioguard.Run(xen, trial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BS|RT-XEN on the same workload: mean response %.0f slots (I/O-GUARD: %.0f)\n",
		xenRes.Response.Mean(), result.Response.Mean())
}
