// Command ioguard-report renders and gates the benchmark trajectory
// BENCH_sim.json accumulates (cmd/ioguard-bench -append): it
// validates the file (schema, per-run sanity, sketch invariants),
// groups measurements across runs by stable keys — speedup pair,
// nightly sweep (suite, sweep, system), slot-table device — and
// summarizes each group's trend against its prior-run median. The
// sweep rows come from the persisted merged KLL sketches, so the
// latency quantiles are true cross-trial distributions, not per-run
// scalars.
//
// Exit status is the verdict: 0 when no gate fired, 1 on a
// regression (latest speedup below prior-median/2, response p99 above
// prior-median×1.5, success ratio down more than 0.05, footprint
// growth), 2 when the trajectory itself is invalid. The nightly CI
// job runs this after appending a run and fails on a nonzero exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"ioguard/internal/results"
)

func main() {
	var (
		file     = flag.String("f", "BENCH_sim.json", "trajectory (or single report) to analyze")
		out      = flag.String("o", "-", "write the rendered report here (\"-\" for stdout)")
		speedCut = flag.Float64("speedup-drop", 2, "regression gate: latest speedup < prior median / this factor")
		quantCut = flag.Float64("quantile-grow", 1.5, "regression gate: latest response p99 > prior median × this factor")
		succCut  = flag.Float64("success-drop", 0.05, "regression gate: latest success ratio < prior median − this")
		minRuns  = flag.Int("min-runs", 2, "runs needed before any gate fires")
	)
	flag.Parse()

	traj, err := results.LoadTrajectory(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-report: %v\n", err)
		os.Exit(2)
	}
	a := results.Analyze(traj, results.AnalysisConfig{
		SpeedupDropFactor:  *speedCut,
		QuantileGrowFactor: *quantCut,
		SuccessDrop:        *succCut,
		MinRuns:            *minRuns,
	})
	rendered := results.Render(a)
	if *out == "-" {
		fmt.Print(rendered)
	} else if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-report: %v\n", err)
		os.Exit(2)
	}
	if a.Regressed() {
		fmt.Fprintf(os.Stderr, "ioguard-report: REGRESSION (%d finding(s))\n", len(a.Regressions))
		os.Exit(1)
	}
}
