// Package vm models the guest virtual machines of the evaluation
// platform: each VM runs an RTOS hosting a set of I/O tasks, and its
// release engine generates the tasks' jobs — periodically for
// pre-defined-style tasks, sporadically (period plus bounded jitter)
// for run-time tasks (Sec. II-B).
//
// The engine is deliberately deterministic given its random source,
// so the same seed produces "identical data input to the examined
// systems in each execution" as required for the paper's fair
// comparisons.
package vm

import (
	"fmt"
	"math/rand"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Guest is one virtual machine's release engine.
type Guest struct {
	id    int
	specs []*task.Sporadic
	next  []slot.Time
	seq   []int
	rng   *rand.Rand

	released int64
}

// NewGuest builds a guest for VM id owning the given tasks. Every
// task's first release is drawn uniformly from [0, Period) to
// desynchronize the VMs; subsequent releases respect the sporadic
// minimum separation plus up to Jitter extra delay.
func NewGuest(id int, ts task.Set, rng *rand.Rand) (*Guest, error) {
	if rng == nil {
		return nil, fmt.Errorf("vm: guest %d needs a random source", id)
	}
	g := &Guest{id: id, rng: rng}
	for i := range ts {
		t := ts[i]
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if t.VM != id {
			return nil, fmt.Errorf("vm: task %d belongs to vm %d, not %d", t.ID, t.VM, id)
		}
		spec := t
		g.specs = append(g.specs, &spec)
		g.next = append(g.next, slot.Time(rng.Int63n(int64(t.Period))))
		g.seq = append(g.seq, 0)
	}
	return g, nil
}

// ID returns the VM index.
func (g *Guest) ID() int { return g.id }

// Tasks returns the guest's task specs (shared pointers: the jobs the
// guest releases reference them).
func (g *Guest) Tasks() []*task.Sporadic { return g.specs }

// Released returns how many jobs the guest has released so far.
func (g *Guest) Released() int64 { return g.released }

// Release emits every job due at slot now. Call once per slot, in
// increasing time order.
func (g *Guest) Release(now slot.Time, emit func(j *task.Job)) {
	for i, spec := range g.specs {
		for g.next[i] <= now {
			j := task.NewJob(spec, g.seq[i], g.next[i])
			g.seq[i]++
			g.released++
			gap := spec.Period
			if spec.Jitter > 0 {
				gap += slot.Time(g.rng.Int63n(int64(spec.Jitter) + 1))
			}
			g.next[i] += gap
			emit(j)
		}
	}
}

// NextRelease returns the earliest upcoming release slot across the
// guest's tasks, or slot.Never for a guest without tasks. It is exact,
// not a bound: release jitter is materialized into next[] when the
// previous job is released, so the runner may fast-forward straight to
// this slot without missing a release.
func (g *Guest) NextRelease() slot.Time {
	next := slot.Never
	for _, at := range g.next {
		if at < next {
			next = at
		}
	}
	return next
}

// Fleet is a set of guests released in VM order.
type Fleet []*Guest

// NewFleet partitions ts by VM and builds one guest per VM, numbered
// 0..vms-1. VMs without tasks get an empty guest. All guests share
// the given random source.
func NewFleet(vms int, ts task.Set, rng *rand.Rand) (Fleet, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("vm: need at least one VM, got %d", vms)
	}
	byVM := ts.ByVM()
	fleet := make(Fleet, 0, vms)
	for id := 0; id < vms; id++ {
		g, err := NewGuest(id, byVM[id], rng)
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, g)
	}
	for vmID := range byVM {
		if vmID >= vms {
			return nil, fmt.Errorf("vm: task set references vm %d beyond fleet of %d", vmID, vms)
		}
	}
	return fleet, nil
}

// Release emits all due jobs across the fleet at slot now.
func (f Fleet) Release(now slot.Time, emit func(j *task.Job)) {
	for _, g := range f {
		g.Release(now, emit)
	}
}

// NextRelease returns the earliest upcoming release slot across the
// fleet, or slot.Never when no guest has tasks.
func (f Fleet) NextRelease() slot.Time {
	next := slot.Never
	for _, g := range f {
		if at := g.NextRelease(); at < next {
			next = at
		}
	}
	return next
}

// Released returns the fleet-wide release count.
func (f Fleet) Released() int64 {
	var n int64
	for _, g := range f {
		n += g.Released()
	}
	return n
}
