package slot

import (
	"errors"
	"testing"
)

func TestAllocatePeriodicBasic(t *testing.T) {
	tab := NewTable(8)
	pl, err := tab.AllocatePeriodic(Requirement{ID: 0, Period: 4, WCET: 1, Deadline: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 2 {
		t.Fatalf("placements = %d, want 2 jobs in H=8", len(pl))
	}
	if tab.Owner(0) != 0 || tab.Owner(4) != 0 {
		t.Errorf("earliest-free placement wrong: %s", tab)
	}
	if tab.FreeCount() != 6 {
		t.Errorf("free = %d", tab.FreeCount())
	}
}

func TestAllocatePeriodicAvoidsBusySlots(t *testing.T) {
	tab := NewTable(8)
	tab.Assign(0, 9)
	tab.Assign(4, 9)
	pl, err := tab.AllocatePeriodic(Requirement{ID: 1, Period: 4, WCET: 1, Deadline: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Owner(1) != 1 || tab.Owner(5) != 1 {
		t.Errorf("allocation should skip busy slots: %s", tab)
	}
	for _, p := range pl {
		for _, s := range p.Slots {
			if tab.Owner(s) != 1 {
				t.Errorf("placement slot %d not owned", s)
			}
		}
	}
}

func TestAllocatePeriodicRollsBackOnFailure(t *testing.T) {
	// First job window has room, second doesn't: everything must be
	// rolled back.
	tab := NewTable(8)
	for _, s := range []Time{4, 5, 6, 7} {
		tab.Assign(s, 9)
	}
	before := tab.FreeCount()
	_, err := tab.AllocatePeriodic(Requirement{ID: 1, Period: 4, WCET: 2, Deadline: 4})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if tab.FreeCount() != before {
		t.Errorf("rollback incomplete: free %d → %d", before, tab.FreeCount())
	}
	for i := Time(0); i < 8; i++ {
		if tab.Owner(i) == 1 {
			t.Errorf("slot %d leaked to task 1", i)
		}
	}
}

func TestAllocatePeriodicValidation(t *testing.T) {
	tab := NewTable(8)
	if _, err := tab.AllocatePeriodic(Requirement{ID: 0, Period: 3, WCET: 1, Deadline: 3}); err == nil {
		t.Error("non-dividing period accepted")
	}
	if _, err := tab.AllocatePeriodic(Requirement{ID: -1, Period: 4, WCET: 1, Deadline: 4}); err == nil {
		t.Error("invalid requirement accepted")
	}
	empty := NewTable(0)
	if _, err := empty.AllocatePeriodic(Requirement{ID: 0, Period: 4, WCET: 1, Deadline: 4}); err == nil {
		t.Error("empty table accepted")
	}
	tab.AllocatePeriodic(Requirement{ID: 2, Period: 8, WCET: 1, Deadline: 8})
	if _, err := tab.AllocatePeriodic(Requirement{ID: 2, Period: 4, WCET: 1, Deadline: 4}); err == nil {
		t.Error("duplicate owner accepted")
	}
}

func TestAllocatePeriodicWithOffsetWraps(t *testing.T) {
	tab := NewTable(8)
	// Offset 6, deadline 4: the job's window [6,10) wraps to slots 6,7,0,1.
	pl, err := tab.AllocatePeriodic(Requirement{ID: 3, Period: 8, WCET: 3, Deadline: 4, Offset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 || len(pl[0].Slots) != 3 {
		t.Fatalf("placements = %+v", pl)
	}
	if tab.Owner(6) != 3 || tab.Owner(7) != 3 || tab.Owner(0) != 3 {
		t.Errorf("wrapped allocation wrong: %s", tab)
	}
}

func TestReleaseFreesSlots(t *testing.T) {
	tab := NewTable(8)
	tab.AllocatePeriodic(Requirement{ID: 5, Period: 4, WCET: 2, Deadline: 4})
	if n := tab.Release(5); n != 4 {
		t.Errorf("released %d, want 4", n)
	}
	if tab.FreeCount() != 8 {
		t.Errorf("free = %d after release", tab.FreeCount())
	}
	if n := tab.Release(5); n != 0 {
		t.Errorf("double release freed %d", n)
	}
}
