// The analysis half of the results pipeline: ioguard-report loads a
// trajectory, groups measurements across runs by stable keys
// (speedup pair name, sweep-sketch (suite, sweep, system), slot-table
// device), summarizes each group's trend, renders paper-ready tables,
// and decides a regression verdict — the nightly CI gate.
package results

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AnalysisConfig tunes the regression gates. The zero value selects
// the defaults.
type AnalysisConfig struct {
	// SpeedupDropFactor flags a speedup pair when the latest run falls
	// below the prior-run median divided by this factor (default 2:
	// losing half the speedup is a regression, benchmark noise is not).
	SpeedupDropFactor float64
	// QuantileGrowFactor flags a sweep when the latest response p99
	// exceeds the prior-run median multiplied by this factor (default
	// 1.5).
	QuantileGrowFactor float64
	// SuccessDrop flags a sweep when the latest success ratio falls
	// more than this many ratio points below the prior median
	// (default 0.05).
	SuccessDrop float64
	// MinRuns is the run count below which no verdicts fire (default
	// 2: a trend needs a past).
	MinRuns int
}

func (c *AnalysisConfig) defaults() {
	if c.SpeedupDropFactor <= 0 {
		c.SpeedupDropFactor = 2
	}
	if c.QuantileGrowFactor <= 0 {
		c.QuantileGrowFactor = 1.5
	}
	if c.SuccessDrop <= 0 {
		c.SuccessDrop = 0.05
	}
	if c.MinRuns <= 0 {
		c.MinRuns = 2
	}
}

// Trend is one measurement tracked across the runs that carry it.
type Trend struct {
	Key    string
	Values []float64 // chronological, one per run carrying the key
}

// Latest returns the newest value.
func (t *Trend) Latest() float64 { return t.Values[len(t.Values)-1] }

// PriorMedian returns the median of all values before the newest, or
// NaN when the trend has no past.
func (t *Trend) PriorMedian() float64 {
	prior := t.Values[:len(t.Values)-1]
	if len(prior) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), prior...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// SketchRow is one sweep sketch's rendered summary for the latest run
// carrying its key.
type SketchRow struct {
	Key            string
	Trials         int
	SuccessRatio   float64
	ThroughputMean float64
	N              int
	P50, P99, Max  float64
	TardP99        float64
}

// Analysis is a trajectory's grouped, trend-summarized view.
type Analysis struct {
	Runs        int
	FirstStamp  string
	LastStamp   string
	Speedups    []Trend // speedup ratio per pair
	Quantiles   []Trend // response p99 (slots) per sweep key
	Success     []Trend // success ratio per sweep key
	Footprints  []Trend // interval bytes per slot-table device
	Sketches    []SketchRow
	Regressions []string
}

// Regressed reports whether any gate fired.
func (a *Analysis) Regressed() bool { return len(a.Regressions) > 0 }

// collectTrends folds per-run (key, value) pairs into ordered trends.
type trendSet struct {
	byKey map[string]*Trend
	order []string
}

func newTrendSet() *trendSet { return &trendSet{byKey: map[string]*Trend{}} }

func (ts *trendSet) add(key string, v float64) {
	t, ok := ts.byKey[key]
	if !ok {
		t = &Trend{Key: key}
		ts.byKey[key] = t
		ts.order = append(ts.order, key)
	}
	t.Values = append(t.Values, v)
}

func (ts *trendSet) trends() []Trend {
	out := make([]Trend, 0, len(ts.order))
	for _, k := range ts.order {
		out = append(out, *ts.byKey[k])
	}
	return out
}

// Analyze groups the trajectory's runs and decides the verdict.
func Analyze(traj *Trajectory, cfg AnalysisConfig) *Analysis {
	cfg.defaults()
	a := &Analysis{Runs: len(traj.Runs)}
	if a.Runs == 0 {
		a.Regressions = append(a.Regressions, "trajectory holds no runs")
		return a
	}
	a.FirstStamp = traj.Runs[0].Timestamp
	a.LastStamp = traj.Runs[a.Runs-1].Timestamp

	speed := newTrendSet()
	quant := newTrendSet()
	succ := newTrendSet()
	foot := newTrendSet()
	latestSketch := map[string]SketchRow{}
	var sketchOrder []string
	for _, run := range traj.Runs {
		for _, s := range run.Speedups {
			speed.add(s.Name, s.Speedup)
		}
		for _, row := range run.SlotTables {
			foot.add(row.Device, float64(row.IntervalBytes))
		}
		for i := range run.SweepSketches {
			sk := &run.SweepSketches[i]
			key := sk.Key()
			row := SketchRow{
				Key:            key,
				Trials:         sk.Trials,
				SuccessRatio:   sk.SuccessRatio,
				ThroughputMean: sk.ThroughputMean,
			}
			if sk.Response != nil {
				row.N = sk.Response.N()
				row.P50 = sk.Response.Percentile(50)
				row.P99 = sk.Response.Percentile(99)
				row.Max = sk.Response.Max()
				quant.add(key, row.P99)
			}
			if sk.Tardiness != nil {
				row.TardP99 = sk.Tardiness.Percentile(99)
			}
			succ.add(key, sk.SuccessRatio)
			if _, ok := latestSketch[key]; !ok {
				sketchOrder = append(sketchOrder, key)
			}
			latestSketch[key] = row
		}
	}
	a.Speedups = speed.trends()
	a.Quantiles = quant.trends()
	a.Success = succ.trends()
	a.Footprints = foot.trends()
	for _, k := range sketchOrder {
		a.Sketches = append(a.Sketches, latestSketch[k])
	}

	if a.Runs < cfg.MinRuns {
		return a // a trend needs a past; single-run trajectories pass
	}
	for _, t := range a.Speedups {
		med := t.PriorMedian()
		if math.IsNaN(med) || med <= 0 {
			continue
		}
		if t.Latest() < med/cfg.SpeedupDropFactor {
			a.Regressions = append(a.Regressions, fmt.Sprintf(
				"speedup %s fell to %.2f× (prior median %.2f×, gate %.2f×)",
				t.Key, t.Latest(), med, med/cfg.SpeedupDropFactor))
		}
	}
	for _, t := range a.Quantiles {
		med := t.PriorMedian()
		if math.IsNaN(med) {
			continue
		}
		gate := med * cfg.QuantileGrowFactor
		if med == 0 {
			// A p99 that was pinned at zero and moved is a real tail
			// regression, not noise a factor could scale.
			gate = 0
		}
		if t.Latest() > gate {
			a.Regressions = append(a.Regressions, fmt.Sprintf(
				"response p99 of %s grew to %.0f slots (prior median %.0f, gate %.0f)",
				t.Key, t.Latest(), med, gate))
		}
	}
	for _, t := range a.Success {
		med := t.PriorMedian()
		if math.IsNaN(med) {
			continue
		}
		if t.Latest() < med-cfg.SuccessDrop {
			a.Regressions = append(a.Regressions, fmt.Sprintf(
				"success ratio of %s fell to %.3f (prior median %.3f, gate %.3f)",
				t.Key, t.Latest(), med, med-cfg.SuccessDrop))
		}
	}
	for _, t := range a.Footprints {
		med := t.PriorMedian()
		if math.IsNaN(med) || med <= 0 {
			continue
		}
		if t.Latest() > med*cfg.QuantileGrowFactor {
			a.Regressions = append(a.Regressions, fmt.Sprintf(
				"slot-table footprint of %s grew to %.0f B (prior median %.0f B)",
				t.Key, t.Latest(), med))
		}
	}
	return a
}

// trendCell renders "latest (prior median)" for one trend.
func trendCell(t Trend, format string) string {
	latest := fmt.Sprintf(format, t.Latest())
	med := t.PriorMedian()
	if math.IsNaN(med) {
		return latest
	}
	return latest + " (prior " + fmt.Sprintf(format, med) + ")"
}

// Render prints the analysis as paper-ready markdown tables.
func Render(a *Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# I/O-GUARD benchmark trajectory report\n\n")
	fmt.Fprintf(&b, "runs: %d", a.Runs)
	if a.FirstStamp != "" {
		fmt.Fprintf(&b, " (%s → %s)", a.FirstStamp, a.LastStamp)
	}
	b.WriteString("\n")
	if len(a.Sketches) > 0 {
		b.WriteString("\n## Sweep latency distributions (latest run, slots)\n\n")
		b.WriteString("| sweep | trials | success | tput MB/s | n | p50 | p99 | max | tard p99 |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
		for _, r := range a.Sketches {
			fmt.Fprintf(&b, "| %s | %d | %.3f | %.3f | %d | %.0f | %.0f | %.0f | %.0f |\n",
				r.Key, r.Trials, r.SuccessRatio, r.ThroughputMean, r.N, r.P50, r.P99, r.Max, r.TardP99)
		}
	}
	if len(a.Quantiles) > 0 {
		b.WriteString("\n## Response p99 trend (slots)\n\n| sweep | p99 |\n|---|---|\n")
		for _, t := range a.Quantiles {
			fmt.Fprintf(&b, "| %s | %s |\n", t.Key, trendCell(t, "%.0f"))
		}
	}
	if len(a.Speedups) > 0 {
		b.WriteString("\n## Speedup pairs\n\n| pair | speedup |\n|---|---|\n")
		for _, t := range a.Speedups {
			fmt.Fprintf(&b, "| %s | %s |\n", t.Key, trendCell(t, "%.2f×"))
		}
	}
	if len(a.Footprints) > 0 {
		b.WriteString("\n## Slot-table footprint (interval bytes)\n\n| device | bytes |\n|---|---|\n")
		for _, t := range a.Footprints {
			fmt.Fprintf(&b, "| %s | %s |\n", t.Key, trendCell(t, "%.0f"))
		}
	}
	b.WriteString("\n## Verdict\n\n")
	if a.Regressed() {
		b.WriteString("REGRESSION\n")
		for _, r := range a.Regressions {
			fmt.Fprintf(&b, "- %s\n", r)
		}
	} else {
		b.WriteString("OK\n")
	}
	return b.String()
}
