// Hypervisor: the top-level composition of Sec. III — one
// (virtualization manager, virtualization driver) pair per connected
// I/O device, stepped in lockstep by the global timer.
package hypervisor

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Hypervisor aggregates per-device managers and routes submissions by
// the task's Device name. It implements sim.Stepper.
type Hypervisor struct {
	managers map[string]*Manager
	drivers  map[string]Driver
	names    []string // deterministic step order
	// dropped counts jobs for unknown devices. Atomic: Submit is the
	// fallback path of the sharded runners and may interleave with
	// concurrent Dropped snapshots (the server's stats endpoint).
	dropped atomic.Int64
}

// NewHypervisor returns an empty hypervisor.
func NewHypervisor() *Hypervisor {
	return &Hypervisor{
		managers: make(map[string]*Manager),
		drivers:  make(map[string]Driver),
	}
}

// Add attaches a manager/driver pair for the named device. The
// manager's path latencies must already reflect the driver's bounded
// translation costs (see Driver.RequestLatency/ResponseLatency).
func (h *Hypervisor) Add(device string, m *Manager, d Driver) error {
	if device == "" {
		return fmt.Errorf("hypervisor: empty device name")
	}
	if _, dup := h.managers[device]; dup {
		return fmt.Errorf("hypervisor: device %q already attached", device)
	}
	if err := d.Validate(); err != nil {
		return err
	}
	h.managers[device] = m
	h.drivers[device] = d
	h.names = append(h.names, device)
	sort.Strings(h.names)
	return nil
}

// Manager returns the manager attached for device.
func (h *Hypervisor) Manager(device string) (*Manager, error) {
	m, ok := h.managers[device]
	if !ok {
		return nil, fmt.Errorf("hypervisor: no manager for device %q", device)
	}
	return m, nil
}

// Driver returns the driver attached for device.
func (h *Hypervisor) Driver(device string) (Driver, error) {
	d, ok := h.drivers[device]
	if !ok {
		return Driver{}, fmt.Errorf("hypervisor: no driver for device %q", device)
	}
	return d, nil
}

// Devices returns the attached device names in step order.
func (h *Hypervisor) Devices() []string {
	return append([]string(nil), h.names...)
}

// Submit routes a run-time job to the manager of its task's device.
// Jobs for unknown devices are dropped and counted.
func (h *Hypervisor) Submit(now slot.Time, j *task.Job) {
	m, ok := h.managers[j.Task.Device]
	if !ok {
		h.dropped.Add(1)
		return
	}
	m.Submit(now, j)
}

// Dropped returns the number of jobs rejected for unknown devices.
func (h *Hypervisor) Dropped() int64 { return h.dropped.Load() }

// Step advances every manager one slot, in device-name order.
func (h *Hypervisor) Step(now slot.Time) {
	for _, n := range h.names {
		h.managers[n].Step(now)
	}
}

// NextWork implements the sim.Quiescer protocol across devices: the
// earliest slot any manager needs.
func (h *Hypervisor) NextWork(now slot.Time) slot.Time {
	next := slot.Never
	for _, n := range h.names {
		nw := h.managers[n].NextWork(now)
		if nw <= now {
			return now
		}
		if nw < next {
			next = nw
		}
	}
	return next
}

// SkipTo forwards a fast-forwarded span to every manager's bulk idle
// accounting.
func (h *Hypervisor) SkipTo(from, to slot.Time) {
	for _, n := range h.names {
		h.managers[n].SkipTo(from, to)
	}
}

// Stats returns a per-device snapshot of the managers' counters.
func (h *Hypervisor) Stats() map[string]Stats {
	out := make(map[string]Stats, len(h.managers))
	for n, m := range h.managers {
		out[n] = m.Stats()
	}
	return out
}

// PendingJobs visits every buffered job across all managers.
func (h *Hypervisor) PendingJobs(visit func(j *task.Job)) {
	for _, n := range h.names {
		h.managers[n].PendingJobs(visit)
	}
}
