// Package noc simulates the predictability-focused mesh
// Network-on-Chip of the evaluation platform (a 5×5 mesh in Sec. V,
// following BlueShell [8]): XY dimension-ordered routing,
// store-and-forward switching, and FIFO arbitration at every router
// output port.
//
// The NoC is what makes the baselines unpredictable: in BS|Legacy
// "the scheduling related to resource management [is left] to the
// routers", i.e. to these FIFO arbiters, so I/O packets suffer
// contention at every hop. I/O-GUARD routes I/O requests to the
// hypervisor over dedicated point-to-point links instead (Sec. II-A),
// bypassing the routers entirely.
package noc

import (
	"fmt"

	"ioguard/internal/packet"
	"ioguard/internal/queue"
	"ioguard/internal/slot"
)

// Coord addresses a mesh tile.
type Coord struct{ X, Y int }

// String renders the coordinate as (x,y).
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Port is a router output direction.
type Port uint8

// Router ports.
const (
	Local Port = iota // deliver to the attached tile
	North
	South
	East
	West
	numPorts
)

// String returns the port name.
func (p Port) String() string {
	switch p {
	case Local:
		return "local"
	case North:
		return "north"
	case South:
		return "south"
	case East:
		return "east"
	case West:
		return "west"
	default:
		return fmt.Sprintf("port(%d)", uint8(p))
	}
}

// Arbitration selects how router output ports order waiting packets.
type Arbitration uint8

// Arbitration policies.
const (
	// FIFOArbitration is the conventional router: first come, first
	// served (the policy that makes BS|Legacy unpredictable).
	FIFOArbitration Arbitration = iota
	// DeadlineArbitration forwards the earliest-deadline waiting
	// packet first — a predictability-focused router extension in the
	// spirit of the paper's assumption (i); provided for ablations.
	DeadlineArbitration
)

// String returns the policy name.
func (a Arbitration) String() string {
	switch a {
	case FIFOArbitration:
		return "fifo"
	case DeadlineArbitration:
		return "deadline"
	default:
		return fmt.Sprintf("arbitration(%d)", uint8(a))
	}
}

// flight is a packet in transit through one router output port.
type flight struct {
	pkt      *packet.Packet
	injected slot.Time // when the packet entered the NoC
	left     slot.Time // remaining slots on the current link
}

// pktQueue abstracts the per-port waiting buffer so both arbitration
// policies share the router pipeline.
type pktQueue interface {
	push(f *flight) bool
	pop() (*flight, bool)
	len() int
	each(visit func(f *flight))
}

// fifoPktQueue adapts queue.FIFO.
type fifoPktQueue struct{ q *queue.FIFO[*flight] }

func (f fifoPktQueue) push(fl *flight) bool        { return f.q.Push(fl) }
func (f fifoPktQueue) pop() (*flight, bool)        { return f.q.Pop() }
func (f fifoPktQueue) len() int                    { return f.q.Len() }
func (f fifoPktQueue) each(visit func(fl *flight)) { f.q.Each(visit) }

// prioPktQueue adapts queue.PQ keyed by packet deadline.
type prioPktQueue struct {
	q *queue.PQ[*flight]
}

func (p prioPktQueue) push(fl *flight) bool {
	_, err := p.q.Push(fl.pkt.Deadline, fl)
	return err == nil
}
func (p prioPktQueue) pop() (*flight, bool) {
	_, fl, ok := p.q.PopMin()
	return fl, ok
}
func (p prioPktQueue) len() int { return p.q.Len() }
func (p prioPktQueue) each(visit func(fl *flight)) {
	p.q.Each(func(_ queue.Handle, _ slot.Time, fl *flight) { visit(fl) })
}

// outPort is one router output: an arbiter plus the link currently
// serializing a packet.
type outPort struct {
	waiting pktQueue
	current *flight
}

// router is one mesh tile's 5-port router.
type router struct {
	at  Coord
	out [numPorts]*outPort
}

// Config parameterizes the mesh.
type Config struct {
	Width, Height int
	FlitBytes     int         // link width; default 4
	HopLatency    slot.Time   // router pipeline latency per hop; default 1
	QueueDepth    int         // per-port buffer depth; 0 = unbounded
	Arbitration   Arbitration // output-port policy; default FIFO
}

// DefaultConfig returns the 5×5 mesh of the evaluation platform.
func DefaultConfig() Config {
	return Config{Width: 5, Height: 5, FlitBytes: 4, HopLatency: 1, QueueDepth: 0}
}

// normalized applies the documented defaults to the zero-value fields.
func (c Config) normalized() (Config, error) {
	if c.Width <= 0 || c.Height <= 0 {
		return c, fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	}
	if c.FlitBytes <= 0 {
		c.FlitBytes = 4
	}
	if c.HopLatency <= 0 {
		c.HopLatency = 1
	}
	return c, nil
}

// newPktQueue builds the per-port waiting buffer for the configured
// arbitration policy.
func newPktQueue(c Config) pktQueue {
	if c.Arbitration == DeadlineArbitration {
		return prioPktQueue{q: queue.NewPQ[*flight](c.QueueDepth)}
	}
	return fifoPktQueue{q: queue.NewFIFO[*flight](c.QueueDepth)}
}

// coordAt returns the tile coordinate of router index ri under c.
func coordAt(c Config, ri int) Coord {
	return Coord{X: ri % c.Width, Y: ri / c.Width}
}

// routeXY returns the XY dimension-ordered next port from cur toward
// dst.
func routeXY(cur, dst Coord) Port {
	switch {
	case dst.X > cur.X:
		return East
	case dst.X < cur.X:
		return West
	case dst.Y > cur.Y:
		return South
	case dst.Y < cur.Y:
		return North
	default:
		return Local
	}
}

// linkSlotsFor returns how long one hop occupies a link for pkt under
// c: serialization of all flits plus the router pipeline latency.
func linkSlotsFor(c Config, pkt *packet.Packet) slot.Time {
	return slot.Time(pkt.Flits(c.FlitBytes)) + c.HopLatency
}

// neighborIdx returns the router index one hop from ri through port.
func neighborIdx(c Config, ri int, port Port) int {
	switch port {
	case East:
		return ri + 1
	case West:
		return ri - 1
	case South:
		return ri + c.Width
	case North:
		return ri - c.Width
	default:
		return ri
	}
}

// Stats aggregates delivery statistics.
type Stats struct {
	Injected   int64
	Delivered  int64
	Dropped    int64 // rejected at injection (full input queue)
	Forwarded  int64 // hop completions (including the final ejection)
	MaxQueued  int   // deepest per-port backlog observed
	TotalDelay slot.Time
	MaxDelay   slot.Time
}

// Merge folds another snapshot into s: counters add, maxima take the
// larger observation. It combines per-region statistics into one
// mesh-wide view.
func (s Stats) Merge(o Stats) Stats {
	s.Injected += o.Injected
	s.Delivered += o.Delivered
	s.Dropped += o.Dropped
	s.Forwarded += o.Forwarded
	s.TotalDelay += o.TotalDelay
	if o.MaxQueued > s.MaxQueued {
		s.MaxQueued = o.MaxQueued
	}
	if o.MaxDelay > s.MaxDelay {
		s.MaxDelay = o.MaxDelay
	}
	return s
}

// AvgDelay returns the mean injection-to-delivery latency in slots.
func (s Stats) AvgDelay() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalDelay) / float64(s.Delivered)
}

// Mesh is the simulated NoC. It implements sim.Stepper; step it once
// per slot. Delivered packets are handed to the OnDeliver callback.
type Mesh struct {
	cfg      Config
	routers  []*router
	stats    Stats
	inflight int // packets queued or on a link, maintained O(1)

	// OnDeliver is invoked when a packet reaches its destination's
	// local port. It may be nil.
	OnDeliver func(p *packet.Packet, injected, now slot.Time)
}

// New builds a mesh with the given configuration.
func New(cfg Config) (*Mesh, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	m := &Mesh{cfg: cfg}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			r := &router{at: Coord{x, y}}
			for p := range r.out {
				r.out[p] = &outPort{waiting: newPktQueue(cfg)}
			}
			m.routers = append(m.routers, r)
		}
	}
	return m, nil
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Stats returns a snapshot of the delivery statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// NodeAt returns the NodeID of the tile at c.
func (m *Mesh) NodeAt(c Coord) packet.NodeID {
	return packet.NodeID(c.Y*m.cfg.Width + c.X)
}

// CoordOf returns the tile coordinate of id.
func (m *Mesh) CoordOf(id packet.NodeID) Coord {
	return Coord{X: int(id) % m.cfg.Width, Y: int(id) / m.cfg.Width}
}

// valid reports whether id addresses a tile of this mesh.
func (m *Mesh) valid(id packet.NodeID) bool {
	return int(id) < m.cfg.Width*m.cfg.Height
}

// route returns the XY dimension-ordered next port from cur toward dst.
func (m *Mesh) route(cur Coord, dst Coord) Port { return routeXY(cur, dst) }

// linkSlots returns how long one hop occupies a link for pkt:
// serialization of all flits plus the router pipeline latency.
func (m *Mesh) linkSlots(pkt *packet.Packet) slot.Time {
	return linkSlotsFor(m.cfg, pkt)
}

// Hops returns the XY route length between two nodes.
func (m *Mesh) Hops(src, dst packet.NodeID) int {
	a, b := m.CoordOf(src), m.CoordOf(dst)
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// MinLatency returns the zero-contention delivery latency of pkt.
func (m *Mesh) MinLatency(pkt *packet.Packet) slot.Time {
	hops := m.Hops(pkt.Src, pkt.Dst)
	return slot.Time(hops+1) * m.linkSlots(pkt) // +1 for local ejection
}

// Inject submits a packet at its source tile at time now. It reports
// false (and counts a drop) when the first output port's FIFO is full.
func (m *Mesh) Inject(now slot.Time, pkt *packet.Packet) bool {
	if !m.valid(pkt.Src) || !m.valid(pkt.Dst) {
		m.stats.Dropped++
		return false
	}
	r := m.routers[pkt.Src]
	port := m.route(r.at, m.CoordOf(pkt.Dst))
	fl := &flight{pkt: pkt, injected: now}
	if !r.out[port].waiting.push(fl) {
		m.stats.Dropped++
		return false
	}
	m.noteDepth(r.out[port])
	m.stats.Injected++
	m.inflight++
	return true
}

// noteDepth tracks the deepest per-port backlog seen.
func (m *Mesh) noteDepth(op *outPort) {
	if d := op.waiting.len(); d > m.stats.MaxQueued {
		m.stats.MaxQueued = d
	}
}

// Step advances every router by one slot: links serialize their
// current packet; completed hops move the packet to the next router
// (or deliver it); idle links pull the next packet from their FIFO.
func (m *Mesh) Step(now slot.Time) {
	// Phase 1: progress links and collect hop completions.
	type arrival struct {
		fl   *flight
		at   int // router index
		port Port
	}
	var arrivals []arrival
	for ri, r := range m.routers {
		for p := Port(0); p < numPorts; p++ {
			op := r.out[p]
			if op.current == nil {
				if fl, ok := op.waiting.pop(); ok {
					fl.left = m.linkSlots(fl.pkt)
					op.current = fl
				}
			}
			if op.current == nil {
				continue
			}
			op.current.left--
			if op.current.left > 0 {
				continue
			}
			fl := op.current
			op.current = nil
			arrivals = append(arrivals, arrival{fl: fl, at: ri, port: p})
		}
	}
	// Phase 2: apply completions — deliver or enqueue at the next hop.
	for _, a := range arrivals {
		m.stats.Forwarded++
		if a.port == Local {
			m.deliver(a.fl, now)
			continue
		}
		next := m.neighbor(a.at, a.port)
		nr := m.routers[next]
		port := m.route(nr.at, m.CoordOf(a.fl.pkt.Dst))
		if !nr.out[port].waiting.push(a.fl) {
			m.stats.Dropped++ // bounded buffer overflow mid-route
			m.inflight--
		} else {
			m.noteDepth(nr.out[port])
		}
	}
}

func (m *Mesh) deliver(fl *flight, now slot.Time) {
	m.inflight--
	m.stats.Delivered++
	d := now + 1 - fl.injected
	m.stats.TotalDelay += d
	if d > m.stats.MaxDelay {
		m.stats.MaxDelay = d
	}
	if m.OnDeliver != nil {
		m.OnDeliver(fl.pkt, fl.injected, now)
	}
}

// neighbor returns the router index one hop from ri through port.
func (m *Mesh) neighbor(ri int, port Port) int {
	return neighborIdx(m.cfg, ri, port)
}

// InFlight returns the number of packets inside the NoC in O(1); it
// equals Pending() at every slot boundary and backs NextWork.
func (m *Mesh) InFlight() int { return m.inflight }

// NextWork implements the sim.Quiescer protocol. An empty mesh has no
// self-generated work, ever. A busy mesh next changes observable state
// when a hop completes (the packet moves routers or delivers) or when
// an idle link can pull a waiting packet — in between, links only
// count down serialization slots, which SkipTo replays in bulk. The
// returned slot is exact: the earliest hop completion is at
// now + left - 1 because Step decrements before testing.
func (m *Mesh) NextWork(now slot.Time) slot.Time {
	if m.inflight == 0 {
		return slot.Never
	}
	next := slot.Never
	for _, r := range m.routers {
		for p := Port(0); p < numPorts; p++ {
			op := r.out[p]
			if op.current == nil {
				if op.waiting.len() > 0 {
					return now // an idle link pulls a packet this slot
				}
				continue
			}
			if op.current.left <= 1 {
				return now // hop completes during Step(now)
			}
			if at := now + op.current.left - 1; at < next {
				next = at
			}
		}
	}
	return next
}

// SkipTo advances every in-transit link across a fast-forwarded span
// [from, to): each current flight's remaining serialization shrinks by
// the span, exactly as to-from calls to Step would have left it. The
// engine only skips spans NextWork cleared, so no hop can complete (or
// waiting packet be pulled) inside the span.
func (m *Mesh) SkipTo(from, to slot.Time) {
	if m.inflight == 0 {
		return
	}
	span := to - from
	for _, r := range m.routers {
		for p := Port(0); p < numPorts; p++ {
			if fl := r.out[p].current; fl != nil {
				fl.left -= span
			}
		}
	}
}

// Pending returns the number of packets currently inside the NoC
// (queued or on a link).
func (m *Mesh) Pending() int {
	n := 0
	for _, r := range m.routers {
		for p := Port(0); p < numPorts; p++ {
			n += r.out[p].waiting.len()
			if r.out[p].current != nil {
				n++
			}
		}
	}
	return n
}
