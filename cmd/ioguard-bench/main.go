// Command ioguard-bench runs the simulation benchmark suite
// (internal/benchsuite — the same bodies `go test -bench` wraps) and
// writes a machine-readable report to BENCH_sim.json. The derived
// dense/fast-forward speedups quantify the engine's idle-slot
// fast-forward on the idle-heavy cells; allocs/op tracks the
// zero-allocation hot paths.
//
// Two suites exist: the default one is sized for per-PR smoke runs,
// while -suite nightly selects the paper-scale case study (1000 trials
// per point, streaming metrics). With -append the report is appended
// to a trajectory file (schema ioguard/bench_sim_trajectory/v1) whose
// runs array accumulates one entry per invocation — the nightly CI job
// uses this to track the sweep's performance PR over PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ioguard/internal/benchsuite"
	"ioguard/internal/footprint"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SlotsPerOp is how many simulated slots one iteration advances
	// (0 when not meaningful, e.g. queue micro-benchmarks).
	SlotsPerOp  int64   `json:"slots_per_op,omitempty"`
	SlotsPerSec float64 `json:"slots_per_sec,omitempty"`
}

// Speedup compares the dense variant of one benchmark pair against
// its optimized sibling — the fast-forward protocol for engine-level
// pairs, or the run-length interval table for the Slot* pairs.
type Speedup struct {
	Name          string  `json:"name"`
	DenseNsPerOp  float64 `json:"dense_ns_per_op"`
	FFNsPerOp     float64 `json:"fastforward_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	DenseSlotsSec float64 `json:"dense_slots_per_sec,omitempty"`
	FFSlotsSec    float64 `json:"fastforward_slots_per_sec,omitempty"`
}

// Report is one benchmark run (the ioguard/bench_sim/v1 schema, and
// one element of a trajectory's runs array).
type Report struct {
	Schema    string    `json:"schema"`
	Timestamp string    `json:"timestamp,omitempty"`
	Suite     string    `json:"suite,omitempty"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	BenchTime string    `json:"benchtime"`
	Results   []Result  `json:"results"`
	Speedups  []Speedup `json:"speedups,omitempty"`
	// SlotTables pairs the σ* encodings' memory footprints at the
	// avionics stress cell (H = 4M slots), complementing the Slot*
	// latency pairs in Speedups.
	SlotTables []footprint.SlotTableRow `json:"slot_tables,omitempty"`
}

// Trajectory accumulates one Report per invocation (-append): the
// perf-over-PRs record the nightly CI job maintains.
type Trajectory struct {
	Schema string   `json:"schema"`
	Runs   []Report `json:"runs"`
}

const (
	reportSchema     = "ioguard/bench_sim/v1"
	trajectorySchema = "ioguard/bench_sim_trajectory/v1"
)

func measure(spec benchsuite.Spec) Result {
	r := testing.Benchmark(spec.Bench)
	res := Result{
		Name:        spec.Name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SlotsPerOp:  spec.SlotsPerOp,
	}
	if spec.SlotsPerOp > 0 && res.NsPerOp > 0 {
		res.SlotsPerSec = float64(spec.SlotsPerOp) / (res.NsPerOp / 1e9)
	}
	return res
}

// speedups pairs every <base>/dense and <base>/globalmin result with
// its <base>/fastforward sibling — or, for the slot-table pairs that
// have no engine variant, the <base>/interval sibling — and every
// <base>/parshard result with the same sibling as its baseline. The Dense* fields hold the
// baseline variant's numbers; for "/globalmin" entries that baseline
// is the single-clock fast-forward rather than dense stepping, so the
// ratio isolates what the per-device clock decoupling buys on its own;
// for "/parshard" entries it is the single-thread sharded
// fast-forward, so the ratio is the epoch-barrier executor's pure
// wall-clock win (≈1 on single-core hosts).
func speedups(results []Result) []Speedup {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	var out []Speedup
	for _, r := range results {
		for _, suffix := range []string{"/dense", "/globalmin"} {
			base, ok := strings.CutSuffix(r.Name, suffix)
			if !ok {
				continue
			}
			ff, ok := byName[base+"/fastforward"]
			if !ok {
				ff, ok = byName[base+"/interval"]
			}
			if !ok || ff.NsPerOp == 0 {
				continue
			}
			name := base
			if suffix == "/globalmin" {
				name = base + "/globalmin"
			}
			out = append(out, Speedup{
				Name:          name,
				DenseNsPerOp:  r.NsPerOp,
				FFNsPerOp:     ff.NsPerOp,
				Speedup:       r.NsPerOp / ff.NsPerOp,
				DenseSlotsSec: r.SlotsPerSec,
				FFSlotsSec:    ff.SlotsPerSec,
			})
		}
		if base, ok := strings.CutSuffix(r.Name, "/parshard"); ok {
			seq, ok := byName[base+"/fastforward"]
			if ok && r.NsPerOp > 0 {
				out = append(out, Speedup{
					Name:          base + "/parshard",
					DenseNsPerOp:  seq.NsPerOp,
					FFNsPerOp:     r.NsPerOp,
					Speedup:       seq.NsPerOp / r.NsPerOp,
					DenseSlotsSec: seq.SlotsPerSec,
					FFSlotsSec:    r.SlotsPerSec,
				})
			}
		}
	}
	return out
}

// appendRun folds rep into the trajectory at path: an existing
// trajectory file gains one run; an existing single-report file is
// wrapped as the first run; a missing file starts a fresh trajectory.
func appendRun(path string, rep Report) ([]byte, error) {
	traj := Trajectory{Schema: trajectorySchema}
	if data, err := os.ReadFile(path); err == nil {
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(data, &probe); err != nil {
			return nil, fmt.Errorf("unreadable existing %s: %w", path, err)
		}
		switch probe.Schema {
		case trajectorySchema:
			if err := json.Unmarshal(data, &traj); err != nil {
				return nil, fmt.Errorf("bad trajectory %s: %w", path, err)
			}
		case reportSchema:
			var old Report
			if err := json.Unmarshal(data, &old); err != nil {
				return nil, fmt.Errorf("bad report %s: %w", path, err)
			}
			traj.Runs = append(traj.Runs, old)
		default:
			return nil, fmt.Errorf("existing %s has unknown schema %q", path, probe.Schema)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	traj.Runs = append(traj.Runs, rep)
	return json.MarshalIndent(traj, "", "  ")
}

func main() {
	testing.Init()
	var (
		out       = flag.String("o", "BENCH_sim.json", "output path (\"-\" for stdout)")
		benchtime = flag.String("benchtime", "1s", "per-benchmark measuring time (forwarded to test.benchtime; e.g. 2s, 100x)")
		match     = flag.String("bench", "", "only run benchmarks whose name contains this substring")
		suite     = flag.String("suite", "default", "benchmark suite: default (per-PR smoke scale) or nightly (paper-scale 1000-trial case study)")
		appendRep = flag.Bool("append", false, "append this run to the output file's trajectory (ioguard/bench_sim_trajectory/v1) instead of overwriting it")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(1)
	}
	var specs []benchsuite.Spec
	switch *suite {
	case "default":
		specs = benchsuite.Specs()
	case "nightly":
		specs = benchsuite.NightlySpecs()
	default:
		fmt.Fprintf(os.Stderr, "ioguard-bench: unknown suite %q (want default|nightly)\n", *suite)
		os.Exit(1)
	}

	rep := Report{
		Schema:    reportSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Suite:     *suite,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *benchtime,
	}
	for _, spec := range specs {
		if *match != "" && !strings.Contains(spec.Name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
		res := measure(spec)
		fmt.Fprintf(os.Stderr, "  %d iterations, %.0f ns/op, %d allocs/op\n",
			res.Iterations, res.NsPerOp, res.AllocsPerOp)
		rep.Results = append(rep.Results, res)
	}
	rep.Speedups = speedups(rep.Results)
	slotRows, err := footprint.SlotTableRows(benchsuite.AvionicsTableRequirements())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: slot-table footprint: %v\n", err)
		os.Exit(1)
	}
	rep.SlotTables = slotRows

	var data []byte
	if *appendRep && *out != "-" {
		data, err = appendRun(*out, rep)
	} else {
		data, err = json.MarshalIndent(rep, "", "  ")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ioguard-bench: %v\n", err)
		os.Exit(1)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("%s: %.1f× over baseline\n", s.Name, s.Speedup)
	}
	for _, r := range rep.SlotTables {
		fmt.Printf("slot-table %s: dense %d B → interval %d B (%.0f× smaller, %d runs over %d slots)\n",
			r.Device, r.DenseBytes, r.IntervalBytes, r.Reduction, r.Runs, r.HyperPeriod)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
}
