package noc

import (
	"strings"
	"testing"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

func mkDeadlinePkt(src, dst packet.NodeID, payload int, deadline slot.Time) *packet.Packet {
	return packet.New(packet.Header{
		Src: src, Dst: dst, Kind: packet.Request, Op: packet.Write, Deadline: deadline,
	}, make([]byte, payload))
}

func TestArbitrationString(t *testing.T) {
	if FIFOArbitration.String() != "fifo" || DeadlineArbitration.String() != "deadline" {
		t.Error("arbitration names wrong")
	}
	if !strings.Contains(Arbitration(9).String(), "9") {
		t.Error("unknown arbitration should show numerically")
	}
}

// TestDeadlineArbitrationReorders: with a congested output port, the
// deadline-aware router forwards the urgent packet first even though
// it was injected last; the FIFO router preserves injection order.
func TestDeadlineArbitrationReorders(t *testing.T) {
	run := func(arb Arbitration) []slot.Time {
		cfg := DefaultConfig()
		cfg.Arbitration = arb
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := m.NodeAt(Coord{0, 0})
		dst := m.NodeAt(Coord{4, 0})
		var deliveries []slot.Time // deadlines in delivery order
		m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
			deliveries = append(deliveries, p.Deadline)
		}
		// Three loose-deadline packets first, one urgent last.
		for i := 0; i < 3; i++ {
			m.Inject(0, mkDeadlinePkt(src, dst, 64, 100_000))
		}
		m.Inject(0, mkDeadlinePkt(src, dst, 64, 10))
		for now := slot.Time(0); now < 2000 && len(deliveries) < 4; now++ {
			m.Step(now)
		}
		if len(deliveries) != 4 {
			t.Fatalf("%v: only %d deliveries", arb, len(deliveries))
		}
		return deliveries
	}
	fifo := run(FIFOArbitration)
	if fifo[3] != 10 {
		t.Errorf("FIFO should deliver the urgent packet last: %v", fifo)
	}
	prio := run(DeadlineArbitration)
	// The first loose packet may already hold the link, but the urgent
	// one must overtake the remaining two.
	if prio[0] != 10 && prio[1] != 10 {
		t.Errorf("deadline arbitration should deliver the urgent packet early: %v", prio)
	}
}

func TestStatsForwardedAndDepth(t *testing.T) {
	m, _ := New(DefaultConfig())
	src := m.NodeAt(Coord{0, 0})
	dst := m.NodeAt(Coord{2, 0})
	for i := 0; i < 3; i++ {
		m.Inject(0, mkDeadlinePkt(src, dst, 16, 1000))
	}
	for now := slot.Time(0); now < 1000 && m.Stats().Delivered < 3; now++ {
		m.Step(now)
	}
	st := m.Stats()
	// Each packet crosses 2 hops + local ejection = 3 forwards.
	if st.Forwarded != 9 {
		t.Errorf("Forwarded = %d, want 9", st.Forwarded)
	}
	if st.MaxQueued < 2 {
		t.Errorf("MaxQueued = %d, want ≥ 2 (three packets share one port)", st.MaxQueued)
	}
}

func TestDeadlineArbitrationBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arbitration = DeadlineArbitration
	cfg.QueueDepth = 1
	m, _ := New(cfg)
	src := m.NodeAt(Coord{0, 0})
	dst := m.NodeAt(Coord{4, 0})
	if !m.Inject(0, mkDeadlinePkt(src, dst, 64, 100)) {
		t.Fatal("first inject failed")
	}
	if m.Inject(0, mkDeadlinePkt(src, dst, 64, 50)) {
		t.Error("bounded priority buffer should reject overflow")
	}
}
