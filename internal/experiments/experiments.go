// Package experiments reproduces every table and figure of the
// paper's evaluation (Sec. V):
//
//	Fig. 6   — run-time software overhead (internal/footprint)
//	Table I  — hardware overhead on the FPGA (internal/hw)
//	Fig. 7   — case-study success ratio and I/O throughput across
//	           target utilizations, 4- and 8-VM groups
//	Fig. 8   — area / power / fmax scalability over η
//
// Each experiment returns structured data plus a Render function that
// prints the same rows/series the paper reports. The paper runs 1000
// trials of 100 s each; the drivers default to a laptop-scale setting
// (configurable) that preserves the curves' shape.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ioguard/internal/baseline"
	"ioguard/internal/core"
	"ioguard/internal/hw"
	"ioguard/internal/hypervisor"
	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// SystemNames lists the case-study systems in presentation order —
// the column set of the committed Fig. 7 tables. BS|PART joins
// Builders() (and the robustness sweep) but not this list, which
// keeps every historical render byte-identical.
func SystemNames() []string {
	return []string{"BS|Legacy", "BS|RT-XEN", "BS|BV", "I/O-GUARD-40", "I/O-GUARD-70"}
}

// AllSystemNames lists every buildable system in presentation order —
// the case-study five plus the BS|PART partitioning baseline. The
// robustness sweep compares across this set.
func AllSystemNames() []string {
	return []string{"BS|Legacy", "BS|RT-XEN", "BS|BV", "BS|PART", "I/O-GUARD-40", "I/O-GUARD-70"}
}

// Builders returns the builder of every case-study system, plus the
// BS|PART static-partitioning baseline of the robustness runs.
func Builders() map[string]system.Builder {
	return map[string]system.Builder{
		"BS|Legacy": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewLegacy(tr.VMs, tr.Tasks, col)
		},
		"BS|RT-XEN": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewRTXen(tr.VMs, tr.Tasks, col, 0)
		},
		"BS|BV": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewBlueVisor(tr.VMs, tr.Tasks, col)
		},
		"BS|PART": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return baseline.NewPartition(tr.VMs, tr.Tasks, col)
		},
		"I/O-GUARD-40": IOGuardBuilder(0.40),
		"I/O-GUARD-70": IOGuardBuilder(0.70),
	}
}

// DefaultPoolCapacity is the per-VM I/O-pool depth of the prototype
// hypervisor: the pool's priority-queue entries are hardware
// registers (Sec. III-A footnote 2), so the R-channel backlog per VM
// is bounded and overload eventually drops requests.
const DefaultPoolCapacity = 8

// IOGuardBuilder returns a builder for I/O-GUARD-x with the given
// pre-load fraction, running the R-channel in the paper's DirectEDF
// G-Sched configuration with the prototype's pool depth.
func IOGuardBuilder(frac float64) system.Builder {
	return func(tr system.Trial, col *system.Collector) (system.System, error) {
		return core.New(core.Config{
			VMs:          tr.VMs,
			PreloadFrac:  frac,
			Mode:         hypervisor.DirectEDF,
			PoolCapacity: DefaultPoolCapacity,
		}, tr.Tasks, col)
	}
}

// CaseStudyConfig parameterizes the Fig. 7 sweep.
type CaseStudyConfig struct {
	VMs    int
	Utils  []float64 // target utilizations; nil = 0.40..1.00 step 0.05
	Trials int       // trials per point; ≤0 = 5
	// HyperPeriods sets the horizon in workload hyper-periods; ≤0 = 6.
	HyperPeriods int
	Seed         int64
	// Systems restricts the sweep; nil = all of SystemNames().
	Systems []string
	// Workers is the goroutine count fanning the (utilization × trial
	// × system) cells; ≤0 = runtime.GOMAXPROCS(0). Results are folded
	// in canonical order, so any worker count yields identical output.
	Workers int
	// Dense disables the idle-slot fast-forward and steps every slot
	// (the reference semantics). Output is byte-identical either way;
	// the flag exists for the equivalence cmp in CI and for debugging.
	Dense bool
	// ShardWorkers fans each trial's device shards across this many OS
	// threads (the epoch-barrier parallel executor, DESIGN.md §11);
	// < 2 keeps the sequential per-shard schedule. Like Workers it only
	// changes wall-clock time — output is identical for any value.
	ShardWorkers int
	// Metrics selects each trial's collector mode. The rendered Fig. 7
	// tables use only exactly-counted quantities (success ratio from
	// CriticalMisses, throughput from BytesServed), so exact and
	// streaming sweeps render byte-identical output — the streaming
	// mode just bounds per-trial collector memory (enforced by the CI
	// cmp job).
	Metrics system.MetricsMode
	// DrainMin/DrainMax bound each trial's adaptive release-drain
	// budget (system.Trial.DrainMin/DrainMax); 0 keeps the built-in
	// bounds. Like ShardWorkers, the knobs never change output.
	DrainMin int
	DrainMax int
}

// trialSeed derives the per-(utilization, trial) seed. The
// utilization mixes in as its grid index in percent via math.Round —
// a plain int64(util*1000) float-truncates (0.55 may be stored as
// 0.55000000000000004 or 0.549999...), which can shift or collide
// seeds between grid points and across platforms.
func trialSeed(base int64, trial int, util float64) int64 {
	return base + int64(trial)*7919 + int64(math.Round(util*100))
}

// DefaultUtils returns the paper's grid: 40 % to 100 % in 5 % steps.
func DefaultUtils() []float64 {
	var out []float64
	for u := 0.40; u < 1.001; u += 0.05 {
		out = append(out, float64(int(u*100+0.5))/100)
	}
	return out
}

// CaseStudyPoint is one (system, utilization) cell of Fig. 7.
type CaseStudyPoint struct {
	System string
	Util   float64
	Agg    *metrics.Aggregate
}

// CaseStudy runs the Fig. 7 sweep: for each target utilization the
// same generated workload is fed to every system, each repeated over
// the configured trials. The (utilization × trial × system) cells fan
// across cfg.Workers goroutines and are folded back in canonical
// (util, trial, system) order, so the returned points — and any table
// rendered from them — are byte-identical for every worker count.
func CaseStudy(cfg CaseStudyConfig) ([]CaseStudyPoint, error) {
	if cfg.VMs <= 0 {
		return nil, fmt.Errorf("experiments: need VMs > 0")
	}
	if cfg.Utils == nil {
		cfg.Utils = DefaultUtils()
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}
	if cfg.HyperPeriods <= 0 {
		cfg.HyperPeriods = 6
	}
	names := cfg.Systems
	if names == nil {
		names = SystemNames()
	}
	builders := Builders()
	// Lay the cells out util-major, then trial, then system — the
	// same order the sequential path visited them. Each trial draws a
	// fresh synthetic-load realization; within one trial every system
	// sees the identical workload and release pattern ("the data
	// input to the examined systems was identical in each execution").
	cells := make([]system.Cell, 0, len(cfg.Utils)*cfg.Trials*len(names))
	for _, util := range cfg.Utils {
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := trialSeed(cfg.Seed, trial, util)
			ts, err := workload.Generate(workload.Config{
				VMs:        cfg.VMs,
				TargetUtil: util,
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			horizon := ts.Hyperperiod() * slot.Time(cfg.HyperPeriods)
			for _, name := range names {
				build, ok := builders[name]
				if !ok {
					return nil, fmt.Errorf("experiments: unknown system %q", name)
				}
				cells = append(cells, system.Cell{Build: build, Trial: system.Trial{
					VMs:          cfg.VMs,
					Tasks:        ts,
					Horizon:      horizon,
					Seed:         seed,
					Dense:        cfg.Dense,
					Metrics:      cfg.Metrics,
					ShardWorkers: cfg.ShardWorkers,
					DrainMin:     cfg.DrainMin,
					DrainMax:     cfg.DrainMax,
				}})
			}
		}
	}
	results, err := system.RunCells(cells, cfg.Workers)
	if err != nil {
		var ce *system.CellError
		if errors.As(err, &ce) {
			util := cfg.Utils[ce.Index/(cfg.Trials*len(names))]
			name := names[ce.Index%len(names)]
			return nil, fmt.Errorf("experiments: %s at U=%.2f: %w", name, util, ce.Err)
		}
		return nil, err
	}
	var out []CaseStudyPoint
	for ui, util := range cfg.Utils {
		aggs := make(map[string]*metrics.Aggregate, len(names))
		for _, name := range names {
			aggs[name] = &metrics.Aggregate{}
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			for si, name := range names {
				idx := (ui*cfg.Trials+trial)*len(names) + si
				aggs[name].AddTrial(results[idx])
			}
		}
		for _, name := range names {
			out = append(out, CaseStudyPoint{System: name, Util: util, Agg: aggs[name]})
		}
	}
	return out, nil
}

// RenderCaseStudy prints Fig. 7's two panels for one VM group: the
// success-ratio series (7a/7b) and the throughput series (7c).
func RenderCaseStudy(points []CaseStudyPoint, vms int) string {
	type keyT struct {
		sys  string
		util float64
	}
	cells := map[keyT]*metrics.Aggregate{}
	utilSet := map[float64]bool{}
	sysSet := map[string]bool{}
	for _, p := range points {
		cells[keyT{p.System, p.Util}] = p.Agg
		utilSet[p.Util] = true
		sysSet[p.System] = true
	}
	var utils []float64
	for u := range utilSet {
		utils = append(utils, u)
	}
	sort.Float64s(utils)
	var names []string
	for _, n := range SystemNames() {
		if sysSet[n] {
			names = append(names, n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — success ratio (%%), %d VMs\n", vms)
	fmt.Fprintf(&b, "%-14s", "util")
	for _, n := range names {
		fmt.Fprintf(&b, " %13s", n)
	}
	b.WriteByte('\n')
	for _, u := range utils {
		fmt.Fprintf(&b, "%-14.2f", u)
		for _, n := range names {
			if agg := cells[keyT{n, u}]; agg != nil {
				fmt.Fprintf(&b, " %12.1f%%", 100*agg.SuccessRatio())
			} else {
				fmt.Fprintf(&b, " %13s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nFig. 7(c) — I/O throughput (MB/s), %d VMs\n", vms)
	fmt.Fprintf(&b, "%-14s", "util")
	for _, n := range names {
		fmt.Fprintf(&b, " %13s", n)
	}
	b.WriteByte('\n')
	for _, u := range utils {
		fmt.Fprintf(&b, "%-14.2f", u)
		for _, n := range names {
			if agg := cells[keyT{n, u}]; agg != nil {
				fmt.Fprintf(&b, " %13.3f", agg.Throughput.Mean())
			} else {
				fmt.Fprintf(&b, " %13s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCaseStudyQuantiles renders the merged cross-trial response
// and tardiness distributions of a case-study sweep, one line per
// (system, util) cell — the opt-in `-quantiles` companion to the
// Fig. 7 tables (which stay byte-identical across metrics modes). In
// exact mode the lines are exact; in stream mode they come from the
// per-cell merged KLL folds at the sketch's ε; in stream-gk mode the
// cells report that their per-trial sketches cannot merge.
func RenderCaseStudyQuantiles(points []CaseStudyPoint, vms int) string {
	type keyT struct {
		sys  string
		util float64
	}
	cells := map[keyT]*metrics.Aggregate{}
	utilSet := map[float64]bool{}
	sysSet := map[string]bool{}
	for _, p := range points {
		cells[keyT{p.System, p.Util}] = p.Agg
		utilSet[p.Util] = true
		sysSet[p.System] = true
	}
	var utils []float64
	for u := range utilSet {
		utils = append(utils, u)
	}
	sort.Float64s(utils)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 companion — merged cross-trial response-time quantiles (slots), %d VMs\n", vms)
	for _, n := range SystemNames() {
		if !sysSet[n] {
			continue
		}
		fmt.Fprintf(&b, "%s\n", n)
		for _, u := range utils {
			agg := cells[keyT{n, u}]
			if agg == nil {
				continue
			}
			fmt.Fprintf(&b, "  util %.2f  response:  %s\n", u, agg.Response.String())
			fmt.Fprintf(&b, "            tardiness: %s\n", agg.Tardiness.String())
		}
	}
	return b.String()
}

// RenderTable1 prints Table I.
func RenderTable1() (string, error) {
	rows, err := hw.Table1()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — hardware overhead (implemented on FPGA)\n")
	fmt.Fprintf(&b, "%-12s %8s %10s %5s %9s %11s\n", "", "LUTs", "Registers", "DSP", "RAM (KB)", "Power (mW)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %10d %5d %9d %11.0f\n",
			r.Name, r.Res.LUTs, r.Res.Registers, r.Res.DSPs, r.Res.RAMKB, r.Res.PowerMW)
	}
	return b.String(), nil
}

// Fig8Point is one η sample of the scalability study.
type Fig8Point struct {
	Eta         int
	VMs         int
	LegacyArea  float64
	GuardArea   float64
	LegacyPower float64
	GuardPower  float64
	LegacyFmax  float64
	GuardFmax   float64
}

// Fig8 sweeps the scaling factor η over [0, maxEta].
func Fig8(maxEta int) ([]Fig8Point, error) {
	if maxEta < 0 {
		return nil, fmt.Errorf("experiments: negative maxEta")
	}
	var out []Fig8Point
	for eta := 0; eta <= maxEta; eta++ {
		p := Fig8Point{Eta: eta, VMs: 1 << eta}
		var err error
		if p.LegacyArea, err = hw.NormalizedArea(false, eta); err != nil {
			return nil, err
		}
		if p.GuardArea, err = hw.NormalizedArea(true, eta); err != nil {
			return nil, err
		}
		if p.LegacyPower, err = hw.SystemPowerMW(false, eta); err != nil {
			return nil, err
		}
		if p.GuardPower, err = hw.SystemPowerMW(true, eta); err != nil {
			return nil, err
		}
		if p.LegacyFmax, err = hw.MaxFrequencyMHz(false, eta); err != nil {
			return nil, err
		}
		if p.GuardFmax, err = hw.MaxFrequencyMHz(true, eta); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderFig8 prints the three scalability panels.
func RenderFig8(points []Fig8Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — scalability over η (VMs = 2^η)\n")
	fmt.Fprintf(&b, "%-4s %-5s | %-10s %-10s %-7s | %-11s %-11s | %-10s %-10s\n",
		"η", "VMs", "area(leg)", "area(iog)", "over%", "power(leg)", "power(iog)", "fmax(leg)", "fmax(iog)")
	for _, p := range points {
		over := 0.0
		if p.LegacyArea > 0 {
			over = (p.GuardArea - p.LegacyArea) / p.LegacyArea * 100
		}
		fmt.Fprintf(&b, "%-4d %-5d | %-10.4f %-10.4f %-7.1f | %-11.0f %-11.0f | %-10.1f %-10.1f\n",
			p.Eta, p.VMs, p.LegacyArea, p.GuardArea, over,
			p.LegacyPower, p.GuardPower, p.LegacyFmax, p.GuardFmax)
	}
	return b.String()
}

// ResponseProfile runs every system once on an identical workload and
// returns the response-time histogram of each — the distributional
// view behind Obs. 3's "less experimental variance" claim: I/O-GUARD's
// mass sits in tight bands while the FIFO baselines grow heavy tails.
// The histogram is attached to the collector as an online sink
// (Collector.ObserveResponse), so it fills while the trial runs and
// works identically in both metrics modes — no post-hoc replay of a
// buffered sample.
func ResponseProfile(vms int, util float64, seed int64) (map[string]*metrics.Histogram, error) {
	ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := map[string]*metrics.Histogram{}
	for name, build := range Builders() {
		h, err := metrics.NewHistogram(0, 4000, 16)
		if err != nil {
			return nil, err
		}
		profiled := func(tr system.Trial, col *system.Collector) (system.System, error) {
			col.ObserveResponse(h)
			return build(tr, col)
		}
		if _, err := system.Run(profiled, system.Trial{
			VMs: vms, Tasks: ts, Horizon: ts.Hyperperiod() * 4, Seed: seed,
		}); err != nil {
			return nil, err
		}
		out[name] = h
	}
	return out, nil
}

// RenderResponseProfile prints each system's histogram.
func RenderResponseProfile(profiles map[string]*metrics.Histogram) string {
	var b strings.Builder
	for _, name := range SystemNames() {
		h, ok := profiles[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s — response time distribution (slots, n=%d)\n", name, h.N())
		b.WriteString(h.Render(48))
		b.WriteByte('\n')
	}
	return b.String()
}

// PreloadPoint is one cell of the preload-fraction sweep.
type PreloadPoint struct {
	Frac float64
	Agg  *metrics.Aggregate
}

// preloadSeed derives the per-(fraction, trial) seed. Each fraction
// mixes in its own component (scaled by a prime well clear of the
// trial stride) so different fractions don't silently reuse identical
// workload realizations.
func preloadSeed(base int64, trial int, frac float64) int64 {
	return base + int64(trial)*7919 + int64(math.Round(frac*100))*104729
}

// PreloadSweep quantifies Obs. 3's mechanism directly: at a fixed
// target utilization, sweep the fraction of tasks pre-loaded into the
// P-channel from 0 % to 100 % and measure the success ratio. More
// pre-loading → more table-guaranteed tasks → higher success under
// overload. The (fraction × trial) cells fan across `workers`
// goroutines (≤0 = GOMAXPROCS) with a deterministic fold.
func PreloadSweep(vms int, util float64, fracs []float64, trials int, seed int64, workers int) ([]PreloadPoint, error) {
	if fracs == nil {
		fracs = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if trials <= 0 {
		trials = 5
	}
	cells := make([]system.Cell, 0, len(fracs)*trials)
	for _, frac := range fracs {
		for trial := 0; trial < trials; trial++ {
			s := preloadSeed(seed, trial, frac)
			ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: s})
			if err != nil {
				return nil, err
			}
			cells = append(cells, system.Cell{Build: IOGuardBuilder(frac), Trial: system.Trial{
				VMs: vms, Tasks: ts, Horizon: ts.Hyperperiod() * 6, Seed: s,
			}})
		}
	}
	results, err := system.RunCells(cells, workers)
	if err != nil {
		return nil, err
	}
	var out []PreloadPoint
	for fi, frac := range fracs {
		agg := &metrics.Aggregate{}
		for trial := 0; trial < trials; trial++ {
			agg.AddTrial(results[fi*trials+trial])
		}
		out = append(out, PreloadPoint{Frac: frac, Agg: agg})
	}
	return out, nil
}

// RenderPreloadSweep prints the sweep as a table.
func RenderPreloadSweep(points []PreloadPoint, vms int, util float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pre-load fraction sweep — %d VMs, target utilization %.0f%%\n", vms, util*100)
	fmt.Fprintf(&b, "%-10s %10s %16s %14s\n", "preload", "success", "throughput MB/s", "misses/trial")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10.0f %9.1f%% %16.3f %14.1f\n",
			p.Frac*100, 100*p.Agg.SuccessRatio(), p.Agg.Throughput.Mean(), p.Agg.Misses.Mean())
	}
	return b.String()
}

// AblationPoint compares R-channel scheduler configurations at one
// utilization (beyond the paper: quantifies the design choices of
// Sec. III-A called out in DESIGN.md).
type AblationPoint struct {
	Config string
	Agg    *metrics.Aggregate
}

// SchedulerAblation compares DirectEDF, ServerEDF (strict periodic
// servers synthesized per VM is out of scope here — it uses equal
// shares), and work-conserving DirectEDF at a given utilization. The
// trials of each configuration run on `workers` goroutines (≤0 =
// GOMAXPROCS).
func SchedulerAblation(vms int, util float64, trials int, seed int64, workers int) ([]AblationPoint, error) {
	ts, err := workload.Generate(workload.Config{VMs: vms, TargetUtil: util, Seed: seed})
	if err != nil {
		return nil, err
	}
	horizon := ts.Hyperperiod() * 3
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"direct-edf", core.Config{VMs: vms, PreloadFrac: 0.4, Mode: hypervisor.DirectEDF}},
		{"direct-edf+reclaim", core.Config{VMs: vms, PreloadFrac: 0.4, Mode: hypervisor.DirectEDF, WorkConserving: true}},
		{"no-preload", core.Config{VMs: vms, PreloadFrac: 0, Mode: hypervisor.DirectEDF}},
	}
	var out []AblationPoint
	for _, c := range configs {
		cc := c.cfg
		build := func(tr system.Trial, col *system.Collector) (system.System, error) {
			return core.New(cc, tr.Tasks, col)
		}
		agg, err := system.ParallelSweep(build, system.Trial{VMs: vms, Tasks: ts, Horizon: horizon, Seed: seed}, trials, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Config: c.name, Agg: agg})
	}
	return out, nil
}
