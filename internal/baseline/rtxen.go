// BS|RT-XEN: a virtualized system on a Xen-style software hypervisor
// with real-time patches and I/O enhancement (Xi et al., EMSOFT'14).
// Every I/O operation pays the software access path: the guest kernel
// and virtual front-end driver, a trap into the VMM, and serialized
// back-end processing inside the hypervisor before the request ever
// reaches the NoC. Guests only interact with the VMM during their
// VCPU scheduling windows, so adding VMs stretches the path — the
// mechanism behind Obs. 4's collapse at higher VM counts.
package baseline

import (
	"fmt"

	"ioguard/internal/queue"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// DefaultVCPUQuantum is the VMM scheduler quantum in slots (50 µs at
// the platform clock), the granularity at which VCPUs are multiplexed.
const DefaultVCPUQuantum slot.Time = 50

// RTXen is the BS|RT-XEN baseline.
type RTXen struct {
	t       *meshTransport
	tasks   task.Set
	path    rtos.PathCost
	devices []string
	vms     int
	quantum slot.Time

	pending   *queue.PQ[*task.Job] // guest-side path, keyed by VMM-arrival slot
	vmmQueues []*queue.FIFO[*task.Job]
	vmmJob    *task.Job
	vmmBusyAt slot.Time // slot at which the VMM finishes the current op
}

var _ system.System = (*RTXen)(nil)

// NewRTXen builds the RT-Xen baseline. quantum ≤ 0 selects
// DefaultVCPUQuantum.
func NewRTXen(vms int, ts task.Set, col *system.Collector, quantum slot.Time) (*RTXen, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("baseline: rt-xen needs at least one VM")
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if quantum <= 0 {
		quantum = DefaultVCPUQuantum
	}
	path := rtos.Costs(rtos.RTXen)
	devices := devicesOf(ts)
	t, err := newMeshTransport(vms, devices, col, path.Response)
	if err != nil {
		return nil, err
	}
	x := &RTXen{
		t:       t,
		tasks:   ts,
		path:    path,
		devices: devices,
		vms:     vms,
		quantum: quantum,
		pending: queue.NewPQ[*task.Job](0),
	}
	for i := 0; i < vms; i++ {
		x.vmmQueues = append(x.vmmQueues, queue.NewFIFO[*task.Job](0))
	}
	// Completions are delivered through the event channel of the I/O
	// enhancement [14] and do not wait for the VCPU window; only
	// outgoing requests do.
	return x, nil
}

// nextWindow returns the first slot ≥ at inside VM vmID's VCPU
// scheduling window (round-robin quantum multiplexing).
func (x *RTXen) nextWindow(vmID int, at slot.Time) slot.Time {
	if x.vms == 1 {
		return at
	}
	cur := int((at / x.quantum) % slot.Time(x.vms))
	if cur == vmID {
		return at
	}
	d := (vmID - cur + x.vms) % x.vms
	return (at/x.quantum + slot.Time(d)) * x.quantum
}

// Name returns "BS|RT-XEN".
func (x *RTXen) Name() string { return rtos.RTXen.String() }

// Arch returns rtos.RTXen.
func (x *RTXen) Arch() rtos.Arch { return rtos.RTXen }

// Residual returns the full workload.
func (x *RTXen) Residual() task.Set { return x.tasks }

// Submit runs the guest-side path: front-end driver work, then the
// wait for the VM's VCPU window before the request traps into the VMM.
func (x *RTXen) Submit(now slot.Time, j *task.Job) {
	at := x.nextWindow(j.Task.VM, now+x.path.Request)
	x.pending.Push(at, j)
}

// injectDue advances the VMM pipeline at slot now — the guest-side
// half of Step, shared with the processor region shard (guestPipe).
func (x *RTXen) injectDue(now slot.Time) {
	// Trapped requests reach their VM's backend queue.
	for {
		_, at, j, ok := x.pending.Min()
		if !ok || at > now {
			break
		}
		x.pending.PopMin()
		x.vmmQueues[j.Task.VM].Push(j)
	}
	// The VMM backend is a single software resource: it processes one
	// operation at a time (earliest deadline among the per-VM queue
	// heads — the real-time patch) and injects it into the NoC when
	// the backend work completes.
	if x.vmmJob != nil && now >= x.vmmBusyAt {
		x.t.sendRequest(now, x.vmmJob)
		x.vmmJob = nil
	}
	if x.vmmJob == nil {
		bestVM := -1
		bestD := slot.Never
		for vmID, q := range x.vmmQueues {
			if j, ok := q.Peek(); ok && j.Deadline < bestD {
				bestD = j.Deadline
				bestVM = vmID
			}
		}
		if bestVM >= 0 {
			j, _ := x.vmmQueues[bestVM].Pop()
			x.vmmJob = j
			x.vmmBusyAt = now + x.path.VMMRequest
		}
	}
}

// pipeNextWork implements guestPipe: now while any backend queue
// holds work, vmmBusyAt for an operation inside the serialized
// backend, the head arrival slot for guest-side requests.
func (x *RTXen) pipeNextWork(now slot.Time) slot.Time {
	next := slot.Never
	if x.vmmJob != nil {
		if x.vmmBusyAt <= now {
			return now
		}
		next = x.vmmBusyAt
	}
	for _, q := range x.vmmQueues {
		if q.Len() > 0 {
			return now
		}
	}
	if _, at, _, ok := x.pending.Min(); ok && at < next {
		next = at
	}
	return next
}

// nextEmit implements guestPipe, lower-bounding the next request
// injection: the backend's current operation injects when it
// completes (vmmBusyAt, clamped to pub); a queued operation first
// pays the backend service; a guest-side request additionally waits
// for its VMM arrival slot; a job not yet submitted arrives at slot
// ≥ pub and pays the full software path.
func (x *RTXen) nextEmit(pub slot.Time) slot.Time {
	e := pub + x.path.Request + x.path.VMMRequest
	if x.vmmJob != nil {
		c := x.vmmBusyAt
		if c < pub {
			c = pub
		}
		if c < e {
			e = c
		}
	} else {
		for _, q := range x.vmmQueues {
			if q.Len() > 0 {
				if c := pub + x.path.VMMRequest; c < e {
					e = c
				}
				break
			}
		}
	}
	if _, at, _, ok := x.pending.Min(); ok {
		if c := at + x.path.VMMRequest; c < e {
			e = c
		}
	}
	return e
}

// Step advances the VMM pipeline, then the mesh and controllers.
func (x *RTXen) Step(now slot.Time) {
	x.injectDue(now)
	x.t.step(now)
}

// NextWork implements the sim.Quiescer protocol. The VMM pipeline is
// busy while any backend queue holds work; an operation inside the
// serialized backend next matters at vmmBusyAt (its injection slot);
// guest-side requests matter at their VMM-arrival slot.
func (x *RTXen) NextWork(now slot.Time) slot.Time {
	next := x.t.nextWork(now)
	if next <= now {
		return now
	}
	if at := x.pipeNextWork(now); at <= now {
		return now
	} else if at < next {
		next = at
	}
	return next
}

// SkipTo implements sim.Skipper: skipped spans cover only mesh link
// countdowns — NextWork pins VMM backend completion, queue service and
// pending arrivals to executed slots.
func (x *RTXen) SkipTo(from, to slot.Time) { x.t.skipTo(from, to) }

// Devices returns the workload's device names; as a single shard the
// RT-Xen system consumes every released job.
func (x *RTXen) Devices() []string { return x.devices }

// Shards implements system.ShardedSystem with two region shards: the
// guest path and serialized VMM backend ride on the processor band,
// the stations on the device row, coupled only through the mesh's
// boundary-flit horizons. Falls back to the monolithic single shard
// if the region split is unavailable.
func (x *RTXen) Shards() []system.Shard {
	if sh := x.t.regionShards(x, x.devices, x.Submit); sh != nil {
		return sh
	}
	return []system.Shard{x}
}

// Pending visits jobs anywhere in the software or transport pipeline.
func (x *RTXen) Pending(visit func(j *task.Job)) {
	x.pending.Each(func(_ queue.Handle, _ slot.Time, j *task.Job) { visit(j) })
	for _, q := range x.vmmQueues {
		q.Each(visit)
	}
	if x.vmmJob != nil {
		visit(x.vmmJob)
	}
	x.t.pendingJobs(visit)
}

// Dropped returns jobs lost in transport.
func (x *RTXen) Dropped() int64 { return x.t.dropped.Load() }
